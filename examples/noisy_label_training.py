#!/usr/bin/env python
"""Noisy-label scenario: training on data with corrupted annotations.

Real-world edge datasets carry label noise; the paper's Table 2 shows
HERO degrades gracefully where SGD collapses (42% at 80% noise).  This
example corrupts the synthetic CIFAR-10 stand-in at several noise
ratios, trains SGD and HERO on each, and reports clean-test accuracy
plus how much of the label noise each model *memorized* (accuracy on
the corrupted labels themselves — lower is better).

Run:  python examples/noisy_label_training.py
      REPRO_FAST=1 python examples/noisy_label_training.py
"""

import os

import numpy as np

from repro.data import corrupt_symmetric, make_dataset, DataLoader
from repro.experiments import make_config
from repro.experiments.runner import build_model, build_trainer, evaluate_accuracy
from repro.tensor import Tensor, no_grad

FAST = bool(os.environ.get("REPRO_FAST"))


def memorization_rate(model, inputs, noisy_labels, corrupted_mask):
    """How often the model predicts the *wrong* (corrupted) label."""
    if not corrupted_mask.any():
        return 0.0
    model.eval()
    with no_grad():
        logits = model(Tensor(inputs[corrupted_mask])).data
    return float((logits.argmax(1) == noisy_labels[corrupted_mask]).mean())


def main():
    profile = "smoke" if FAST else "fast"
    train, test, spec = make_dataset("cifar10_like")
    ratios = (0.2, 0.6) if FAST else (0.2, 0.4, 0.6, 0.8)

    print(f"{'noise':>6s} {'method':>8s} {'clean test acc':>15s} {'noise memorized':>16s}")
    for ratio in ratios:
        noisy_labels, mask = corrupt_symmetric(train.targets, ratio, spec.num_classes, seed=17)
        noisy_train = train.with_targets(noisy_labels)
        for method in ("sgd", "hero"):
            config = make_config("ResNet20-fast", "cifar10_like", method, profile=profile)
            model = build_model(config, spec)
            trainer = build_trainer(config, model)
            loader = DataLoader(noisy_train, batch_size=config.batch_size, seed=1)
            trainer.fit(loader, config.epochs)
            acc = evaluate_accuracy(model, test)
            mem = memorization_rate(model, train.inputs, noisy_labels, mask)
            print(f"{int(100 * ratio):>5d}% {method:>8s} {acc:>15.3f} {mem:>16.3f}")

    print(
        "\nHERO should hold clean accuracy at high ratios while memorizing"
        "\nfewer corrupted labels — flat minima resist fitting label noise"
        "\n(the paper's Table 2 mechanism)."
    )


if __name__ == "__main__":
    main()
