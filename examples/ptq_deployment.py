#!/usr/bin/env python
"""Deployment scenario: pick a precision for an edge device on the fly.

The paper's motivation (Sec. 1/2.2): a deployed model must tolerate
*changing* quantization precision without retraining — e.g. a phone
dropping from 8-bit to 4-bit kernels under memory pressure.  This
example trains a MobileNetV2 with SGD and with HERO on the synthetic
CIFAR-10 stand-in, then sweeps post-training precisions and schemes
(symmetric/asymmetric, per-tensor/per-channel) the way a deployment
engineer would, printing the accuracy-per-bit menu for each model.

Run:  python examples/ptq_deployment.py           (a few minutes)
      REPRO_FAST=1 python examples/ptq_deployment.py   (quick, rougher)
"""

import os

from repro.experiments import make_config, run_training, load_experiment_data
from repro.experiments.runner import accuracy_eval_fn
from repro.quant import QuantScheme, evaluate_quantized, precision_sweep

FAST = bool(os.environ.get("REPRO_FAST"))


def main():
    profile = "smoke" if FAST else "fast"
    results = {}
    for method in ("sgd", "hero"):
        config = make_config("MobileNetV2", "cifar10_like", method, profile=profile)
        print(f"training MobileNetV2 with {method} ({config.epochs} epochs)...")
        results[method] = run_training(config)

    config = make_config("MobileNetV2", "cifar10_like", "sgd", profile=profile)
    _train, test, _spec = load_experiment_data(config)
    eval_fn = accuracy_eval_fn(test)

    bits = (3, 4, 5, 6, 8)
    print("\n== Accuracy vs precision (symmetric per-tensor) ==")
    print(f"{'bits':>6s}" + "".join(f"{m:>12s}" for m in results))
    sweeps = {
        m: precision_sweep(r.model, eval_fn, bits_list=bits) for m, r in results.items()
    }
    for i, b in enumerate(bits):
        row = f"{b:>6d}"
        for m in results:
            row += f"{sweeps[m]['accuracy'][i]:>12.3f}"
        print(row)
    row = f"{'full':>6s}"
    for m in results:
        row += f"{sweeps[m]['full_precision']:>12.3f}"
    print(row)

    print("\n== 4-bit accuracy across quantization schemes ==")
    schemes = {
        "symmetric/tensor": QuantScheme(4, symmetric=True, per_channel=False),
        "asymmetric/tensor": QuantScheme(4, symmetric=False, per_channel=False),
        "symmetric/channel": QuantScheme(4, symmetric=True, per_channel=True),
        "asymmetric/channel": QuantScheme(4, symmetric=False, per_channel=True),
    }
    print(f"{'scheme':>20s}" + "".join(f"{m:>12s}" for m in results))
    for name, scheme in schemes.items():
        row = f"{name:>20s}"
        for m, result in results.items():
            acc, _ = evaluate_quantized(result.model, scheme, eval_fn)
            row += f"{acc:>12.3f}"
        print(row)

    print(
        "\nReading the menu: the HERO column should dominate at low bits"
        "\nunder every scheme — the paper's Fig. 1 claim. A deployment can"
        "\nthus drop precision on the fly without retraining."
    )


if __name__ == "__main__":
    main()
