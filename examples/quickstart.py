#!/usr/bin/env python
"""Quickstart: train a small classifier with HERO and compare with SGD.

Trains an MLP on the three-class spirals dataset (with 25% label noise,
the regime HERO is built for), then post-training-quantizes the weights
to 4 and 3 bits — the one-screen version of the paper's whole story:
HERO matches or beats SGD at full precision *and* survives quantization
better, with no quantization-aware finetuning.

Run:  python examples/quickstart.py        (~half a minute)
"""

import numpy as np

from repro import nn, optim
from repro.core import make_trainer
from repro.data import DataLoader, corrupt_symmetric, spirals, train_test_split
from repro.experiments.runner import evaluate_accuracy
from repro.models import MLP
from repro.quant import QuantScheme, evaluate_quantized


def train_method(method, train_set, test_set, epochs=80, seed=0, **method_kwargs):
    """Train one method and return (model, test accuracy)."""
    rng = np.random.default_rng(seed)
    model = MLP(in_features=2, hidden=(32, 32), num_classes=3, rng=rng)
    loss_fn = nn.CrossEntropyLoss()
    optimizer = optim.SGD(model.parameters(), lr=0.1, momentum=0.9, weight_decay=1e-4)
    scheduler = optim.CosineAnnealingLR(optimizer, t_max=epochs)
    trainer = make_trainer(
        method, model, loss_fn, optimizer, scheduler=scheduler, **method_kwargs
    )
    loader = DataLoader(train_set, batch_size=32, seed=seed)
    trainer.fit(loader, epochs=epochs)
    return model, evaluate_accuracy(model, test_set)


def main():
    dataset = spirals(n=360, num_classes=3, noise=0.35, seed=1)
    train_set, test_set = train_test_split(dataset, test_fraction=0.4, seed=2)
    noisy_labels, _mask = corrupt_symmetric(train_set.targets, 0.25, 3, seed=3)
    train_set = train_set.with_targets(noisy_labels)
    print(
        f"spirals: {len(train_set)} train (25% labels corrupted) / "
        f"{len(test_set)} clean test samples\n"
    )

    print(f"{'method':10s} {'test acc':>9s} {'4-bit':>7s} {'3-bit':>7s}")
    for method, kwargs in (
        ("sgd", {}),
        ("hero", {"h": 0.002, "gamma": 0.02}),
    ):
        model, acc = train_method(method, train_set, test_set, **kwargs)
        eval_fn = lambda m: evaluate_accuracy(m, test_set)
        q4, _ = evaluate_quantized(model, QuantScheme(bits=4), eval_fn)
        q3, _ = evaluate_quantized(model, QuantScheme(bits=3), eval_fn)
        print(f"{method:10s} {acc:9.3f} {q4:7.3f} {q3:7.3f}")

    print(
        "\nHERO should beat SGD at full precision and lose less accuracy"
        "\nat 4 and 3 bits (sharp minima quantize worse — paper Sec. 3.2)."
    )


if __name__ == "__main__":
    main()
