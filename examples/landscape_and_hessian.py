#!/usr/bin/env python
"""Inspect *why* HERO works: curvature metrics and the loss landscape.

Reproduces the paper's Sec. 5.4 analysis on a small scale:

1. trains SGD and HERO models;
2. measures the top Hessian eigenvalue (power iteration over exact
   double-backprop HVPs — Theorem 3's ``v``), the ``||Hz||`` metric of
   Fig. 2, and the Eq. 13 estimator ``E||Hz||^2 = sum lambda_i^2``;
3. renders each model's loss surface as an ASCII contour (Fig. 3) and
   reports the flat-area fraction at the paper's +0.1 tolerance.

Run:  python examples/landscape_and_hessian.py
      REPRO_FAST=1 python examples/landscape_and_hessian.py
"""

import os

from repro.data import DataLoader
from repro.experiments import make_config, run_training, load_experiment_data
from repro.hessian import hvp_exact, hz_norm, power_iteration, eigenvalue_square_sum
from repro.landscape import (
    ascii_contour,
    flat_area_fraction,
    loss_surface,
    make_plot_directions,
)
from repro.nn import CrossEntropyLoss

FAST = bool(os.environ.get("REPRO_FAST"))


def main():
    profile = "smoke" if FAST else "fast"
    loss_fn = CrossEntropyLoss()
    runs = {}
    for method in ("sgd", "hero"):
        config = make_config("ResNet20-fast", "cifar10_like", method, profile=profile)
        print(f"training {method} ({config.epochs} epochs)...")
        runs[method] = run_training(config)

    config = make_config("ResNet20-fast", "cifar10_like", "sgd", profile=profile)
    train, _test, _spec = load_experiment_data(config)
    loader = DataLoader(train, batch_size=64, shuffle=False, seed=0)
    x, y = next(iter(loader))

    print(f"\n{'metric':>28s} {'sgd':>12s} {'hero':>12s}")
    metrics = {}
    for method, result in runs.items():
        model = result.model
        params = list(model.parameters())
        shapes = [p.shape for p in params]
        hvp_fn = lambda v, m=model: hvp_exact(m, loss_fn, x, y, v)
        top_eig, _vec, _hist = power_iteration(hvp_fn, shapes, iters=8, seed=0)
        hz = hz_norm(model, loss_fn, loader, h=0.01, max_batches=2)
        eigsq, _ = eigenvalue_square_sum(hvp_fn, shapes, samples=2, seed=0)
        metrics[method] = {
            "lambda_max (Theorem 3 v)": top_eig,
            "||Hz|| (Fig. 2 metric)": hz,
            "sum lambda^2 (Eq. 13)": eigsq,
            "test accuracy": result.test_acc,
        }
    for key in next(iter(metrics.values())):
        print(
            f"{key:>28s} {metrics['sgd'][key]:>12.4g} {metrics['hero'][key]:>12.4g}"
        )

    print("\n== Fig. 3: loss contours (darker = higher loss) ==")
    batches = [(x, y)]
    steps = 7 if FAST else 13
    for method, result in runs.items():
        params = list(result.model.parameters())
        d1, d2 = make_plot_directions(params, seed=7)
        surface = loss_surface(
            result.model, loss_fn, batches, d1, d2, radius=0.5, steps=(steps, steps)
        )
        flat = flat_area_fraction(surface, tolerance=0.1)
        print(f"\n[{method}] flat area within +0.1 loss: {100 * flat:.1f}%")
        print(ascii_contour(surface))

    print(
        "\nExpected: every curvature metric lower for HERO, and a larger"
        "\nflat region around its optimum — Theorems 1-3 in action."
    )


if __name__ == "__main__":
    main()
