#!/usr/bin/env python
"""Full edge-deployment pipeline on a HERO-trained model.

Walks the steps a deployment engineer performs after training, using
the library's whole quantization subsystem and the serving layer:

1. train a compact model with HERO (the paper's headline use case);
2. fold BatchNorm into the convolutions (inference-equivalent);
3. per-layer sensitivity scan — which layers tolerate 4 bits?
4. greedy mixed-precision assignment within an accuracy budget;
5. calibrated weight+activation PTQ of the final artifact;
6. publish the deployment into the content-addressed artifact store;
7. serve it through the micro-batched inference server and check the
   served predictions are bit-identical to the offline forward.

Run:  python examples/edge_deployment_pipeline.py
      REPRO_FAST=1 python examples/edge_deployment_pipeline.py
"""

import os

import numpy as np

from repro.data import DataLoader
from repro.experiments import make_config, run_training, load_experiment_data
from repro.experiments.runner import accuracy_eval_fn
from repro.quant import (
    fold_batchnorms,
    greedy_mixed_precision,
    layer_sensitivity,
    quantize_weights_and_activations,
)
from repro.serving import (
    InferenceServer,
    model_spec,
    publish_artifact,
    uniform_weight_quant,
)
from repro.tensor import Tensor, no_grad

FAST = bool(os.environ.get("REPRO_FAST"))


def main():
    profile = "smoke" if FAST else "fast"

    # 1. train with HERO
    config = make_config("MobileNetV2", "cifar10_like", "hero", profile=profile)
    print(f"[1/7] training MobileNetV2 with HERO ({config.epochs} epochs)...")
    result = run_training(config)
    train, test, spec = load_experiment_data(config)
    eval_fn = accuracy_eval_fn(test)
    print(f"      full-precision test accuracy: {result.test_acc:.3f}")

    # 2. fold BN
    folded, count = fold_batchnorms(result.model)
    folded.eval()
    print(f"[2/7] folded {count} conv+BN pairs; accuracy {eval_fn(folded):.3f} "
          "(must match full precision)")

    # 3. sensitivity scan
    print("[3/7] per-layer 4-bit sensitivity (top 5 most sensitive):")
    sensitivity = layer_sensitivity(result.model, eval_fn, bits=4)
    reference = sensitivity.pop("__full__")
    worst = sorted(sensitivity.items(), key=lambda kv: kv[1])[:5]
    for name, acc in worst:
        print(f"      {name:40s} {acc:.3f}  (drop {reference - acc:+.3f})")

    # 4. mixed precision
    print("[4/7] greedy mixed-precision search (budget: 2% accuracy)...")
    mixed = greedy_mixed_precision(
        result.model, eval_fn, accuracy_budget=0.02, bit_choices=(8, 6, 4)
    )
    print(f"      average bits: {mixed['average_bits']:.2f}  "
          f"accuracy: {mixed['accuracy']:.3f} (reference {mixed['reference']:.3f})")

    # 5. weight + activation PTQ
    print("[5/7] calibrated 8-bit weight + 8-bit activation deployment...")
    loader = DataLoader(train, batch_size=64, shuffle=False, seed=0)
    calibration = [next(iter(loader))]
    deployed = quantize_weights_and_activations(
        result.model, weight_bits=8, act_bits=8, batches=calibration
    )
    print(f"      deployed accuracy: {eval_fn(deployed):.3f}")

    # 6. publish into the artifact store — weights, quant scheme and
    # frozen activation ranges, addressed by content
    manifest = publish_artifact(
        deployed,
        model_spec(
            config.model, spec.num_classes, spec.channels,
            config.model_scale, spec.image_size,
        ),
        source=f"run:{config.cache_key()}",
        weight_quant=uniform_weight_quant(8),
    )
    print(f"[6/7] published artifact {manifest.key} "
          f"({manifest.params} params, w8/a8)")

    # 7. serve through the real micro-batched server and verify the
    # determinism contract: served bytes == offline forward bytes
    print("[7/7] serving 8 requests through the inference server...")
    rng = np.random.default_rng(0)
    xs = [
        rng.standard_normal(
            (1, spec.channels, spec.image_size, spec.image_size)
        ).astype(np.float32)
        for _ in range(8)
    ]
    # eval mode before taking references: the server rebuilds artifacts
    # in eval mode, and eval_fn above left the model in train mode
    deployed.eval()
    with no_grad():
        references = [deployed(Tensor(x)).data for x in xs]
    with InferenceServer(
        manifest.key, name="edge-example", workers=2, max_batch=4, max_delay=0.005
    ) as server:
        client = server.client()
        ids = [client.submit(x) for x in xs]
        responses = [client.result(request_id, timeout=60.0) for request_id in ids]
    stats = server.write_stats()
    identical = all(
        np.array_equal(response, reference)
        for response, reference in zip(responses, references)
    )
    print(f"      served {stats.served_total} requests in {stats.batches_total} "
          f"micro-batches; bit-identical to offline forward: {identical}")
    if not identical:
        raise SystemExit("served responses diverged from the offline forward")

    print(
        "\nThe HERO-trained model should sail through every step — that is"
        "\nthe paper's point: robustness to weight perturbation makes all"
        "\npost-training deployment transforms cheap — and the published"
        "\nartifact serves back exactly the bits the deployment produced."
    )


if __name__ == "__main__":
    main()
