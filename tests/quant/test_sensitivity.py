"""Per-layer sensitivity analysis and greedy mixed precision."""

import numpy as np
import pytest

from repro.models import create_model
from repro.quant import (
    apply_mixed_precision,
    average_bits,
    greedy_mixed_precision,
    layer_sensitivity,
)
from repro.quant.ptq import _target_modules
from repro.tensor import Tensor, no_grad


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(0)
    model = create_model("vgg6_bn", num_classes=4, scale=0.5, seed=0)
    x = rng.standard_normal((24, 3, 8, 8))
    y = rng.integers(0, 4, 24)

    def eval_fn(m):
        m.eval()
        with no_grad():
            logits = m(Tensor(x)).data
        return float((logits.argmax(1) == y).mean())

    return model, eval_fn


class TestLayerSensitivity:
    def test_covers_all_layers(self, setup):
        model, eval_fn = setup
        result = layer_sensitivity(model, eval_fn, bits=3)
        layer_names = [n for n, _m in _target_modules(model)]
        assert set(result) == set(layer_names) | {"__full__"}

    def test_model_unmodified(self, setup):
        model, eval_fn = setup
        before = {n: p.data.copy() for n, p in model.named_parameters()}
        layer_sensitivity(model, eval_fn, bits=2)
        for n, p in model.named_parameters():
            assert np.allclose(p.data, before[n])

    def test_values_are_accuracies(self, setup):
        model, eval_fn = setup
        result = layer_sensitivity(model, eval_fn, bits=4)
        assert all(0.0 <= v <= 1.0 for v in result.values())


class TestMixedPrecision:
    def test_apply_partial_assignment(self, setup):
        model, _eval_fn = setup
        names = [n for n, _m in _target_modules(model)]
        assignment = {names[0]: 2}
        quantized, report = apply_mixed_precision(model, assignment)
        assert set(report) == {names[0]}
        q_modules = dict(_target_modules(quantized))
        # quantized layer is on a small grid; others untouched
        assert len(np.unique(q_modules[names[0]].weight.data)) <= 3
        orig_modules = dict(_target_modules(model))
        assert np.allclose(
            q_modules[names[1]].weight.data, orig_modules[names[1]].weight.data
        )

    def test_unknown_layer_raises(self, setup):
        model, _eval_fn = setup
        with pytest.raises(KeyError):
            apply_mixed_precision(model, {"nonexistent": 4})

    def test_average_bits(self, setup):
        model, _eval_fn = setup
        names = [n for n, _m in _target_modules(model)]
        uniform = {name: 4 for name in names}
        assert np.isclose(average_bits(model, uniform), 4.0)
        # default bits for unassigned layers
        assert average_bits(model, {}) == 16.0

    def test_greedy_respects_budget(self, setup):
        model, eval_fn = setup
        result = greedy_mixed_precision(
            model, eval_fn, accuracy_budget=0.5, bit_choices=(8, 4)
        )
        assert result["accuracy"] >= result["reference"] - 0.5
        assert set(result["assignment"].values()) <= {8, 4}
        assert 4.0 <= result["average_bits"] <= 8.0

    def test_greedy_zero_budget_stays_high_precision(self, setup):
        model, eval_fn = setup
        # budget 0 with a strict evaluator: most layers should stay at
        # the top precision unless lowering costs nothing
        result = greedy_mixed_precision(
            model, eval_fn, accuracy_budget=0.0, bit_choices=(8, 2)
        )
        assert result["accuracy"] >= result["reference"]
