"""Linear uniform quantizer: the Theorem 2 error bound and invariants."""

import numpy as np
import pytest
from hypothesis import example, given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.quant import QuantScheme, quantize_array, quantization_error


class TestScheme:
    def test_levels(self):
        assert QuantScheme(4).levels == 16
        assert QuantScheme(8).levels == 256

    def test_bits_range_validated(self):
        with pytest.raises(ValueError):
            QuantScheme(1)
        with pytest.raises(ValueError):
            QuantScheme(17)

    def test_describe(self):
        assert "4-bit" in QuantScheme(4).describe()
        assert "asymmetric" in QuantScheme(4, symmetric=False).describe()
        assert "per-channel" in QuantScheme(4, per_channel=True).describe()


class TestSymmetric:
    def test_error_bounded_by_half_delta(self, rng):
        w = rng.standard_normal((16, 16))
        for bits in (2, 4, 8):
            w_q, info = quantize_array(w, QuantScheme(bits))
            assert info["max_error"] <= float(np.max(info["delta"])) / 2 + 1e-12

    def test_idempotent(self, rng):
        w = rng.standard_normal((8, 8))
        scheme = QuantScheme(5)
        w_q, _ = quantize_array(w, scheme)
        w_qq, _ = quantize_array(w_q, scheme)
        assert np.allclose(w_q, w_qq)

    def test_level_count_respected(self, rng):
        w = rng.standard_normal(500)
        w_q, _ = quantize_array(w, QuantScheme(3))
        assert len(np.unique(w_q)) <= 8

    def test_zero_exactly_representable(self, rng):
        w = rng.standard_normal(100)
        w[0] = 0.0
        w_q, _ = quantize_array(w, QuantScheme(4))
        assert w_q[0] == 0.0

    def test_higher_bits_lower_error(self, rng):
        w = rng.standard_normal((32, 32))
        errors = [
            np.abs(quantize_array(w, QuantScheme(b))[0] - w).mean() for b in (2, 4, 6, 8)
        ]
        assert errors == sorted(errors, reverse=True)

    def test_all_zero_weights(self):
        w = np.zeros((4, 4))
        w_q, info = quantize_array(w, QuantScheme(4))
        assert np.allclose(w_q, 0.0)
        assert info["max_error"] == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            quantize_array(np.zeros((0,)), QuantScheme(4))


class TestAsymmetric:
    def test_error_bounded(self, rng):
        w = rng.standard_normal((10, 10)) + 3.0  # skewed distribution
        w_q, info = quantize_array(w, QuantScheme(4, symmetric=False))
        assert info["max_error"] <= float(np.max(info["delta"])) / 2 + 1e-12

    def test_range_endpoints_exact(self, rng):
        w = rng.standard_normal(100)
        w_q, _ = quantize_array(w, QuantScheme(4, symmetric=False))
        assert np.isclose(w_q.min(), w.min())
        assert np.isclose(w_q.max(), w.max())

    def test_beats_symmetric_on_skewed_data(self, rng):
        w = rng.random((20, 20)) + 5.0  # all-positive
        sym_err = np.abs(quantize_array(w, QuantScheme(4))[0] - w).mean()
        asym_err = np.abs(quantize_array(w, QuantScheme(4, symmetric=False))[0] - w).mean()
        assert asym_err < sym_err


class TestPerChannel:
    def test_never_worse_than_per_tensor(self, rng):
        # per-channel ranges are tighter for heterogeneous channels
        w = rng.standard_normal((8, 4, 3, 3)) * np.logspace(
            -1, 1, 8
        ).reshape(8, 1, 1, 1)
        pt_err = np.abs(quantize_array(w, QuantScheme(4))[0] - w).mean()
        pc_err = np.abs(quantize_array(w, QuantScheme(4, per_channel=True))[0] - w).mean()
        assert pc_err <= pt_err

    def test_1d_falls_back_to_per_tensor(self, rng):
        w = rng.standard_normal(32)
        a, _ = quantize_array(w, QuantScheme(4, per_channel=True))
        b, _ = quantize_array(w, QuantScheme(4, per_channel=False))
        assert np.allclose(a, b)


FINITE = st.floats(min_value=-100, max_value=100, allow_nan=False, allow_infinity=False)


@settings(max_examples=50, deadline=None)
@given(
    arrays(np.float64, st.integers(min_value=1, max_value=64), elements=FINITE),
    st.integers(min_value=2, max_value=8),
    st.booleans(),
)
# subnormal span: span/(levels-1) underflows to a 0.0 delta (NaN codes)
@example(w=np.array([0.0, 5e-324]), bits=2, symmetric=False)
def test_property_error_bound(w, bits, symmetric):
    """For any weights and precision: ||W_q - W||_inf <= Delta/2 (Thm 2)."""
    scheme = QuantScheme(bits, symmetric=symmetric)
    w_q, info = quantize_array(w, scheme)
    assert info["max_error"] <= float(np.max(info["delta"])) / 2 + 1e-9


@settings(max_examples=50, deadline=None)
@given(
    arrays(np.float64, st.integers(min_value=1, max_value=64), elements=FINITE),
    st.integers(min_value=2, max_value=8),
)
def test_property_idempotent(w, bits):
    scheme = QuantScheme(bits)
    w_q, _ = quantize_array(w, scheme)
    w_qq, _ = quantize_array(w_q, scheme)
    assert np.allclose(w_q, w_qq, atol=1e-12)


@settings(max_examples=50, deadline=None)
@given(arrays(np.float64, st.integers(min_value=1, max_value=32), elements=FINITE))
def test_property_quantization_error_shape(w):
    err = quantization_error(w, QuantScheme(4))
    assert err.shape == w.shape
