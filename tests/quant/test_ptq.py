"""Model-level post-training quantization."""

import numpy as np

from repro import nn
from repro.models import create_model
from repro.quant import (
    QuantScheme,
    evaluate_quantized,
    precision_sweep,
    quantize_model,
    weight_perturbation_norms,
)
from repro.tensor import Tensor


def small_model():
    return create_model("vgg6_bn", num_classes=4, scale=0.5, seed=0)


class TestQuantizeModel:
    def test_original_untouched(self):
        model = small_model()
        before = {n: p.data.copy() for n, p in model.named_parameters()}
        quantize_model(model, QuantScheme(3))
        for n, p in model.named_parameters():
            assert np.allclose(p.data, before[n])

    def test_in_place_mutates(self):
        model = small_model()
        before = model.state_dict()
        q, _ = quantize_model(model, QuantScheme(2), in_place=True)
        assert q is model
        changed = any(
            not np.allclose(model.state_dict()[k], before[k]) for k in before
        )
        assert changed

    def test_only_conv_linear_weights_quantized(self):
        model = small_model()
        q, report = quantize_model(model, QuantScheme(2))
        # BN parameters must be untouched
        for (name, p_orig), (_n2, p_q) in zip(
            model.named_parameters(), q.named_parameters()
        ):
            if "bn" in name or name.endswith("bias"):
                assert np.allclose(p_orig.data, p_q.data), name

    def test_report_covers_all_conv_linear(self):
        model = small_model()
        _q, report = quantize_model(model, QuantScheme(4))
        conv_linear = [
            n for n, m in model.named_modules() if isinstance(m, (nn.Conv2d, nn.Linear))
        ]
        assert len(report) == len(conv_linear)

    def test_quantized_model_runs(self, rng):
        model = small_model()
        q, _ = quantize_model(model, QuantScheme(4))
        q.eval()
        out = q(Tensor(rng.standard_normal((2, 3, 8, 8))))
        assert out.shape == (2, 4)
        assert np.all(np.isfinite(out.data))

    def test_weights_actually_on_grid(self):
        model = small_model()
        q, report = quantize_model(model, QuantScheme(3))
        for name, module in q.named_modules():
            if isinstance(module, (nn.Conv2d, nn.Linear)):
                unique = np.unique(module.weight.data)
                assert len(unique) <= 8


class TestSweep:
    def test_precision_sweep_structure(self, rng):
        model = small_model()
        x = rng.standard_normal((8, 3, 8, 8))
        y = rng.integers(0, 4, 8)

        def eval_fn(m):
            m.eval()
            from repro.tensor import no_grad

            with no_grad():
                logits = m(Tensor(x)).data
            return float((logits.argmax(1) == y).mean())

        sweep = precision_sweep(model, eval_fn, bits_list=(2, 4, 8))
        assert sweep["bits"] == [2, 4, 8]
        assert len(sweep["accuracy"]) == 3
        assert all(0 <= a <= 1 for a in sweep["accuracy"])
        assert sweep["max_error"][0] >= sweep["max_error"][2]  # 2-bit worse than 8-bit

    def test_precision_sweep_matches_per_scheme_quantization(self, rng):
        """The batched sweep (one clone, weights swapped per scheme)
        must agree exactly with quantizing a fresh copy per scheme."""
        model = small_model()
        x = rng.standard_normal((8, 3, 8, 8))
        y = rng.integers(0, 4, 8)

        def eval_fn(m):
            m.eval()
            from repro.tensor import no_grad

            with no_grad():
                logits = m(Tensor(x)).data
            return float((logits.argmax(1) == y).mean())

        bits_list = (2, 3, 4, 8)
        sweep = precision_sweep(model, eval_fn, bits_list=bits_list)
        for i, bits in enumerate(bits_list):
            score, report = evaluate_quantized(model, QuantScheme(bits), eval_fn)
            assert sweep["accuracy"][i] == score
            assert sweep["max_error"][i] == max(
                info["max_error"] for info in report.values()
            )
        assert sweep["full_precision"] == eval_fn(model)

    def test_precision_sweep_leaves_model_untouched(self):
        model = small_model()
        before = {n: p.data.copy() for n, p in model.named_parameters()}
        precision_sweep(model, lambda m: 0.0, bits_list=(2, 4))
        for n, p in model.named_parameters():
            assert np.array_equal(p.data, before[n]), n

    def test_evaluate_quantized_eval_fn_called_on_copy(self):
        model = small_model()
        captured = []
        evaluate_quantized(model, QuantScheme(2), lambda m: captured.append(m) or 0.0)
        assert captured[0] is not model

    def test_perturbation_norms(self):
        model = small_model()
        norms = weight_perturbation_norms(model, QuantScheme(4))
        for name, entry in norms.items():
            assert entry["linf"] <= float(np.max(entry["delta"])) / 2 + 1e-12
            assert entry["l2"] >= entry["linf"]
