"""BatchNorm folding and activation fake-quantization."""

import numpy as np
import pytest

from repro import nn
from repro.models import create_model
from repro.quant import (
    ActivationObserver,
    FakeQuantize,
    calibrate,
    fold_batchnorms,
    fold_conv_bn,
    insert_activation_quantizers,
    quantize_weights_and_activations,
)
from repro.tensor import Tensor, no_grad


def run_eval(model, x):
    model.eval()
    with no_grad():
        return model(Tensor(x)).data


class TestFolding:
    def test_fold_conv_bn_equivalent_in_eval(self, rng):
        conv = nn.Conv2d(3, 5, 3, padding=1, rng=rng)
        bn = nn.BatchNorm2d(5)
        # give BN nontrivial statistics and affine params
        bn.set_buffer("running_mean", rng.standard_normal(5))
        bn.set_buffer("running_var", rng.random(5) + 0.5)
        bn.weight.data = rng.random(5) + 0.5
        bn.bias.data = rng.standard_normal(5)
        folded = fold_conv_bn(conv, bn)
        x = rng.standard_normal((2, 3, 6, 6))
        bn.eval()
        reference = bn(conv(Tensor(x))).data
        assert np.allclose(run_eval(folded, x), reference, atol=1e-10)

    def test_fold_conv_without_bias(self, rng):
        conv = nn.Conv2d(2, 3, 3, bias=False, rng=rng)
        bn = nn.BatchNorm2d(3)
        bn.set_buffer("running_mean", np.array([0.5, -0.5, 0.0]))
        folded = fold_conv_bn(conv, bn)
        assert folded.bias is not None

    def test_channel_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            fold_conv_bn(nn.Conv2d(3, 4, 3, rng=rng), nn.BatchNorm2d(5))

    def test_fold_whole_model_equivalent(self, rng):
        model = create_model("vgg6_bn", num_classes=4, scale=0.5, seed=0)
        # populate running stats with a forward pass in train mode
        x = rng.standard_normal((8, 3, 8, 8))
        model.train()
        with no_grad():
            model(Tensor(x))
        folded, count = fold_batchnorms(model)
        assert count > 0
        assert np.allclose(run_eval(folded, x), run_eval(model, x), atol=1e-8)

    def test_fold_resnet_blocks(self, rng):
        model = create_model("resnet8", num_classes=4, scale=0.5, seed=0)
        x = rng.standard_normal((4, 3, 8, 8))
        model.train()
        with no_grad():
            model(Tensor(x))
        folded, count = fold_batchnorms(model)
        assert count >= 7  # stem + block convs + shortcut convs
        assert np.allclose(run_eval(folded, x), run_eval(model, x), atol=1e-8)

    def test_original_untouched(self, rng):
        model = create_model("vgg6_bn", num_classes=4, scale=0.5, seed=0)
        before = {n: p.data.copy() for n, p in model.named_parameters()}
        fold_batchnorms(model)
        for n, p in model.named_parameters():
            assert np.allclose(p.data, before[n])


class TestObserver:
    def test_running_min_max(self):
        obs = ActivationObserver(symmetric=False)
        obs.observe(np.array([1.0, 2.0]))
        obs.observe(np.array([-3.0, 0.5]))
        assert obs.low == -3.0
        assert obs.high == 2.0

    def test_symmetric_range(self):
        obs = ActivationObserver(symmetric=True)
        obs.observe(np.array([-3.0, 1.0]))
        assert obs.low == -3.0
        assert obs.high == 3.0

    def test_ema_mode(self):
        obs = ActivationObserver(symmetric=False, momentum=0.5)
        obs.observe(np.array([0.0, 4.0]))
        obs.observe(np.array([0.0, 0.0]))
        assert np.isclose(obs.high, 2.0)


class TestFakeQuantize:
    def test_passthrough_while_calibrating(self, rng):
        fq = FakeQuantize(bits=4)
        x = rng.standard_normal(10)
        out = fq(Tensor(x))
        assert np.allclose(out.data, x)
        assert fq.observer.calibrated

    def test_freeze_requires_calibration(self):
        with pytest.raises(RuntimeError):
            FakeQuantize(bits=4).freeze()

    def test_frozen_output_on_grid(self, rng):
        fq = FakeQuantize(bits=3)
        x = rng.standard_normal(200)
        fq(Tensor(x))
        fq.freeze()
        out = fq(Tensor(x)).data
        assert len(np.unique(out)) <= 7  # 2^3 - 1 symmetric levels
        assert np.abs(out - x).max() <= fq.observer.high / 3 + 1e-12

    def test_straight_through_gradient(self, rng):
        fq = FakeQuantize(bits=4)
        x_cal = rng.standard_normal(50)
        fq(Tensor(x_cal))
        fq.freeze()
        x = Tensor(rng.standard_normal(10), requires_grad=True)
        (fq(x) * 2.0).sum().backward()
        assert np.allclose(x.grad.data, 2.0)


class TestEndToEnd:
    def test_insert_and_calibrate(self, rng):
        model = create_model("vgg6_bn", num_classes=4, scale=0.5, seed=0)
        wrapped, quantizers = insert_activation_quantizers(model, bits=8)
        assert len(quantizers) >= 4
        batches = [(rng.standard_normal((4, 3, 8, 8)), None) for _ in range(2)]
        calibrate(wrapped, quantizers, batches)
        assert all(not q.calibrating for q in quantizers)
        out = run_eval(wrapped, rng.standard_normal((2, 3, 8, 8)))
        assert out.shape == (2, 4)
        assert np.all(np.isfinite(out))

    def test_8bit_activations_near_lossless(self, rng):
        model = create_model("vgg6_bn", num_classes=4, scale=0.5, seed=0)
        x = rng.standard_normal((8, 3, 8, 8))
        reference = run_eval(model, x)
        deployed = quantize_weights_and_activations(
            model, weight_bits=8, act_bits=8, batches=[(x, None)]
        )
        out = run_eval(deployed, x)
        assert np.allclose(out.argmax(1), reference.argmax(1))

    def test_low_bit_activations_change_outputs(self, rng):
        model = create_model("vgg6_bn", num_classes=4, scale=0.5, seed=0)
        x = rng.standard_normal((8, 3, 8, 8))
        reference = run_eval(model, x)
        deployed = quantize_weights_and_activations(
            model, weight_bits=3, act_bits=3, batches=[(x, None)]
        )
        assert not np.allclose(run_eval(deployed, x), reference)

    def test_no_quantizable_layers_raises(self):
        with pytest.raises(ValueError):
            insert_activation_quantizers(nn.Sequential(nn.ReLU()))
