"""System-level property tests (hypothesis) on core data structures."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import nn
from repro.data import ArrayDataset, DataLoader
from repro.models import MLP
from repro.optim import SGD, CosineAnnealingLR
from repro.quant import QuantScheme, quantize_array
from repro.tensor import Tensor


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=40),
    batch_size=st.integers(min_value=1, max_value=16),
    drop_last=st.booleans(),
    seed=st.integers(min_value=0, max_value=10),
)
def test_loader_covers_dataset_exactly(n, batch_size, drop_last, seed):
    ds = ArrayDataset(np.arange(n, dtype=float)[:, None], np.arange(n))
    loader = DataLoader(ds, batch_size=batch_size, shuffle=True, drop_last=drop_last, seed=seed)
    seen = [y for _x, ys in loader for y in ys]
    if drop_last:
        assert len(seen) == (n // batch_size) * batch_size
        assert len(set(seen)) == len(seen)
    else:
        assert sorted(seen) == list(range(n))
    assert len(loader) == (n // batch_size if drop_last else -(-n // batch_size))


@settings(max_examples=25, deadline=None)
@given(
    hidden=st.integers(min_value=1, max_value=16),
    num_classes=st.integers(min_value=2, max_value=6),
    seed=st.integers(min_value=0, max_value=100),
)
def test_state_dict_roundtrip_preserves_forward(hidden, num_classes, seed):
    m1 = MLP(3, hidden=(hidden,), num_classes=num_classes, rng=np.random.default_rng(seed))
    m2 = MLP(3, hidden=(hidden,), num_classes=num_classes, rng=np.random.default_rng(seed + 1))
    m2.load_state_dict(m1.state_dict())
    x = Tensor(np.random.default_rng(0).standard_normal((4, 3)))
    assert np.allclose(m1(x).data, m2(x).data)


@settings(max_examples=25, deadline=None)
@given(
    lr=st.floats(min_value=1e-4, max_value=1.0),
    t_max=st.integers(min_value=1, max_value=50),
)
def test_cosine_schedule_bounded_and_terminal(lr, t_max):
    from repro.nn.module import Parameter

    opt = SGD([Parameter(np.zeros(1))], lr=lr)
    sched = CosineAnnealingLR(opt, t_max=t_max)
    for _ in range(t_max + 3):
        sched.step()
        assert -1e-12 <= opt.lr <= lr + 1e-12
    assert np.isclose(opt.lr, 0.0, atol=1e-12)


@settings(max_examples=25, deadline=None)
@given(
    scale=st.floats(min_value=0.01, max_value=100.0),
    bits=st.integers(min_value=2, max_value=8),
    seed=st.integers(min_value=0, max_value=20),
)
def test_quantizer_scale_equivariance(scale, bits, seed):
    """Symmetric quantization commutes with positive scaling."""
    rng = np.random.default_rng(seed)
    w = rng.standard_normal(32)
    scheme = QuantScheme(bits)
    q1, _ = quantize_array(w * scale, scheme)
    q2, _ = quantize_array(w, scheme)
    assert np.allclose(q1, q2 * scale, atol=1e-9 * scale)


@settings(max_examples=20, deadline=None)
@given(
    batch=st.integers(min_value=1, max_value=8),
    classes=st.integers(min_value=2, max_value=6),
    seed=st.integers(min_value=0, max_value=50),
)
def test_cross_entropy_bounds(batch, classes, seed):
    """CE >= 0 and its gradient rows sum to 0 (softmax - onehot)."""
    rng = np.random.default_rng(seed)
    logits = Tensor(rng.standard_normal((batch, classes)) * 3, requires_grad=True)
    y = rng.integers(0, classes, batch)
    loss = nn.cross_entropy(logits, y)
    assert loss.data >= -1e-12
    loss.backward()
    atol = 1e-10 if logits.dtype == np.float64 else 1e-6
    assert np.allclose(logits.grad.data.sum(axis=1), 0.0, atol=atol)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100))
def test_sgd_invariant_zero_grad_is_noop_without_decay(seed):
    from repro.nn.module import Parameter

    rng = np.random.default_rng(seed)
    p = Parameter(rng.standard_normal(5))
    before = p.data.copy()
    opt = SGD([p], lr=0.5, momentum=0.9)
    p.grad = Tensor(np.zeros(5))
    opt.step()
    assert np.allclose(p.data, before)
