"""Strict link check over the docs site (README + docs/).

Every relative link must point at an existing file, and every fragment
into a markdown file must match a real heading's GitHub-style anchor.
This is the check CI's docs job runs; it keeps the docs honest without
pulling in a docs framework.
"""

import os
import re

import pytest

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))

#: Markdown files making up the docs site.
DOC_FILES = ["README.md"] + sorted(
    os.path.join("docs", name)
    for name in os.listdir(os.path.join(REPO_ROOT, "docs"))
    if name.endswith(".md")
)

_LINK = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
_CODE_FENCE = re.compile(r"```.*?```", re.DOTALL)


def github_slug(heading):
    """GitHub's anchor slug for a heading.

    Literal underscores are preserved (``## REPRO_DTYPE`` anchors as
    ``#repro_dtype``); only markdown emphasis/code markers are stripped.
    """
    slug = heading.strip().lower()
    slug = re.sub(r"[`*]", "", slug)
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def markdown_links(path):
    """All link targets in ``path``, code fences stripped."""
    with open(os.path.join(REPO_ROOT, path)) as fh:
        text = _CODE_FENCE.sub("", fh.read())
    return _LINK.findall(text)


def heading_anchors(path):
    with open(os.path.join(REPO_ROOT, path)) as fh:
        text = _CODE_FENCE.sub("", fh.read())
    return {github_slug(h) for h in _HEADING.findall(text)}


@pytest.mark.parametrize("doc", DOC_FILES)
def test_relative_links_resolve(doc):
    broken = []
    for target in markdown_links(doc):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path, _, fragment = target.partition("#")
        if not path:  # same-file fragment
            resolved = doc
        else:
            resolved = os.path.normpath(os.path.join(os.path.dirname(doc), path))
        full = os.path.join(REPO_ROOT, resolved)
        if not os.path.exists(full):
            broken.append(f"{doc}: {target} -> missing {resolved}")
        elif fragment and resolved.endswith(".md"):
            if github_slug(fragment) not in heading_anchors(resolved):
                broken.append(f"{doc}: {target} -> no heading #{fragment} in {resolved}")
    assert not broken, "\n".join(broken)


def test_docs_exist_and_nonempty():
    assert "docs/architecture.md" in DOC_FILES
    assert "docs/data-pipeline.md" in DOC_FILES
    assert "docs/memory-model.md" in DOC_FILES
    assert "docs/scheduler.md" in DOC_FILES
    for doc in DOC_FILES:
        with open(os.path.join(REPO_ROOT, doc)) as fh:
            assert len(fh.read()) > 200, f"{doc} is suspiciously empty"


def test_readme_links_docs_site():
    targets = {t.partition("#")[0] for t in markdown_links("README.md")}
    assert "docs/architecture.md" in targets
    assert "docs/data-pipeline.md" in targets
    assert "docs/memory-model.md" in targets
