"""CURE trainer and the input-space attacks used to evaluate it."""

import numpy as np
import pytest

from repro import nn, optim
from repro.attacks import fgsm, input_gradient, pgd, robust_accuracy
from repro.tensor import dtype_context
from repro.core import make_trainer
from repro.data import DataLoader, gaussian_blobs
from repro.models import MLP


def make_problem(seed=0):
    ds = gaussian_blobs(n=90, num_classes=3, spread=2.5, noise=0.4, seed=seed)
    model = MLP(2, hidden=(16,), num_classes=3, rng=np.random.default_rng(seed))
    return ds, model


class TestInputGradient:
    def test_shape_and_params_untouched(self):
        ds, model = make_problem()
        x, y = ds[np.arange(16)]
        before = {n: p.data.copy() for n, p in model.named_parameters()}
        grad, loss = input_gradient(model, nn.cross_entropy, x, y)
        assert grad.shape == x.shape
        assert loss > 0
        for n, p in model.named_parameters():
            assert np.allclose(p.data, before[n])
            assert p.grad is None

    def test_matches_finite_difference(self):
        # eps=1e-6 central differences are verification-grade numerics:
        # run model, data and attack under the float64 policy.
        with dtype_context(np.float64):
            ds, model = make_problem()
            x, y = ds[np.arange(8)]
            grad, _ = input_gradient(model, nn.cross_entropy, x, y)
            eps = 1e-6
            x_shift = x.copy()
            x_shift[0, 0] += eps
            _, up = input_gradient(model, nn.cross_entropy, x_shift, y)
            x_shift[0, 0] -= 2 * eps
            _, down = input_gradient(model, nn.cross_entropy, x_shift, y)
            assert np.isclose(grad[0, 0], (up - down) / (2 * eps), rtol=1e-4, atol=1e-7)


class TestAttacks:
    def test_fgsm_moves_by_epsilon(self):
        ds, model = make_problem()
        x, y = ds[np.arange(16)]
        adv = fgsm(model, nn.cross_entropy, x, y, epsilon=0.1)
        assert np.all(np.abs(adv - x) <= 0.1 + 1e-6)  # 1-ulp float32 slack
        # where the gradient is nonzero the step is exactly epsilon
        grad, _ = input_gradient(model, nn.cross_entropy, x, y)
        nonzero = np.abs(grad) > 1e-12
        assert np.allclose(np.abs(adv - x)[nonzero], 0.1)

    def test_fgsm_increases_loss(self):
        ds, model = make_problem()
        # train briefly so gradients are meaningful
        opt = optim.SGD(model.parameters(), lr=0.2)
        trainer = make_trainer("sgd", model, nn.CrossEntropyLoss(), opt)
        trainer.fit(DataLoader(ds, batch_size=30, seed=0), epochs=5)
        x, y = ds[np.arange(len(ds))]
        _, clean_loss = input_gradient(model, nn.cross_entropy, x, y)
        adv = fgsm(model, nn.cross_entropy, x, y, epsilon=0.3)
        _, adv_loss = input_gradient(model, nn.cross_entropy, adv, y)
        assert adv_loss > clean_loss

    def test_pgd_stays_in_ball(self):
        ds, model = make_problem()
        x, y = ds[np.arange(16)]
        adv = pgd(model, nn.cross_entropy, x, y, epsilon=0.2, steps=5, seed=0)
        assert np.all(np.abs(adv - x) <= 0.2 + 1e-6)  # 1-ulp float32 slack

    def test_pgd_at_least_as_strong_as_fgsm(self):
        ds, model = make_problem()
        opt = optim.SGD(model.parameters(), lr=0.2)
        make_trainer("sgd", model, nn.CrossEntropyLoss(), opt).fit(
            DataLoader(ds, batch_size=30, seed=0), epochs=5
        )
        x, y = ds[np.arange(len(ds))]
        acc_fgsm = robust_accuracy(model, nn.cross_entropy, x, y, 0.3, attack="fgsm")
        acc_pgd = robust_accuracy(
            model, nn.cross_entropy, x, y, 0.3, attack="pgd", steps=10
        )
        assert acc_pgd <= acc_fgsm + 0.05

    def test_validation(self):
        ds, model = make_problem()
        x, y = ds[np.arange(4)]
        with pytest.raises(ValueError):
            fgsm(model, nn.cross_entropy, x, y, epsilon=-0.1)
        with pytest.raises(ValueError):
            pgd(model, nn.cross_entropy, x, y, epsilon=0.1, steps=0)
        with pytest.raises(KeyError):
            robust_accuracy(model, nn.cross_entropy, x, y, 0.1, attack="carlini")

    def test_epsilon_zero_is_clean_accuracy(self):
        ds, model = make_problem()
        x, y = ds[np.arange(len(ds))]
        from repro.core.metrics import accuracy
        from repro.tensor import Tensor, no_grad

        model.eval()
        with no_grad():
            clean = accuracy(model(Tensor(x)), y)
        assert np.isclose(
            robust_accuracy(model, nn.cross_entropy, x, y, 0.0, attack="fgsm"), clean
        )


class TestCURETrainer:
    def test_trains(self):
        ds, model = make_problem()
        opt = optim.SGD(model.parameters(), lr=0.2, momentum=0.9)
        trainer = make_trainer(
            "cure", model, nn.CrossEntropyLoss(), opt, h=0.5, gamma=0.05
        )
        history = trainer.fit(DataLoader(ds, batch_size=30, seed=0), epochs=5)
        assert history["train_loss"][-1] < history["train_loss"][0]
        assert history["train_acc"][-1] > 0.5

    def test_gamma_zero_matches_sgd_gradient(self):
        ds, _ = make_problem()
        x, y = ds[np.arange(30)]
        m1 = MLP(2, hidden=(8,), num_classes=3, rng=np.random.default_rng(1))
        m2 = MLP(2, hidden=(8,), num_classes=3, rng=np.random.default_rng(1))
        t1 = make_trainer("cure", m1, nn.CrossEntropyLoss(),
                          optim.SGD(m1.parameters(), lr=1e-12), h=0.5, gamma=0.0)
        t2 = make_trainer("sgd", m2, nn.CrossEntropyLoss(),
                          optim.SGD(m2.parameters(), lr=1e-12))
        t1.training_step(x, y)
        t2.training_step(x, y)
        for p1, p2 in zip(t1.params, t2.params):
            assert np.allclose(p1.grad.data, p2.grad.data, atol=1e-10)

    def test_improves_adversarial_robustness_vs_sgd(self):
        """CURE's raison d'etre: flatter input curvature -> better robust
        accuracy under attack, on a task where both fit cleanly."""
        ds, _ = make_problem(seed=2)

        def train(method, **kw):
            model = MLP(2, hidden=(16,), num_classes=3, rng=np.random.default_rng(3))
            opt = optim.SGD(model.parameters(), lr=0.1, momentum=0.9)
            sched = optim.CosineAnnealingLR(opt, t_max=30)
            make_trainer(method, model, nn.CrossEntropyLoss(), opt, scheduler=sched, **kw).fit(
                DataLoader(ds, batch_size=30, seed=0), epochs=30
            )
            return model

        x, y = ds[np.arange(len(ds))]
        sgd_model = train("sgd")
        cure_model = train("cure", h=0.25, gamma=0.1)
        sgd_rob = robust_accuracy(sgd_model, nn.cross_entropy, x, y, 0.4, attack="pgd", steps=10)
        cure_rob = robust_accuracy(cure_model, nn.cross_entropy, x, y, 0.4, attack="pgd", steps=10)
        assert cure_rob >= sgd_rob - 0.02

    def test_validation(self):
        ds, model = make_problem()
        opt = optim.SGD(model.parameters(), lr=0.1)
        with pytest.raises(ValueError):
            make_trainer("cure", model, nn.CrossEntropyLoss(), opt, h=0.0)
        with pytest.raises(ValueError):
            make_trainer("cure", model, nn.CrossEntropyLoss(), opt, gamma=-1)
        with pytest.raises(ValueError):
            make_trainer("cure", model, nn.CrossEntropyLoss(), opt, penalty="l0")
