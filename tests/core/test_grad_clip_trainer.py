"""grad_clip plumbing through trainers and the experiment config."""

import numpy as np
import pytest

from repro import nn, optim
from repro.core import make_trainer
from repro.data import DataLoader, gaussian_blobs
from repro.experiments import make_config
from repro.experiments.runner import build_model, build_trainer, load_experiment_data
from repro.models import MLP


class TestTrainerGradClip:
    def test_clip_applied_in_fit(self):
        ds = gaussian_blobs(n=60, num_classes=3, spread=2.5, noise=0.4, seed=0)
        model = MLP(2, hidden=(8,), num_classes=3, rng=np.random.default_rng(0))
        opt = optim.SGD(model.parameters(), lr=0.2)
        trainer = make_trainer(
            "sgd", model, nn.CrossEntropyLoss(), opt, grad_clip=1e-6
        )
        trainer.fit(DataLoader(ds, batch_size=30, seed=0), epochs=1)
        total = np.sqrt(sum(np.sum(p.grad.data ** 2) for p in trainer.params))
        assert total <= 1e-6 + 1e-12

    def test_invalid_grad_clip(self):
        model = MLP(2, hidden=(4,), num_classes=2)
        opt = optim.SGD(model.parameters(), lr=0.1)
        with pytest.raises(ValueError):
            make_trainer("sgd", model, nn.CrossEntropyLoss(), opt, grad_clip=0.0)

    @pytest.mark.parametrize("method,kw", [
        ("hero", {"h": 0.01, "gamma": 0.05}),
        ("first_order", {"h": 0.01}),
        ("grad_l1", {"lambda_l1": 0.001}),
    ])
    def test_all_methods_accept_grad_clip(self, method, kw):
        model = MLP(2, hidden=(4,), num_classes=2, rng=np.random.default_rng(0))
        opt = optim.SGD(model.parameters(), lr=0.1)
        trainer = make_trainer(
            method, model, nn.CrossEntropyLoss(), opt, grad_clip=5.0, **kw
        )
        assert trainer.grad_clip == 5.0


class TestConfigGradClip:
    def test_config_field_reaches_trainer(self):
        config = make_config(
            "ResNet20-fast", "cifar10_like", "hero", profile="smoke", grad_clip=2.5
        )
        _train, _test, spec = load_experiment_data(config)
        model = build_model(config, spec)
        trainer = build_trainer(config, model)
        assert trainer.grad_clip == 2.5

    def test_default_is_none(self):
        config = make_config("ResNet20-fast", "cifar10_like", "sgd", profile="smoke")
        _train, _test, spec = load_experiment_data(config)
        trainer = build_trainer(config, build_model(config, spec))
        assert trainer.grad_clip is None

    def test_cache_key_includes_grad_clip(self):
        a = make_config("ResNet20-fast", "cifar10_like", "sgd", profile="smoke")
        b = a.with_overrides(grad_clip=1.0)
        assert a.cache_key() != b.cache_key()
