"""Eq. 15 perturbation machinery on multi-tensor parameter lists."""

import numpy as np
import pytest

from repro.core.perturbation import (
    PERTURBATIONS,
    apply_offsets,
    global_perturbation,
    layer_adaptive_perturbation,
)
from repro.nn.module import Parameter


def make_params(shapes, seed=0):
    rng = np.random.default_rng(seed)
    return [Parameter(rng.standard_normal(s)) for s in shapes]


class TestLayerAdaptive:
    def test_per_layer_norms(self):
        params = make_params([(4, 4), (8,), (2, 3, 3)])
        rng = np.random.default_rng(1)
        grads = [rng.standard_normal(p.shape) for p in params]
        offsets = layer_adaptive_perturbation(params, grads, h=0.2)
        for p, g, o in zip(params, grads, offsets):
            # ||h z_i|| = h * ||W_i||
            assert np.isclose(np.linalg.norm(o), 0.2 * np.linalg.norm(p.data))
            # direction along the gradient
            cos = np.sum(o * g) / (np.linalg.norm(o) * np.linalg.norm(g))
            assert np.isclose(cos, 1.0)

    def test_zero_grad_layer_gets_zero_offset(self):
        params = make_params([(3,), (3,)])
        grads = [np.zeros(3), np.ones(3)]
        offsets = layer_adaptive_perturbation(params, grads, h=0.5)
        assert np.allclose(offsets[0], 0.0)
        assert not np.allclose(offsets[1], 0.0)

    def test_length_mismatch_raises(self):
        params = make_params([(3,)])
        with pytest.raises(ValueError):
            layer_adaptive_perturbation(params, [np.ones(3), np.ones(3)], h=0.1)


class TestGlobal:
    def test_single_global_scale(self):
        params = make_params([(4, 4), (8,)])
        rng = np.random.default_rng(2)
        grads = [rng.standard_normal(p.shape) for p in params]
        offsets = global_perturbation(params, grads, h=0.3)
        total_norm = np.sqrt(sum(np.sum(o ** 2) for o in offsets))
        weight_norm = np.sqrt(sum(np.sum(p.data ** 2) for p in params))
        assert np.isclose(total_norm, 0.3 * weight_norm)

    def test_all_zero_grads(self):
        params = make_params([(3,), (2,)])
        offsets = global_perturbation(params, [np.zeros(3), np.zeros(2)], h=0.5)
        assert all(np.allclose(o, 0.0) for o in offsets)

    def test_differs_from_layer_adaptive_with_heterogeneous_layers(self):
        params = make_params([(4, 4), (8,)])
        params[0].data *= 10  # make layer norms very different
        rng = np.random.default_rng(3)
        grads = [rng.standard_normal(p.shape) for p in params]
        la = layer_adaptive_perturbation(params, grads, h=0.1)
        gl = global_perturbation(params, grads, h=0.1)
        assert not np.allclose(la[1], gl[1])


class TestApplyOffsets:
    def test_roundtrip(self):
        params = make_params([(3, 3)])
        before = params[0].data.copy()
        offsets = [np.ones((3, 3))]
        apply_offsets(params, offsets, sign=+1.0)
        assert np.allclose(params[0].data, before + 1)
        apply_offsets(params, offsets, sign=-1.0)
        assert np.allclose(params[0].data, before)

    def test_registry(self):
        assert set(PERTURBATIONS) == {"layer_adaptive", "global"}
