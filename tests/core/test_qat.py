"""QAT trainer: straight-through mechanics and quantized evaluation."""

import numpy as np
import pytest

from repro import nn, optim
from repro.core import make_trainer
from repro.data import ArrayDataset, DataLoader, gaussian_blobs
from repro.models import MLP, create_model
from repro.quant import QuantScheme, evaluate_quantized, quantize_array


def make_problem(seed=0):
    ds = gaussian_blobs(n=90, num_classes=3, spread=2.5, noise=0.4, seed=seed)
    model = MLP(2, hidden=(16,), num_classes=3, rng=np.random.default_rng(seed))
    return ds, model


class TestMechanics:
    def test_master_weights_stay_full_precision(self):
        ds, model = make_problem()
        opt = optim.SGD(model.parameters(), lr=0.1)
        trainer = make_trainer("qat", model, nn.CrossEntropyLoss(), opt, bits=3)
        x, y = ds[np.arange(30)]
        trainer.training_step(x, y)
        opt.step()
        # after a step, weights are generally NOT on the 3-bit grid
        weight = model.net[0].weight.data
        quantized, _ = quantize_array(weight, QuantScheme(3))
        assert not np.allclose(weight, quantized)

    def test_gradient_computed_at_quantized_point(self):
        """The STE gradient equals the SGD gradient evaluated at W_q."""
        ds, _ = make_problem()
        x, y = ds[np.arange(30)]
        m1 = MLP(2, hidden=(8,), num_classes=3, rng=np.random.default_rng(1))
        m2 = MLP(2, hidden=(8,), num_classes=3, rng=np.random.default_rng(1))
        t_qat = make_trainer("qat", m1, nn.CrossEntropyLoss(),
                             optim.SGD(m1.parameters(), lr=1e-12), bits=3)
        # manually quantize m2's weights and take a plain gradient
        for module in (m2.net[0], m2.net[2]):
            module.weight.data, _ = quantize_array(module.weight.data, QuantScheme(3))
        t_sgd = make_trainer("sgd", m2, nn.CrossEntropyLoss(),
                             optim.SGD(m2.parameters(), lr=1e-12))
        t_qat.training_step(x, y)
        t_sgd.training_step(x, y)
        for p1, p2 in zip(t_qat.params, t_sgd.params):
            assert np.allclose(p1.grad.data, p2.grad.data, atol=1e-12)

    def test_requires_quantizable_layers(self):
        model = _WithParam()
        with pytest.raises(ValueError):
            make_trainer(
                "qat",
                model,
                nn.CrossEntropyLoss(),
                optim.SGD(model.parameters(), lr=0.1),
            )


class _WithParam(nn.Module):
    def __init__(self):
        super().__init__()
        from repro.nn.module import Parameter

        self.w = Parameter(np.zeros(3))

    def forward(self, x):
        return self.w


class TestBehaviour:
    def test_qat_trains_and_excels_at_target_precision(self):
        ds, model = make_problem()
        opt = optim.SGD(model.parameters(), lr=0.2, momentum=0.9)
        sched = optim.CosineAnnealingLR(opt, t_max=20)
        trainer = make_trainer(
            "qat", model, nn.CrossEntropyLoss(), opt, scheduler=sched, bits=4
        )
        history = trainer.fit(DataLoader(ds, batch_size=30, seed=0), epochs=20)
        assert history["train_loss"][-1] < history["train_loss"][0]

        from repro.experiments.runner import evaluate_accuracy

        eval_fn = lambda m: evaluate_accuracy(m, ds)
        q4, _ = evaluate_quantized(model, QuantScheme(4), eval_fn)
        assert q4 > 0.7  # strong at its target precision

    def test_on_conv_model(self):
        rng = np.random.default_rng(0)
        ds = ArrayDataset(rng.standard_normal((40, 3, 8, 8)), rng.integers(0, 3, 40))
        model = create_model("vgg6_bn", num_classes=3, scale=0.5, seed=0)
        opt = optim.SGD(model.parameters(), lr=0.05)
        trainer = make_trainer("qat", model, nn.CrossEntropyLoss(), opt, bits=4)
        history = trainer.fit(DataLoader(ds, batch_size=20, seed=0), epochs=2)
        assert np.isfinite(history["train_loss"][-1])
