"""Metrics, History, and training callbacks."""

import numpy as np

from repro.core import (
    AverageMeter,
    CheckpointCallback,
    GeneralizationGapCallback,
    History,
    LambdaCallback,
    accuracy,
    correct_count,
)


class TestMetrics:
    def test_accuracy(self):
        logits = np.array([[2.0, 1.0], [0.0, 3.0], [1.0, 0.0]])
        assert accuracy(logits, np.array([0, 1, 1])) == 2 / 3
        assert correct_count(logits, np.array([0, 1, 1])) == 2

    def test_accuracy_accepts_tensor(self):
        from repro.tensor import Tensor

        logits = Tensor(np.array([[1.0, 0.0]]))
        assert accuracy(logits, np.array([0])) == 1.0

    def test_average_meter_weighted(self):
        meter = AverageMeter()
        meter.update(1.0, weight=1)
        meter.update(0.0, weight=3)
        assert meter.average == 0.25
        meter.reset()
        assert meter.average == 0.0


class TestHistory:
    def test_columns_and_padding(self):
        history = History()
        history.log(a=1, b=2)
        history.log(a=3)
        assert history["a"] == [1, 3]
        assert history["b"] == [2, None]
        assert history.columns() == ["a", "b"]

    def test_last(self):
        history = History()
        history.log(a=1)
        history.log(b=5)
        assert history.last("a") == 1
        assert history.last("b") == 5
        assert history.last("missing", default=-1) == -1

    def test_to_dict(self):
        history = History()
        history.log(x=1.0)
        assert history.to_dict() == {"x": [1.0]}


class _FakeTrainer:
    def __init__(self, model):
        self.model = model


class TestCallbacks:
    def test_generalization_gap(self):
        cb = GeneralizationGapCallback()
        logs = {"train_acc": 0.9, "test_acc": 0.7}
        cb.on_epoch_end(None, 0, logs)
        assert np.isclose(logs["generalization_gap"], 0.2)
        logs2 = {"train_acc": 0.9}
        cb.on_epoch_end(None, 0, logs2)
        assert "generalization_gap" not in logs2

    def test_checkpoint_keeps_best(self):
        from repro.models import MLP

        model = MLP(2, hidden=(4,), num_classes=2, rng=np.random.default_rng(0))
        trainer = _FakeTrainer(model)
        cb = CheckpointCallback(monitor="test_acc", mode="max")
        cb.on_epoch_end(trainer, 0, {"test_acc": 0.5})
        best_w = model.state_dict()["net.0.weight"].copy()
        # degrade the model, report worse metric: snapshot must not move
        model.net[0].weight.data = model.net[0].weight.data * 0
        cb.on_epoch_end(trainer, 1, {"test_acc": 0.3})
        assert cb.best_epoch == 0
        assert np.allclose(cb.best_state["net.0.weight"], best_w)
        # better metric replaces the snapshot
        cb.on_epoch_end(trainer, 2, {"test_acc": 0.9})
        assert cb.best_epoch == 2
        assert np.allclose(cb.best_state["net.0.weight"], 0.0)

    def test_checkpoint_min_mode(self):
        cb = CheckpointCallback(monitor="loss", mode="min")
        from repro.models import MLP

        trainer = _FakeTrainer(MLP(2, hidden=(4,), num_classes=2))
        cb.on_epoch_end(trainer, 0, {"loss": 1.0})
        cb.on_epoch_end(trainer, 1, {"loss": 2.0})
        assert cb.best_epoch == 0

    def test_checkpoint_invalid_mode(self):
        import pytest

        with pytest.raises(ValueError):
            CheckpointCallback(mode="median")

    def test_lambda_callback(self):
        calls = []
        cb = LambdaCallback(lambda trainer, epoch, logs: calls.append(epoch))
        cb.on_epoch_end(None, 3, {})
        assert calls == [3]

    def test_hessian_norm_callback_logs(self):
        from repro import nn, optim
        from repro.core import HessianNormCallback, make_trainer
        from repro.data import ArrayDataset, DataLoader

        rng = np.random.default_rng(0)
        ds = ArrayDataset(rng.standard_normal((30, 4)), rng.integers(0, 2, 30))
        from repro.models import MLP

        model = MLP(4, hidden=(8,), num_classes=2, rng=rng)
        loader = DataLoader(ds, batch_size=15, seed=0)
        cb = HessianNormCallback(loader, nn.CrossEntropyLoss(), h=0.01, max_batches=1)
        trainer = make_trainer(
            "sgd", model, nn.CrossEntropyLoss(),
            optim.SGD(model.parameters(), lr=0.1), callbacks=[cb],
        )
        history = trainer.fit(DataLoader(ds, batch_size=15, seed=1), epochs=2)
        values = history["hessian_norm"]
        assert len(values) == 2
        assert all(v is not None and v >= 0 for v in values)

    def test_hessian_norm_callback_every(self):
        from repro.core import HessianNormCallback

        cb = HessianNormCallback(loader=None, loss_fn=None, every=2)
        logs = {}
        cb.on_epoch_end(None, 1, logs)  # epoch 1 skipped (1 % 2 != 0)
        assert "hessian_norm" not in logs
