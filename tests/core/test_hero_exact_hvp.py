"""The exact-HVP ablation arm of HERO (third-order autograd)."""

import numpy as np
import pytest

from repro import nn, optim
from repro.core import make_trainer
from repro.data import DataLoader, gaussian_blobs
from repro.models import MLP
from repro.nn.module import Module, Parameter
from repro.tensor import Tensor


class VectorModel(Module):
    def __init__(self, w0):
        super().__init__()
        self.w = Parameter(np.asarray(w0, dtype=np.float64))

    def forward(self, _x):
        return self.w


def run_one_step(model, loss_fn, **kwargs):
    opt = optim.SGD(model.parameters(), lr=1e-12)
    trainer = make_trainer("hero", model, loss_fn, opt, regularizer="exact_hvp", **kwargs)
    trainer.training_step(np.zeros(1), np.zeros(1))
    return model.w.grad.data


class TestClosedForms:
    def test_quadratic_penalty_gradient_vanishes(self):
        """On a quadratic, H is constant so the exact penalty grad is 0 —
        the combined gradient reduces to the perturbed gradient."""
        rng = np.random.default_rng(0)
        n = 5
        a_raw = rng.standard_normal((n, n))
        a_mat = a_raw @ a_raw.T + np.eye(n)
        b_vec = rng.standard_normal(n)
        w0 = rng.standard_normal(n)

        def loss_fn(w, _y):
            return 0.5 * (w * (Tensor(a_mat) @ w.reshape(n, 1)).reshape(n)).sum() + (
                Tensor(b_vec) * w
            ).sum()

        got = run_one_step(VectorModel(w0), loss_fn, h=0.3, gamma=5.0, penalty="sq_norm")
        g0 = a_mat @ w0 + b_vec
        hz = 0.3 * np.linalg.norm(w0) * g0 / np.linalg.norm(g0)
        expected = a_mat @ (w0 + hz) + b_vec  # no reg term at all
        assert np.allclose(got, expected, atol=1e-8)

    def test_quartic_closed_form(self):
        """L = 1/4 sum w^4: Hz = 3w^2 z, d||Hz||^2/dw = 36 w^3 z^2."""
        w0 = np.array([1.0, -2.0, 0.5])
        h, gamma = 0.3, 0.7

        def loss_fn(w, _y):
            return (w ** 4).sum() * 0.25

        got = run_one_step(VectorModel(w0), loss_fn, h=h, gamma=gamma, penalty="sq_norm")
        g0 = w0 ** 3
        z = np.linalg.norm(w0) * g0 / np.linalg.norm(g0)
        perturbed = (w0 + h * z) ** 3
        reg = 36.0 * w0 ** 3 * z ** 2
        expected = perturbed + gamma * reg
        assert np.allclose(got, expected, atol=1e-8)

    def test_norm_penalty_quartic(self):
        """penalty='norm': d||Hz||/dw = (Hz * dHz/dw) / ||Hz||."""
        w0 = np.array([0.8, -1.5, 2.0])
        h, gamma = 0.2, 0.4

        def loss_fn(w, _y):
            return (w ** 4).sum() * 0.25

        got = run_one_step(VectorModel(w0), loss_fn, h=h, gamma=gamma, penalty="norm")
        g0 = w0 ** 3
        z = np.linalg.norm(w0) * g0 / np.linalg.norm(g0)
        hz = 3.0 * w0 ** 2 * z
        d_hz = 6.0 * w0 * z  # elementwise dHz_i/dw_i
        reg = hz * d_hz / np.linalg.norm(hz)
        expected = (w0 + h * z) ** 3 + gamma * reg
        assert np.allclose(got, expected, atol=1e-7)

    def test_weights_restored(self):
        w0 = np.array([1.0, 2.0, 3.0])

        def loss_fn(w, _y):
            return (w ** 4).sum()

        model = VectorModel(w0)
        run_one_step(model, loss_fn, h=0.1, gamma=0.3)
        assert np.allclose(model.w.data, w0, atol=1e-12)

    def test_invalid_regularizer_name(self):
        model = VectorModel(np.ones(2))
        opt = optim.SGD(model.parameters(), lr=0.1)
        with pytest.raises(ValueError):
            make_trainer(
                "hero", model, lambda w, y: (w ** 2).sum(), opt, regularizer="spectral"
            )


class TestOnRealModel:
    def test_trains_mlp(self):
        ds = gaussian_blobs(n=60, num_classes=3, spread=2.5, noise=0.4, seed=0)
        model = MLP(2, hidden=(8,), num_classes=3, rng=np.random.default_rng(0))
        loss_fn = nn.CrossEntropyLoss()
        opt = optim.SGD(model.parameters(), lr=0.2, momentum=0.9)
        trainer = make_trainer(
            "hero", model, loss_fn, opt, h=0.01, gamma=0.02, regularizer="exact_hvp"
        )
        history = trainer.fit(DataLoader(ds, batch_size=30, seed=0), epochs=4)
        assert history["train_loss"][-1] < history["train_loss"][0]
        assert all(np.isfinite(v) for v in history["train_loss"])

    def test_matches_finite_diff_direction_on_smooth_model(self):
        """For small h the FD rule approximates d(h^2 ||Hz||^2); directions
        of the two regularizer gradients should correlate positively on a
        tanh MLP (smooth, third-order nonzero)."""
        ds = gaussian_blobs(n=30, num_classes=2, spread=2.0, noise=0.3, seed=1)
        x, y = ds[np.arange(30)]

        def grads_for(regularizer, h):
            model = MLP(2, hidden=(6,), num_classes=2, activation="tanh",
                        rng=np.random.default_rng(3))
            opt = optim.SGD(model.parameters(), lr=1e-12)
            trainer = make_trainer(
                "hero", model, nn.CrossEntropyLoss(), opt,
                h=h, gamma=1.0, penalty="sq_norm", regularizer=regularizer,
            )
            trainer.training_step(x, y)
            full = np.concatenate([p.grad.data.reshape(-1) for p in trainer.params])
            # isolate the reg component by subtracting the gamma=0 run
            model2 = MLP(2, hidden=(6,), num_classes=2, activation="tanh",
                         rng=np.random.default_rng(3))
            opt2 = optim.SGD(model2.parameters(), lr=1e-12)
            trainer2 = make_trainer(
                "hero", model2, nn.CrossEntropyLoss(), opt2,
                h=h, gamma=0.0, penalty="sq_norm", regularizer=regularizer,
            )
            trainer2.training_step(x, y)
            base = np.concatenate([p.grad.data.reshape(-1) for p in trainer2.params])
            return full - base

        h = 1e-3
        fd = grads_for("finite_diff", h) / h ** 2  # FD penalty ~ h^2 ||Hz||^2
        exact = grads_for("exact_hvp", h)
        cosine = np.dot(fd, exact) / (np.linalg.norm(fd) * np.linalg.norm(exact) + 1e-30)
        assert cosine > 0.5, f"cosine similarity only {cosine:.3f}"
