"""Trainer loop behaviour on real (tiny) models and data."""

import numpy as np
import pytest

from repro import nn, optim
from repro.core import make_trainer, available_methods, Callback
from repro.data import ArrayDataset, DataLoader, gaussian_blobs
from repro.models import MLP


def make_problem(seed=0):
    ds = gaussian_blobs(n=90, num_classes=3, spread=2.5, noise=0.4, seed=seed)
    model = MLP(2, hidden=(16,), num_classes=3, rng=np.random.default_rng(seed))
    return ds, model


def make_trainer_for(method, model, epochs=5, **kwargs):
    loss_fn = nn.CrossEntropyLoss()
    opt = optim.SGD(model.parameters(), lr=0.2, momentum=0.9)
    sched = optim.CosineAnnealingLR(opt, t_max=epochs)
    return make_trainer(method, model, loss_fn, opt, scheduler=sched, **kwargs)


class TestAllMethodsTrain:
    @pytest.mark.parametrize("method", ["sgd", "grad_l1", "first_order", "hero"])
    def test_loss_decreases_and_accuracy_rises(self, method):
        ds, model = make_problem()
        kwargs = {}
        if method in ("hero", "first_order"):
            kwargs["h"] = 0.01
        if method == "hero":
            kwargs["gamma"] = 0.02
        if method == "grad_l1":
            kwargs["lambda_l1"] = 0.001
        trainer = make_trainer_for(method, model, **kwargs)
        loader = DataLoader(ds, batch_size=30, seed=0)
        history = trainer.fit(loader, epochs=5, test_loader=DataLoader(ds, batch_size=90, shuffle=False))
        losses = history["train_loss"]
        assert losses[-1] < losses[0]
        assert history["test_acc"][-1] > 0.8

    def test_available_methods(self):
        assert available_methods() == ["cure", "first_order", "grad_l1", "hero", "qat", "sgd"]

    def test_unknown_method_raises(self):
        ds, model = make_problem()
        with pytest.raises(KeyError):
            make_trainer("adamw", model, nn.CrossEntropyLoss(), optim.SGD(model.parameters(), lr=0.1))


class TestLoop:
    def test_history_columns(self):
        ds, model = make_problem()
        trainer = make_trainer_for("sgd", model)
        loader = DataLoader(ds, batch_size=30, seed=0)
        history = trainer.fit(loader, epochs=3, test_loader=DataLoader(ds, batch_size=90, shuffle=False))
        for col in ("epoch", "lr", "train_loss", "train_acc", "test_loss", "test_acc"):
            assert col in history.columns()
            assert len(history[col]) == 3

    def test_scheduler_steps_per_epoch(self):
        ds, model = make_problem()
        trainer = make_trainer_for("sgd", model, epochs=4)
        loader = DataLoader(ds, batch_size=30, seed=0)
        history = trainer.fit(loader, epochs=4)
        lrs = history["lr"]
        assert lrs[0] == 0.2  # logged before the scheduler's first step
        assert all(a >= b for a, b in zip(lrs, lrs[1:]))

    def test_callbacks_invoked_in_order(self):
        events = []

        class Recorder(Callback):
            def on_train_begin(self, trainer):
                events.append("begin")

            def on_epoch_end(self, trainer, epoch, logs):
                events.append(f"epoch{epoch}")
                logs["custom_metric"] = 42.0

            def on_train_end(self, trainer):
                events.append("end")

        ds, model = make_problem()
        loss_fn = nn.CrossEntropyLoss()
        opt = optim.SGD(model.parameters(), lr=0.1)
        trainer = make_trainer("sgd", model, loss_fn, opt, callbacks=[Recorder()])
        history = trainer.fit(DataLoader(ds, batch_size=30, seed=0), epochs=2)
        assert events == ["begin", "epoch0", "epoch1", "end"]
        assert history["custom_metric"] == [42.0, 42.0]

    def test_evaluate_restores_train_mode(self):
        ds, model = make_problem()
        trainer = make_trainer_for("sgd", model)
        trainer.evaluate(DataLoader(ds, batch_size=30, shuffle=False))
        assert model.training

    def test_evaluate_returns_loss_and_acc(self):
        ds, model = make_problem()
        trainer = make_trainer_for("sgd", model)
        loss, acc = trainer.evaluate(DataLoader(ds, batch_size=30, shuffle=False))
        assert loss > 0
        assert 0.0 <= acc <= 1.0


class TestBNInteraction:
    def test_hero_trains_bn_model(self):
        """HERO's double forward/backward must work through BatchNorm."""
        rng = np.random.default_rng(0)
        x = rng.standard_normal((60, 3, 6, 6))
        y = rng.integers(0, 3, 60)
        ds = ArrayDataset(x, y)
        model = nn.Sequential(
            nn.Conv2d(3, 6, 3, padding=1, rng=rng),
            nn.BatchNorm2d(6),
            nn.ReLU(),
            nn.GlobalAvgPool2d(),
            nn.Linear(6, 3, rng=rng),
        )
        loss_fn = nn.CrossEntropyLoss()
        opt = optim.SGD(model.parameters(), lr=0.1, momentum=0.9)
        trainer = make_trainer("hero", model, loss_fn, opt, h=0.01, gamma=0.05)
        history = trainer.fit(DataLoader(ds, batch_size=20, seed=0), epochs=3)
        assert history["train_loss"][-1] < history["train_loss"][0] + 0.5
        assert np.all(np.isfinite(model.state_dict()["0.weight"]))


class TestStepHook:
    """The between-steps hook the fleet's lease renewal rides on."""

    def test_on_step_end_called_with_global_step(self):
        steps = []

        class StepRecorder(Callback):
            def on_step_end(self, trainer, step):
                steps.append(step)

        ds, model = make_problem()
        loss_fn = nn.CrossEntropyLoss()
        opt = optim.SGD(model.parameters(), lr=0.1)
        trainer = make_trainer("sgd", model, loss_fn, opt, callbacks=[StepRecorder()])
        trainer.fit(DataLoader(ds, batch_size=30, seed=0), epochs=2)
        # 90 samples / batch 30 = 3 steps per epoch; the counter is
        # global across epochs, not reset per epoch
        assert steps == [0, 1, 2, 3, 4, 5]
        assert trainer.global_step == 6

    def test_stop_requested_abandons_epoch_mid_stream(self):
        class StopAtStep(Callback):
            def __init__(self, at):
                self.at = at

            def on_step_end(self, trainer, step):
                if step == self.at:
                    trainer.stop_requested = True

        ds, model = make_problem()
        loss_fn = nn.CrossEntropyLoss()
        opt = optim.SGD(model.parameters(), lr=0.1)
        trainer = make_trainer(
            "sgd", model, loss_fn, opt, callbacks=[StopAtStep(1)]
        )
        trainer.fit(DataLoader(ds, batch_size=30, seed=0), epochs=1)
        # 3 batches in the epoch, stopped after the second step
        assert trainer.global_step == 2
