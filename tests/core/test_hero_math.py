"""Analytic validation of HERO's update rule (Eq. 15-17, Algorithm 1).

On losses with closed-form gradients and Hessians the combined HERO
gradient can be written down exactly; these tests pin every piece:
the Eq. 15 perturbation, the first-order (perturbed gradient) term and
the double-backprop Hessian-penalty term.
"""

import numpy as np
import pytest

from repro import optim
from repro.core import HEROTrainer, SAMTrainer, GradL1Trainer, make_trainer
from repro.nn.module import Module, Parameter
from repro.tensor import Tensor


class VectorModel(Module):
    """A bare parameter vector; the "network" is the identity."""

    def __init__(self, w0):
        super().__init__()
        self.w = Parameter(np.asarray(w0, dtype=np.float64))

    def forward(self, _x):
        return self.w


def quadratic_loss(a_mat, b_vec):
    a_t = Tensor(a_mat)
    b_t = Tensor(b_vec)
    n = len(b_vec)

    def loss_fn(w, _y):
        return 0.5 * (w * (a_t @ w.reshape(n, 1)).reshape(n)).sum() + (b_t * w).sum()

    return loss_fn


@pytest.fixture
def quadratic():
    rng = np.random.default_rng(0)
    n = 5
    a_raw = rng.standard_normal((n, n))
    a_mat = a_raw @ a_raw.T + np.eye(n)  # SPD Hessian
    b_vec = rng.standard_normal(n)
    w0 = rng.standard_normal(n)
    return a_mat, b_vec, w0


def run_one_step(trainer_name, model, loss_fn, **kwargs):
    opt = optim.SGD(model.parameters(), lr=1e-12)
    trainer = make_trainer(trainer_name, model, loss_fn, opt, **kwargs)
    trainer.training_step(np.zeros(1), np.zeros(1))
    return model.w.grad.data


class TestEq15Perturbation:
    def test_direction_and_scale(self, quadratic):
        a_mat, b_vec, w0 = quadratic
        from repro.core.perturbation import layer_adaptive_perturbation

        model = VectorModel(w0)
        g0 = a_mat @ w0 + b_vec
        offsets = layer_adaptive_perturbation([model.w], [g0], h=0.25)
        expected = 0.25 * np.linalg.norm(w0) * g0 / np.linalg.norm(g0)
        assert np.allclose(offsets[0], expected)

    def test_zero_gradient_gives_zero_offset(self, quadratic):
        _a, _b, w0 = quadratic
        from repro.core.perturbation import layer_adaptive_perturbation

        model = VectorModel(w0)
        offsets = layer_adaptive_perturbation([model.w], [np.zeros_like(w0)], h=0.5)
        assert np.allclose(offsets[0], 0.0)

    def test_global_variant_single_tensor_matches(self, quadratic):
        a_mat, b_vec, w0 = quadratic
        from repro.core.perturbation import (
            global_perturbation,
            layer_adaptive_perturbation,
        )

        model = VectorModel(w0)
        g0 = a_mat @ w0 + b_vec
        # with exactly one layer, both variants coincide
        la = layer_adaptive_perturbation([model.w], [g0], h=0.1)
        gl = global_perturbation([model.w], [g0], h=0.1)
        assert np.allclose(la[0], gl[0])


class TestHEROGradient:
    def test_sq_norm_penalty_closed_form(self, quadratic):
        a_mat, b_vec, w0 = quadratic
        h, gamma = 0.3, 0.7
        model = VectorModel(w0)
        got = run_one_step(
            "hero", model, quadratic_loss(a_mat, b_vec), h=h, gamma=gamma, penalty="sq_norm"
        )
        g0 = a_mat @ w0 + b_vec
        hz = h * np.linalg.norm(w0) * g0 / np.linalg.norm(g0)
        w_star = w0 + hz
        # G(W*) = ||A W* + b - g0||^2 ; dG/dW* = 2 A^T (A hz)
        expected = (a_mat @ w_star + b_vec) + gamma * 2.0 * a_mat.T @ (a_mat @ hz)
        assert np.allclose(got, expected, atol=1e-8)

    def test_norm_penalty_closed_form(self, quadratic):
        a_mat, b_vec, w0 = quadratic
        h, gamma = 0.3, 0.7
        model = VectorModel(w0)
        got = run_one_step(
            "hero", model, quadratic_loss(a_mat, b_vec), h=h, gamma=gamma, penalty="norm"
        )
        g0 = a_mat @ w0 + b_vec
        hz = h * np.linalg.norm(w0) * g0 / np.linalg.norm(g0)
        w_star = w0 + hz
        diff = a_mat @ hz
        expected = (a_mat @ w_star + b_vec) + gamma * a_mat.T @ diff / np.linalg.norm(diff)
        assert np.allclose(got, expected, atol=1e-6)

    def test_quartic_closed_form(self):
        w0 = np.array([1.0, -2.0, 0.5])
        h, gamma = 0.3, 0.7
        model = VectorModel(w0)

        def loss_fn(w, _y):
            return (w ** 4).sum() * 0.25

        got = run_one_step("hero", model, loss_fn, h=h, gamma=gamma, penalty="sq_norm")
        g0 = w0 ** 3
        hz = h * np.linalg.norm(w0) * g0 / np.linalg.norm(g0)
        ws = w0 + hz
        # G = ||ws^3 - w0^3||^2 -> dG/dws = 2 (ws^3 - g0) * 3 ws^2
        expected = ws ** 3 + gamma * 2 * (ws ** 3 - g0) * 3 * ws ** 2
        assert np.allclose(got, expected, atol=1e-8)

    def test_weights_restored_after_step(self, quadratic):
        a_mat, b_vec, w0 = quadratic
        model = VectorModel(w0)
        run_one_step("hero", model, quadratic_loss(a_mat, b_vec), h=0.3, gamma=0.5)
        assert np.allclose(model.w.data, w0, atol=1e-10)

    def test_gamma_zero_equals_sam(self, quadratic):
        a_mat, b_vec, w0 = quadratic
        loss_fn = quadratic_loss(a_mat, b_vec)
        hero_grad = run_one_step("hero", VectorModel(w0), loss_fn, h=0.3, gamma=0.0)
        sam_grad = run_one_step("first_order", VectorModel(w0), loss_fn, h=0.3)
        assert np.allclose(hero_grad, sam_grad, atol=1e-10)

    def test_validation(self, quadratic):
        a_mat, b_vec, w0 = quadratic
        model = VectorModel(w0)
        loss_fn = quadratic_loss(a_mat, b_vec)
        opt = optim.SGD(model.parameters(), lr=0.1)
        with pytest.raises(ValueError):
            HEROTrainer(model, loss_fn, opt, h=-1.0)
        with pytest.raises(ValueError):
            HEROTrainer(model, loss_fn, opt, gamma=-0.1)
        with pytest.raises(ValueError):
            HEROTrainer(model, loss_fn, opt, penalty="cubic")
        with pytest.raises(ValueError):
            HEROTrainer(model, loss_fn, opt, perturbation="random")


class TestSAMGradient:
    def test_perturbed_gradient(self, quadratic):
        a_mat, b_vec, w0 = quadratic
        got = run_one_step("first_order", VectorModel(w0), quadratic_loss(a_mat, b_vec), h=0.3)
        g0 = a_mat @ w0 + b_vec
        hz = 0.3 * np.linalg.norm(w0) * g0 / np.linalg.norm(g0)
        expected = a_mat @ (w0 + hz) + b_vec
        assert np.allclose(got, expected, atol=1e-10)

    def test_weights_restored(self, quadratic):
        a_mat, b_vec, w0 = quadratic
        model = VectorModel(w0)
        run_one_step("first_order", model, quadratic_loss(a_mat, b_vec), h=0.3)
        assert np.allclose(model.w.data, w0, atol=1e-12)

    def test_validation(self, quadratic):
        a_mat, b_vec, w0 = quadratic
        model = VectorModel(w0)
        opt = optim.SGD(model.parameters(), lr=0.1)
        with pytest.raises(ValueError):
            SAMTrainer(model, quadratic_loss(a_mat, b_vec), opt, h=0.0)


class TestGradL1Gradient:
    def test_closed_form(self, quadratic):
        a_mat, b_vec, w0 = quadratic
        lam = 0.05
        got = run_one_step(
            "grad_l1", VectorModel(w0), quadratic_loss(a_mat, b_vec), lambda_l1=lam
        )
        g0 = a_mat @ w0 + b_vec
        # d/dw ||g||_1 = A^T sign(g)
        expected = g0 + lam * a_mat.T @ np.sign(g0)
        assert np.allclose(got, expected, atol=1e-10)

    def test_lambda_zero_equals_sgd(self, quadratic):
        a_mat, b_vec, w0 = quadratic
        loss_fn = quadratic_loss(a_mat, b_vec)
        gl1 = run_one_step("grad_l1", VectorModel(w0), loss_fn, lambda_l1=0.0)
        sgd = run_one_step("sgd", VectorModel(w0), loss_fn)
        assert np.allclose(gl1, sgd, atol=1e-12)

    def test_validation(self, quadratic):
        a_mat, b_vec, w0 = quadratic
        model = VectorModel(w0)
        opt = optim.SGD(model.parameters(), lr=0.1)
        with pytest.raises(ValueError):
            GradL1Trainer(model, quadratic_loss(a_mat, b_vec), opt, lambda_l1=-1.0)


class TestHEROOptimizesTarget:
    def test_hero_reduces_hessian_eigenvalue_vs_sgd(self):
        """On a quartic valley, HERO should converge to flatter weights.

        Loss: f(w) = sum_i (w_i^2 - 1)^2 has minima at w_i = +-1 with
        Hessian 8 I; adding a gamma-weighted curvature penalty biases
        the optimum toward smaller |w| where the Hessian is smaller.
        """
        def loss_fn(w, _y):
            return ((w * w - 1.0) ** 2).sum()

        def train(method, **kwargs):
            model = VectorModel(np.full(4, 0.8))
            opt = optim.SGD(model.parameters(), lr=0.01)
            trainer = make_trainer(method, model, loss_fn, opt, **kwargs)
            for _ in range(150):
                trainer.training_step(np.zeros(1), np.zeros(1))
                opt.step()
            return model.w.data

    # Hessian of f: diag(12 w^2 - 4); smaller |w| => smaller curvature
        w_sgd = train("sgd")
        w_hero = train("hero", h=0.05, gamma=0.5, penalty="sq_norm")
        curvature_sgd = np.abs(12 * w_sgd ** 2 - 4).max()
        curvature_hero = np.abs(12 * w_hero ** 2 - 4).max()
        assert curvature_hero <= curvature_sgd + 1e-9
