"""Mode-connectivity interpolation paths."""

import numpy as np
import pytest

from repro import nn, optim
from repro.core import make_trainer
from repro.data import DataLoader, gaussian_blobs
from repro.landscape import barrier_height, interpolation_path
from repro.models import MLP


def train_model(seed, ds, epochs=10):
    model = MLP(2, hidden=(8,), num_classes=3, rng=np.random.default_rng(seed))
    opt = optim.SGD(model.parameters(), lr=0.2, momentum=0.9)
    make_trainer("sgd", model, nn.CrossEntropyLoss(), opt).fit(
        DataLoader(ds, batch_size=30, seed=seed), epochs=epochs
    )
    return model


class TestInterpolationPath:
    @pytest.fixture(scope="class")
    def setup(self):
        ds = gaussian_blobs(n=90, num_classes=3, spread=2.5, noise=0.4, seed=0)
        m1 = train_model(1, ds)
        m2 = train_model(2, ds)
        x, y = ds[np.arange(len(ds))]
        return ds, m1, m2, [(x, y)]

    def test_path_shape_and_endpoints(self, setup):
        _ds, m1, m2, batches = setup
        path = interpolation_path(
            m1, m1.state_dict(), m2.state_dict(), nn.CrossEntropyLoss(), batches,
            steps=7, start=0.0, stop=1.0,
        )
        assert len(path["ts"]) == 7
        assert len(path["loss"]) == 7
        assert np.all(np.isfinite(path["loss"]))

    def test_identity_path_is_flat(self, setup):
        _ds, m1, _m2, batches = setup
        state = m1.state_dict()
        path = interpolation_path(
            m1, state, state, nn.CrossEntropyLoss(), batches, steps=5,
            start=0.0, stop=1.0,
        )
        assert np.allclose(path["loss"], path["loss"][0], atol=1e-10)
        assert barrier_height(path) == 0.0

    def test_model_restored(self, setup):
        _ds, m1, m2, batches = setup
        before = {n: p.data.copy() for n, p in m1.named_parameters()}
        interpolation_path(
            m1, m1.state_dict(), m2.state_dict(), nn.CrossEntropyLoss(), batches,
            steps=3,
        )
        for n, p in m1.named_parameters():
            assert np.allclose(p.data, before[n])
        assert m1.training

    def test_barrier_nonnegative(self, setup):
        _ds, m1, m2, batches = setup
        path = interpolation_path(
            m1, m1.state_dict(), m2.state_dict(), nn.CrossEntropyLoss(), batches,
            steps=9,
        )
        assert barrier_height(path) >= 0.0

    def test_mismatched_states_raise(self, setup):
        _ds, m1, _m2, batches = setup
        bad = dict(m1.state_dict())
        bad.pop(next(iter(bad)))
        with pytest.raises(ValueError):
            interpolation_path(m1, m1.state_dict(), bad, nn.CrossEntropyLoss(), batches)

    def test_barrier_requires_unit_interval(self):
        with pytest.raises(ValueError):
            barrier_height({"ts": np.array([2.0, 3.0]), "loss": np.array([1.0, 2.0])})


class TestEarlyStopping:
    def test_stops_after_patience(self):
        from repro.core import EarlyStopping

        ds = gaussian_blobs(n=60, num_classes=3, spread=2.5, noise=0.4, seed=0)
        model = MLP(2, hidden=(8,), num_classes=3, rng=np.random.default_rng(0))
        opt = optim.SGD(model.parameters(), lr=1e-9)  # no real progress
        stopper = EarlyStopping(monitor="train_loss", mode="min", patience=2, min_delta=0.5)
        trainer = make_trainer(
            "sgd", model, nn.CrossEntropyLoss(), opt, callbacks=[stopper]
        )
        history = trainer.fit(DataLoader(ds, batch_size=30, seed=0), epochs=20)
        assert stopper.should_stop()
        assert len(history) < 20

    def test_improvement_resets_patience(self):
        from repro.core import EarlyStopping

        stopper = EarlyStopping(monitor="m", mode="max", patience=2)

        class FakeTrainer:
            stop_requested = False

        trainer = FakeTrainer()
        for epoch, value in enumerate([0.1, 0.1, 0.2, 0.2, 0.2]):
            stopper.on_epoch_end(trainer, epoch, {"m": value})
        # stale epochs: after 0.2@2 improvements reset; 0.2@3, 0.2@4 -> 2 stale
        assert trainer.stop_requested

    def test_validation(self):
        from repro.core import EarlyStopping

        with pytest.raises(ValueError):
            EarlyStopping(mode="median")
        with pytest.raises(ValueError):
            EarlyStopping(patience=0)
