"""Loss-landscape tools: directions, surfaces, flat-area metrics."""

import numpy as np

from repro import nn
from repro.landscape import (
    ascii_contour,
    filter_normalize,
    flat_area_fraction,
    loss_line,
    loss_surface,
    make_plot_directions,
    max_loss_increase,
    orthogonalize,
    random_direction,
)
from repro.models import create_model


def make_model():
    return create_model("vgg6_bn", num_classes=3, scale=0.5, seed=0)


def make_batches(rng, n=2):
    return [
        (rng.standard_normal((8, 3, 8, 8)), rng.integers(0, 3, 8)) for _ in range(n)
    ]


class TestDirections:
    def test_random_direction_shapes(self):
        model = make_model()
        params = list(model.parameters())
        direction = random_direction(params, seed=0)
        assert len(direction) == len(params)
        for d, p in zip(direction, params):
            assert d.shape == p.data.shape

    def test_random_direction_deterministic(self):
        model = make_model()
        params = list(model.parameters())
        d1 = random_direction(params, seed=3)
        d2 = random_direction(params, seed=3)
        for a, b in zip(d1, d2):
            assert np.allclose(a, b)

    def test_filter_normalize_matches_filter_norms(self):
        model = make_model()
        params = list(model.parameters())
        direction = filter_normalize(random_direction(params, seed=0), params)
        for d, p in zip(direction, params):
            if p.data.ndim >= 2:
                d_norms = np.linalg.norm(d.reshape(d.shape[0], -1), axis=1)
                w_norms = np.linalg.norm(p.data.reshape(p.data.shape[0], -1), axis=1)
                assert np.allclose(d_norms, w_norms, rtol=1e-10)
            else:
                assert np.allclose(d, 0.0)

    def test_orthogonalize(self):
        rng = np.random.default_rng(0)
        a = [rng.standard_normal((4, 4))]
        b = [rng.standard_normal((4, 4))]
        b_orth = orthogonalize(b, a)
        assert abs(np.sum(a[0] * b_orth[0])) < 1e-10

    def test_orthogonalize_zero_reference(self):
        rng = np.random.default_rng(0)
        d = [rng.standard_normal((3, 3))]
        out = orthogonalize(d, [np.zeros((3, 3))])
        assert np.allclose(out[0], d[0])

    def test_make_plot_directions_orthogonal(self):
        model = make_model()
        params = list(model.parameters())
        d1, d2 = make_plot_directions(params, seed=0)
        dot = sum(float(np.sum(a * b)) for a, b in zip(d1, d2))
        norm1 = np.sqrt(sum(float(np.sum(a * a)) for a in d1))
        norm2 = np.sqrt(sum(float(np.sum(b * b)) for b in d2))
        assert abs(dot) / (norm1 * norm2) < 0.05


class TestSurface:
    def test_surface_shape_and_center(self, rng):
        model = make_model()
        params = list(model.parameters())
        batches = make_batches(rng)
        d1, d2 = make_plot_directions(params, seed=1)
        surface = loss_surface(
            model, nn.CrossEntropyLoss(), batches, d1, d2, radius=0.3, steps=(5, 5)
        )
        assert surface["loss"].shape == (5, 5)
        center = surface["loss"][2, 2]
        assert np.isclose(center, surface["center_loss"], rtol=1e-9)

    def test_weights_restored(self, rng):
        model = make_model()
        before = {n: p.data.copy() for n, p in model.named_parameters()}
        params = list(model.parameters())
        d1, d2 = make_plot_directions(params, seed=1)
        loss_surface(
            model, nn.CrossEntropyLoss(), make_batches(rng), d1, d2, radius=0.3, steps=(3, 3)
        )
        for n, p in model.named_parameters():
            assert np.allclose(p.data, before[n])

    def test_loss_line(self, rng):
        model = make_model()
        params = list(model.parameters())
        d1, _d2 = make_plot_directions(params, seed=1)
        line = loss_line(model, nn.CrossEntropyLoss(), make_batches(rng), d1, radius=0.2, steps=5)
        assert line["loss"].shape == (5, 1)

    def test_flat_area_fraction_bounds(self, rng):
        model = make_model()
        params = list(model.parameters())
        d1, d2 = make_plot_directions(params, seed=1)
        surface = loss_surface(
            model, nn.CrossEntropyLoss(), make_batches(rng), d1, d2, radius=0.3, steps=(5, 5)
        )
        frac = flat_area_fraction(surface, tolerance=0.1)
        assert 0.0 <= frac <= 1.0
        # with an infinite tolerance everything is flat
        assert flat_area_fraction(surface, tolerance=1e9) == 1.0
        assert max_loss_increase(surface) >= -1e-9 or True

    def test_ascii_contour_dimensions(self, rng):
        model = make_model()
        params = list(model.parameters())
        d1, d2 = make_plot_directions(params, seed=1)
        surface = loss_surface(
            model, nn.CrossEntropyLoss(), make_batches(rng, 1), d1, d2, radius=0.3, steps=(4, 6)
        )
        art = ascii_contour(surface)
        lines = art.split("\n")
        assert len(lines) == 4
        assert all(len(line) == 6 for line in lines)

    def test_flat_tolerance_monotone(self, rng):
        model = make_model()
        params = list(model.parameters())
        d1, d2 = make_plot_directions(params, seed=2)
        surface = loss_surface(
            model, nn.CrossEntropyLoss(), make_batches(rng, 1), d1, d2, radius=0.5, steps=(5, 5)
        )
        fracs = [flat_area_fraction(surface, tolerance=t) for t in (0.01, 0.1, 1.0, 10.0)]
        assert fracs == sorted(fracs)
