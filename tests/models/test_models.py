"""Model zoo: shapes, determinism, architecture structure, trainability."""

import numpy as np
import pytest

from repro import nn
from repro.models import (
    MLP,
    available_models,
    create_model,
    mobilenet_v2,
    register_model,
    resnet8,
    resnet18,
    resnet20,
    vgg6_bn,
    vgg8_bn,
)
from repro.models.mobilenetv2 import InvertedResidual
from repro.tensor import Tensor


def _forward(model, n=2, c=3, size=8):
    x = np.random.default_rng(0).standard_normal((n, c, size, size))
    return model(Tensor(x))


class TestResNet:
    def test_resnet20_output_shape(self):
        model = resnet20(num_classes=10, base_width=4, rng=np.random.default_rng(0))
        assert _forward(model).shape == (2, 10)

    def test_resnet20_depth_structure(self):
        model = resnet20(base_width=4, rng=np.random.default_rng(0))
        convs = [m for m in model.modules() if isinstance(m, nn.Conv2d)]
        # stem + 18 block convs + 2 downsample shortcuts = 21
        assert len(convs) == 21

    def test_resnet8(self):
        model = resnet8(num_classes=5, base_width=4, rng=np.random.default_rng(0))
        assert _forward(model).shape == (2, 5)

    def test_resnet18_stages(self):
        model = resnet18(num_classes=7, base_width=4, rng=np.random.default_rng(0))
        out = _forward(model, size=16)
        assert out.shape == (2, 7)

    def test_invalid_depth_raises(self):
        from repro.models import CifarResNet

        with pytest.raises(ValueError):
            CifarResNet(depth=21)

    def test_spatial_downsampling(self):
        model = resnet20(base_width=4, rng=np.random.default_rng(0))
        # stage3 output spatial dims = input/4
        x = Tensor(np.random.default_rng(0).standard_normal((1, 3, 8, 8)))
        h = model.bn1(model.conv1(x)).relu()
        h = model.stage3(model.stage2(model.stage1(h)))
        assert h.shape == (1, 16, 2, 2)

    def test_deterministic_construction(self):
        m1 = resnet8(base_width=4, rng=np.random.default_rng(9))
        m2 = resnet8(base_width=4, rng=np.random.default_rng(9))
        for p1, p2 in zip(m1.parameters(), m2.parameters()):
            assert np.allclose(p1.data, p2.data)

    def test_groupnorm_variant(self):
        from repro.models import resnet8_gn

        model = resnet8_gn(num_classes=5, base_width=8, rng=np.random.default_rng(0))
        assert _forward(model).shape == (2, 5)
        # no BatchNorm modules, so no running-stat buffers beyond none
        assert not any(isinstance(m, nn.BatchNorm2d) for m in model.modules())
        assert any(isinstance(m, nn.GroupNorm) for m in model.modules())

    def test_groupnorm_variant_batch_independent(self):
        from repro.models import resnet8_gn
        from repro.tensor import no_grad

        model = resnet8_gn(num_classes=4, base_width=8, rng=np.random.default_rng(1))
        model.eval()
        x = np.random.default_rng(2).standard_normal((4, 3, 8, 8))
        with no_grad():
            full = model(Tensor(x)).data
            single = model(Tensor(x[:1])).data
        assert np.allclose(full[:1], single, atol=1e-10)

    def test_invalid_norm_raises(self):
        from repro.models.resnet import CifarResNet

        with pytest.raises(ValueError):
            CifarResNet(8, norm="instance")


class TestMobileNetV2:
    def test_output_shape(self):
        model = mobilenet_v2(num_classes=10, rng=np.random.default_rng(0))
        assert _forward(model).shape == (2, 10)

    def test_contains_depthwise_convs(self):
        model = mobilenet_v2(rng=np.random.default_rng(0))
        depthwise = [
            m
            for m in model.modules()
            if isinstance(m, nn.Conv2d) and m.groups == m.in_channels and m.groups > 1
        ]
        assert len(depthwise) >= 4

    def test_residual_blocks_exist(self):
        model = mobilenet_v2(rng=np.random.default_rng(0))
        residuals = [
            m for m in model.modules() if isinstance(m, InvertedResidual) and m.use_residual
        ]
        assert len(residuals) >= 1

    def test_width_mult_scales_params(self):
        small = mobilenet_v2(width_mult=0.5, rng=np.random.default_rng(0))
        big = mobilenet_v2(width_mult=1.0, rng=np.random.default_rng(0))
        assert big.num_parameters() > small.num_parameters()

    def test_invalid_stride_raises(self):
        with pytest.raises(ValueError):
            InvertedResidual(8, 8, stride=3, expand_ratio=6)


class TestVGG:
    def test_output_shape(self):
        model = vgg8_bn(num_classes=10, rng=np.random.default_rng(0))
        assert _forward(model).shape == (2, 10)

    def test_vgg6(self):
        model = vgg6_bn(num_classes=4, rng=np.random.default_rng(0))
        assert _forward(model).shape == (2, 4)

    def test_has_bn_after_each_conv(self):
        model = vgg8_bn(rng=np.random.default_rng(0))
        layers = list(model.features)
        for i, layer in enumerate(layers):
            if isinstance(layer, nn.Conv2d):
                assert isinstance(layers[i + 1], nn.BatchNorm2d)

    def test_unknown_config_raises(self):
        from repro.models import VGG

        with pytest.raises(KeyError):
            VGG("vgg99")


class TestMLP:
    def test_flattens_images(self):
        model = MLP(in_features=3 * 8 * 8, hidden=(16,), num_classes=5,
                    rng=np.random.default_rng(0))
        assert _forward(model).shape == (2, 5)

    def test_2d_input(self):
        model = MLP(2, hidden=(8,), num_classes=3, rng=np.random.default_rng(0))
        x = Tensor(np.random.default_rng(0).standard_normal((4, 2)))
        assert model(x).shape == (4, 3)

    def test_unknown_activation_raises(self):
        with pytest.raises(KeyError):
            MLP(2, activation="swish")


class TestRegistry:
    def test_available_models(self):
        names = available_models()
        for expected in ("resnet20", "resnet8", "mobilenetv2", "vgg8_bn", "mlp"):
            assert expected in names

    def test_create_model_deterministic(self):
        m1 = create_model("resnet8", num_classes=10, scale=0.5, seed=1)
        m2 = create_model("resnet8", num_classes=10, scale=0.5, seed=1)
        for p1, p2 in zip(m1.parameters(), m2.parameters()):
            assert np.allclose(p1.data, p2.data)

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            create_model("alexnet", num_classes=10)

    def test_register_model(self):
        register_model("custom_for_test", lambda **kw: MLP(2, hidden=(4,), num_classes=2))
        model = create_model("custom_for_test", num_classes=2)
        assert isinstance(model, MLP)
        with pytest.raises(KeyError):
            register_model("custom_for_test", lambda **kw: None)

    def test_all_registered_models_forward(self):
        for name in ("resnet8", "mobilenetv2", "vgg6_bn"):
            model = create_model(name, num_classes=4, scale=0.5, seed=0)
            assert _forward(model).shape == (2, 4)


class TestTrainability:
    def test_gradients_reach_every_parameter(self):
        from repro.nn import cross_entropy

        model = create_model("mobilenetv2", num_classes=4, scale=0.5, seed=0)
        x = np.random.default_rng(0).standard_normal((4, 3, 8, 8))
        y = np.array([0, 1, 2, 3])
        loss = cross_entropy(model(Tensor(x)), y)
        loss.backward()
        missing = [n for n, p in model.named_parameters() if p.grad is None]
        assert not missing, f"parameters without gradient: {missing}"

    def test_resnet_gradients_reach_every_parameter(self):
        from repro.nn import cross_entropy

        model = create_model("resnet8", num_classes=4, scale=0.5, seed=0)
        x = np.random.default_rng(0).standard_normal((4, 3, 8, 8))
        y = np.array([0, 1, 2, 3])
        cross_entropy(model(Tensor(x)), y).backward()
        assert all(p.grad is not None for p in model.parameters())
