"""Theorem 3 bounds: closed-form checks and empirical validation."""

import numpy as np
import pytest

from repro import nn
from repro.hessian import (
    bound_l2,
    bound_linf,
    empirical_loss_increase,
    gradl1_limit_linf,
    theorem3_bounds,
)
from repro.models import MLP


class TestBoundFormulas:
    def test_l2_bound_monotone_decreasing_in_v(self):
        values = [bound_l2(1.0, v, 0.1) for v in (0.5, 1.0, 2.0, 10.0)]
        assert values == sorted(values, reverse=True)

    def test_linf_bound_monotone_decreasing_in_v(self):
        values = [bound_linf(1.0, v, 0.1, 100) for v in (0.5, 1.0, 2.0, 10.0)]
        assert values == sorted(values, reverse=True)

    def test_l2_bound_exact_on_quadratic(self):
        """For f(delta) = g.delta + v/2 delta^2 along the worst direction,
        the bound is tight: f(bound) == c."""
        g, v, c = 2.0, 3.0, 0.5
        r = bound_l2(g, v, c)
        assert np.isclose(g * r + 0.5 * v * r ** 2, c)

    def test_zero_gradient_limit(self):
        # at a critical point: r = sqrt(2c/v)
        assert np.isclose(bound_l2(0.0, 4.0, 0.08), np.sqrt(2 * 0.08 / 4.0))

    def test_flat_hessian_limit(self):
        # v -> 0: r -> c / ||g||
        assert np.isclose(bound_l2(2.0, 0.0, 0.5), 0.25)
        almost = bound_l2(2.0, 1e-9, 0.5)
        assert np.isclose(almost, 0.25, rtol=1e-6)

    def test_gradl1_limit_eq12(self):
        # Eq. 12: lim_{|g|->0} bound = sqrt(2c / (n v))
        v, c, n = 3.0, 0.1, 50
        assert np.isclose(gradl1_limit_linf(v, c, n), np.sqrt(2 * c / (n * v)))
        tiny = bound_linf(1e-9, v, c, n)
        assert np.isclose(tiny, gradl1_limit_linf(v, c, n), rtol=1e-4)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            bound_l2(1.0, 1.0, 0.0)
        with pytest.raises(ValueError):
            bound_linf(1.0, 1.0, 0.1, 0)


class TestOnModel:
    def _setup(self):
        rng = np.random.default_rng(0)
        model = MLP(4, hidden=(8,), num_classes=3, rng=rng)
        x = rng.standard_normal((16, 4))
        y = rng.integers(0, 3, 16)
        return model, nn.CrossEntropyLoss(), x, y

    def test_theorem3_bounds_structure(self):
        model, loss_fn, x, y = self._setup()
        out = theorem3_bounds(model, loss_fn, x, y, c=0.1)
        assert out["lambda_max"] >= 0
        assert out["n"] == model.num_parameters()
        assert out["l2_bound"] > 0
        assert out["linf_bound"] > 0
        # l-inf ball of radius r is inside the l2 ball of radius sqrt(n) r;
        # the l-inf bound should be (much) smaller than the l2 bound.
        assert out["linf_bound"] <= out["l2_bound"]

    def test_empirical_increase_below_c_within_bound(self):
        """Random perturbations at half the bound radius should raise the
        loss by (well) under c — the bound is for the *worst* direction."""
        model, loss_fn, x, y = self._setup()
        out = theorem3_bounds(model, loss_fn, x, y, c=0.5)
        radius = 0.5 * out["l2_bound"]
        increase = empirical_loss_increase(
            model, loss_fn, x, y, radius, norm="l2", samples=6
        )
        assert increase < 0.5 + 0.1  # slack for higher-order terms

    def test_empirical_increase_grows_with_radius(self):
        model, loss_fn, x, y = self._setup()
        small = empirical_loss_increase(model, loss_fn, x, y, 0.01, samples=4)
        large = empirical_loss_increase(model, loss_fn, x, y, 1.0, samples=4)
        assert large >= small

    def test_weights_restored(self):
        model, loss_fn, x, y = self._setup()
        before = {n: p.data.copy() for n, p in model.named_parameters()}
        empirical_loss_increase(model, loss_fn, x, y, 0.5, samples=2)
        theorem3_bounds(model, loss_fn, x, y, c=0.1, power_iters=3)
        for n, p in model.named_parameters():
            assert np.allclose(p.data, before[n])

    def test_invalid_norm(self):
        model, loss_fn, x, y = self._setup()
        with pytest.raises(ValueError):
            empirical_loss_increase(model, loss_fn, x, y, 0.1, norm="l7")
