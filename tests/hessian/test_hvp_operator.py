"""HVPOperator: shared-graph Hessian-vector products match hvp_exact bitwise."""

import numpy as np

from repro import nn
from repro.hessian import HVPOperator, full_hessian, hvp_exact, model_params
from repro.models import MLP


def make_problem(seed=0):
    model = MLP(3, hidden=(5,), num_classes=2, rng=np.random.default_rng(seed))
    loss_fn = nn.CrossEntropyLoss()
    rng = np.random.default_rng(seed + 1)
    x = rng.standard_normal((8, 3)).astype(np.float64)
    y = rng.integers(0, 2, size=8)
    return model, loss_fn, x, y


def probe(model, seed):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal(p.data.shape) for p in model_params(model)]


class TestSharedGraphParity:
    def test_matvec_matches_hvp_exact_bitwise(self):
        model, loss_fn, x, y = make_problem()
        operator = HVPOperator(model, loss_fn, x, y)
        for seed in range(4):
            vectors = probe(model, seed)
            shared = operator.matvec(vectors)
            fresh = hvp_exact(model, loss_fn, x, y, vectors)
            for a, b in zip(shared, fresh):
                assert a.tobytes() == b.tobytes()

    def test_repeated_matvec_is_deterministic(self):
        model, loss_fn, x, y = make_problem(3)
        operator = HVPOperator(model, loss_fn, x, y)
        vectors = probe(model, 7)
        first = operator.matvec(vectors)
        second = operator.matvec(vectors)
        for a, b in zip(first, second):
            assert a.tobytes() == b.tobytes()

    def test_matvec_many(self):
        model, loss_fn, x, y = make_problem(5)
        operator = HVPOperator(model, loss_fn, x, y)
        probes = [probe(model, s) for s in range(3)]
        results = operator.matvec_many(probes)
        for vectors, result in zip(probes, results):
            fresh = hvp_exact(model, loss_fn, x, y, vectors)
            for a, b in zip(result, fresh):
                assert a.tobytes() == b.tobytes()

    def test_leaves_model_clean(self):
        model, loss_fn, x, y = make_problem(8)
        before = {name: buf.copy() for name, buf in model.named_buffers()}
        weights = [p.data.copy() for p in model_params(model)]
        operator = HVPOperator(model, loss_fn, x, y)
        operator.matvec(probe(model, 0))
        for name, buf in model.named_buffers():
            assert np.array_equal(buf, before[name])
        for p, w in zip(model_params(model), weights):
            assert np.array_equal(p.data, w)
        assert all(p.grad is None for p in model_params(model))


class TestDenseHessianUsesOperator:
    def test_full_hessian_symmetric_and_matches_columns(self):
        from repro.tensor import dtype_context

        with dtype_context("float64"):
            model, loss_fn, x, y = make_problem(11)
            hessian = full_hessian(model, loss_fn, x, y)
            assert np.allclose(hessian, hessian.T, atol=1e-8)
            # Column 0 equals a standalone exact HVP along e_0.
            params = model_params(model)
            vectors, offset = [], 0
            n = hessian.shape[0]
            basis = np.zeros(n)
            basis[0] = 1.0
            for p in params:
                vectors.append(
                    basis[offset : offset + p.data.size].reshape(p.data.shape)
                )
                offset += p.data.size
            column = np.concatenate(
                [v.reshape(-1) for v in hvp_exact(model, loss_fn, x, y, vectors)]
            )
            assert np.array_equal(hessian[:, 0], column)
