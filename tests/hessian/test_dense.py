"""Dense Hessian assembly validates the iterative estimators."""

import numpy as np
import pytest

from repro import nn
from repro.hessian import (
    full_hessian,
    hessian_spectrum,
    hvp_exact,
    lanczos_eigenvalues,
    parameter_count,
    power_iteration,
    hutchinson_trace,
    eigenvalue_square_sum,
)
from repro.models import MLP


def make_setup(seed=0, hidden=(6,)):
    rng = np.random.default_rng(seed)
    model = MLP(3, hidden=hidden, num_classes=2, rng=rng)
    x = rng.standard_normal((12, 3))
    y = rng.integers(0, 2, 12)
    return model, nn.CrossEntropyLoss(), x, y


class TestDenseHessian:
    def test_symmetric(self):
        model, loss_fn, x, y = make_setup()
        h = full_hessian(model, loss_fn, x, y)
        assert h.shape == (parameter_count(model),) * 2
        assert np.allclose(h, h.T, atol=1e-8)

    def test_matches_hvp(self):
        model, loss_fn, x, y = make_setup()
        h = full_hessian(model, loss_fn, x, y)
        rng = np.random.default_rng(1)
        params = list(model.parameters())
        vectors = [rng.standard_normal(p.shape) for p in params]
        flat_v = np.concatenate([v.reshape(-1) for v in vectors])
        hv = hvp_exact(model, loss_fn, x, y, vectors)
        flat_hv = np.concatenate([v.reshape(-1) for v in hv])
        assert np.allclose(h @ flat_v, flat_hv, atol=1e-8)

    def test_power_iteration_matches_eigh(self):
        model, loss_fn, x, y = make_setup()
        spectrum = hessian_spectrum(model, loss_fn, x, y)
        dominant_true = spectrum[np.argmax(np.abs(spectrum))]
        params = list(model.parameters())
        shapes = [p.shape for p in params]
        value, _vec, _hist = power_iteration(
            lambda v: hvp_exact(model, loss_fn, x, y, v), shapes, iters=200, tol=1e-10
        )
        assert np.isclose(value, dominant_true, rtol=1e-2)

    def test_lanczos_matches_eigh(self):
        model, loss_fn, x, y = make_setup()
        spectrum = hessian_spectrum(model, loss_fn, x, y)
        params = list(model.parameters())
        shapes = [p.shape for p in params]
        top3 = lanczos_eigenvalues(
            lambda v: hvp_exact(model, loss_fn, x, y, v), shapes, k=3, which="LA"
        )
        assert np.allclose(top3, spectrum[::-1][:3], atol=1e-2)

    def test_hutchinson_matches_trace(self):
        model, loss_fn, x, y = make_setup()
        h = full_hessian(model, loss_fn, x, y)
        params = list(model.parameters())
        shapes = [p.shape for p in params]
        estimate, _vals = hutchinson_trace(
            lambda v: hvp_exact(model, loss_fn, x, y, v), shapes, samples=64, seed=0
        )
        assert np.isclose(estimate, np.trace(h), rtol=0.3)

    def test_eq13_estimator_matches_frobenius(self):
        # sum(lambda^2) = ||H||_F^2 for symmetric H
        model, loss_fn, x, y = make_setup()
        h = full_hessian(model, loss_fn, x, y)
        params = list(model.parameters())
        shapes = [p.shape for p in params]
        estimate, _vals = eigenvalue_square_sum(
            lambda v: hvp_exact(model, loss_fn, x, y, v), shapes, samples=128, seed=0
        )
        assert np.isclose(estimate, np.sum(h * h), rtol=0.35)

    def test_refuses_large_models(self):
        model, loss_fn, x, y = make_setup(hidden=(64, 64))
        with pytest.raises(ValueError):
            full_hessian(model, loss_fn, x, y, max_params=100)
