"""Eigenvalue estimation, trace estimation and the ||Hz|| metric.

Uses an explicit quadratic model whose Hessian is known exactly, then
cross-checks the estimators on a real MLP.
"""

import numpy as np

from repro import nn
from repro.data import ArrayDataset, DataLoader
from repro.hessian import (
    eigenvalue_square_sum,
    hutchinson_trace,
    hz_norm,
    hz_norm_on_batch,
    lanczos_eigenvalues,
    power_iteration,
)
from repro.models import MLP


def known_hessian_hvp(eigenvalues):
    """HVP for f(x) = 0.5 x^T diag(eigenvalues) x over a single vector param."""
    diag = np.asarray(eigenvalues, dtype=np.float64)

    def hvp(vectors):
        return [diag * vectors[0]]

    return hvp, [diag.shape]


class TestPowerIteration:
    def test_recovers_dominant_eigenvalue(self):
        hvp, shapes = known_hessian_hvp([5.0, 2.0, 1.0, 0.5])
        value, vector, history = power_iteration(hvp, shapes, iters=100, tol=1e-10)
        assert np.isclose(value, 5.0, rtol=1e-4)
        direction = np.abs(vector[0]) / np.linalg.norm(vector[0])
        assert np.isclose(direction[0], 1.0, atol=1e-3)

    def test_zero_hessian(self):
        hvp, shapes = known_hessian_hvp([0.0, 0.0])
        value, _v, _h = power_iteration(hvp, shapes, iters=5)
        assert value == 0.0

    def test_history_converges(self):
        hvp, shapes = known_hessian_hvp([3.0, 1.0])
        _value, _vector, history = power_iteration(hvp, shapes, iters=50, tol=1e-12)
        assert abs(history[-1] - 3.0) < abs(history[0] - 3.0) + 1e-9


class TestLanczos:
    def test_recovers_top_k(self):
        hvp, shapes = known_hessian_hvp([7.0, 4.0, 2.0, 1.0, 0.1, -1.0])
        values = lanczos_eigenvalues(hvp, shapes, k=3, which="LA")
        assert np.allclose(values, [7.0, 4.0, 2.0], atol=1e-4)

    def test_on_real_model(self):
        rng = np.random.default_rng(0)
        model = MLP(3, hidden=(6,), num_classes=2, rng=rng)
        x = rng.standard_normal((10, 3))
        y = rng.integers(0, 2, 10)
        loss_fn = nn.CrossEntropyLoss()
        from repro.hessian import hvp_exact

        shapes = [p.shape for p in model.parameters()]
        values = lanczos_eigenvalues(
            lambda v: hvp_exact(model, loss_fn, x, y, v), shapes, k=2, which="LA"
        )
        # power iteration on |H| should dominate the top algebraic eigenvalue
        top, _v, _h = power_iteration(
            lambda v: hvp_exact(model, loss_fn, x, y, v), shapes, iters=50, tol=1e-8
        )
        assert values[0] <= abs(top) + 1e-3


class TestHutchinson:
    def test_trace_exact_for_rademacher_on_diagonal(self):
        eigenvalues = [4.0, 3.0, 2.0, 1.0]
        hvp, shapes = known_hessian_hvp(eigenvalues)
        # For a diagonal H and Rademacher probes, z^T H z = tr(H) exactly.
        estimate, values = hutchinson_trace(hvp, shapes, samples=4, seed=0)
        assert np.isclose(estimate, 10.0, rtol=1e-12)

    def test_eigen_square_sum_converges(self):
        eigenvalues = [3.0, 2.0, 1.0]
        hvp, shapes = known_hessian_hvp(eigenvalues)
        estimate, _ = eigenvalue_square_sum(hvp, shapes, samples=400, seed=0)
        assert np.isclose(estimate, 14.0, rtol=0.2)

    def test_unknown_distribution_raises(self):
        import pytest

        hvp, shapes = known_hessian_hvp([1.0])
        with pytest.raises(ValueError):
            hutchinson_trace(hvp, shapes, distribution="cauchy")


class TestHzNorm:
    def _setup(self):
        rng = np.random.default_rng(0)
        model = MLP(4, hidden=(8,), num_classes=3, rng=rng)
        x = rng.standard_normal((16, 4))
        y = rng.integers(0, 3, 16)
        return model, nn.CrossEntropyLoss(), x, y

    def test_nonnegative_and_finite(self):
        model, loss_fn, x, y = self._setup()
        value = hz_norm_on_batch(model, loss_fn, x, y, h=0.01)
        assert value >= 0
        assert np.isfinite(value)

    def test_matches_explicit_hvp_along_z(self):
        """||Hz|| from the finite difference should approximate |H z| computed
        exactly along the Eq. 15 direction for small h."""
        from repro.core.perturbation import layer_adaptive_perturbation
        from repro.hessian import batch_gradients, hvp_exact

        model, loss_fn, x, y = self._setup()
        _loss, grads = batch_gradients(model, loss_fn, x, y)
        params = list(model.parameters())
        h = 1e-4
        offsets = layer_adaptive_perturbation(params, grads, 1.0)  # z (unscaled by h)
        hv = hvp_exact(model, loss_fn, x, y, offsets)
        expected = np.sqrt(sum(float(np.sum(v ** 2)) for v in hv))
        got = hz_norm_on_batch(model, loss_fn, x, y, h=h)
        assert np.isclose(got, expected, rtol=5e-2)

    def test_loader_average(self):
        model, loss_fn, x, y = self._setup()
        ds = ArrayDataset(x, y)
        loader = DataLoader(ds, batch_size=8, shuffle=False)
        value = hz_norm(model, loss_fn, loader, h=0.01)
        assert value >= 0

    def test_empty_loader_raises(self):
        import pytest

        model, loss_fn, _x, _y = self._setup()
        with pytest.raises(ValueError):
            hz_norm(model, loss_fn, [], h=0.01)

    def test_weights_unchanged(self):
        model, loss_fn, x, y = self._setup()
        before = {n: p.data.copy() for n, p in model.named_parameters()}
        hz_norm_on_batch(model, loss_fn, x, y, h=0.05)
        for n, p in model.named_parameters():
            assert np.allclose(p.data, before[n])
