"""Hessian-vector products on real models: exact vs finite-difference."""

import numpy as np

from repro import nn
from repro.hessian import (
    batch_gradients,
    hvp_exact,
    hvp_finite_diff,
    model_params,
    restore_buffers,
    snapshot_buffers,
)
from repro.models import MLP


def make_setup(seed=0):
    rng = np.random.default_rng(seed)
    model = MLP(4, hidden=(8,), num_classes=3, rng=rng)
    x = rng.standard_normal((12, 4))
    y = rng.integers(0, 3, 12)
    loss_fn = nn.CrossEntropyLoss()
    return model, loss_fn, x, y


class TestBatchGradients:
    def test_detached_by_default(self):
        model, loss_fn, x, y = make_setup()
        loss, grads = batch_gradients(model, loss_fn, x, y)
        assert loss > 0
        assert all(isinstance(g, np.ndarray) for g in grads)
        assert all(p.grad is None for p in model.parameters())

    def test_create_graph_returns_tensors(self):
        from repro.tensor import Tensor

        model, loss_fn, x, y = make_setup()
        _loss, grads = batch_gradients(model, loss_fn, x, y, create_graph=True)
        assert all(isinstance(g, Tensor) for g in grads)
        assert any(g._ctx is not None for g in grads)


class TestHVP:
    def test_exact_matches_finite_diff(self):
        model, loss_fn, x, y = make_setup()
        rng = np.random.default_rng(1)
        vectors = [rng.standard_normal(p.shape) for p in model.parameters()]
        exact = hvp_exact(model, loss_fn, x, y, vectors)
        approx = hvp_finite_diff(model, loss_fn, x, y, vectors, eps=1e-4)
        flat_e = np.concatenate([v.reshape(-1) for v in exact])
        flat_a = np.concatenate([v.reshape(-1) for v in approx])
        assert np.allclose(flat_e, flat_a, atol=1e-4, rtol=1e-3)

    def test_linearity(self):
        model, loss_fn, x, y = make_setup()
        rng = np.random.default_rng(2)
        v1 = [rng.standard_normal(p.shape) for p in model.parameters()]
        v2 = [rng.standard_normal(p.shape) for p in model.parameters()]
        h_v1 = hvp_exact(model, loss_fn, x, y, v1)
        h_v2 = hvp_exact(model, loss_fn, x, y, v2)
        h_sum = hvp_exact(model, loss_fn, x, y, [a + b for a, b in zip(v1, v2)])
        for a, b, s in zip(h_v1, h_v2, h_sum):
            assert np.allclose(a + b, s, atol=1e-8)

    def test_symmetry(self):
        model, loss_fn, x, y = make_setup()
        rng = np.random.default_rng(3)
        v1 = [rng.standard_normal(p.shape) for p in model.parameters()]
        v2 = [rng.standard_normal(p.shape) for p in model.parameters()]
        h_v1 = hvp_exact(model, loss_fn, x, y, v1)
        h_v2 = hvp_exact(model, loss_fn, x, y, v2)
        lhs = sum(float(np.sum(a * b)) for a, b in zip(v2, h_v1))
        rhs = sum(float(np.sum(a * b)) for a, b in zip(v1, h_v2))
        assert np.isclose(lhs, rhs, rtol=1e-6)

    def test_zero_vector(self):
        model, loss_fn, x, y = make_setup()
        zeros = [np.zeros(p.shape) for p in model.parameters()]
        out = hvp_finite_diff(model, loss_fn, x, y, zeros)
        assert all(np.allclose(v, 0) for v in out)

    def test_weights_and_grads_untouched(self):
        model, loss_fn, x, y = make_setup()
        before = {n: p.data.copy() for n, p in model.named_parameters()}
        rng = np.random.default_rng(4)
        vectors = [rng.standard_normal(p.shape) for p in model.parameters()]
        hvp_exact(model, loss_fn, x, y, vectors)
        hvp_finite_diff(model, loss_fn, x, y, vectors)
        for n, p in model.named_parameters():
            assert np.allclose(p.data, before[n])
            assert p.grad is None


class TestBufferSnapshots:
    def test_snapshot_restore_roundtrip(self):
        bn = nn.BatchNorm2d(3)
        snap = snapshot_buffers(bn)
        bn.set_buffer("running_mean", np.full(3, 9.0))
        restore_buffers(bn, snap)
        assert np.allclose(bn.running_mean, 0.0)

    def test_hvp_preserves_bn_buffers(self):
        rng = np.random.default_rng(0)
        model = nn.Sequential(
            nn.Conv2d(2, 4, 3, padding=1, rng=rng),
            nn.BatchNorm2d(4),
            nn.ReLU(),
            nn.GlobalAvgPool2d(),
            nn.Linear(4, 2, rng=rng),
        )
        x = rng.standard_normal((6, 2, 5, 5))
        y = rng.integers(0, 2, 6)
        loss_fn = nn.CrossEntropyLoss()
        before = snapshot_buffers(model)
        vectors = [np.ones(p.shape) for p in model_params(model)]
        hvp_exact(model, loss_fn, x, y, vectors)
        after = snapshot_buffers(model)
        for key in before:
            assert np.allclose(before[key], after[key]), key
