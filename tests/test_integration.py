"""End-to-end integration tests across the whole stack.

Each test exercises a realistic slice of the paper's pipeline at tiny
scale: data generation -> model -> method trainer -> evaluation ->
quantization / curvature analysis.
"""

import numpy as np
import pytest

from repro import nn, optim
from repro.core import make_trainer
from repro.data import DataLoader, make_dataset
from repro.experiments.runner import evaluate_accuracy
from repro.hessian import hz_norm
from repro.models import create_model
from repro.quant import QuantScheme, evaluate_quantized


def train_quick(method, model_name="resnet8", epochs=4, scale=0.5, seed=0, **kwargs):
    train, test, spec = make_dataset("cifar10_like", train_size=128, test_size=64)
    model = create_model(model_name, num_classes=spec.num_classes, scale=scale, seed=seed)
    loss_fn = nn.CrossEntropyLoss()
    opt = optim.SGD(model.parameters(), lr=0.1, momentum=0.9, weight_decay=1e-4)
    sched = optim.CosineAnnealingLR(opt, t_max=epochs)
    trainer = make_trainer(method, model, loss_fn, opt, scheduler=sched, **kwargs)
    loader = DataLoader(train, batch_size=64, seed=seed)
    history = trainer.fit(loader, epochs=epochs)
    return model, history, train, test


class TestTrainingPipelines:
    @pytest.mark.parametrize(
        "method,kwargs",
        [
            ("sgd", {}),
            ("hero", {"h": 0.01, "gamma": 0.05}),
            ("grad_l1", {"lambda_l1": 0.002}),
            ("first_order", {"h": 0.01}),
        ],
    )
    def test_method_learns_on_synthetic_images(self, method, kwargs):
        model, history, train, test = train_quick(method, **kwargs)
        assert history["train_loss"][-1] < history["train_loss"][0]
        # clearly above the 10% chance level even at 4 epochs
        assert evaluate_accuracy(model, train) > 0.2

    @pytest.mark.slow
    def test_mobilenet_hero_pipeline(self):
        model, history, _train, test = train_quick(
            "hero", model_name="mobilenetv2", epochs=3, h=0.01, gamma=0.05
        )
        assert np.isfinite(history["train_loss"][-1])
        acc = evaluate_accuracy(model, test)
        assert 0.0 <= acc <= 1.0

    def test_vgg_gradl1_pipeline(self):
        model, history, _train, _test = train_quick(
            "grad_l1", model_name="vgg6_bn", epochs=3, lambda_l1=0.002
        )
        assert history["train_loss"][-1] < history["train_loss"][0]


class TestTrainThenQuantize:
    def test_ptq_after_training(self):
        model, _history, _train, test = train_quick("sgd", epochs=5)
        eval_fn = lambda m: evaluate_accuracy(m, test)
        full = eval_fn(model)
        q8, _ = evaluate_quantized(model, QuantScheme(8), eval_fn)
        q2, _ = evaluate_quantized(model, QuantScheme(2), eval_fn)
        # 8-bit should be near-lossless; 2-bit may collapse
        assert abs(q8 - full) < 0.15
        assert 0.0 <= q2 <= 1.0

    def test_quantization_preserves_original_accuracy(self):
        model, _h, _train, test = train_quick("sgd", epochs=3)
        eval_fn = lambda m: evaluate_accuracy(m, test)
        before = eval_fn(model)
        evaluate_quantized(model, QuantScheme(2), eval_fn)
        assert eval_fn(model) == before


class TestTrainThenAnalyze:
    def test_hessian_norm_after_training(self):
        model, _h, train, _test = train_quick("sgd", epochs=3)
        loader = DataLoader(train, batch_size=64, shuffle=False)
        value = hz_norm(model, nn.CrossEntropyLoss(), loader, h=0.01, max_batches=1)
        assert value >= 0 and np.isfinite(value)

    def test_landscape_after_training(self):
        from repro.landscape import flat_area_fraction, loss_surface, make_plot_directions

        model, _h, train, _test = train_quick("sgd", epochs=3)
        loader = DataLoader(train, batch_size=64, shuffle=False)
        batches = [next(iter(loader))]
        d1, d2 = make_plot_directions(list(model.parameters()), seed=0)
        surface = loss_surface(
            model, nn.CrossEntropyLoss(), batches, d1, d2, radius=0.3, steps=(3, 3)
        )
        assert np.all(np.isfinite(surface["loss"]))
        assert 0 <= flat_area_fraction(surface) <= 1


class TestSeedSensitivity:
    def test_different_seeds_different_models(self):
        m1, _h1, _t1, _e1 = train_quick("sgd", seed=0, epochs=2)
        m2, _h2, _t2, _e2 = train_quick("sgd", seed=1, epochs=2)
        s1, s2 = m1.state_dict(), m2.state_dict()
        assert any(not np.allclose(s1[k], s2[k]) for k in s1)

    def test_same_seed_identical(self):
        m1, h1, _t1, _e1 = train_quick("hero", seed=3, epochs=2, h=0.01, gamma=0.05)
        m2, h2, _t2, _e2 = train_quick("hero", seed=3, epochs=2, h=0.01, gamma=0.05)
        assert h1["train_loss"] == h2["train_loss"]
        s1, s2 = m1.state_dict(), m2.state_dict()
        for key in s1:
            assert np.allclose(s1[key], s2[key])
