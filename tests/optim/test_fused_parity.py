"""Fused flat-arena optimizers must match the reference loops bit-for-bit.

Every update rule in ``repro.optim`` is purely elementwise, so flattening
all parameters of one dtype into a contiguous arena cannot change any
result bit.  These tests pin that invariant (``tobytes()`` equality, not
allclose) across dtypes, momentum/weight-decay/nesterov settings, ragged
parameter shapes, ``None``-grad steps, state_dict round-trips, and
external ``param.data`` rebinds (the QAT / ``load_state_dict`` pattern).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn.module import Parameter
from repro.optim import SGD, Adam, AdamW
from repro.tensor import Tensor

RAGGED_SHAPES = [(3, 4), (7,), (), (2, 1, 5), (1,), (4, 3, 2, 2)]


def make_params(dtype, seed, shapes=RAGGED_SHAPES):
    rng = np.random.default_rng(seed)
    return [
        Parameter(rng.standard_normal(shape).astype(dtype) * 0.5) for shape in shapes
    ]


def clone_params(params):
    return [Parameter(p.data.copy()) for p in params]


def set_grads(params, rng, dtype, skip=()):
    for index, param in enumerate(params):
        if index in skip:
            param.grad = None
        else:
            param.grad = Tensor(rng.standard_normal(param.data.shape).astype(dtype))


def assert_bit_identical(params_a, params_b):
    for a, b in zip(params_a, params_b):
        assert a.data.dtype == b.data.dtype
        assert a.data.tobytes() == b.data.tobytes()


def run_parity(make_opt, dtype, steps=4, skip_schedule=None, seed=0):
    """Drive fused and reference twins on identical grads; compare bits."""
    ref_params = make_params(dtype, seed)
    fused_params = clone_params(ref_params)
    ref_opt = make_opt(ref_params, fused=False)
    fused_opt = make_opt(fused_params, fused=True)
    for step in range(steps):
        grad_rng = np.random.default_rng(1000 + seed * 131 + step)
        skip = skip_schedule(step) if skip_schedule else ()
        set_grads(ref_params, grad_rng, dtype, skip)
        grad_rng = np.random.default_rng(1000 + seed * 131 + step)
        set_grads(fused_params, grad_rng, dtype, skip)
        ref_opt.step()
        fused_opt.step()
        assert_bit_identical(ref_params, fused_params)
    return ref_opt, fused_opt, ref_params, fused_params


class TestSGDParity:
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(lr=0.1),
            dict(lr=0.05, momentum=0.9),
            dict(lr=0.05, momentum=0.9, weight_decay=5e-4),
            dict(lr=0.05, momentum=0.9, nesterov=True),
            dict(lr=0.3, momentum=0.45, weight_decay=0.01, nesterov=True),
        ],
    )
    def test_bitwise_parity(self, dtype, kwargs):
        run_parity(lambda p, fused: SGD(p, fused=fused, **kwargs), dtype)

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_none_grad_steps(self, dtype):
        # Some parameters miss grads on some steps: the fused path must
        # reproduce the reference skip semantics (frozen momentum), not
        # zero-fill.
        schedule = {0: (1, 3), 1: (), 2: (0, 1, 2, 3, 4, 5), 3: (5,)}
        run_parity(
            lambda p, fused: SGD(p, lr=0.1, momentum=0.9, weight_decay=1e-3, fused=fused),
            dtype,
            skip_schedule=lambda step: schedule[step],
        )

    @settings(max_examples=25, deadline=None)
    @given(
        lr=st.floats(1e-4, 1.0),
        momentum=st.sampled_from([0.0, 0.5, 0.9, 0.99]),
        weight_decay=st.sampled_from([0.0, 1e-4, 0.1]),
        nesterov=st.booleans(),
        dtype=st.sampled_from([np.float32, np.float64]),
        seed=st.integers(0, 2**16),
    )
    def test_hypothesis_sweep(self, lr, momentum, weight_decay, nesterov, dtype, seed):
        if nesterov and momentum == 0.0:
            nesterov = False
        run_parity(
            lambda p, fused: SGD(
                p,
                lr=lr,
                momentum=momentum,
                weight_decay=weight_decay,
                nesterov=nesterov,
                fused=fused,
            ),
            dtype,
            steps=3,
            seed=seed,
        )

    def test_state_dict_cross_roundtrip(self):
        # Fused state loads into a reference optimizer and vice versa,
        # continuing bit-identically.
        ref_opt, fused_opt, ref_params, fused_params = run_parity(
            lambda p, fused: SGD(p, lr=0.1, momentum=0.9, fused=fused), np.float32
        )
        swapped_ref = SGD(ref_params, lr=0.1, momentum=0.9, fused=False)
        swapped_ref.load_state_dict(fused_opt.state_dict())
        fused_opt2 = SGD(fused_params, lr=0.1, momentum=0.9, fused=True)
        fused_opt2.load_state_dict(ref_opt.state_dict())
        rng = np.random.default_rng(77)
        set_grads(ref_params, rng, np.float32)
        rng = np.random.default_rng(77)
        set_grads(fused_params, rng, np.float32)
        swapped_ref.step()
        fused_opt2.step()
        assert_bit_identical(ref_params, fused_params)

    def test_rebind_self_heal(self):
        # External code rebinds param.data (QAT swaps, load_state_dict);
        # the fused optimizer must absorb the new values and hand the
        # arena view back.
        params = make_params(np.float32, 3)
        opt = SGD(params, lr=0.1, fused=True)
        rng = np.random.default_rng(0)
        set_grads(params, rng, np.float32)
        opt.step()
        flat_view = params[0].data
        assert flat_view.base is not None  # handed back an arena view
        replacement = np.full_like(flat_view, 0.25)
        params[0].data = replacement  # rebind, as QAT restore does
        set_grads(params, rng, np.float32)
        grad0 = params[0].grad.data.copy()
        opt.step()
        assert params[0].data.base is flat_view.base  # healed into the arena
        expected = np.asarray(replacement - 0.1 * grad0, dtype=np.float32)
        assert params[0].data.tobytes() == expected.tobytes()

    def test_rebind_matches_reference(self):
        ref_params = make_params(np.float32, 5)
        fused_params = clone_params(ref_params)
        ref_opt = SGD(ref_params, lr=0.1, momentum=0.9, fused=False)
        fused_opt = SGD(fused_params, lr=0.1, momentum=0.9, fused=True)
        for step in range(3):
            rng = np.random.default_rng(step)
            set_grads(ref_params, rng, np.float32)
            rng = np.random.default_rng(step)
            set_grads(fused_params, rng, np.float32)
            ref_opt.step()
            fused_opt.step()
            if step == 1:
                # Rebind every weight on both sides (same values).
                for rp, fp in zip(ref_params, fused_params):
                    value = np.asarray(rp.data * 0.5 + 0.1, dtype=np.float32)
                    rp.data = value.copy()
                    fp.data = value.copy()
        assert_bit_identical(ref_params, fused_params)


class TestAdamParity:
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    @pytest.mark.parametrize("cls", [Adam, AdamW])
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(lr=1e-3),
            dict(lr=1e-2, betas=(0.8, 0.95)),
            dict(lr=1e-3, weight_decay=0.01),
            dict(lr=3e-3, betas=(0.5, 0.999), weight_decay=0.1, eps=1e-6),
        ],
    )
    def test_bitwise_parity(self, dtype, cls, kwargs):
        run_parity(lambda p, fused: cls(p, fused=fused, **kwargs), dtype)

    @pytest.mark.parametrize("cls", [Adam, AdamW])
    def test_none_grad_steps(self, cls):
        schedule = {0: (0,), 1: (2, 4), 2: (), 3: (1,)}
        run_parity(
            lambda p, fused: cls(p, lr=1e-2, weight_decay=0.05, fused=fused),
            np.float32,
            skip_schedule=lambda step: schedule[step],
        )

    @settings(max_examples=15, deadline=None)
    @given(
        lr=st.floats(1e-5, 0.1),
        beta1=st.sampled_from([0.0, 0.5, 0.9]),
        beta2=st.sampled_from([0.9, 0.99, 0.999]),
        weight_decay=st.sampled_from([0.0, 0.01]),
        decoupled=st.booleans(),
        dtype=st.sampled_from([np.float32, np.float64]),
    )
    def test_hypothesis_sweep(self, lr, beta1, beta2, weight_decay, decoupled, dtype):
        cls = AdamW if decoupled else Adam
        run_parity(
            lambda p, fused: cls(
                p, lr=lr, betas=(beta1, beta2), weight_decay=weight_decay, fused=fused
            ),
            dtype,
            steps=3,
        )

    def test_state_dict_cross_roundtrip(self):
        ref_opt, fused_opt, ref_params, fused_params = run_parity(
            lambda p, fused: Adam(p, lr=1e-2, weight_decay=0.01, fused=fused), np.float64
        )
        swapped_ref = Adam(ref_params, lr=1e-2, weight_decay=0.01, fused=False)
        swapped_ref.load_state_dict(fused_opt.state_dict())
        fused2 = Adam(fused_params, lr=1e-2, weight_decay=0.01, fused=True)
        fused2.load_state_dict(ref_opt.state_dict())
        rng = np.random.default_rng(9)
        set_grads(ref_params, rng, np.float64)
        rng = np.random.default_rng(9)
        set_grads(fused_params, rng, np.float64)
        swapped_ref.step()
        fused2.step()
        assert_bit_identical(ref_params, fused_params)


class TestViewContract:
    def test_views_handed_back(self):
        params = make_params(np.float32, 11)
        opt = SGD(params, lr=0.1, fused=True)
        rng = np.random.default_rng(0)
        set_grads(params, rng, np.float32)
        opt.step()
        bases = {id(p.data.base) for p in params}
        assert len(bases) == 1  # every float32 param windows one arena

    def test_inplace_external_writes_visible(self):
        # apply_offsets-style in-place writes go straight to the arena.
        params = make_params(np.float32, 13)
        opt = SGD(params, lr=0.1, fused=True)
        rng = np.random.default_rng(0)
        set_grads(params, rng, np.float32)
        opt.step()
        before = params[0].data.copy()
        np.add(params[0].data, 1.0, out=params[0].data)
        assert np.allclose(params[0].data, before + 1.0)
        set_grads(params, rng, np.float32)
        opt.step()  # no crash, no value reset

    def test_mixed_dtype_groups(self):
        rng = np.random.default_rng(0)
        params = [
            Parameter(rng.standard_normal((3, 3)).astype(np.float32)),
            Parameter(rng.standard_normal((4,)).astype(np.float64)),
            Parameter(rng.standard_normal((2, 2)).astype(np.float32)),
        ]
        ref = [Parameter(p.data.copy()) for p in params]
        fused_opt = SGD(params, lr=0.1, momentum=0.9, fused=True)
        ref_opt = SGD(ref, lr=0.1, momentum=0.9, fused=False)
        for step in range(3):
            for p, r in zip(params, ref):
                g = np.random.default_rng(step).standard_normal(p.data.shape)
                p.grad = Tensor(np.asarray(g, dtype=p.data.dtype))
                r.grad = Tensor(np.asarray(g, dtype=r.data.dtype))
            fused_opt.step()
            ref_opt.step()
        assert_bit_identical(params, ref)
