"""Learning-rate schedulers."""

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.optim import (
    SGD,
    ConstantLR,
    CosineAnnealingLR,
    StepLR,
    WarmupCosineLR,
)


def make_optimizer(lr=0.1):
    return SGD([Parameter(np.zeros(1))], lr=lr)


class TestCosine:
    def test_endpoints(self):
        opt = make_optimizer(0.1)
        sched = CosineAnnealingLR(opt, t_max=10)
        assert opt.lr == 0.1
        for _ in range(10):
            sched.step()
        assert np.isclose(opt.lr, 0.0, atol=1e-12)

    def test_halfway_value(self):
        opt = make_optimizer(0.2)
        sched = CosineAnnealingLR(opt, t_max=10)
        for _ in range(5):
            sched.step()
        assert np.isclose(opt.lr, 0.1)

    def test_monotone_decreasing(self):
        opt = make_optimizer(0.1)
        sched = CosineAnnealingLR(opt, t_max=20)
        values = []
        for _ in range(20):
            sched.step()
            values.append(opt.lr)
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_eta_min_floor(self):
        opt = make_optimizer(0.1)
        sched = CosineAnnealingLR(opt, t_max=5, eta_min=0.01)
        for _ in range(8):  # beyond t_max
            sched.step()
        assert np.isclose(opt.lr, 0.01)

    def test_invalid_tmax(self):
        with pytest.raises(ValueError):
            CosineAnnealingLR(make_optimizer(), t_max=0)


class TestOthers:
    def test_constant(self):
        opt = make_optimizer(0.3)
        sched = ConstantLR(opt)
        for _ in range(5):
            sched.step()
        assert opt.lr == 0.3

    def test_step_lr(self):
        opt = make_optimizer(1.0)
        sched = StepLR(opt, step_size=2, gamma=0.1)
        lrs = []
        for _ in range(6):
            sched.step()
            lrs.append(round(opt.lr, 10))
        assert lrs == [1.0, 0.1, 0.1, 0.01, 0.01, 0.001]

    def test_warmup_cosine(self):
        opt = make_optimizer(0.1)
        sched = WarmupCosineLR(opt, t_max=10, warmup_epochs=3)
        lrs = []
        for _ in range(5):
            sched.step()
            lrs.append(opt.lr)
        # ramping during warmup
        assert lrs[0] < lrs[1] <= 0.1 + 1e-12
        # after warmup the cosine phase starts at base lr
        assert np.isclose(lrs[2], 0.1)
