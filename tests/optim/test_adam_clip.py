"""Adam/AdamW updates and gradient clipping."""

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.optim import Adam, AdamW, SGD, clip_grad_norm_, clip_grad_value_
from repro.tensor import Tensor


def make_param(value):
    return Parameter(np.array(value, dtype=np.float64))


class TestAdam:
    def test_first_step_matches_reference(self):
        p = make_param([1.0])
        opt = Adam([p], lr=0.1, betas=(0.9, 0.999), eps=1e-8)
        p.grad = Tensor(np.array([0.5]))
        opt.step()
        # bias-corrected m_hat = g, v_hat = g^2 -> update = lr * g/(|g|+eps)
        expected = 1.0 - 0.1 * 0.5 / (0.5 + 1e-8)
        assert np.isclose(p.data[0], expected)

    def test_two_step_reference_trace(self):
        p = make_param([0.0])
        opt = Adam([p], lr=0.01, betas=(0.9, 0.999), eps=1e-8)
        m = v = 0.0
        w = 0.0
        for t, g in enumerate((1.0, -2.0), start=1):
            p.grad = Tensor(np.array([g]))
            opt.step()
            m = 0.9 * m + 0.1 * g
            v = 0.999 * v + 0.001 * g * g
            m_hat = m / (1 - 0.9 ** t)
            v_hat = v / (1 - 0.999 ** t)
            w = w - 0.01 * m_hat / (np.sqrt(v_hat) + 1e-8)
            assert np.isclose(p.data[0], w)

    def test_coupled_weight_decay_in_gradient(self):
        p = make_param([2.0])
        opt = Adam([p], lr=0.1, weight_decay=0.5)
        p.grad = Tensor(np.array([0.0]))
        opt.step()
        # g_eff = 0.5*2 = 1 -> first step moves by ~lr
        assert p.data[0] < 2.0

    def test_convergence_on_quadratic(self):
        target = np.array([1.0, -3.0])
        p = make_param([0.0, 0.0])
        opt = Adam([p], lr=0.1)
        for _ in range(500):
            p.grad = Tensor(2 * (p.data - target))
            opt.step()
        assert np.allclose(p.data, target, atol=1e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            Adam([make_param([1.0])], lr=0.1, betas=(1.0, 0.999))
        with pytest.raises(ValueError):
            Adam([make_param([1.0])], lr=0.1, eps=0.0)
        with pytest.raises(ValueError):
            Adam([make_param([1.0])], lr=0.1, weight_decay=-1)

    def test_state_dict_roundtrip(self):
        p = make_param([1.0])
        opt = Adam([p], lr=0.05)
        p.grad = Tensor(np.array([1.0]))
        opt.step()
        state = opt.state_dict()
        opt2 = Adam([p], lr=0.9)
        opt2.load_state_dict(state)
        assert opt2.lr == 0.05
        assert opt2._step_count == 1
        assert np.allclose(opt2._exp_avg[0], opt._exp_avg[0])


class TestAdamW:
    def test_decoupled_decay_moves_weights_directly(self):
        p = make_param([2.0])
        opt = AdamW([p], lr=0.1, weight_decay=0.5)
        p.grad = Tensor(np.array([0.0]))
        opt.step()
        # zero grad -> moments stay 0 -> only the decay acts:
        # w <- w - lr*wd*w = 2 - 0.1*0.5*2 = 1.9
        assert np.isclose(p.data[0], 1.9)

    def test_differs_from_adam_with_decay(self):
        pa = make_param([2.0])
        pw = make_param([2.0])
        adam = Adam([pa], lr=0.1, weight_decay=0.5)
        adamw = AdamW([pw], lr=0.1, weight_decay=0.5)
        for _ in range(3):
            pa.grad = Tensor(np.array([1.0]))
            pw.grad = Tensor(np.array([1.0]))
            adam.step()
            adamw.step()
        assert not np.isclose(pa.data[0], pw.data[0])


class TestClipping:
    def test_norm_clip_scales_globally(self):
        p1, p2 = make_param([0.0, 0.0]), make_param([0.0])
        p1.grad = Tensor(np.array([3.0, 0.0]))
        p2.grad = Tensor(np.array([4.0]))
        total = clip_grad_norm_([p1, p2], max_norm=1.0)
        assert np.isclose(total, 5.0)
        new_total = np.sqrt(np.sum(p1.grad.data ** 2) + np.sum(p2.grad.data ** 2))
        assert np.isclose(new_total, 1.0, rtol=1e-6)
        # direction preserved
        assert np.isclose(p1.grad.data[0] / p2.grad.data[0], 3.0 / 4.0)

    def test_norm_clip_noop_below_threshold(self):
        p = make_param([0.0])
        p.grad = Tensor(np.array([0.5]))
        clip_grad_norm_([p], max_norm=1.0)
        assert np.isclose(p.grad.data[0], 0.5)

    def test_value_clip(self):
        p = make_param([0.0, 0.0])
        p.grad = Tensor(np.array([5.0, -0.2]))
        clip_grad_value_([p], max_value=1.0)
        assert np.allclose(p.grad.data, [1.0, -0.2])

    def test_none_grads_ignored(self):
        p = make_param([1.0])
        p.grad = None
        assert clip_grad_norm_([p], max_norm=1.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            clip_grad_norm_([], max_norm=0.0)
        with pytest.raises(ValueError):
            clip_grad_value_([], max_value=-1.0)

    def test_hero_with_clipping_trains(self):
        """Clipping composes with the HERO trainer's gradients."""
        from repro import nn
        from repro.core import make_trainer
        from repro.data import DataLoader, gaussian_blobs
        from repro.models import MLP

        ds = gaussian_blobs(n=60, num_classes=3, spread=2.5, noise=0.4, seed=0)
        model = MLP(2, hidden=(8,), num_classes=3, rng=np.random.default_rng(0))
        opt = SGD(model.parameters(), lr=0.2, momentum=0.9)
        trainer = make_trainer("hero", model, nn.CrossEntropyLoss(), opt, h=0.01, gamma=0.05)
        for x, y in DataLoader(ds, batch_size=30, seed=0):
            trainer.training_step(x, y)
            clip_grad_norm_(trainer.params, max_norm=1.0)
            opt.step()
        total = np.sqrt(sum(np.sum(p.grad.data ** 2) for p in trainer.params))
        assert total <= 1.0 + 1e-9
