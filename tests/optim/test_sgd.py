"""SGD update math and convergence."""

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.optim import SGD
from repro.tensor import Tensor


def make_param(value):
    return Parameter(np.array(value, dtype=np.float64))


class TestUpdateRule:
    def test_vanilla_step(self):
        p = make_param([1.0, 2.0])
        p.grad = Tensor(np.array([0.5, -0.5]))
        SGD([p], lr=0.1).step()
        assert np.allclose(p.data, [0.95, 2.05])

    def test_weight_decay_added_to_grad(self):
        p = make_param([2.0])
        p.grad = Tensor(np.array([0.0]))
        SGD([p], lr=0.1, weight_decay=0.5).step()
        # grad_eff = 0 + 0.5*2 = 1 -> p = 2 - 0.1
        assert np.allclose(p.data, [1.9])

    def test_momentum_accumulates(self):
        p = make_param([0.0])
        opt = SGD([p], lr=1.0, momentum=0.5)
        p.grad = Tensor(np.array([1.0]))
        opt.step()  # v=1, p=-1
        p.grad = Tensor(np.array([1.0]))
        opt.step()  # v=1.5, p=-2.5
        assert np.allclose(p.data, [-2.5])

    def test_nesterov(self):
        p = make_param([0.0])
        opt = SGD([p], lr=1.0, momentum=0.5, nesterov=True)
        p.grad = Tensor(np.array([1.0]))
        opt.step()  # v=1; update = g + mu*v = 1.5
        assert np.allclose(p.data, [-1.5])

    def test_none_grad_skipped(self):
        p = make_param([1.0])
        p.grad = None
        SGD([p], lr=0.1).step()
        assert np.allclose(p.data, [1.0])

    def test_zero_grad(self):
        p = make_param([1.0])
        p.grad = Tensor(np.array([1.0]))
        opt = SGD([p], lr=0.1)
        opt.zero_grad()
        assert p.grad is None

    def test_matches_pytorch_convention_sequence(self):
        # Hand-computed 3-step trace with momentum 0.9 and wd 0.1.
        p = make_param([1.0])
        opt = SGD([p], lr=0.1, momentum=0.9, weight_decay=0.1)
        expected_p = 1.0
        velocity = 0.0
        for g in (0.3, -0.2, 0.1):
            p.grad = Tensor(np.array([g]))
            opt.step()
            g_eff = g + 0.1 * expected_p
            velocity = 0.9 * velocity + g_eff
            expected_p = expected_p - 0.1 * velocity
            assert np.isclose(p.data[0], expected_p)


class TestValidation:
    def test_empty_params_raise(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_bad_lr_raises(self):
        with pytest.raises(ValueError):
            SGD([make_param([1.0])], lr=-0.1)

    def test_bad_momentum_raises(self):
        with pytest.raises(ValueError):
            SGD([make_param([1.0])], lr=0.1, momentum=-0.5)

    def test_nesterov_without_momentum_raises(self):
        with pytest.raises(ValueError):
            SGD([make_param([1.0])], lr=0.1, nesterov=True)


class TestConvergence:
    def test_quadratic_bowl(self):
        # minimize ||p - target||^2
        target = np.array([3.0, -2.0])
        p = make_param([0.0, 0.0])
        opt = SGD([p], lr=0.05, momentum=0.9)
        for _ in range(300):
            p.grad = Tensor(2 * (p.data - target))
            opt.step()
        assert np.allclose(p.data, target, atol=1e-4)

    def test_state_dict_roundtrip(self):
        p = make_param([1.0])
        opt = SGD([p], lr=0.1, momentum=0.9)
        p.grad = Tensor(np.array([1.0]))
        opt.step()
        state = opt.state_dict()
        opt2 = SGD([p], lr=0.5)
        opt2.load_state_dict(state)
        assert opt2.lr == 0.1
        assert opt2.momentum == 0.9
        assert np.allclose(opt2._velocity[0], opt._velocity[0])
