"""Golden-vector conformance suite for every on-disk record family.

The corpus under ``tests/messages/vectors/`` was captured from the
*pre-messages* producers (see ``capture_vectors.py``), so these tests
prove the typed layer speaks exactly the bytes already on operators'
disks: byte-stable round-trips for every vector, upgrade paths for old
versions, a bit-identity drill over a whole pre-PR v2 journal
directory, and a golden check on the ``queue-status --json`` document.
"""

import hashlib
import json
import os

import capture_vectors as cv
import pytest

import repro.messages as messages
import repro.service
from repro.experiments.scheduler import ENTRY_FIELDS, TaskQueue, parse_entry
from repro.messages import (
    JournalEntryV2,
    MessageError,
    MissingFieldError,
    VersionError,
    parse,
    registered_types,
    schema_fingerprint,
)

VECTOR_DIR = os.path.join(os.path.dirname(__file__), "vectors")
MANIFEST = "MANIFEST.json"


def _load_corpus():
    docs = {}
    for name in sorted(os.listdir(VECTOR_DIR)):
        if name.endswith(".json") and name != MANIFEST:
            with open(os.path.join(VECTOR_DIR, name)) as fh:
                docs[name] = json.load(fh)
    return docs


CORPUS = _load_corpus()
MESSAGE_VECTORS = {
    name: doc for name, doc in CORPUS.items() if not doc["type"].startswith("drill.")
}
REGISTRY = {(cls.TYPE_NAME, cls.VERSION): cls for cls in registered_types()}


class TestCorpus:
    def test_corpus_is_regenerable_and_current(self):
        # The live producers, driven through the capture scenarios,
        # must still emit exactly the checked-in bytes — the same gate
        # CI runs (`capture_vectors.py --check`).
        assert cv.check(VECTOR_DIR) == 0

    def test_every_type_version_has_at_least_two_vectors(self):
        by_type = {}
        for doc in MESSAGE_VECTORS.values():
            by_type.setdefault((doc["type"], doc["version"]), []).append(doc)
        for key, cls in REGISTRY.items():
            assert len(by_type.get(key, [])) >= 2, (
                f"{cls.TYPE_NAME} v{cls.VERSION} needs >= 2 golden vectors"
            )
        # and no vector claims a type/version the registry can't parse
        assert set(by_type) <= set(REGISTRY)

    def test_manifest_matches_registry_and_files(self):
        with open(os.path.join(VECTOR_DIR, MANIFEST)) as fh:
            manifest = json.load(fh)
        assert manifest["schemas"] == {
            f"{cls.TYPE_NAME}@v{cls.VERSION}": schema_fingerprint(cls)
            for cls in registered_types()
        }
        assert sorted(manifest["vectors"]) == sorted(CORPUS)
        for name, digest in manifest["vectors"].items():
            with open(os.path.join(VECTOR_DIR, name), "rb") as fh:
                assert hashlib.sha256(fh.read()).hexdigest() == digest, name


class TestRoundTrips:
    @pytest.mark.parametrize("name", sorted(MESSAGE_VECTORS))
    def test_vector_round_trips_byte_stable(self, name):
        doc = MESSAGE_VECTORS[name]
        cls = REGISTRY[(doc["type"], doc["version"])]
        message = cls.from_dict(doc["payload"])
        out = message.to_dict()
        # byte identity, key order included — not just dict equality
        assert cv.canonical_bytes(out) == cv.canonical_bytes(doc["payload"])
        assert (
            hashlib.sha256(cv.canonical_bytes(out)).hexdigest()
            == doc["canonical_sha256"]
        )
        # and the dataclass itself round-trips through its wire form
        assert cls.from_dict(out) == message

    @pytest.mark.parametrize(
        "name",
        [n for n, d in MESSAGE_VECTORS.items() if d["type"] == "queue.journal_entry"],
    )
    def test_journal_vectors_match_entry_fields(self, name):
        payload = MESSAGE_VECTORS[name]["payload"]
        assert tuple(payload) == ENTRY_FIELDS


class TestUpgrades:
    @pytest.mark.parametrize(
        "name",
        [
            n
            for n, d in MESSAGE_VECTORS.items()
            if d["type"] == "queue.journal_entry" and d["version"] == 1
        ],
    )
    def test_v1_journal_entry_upgrades_to_v2(self, name):
        payload = MESSAGE_VECTORS[name]["payload"]
        upgraded = parse("queue.journal_entry", payload)
        assert isinstance(upgraded, JournalEntryV2)
        out = upgraded.to_dict()
        assert out["version"] == 2
        # the upgrade is payload-preserving: only the version moves
        assert out == dict(payload, version=2)

    def test_future_version_is_a_typed_rejection(self):
        payload = dict(
            MESSAGE_VECTORS["journal_entry_v2__pending.json"]["payload"], version=99
        )
        with pytest.raises(VersionError):
            parse("queue.journal_entry", payload)

    def test_missing_version_is_a_typed_rejection(self):
        payload = dict(MESSAGE_VECTORS["journal_entry_v2__pending.json"]["payload"])
        del payload["version"]
        with pytest.raises(MissingFieldError):
            parse("queue.journal_entry", payload)


class TestPrePRJournalDrill:
    """A v2-era journal written before this PR reads bit-identically."""

    def _restore_journal(self, tmp_path):
        drill = CORPUS["journal_v2_pre_pr_drill.json"]["payload"]["files"]
        # clock past the captured lease's expiry (leased_at T0+1000,
        # default 900 s timeout), so the steal path is exercisable
        queue = TaskQueue.create(str(tmp_path), "drill", clock=cv.FakeClock(cv.T0 + 2000.0))
        os.makedirs(queue.journal.root, exist_ok=True)
        for name, raw in drill.items():
            with open(os.path.join(queue.journal.root, name), "w") as fh:
                fh.write(raw)
        keys = [name[: -len(".json")] for name in sorted(drill)]
        queue._extend_manifest(keys)
        return queue, drill

    def test_pre_pr_journal_reads_bit_identically(self, tmp_path):
        queue, drill = self._restore_journal(tmp_path)
        assert len(drill) == 4
        for name, raw in drill.items():
            key = name[: -len(".json")]
            parsed = parse_entry(queue.journal.read(key), key=key)
            # parse-at-read then re-serialize reproduces the pre-PR
            # bytes exactly (atomic_write_json writes compact JSON)
            assert cv.canonical_bytes(parsed).decode() == raw

    def test_pre_pr_journal_drives_the_full_queue_api(self, tmp_path):
        queue, _drill = self._restore_journal(tmp_path)
        counts = queue.counts()
        assert counts == {
            "pending": 0,
            "leased": 1,
            "done": 1,
            "error": 1,
            "quarantined": 1,
            "stolen": 2,  # the quarantined entry ate 3 attempts
        }
        # terminal entries rebuild their RunRecords through the layer
        for entry in queue.snapshot().values():
            if entry["status"] in ("done", "error"):
                record = queue.record_for(entry)
                assert record.key == entry["key"]
        # the expired pre-PR lease is stealable by a new-layer worker
        stolen = queue.claim("post-pr-worker:1:00000000")
        assert stolen is not None
        assert stolen["worker"] == "post-pr-worker:1:00000000"

    def test_corrupted_pre_pr_entry_fails_loudly_not_deep(self, tmp_path):
        queue, drill = self._restore_journal(tmp_path)
        name = sorted(drill)[0]
        key = name[: -len(".json")]
        payload = json.loads(drill[name])
        payload["surprise"] = True
        with open(os.path.join(queue.journal.root, name), "w") as fh:
            json.dump(payload, fh)
        with pytest.raises(MessageError) as err:
            queue.claim("post-pr-worker:1:00000000")
        assert key in str(err.value)


class TestStatusCliGolden:
    def test_queue_status_json_matches_golden_vector(self, tmp_path, monkeypatch):
        """Satellite: the ``queue-status --json`` document can't drift.

        Rebuilds the capture scenario under a fresh cache, runs the
        real CLI verb (clock pinned via the ``build_status`` the CLI
        resolves at call time), and compares the emitted document —
        key order included — against the pre-PR golden vector.
        """
        import functools

        from repro.experiments.cli import main as cli_main
        from repro.service.status import build_status

        cache_dir = os.path.join(str(tmp_path), "runs")
        cv.build_status_scenario(cache_dir)
        monkeypatch.setenv("REPRO_CACHE_DIR", cache_dir)
        monkeypatch.setattr(
            repro.service,
            "build_status",
            functools.partial(build_status, clock=cv.FakeClock(cv.T0 + 3.0)),
        )
        out_path = os.path.join(str(tmp_path), "status.json")
        assert cli_main(["queue-status", "--json", out_path]) == 0
        with open(out_path) as fh:
            emitted = json.load(fh)
        golden = CORPUS["status_v1__populated.json"]["payload"]
        normalized = cv.normalize(emitted, os.path.abspath(cache_dir))
        assert cv.canonical_bytes(normalized) == cv.canonical_bytes(golden)

    def test_status_snapshot_tolerates_unreadable_heartbeat(self, tmp_path):
        """A torn heartbeat shows up `stale`, never crashes the snapshot."""
        from repro.service import build_status, format_status
        from repro.service.heartbeat import heartbeat_dir

        cache_dir = os.path.join(str(tmp_path), "runs")
        os.makedirs(heartbeat_dir(cache_dir), exist_ok=True)
        open(os.path.join(heartbeat_dir(cache_dir), "torn.json"), "w").close()
        status = build_status(cache_dir, clock=cv.FakeClock())
        (worker,) = status["workers"]
        assert worker["worker"] == "torn"
        assert worker["state"] == "unreadable"
        assert worker["liveness"] == "stale"
        assert worker["age_seconds"] is None
        assert status["totals"]["workers_alive"] == 0
        # the human rendering survives the placeholder too
        assert "beat unreadable" in format_status(status)


class TestSchemaFingerprints:
    def test_fingerprints_are_distinct_and_stable_shape(self):
        prints = {schema_fingerprint(cls) for cls in registered_types()}
        assert len(prints) == len(registered_types())
        assert all(len(p) == 64 for p in prints)

    def test_nested_schema_changes_move_the_parent_fingerprint(self):
        # the journal entry embeds the run record; the embedded spec is
        # part of the parent's fingerprint, so v1/v2 (different status
        # enums) already differ and any RunRecord change would too
        assert schema_fingerprint(messages.JournalEntryV1) != schema_fingerprint(
            messages.JournalEntryV2
        )
