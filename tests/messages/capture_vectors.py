"""Capture golden vectors for every on-disk record family.

Each vector file under ``tests/messages/vectors/`` pins the **exact
bytes** one of the live producers writes, so the typed message layer
(:mod:`repro.messages`) can be proven byte-compatible with what real
runs left on disk before it existed.  The builders drive the real
producers (``new_entry``/``TaskQueue``, the streaming shard journal,
``Heartbeat``, ``FleetSupervisor.write_state``, ``build_status``, the
``bench_step_cost`` baseline) under injected clocks and patched
pid/hostname, so regeneration is deterministic: the conformance suite
re-runs every builder and diffs the output against the checked-in
corpus.

Usage (from the repo root)::

    PYTHONPATH=src python tests/messages/capture_vectors.py            # rewrite vectors
    PYTHONPATH=src python tests/messages/capture_vectors.py --manifest # + MANIFEST.json
    PYTHONPATH=src python tests/messages/capture_vectors.py --check    # CI drift gate

``--check`` regenerates everything into a temp directory and fails
(exit 1) on any difference from the checked-in vectors or manifest —
the ``message-vectors`` CI gate: a ``repro.messages`` schema cannot
change without new vectors landing next to it.
"""

import argparse
import hashlib
import json
import os
import shutil
import sys
import tempfile
from unittest import mock

VECTOR_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "vectors")
MANIFEST_NAME = "MANIFEST.json"

#: Deterministic stand-ins for the ambient identity every producer stamps.
FAKE_PID = 4242
FAKE_HOST = "vector-host"
WORKER = "vector-worker:7:feedbeef"
T0 = 1000.0


class FakeClock:
    """An injectable, manually advanced ``time.time`` replacement."""

    def __init__(self, now=T0):
        self.now = now

    def __call__(self):
        return self.now


def canonical_bytes(payload):
    """The exact bytes ``atomic_write_json``/``json.dump`` emits (compact)."""
    return json.dumps(payload).encode()


def normalize(value, root):
    """Replace the scenario's temp root in every string with ``/CACHE``.

    Status documents embed absolute paths (``cache_dir``, queue roots);
    everything else in them is deterministic, so this is the only
    normalization golden status vectors need.
    """
    if isinstance(value, str):
        return value.replace(root, "/CACHE")
    if isinstance(value, list):
        return [normalize(item, root) for item in value]
    if isinstance(value, dict):
        return {key: normalize(item, root) for key, item in value.items()}
    return value


def _identity_patches():
    return (
        mock.patch("os.getpid", return_value=FAKE_PID),
        mock.patch("socket.gethostname", return_value=FAKE_HOST),
    )


# ----------------------------------------------------------------------
# Scenario builders (each drives the real producers)
# ----------------------------------------------------------------------
def build_journal_scenario(cache_dir, clock=None):
    """A v2 queue journal exercising every lifecycle state.

    Returns ``(queue, configs)``; the journal under ``queue.root`` holds
    one entry per state: pending, leased, done, error, quarantined —
    plus the leased entry the quarantine pass rolls onto.
    """
    from repro.experiments import RunRecord, TaskQueue, TrainConfig

    clock = clock or FakeClock()
    configs = [
        TrainConfig(dtype="float32"),
        TrainConfig(dtype="float64"),
        TrainConfig(dtype="float32", epochs=2),
        TrainConfig(dtype="float32", epochs=3),
    ]
    queue = TaskQueue.create(cache_dir, "vectors", clock=clock)
    queue.enqueue(configs)

    # done: claim + resolve ok (c1)
    entry = queue.claim(WORKER)
    clock.now = T0 + 2.0
    queue.resolve(
        entry["key"], WORKER,
        RunRecord(key=entry["key"], config=configs[0], status="ok",
                  seconds=1.5, train_acc=0.5, test_acc=0.25),
    )
    # error: claim + resolve error (c2)
    entry = queue.claim(WORKER)
    clock.now = T0 + 3.0
    queue.resolve(
        entry["key"], WORKER,
        RunRecord(key=entry["key"], config=configs[1], status="error",
                  seconds=0.25, error="RuntimeError: boom"),
    )
    # leased (c3): claim, then exhaust its attempts and expire the lease
    # so the next claim quarantines it (the poison backstop), rolling a
    # fresh lease onto c4.
    entry = queue.claim(WORKER)

    def exhaust(current):
        bumped = dict(current)
        bumped["attempts"] = queue.meta["max_attempts"]
        return bumped

    queue.journal.update(entry["key"], exhaust)
    clock.now = T0 + 1000.0  # past the default 900 s lease timeout
    queue.claim(WORKER)
    return queue, configs


def journal_vectors():
    from repro.experiments import TrainConfig
    from repro.experiments.scheduler import new_entry

    vectors = []
    pending = new_entry(TrainConfig(dtype="float32"), force=False, now=0.0)
    vectors.append((
        "journal_entry_v2__pending.json", "queue.journal_entry", 2,
        "fresh pending entry from new_entry() at now=0 (matches the "
        "tests/test_golden.py fingerprint)", pending,
    ))
    # v1 entries: same field set, version 1, no quarantined state (the
    # documented pre-PR-6 schema) — the upgrade-path fixtures.
    v1_pending = dict(pending, version=1)
    vectors.append((
        "journal_entry_v1__pending.json", "queue.journal_entry", 1,
        "synthesized v1 pending entry (same fields as v2; the version "
        "gated state-machine semantics only)", v1_pending,
    ))

    tmp = tempfile.mkdtemp(prefix="vector-journal-")
    try:
        queue, configs = build_journal_scenario(tmp)
        by_status = {}
        for key, entry in sorted(queue.snapshot().items()):
            by_status.setdefault(entry["status"], (key, entry))
        for status in ("leased", "done", "error", "quarantined"):
            key, entry = by_status[status]
            vectors.append((
                f"journal_entry_v2__{status}.json", "queue.journal_entry", 2,
                f"live {status} entry captured from a real TaskQueue "
                "lifecycle under an injected clock", entry,
            ))
        done_key, done_entry = by_status["done"]
        v1_done = dict(done_entry, version=1)
        vectors.append((
            "journal_entry_v1__done.json", "queue.journal_entry", 1,
            "synthesized v1 done entry (upgrade fixture)", v1_done,
        ))
        vectors.append((
            "run_record_v1__ok.json", "queue.run_record", 1,
            "journal-embedded run record of a successful task",
            done_entry["record"],
        ))
        _err_key, err_entry = by_status["error"]
        vectors.append((
            "run_record_v1__error.json", "queue.run_record", 1,
            "journal-embedded run record of a contained failure",
            err_entry["record"],
        ))
        # The bit-identical drill corpus: raw file text of the whole
        # pre-PR journal directory, exactly as atomic_write_json left it.
        files = {}
        for name in sorted(os.listdir(queue.journal.root)):
            if name.endswith(".json"):
                with open(os.path.join(queue.journal.root, name)) as fh:
                    files[name] = fh.read()
        vectors.append((
            "journal_v2_pre_pr_drill.json", "drill.journal_v2", 2,
            "raw bytes of a complete v2-era journal directory; the new "
            "layer must read and re-serialize each file bit-identically",
            {"files": files},
        ))
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    return vectors


def shard_vectors():
    from repro.data.streaming import (
        SHARD_DONE,
        SHARD_WRITING,
        _journal_transition,
        shard_journal,
    )

    tmp = tempfile.mkdtemp(prefix="vector-shards-")
    vectors = []
    try:
        journal = shard_journal(tmp)
        getpid, _host = _identity_patches()
        with getpid, mock.patch("time.time", return_value=T0):
            _journal_transition(journal, "train-00000", SHARD_WRITING,
                                split="train", index=0, start=0, stop=8192)
            writing = journal.read("train-00000")
            _journal_transition(journal, "train-00000", SHARD_DONE,
                                split="train", index=0, start=0, stop=8192)
            done = journal.read("train-00000")
            _journal_transition(journal, "test-00000", SHARD_DONE,
                                split="test", index=0)
            v1_done = journal.read("test-00000")
        vectors = [
            ("shard_record_v1__writing.json", "data.shard_record", 1,
             "v2 shard mid-write (stamped before the first byte lands)", writing),
            ("shard_record_v1__done.json", "data.shard_record", 1,
             "v2 shard flushed and journaled done", done),
            ("shard_record_v1__v1split_done.json", "data.shard_record", 1,
             "single-shard (v1-stream) split record: no start/stop keys", v1_done),
        ]
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    return vectors


def heartbeat_vectors():
    from repro.service import Heartbeat

    tmp = tempfile.mkdtemp(prefix="vector-heartbeat-")
    vectors = []
    try:
        getpid, gethostname = _identity_patches()
        with getpid, gethostname:
            clock = FakeClock()
            hb = Heartbeat(tmp, f"fleet-0-r0-cafe@{FAKE_HOST}", clock=clock)
            hb.beat("idle", force=True)
            with open(hb.path) as fh:
                idle = json.load(fh)
            clock.now = T0 + 1.0
            hb.tasks_done = 3
            hb.beat("running", queue="/anywhere/queue/vectors",
                    key="d1f3ec2ebdbe1e36", force=True)
            with open(hb.path) as fh:
                running = json.load(fh)
            clock.now = T0 + 2.0
            hb.close()
            with open(hb.path) as fh:
                exited = json.load(fh)
        vectors = [
            ("heartbeat_v1__idle.json", "service.heartbeat", 1,
             "idle worker heartbeat", idle),
            ("heartbeat_v1__running.json", "service.heartbeat", 1,
             "running worker heartbeat (queue basename + task key)", running),
            ("heartbeat_v1__exited.json", "service.heartbeat", 1,
             "clean-shutdown heartbeat", exited),
        ]
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    return vectors


def supervisor_vectors():
    from repro.service import FleetSupervisor

    tmp = tempfile.mkdtemp(prefix="vector-supervisor-")
    vectors = []
    try:
        getpid, gethostname = _identity_patches()
        with getpid, gethostname:
            sup = FleetSupervisor(tmp, workers=1, clock=FakeClock(T0 + 0.5))
            sup.started_at = T0
            sup.slots = [{
                "name": "fleet-0",
                "worker": f"fleet-0-r0-cafe@{FAKE_HOST}",
                "proc": None,
                "restarts": 0,
                "spawned_at": T0,
            }]
            sup.write_state()
            with open(sup.state_path) as fh:
                running = json.load(fh)
            sup.write_state(status="stopped")
            with open(sup.state_path) as fh:
                stopped = json.load(fh)
        vectors = [
            ("supervisor_state_v1__running.json", "service.supervisor_state", 1,
             "published supervisor state with one (down) worker slot", running),
            ("supervisor_state_v1__stopped.json", "service.supervisor_state", 1,
             "final supervisor state after stop()", stopped),
        ]
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    return vectors


def build_status_scenario(cache_dir):
    """A populated cache (queue + heartbeat + supervisor) for ``build_status``.

    Deterministic by construction; the ``queue-status --json`` golden
    test rebuilds exactly this scenario through the CLI.
    """
    from repro.experiments import RunRecord, TaskQueue, TrainConfig
    from repro.service import FleetSupervisor, Heartbeat

    clock = FakeClock()
    getpid, gethostname = _identity_patches()
    with getpid, gethostname:
        configs = [TrainConfig(dtype="float32"), TrainConfig(dtype="float64")]
        queue = TaskQueue.create(cache_dir, "vectors", clock=clock)
        queue.enqueue(configs)
        entry = queue.claim(WORKER)
        clock.now = T0 + 2.0
        queue.resolve(
            entry["key"], WORKER,
            RunRecord(key=entry["key"], config=configs[0], status="ok",
                      seconds=2.5, train_acc=0.5, test_acc=0.25),
        )
        hb = Heartbeat(cache_dir, f"fleet-0-r0-cafe@{FAKE_HOST}", clock=clock)
        hb.tasks_done = 1
        hb.beat("idle", queue=queue.root, force=True)
        sup = FleetSupervisor(cache_dir, workers=1, clock=FakeClock(T0 + 2.5))
        sup.started_at = T0
        sup.slots = [{
            "name": "fleet-0",
            "worker": f"fleet-0-r0-cafe@{FAKE_HOST}",
            "proc": None,
            "restarts": 0,
            "spawned_at": T0,
        }]
        sup.write_state()


def status_vectors():
    from repro.service import build_status

    vectors = []
    tmp = tempfile.mkdtemp(prefix="vector-status-")
    try:
        empty_dir = os.path.join(tmp, "empty")
        os.makedirs(empty_dir)
        empty = build_status(empty_dir, clock=FakeClock(T0 + 3.0))
        vectors.append((
            "status_v1__empty.json", "service.status", 1,
            "snapshot over an empty cache (paths normalized to /CACHE)",
            normalize(empty, os.path.abspath(empty_dir)),
        ))
        full_dir = os.path.join(tmp, "full")
        build_status_scenario(full_dir)
        full = build_status(full_dir, clock=FakeClock(T0 + 3.0))
        vectors.append((
            "status_v1__populated.json", "service.status", 1,
            "snapshot over a populated cache: one half-drained queue, one "
            "alive heartbeat, one supervisor (paths normalized to /CACHE)",
            normalize(full, os.path.abspath(full_dir)),
        ))
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    return vectors


def bench_vectors():
    baseline_path = os.path.join(
        os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
        "benchmarks", "baseline_step_cost.json",
    )
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    smoke = {
        "steps": 1,
        "runs": [{
            "method": "sgd",
            "dtype": "float32",
            "fused": True,
            "arena": False,
            "seconds_per_step": 0.02,
            "steps_per_sec": 50.0,
            "alloc_peak_bytes": 14591768,
            "alloc_net_blocks": 652,
            "alloc_net_bytes": 39128,
        }],
        "speedups": {"sgd": 1.5},
    }
    return [
        ("step_cost_v1__baseline.json", "bench.step_cost", 1,
         "the checked-in benchmarks/baseline_step_cost.json (the CI "
         "bench-step-gate reads this format)", baseline),
        ("step_cost_v1__smoke.json", "bench.step_cost", 1,
         "minimal single-cell result as --json/--update-baseline writes it",
         smoke),
    ]


def serving_vectors():
    """Artifact manifests, batch records and server stats from the real
    serving producers (seeded weights, injected clock, patched identity)."""
    import numpy as np

    from repro.models import create_model
    from repro.quant import quantize_weights_and_activations
    from repro.serving import (
        BatchJournal,
        InferenceServer,
        model_spec,
        publish_artifact,
        uniform_weight_quant,
    )

    tmp = tempfile.mkdtemp(prefix="vector-serving-")
    vectors = []
    try:
        getpid, gethostname = _identity_patches()
        with getpid, gethostname:
            clock = FakeClock()
            model = create_model("mlp", num_classes=3, in_channels=4, scale=0.25, seed=11)
            model.eval()
            spec = model_spec("mlp", num_classes=3, in_channels=4, scale=0.25)
            plain = publish_artifact(
                model, spec, cache_dir=tmp, source="run:vector", clock=clock
            )
            calibration = np.arange(32, dtype=np.float32).reshape(8, 4) / 10.0 - 1.5
            deployed = quantize_weights_and_activations(
                model, weight_bits=8, act_bits=8, batches=[(calibration, None)]
            )
            deployed.eval()
            clock.now = T0 + 1.0
            quantized = publish_artifact(
                deployed, spec, cache_dir=tmp, source="run:vector",
                weight_quant=uniform_weight_quant(8), clock=clock,
            )
            vectors += [
                ("artifact_manifest_v1__float32.json", "serving.artifact_manifest", 1,
                 "published float32 artifact (no quant provenance)", plain.to_dict()),
                ("artifact_manifest_v1__w8a8.json", "serving.artifact_manifest", 1,
                 "published w8/a8 PTQ artifact with frozen activation ranges",
                 quantized.to_dict()),
            ]

            # One batch journal exercising every lifecycle state.
            root = os.path.join(tmp, "serving", "vector-batches")
            journal = BatchJournal(root, lease_timeout=5.0, clock=clock)
            for index, requests in enumerate(
                (["req-0000", "req-0001"], ["req-0002"], ["req-0003"], ["req-0004"])
            ):
                journal.enqueue(f"batch-{index:08d}", requests)
            journal.claim(WORKER)
            clock.now = T0 + 2.0
            journal.resolve("batch-00000000", WORKER)
            journal.claim(WORKER)
            clock.now = T0 + 3.0
            journal.resolve("batch-00000001", WORKER, error="RuntimeError: poison input")
            journal.claim(WORKER)  # batch-00000002 stays leased; -3 stays pending
            by_status = {
                record["status"]: record
                for record in journal.journal.snapshot().values()
            }
            for status in ("pending", "leased", "done", "error"):
                vectors.append((
                    f"batch_record_v1__{status}.json", "serving.batch_record", 1,
                    f"live {status} batch record from a real BatchJournal "
                    "lifecycle under an injected clock", by_status[status],
                ))

            # Server stats: fresh server, then after a served batch.
            clock.now = T0 + 4.0
            server = InferenceServer(
                plain.key, cache_dir=tmp, name="vector-server",
                workers=2, max_batch=4, max_delay=0.01, clock=clock,
            )
            server.started_at = T0 + 4.0
            fresh = server.write_stats().to_dict()
            store = server.batcher.store
            for index in range(3):
                store.submit(calibration[:1], f"req-{index:04d}")
            clock.now = T0 + 5.0
            server.batcher.poll(force=True)
            record = server.journal.claim(WORKER)
            clock.now = T0 + 6.0
            server.journal.resolve(record["key"], WORKER)
            busy = server.write_stats().to_dict()
            vectors += [
                ("server_stats_v1__fresh.json", "serving.server_stats", 1,
                 "stats snapshot of a just-started server (nothing admitted)", fresh),
                ("server_stats_v1__served.json", "serving.server_stats", 1,
                 "stats snapshot after one 3-request batch was served", busy),
            ]
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    return vectors


def all_vectors():
    vectors = []
    vectors += journal_vectors()
    vectors += shard_vectors()
    vectors += heartbeat_vectors()
    vectors += supervisor_vectors()
    vectors += status_vectors()
    vectors += bench_vectors()
    vectors += serving_vectors()
    return vectors


# ----------------------------------------------------------------------
# Vector file + manifest plumbing
# ----------------------------------------------------------------------
def render_vector(name, type_name, version, description, payload):
    doc = {
        "type": type_name,
        "version": version,
        "description": description,
        "canonical_sha256": hashlib.sha256(canonical_bytes(payload)).hexdigest(),
        "payload": payload,
    }
    return json.dumps(doc, indent=2) + "\n"


def write_vectors(out_dir):
    os.makedirs(out_dir, exist_ok=True)
    names = []
    for name, type_name, version, description, payload in all_vectors():
        with open(os.path.join(out_dir, name), "w") as fh:
            fh.write(render_vector(name, type_name, version, description, payload))
        names.append(name)
    return names


def build_manifest(out_dir):
    """Hash manifest over the vectors dir + schema fingerprints.

    Requires :mod:`repro.messages`; the manifest is what the CI
    ``message-vectors`` gate diffs, so any schema change without a
    matching vector regeneration fails loudly.
    """
    from repro.messages import registered_types, schema_fingerprint

    files = {}
    for name in sorted(os.listdir(out_dir)):
        if not name.endswith(".json") or name == MANIFEST_NAME:
            continue
        with open(os.path.join(out_dir, name), "rb") as fh:
            files[name] = hashlib.sha256(fh.read()).hexdigest()
    schemas = {
        f"{cls.TYPE_NAME}@v{cls.VERSION}": schema_fingerprint(cls)
        for cls in registered_types()
    }
    return {"manifest_version": 1, "schemas": schemas, "vectors": files}


def write_manifest(out_dir):
    manifest = build_manifest(out_dir)
    with open(os.path.join(out_dir, MANIFEST_NAME), "w") as fh:
        fh.write(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    return manifest


def check(out_dir):
    """Regenerate into a temp dir and diff against ``out_dir``; 0 iff clean."""
    tmp = tempfile.mkdtemp(prefix="vector-check-")
    failures = []
    try:
        write_vectors(tmp)
        fresh = write_manifest(tmp)
        try:
            with open(os.path.join(out_dir, MANIFEST_NAME)) as fh:
                checked_in = json.load(fh)
        except FileNotFoundError:
            failures.append(f"missing {MANIFEST_NAME} under {out_dir}")
            checked_in = {}
        for section in ("schemas", "vectors"):
            have, want = checked_in.get(section, {}), fresh[section]
            for key in sorted(set(have) | set(want)):
                if have.get(key) != want.get(key):
                    failures.append(
                        f"{section}[{key}]: checked-in {have.get(key)} != "
                        f"regenerated {want.get(key)}"
                    )
        for name in fresh["vectors"]:
            path = os.path.join(out_dir, name)
            if not os.path.exists(path):
                failures.append(f"vector file missing: {name}")
                continue
            with open(path) as fh, open(os.path.join(tmp, name)) as fresh_fh:
                if fh.read() != fresh_fh.read():
                    failures.append(f"vector file drifted: {name}")
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    for failure in failures:
        print(f"message-vectors: {failure}", file=sys.stderr)
    if failures:
        print(
            "message-vectors: a repro.messages type changed without "
            "regenerated vectors; run "
            "`PYTHONPATH=src python tests/messages/capture_vectors.py --manifest`",
            file=sys.stderr,
        )
    return 1 if failures else 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=VECTOR_DIR)
    parser.add_argument("--manifest", action="store_true",
                        help="also (re)write MANIFEST.json (needs repro.messages)")
    parser.add_argument("--check", action="store_true",
                        help="regenerate to a temp dir and fail on any drift")
    args = parser.parse_args(argv)
    if args.check:
        return check(args.out)
    names = write_vectors(args.out)
    print(f"wrote {len(names)} vectors -> {args.out}")
    if args.manifest:
        manifest = write_manifest(args.out)
        print(f"manifest: {len(manifest['vectors'])} vectors, "
              f"{len(manifest['schemas'])} schemas")
    return 0


if __name__ == "__main__":
    sys.exit(main())
