"""Unit + property tests for the ``repro.messages`` kernel.

The golden-vector suite (``test_vectors.py``) pins the concrete bytes;
this file exercises the *rules*: strict unknown/missing-field
rejection, typed wrong-type errors, version dispatch, upgrade-chain
sanity — and, via hypothesis, that every arbitrary *valid* message
survives ``dict -> message -> dict`` identically while every injected
corruption is a typed rejection, for every registered type.
"""

import dataclasses
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.messages import (
    FieldTypeError,
    HeartbeatV1,
    JournalEntryV1,
    JournalEntryV2,
    Message,
    MessageError,
    MissingFieldError,
    RunRecordV1,
    SchemaError,
    ShardRecordV1,
    UnknownFieldError,
    UnknownTypeError,
    UpgradeError,
    VersionError,
    latest,
    parse,
    registered_types,
)
from repro.messages.base import (
    Check,
    DictOf,
    ListOf,
    NestedMessage,
    Nullable,
    is_object,
)

RECORD = {
    "key": "k",
    "status": "ok",
    "from_cache": False,
    "seconds": 1.0,
    "train_acc": 0.5,
    "test_acc": None,
    "error": None,
    "pid": 1,
}


def entry_payload(**overrides):
    payload = {
        "version": 2,
        "key": "k",
        "config": {"dtype": "float32"},
        "force": False,
        "status": "pending",
        "attempts": 0,
        "worker": None,
        "leased_at": None,
        "lease_expires": None,
        "enqueued_at": 0.0,
        "started_at": None,
        "finished_at": None,
        "record": None,
    }
    payload.update(overrides)
    return payload


class TestStrictness:
    def test_unknown_field_rejected(self):
        with pytest.raises(UnknownFieldError) as err:
            JournalEntryV2.from_dict(entry_payload(surprise=1))
        assert "surprise" in str(err.value)

    def test_missing_field_rejected(self):
        payload = entry_payload()
        del payload["attempts"]
        with pytest.raises(MissingFieldError) as err:
            JournalEntryV2.from_dict(payload)
        assert "attempts" in str(err.value)

    def test_wrong_type_rejected_with_field_path(self):
        with pytest.raises(FieldTypeError) as err:
            JournalEntryV2.from_dict(entry_payload(attempts="three"))
        assert "attempts" in str(err.value)

    def test_bool_is_not_an_int(self):
        with pytest.raises(FieldTypeError):
            JournalEntryV2.from_dict(entry_payload(attempts=True))

    def test_enum_domain_enforced(self):
        with pytest.raises(FieldTypeError):
            JournalEntryV2.from_dict(entry_payload(status="paused"))
        # quarantined exists in v2 but not in v1
        JournalEntryV2.from_dict(entry_payload(status="quarantined", attempts=3))
        with pytest.raises(FieldTypeError):
            JournalEntryV1.from_dict(
                entry_payload(version=1, status="quarantined", attempts=3)
            )

    def test_nested_message_validated_with_path(self):
        bad = dict(RECORD, rogue=1)
        with pytest.raises(UnknownFieldError):
            JournalEntryV2.from_dict(
                entry_payload(status="done", record=bad)
            )

    def test_non_dict_payload_rejected(self):
        with pytest.raises(SchemaError):
            JournalEntryV2.from_dict(None)
        with pytest.raises(SchemaError):
            parse("queue.journal_entry", "[]")

    def test_construction_is_validated_too(self):
        with pytest.raises(FieldTypeError):
            HeartbeatV1(
                worker="w", pid=1, host="h", state="sleeping", queue=None,
                key=None, tasks_done=0, interval=2.0, started_at=0.0, beat_at=0.0,
            )


class TestOmitIfMissing:
    def test_absent_optional_keys_parse_and_stay_absent(self):
        payload = {
            "shard": "test-00000",
            "status": "done",
            "updated_at": 1.0,
            "pid": 1,
            "split": "test",
            "index": 0,
        }
        record = ShardRecordV1.from_dict(payload)
        assert record.start is None and record.stop is None
        assert record.to_dict() == payload  # no null keys invented

    def test_present_optional_keys_round_trip(self):
        payload = {
            "shard": "train-00001",
            "status": "writing",
            "updated_at": 1.0,
            "pid": 1,
            "split": "train",
            "index": 1,
            "start": 8192,
            "stop": 16384,
        }
        assert ShardRecordV1.from_dict(payload).to_dict() == payload


class TestRegistry:
    def test_unknown_type_name(self):
        with pytest.raises(UnknownTypeError):
            parse("queue.no_such_type", {})
        with pytest.raises(UnknownTypeError):
            latest("queue.no_such_type")

    def test_version_dispatch_and_upgrade_walk(self):
        v1 = entry_payload(version=1)
        message = parse("queue.journal_entry", v1)
        assert isinstance(message, JournalEntryV2)

    def test_versionless_types_reject_a_version_key(self):
        # run records carry no version envelope; a payload that grows
        # one is from some other build and must not parse silently
        with pytest.raises(UnknownFieldError):
            parse("queue.run_record", dict(RECORD, version=1))

    def test_default_upgrade_refuses(self):
        with pytest.raises(UpgradeError):
            RunRecordV1.from_dict(RECORD).upgrade()

    def test_registered_types_are_ordered_and_versioned(self):
        names = [(cls.TYPE_NAME, cls.VERSION) for cls in registered_types()]
        assert names == sorted(names)
        assert ("queue.journal_entry", 1) in names
        assert ("queue.journal_entry", 2) in names


# ----------------------------------------------------------------------
# Property tests: valid -> identity, corrupted -> typed rejection
# ----------------------------------------------------------------------
def _strategy_for(check):
    """A hypothesis strategy producing values the check accepts."""
    if isinstance(check, Nullable):
        return st.none() | _strategy_for(check.inner)
    if isinstance(check, ListOf):
        return st.lists(_strategy_for(check.item), max_size=3)
    if isinstance(check, DictOf):
        return st.dictionaries(
            st.text(max_size=8), _strategy_for(check.value_check), max_size=3
        )
    if isinstance(check, NestedMessage):
        return _payload_strategy(check.cls)
    if check is is_object:
        return st.dictionaries(st.text(max_size=8), st.integers(), max_size=3)
    spec = check.describe()
    if isinstance(spec, list) and spec[0] == "enum":
        return st.sampled_from(spec[1])
    return {
        "str": st.text(max_size=16),
        "bool": st.booleans(),
        "int": st.integers(min_value=-(2**53), max_value=2**53),
        "number": st.integers(min_value=-(2**53), max_value=2**53)
        | st.floats(allow_nan=False, allow_infinity=False, width=32),
    }[spec]


@st.composite
def _payload_strategy(draw, cls):
    """An arbitrary *valid* wire payload for a message class."""
    payload = {}
    if cls.VERSION_FIELD is not None:
        payload[cls.VERSION_FIELD] = cls.VERSION
    for field in dataclasses.fields(cls):
        value = draw(_strategy_for(cls.CHECKS[field.name]))
        if field.name in cls.OMIT_IF_MISSING and value is None:
            continue  # the wire form omits these rather than writing null
        payload[field.name] = value
    return payload


class _Marker:
    """A value no Check accepts (not str/bool/number/dict/list/None)."""

    def __repr__(self):
        return "<corrupt>"


TYPES = registered_types()


@pytest.mark.parametrize("cls", TYPES, ids=[f"{c.TYPE_NAME}@v{c.VERSION}" for c in TYPES])
class TestMessageProperties:
    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_valid_payload_round_trips_identically(self, cls, data):
        payload = data.draw(_payload_strategy(cls))
        message = cls.from_dict(payload)
        out = message.to_dict()
        # identity includes key order: compare serialized bytes
        assert json.dumps(out) == json.dumps(payload)
        assert cls.from_dict(out) == message
        assert isinstance(message, Message)

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_corruption_is_a_typed_rejection(self, cls, data):
        payload = data.draw(_payload_strategy(cls))
        fields = [f.name for f in dataclasses.fields(cls)]
        mode = data.draw(st.sampled_from(["unknown", "missing", "wrong-type"]))
        if mode == "unknown":
            payload["__rogue__"] = 1
            expected = UnknownFieldError
        elif mode == "missing":
            required = [
                name
                for name in fields
                if name in payload and name not in cls.OMIT_IF_MISSING
            ]
            payload.pop(data.draw(st.sampled_from(required)))
            expected = MissingFieldError
        else:
            victims = [name for name in fields if name in payload]
            payload[data.draw(st.sampled_from(victims))] = _Marker()
            expected = FieldTypeError
        with pytest.raises(expected):
            cls.from_dict(payload)
        # every rejection is also the shared typed base, so callers can
        # catch one exception type at the boundary
        with pytest.raises(MessageError):
            cls.from_dict(payload)
