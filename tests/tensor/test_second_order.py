"""Second-order correctness: exact HVPs vs finite differences.

HERO's training rule differentiates through a gradient; these tests
pin the double-backprop machinery on every op family it touches.
"""

import numpy as np

from repro.tensor import Tensor, check_hvp, analytic_hvp, log_softmax


class TestAnalyticHessians:
    def test_quadratic_form_hessian(self, rng):
        # f(x) = 0.5 x^T A x  ->  H = (A + A^T)/2 * 2 = A + A^T symmetrized
        n = 5
        a_mat = rng.standard_normal((n, n))
        sym = 0.5 * (a_mat + a_mat.T)
        x0 = rng.standard_normal(n)
        v = rng.standard_normal(n)

        def f(x):
            return 0.5 * (x * (Tensor(sym) @ x.reshape(n, 1)).reshape(n)).sum()

        hv = analytic_hvp(f, [x0], v)
        assert np.allclose(hv, sym @ v, atol=1e-8)

    def test_quartic_diagonal_hessian(self, rng):
        x0 = rng.standard_normal(6)
        v = rng.standard_normal(6)
        hv = analytic_hvp(lambda x: (x ** 4).sum(), [x0], v)
        assert np.allclose(hv, 12 * x0 ** 2 * v, atol=1e-8)

    def test_linear_function_zero_hessian(self, rng):
        x0 = rng.standard_normal(4)
        v = rng.standard_normal(4)
        hv = analytic_hvp(lambda x: (x * 3.0).sum(), [x0], v)
        assert np.allclose(hv, 0.0)


class TestHVPvsFiniteDiff:
    def test_matmul_chain(self, rng):
        a = rng.standard_normal((3, 4))
        b = rng.standard_normal((4, 2))
        v = rng.standard_normal((3, 4))
        check_hvp(lambda x: ((x @ b) ** 2).sum(), [a], v)

    def test_tanh(self, rng):
        a = rng.standard_normal((3, 4))
        check_hvp(lambda x: (x.tanh() ** 3).sum(), [a], rng.standard_normal((3, 4)))

    def test_exp_log(self, rng):
        a = np.abs(rng.standard_normal((3, 3))) + 0.5
        check_hvp(lambda x: (x.log() * x.exp()).sum(), [a], rng.standard_normal((3, 3)))

    def test_sigmoid(self, rng):
        a = rng.standard_normal((4, 2))
        check_hvp(lambda x: (x.sigmoid() ** 2).sum(), [a], rng.standard_normal((4, 2)))

    def test_log_softmax_nll(self, rng):
        a = rng.standard_normal((4, 5))
        labels = np.array([0, 2, 4, 1])
        idx = np.arange(4) * 5 + labels
        check_hvp(
            lambda x: (-log_softmax(x, axis=1).take_flat(idx)).sum() / 4,
            [a],
            rng.standard_normal((4, 5)),
        )

    def test_reductions(self, rng):
        a = rng.standard_normal((4, 5))
        check_hvp(lambda x: (x.var(axis=0) ** 2).sum(), [a], rng.standard_normal((4, 5)))

    def test_through_slicing_and_concat(self, rng):
        from repro.tensor import concat

        a = rng.standard_normal((4, 4))
        v = rng.standard_normal((4, 4))
        check_hvp(
            lambda x: (concat([x[:2] ** 2, x[2:] ** 3], axis=0)).sum(), [a], v
        )

    def test_through_take_flat(self, rng):
        a = rng.standard_normal((3, 4))
        idx = np.array([0, 5, 5, 11])
        check_hvp(lambda x: (x.take_flat(idx) ** 3).sum(), [a], rng.standard_normal((3, 4)))

    def test_relu_second_derivative_zero(self, rng):
        # away from the kink, d2/dx2 relu(x)^1 = 0: HVP of sum(relu(x)) is 0
        a = rng.standard_normal((3, 3))
        a[np.abs(a) < 0.1] = 0.5
        hv = analytic_hvp(lambda x: x.relu().sum(), [a], np.ones((3, 3)))
        assert np.allclose(hv, 0.0)

    def test_hessian_symmetry(self, rng):
        # v1^T H v2 == v2^T H v1 for a nontrivial function
        a = rng.standard_normal(6)
        v1, v2 = rng.standard_normal(6), rng.standard_normal(6)

        def f(x):
            return ((x ** 3).sum() + (x[:3] * x[3:]).sum()) * 0.5

        h_v1 = analytic_hvp(f, [a], v1)
        h_v2 = analytic_hvp(f, [a], v2)
        assert np.isclose(np.dot(v2, h_v1), np.dot(v1, h_v2), rtol=1e-8)
