"""Unit tests for composite functions (softmax family, stats, stacking)."""

import numpy as np
from scipy.special import logsumexp as scipy_logsumexp, softmax as scipy_softmax

from repro.tensor import (
    Tensor,
    check_gradient,
    dot,
    flatten_params,
    log_softmax,
    logsumexp,
    softmax,
    std,
)


class TestForwardValues:
    def test_logsumexp_matches_scipy(self, rng):
        a = rng.standard_normal((4, 6)) * 5
        assert np.allclose(
            logsumexp(Tensor(a), axis=1).data, scipy_logsumexp(a, axis=1)
        )

    def test_logsumexp_keepdims(self, rng):
        a = rng.standard_normal((4, 6))
        out = logsumexp(Tensor(a), axis=1, keepdims=True)
        assert out.shape == (4, 1)

    def test_logsumexp_extreme_values(self):
        a = np.array([[1000.0, 1000.0], [-1000.0, -999.0]])
        out = logsumexp(Tensor(a), axis=1).data
        assert np.all(np.isfinite(out))
        assert np.allclose(out, scipy_logsumexp(a, axis=1))

    def test_softmax_matches_scipy(self, rng):
        a = rng.standard_normal((5, 7)) * 3
        assert np.allclose(softmax(Tensor(a), axis=1).data, scipy_softmax(a, axis=1))

    def test_softmax_rows_sum_to_one(self, rng):
        a = rng.standard_normal((5, 7))
        assert np.allclose(softmax(Tensor(a), axis=1).data.sum(axis=1), 1.0)

    def test_log_softmax_consistency(self, rng):
        a = rng.standard_normal((3, 4))
        assert np.allclose(
            log_softmax(Tensor(a), axis=1).data,
            np.log(scipy_softmax(a, axis=1)),
        )

    def test_std(self, rng):
        a = rng.standard_normal((4, 5))
        assert np.allclose(std(Tensor(a), axis=0).data, a.std(axis=0))

    def test_dot(self, rng):
        a, b = rng.standard_normal((3, 3)), rng.standard_normal((3, 3))
        assert np.isclose(dot(Tensor(a), Tensor(b)).data, np.sum(a * b))

    def test_flatten_params(self, rng):
        parts = [rng.standard_normal(s) for s in [(2, 3), (4,), (1, 2, 2)]]
        flat = flatten_params([Tensor(p) for p in parts])
        assert flat.shape == (14,)
        assert np.allclose(flat.data, np.concatenate([p.reshape(-1) for p in parts]))


class TestGradients:
    def test_logsumexp(self, rng):
        a = rng.standard_normal((3, 5))
        check_gradient(lambda x: logsumexp(x, axis=1).sum(), [a])

    def test_log_softmax(self, rng):
        a = rng.standard_normal((3, 5))
        check_gradient(lambda x: (log_softmax(x, axis=1) ** 2).sum(), [a])

    def test_softmax(self, rng):
        a = rng.standard_normal((3, 5))
        check_gradient(lambda x: (softmax(x, axis=1) ** 2).sum(), [a])

    def test_std(self, rng):
        a = rng.standard_normal((4, 5))
        check_gradient(lambda x: std(x, axis=0, eps=1e-10).sum(), [a])

    def test_flatten_params_grad(self, rng):
        a, b = rng.standard_normal((2, 2)), rng.standard_normal(3)
        check_gradient(lambda x, y: (flatten_params([x, y]) ** 2).sum(), [a, b], index=0)
        check_gradient(lambda x, y: (flatten_params([x, y]) ** 2).sum(), [a, b], index=1)
