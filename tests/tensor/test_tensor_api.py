"""Tensor construction helpers and miscellaneous API surface."""

import numpy as np
import pytest

from repro.tensor import Tensor, default_dtype


class TestConstructors:
    def test_zeros_ones_full_eye(self):
        assert np.all(Tensor.zeros(2, 3).data == 0)
        assert Tensor.zeros(2, 3).shape == (2, 3)
        assert np.all(Tensor.ones(4).data == 1)
        assert np.all(Tensor.full((2, 2), 7.5).data == 7.5)
        assert np.allclose(Tensor.eye(3).data, np.eye(3))

    def test_randn_seeded(self):
        a = Tensor.randn(3, 3, rng=np.random.default_rng(0))
        b = Tensor.randn(3, 3, rng=np.random.default_rng(0))
        assert np.allclose(a.data, b.data)

    def test_requires_grad_flag(self):
        t = Tensor.zeros(2, requires_grad=True)
        assert t.requires_grad

    def test_as_tensor_passthrough(self):
        t = Tensor([1.0, 2.0])
        assert Tensor.as_tensor(t) is t
        wrapped = Tensor.as_tensor([3.0])
        assert isinstance(wrapped, Tensor)

    def test_dtype_coercion(self):
        t = Tensor(np.array([1, 2, 3], dtype=np.int32))
        assert t.dtype == default_dtype()

    def test_explicit_dtype_overrides_policy(self):
        t = Tensor(np.array([1.0, 2.0]), dtype=np.float64)
        assert t.dtype == np.float64


class TestAccessors:
    def test_shape_ndim_size_len(self):
        t = Tensor(np.zeros((2, 3, 4)))
        assert t.shape == (2, 3, 4)
        assert t.ndim == 3
        assert t.size == 24
        assert len(t) == 2

    def test_item(self):
        assert Tensor(5.0).item() == 5.0
        assert Tensor(np.array([[3.5]])).item() == 3.5
        with pytest.raises(ValueError):
            Tensor(np.zeros(3)).item()

    def test_T_property(self):
        t = Tensor(np.arange(6.0).reshape(2, 3))
        assert t.T.shape == (3, 2)

    def test_numpy_shares_buffer(self):
        t = Tensor(np.zeros(3))
        t.numpy()[0] = 5.0
        assert t.data[0] == 5.0

    def test_copy_data_detaches_and_copies(self):
        t = Tensor(np.zeros(3), requires_grad=True)
        c = t.copy_data()
        c.data[0] = 9.0
        assert t.data[0] == 0.0
        assert not c.requires_grad

    def test_repr_mentions_grad(self):
        assert "requires_grad" in repr(Tensor(1.0, requires_grad=True))
        assert "requires_grad" not in repr(Tensor(1.0))


class TestCloneAndComparisons:
    def test_clone_is_differentiable(self):
        t = Tensor(np.array([2.0]), requires_grad=True)
        c = t.clone()
        (c * 3).backward(grad=np.ones(1))
        assert np.allclose(t.grad.data, 3.0)

    def test_comparisons_return_numpy_bool(self):
        a = Tensor(np.array([1.0, 3.0]))
        b = Tensor(np.array([2.0, 2.0]))
        assert (a > b).tolist() == [False, True]
        assert (a < 2.0).tolist() == [True, False]
        assert (a >= 1.0).tolist() == [True, True]
        assert (a <= b).tolist() == [True, False]

    def test_min_max_full_reduction(self):
        t = Tensor(np.array([[1.0, -2.0], [5.0, 0.0]]))
        assert t.max().item() == 5.0
        assert t.min().item() == -2.0
