"""Unit tests for arithmetic primitives: values and gradients."""

import numpy as np
import pytest

from repro.tensor import Tensor, check_gradient


class TestForwardValues:
    def test_add(self, rng):
        a, b = rng.standard_normal((3, 4)), rng.standard_normal((3, 4))
        assert np.allclose((Tensor(a) + Tensor(b)).data, a + b)

    def test_add_scalar(self, rng):
        a = rng.standard_normal((3, 4))
        assert np.allclose((Tensor(a) + 2.5).data, a + 2.5)
        assert np.allclose((2.5 + Tensor(a)).data, a + 2.5)

    def test_add_broadcast(self, rng):
        a, b = rng.standard_normal((3, 4)), rng.standard_normal((4,))
        assert np.allclose((Tensor(a) + Tensor(b)).data, a + b)

    def test_sub(self, rng):
        a, b = rng.standard_normal(5), rng.standard_normal(5)
        assert np.allclose((Tensor(a) - Tensor(b)).data, a - b)
        assert np.allclose((1.0 - Tensor(b)).data, 1.0 - b)

    def test_mul(self, rng):
        a, b = rng.standard_normal((2, 3)), rng.standard_normal((2, 3))
        assert np.allclose((Tensor(a) * Tensor(b)).data, a * b)

    def test_div(self, rng):
        a = rng.standard_normal((2, 3))
        b = rng.standard_normal((2, 3)) + 3.0
        assert np.allclose((Tensor(a) / Tensor(b)).data, a / b)
        assert np.allclose((1.0 / Tensor(b)).data, 1.0 / b)

    def test_neg(self, rng):
        a = rng.standard_normal(4)
        assert np.allclose((-Tensor(a)).data, -a)

    def test_pow(self, rng):
        a = np.abs(rng.standard_normal((2, 2))) + 0.5
        assert np.allclose((Tensor(a) ** 3).data, a ** 3)
        assert np.allclose(Tensor(a).pow(-0.5).data, a ** -0.5)

    def test_matmul_2d(self, rng):
        a, b = rng.standard_normal((3, 4)), rng.standard_normal((4, 5))
        assert np.allclose((Tensor(a) @ Tensor(b)).data, a @ b)

    def test_matmul_batched(self, rng):
        a = rng.standard_normal((6, 3, 4))
        b = rng.standard_normal((6, 4, 2))
        assert np.allclose((Tensor(a) @ Tensor(b)).data, a @ b)

    def test_matmul_broadcast_batch(self, rng):
        a = rng.standard_normal((6, 3, 4))
        b = rng.standard_normal((4, 2))
        assert np.allclose((Tensor(a) @ Tensor(b)).data, a @ b)

    def test_matmul_rejects_1d(self, rng):
        with pytest.raises(ValueError):
            Tensor(rng.standard_normal(3)) @ Tensor(rng.standard_normal((3, 2)))


class TestGradients:
    def test_add_broadcast_grads(self, rng):
        a, b = rng.standard_normal((3, 4)), rng.standard_normal((4,))
        check_gradient(lambda x, y: ((x + y) ** 2).sum(), [a, b], index=0)
        check_gradient(lambda x, y: ((x + y) ** 2).sum(), [a, b], index=1)

    def test_mul_broadcast_grads(self, rng):
        a, b = rng.standard_normal((2, 3, 4)), rng.standard_normal((3, 1))
        check_gradient(lambda x, y: ((x * y) ** 2).sum(), [a, b], index=0)
        check_gradient(lambda x, y: ((x * y) ** 2).sum(), [a, b], index=1)

    def test_div_grads(self, rng):
        a = rng.standard_normal((3, 3))
        b = rng.standard_normal((3, 3)) + 3.0
        check_gradient(lambda x, y: (x / y).sum(), [a, b], index=0)
        check_gradient(lambda x, y: (x / y).sum(), [a, b], index=1)

    def test_pow_grads(self, rng):
        a = np.abs(rng.standard_normal((3, 3))) + 0.5
        check_gradient(lambda x: (x ** 3).sum(), [a])
        check_gradient(lambda x: (x ** 0.5).sum(), [a])
        check_gradient(lambda x: (x ** -1.0).sum(), [a])

    def test_matmul_grads(self, rng):
        a, b = rng.standard_normal((3, 4)), rng.standard_normal((4, 2))
        check_gradient(lambda x, y: ((x @ y) ** 2).sum(), [a, b], index=0)
        check_gradient(lambda x, y: ((x @ y) ** 2).sum(), [a, b], index=1)

    def test_matmul_batched_grads(self, rng):
        a = rng.standard_normal((2, 3, 4))
        b = rng.standard_normal((2, 4, 2))
        check_gradient(lambda x, y: ((x @ y) ** 2).sum(), [a, b], index=0)
        check_gradient(lambda x, y: ((x @ y) ** 2).sum(), [a, b], index=1)

    def test_matmul_broadcast_grads(self, rng):
        a = rng.standard_normal((2, 3, 4))
        b = rng.standard_normal((4, 2))
        check_gradient(lambda x, y: ((x @ y) ** 2).sum(), [a, b], index=1)

    def test_chained_expression(self, rng):
        a = rng.standard_normal((4, 4))
        b = rng.standard_normal((4, 4))
        check_gradient(
            lambda x, y: (((x @ y) * x - y) ** 2).sum() / 7.0, [a, b], index=0
        )
