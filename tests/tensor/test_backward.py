"""Graph-mechanics tests: accumulation, reuse, no_grad, create_graph."""

import numpy as np
import pytest

from repro.tensor import Tensor, no_grad, enable_grad, is_grad_enabled


class TestBackwardMechanics:
    def test_scalar_backward_default_seed(self):
        x = Tensor(2.0, requires_grad=True)
        (x * 3.0).backward()
        assert np.isclose(x.grad.data, 3.0)

    def test_nonscalar_backward_requires_grad_arg(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2).backward()
        (x * 2).backward(grad=np.ones(3))
        assert np.allclose(x.grad.data, 2.0)

    def test_backward_on_non_grad_tensor_raises(self):
        x = Tensor(np.ones(3))
        with pytest.raises(RuntimeError):
            (x * 2).backward()

    def test_grad_accumulates_across_backwards(self):
        x = Tensor(1.5, requires_grad=True)
        (x * 2).backward()
        (x * 3).backward()
        assert np.isclose(x.grad.data, 5.0)

    def test_tensor_reused_in_graph(self):
        # y = x*x + x -> dy/dx = 2x + 1
        x = Tensor(3.0, requires_grad=True)
        (x * x + x).backward()
        assert np.isclose(x.grad.data, 7.0)

    def test_diamond_graph(self):
        # z = (x+1)*(x+2); dz/dx = 2x+3
        x = Tensor(2.0, requires_grad=True)
        a = x + 1.0
        b = x + 2.0
        (a * b).backward()
        assert np.isclose(x.grad.data, 7.0)

    def test_deep_chain_no_recursion_error(self):
        x = Tensor(1.0, requires_grad=True)
        y = x
        for _ in range(3000):
            y = y + 1.0
        y.backward()
        assert np.isclose(x.grad.data, 1.0)

    def test_detach_cuts_graph(self):
        x = Tensor(2.0, requires_grad=True)
        y = (x * 3).detach()
        assert not y.requires_grad
        z = y * 2
        assert not z.requires_grad

    def test_zero_grad(self):
        x = Tensor(2.0, requires_grad=True)
        (x * 2).backward()
        x.zero_grad()
        assert x.grad is None


class TestGradMode:
    def test_no_grad_blocks_graph(self):
        x = Tensor(1.0, requires_grad=True)
        with no_grad():
            y = x * 2
        assert not y.requires_grad
        assert y._ctx is None

    def test_no_grad_nests_and_restores(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
            with enable_grad():
                assert is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_restores_on_exception(self):
        try:
            with no_grad():
                raise ValueError("boom")
        except ValueError:
            pass
        assert is_grad_enabled()


class TestCreateGraph:
    def test_grad_is_graph_tensor_with_create_graph(self):
        x = Tensor(2.0, requires_grad=True)
        (x ** 3).backward(create_graph=True)
        grad = x.grad
        assert grad._ctx is not None or grad.requires_grad
        # second derivative: d(3x^2)/dx = 6x = 12
        x.grad = None
        grad.backward()
        assert np.isclose(x.grad.data, 12.0)

    def test_grad_detached_without_create_graph(self):
        x = Tensor(2.0, requires_grad=True)
        (x ** 3).backward()
        assert x.grad._ctx is None
        assert not x.grad.requires_grad

    def test_third_derivative(self):
        x = Tensor(2.0, requires_grad=True)
        (x ** 4).backward(create_graph=True)  # 4x^3
        g1 = x.grad
        x.grad = None
        g1.backward(create_graph=True)  # 12x^2
        g2 = x.grad
        x.grad = None
        g2.backward()  # 24x
        assert np.isclose(x.grad.data, 48.0)
