"""Grad-mode switch: context semantics and thread isolation."""

import threading

from repro.tensor import (
    Tensor,
    enable_grad,
    is_grad_enabled,
    no_grad,
    set_grad_enabled,
)


def test_no_grad_blocks_graph_and_restores():
    x = Tensor([1.0], requires_grad=True)
    assert is_grad_enabled()
    with no_grad():
        assert not is_grad_enabled()
        assert not (x * 2.0).requires_grad
        with enable_grad():
            assert (x * 2.0).requires_grad
        assert not is_grad_enabled()
    assert is_grad_enabled()


def test_set_grad_enabled_returns_previous():
    assert set_grad_enabled(False) is True
    try:
        assert set_grad_enabled(True) is False
    finally:
        set_grad_enabled(True)


def test_grad_mode_is_thread_local():
    """Interleaved no_grad blocks across threads must not corrupt each
    other — the serving workers' regression: enter(A), enter(B),
    exit(A), exit(B) used to restore B's stale snapshot and leave the
    whole process stuck in no-grad mode."""
    a_entered = threading.Event()
    b_entered = threading.Event()
    a_exited = threading.Event()
    inside = {}

    def thread_a():
        with no_grad():
            a_entered.set()
            b_entered.wait(timeout=10)
        a_exited.set()

    def thread_b():
        a_entered.wait(timeout=10)
        with no_grad():
            b_entered.set()
            a_exited.wait(timeout=10)
            inside["b"] = is_grad_enabled()
        inside["b_after"] = is_grad_enabled()

    threads = [threading.Thread(target=thread_a), threading.Thread(target=thread_b)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=20)
    assert inside == {"b": False, "b_after": True}
    assert is_grad_enabled()  # the main thread never saw either toggle


def test_new_threads_start_with_grad_enabled():
    seen = {}
    with no_grad():
        thread = threading.Thread(target=lambda: seen.update(fresh=is_grad_enabled()))
        thread.start()
        thread.join(timeout=10)
    assert seen == {"fresh": True}
