"""Unit tests for elementwise primitives."""

import numpy as np

from repro.tensor import Tensor, check_gradient, where


class TestForwardValues:
    def test_exp_log(self, rng):
        a = rng.standard_normal((3, 3))
        assert np.allclose(Tensor(a).exp().data, np.exp(a))
        pos = np.abs(a) + 0.1
        assert np.allclose(Tensor(pos).log().data, np.log(pos))

    def test_tanh_sigmoid(self, rng):
        a = rng.standard_normal((3, 3)) * 3
        assert np.allclose(Tensor(a).tanh().data, np.tanh(a))
        assert np.allclose(Tensor(a).sigmoid().data, 1 / (1 + np.exp(-a)))

    def test_sigmoid_extreme_values_stable(self):
        a = np.array([-1000.0, 0.0, 1000.0])
        out = Tensor(a).sigmoid().data
        assert np.all(np.isfinite(out))
        assert np.allclose(out, [0.0, 0.5, 1.0])

    def test_relu(self, rng):
        a = rng.standard_normal((4, 4))
        assert np.allclose(Tensor(a).relu().data, np.maximum(a, 0))

    def test_abs(self, rng):
        a = rng.standard_normal(6)
        assert np.allclose(Tensor(a).abs().data, np.abs(a))

    def test_clip(self, rng):
        a = rng.standard_normal(10) * 3
        assert np.allclose(Tensor(a).clip(-1, 2).data, np.clip(a, -1, 2))

    def test_maximum_minimum(self, rng):
        a, b = rng.standard_normal(8), rng.standard_normal(8)
        assert np.allclose(Tensor(a).maximum(Tensor(b)).data, np.maximum(a, b))
        assert np.allclose(Tensor(a).minimum(Tensor(b)).data, np.minimum(a, b))

    def test_where(self, rng):
        a, b = rng.standard_normal(8), rng.standard_normal(8)
        cond = a > 0
        assert np.allclose(where(cond, Tensor(a), Tensor(b)).data, np.where(cond, a, b))

    def test_sqrt(self, rng):
        a = np.abs(rng.standard_normal(5)) + 0.1
        assert np.allclose(Tensor(a).sqrt().data, np.sqrt(a))

    def test_norm(self, rng):
        a = rng.standard_normal((3, 4))
        assert np.isclose(Tensor(a).norm().data, np.linalg.norm(a))


class TestGradients:
    def test_exp(self, rng):
        a = rng.standard_normal((3, 3))
        check_gradient(lambda x: x.exp().sum(), [a])

    def test_log(self, rng):
        a = np.abs(rng.standard_normal((3, 3))) + 0.5
        check_gradient(lambda x: x.log().sum(), [a])

    def test_tanh(self, rng):
        a = rng.standard_normal((3, 3))
        check_gradient(lambda x: (x.tanh() ** 2).sum(), [a])

    def test_sigmoid(self, rng):
        a = rng.standard_normal((3, 3))
        check_gradient(lambda x: (x.sigmoid() * 3).sum(), [a])

    def test_relu_away_from_kink(self, rng):
        a = rng.standard_normal((4, 4))
        a[np.abs(a) < 0.05] = 0.1  # keep finite differences valid
        check_gradient(lambda x: (x.relu() ** 2).sum(), [a])

    def test_abs_away_from_kink(self, rng):
        a = rng.standard_normal(8)
        a[np.abs(a) < 0.05] = 0.2
        check_gradient(lambda x: x.abs().sum(), [a])

    def test_clip(self, rng):
        a = rng.standard_normal(12) * 2
        a[np.abs(np.abs(a) - 1.0) < 0.05] = 0.0  # avoid clip boundaries
        check_gradient(lambda x: (x.clip(-1, 1) ** 2).sum(), [a])

    def test_maximum(self, rng):
        a, b = rng.standard_normal(10), rng.standard_normal(10)
        near = np.abs(a - b) < 0.05
        a[near] += 0.2  # avoid ties for finite differences
        check_gradient(lambda x, y: (x.maximum(y) ** 2).sum(), [a, b], index=0)
        check_gradient(lambda x, y: (x.maximum(y) ** 2).sum(), [a, b], index=1)

    def test_where(self, rng):
        a, b = rng.standard_normal(8), rng.standard_normal(8)
        cond = rng.random(8) > 0.5
        check_gradient(lambda x, y: (where(cond, x, y) ** 2).sum(), [a, b], index=0)
        check_gradient(lambda x, y: (where(cond, x, y) ** 2).sum(), [a, b], index=1)

    def test_norm_eps_at_zero(self):
        # norm(eps=...) must be differentiable at the origin.
        a = np.zeros(4)
        t = Tensor(a, requires_grad=True)
        t.norm(eps=1e-12).backward()
        assert np.all(np.isfinite(t.grad.data))


class TestTieBreaking:
    def test_maximum_splits_gradient_on_ties(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        b = Tensor(np.array([1.0, 0.0]), requires_grad=True)
        a.maximum(b).sum().backward()
        assert np.allclose(a.grad.data, [0.5, 1.0])
        assert np.allclose(b.grad.data, [0.5, 0.0])
