"""The precision policy: resolution, overrides, and engine threading."""

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.tensor import (
    DTYPE_ENV,
    Tensor,
    VERIFY_DTYPE,
    analytic_gradient,
    default_dtype,
    dtype_context,
    dtype_from_env,
    dtype_name,
    resolve_dtype,
    set_default_dtype,
)


@pytest.fixture(autouse=True)
def _float32_policy():
    """Pin the built-in default so the module also passes under an
    ambient ``REPRO_DTYPE=float64`` run (env handling is covered by the
    subprocess test below)."""
    previous = set_default_dtype("float32")
    yield
    set_default_dtype(previous)


class TestResolution:
    def test_default_is_float32(self):
        assert default_dtype() == np.float32

    @pytest.mark.parametrize(
        "alias,expected",
        [
            ("float32", np.float32),
            ("f32", np.float32),
            ("single", np.float32),
            ("Float64", np.float64),
            ("f64", np.float64),
            ("double", np.float64),
        ],
    )
    def test_aliases(self, alias, expected):
        assert resolve_dtype(alias) == expected

    def test_numpy_dtypes_accepted(self):
        assert resolve_dtype(np.float64) == np.float64
        assert resolve_dtype(np.dtype(np.float32)) == np.float32

    def test_none_resolves_to_policy(self):
        assert resolve_dtype(None) == default_dtype()
        with dtype_context("float64"):
            assert resolve_dtype(None) == np.float64

    @pytest.mark.parametrize("bad", ["float16", "int32", "bfloat16", ""])
    def test_unsupported_names_raise(self, bad):
        with pytest.raises(ValueError):
            resolve_dtype(bad)

    def test_unsupported_numpy_dtype_raises(self):
        with pytest.raises(ValueError):
            resolve_dtype(np.int64)

    def test_dtype_name(self):
        assert dtype_name("f64") == "float64"
        assert dtype_name(None) == default_dtype().name


class TestOverrides:
    def test_set_default_returns_previous(self):
        previous = set_default_dtype("float64")
        try:
            assert previous == np.float32
            assert default_dtype() == np.float64
        finally:
            set_default_dtype(previous)
        assert default_dtype() == np.float32

    def test_context_restores(self):
        with dtype_context("float64") as active:
            assert active == np.float64
            assert default_dtype() == np.float64
        assert default_dtype() == np.float32

    def test_context_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with dtype_context("float64"):
                raise RuntimeError("boom")
        assert default_dtype() == np.float32

    def test_context_nests(self):
        with dtype_context("float64"):
            with dtype_context("float32"):
                assert default_dtype() == np.float32
            assert default_dtype() == np.float64

    def test_env_var_resolution(self):
        assert dtype_from_env({}) == np.float32
        assert dtype_from_env({DTYPE_ENV: "float64"}) == np.float64
        with pytest.raises(ValueError):
            dtype_from_env({DTYPE_ENV: "float128"})

    def test_env_var_applies_at_import(self):
        code = (
            "from repro.tensor import default_dtype; "
            "print(default_dtype().name)"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            env={**os.environ, DTYPE_ENV: "float64"},
            capture_output=True,
            text=True,
            check=True,
        )
        assert out.stdout.strip() == "float64"


class TestEngineThreading:
    def test_tensor_follows_policy(self):
        assert Tensor([1.0, 2.0]).dtype == np.float32
        with dtype_context("float64"):
            assert Tensor([1.0, 2.0]).dtype == np.float64

    def test_constructors_follow_policy(self):
        for make in (
            lambda: Tensor.zeros(2, 2),
            lambda: Tensor.ones(2, 2),
            lambda: Tensor.full((2, 2), 3.0),
            lambda: Tensor.eye(2),
            lambda: Tensor.randn(2, 2, rng=np.random.default_rng(0)),
        ):
            assert make().dtype == np.float32
            with dtype_context("float64"):
                assert make().dtype == np.float64

    def test_randn_honors_policy(self):
        # Regression: rng.standard_normal always yields float64; randn
        # must cast to the engine dtype.
        t = Tensor.randn(4, rng=np.random.default_rng(0))
        assert t.dtype == default_dtype() == np.float32

    def test_randn_stream_shared_across_dtypes(self):
        t32 = Tensor.randn(8, rng=np.random.default_rng(7))
        with dtype_context("float64"):
            t64 = Tensor.randn(8, rng=np.random.default_rng(7))
        assert np.allclose(t32.data, t64.data, atol=1e-7)

    def test_explicit_dtype_wins_over_policy(self):
        assert Tensor.zeros(2, dtype="float64").dtype == np.float64
        assert Tensor([1.0], dtype=np.float64).dtype == np.float64

    def test_ops_stay_in_engine_dtype(self):
        a = Tensor.randn(3, 3, rng=np.random.default_rng(0), requires_grad=True)
        out = ((a @ a).relu().sum() * 2.0).sqrt()
        assert out.dtype == np.float32
        out.backward()
        assert a.grad.dtype == np.float32

    def test_mixed_precision_promotes(self):
        lo = Tensor.ones(3)
        hi = Tensor.ones(3, dtype="float64")
        assert (lo + hi).dtype == np.float64

    def test_grad_check_harness_stays_float64(self):
        # Verification-grade numerics force VERIFY_DTYPE regardless of
        # the ambient float32 policy.
        seen = []

        def fn(t):
            seen.append(t.dtype)
            return (t * t).sum()

        grad = analytic_gradient(fn, [np.array([1.0, 2.0], dtype=np.float32)])
        assert grad.dtype == VERIFY_DTYPE
        assert all(d == VERIFY_DTYPE for d in seen)
