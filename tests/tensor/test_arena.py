"""Step-scoped buffer arena: bit-identical results, real buffer reuse.

The arena (``repro.tensor.arena``) is opt-in and off by default.  When
active, forward/backward kernels write into step-scoped slots that
``arena_step()`` rewinds; buffers only ever feed ``out=`` arguments, so
activating it must change **no bit** of any computed value — only where
the bytes live.  These tests pin the bit-identity against arena-off
runs, the slot-reuse accounting, the byte cap, and ``arena_pause``.
"""

import numpy as np

from repro import nn, optim
from repro.core import make_trainer
from repro.data import gaussian_blobs
from repro.models import MLP
from repro.tensor import (
    BufferArena,
    Tensor,
    arena,
    arena_active,
    arena_pause,
    arena_step,
    arena_take,
    current_arena,
)


def train_weights(method, steps=6, use_arena=False, **kwargs):
    ds = gaussian_blobs(n=60, num_classes=3, spread=2.0, noise=0.3, seed=0)
    model = MLP(2, hidden=(12,), num_classes=3, rng=np.random.default_rng(0))
    opt = optim.SGD(model.parameters(), lr=0.1, momentum=0.9)
    trainer = make_trainer(method, model, nn.CrossEntropyLoss(), opt, **kwargs)
    x, y = ds[np.arange(30)]

    def run():
        for _ in range(steps):
            trainer.training_step(x, y)
            opt.step()

    if use_arena:
        with arena():
            run()
    else:
        run()
    return [p.data.copy() for p in model.parameters()]


class TestBitIdenticalTraining:
    def test_sgd(self):
        off = train_weights("sgd")
        on = train_weights("sgd", use_arena=True)
        for a, b in zip(off, on):
            assert a.tobytes() == b.tobytes()

    def test_hero(self):
        off = train_weights("hero", h=0.05, gamma=0.05)
        on = train_weights("hero", use_arena=True, h=0.05, gamma=0.05)
        for a, b in zip(off, on):
            assert a.tobytes() == b.tobytes()

    def test_grad_l1(self):
        off = train_weights("grad_l1", lambda_l1=0.01)
        on = train_weights("grad_l1", use_arena=True, lambda_l1=0.01)
        for a, b in zip(off, on):
            assert a.tobytes() == b.tobytes()


class TestSlotReuse:
    def test_steady_state_recycles(self):
        x = Tensor(np.random.default_rng(0).standard_normal((16, 8)), requires_grad=True)
        w = Tensor(np.random.default_rng(1).standard_normal((8, 4)), requires_grad=True)
        with arena() as buf:
            for _ in range(3):
                arena_step()
                ((x @ w).tanh().sum()).backward()
            warm_slots = buf.slot_count
            warm_bytes = buf.nbytes
            for _ in range(10):
                arena_step()
                ((x @ w).tanh().sum()).backward()
            assert buf.slot_count == warm_slots  # no new slots at steady state
            assert buf.nbytes == warm_bytes
            assert buf.hits > 0

    def test_rewind_reuses_first_slot(self):
        with arena() as buf:
            arena_step()
            first = arena_take((4, 4), np.float64)
            arena_step()
            again = arena_take((4, 4), np.float64)
            assert again is first
            assert buf.steps == 2

    def test_shape_mismatch_replaces_slot(self):
        with arena() as buf:
            arena_step()
            arena_take((4, 4), np.float64)
            arena_step()
            other = arena_take((3, 5), np.float64)
            assert other.shape == (3, 5)
            assert buf.misses >= 2  # cold alloc + replacement


class TestCapAndPause:
    def test_byte_cap_overflow_allocates_untracked(self):
        with arena(max_bytes=128) as buf:
            arena_step()
            big = arena_take((64, 64), np.float64)  # 32 KiB > cap
            assert big.shape == (64, 64)
            assert buf.nbytes <= 128

    def test_pause_deactivates(self):
        with arena():
            assert arena_active()
            with arena_pause():
                assert not arena_active()
                assert arena_take((2, 2), np.float64) is None
            assert arena_active()

    def test_inactive_helpers_are_noops(self):
        assert not arena_active()
        assert current_arena() is None
        assert arena_take((2, 2), np.float64) is None
        arena_step()  # no-op without an active arena

    def test_eval_inside_training_does_not_grow_arena(self):
        ds = gaussian_blobs(n=30, num_classes=3, spread=2.0, noise=0.3, seed=0)
        model = MLP(2, hidden=(8,), num_classes=3, rng=np.random.default_rng(0))
        opt = optim.SGD(model.parameters(), lr=0.1)
        trainer = make_trainer("sgd", model, nn.CrossEntropyLoss(), opt)
        x, y = ds[np.arange(30)]
        from repro.data import ArrayDataset, DataLoader

        loader = DataLoader(ArrayDataset(x, y), batch_size=30, shuffle=False)
        with arena() as buf:
            for _ in range(2):
                trainer.training_step(x, y)
                opt.step()
            slots = buf.slot_count
            trainer.evaluate(loader)  # runs under arena_pause
            assert buf.slot_count == slots


class TestBufferArenaUnit:
    def test_repr_mentions_stats(self):
        buf = BufferArena()
        buf.begin_step()
        buf.take((2, 2), np.float32)
        assert "slots" in repr(buf)

    def test_grad_values_survive_until_next_step(self):
        # A leaf's .grad computed under the arena stays valid until the
        # next arena_step() rewind — the optimizer reads it in between.
        x = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        with arena():
            arena_step()
            (x * x).sum().backward()
            grad_now = np.array(x.grad.data, copy=True)
            assert np.allclose(grad_now, 2 * x.data)
