"""Unit tests for reductions (sum/max/min/mean/var)."""

import numpy as np

from repro.tensor import Tensor, check_gradient


class TestForwardValues:
    def test_sum_all(self, rng):
        a = rng.standard_normal((3, 4, 5))
        assert np.isclose(Tensor(a).sum().data, a.sum())

    def test_sum_axis(self, rng):
        a = rng.standard_normal((3, 4, 5))
        for axis in (0, 1, 2, (0, 2), (1, 2)):
            assert np.allclose(Tensor(a).sum(axis=axis).data, a.sum(axis=axis))

    def test_sum_keepdims(self, rng):
        a = rng.standard_normal((3, 4))
        out = Tensor(a).sum(axis=1, keepdims=True)
        assert out.shape == (3, 1)
        assert np.allclose(out.data, a.sum(axis=1, keepdims=True))

    def test_sum_negative_axis(self, rng):
        a = rng.standard_normal((3, 4))
        assert np.allclose(Tensor(a).sum(axis=-1).data, a.sum(axis=-1))

    def test_max_min(self, rng):
        a = rng.standard_normal((3, 4, 5))
        assert np.allclose(Tensor(a).max(axis=1).data, a.max(axis=1))
        assert np.allclose(Tensor(a).min(axis=2).data, a.min(axis=2))
        assert np.isclose(Tensor(a).max().data, a.max())

    def test_mean_var(self, rng):
        a = rng.standard_normal((4, 6))
        assert np.allclose(Tensor(a).mean(axis=0).data, a.mean(axis=0))
        assert np.allclose(Tensor(a).var(axis=1).data, a.var(axis=1))
        assert np.isclose(Tensor(a).mean().data, a.mean())


class TestGradients:
    def test_sum(self, rng):
        a = rng.standard_normal((3, 4))
        check_gradient(lambda x: (x.sum(axis=0) ** 2).sum(), [a])
        check_gradient(lambda x: (x.sum(axis=1, keepdims=True) ** 2).sum(), [a])
        check_gradient(lambda x: x.sum() ** 2, [a])

    def test_max(self, rng):
        a = rng.standard_normal((4, 5))
        check_gradient(lambda x: (x.max(axis=1) ** 2).sum(), [a])
        check_gradient(lambda x: x.max() ** 2, [a])

    def test_min(self, rng):
        a = rng.standard_normal((4, 5))
        check_gradient(lambda x: (x.min(axis=0) ** 2).sum(), [a])

    def test_mean_var(self, rng):
        a = rng.standard_normal((4, 5))
        check_gradient(lambda x: (x.mean(axis=0) ** 2).sum(), [a])
        check_gradient(lambda x: x.var(axis=1).sum(), [a])
        check_gradient(lambda x: x.var(), [a])

    def test_max_tie_splits_gradient(self):
        a = Tensor(np.array([[2.0, 2.0, 1.0]]), requires_grad=True)
        a.max(axis=1).sum().backward()
        assert np.allclose(a.grad.data, [[0.5, 0.5, 0.0]])
