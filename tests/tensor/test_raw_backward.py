"""Raw-path backward (``create_graph=False``) vs graph-path parity.

``backward()`` without ``create_graph`` dispatches to per-op
``backward_raw`` rules working on plain ndarrays (no graph nodes, no
Tensor wrapping, in-place accumulation into owned buffers).  Every raw
rule must issue the same numpy calls in the same order as its
graph-valued twin, so first-order gradients are **bit-identical**
between the two routes — that contract is what lets trainers mix raw
and graph backwards freely (HERO does, per step).  Pinned here with
``tobytes()`` equality across ops, dtypes, precision policies,
broadcasting patterns, and accumulation orders.
"""

import numpy as np
import pytest

from repro.tensor import Tensor, dtype_context


def grads_via(fn, arrays, create_graph, seed_grad=None):
    leaves = [Tensor(a.copy(), requires_grad=True) for a in arrays]
    out = fn(*leaves)
    if seed_grad is None:
        out.backward(create_graph=create_graph)
    else:
        out.backward(Tensor(seed_grad.copy()), create_graph=create_graph)
    return [
        None if leaf.grad is None else np.array(leaf.grad.data, copy=True)
        for leaf in leaves
    ]


def assert_parity(fn, *arrays, seed_grad=None):
    raw = grads_via(fn, arrays, create_graph=False, seed_grad=seed_grad)
    graph = grads_via(fn, arrays, create_graph=True, seed_grad=seed_grad)
    for r, g in zip(raw, graph):
        assert (r is None) == (g is None)
        if r is not None:
            assert r.dtype == g.dtype, (r.dtype, g.dtype)
            assert r.shape == g.shape
            assert r.tobytes() == g.tobytes()


def rand(shape, dtype, seed):
    return np.random.default_rng(seed).standard_normal(shape).astype(dtype)


DTYPES = [np.float32, np.float64]


class TestElementwiseOps:
    @pytest.mark.parametrize("dtype", DTYPES)
    @pytest.mark.parametrize(
        "fn",
        [
            lambda x: (x.exp()).sum(),
            lambda x: ((x * x) + 1.0).log().sum(),
            lambda x: x.tanh().sum(),
            lambda x: x.sigmoid().sum(),
            lambda x: x.relu().sum(),
            lambda x: x.abs().sum(),
            lambda x: x.clip(-0.5, 0.5).sum(),
            lambda x: (x ** 3).sum(),
            lambda x: (x ** 2).sum(),
            lambda x: (x ** 1).sum(),
            lambda x: (x ** 0.5).abs().sum(),
            lambda x: (-x).sum(),
            lambda x: (x ** -1.0).sum(),
        ],
    )
    def test_unary(self, dtype, fn):
        assert_parity(fn, rand((5, 7), dtype, 0) + 2.5)

    @pytest.mark.parametrize("dtype", DTYPES)
    @pytest.mark.parametrize(
        "fn",
        [
            lambda a, b: (a + b).sum(),
            lambda a, b: (a - b).sum(),
            lambda a, b: (a * b).sum(),
            lambda a, b: (a / (b.abs() + 1.0)).sum(),
            lambda a, b: a.maximum(b).sum(),
            lambda a, b: a.minimum(b).sum(),
        ],
    )
    def test_binary_same_shape(self, dtype, fn):
        assert_parity(fn, rand((4, 6), dtype, 1), rand((4, 6), dtype, 2))

    @pytest.mark.parametrize("dtype", DTYPES)
    def test_broadcasting(self, dtype):
        a = rand((3, 1, 5), dtype, 3)
        b = rand((4, 5), dtype, 4)
        assert_parity(lambda x, y: (x * y).sum(), a, b)
        assert_parity(lambda x, y: (x + y).sum(), a, b)
        assert_parity(lambda x, y: x.maximum(y).sum(), a, b)
        # scalar-array broadcast
        assert_parity(lambda x, y: (x * y).sum(), rand((), dtype, 5), b)


class TestReduceShapeOps:
    @pytest.mark.parametrize("dtype", DTYPES)
    @pytest.mark.parametrize(
        "fn",
        [
            lambda x: x.sum(),
            lambda x: x.sum(axis=0).sum(),
            lambda x: x.sum(axis=(0, 2), keepdims=True).sum(),
            lambda x: x.max().sum(),
            lambda x: x.max(axis=1).sum(),
            lambda x: x.reshape(6, 10).sum(axis=1).sum(),
            lambda x: x.transpose((2, 0, 1)).sum(),
            lambda x: x.expand_to((7, 3, 4, 5)).sum(),
            lambda x: x.pad(((1, 1), (0, 0), (2, 0))).sum(),
            lambda x: x[1:, ::2, :3].sum(),
            lambda x: x.take_flat(np.array([[0, 5], [3, 3]])).sum(),
        ],
    )
    def test_structural(self, dtype, fn):
        assert_parity(fn, rand((3, 4, 5), dtype, 6))

    @pytest.mark.parametrize("dtype", DTYPES)
    def test_max_with_ties(self, dtype):
        # Repeated maxima split the gradient by a 1/k tie mask — a
        # non-dyadic value whose policy-dtype cast the raw rule must
        # replicate exactly.
        x = np.array([[1.0, 3.0, 3.0, 3.0], [2.0, 2.0, 0.0, 1.0]], dtype=dtype)
        assert_parity(lambda t: t.max(axis=1).sum(), x)
        assert_parity(lambda t: t.max().sum(), x)

    @pytest.mark.parametrize("dtype", DTYPES)
    def test_concat_and_where(self, dtype):
        from repro.tensor import concat, where

        a = rand((2, 3), dtype, 7)
        b = rand((4, 3), dtype, 8)
        assert_parity(lambda x, y: concat([x, y], axis=0).sum(), a, b)
        cond = rand((2, 3), dtype, 9) > 0
        assert_parity(
            lambda x, y: where(cond, x, y * 2.0).sum(),
            a,
            rand((2, 3), dtype, 10),
        )


class TestMatMul:
    @pytest.mark.parametrize("dtype", DTYPES)
    def test_2d(self, dtype):
        assert_parity(
            lambda a, b: (a @ b).sum(), rand((4, 6), dtype, 11), rand((6, 3), dtype, 12)
        )

    @pytest.mark.parametrize("dtype", DTYPES)
    def test_batched_broadcast(self, dtype):
        a = rand((5, 2, 4, 6), dtype, 13)
        b = rand((2, 6, 3), dtype, 14)
        assert_parity(lambda x, y: (x @ y).sum(), a, b)


class TestAccumulationAliasing:
    """Graphs that exercise the raw accumulator's ownership rules."""

    @pytest.mark.parametrize("dtype", DTYPES)
    @pytest.mark.parametrize(
        "fn",
        [
            # Add hands the same upstream array to both parents.
            lambda x: (x + x).sum(),
            # Pow p=1 passes the gradient array through unchanged.
            lambda x: ((x ** 1) * (x ** 1)).sum(),
            # Diamond: two paths accumulate into one node.
            lambda x: ((x * 2.0) + (x * 3.0)).sum(),
            lambda x: ((x.exp()) * (x.exp())).sum(),
            # Leaf feeding many consumers.
            lambda x: (x * x * x + x.tanh() + x.relu()).sum(),
            # Sum's raw adjoint is a read-only broadcast view; the
            # accumulator must never write into it.
            lambda x: (x.sum(axis=0).expand_to((4, 5)) + x).sum(),
        ],
    )
    def test_aliased_paths(self, dtype, fn):
        assert_parity(fn, rand((4, 5), dtype, 15))

    @pytest.mark.parametrize("dtype", DTYPES)
    def test_repeated_backward_accumulates(self, dtype):
        def run(create_graph):
            x = Tensor(rand((3, 4), dtype, 16), requires_grad=True)
            for _ in range(3):
                ((x * x).sum()).backward(create_graph=create_graph)
            return np.array(x.grad.data, copy=True)

        assert run(False).tobytes() == run(True).tobytes()

    def test_inplace_leaf_accumulation_reuses_buffer(self):
        # Multi-path graphs leave the leaf owning its grad buffer; a
        # second raw backward must accumulate in place, not reallocate
        # (the satellite fix this file pins).
        x = Tensor(rand((3, 4), np.float32, 17), requires_grad=True)
        ((x * 2.0) + (x * 3.0)).sum().backward()
        buf = x.grad.data
        ((x * 2.0) + (x * 3.0)).sum().backward()
        assert x.grad.data is buf  # same ndarray, updated in place

    @pytest.mark.parametrize("first", ["raw", "graph"])
    def test_mixed_route_accumulation(self, first):
        def run(order):
            x = Tensor(rand((3, 4), np.float64, 18), requires_grad=True)
            for route in order:
                (x * x).sum().backward(create_graph=(route == "graph"))
            return np.array(x.grad.data, copy=True)

        a = run([first, "raw" if first == "graph" else "graph"])
        b = run(["graph", "graph"])
        assert a.tobytes() == b.tobytes()


class TestPolicyInteraction:
    def test_f64_graph_under_f32_policy(self):
        # Scalar wrapping (Tensor(c)) casts to the *policy* dtype; raw
        # rules must replicate that cast even when the graph runs in a
        # wider dtype than the policy.
        with dtype_context("float32"):
            x64 = rand((4, 5), np.float64, 19)
            assert_parity(lambda x: (x ** 3).sum(), x64)
            assert_parity(lambda x: x.tanh().sum(), x64)
            assert_parity(lambda x: x.sigmoid().sum(), x64)
            assert_parity(lambda x: x.max(axis=0).sum(), np.repeat(x64[:1], 4, axis=0))

    def test_f32_graph_under_f64_policy(self):
        with dtype_context("float64"):
            x32 = rand((4, 5), np.float32, 20)
            assert_parity(lambda x: (x ** 3).sum(), x32)
            assert_parity(lambda x: x.tanh().sum(), x32)


class TestSeededBackward:
    @pytest.mark.parametrize("dtype", DTYPES)
    def test_nonscalar_output_with_seed(self, dtype):
        seed = rand((4, 3), dtype, 21)
        assert_parity(
            lambda a, b: a @ b,
            rand((4, 6), dtype, 22),
            rand((6, 3), dtype, 23),
            seed_grad=seed,
        )

    def test_model_loss_parity(self):
        # End-to-end: a small MLP + cross-entropy, the same graph every
        # trainer builds per step.
        from repro import nn
        from repro.models import MLP

        def run(create_graph):
            model = MLP(6, hidden=(8,), num_classes=3, rng=np.random.default_rng(0))
            x = rand((10, 6), np.float32, 24)
            y = np.random.default_rng(1).integers(0, 3, size=10)
            loss = nn.CrossEntropyLoss()(model(Tensor(x)), y)
            loss.backward(create_graph=create_graph)
            return [np.array(p.grad.data, copy=True) for p in model.parameters()]

        for r, g in zip(run(False), run(True)):
            assert r.tobytes() == g.tobytes()
