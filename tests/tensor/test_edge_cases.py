"""Edge-case behaviour of the engine: odd shapes, boundaries, dtypes."""

import numpy as np
import pytest

from repro.tensor import Tensor, check_gradient, concat, default_dtype, dtype_context, where


class TestScalarsAndEmptyish:
    def test_zero_d_tensor_arithmetic(self):
        a = Tensor(3.0)
        assert (a * 2 + 1).item() == 7.0
        assert a.shape == ()

    def test_zero_d_backward(self):
        a = Tensor(2.0, requires_grad=True)
        (a * a).backward()
        assert a.grad.data == 4.0

    def test_single_element_reductions(self):
        a = Tensor(np.array([[5.0]]), requires_grad=True)
        a.mean().backward()
        assert a.grad.data[0, 0] == 1.0

    def test_size_one_axes_broadcast_both_ways(self, rng):
        a = rng.standard_normal((1, 4))
        b = rng.standard_normal((3, 1))
        out = Tensor(a) + Tensor(b)
        assert out.shape == (3, 4)
        check_gradient(lambda x, y: ((x + y) ** 2).sum(), [a, b], index=0)
        check_gradient(lambda x, y: ((x + y) ** 2).sum(), [a, b], index=1)


class TestBoundaryValues:
    def test_clip_gradient_at_exact_boundary_included(self):
        # values exactly at the clip boundary pass gradient (mask uses >=/<=)
        a = Tensor(np.array([-1.0, 0.0, 1.0]), requires_grad=True)
        a.clip(-1.0, 1.0).sum().backward()
        assert np.allclose(a.grad.data, [1.0, 1.0, 1.0])

    def test_pow_zero_base_positive_exponent(self):
        a = Tensor(np.array([0.0, 2.0]), requires_grad=True)
        (a ** 2).sum().backward()
        assert np.allclose(a.grad.data, [0.0, 4.0])

    def test_log_near_zero_is_large_but_finite(self):
        # 1e-300 needs double precision — pin the tensor to float64
        # explicitly (the policy default is float32).
        a = Tensor(np.array([1e-300]), dtype=np.float64)
        assert np.isfinite(a.log().data[0])

    def test_relu_at_exact_zero_has_zero_grad(self):
        a = Tensor(np.array([0.0]), requires_grad=True)
        a.relu().sum().backward()
        assert a.grad.data[0] == 0.0  # (x > 0) convention

    def test_abs_at_zero_has_zero_grad(self):
        a = Tensor(np.array([0.0]), requires_grad=True)
        a.abs().sum().backward()
        assert a.grad.data[0] == 0.0  # sign(0) = 0 convention


class TestShapeEdgeCases:
    def test_concat_negative_axis(self, rng):
        a, b = rng.standard_normal((2, 3)), rng.standard_normal((2, 2))
        out = concat([Tensor(a), Tensor(b)], axis=-1)
        assert out.shape == (2, 5)
        check_gradient(lambda x, y: (concat([x, y], axis=-1) ** 2).sum(), [a, b], index=1)

    def test_transpose_high_dim(self, rng):
        a = rng.standard_normal((2, 3, 4, 5, 6))
        axes = (4, 2, 0, 3, 1)
        out = Tensor(a).transpose(axes)
        assert out.shape == tuple(a.shape[i] for i in axes)
        check_gradient(lambda x: (x.transpose(axes) ** 2).sum(), [a])

    def test_reshape_minus_one_various(self, rng):
        a = Tensor(rng.standard_normal((4, 6)))
        assert a.reshape(2, -1).shape == (2, 12)
        assert a.reshape(-1, 3).shape == (8, 3)

    def test_slice_with_step(self, rng):
        a = rng.standard_normal((8, 8))
        check_gradient(lambda x: (x[::3, 1::2] ** 2).sum(), [a])

    def test_expand_adds_no_leading_dims(self, rng):
        # expand_to requires matching ndim (numpy broadcast_to allows
        # prepending; our grad path supports it via unbroadcast)
        a = rng.standard_normal((3,))
        out = Tensor(a).expand_to((2, 3))
        assert out.shape == (2, 3)
        check_gradient(lambda x: (x.expand_to((2, 3)) ** 2).sum(), [a])


class TestWhereEdgeCases:
    def test_all_true_and_all_false(self, rng):
        a = rng.standard_normal(5)
        b = rng.standard_normal(5)
        assert np.allclose(where(np.ones(5, bool), Tensor(a), Tensor(b)).data, a)
        assert np.allclose(where(np.zeros(5, bool), Tensor(a), Tensor(b)).data, b)

    def test_where_blocks_gradient_to_unselected(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        b = Tensor(np.array([3.0, 4.0]), requires_grad=True)
        where(np.array([True, False]), a, b).sum().backward()
        assert np.allclose(a.grad.data, [1.0, 0.0])
        assert np.allclose(b.grad.data, [0.0, 1.0])


class TestDtypeHandling:
    def test_int_input_promoted(self):
        t = Tensor([1, 2, 3])
        assert t.dtype == default_dtype()

    def test_int_input_promoted_under_float64_policy(self):
        with dtype_context(np.float64):
            assert Tensor([1, 2, 3]).dtype == np.float64

    def test_bool_mask_multiplication(self, rng):
        a = Tensor(rng.standard_normal(4), requires_grad=True)
        mask = Tensor((a.data > 0).astype(a.dtype))
        (a * mask).sum().backward()
        assert np.allclose(a.grad.data, mask.data)


class TestGraphIsolation:
    def test_backward_twice_on_same_graph(self):
        # calling backward twice accumulates (no buffers are freed)
        x = Tensor(2.0, requires_grad=True)
        y = x ** 2
        y.backward()
        y.backward()
        assert np.isclose(x.grad.data, 8.0)

    def test_independent_graphs_do_not_interact(self):
        x = Tensor(1.0, requires_grad=True)
        y1 = x * 2
        y2 = x * 3
        y1.backward()
        assert np.isclose(x.grad.data, 2.0)
        y2.backward()
        assert np.isclose(x.grad.data, 5.0)
