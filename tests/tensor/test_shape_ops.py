"""Unit tests for shape ops: reshape/transpose/pad/slice/concat/gather."""

import numpy as np

from repro.tensor import Tensor, check_gradient, concat, stack


class TestForwardValues:
    def test_reshape(self, rng):
        a = rng.standard_normal((3, 4))
        assert Tensor(a).reshape(2, 6).shape == (2, 6)
        assert Tensor(a).reshape(-1).shape == (12,)
        assert Tensor(a).reshape((4, 3)).shape == (4, 3)

    def test_flatten(self, rng):
        a = rng.standard_normal((2, 3, 4))
        assert Tensor(a).flatten(start_dim=1).shape == (2, 12)
        assert Tensor(a).flatten().shape == (24,)

    def test_transpose(self, rng):
        a = rng.standard_normal((2, 3, 4))
        assert np.allclose(Tensor(a).transpose((2, 0, 1)).data, a.transpose(2, 0, 1))
        assert np.allclose(Tensor(a).transpose().data, a.T)
        assert np.allclose(Tensor(a).swapaxes(0, 2).data, a.swapaxes(0, 2))

    def test_pad(self, rng):
        a = rng.standard_normal((2, 3))
        out = Tensor(a).pad(((1, 2), (0, 1)))
        assert out.shape == (5, 4)
        assert np.allclose(out.data, np.pad(a, ((1, 2), (0, 1))))

    def test_pad_value(self, rng):
        a = rng.standard_normal((2, 2))
        out = Tensor(a).pad(((1, 1), (1, 1)), value=-np.inf)
        assert out.data[0, 0] == -np.inf

    def test_slice(self, rng):
        a = rng.standard_normal((4, 5))
        assert np.allclose(Tensor(a)[1:3, ::2].data, a[1:3, ::2])
        assert np.allclose(Tensor(a)[0].data, a[0])

    def test_concat_stack(self, rng):
        a, b = rng.standard_normal((2, 3)), rng.standard_normal((4, 3))
        out = concat([Tensor(a), Tensor(b)], axis=0)
        assert np.allclose(out.data, np.concatenate([a, b], axis=0))
        c = rng.standard_normal((2, 3))
        out = stack([Tensor(a), Tensor(c)], axis=0)
        assert np.allclose(out.data, np.stack([a, c], axis=0))

    def test_expand(self, rng):
        a = rng.standard_normal((1, 3))
        assert np.allclose(
            Tensor(a).expand_to((4, 3)).data, np.broadcast_to(a, (4, 3))
        )

    def test_take_flat(self, rng):
        a = rng.standard_normal((3, 4))
        idx = np.array([[0, 5], [11, 5]])
        assert np.allclose(Tensor(a).take_flat(idx).data, a.reshape(-1)[idx])


class TestGradients:
    def test_reshape_transpose(self, rng):
        a = rng.standard_normal((2, 3, 4))
        check_gradient(lambda x: (x.reshape(6, 4).transpose() ** 2).sum(), [a])

    def test_pad_slice(self, rng):
        a = rng.standard_normal((3, 4))
        check_gradient(lambda x: (x.pad(((1, 1), (2, 0))) ** 2).sum(), [a])
        check_gradient(lambda x: (x[1:, ::2] ** 3).sum(), [a])

    def test_concat(self, rng):
        a, b = rng.standard_normal((2, 3)), rng.standard_normal((2, 3))
        check_gradient(lambda x, y: (concat([x, y], axis=1) ** 2).sum(), [a, b], index=0)
        check_gradient(lambda x, y: (concat([x, y], axis=1) ** 2).sum(), [a, b], index=1)

    def test_expand(self, rng):
        a = rng.standard_normal((1, 4))
        check_gradient(lambda x: (x.expand_to((3, 4)) ** 2).sum(), [a])

    def test_take_flat_duplicate_indices_accumulate(self):
        a = Tensor(np.arange(4.0), requires_grad=True)
        idx = np.array([1, 1, 3])
        a.take_flat(idx).sum().backward()
        assert np.allclose(a.grad.data, [0.0, 2.0, 0.0, 1.0])

    def test_take_flat_grad(self, rng):
        a = rng.standard_normal((3, 4))
        idx = np.array([[0, 1, 2], [5, 5, 11]])
        check_gradient(lambda x: (x.take_flat(idx) ** 2).sum(), [a])

    def test_slice_integer_key(self, rng):
        a = rng.standard_normal((4, 3))
        check_gradient(lambda x: (x[2] ** 2).sum(), [a])
