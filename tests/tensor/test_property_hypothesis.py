"""Property-based tests (hypothesis) for engine invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays, array_shapes

from repro.tensor import Tensor, softmax, logsumexp

FINITE = st.floats(
    min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False
)


def small_arrays(max_dims=3, max_side=5):
    return arrays(
        dtype=np.float64,
        shape=array_shapes(min_dims=1, max_dims=max_dims, max_side=max_side),
        elements=FINITE,
    )


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_add_commutative(a):
    x = Tensor(a)
    assert np.allclose((x + x * 2).data, (x * 2 + x).data)


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_sum_gradient_is_ones(a):
    x = Tensor(a, requires_grad=True)
    x.sum().backward()
    assert np.allclose(x.grad.data, np.ones_like(a))


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_linearity_of_backward(a):
    # grad of (2f + 3f) equals 5 * grad f for f = sum(x^2)
    x1 = Tensor(a, requires_grad=True)
    ((x1 * x1).sum() * 5.0).backward()
    x2 = Tensor(a, requires_grad=True)
    f2 = (x2 * x2).sum()
    (f2 * 2.0 + f2 * 3.0).backward()
    assert np.allclose(x1.grad.data, x2.grad.data, atol=1e-10)

@settings(max_examples=40, deadline=None)
@given(small_arrays(max_dims=2))
def test_softmax_simplex(a):
    if a.ndim == 1:
        a = a[None, :]
    s = softmax(Tensor(a), axis=1).data
    assert np.all(s >= 0)
    assert np.allclose(s.sum(axis=1), 1.0)


@settings(max_examples=40, deadline=None)
@given(small_arrays(max_dims=2))
def test_logsumexp_bounds(a):
    # max(x) <= logsumexp(x) <= max(x) + log(n)
    if a.ndim == 1:
        a = a[None, :]
    lse = logsumexp(Tensor(a), axis=1).data
    mx = a.max(axis=1)
    # Tolerance follows the engine precision (float32 by default).
    tol = 1e-9 if lse.dtype == np.float64 else 1e-6
    assert np.all(lse >= mx - tol)
    assert np.all(lse <= mx + np.log(a.shape[1]) + tol)


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_relu_idempotent(a):
    x = Tensor(a)
    once = x.relu().data
    twice = x.relu().relu().data
    assert np.allclose(once, twice)


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_reshape_roundtrip_preserves_grad(a):
    x = Tensor(a, requires_grad=True)
    (x.reshape(-1).reshape(a.shape) * 2.0).sum().backward()
    assert np.allclose(x.grad.data, 2.0 * np.ones_like(a))


@settings(max_examples=40, deadline=None)
@given(small_arrays(max_dims=2), st.integers(min_value=0, max_value=1))
def test_transpose_involution(a, flip):
    if a.ndim == 1:
        a = a[None, :]
    x = Tensor(a, requires_grad=True)
    y = x.transpose().transpose() if flip else x
    (y * y).sum().backward()
    assert np.allclose(x.grad.data, 2 * a)


@settings(max_examples=30, deadline=None)
@given(small_arrays())
def test_norm_nonnegative_and_scales(a):
    x = Tensor(a)
    n1 = float(x.norm().data)
    n2 = float((x * 2.0).norm().data)
    assert n1 >= 0
    assert np.isclose(n2, 2 * n1, rtol=1e-9, atol=1e-12)
