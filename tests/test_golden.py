"""Golden-hash regression pins for on-disk contracts.

Two artifacts live on disk across process (and machine) boundaries
and therefore must never drift silently:

* the **dataset-generator v2 stream** — cached dataset entries are
  keyed by generator version, so changing the stream without bumping
  ``repro.data.pipeline.GENERATOR_VERSION`` would serve wrong arrays
  to every warm cache;
* the **sweep-queue journal entry schema** — workers on different
  machines (possibly running different checkouts) coordinate through
  these JSON records, so changing the shape without bumping
  ``repro.experiments.scheduler.JOURNAL_VERSION`` would let a new
  worker misread an old queue.

If a hash here moves, the fix is to bump the corresponding version
constant (and migrate/regenerate), not to update the hash in place.
"""

import hashlib
import json
from dataclasses import replace

import numpy as np

from repro.data import generate_dataset
from repro.data.synthetic import PROFILES
from repro.experiments import RunRecord, TrainConfig
from repro.experiments.reporting import record_to_dict
from repro.experiments.scheduler import ENTRY_FIELDS, JOURNAL_VERSION, new_entry


def canonical_sha256(payload):
    return hashlib.sha256(json.dumps(payload, sort_keys=True).encode()).hexdigest()


class TestDatasetGeneratorV2:
    def test_golden_hashes_pin_v2_stream(self):
        """The sharded stream is part of the on-disk cache contract.

        If these hashes move, bump the generator version in
        ``repro.data.pipeline`` — cached entries would otherwise be
        silently wrong.
        """
        spec = replace(PROFILES["cifar10_like"], train_size=600, test_size=64)
        train, _ = generate_dataset(spec, shard_size=256)
        digest = hashlib.sha256(np.ascontiguousarray(train.inputs).tobytes()).hexdigest()
        assert train.inputs.dtype == np.float32
        assert digest == "df3ca4b85768e3205746e4d92bb1b5ddccc25825555ae6f242bd09bfc9e597da"
        labels_digest = hashlib.sha256(train.targets.tobytes()).hexdigest()
        assert labels_digest == (
            "38f5423cfa8da6e82726d1d040d80be559abdde051d06c2f53965680c499bd02"
        )


class TestJournalEntrySchema:
    def test_schema_version_and_fields(self):
        # v2: the ``quarantined`` terminal state joined the lifecycle
        # (same field set; the version gates state-machine semantics)
        assert JOURNAL_VERSION == 2
        assert ENTRY_FIELDS == (
            "version",
            "key",
            "config",
            "force",
            "status",
            "attempts",
            "worker",
            "leased_at",
            "lease_expires",
            "enqueued_at",
            "started_at",
            "finished_at",
            "record",
        )

    def test_golden_hash_pins_fresh_entry(self):
        """A freshly enqueued entry serializes to exactly this shape.

        ``new_entry`` is a pure function of (config, force, now), so
        the canonical JSON of a fixed config is a stable fingerprint
        of the whole schema: field set, field order-independent
        values, defaults.  If this hash moves, bump
        ``JOURNAL_VERSION`` — live queues written by older builds
        would otherwise be misread.
        """
        config = TrainConfig(dtype="float32")
        entry = new_entry(config, force=False, now=0.0)
        assert tuple(entry) == ENTRY_FIELDS
        assert entry["key"] == config.cache_key() == "d1f3ec2ebdbe1e36"
        assert canonical_sha256(entry) == (
            "76c1817c62d55b9d350a87edaef1cb115647951796dd70459ebc98d50f710d74"
        )

    def test_record_payload_schema_stable(self):
        """The journal's embedded run-record keeps its key set."""
        record = RunRecord(
            key="d1f3ec2ebdbe1e36",
            config=TrainConfig(dtype="float32"),
            status="ok",
            from_cache=False,
            seconds=1.5,
            train_acc=0.5,
            test_acc=0.25,
        )
        payload = record_to_dict(record, include_config=False)
        assert sorted(payload) == [
            "error",
            "from_cache",
            "key",
            "pid",
            "seconds",
            "status",
            "test_acc",
            "train_acc",
        ]
