"""CLI entry point for the experiment harness."""

import io

import pytest

from repro.experiments.cli import ARTIFACTS, build_parser, run_artifact


class TestParser:
    def test_artifact_choices(self):
        parser = build_parser()
        args = parser.parse_args(["table1", "--profile", "smoke"])
        assert args.artifact == "table1"
        assert args.profile == "smoke"

    def test_all_choice(self):
        args = build_parser().parse_args(["all"])
        assert args.artifact == "all"

    def test_unknown_artifact_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table9"])

    def test_every_paper_artifact_registered(self):
        for name in ("table1", "table2", "table3", "fig1", "fig2", "fig3"):
            assert name in ARTIFACTS


class TestRunArtifact:
    def test_table3_smoke(self, tmp_path):
        out = io.StringIO()
        json_path = str(tmp_path / "t3.json")
        violations = run_artifact(
            "table3", "smoke", seed=0, json_path=json_path, out=out
        )
        text = out.getvalue()
        assert "Table 3" in text
        assert isinstance(violations, int)
        import json

        with open(json_path) as fh:
            payload = json.load(fh)
        assert "rows" in payload

    @pytest.mark.slow
    def test_fig3_smoke(self):
        out = io.StringIO()
        run_artifact("fig3", "smoke", seed=0, out=out)
        assert "flat area" in out.getvalue()
