"""CLI entry point for the experiment harness."""

import io

import pytest

from repro.experiments.cli import (
    ARTIFACTS,
    build_parser,
    run_artifact,
    run_datagen_command,
)


class TestParser:
    def test_artifact_choices(self):
        parser = build_parser()
        args = parser.parse_args(["table1", "--profile", "smoke"])
        assert args.artifact == "table1"
        assert args.profile == "smoke"

    def test_all_choice(self):
        args = build_parser().parse_args(["all"])
        assert args.artifact == "all"

    def test_unknown_artifact_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table9"])

    def test_every_paper_artifact_registered(self):
        for name in ("table1", "table2", "table3", "fig1", "fig2", "fig3"):
            assert name in ARTIFACTS

    def test_datagen_stream_flags(self):
        args = build_parser().parse_args(["datagen", "--stream", "--max-resident-mb", "256"])
        assert args.stream is True and args.max_resident_mb == 256.0
        assert build_parser().parse_args(["datagen", "--no-stream"]).stream is False
        assert build_parser().parse_args(["datagen"]).stream is None  # auto


class TestDatagenCommand:
    def _args(self, extra=()):
        return build_parser().parse_args(
            [
                "datagen",
                "--datasets",
                "cifar10_like",
                "--train-size",
                "600",
                "--test-size",
                "64",
                "--shard-size",
                "256",
                *extra,
            ]
        )

    def test_reports_per_shard_then_hits(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.delenv("REPRO_DATASET_CACHE", raising=False)
        out = io.StringIO()
        assert run_datagen_command(self._args(), out=out) == 0
        text = out.getvalue()
        assert "train: 3 shard(s) — 3 generated" in text
        assert "test: 1 shard(s) — 1 generated" in text

        again = io.StringIO()
        assert run_datagen_command(self._args(), out=again) == 0
        text = again.getvalue()
        assert "(cached)" in text
        assert "train: 3 shard(s) — 3 cached" in text
        assert "test: 1 shard(s) — 1 cached" in text

    def test_interrupted_before_commit_reports_resumed(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.delenv("REPRO_DATASET_CACHE", raising=False)
        from repro.data import resolve_spec, stream_dataset
        from repro.data.pipeline import dataset_cache_dir

        spec = resolve_spec("cifar10_like", train_size=600, test_size=64)
        seen = []

        def die_before_commit(split, index, state):
            seen.append(index)
            if len(seen) == 4:  # every shard journaled done, commit pending
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            stream_dataset(
                spec,
                dataset_cache_dir(str(tmp_path)),
                shard_size=256,
                progress=die_before_commit,
            )
        out = io.StringIO()
        assert run_datagen_command(self._args(), out=out) == 0
        text = out.getvalue()
        assert "resumed in" in text  # committed this run, zero generation
        assert "train: 3 shard(s) — 3 cached" in text

    def test_no_stream_reports_whole_entry_shards(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.delenv("REPRO_DATASET_CACHE", raising=False)
        out = io.StringIO()
        assert run_datagen_command(self._args(["--no-stream"]), out=out) == 0
        assert "train: 3 shard(s) — 3 generated" in out.getvalue()

    def test_json_report_carries_split_stats(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.delenv("REPRO_DATASET_CACHE", raising=False)
        args = self._args(["--json", str(tmp_path / "report.json")])
        assert run_datagen_command(args, out=io.StringIO()) == 0
        import json

        with open(tmp_path / "report.json") as fh:
            payload = json.load(fh)
        (dataset,) = payload["datasets"]
        assert dataset["streamed"] is True
        by_split = {s["split"]: s for s in dataset["splits"]}
        assert by_split["train"]["shards"] == 3
        assert by_split["train"]["generated"] == [0, 1, 2]


class TestRunArtifact:
    def test_table3_smoke(self, tmp_path):
        out = io.StringIO()
        json_path = str(tmp_path / "t3.json")
        violations = run_artifact(
            "table3", "smoke", seed=0, json_path=json_path, out=out
        )
        text = out.getvalue()
        assert "Table 3" in text
        assert isinstance(violations, int)
        import json

        with open(json_path) as fh:
            payload = json.load(fh)
        assert "rows" in payload

    @pytest.mark.slow
    def test_fig3_smoke(self):
        out = io.StringIO()
        run_artifact("fig3", "smoke", seed=0, out=out)
        assert "flat area" in out.getvalue()
