"""Seed replication utilities."""

import numpy as np
import pytest

from repro.experiments import compare_methods_with_seeds, make_config, run_with_seeds


def base_config(method="sgd"):
    return make_config(
        "ResNet20-fast", "cifar10_like", method, profile="smoke", epochs=2
    )


class TestRunWithSeeds:
    def test_stats_structure(self, tmp_path):
        stats = run_with_seeds(base_config(), seeds=(0, 1), cache_dir=str(tmp_path))
        assert stats["seeds"] == [0, 1]
        assert len(stats["results"]) == 2
        assert 0.0 <= stats["test_acc_mean"] <= 1.0
        assert stats["test_acc_std"] >= 0.0

    def test_seeds_produce_different_runs(self, tmp_path):
        stats = run_with_seeds(base_config(), seeds=(0, 1), cache_dir=str(tmp_path))
        r0, r1 = stats["results"]
        s0, s1 = r0.model.state_dict(), r1.model.state_dict()
        assert any(not np.allclose(s0[k], s1[k]) for k in s0)

    def test_single_seed_zero_std(self, tmp_path):
        stats = run_with_seeds(base_config(), seeds=(3,), cache_dir=str(tmp_path))
        assert stats["test_acc_std"] == 0.0

    def test_mean_matches_results(self, tmp_path):
        stats = run_with_seeds(base_config(), seeds=(0, 1), cache_dir=str(tmp_path))
        manual = np.mean([r.test_acc for r in stats["results"]])
        assert np.isclose(stats["test_acc_mean"], manual)


class TestCompareMethods:
    @pytest.mark.slow
    def test_structure_and_flags(self, tmp_path):
        stats = compare_methods_with_seeds(
            base_config,
            methods=("hero", "sgd"),
            seeds=(0, 1),
            cache_dir=str(tmp_path),
        )
        assert set(stats) == {"hero", "sgd"}
        assert "gap_vs_reference" in stats["hero"]
        assert isinstance(stats["hero"]["significant"], bool)
        # reference method carries no gap fields
        assert "gap_vs_reference" not in stats["sgd"]
