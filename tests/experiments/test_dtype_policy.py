"""Precision policy at the experiments layer: cache keys, runner, memo."""

import numpy as np
import pytest

from repro.experiments import TrainConfig, load_experiment_data, run_training
from repro.experiments.runner import clear_dataset_cache
from repro.experiments.sweep import run_sweep
from repro.tensor import dtype_context, dtype_name, set_default_dtype


@pytest.fixture(autouse=True)
def _float32_policy():
    previous = set_default_dtype("float32")
    clear_dataset_cache()
    yield
    set_default_dtype(previous)
    clear_dataset_cache()


def smoke_config(**overrides):
    return TrainConfig(
        dataset="cifar10_like",
        model="mlp",
        method="sgd",
        epochs=2,
        train_size=64,
        test_size=32,
        **overrides,
    )


class TestCacheKeys:
    def test_dtype_separates_cache_keys(self):
        base = smoke_config()
        assert (
            base.with_overrides(dtype="float32").cache_key()
            != base.with_overrides(dtype="float64").cache_key()
        )

    def test_none_dtype_resolves_against_policy(self):
        base = smoke_config()
        assert base.cache_key() == base.with_overrides(dtype="float32").cache_key()
        with dtype_context("float64"):
            assert base.cache_key() == base.with_overrides(dtype="float64").cache_key()

    def test_resolved_dtype(self):
        assert smoke_config().resolved_dtype() == "float32"
        assert smoke_config(dtype="float64").resolved_dtype() == "float64"
        with dtype_context("float64"):
            assert smoke_config().resolved_dtype() == "float64"


class TestRunnerDtype:
    def test_run_executes_in_config_dtype(self):
        for name, expected in (("float32", np.float32), ("float64", np.float64)):
            result = run_training(smoke_config(dtype=name), cache_dir=None)
            for param in result.model.parameters():
                assert param.dtype == expected

    def test_float32_float64_parity_small_mlp(self):
        """The headline guarantee: dropping to float32 changes speed,
        not the science — train/test accuracy stay close on a small MLP."""
        r32 = run_training(smoke_config(dtype="float32"), cache_dir=None)
        r64 = run_training(smoke_config(dtype="float64"), cache_dir=None)
        assert abs(r32.train_acc - r64.train_acc) <= 0.1
        assert abs(r32.test_acc - r64.test_acc) <= 0.15
        losses32 = r32.history["train_loss"]
        losses64 = r64.history["train_loss"]
        assert np.allclose(losses32, losses64, rtol=0.05, atol=0.05)

    def test_cache_roundtrip_per_dtype(self, tmp_path):
        cache = str(tmp_path / "runs")
        first = run_training(smoke_config(dtype="float64"), cache_dir=cache)
        again = run_training(smoke_config(dtype="float64"), cache_dir=cache)
        assert not first.from_cache and again.from_cache
        # The float32 twin does not collide with the float64 entry.
        other = run_training(smoke_config(dtype="float32"), cache_dir=cache)
        assert not other.from_cache


class TestDatasetMemo:
    def test_repeat_loads_share_one_generation(self):
        c = smoke_config()
        train1, test1, _ = load_experiment_data(c)
        train2, test2, _ = load_experiment_data(c)
        assert train1 is train2 and test1 is test2

    def test_memo_is_dtype_keyed(self):
        c = smoke_config()
        train32, _, _ = load_experiment_data(c)
        with dtype_context("float64"):
            train64, _, _ = load_experiment_data(c)
        assert train32 is not train64
        assert train32.inputs.dtype == np.float32
        assert train64.inputs.dtype == np.float64

    def test_explicit_config_dtype_wins_over_ambient_policy(self):
        # Regression: a driver evaluating a dtype='float64' run from a
        # float32 process must get the same arrays the run trained on.
        train64, test64, _ = load_experiment_data(smoke_config(dtype="float64"))
        assert train64.inputs.dtype == np.float64
        assert test64.inputs.dtype == np.float64
        # ...and it shares the memo entry with an in-context load.
        with dtype_context("float64"):
            train_ctx, _, _ = load_experiment_data(smoke_config())
        assert train_ctx is train64

    def test_label_noise_stays_outside_memo(self):
        clean = smoke_config()
        noisy = smoke_config(label_noise=0.5)
        train_clean, _, _ = load_experiment_data(clean)
        train_noisy, _, _ = load_experiment_data(noisy)
        assert train_noisy is not train_clean
        assert train_noisy.inputs is train_clean.inputs  # inputs shared
        assert not np.array_equal(train_noisy.targets, train_clean.targets)

    def test_clear_dataset_cache(self):
        c = smoke_config()
        before, _, _ = load_experiment_data(c)
        clear_dataset_cache()
        after, _, _ = load_experiment_data(c)
        assert before is not after


class TestSweepDtype:
    def test_sweep_pins_ambient_dtype_onto_configs(self, tmp_path):
        report = run_sweep(
            [smoke_config()], workers=1, cache_dir=str(tmp_path / "runs")
        )
        assert report.records[0].config.dtype == dtype_name(None) == "float32"

    def test_sweep_respects_explicit_dtype(self, tmp_path):
        report = run_sweep(
            [smoke_config(dtype="float64")],
            workers=1,
            cache_dir=str(tmp_path / "runs"),
        )
        assert report.records[0].config.dtype == "float64"
        assert report.records[0].ok
