"""Experiment config and runner: determinism, caching, label noise."""

import numpy as np
import pytest

from repro.experiments import (
    METHOD_HYPERS,
    PAPER_MODELS,
    TrainConfig,
    evaluate_accuracy,
    load_experiment_data,
    make_config,
    run_training,
)


class TestConfig:
    def test_cache_key_stable(self):
        c1 = TrainConfig(dataset="cifar10_like", model="resnet8", method="hero")
        c2 = TrainConfig(dataset="cifar10_like", model="resnet8", method="hero")
        assert c1.cache_key() == c2.cache_key()

    def test_cache_key_sensitive_to_fields(self):
        base = TrainConfig()
        assert base.cache_key() != base.with_overrides(gamma=0.123).cache_key()
        assert base.cache_key() != base.with_overrides(seed=99).cache_key()

    def test_make_config_applies_hypers(self):
        config = make_config("MobileNetV2", "cifar10_like", "hero", profile="fast")
        assert config.model == "mobilenetv2"
        assert config.h == METHOD_HYPERS["mobilenetv2"]["h"]
        assert config.gamma == METHOD_HYPERS["mobilenetv2"]["gamma"]

    def test_make_config_profile_sizes(self):
        config = make_config("ResNet20-fast", "cifar10_like", "sgd", profile="smoke")
        assert config.epochs == 3
        assert config.train_size == 96

    def test_make_config_overrides(self):
        config = make_config(
            "ResNet20-fast", "cifar10_like", "sgd", profile="smoke", label_noise=0.4
        )
        assert config.label_noise == 0.4

    def test_unknown_model_or_profile(self):
        with pytest.raises(KeyError):
            make_config("AlexNet", "cifar10_like", "sgd")
        with pytest.raises(KeyError):
            make_config("ResNet20", "cifar10_like", "sgd", profile="turbo")

    def test_paper_models_mapping_complete(self):
        for name in ("ResNet20", "MobileNetV2", "VGG19BN", "ResNet18"):
            assert name in PAPER_MODELS


class TestDataLoading:
    def test_label_noise_applied(self):
        clean = make_config("ResNet20-fast", "cifar10_like", "sgd", profile="smoke")
        noisy = clean.with_overrides(label_noise=0.5)
        train_c, _t, _s = load_experiment_data(clean)
        train_n, _t, _s = load_experiment_data(noisy)
        assert not np.all(train_c.targets == train_n.targets)
        assert np.allclose(train_c.inputs, train_n.inputs)

    def test_data_deterministic_per_config(self):
        config = make_config("ResNet20-fast", "cifar10_like", "sgd", profile="smoke")
        t1, _e1, _s1 = load_experiment_data(config)
        t2, _e2, _s2 = load_experiment_data(config)
        assert np.allclose(t1.inputs, t2.inputs)


class TestRunner:
    def test_run_deterministic(self, tmp_path):
        config = make_config("ResNet20-fast", "cifar10_like", "sgd", profile="smoke", epochs=2)
        r1 = run_training(config, cache_dir=None)
        r2 = run_training(config, cache_dir=None)
        assert r1.test_acc == r2.test_acc
        s1, s2 = r1.model.state_dict(), r2.model.state_dict()
        for key in s1:
            assert np.allclose(s1[key], s2[key])

    def test_cache_roundtrip(self, tmp_path):
        config = make_config("ResNet20-fast", "cifar10_like", "sgd", profile="smoke", epochs=2)
        fresh = run_training(config, cache_dir=str(tmp_path))
        cached = run_training(config, cache_dir=str(tmp_path))
        assert not fresh.from_cache
        assert cached.from_cache
        assert np.isclose(cached.test_acc, fresh.test_acc)
        s1, s2 = fresh.model.state_dict(), cached.model.state_dict()
        for key in s1:
            assert np.allclose(s1[key], s2[key]), key
        # history survives the roundtrip
        assert len(cached.history) == len(fresh.history)

    def test_force_retrains(self, tmp_path):
        config = make_config("ResNet20-fast", "cifar10_like", "sgd", profile="smoke", epochs=1)
        run_training(config, cache_dir=str(tmp_path))
        forced = run_training(config, cache_dir=str(tmp_path), force=True)
        assert not forced.from_cache

    def test_generalization_gap_property(self):
        config = make_config("ResNet20-fast", "cifar10_like", "sgd", profile="smoke", epochs=1)
        result = run_training(config, cache_dir=None)
        assert np.isclose(result.generalization_gap, result.train_acc - result.test_acc)

    def test_evaluate_accuracy_range(self):
        config = make_config("ResNet20-fast", "cifar10_like", "sgd", profile="smoke", epochs=1)
        result = run_training(config, cache_dir=None)
        _train, test, _spec = load_experiment_data(config)
        acc = evaluate_accuracy(result.model, test)
        assert 0.0 <= acc <= 1.0
