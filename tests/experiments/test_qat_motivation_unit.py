"""Unit tests for the QAT-motivation check logic (no training)."""

from repro.experiments import check_qat_motivation, format_qat_motivation


def make_result(qat_curve, hero_curve, qat_bits=4, bits=(3, 4, 8)):
    def curve(vals, full):
        return {"accuracy": list(vals), "full_precision": full}

    return {
        "curves": {
            "hero": curve(hero_curve[0], hero_curve[1]),
            "sgd": curve([0.3] * len(bits), 0.3),
            f"qat@{qat_bits}bit": curve(qat_curve[0], qat_curve[1]),
        },
        "bits": list(bits),
        "qat_bits": qat_bits,
        "model": "m",
        "dataset": "d",
        "profile": "unit",
    }


class TestCheck:
    def test_ideal_shape_passes(self):
        # QAT strong at 4 bits, weak elsewhere; HERO uniformly strong.
        result = make_result(
            qat_curve=([0.2, 0.6, 0.5], 0.55),
            hero_curve=([0.5, 0.55, 0.6], 0.6),
        )
        assert check_qat_motivation(result) == []

    def test_qat_weak_at_target_flagged(self):
        result = make_result(
            qat_curve=([0.2, 0.3, 0.5], 0.6),  # 4-bit far below full
            hero_curve=([0.5, 0.55, 0.6], 0.6),
        )
        violations = check_qat_motivation(result)
        assert any("target precision" in v for v in violations)

    def test_hero_never_winning_flagged(self):
        result = make_result(
            qat_curve=([0.9, 0.9, 0.9], 0.9),
            hero_curve=([0.1, 0.1, 0.1], 0.1),
        )
        violations = check_qat_motivation(result)
        assert any("off-target" in v for v in violations)

    def test_format_lists_all_curves(self):
        result = make_result(
            qat_curve=([0.2, 0.6, 0.5], 0.55),
            hero_curve=([0.5, 0.55, 0.6], 0.6),
        )
        text = format_qat_motivation(result)
        for name in ("hero", "sgd", "qat@4bit"):
            assert name in text
