"""Unit tests for the artifact check functions (no training)."""

from repro.experiments import (
    check_fig1,
    check_fig1_schemes,
    check_fig2,
    check_fig3,
    check_table1,
    check_table2,
    check_table3,
)


class TestTable1Check:
    def test_all_hero_wins_clean(self):
        result = {"rows": [
            {"dataset": "d", "model": "m", "hero": 0.9, "grad_l1": 0.8, "sgd": 0.7},
        ]}
        assert check_table1(result) == []

    def test_flags_losing_row(self):
        result = {"rows": [
            {"dataset": "d", "model": "m", "hero": 0.6, "grad_l1": 0.8, "sgd": 0.7},
        ]}
        violations = check_table1(result)
        assert len(violations) == 1
        assert "grad_l1" in violations[0]


class TestTable2Check:
    def test_flags_only_bad_cells(self):
        result = {"panels": {"M": [
            {"noise_ratio": 0.2, "hero": 0.9, "grad_l1": 0.5, "sgd": 0.5},
            {"noise_ratio": 0.8, "hero": 0.3, "grad_l1": 0.5, "sgd": 0.2},
        ]}}
        violations = check_table2(result)
        assert len(violations) == 1
        assert "80%" in violations[0]


class TestTable3Check:
    def test_clean_when_hero_dominates(self):
        result = {"rows": [
            {"method": "hero", "full": 0.9, "q4": 0.88, "q6": 0.89, "q8": 0.9},
            {"method": "first_order", "full": 0.88, "q4": 0.83, "q6": 0.86, "q8": 0.87},
            {"method": "sgd", "full": 0.85, "q4": 0.7, "q6": 0.8, "q8": 0.84},
        ], "bits": [4, 6, 8]}
        assert check_table3(result) == []

    def test_flags_hero_bigger_drop(self):
        result = {"rows": [
            {"method": "hero", "full": 0.9, "q4": 0.5, "q6": 0.89, "q8": 0.9},
            {"method": "first_order", "full": 0.88, "q4": 0.85, "q6": 0.86, "q8": 0.87},
            {"method": "sgd", "full": 0.85, "q4": 0.84, "q6": 0.8, "q8": 0.84},
        ], "bits": [4, 6, 8]}
        violations = check_table3(result)
        assert violations  # drop 0.4 vs sgd 0.01


class TestFig1Check:
    def test_only_low_bits_inspected(self):
        result = {
            "bits": [3, 8],
            "panels": {"a": {"dataset": "d", "model": "m", "curves": {
                "hero": {"accuracy": [0.5, 0.2]},
                "grad_l1": {"accuracy": [0.4, 0.9]},   # beats hero at 8 bits only
                "sgd": {"accuracy": [0.3, 0.9]},
            }}},
        }
        assert check_fig1(result, low_bits=4) == []

    def test_low_bit_loss_flagged(self):
        result = {
            "bits": [3],
            "panels": {"a": {"dataset": "d", "model": "m", "curves": {
                "hero": {"accuracy": [0.2]},
                "grad_l1": {"accuracy": [0.4]},
                "sgd": {"accuracy": [0.1]},
            }}},
        }
        violations = check_fig1(result)
        assert len(violations) == 1


class TestFig2Check:
    def test_hero_lowest_clean(self):
        result = {"gap_window": 2, "series": {
            "hero": {"hessian_norm": [5.0, 1.0], "generalization_gap": [0.2, 0.1]},
            "grad_l1": {"hessian_norm": [5.0, 2.0], "generalization_gap": [0.3, 0.2]},
            "sgd": {"hessian_norm": [5.0, 3.0], "generalization_gap": [0.4, 0.3]},
        }}
        assert check_fig2(result) == []

    def test_missing_series_flagged(self):
        result = {"gap_window": 2, "series": {
            "hero": {"hessian_norm": [None], "generalization_gap": []},
            "grad_l1": {"hessian_norm": [1.0], "generalization_gap": [0.1]},
            "sgd": {"hessian_norm": [2.0], "generalization_gap": [0.2]},
        }}
        assert any("missing" in v for v in check_fig2(result))


class TestFig3AndSchemes:
    def test_fig3_flags_smaller_flat_area(self):
        result = {"surfaces": {
            "hero": {"flat_area": 0.1},
            "sgd": {"flat_area": 0.3},
        }}
        assert check_fig3(result)

    def test_schemes_check(self):
        result = {"rows": [
            {"scheme": "s1", "hero": 0.5, "grad_l1": 0.4, "sgd": 0.3},
            {"scheme": "s2", "hero": 0.3, "grad_l1": 0.4, "sgd": 0.3},
        ]}
        violations = check_fig1_schemes(result)
        assert len(violations) == 1
        assert "s2" in violations[0]
