"""Aggregated results report."""

import os

from repro.experiments import collect_results_markdown, write_results_markdown


def test_collects_present_artifacts(tmp_path):
    (tmp_path / "table1.txt").write_text("Table 1 content here\n")
    (tmp_path / "fig3.txt").write_text("contours\n")
    report = collect_results_markdown(str(tmp_path))
    assert "Table 1 content here" in report
    assert "contours" in report
    assert "Artifacts not present" in report  # others are missing


def test_write_roundtrip(tmp_path):
    (tmp_path / "table2.txt").write_text("noisy labels\n")
    out = write_results_markdown(str(tmp_path), str(tmp_path / "report.md"))
    assert os.path.exists(out)
    assert "noisy labels" in open(out).read()


def test_empty_dir_still_renders(tmp_path):
    report = collect_results_markdown(str(tmp_path))
    assert report.startswith("# Measured results")
