"""Sweep engine: parallel/serial equivalence, cache safety, crashes.

The multiprocessing tests use the ``fork`` start method where a
test-local function must cross the process boundary (picklable by
inheritance); the engine's own default stays ``spawn``.
"""

import glob
import io
import json
import os
from multiprocessing import get_context

import numpy as np
import pytest

from repro.experiments import (
    make_grid,
    resolve_workers,
    run_sweep,
    run_table3,
    run_training,
    format_sweep,
    warm_cache,
)
from repro.experiments.cli import build_parser, run_sweep_command
from repro.experiments.runner import _cache_complete, default_cache_dir
from repro.io import file_lock


class TestWorkersResolution:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers(None) == 1

    def test_env_var_wins_over_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert resolve_workers(None) == 3

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert resolve_workers(2) == 2

    def test_invalid_env_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.raises(ValueError):
            resolve_workers(None)

    def test_clamped_to_one(self):
        assert resolve_workers(0) == 1
        assert resolve_workers(-4) == 1


class TestCacheDirResolution:
    def test_env_var_respected(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
        assert default_cache_dir() == str(tmp_path / "elsewhere")

    def test_default_is_absolute(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        path = default_cache_dir()
        assert os.path.isabs(path)
        assert path.endswith(os.path.join(".cache", "runs"))


class TestSerialParallelEquivalence:
    def test_bit_identical_results(self, tmp_path, tiny_grid):
        configs = tiny_grid(4)
        serial_dir, parallel_dir = str(tmp_path / "serial"), str(tmp_path / "parallel")

        serial = run_sweep(configs, workers=1, cache_dir=serial_dir)
        parallel = run_sweep(configs, workers=2, cache_dir=parallel_dir, mp_context="fork")

        assert [r.key for r in serial.records] == [r.key for r in parallel.records]
        assert all(r.ok and not r.from_cache for r in serial.records + parallel.records)
        for s, p in zip(serial.records, parallel.records):
            assert s.test_acc == p.test_acc
            assert s.train_acc == p.train_acc
        # the trained weights themselves are bit-identical
        for record in serial.records:
            with np.load(os.path.join(serial_dir, record.key, "state.npz")) as a, np.load(
                os.path.join(parallel_dir, record.key, "state.npz")
            ) as b:
                assert set(a.files) == set(b.files)
                for name in a.files:
                    assert np.array_equal(a[name], b[name]), (record.key, name)

    def test_spawn_context_also_works(self, tmp_path, tiny_grid):
        configs = tiny_grid(2)
        report = run_sweep(configs, workers=2, cache_dir=str(tmp_path), mp_context="spawn")
        assert report.n_ok == 2 and report.n_errors == 0


class TestCacheAccounting:
    def test_second_sweep_is_all_hits(self, tmp_path, tiny_grid):
        configs = tiny_grid(4)
        first = run_sweep(configs, workers=2, cache_dir=str(tmp_path), mp_context="fork")
        second = run_sweep(configs, workers=2, cache_dir=str(tmp_path), mp_context="fork")
        assert first.cache_hits == 0
        assert second.cache_hits == 4
        assert second.cache_hit_rate == 1.0
        assert [r.test_acc for r in first.records] == [r.test_acc for r in second.records]

    def test_duplicate_configs_deduplicated(self, tmp_path, tiny_grid):
        configs = tiny_grid(2)
        report = run_sweep(configs + configs, workers=1, cache_dir=str(tmp_path))
        assert len(report.records) == 2
        assert report.deduped == 2

    def test_report_dict_and_format(self, tmp_path, tiny_grid):
        report = run_sweep(tiny_grid(2), workers=1, cache_dir=str(tmp_path))
        payload = report.to_dict()
        assert payload["n_ok"] == 2 and len(payload["runs"]) == 2
        json.dumps(payload)  # JSON-safe
        text = format_sweep(report)
        assert "2 runs" in text and "0 error(s)" in text


class TestWorkerCrash:
    def test_crash_contained_and_cache_uncorrupted(self, tmp_path, tiny_grid):
        good = tiny_grid(2)
        bad = good[0].with_overrides(dataset="no_such_dataset")
        report = run_sweep(
            good + [bad], workers=2, cache_dir=str(tmp_path), mp_context="fork"
        )
        assert report.n_ok == 2
        assert report.n_errors == 1
        (failed,) = [r for r in report.records if not r.ok]
        assert failed.key == bad.cache_key()
        assert "no_such_dataset" in failed.error
        # healthy entries are complete, the failed key left nothing behind,
        # and no temp dirs leaked
        for record in report.records:
            assert _cache_complete(os.path.join(str(tmp_path), record.key)) == record.ok
        assert glob.glob(os.path.join(str(tmp_path), "*.tmp.*")) == []
        # the cache still serves the healthy runs
        again = run_sweep(good, workers=1, cache_dir=str(tmp_path))
        assert again.cache_hits == 2

    def test_partial_entry_is_retrained(self, tmp_path, tiny_grid):
        config = tiny_grid(1)[0]
        partial = tmp_path / config.cache_key()
        partial.mkdir()
        (partial / "state.npz").write_bytes(b"torn write")
        result = run_training(config, cache_dir=str(tmp_path))
        assert not result.from_cache
        assert _cache_complete(str(partial))
        # the replacement entry is fully readable
        reloaded = run_training(config, cache_dir=str(tmp_path))
        assert reloaded.from_cache
        assert reloaded.test_acc == result.test_acc


def _locked_increment(path, lock_path, repeats):
    for _ in range(repeats):
        with file_lock(lock_path):
            value = int(open(path).read())
            open(path, "w").write(str(value + 1))


class TestFileLock:
    def test_mutual_exclusion_across_processes(self, tmp_path):
        counter, lock = str(tmp_path / "counter"), str(tmp_path / "counter.lock")
        open(counter, "w").write("0")
        ctx = get_context("fork")
        repeats = 50
        procs = [
            ctx.Process(target=_locked_increment, args=(counter, lock, repeats))
            for _ in range(4)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join()
            assert p.exitcode == 0
        assert int(open(counter).read()) == 4 * repeats

    def test_parallel_without_cache_rejected(self, tiny_grid):
        with pytest.raises(ValueError):
            run_sweep(tiny_grid(2), workers=2, cache_dir=None)


class TestWarmCache:
    def test_serial_is_noop(self, tmp_path, tiny_grid):
        assert warm_cache(tiny_grid(2), workers=1, cache_dir=str(tmp_path)) is None
        assert os.listdir(tmp_path) == []

    def test_parallel_populates_cache(self, tmp_path, tiny_grid):
        configs = tiny_grid(2)
        report = warm_cache(configs, workers=2, cache_dir=str(tmp_path))
        assert report is not None and report.n_ok == 2
        for config in configs:
            assert _cache_complete(os.path.join(str(tmp_path), config.cache_key()))


class TestDatasetWarmup:
    def test_parallel_sweep_warms_dataset_cache(self, tmp_path, tiny_grid):
        from repro.data import dataset_cache_dir

        configs = tiny_grid(4)
        first = run_sweep(configs, workers=2, cache_dir=str(tmp_path), mp_context="fork")
        dataset_dir = dataset_cache_dir(str(tmp_path))
        assert first.datasets_warmed == 1  # one unique (profile, sizes, dtype)
        assert first.dataset_cache_hits == 0
        entries = [n for n in os.listdir(dataset_dir) if not n.endswith(".lock")]
        assert len(entries) == 1
        # a repeat sweep performs zero dataset-generation work
        second = run_sweep(configs, workers=2, cache_dir=str(tmp_path), mp_context="fork")
        assert second.datasets_warmed == 0
        assert second.dataset_cache_hits == 1
        assert second.cache_hits == 4

    def test_warm_datasets_skips_broken_profiles(self, tmp_path, tiny_grid):
        from repro.experiments.sweep import warm_datasets

        good = tiny_grid(1)
        bad = [good[0].with_overrides(dataset="no_such_dataset")]
        warmed, hits = warm_datasets(good + bad, str(tmp_path))
        assert (warmed, hits) == (1, 0)

    def test_serial_sweep_skips_warm_pass(self, tmp_path, tiny_grid):
        report = run_sweep(tiny_grid(2), workers=1, cache_dir=str(tmp_path))
        assert report.datasets_warmed == 0
        assert report.dataset_cache_hits == 0


class TestDriversParallel:
    @pytest.mark.slow
    def test_table3_parallel_matches_serial(self, tmp_path):
        serial = run_table3(profile="smoke", cache_dir=str(tmp_path / "a"), workers=1)
        parallel = run_table3(profile="smoke", cache_dir=str(tmp_path / "b"), workers=2)
        assert serial["rows"] == parallel["rows"]

    @pytest.mark.slow
    def test_fig2_parallel_retrains_stale_cache_entries(self, tmp_path):
        # Another experiment caches the same configs without callbacks…
        from repro.experiments import fig2_configs, run_fig2

        for config in fig2_configs(profile="smoke"):
            run_training(config, cache_dir=str(tmp_path))
        # …fig2's parallel pass must still end up with ||Hz|| columns.
        result = run_fig2(profile="smoke", cache_dir=str(tmp_path), workers=2)
        for method, data in result["series"].items():
            assert any(v is not None for v in data["hessian_norm"]), method


class TestSweepCLI:
    def test_sweep_verb_parses(self):
        args = build_parser().parse_args(
            ["sweep", "--profile", "smoke", "--workers", "2", "--seeds", "0,1"]
        )
        assert args.artifact == "sweep"
        assert args.workers == 2
        assert args.seeds == "0,1"

    def test_sweep_command_runs_grid(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        args = build_parser().parse_args(
            [
                "sweep",
                "--profile",
                "smoke",
                "--workers",
                "2",
                "--models",
                "ResNet20-fast",
                "--methods",
                "sgd",
                "--seeds",
                "0,1,2,3",
                "--json",
                str(tmp_path / "report.json"),
            ]
        )
        out = io.StringIO()
        errors = run_sweep_command(args, out=out)
        assert errors == 0
        assert "4 runs on 2 worker(s)" in out.getvalue()
        payload = json.load(open(tmp_path / "report.json"))
        assert payload["n_ok"] == 4

    def test_sweep_spec_file(self, tmp_path, monkeypatch, tiny_grid):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        spec = [config.to_dict() for config in tiny_grid(2)]
        spec_path = tmp_path / "grid.json"
        spec_path.write_text(json.dumps(spec))
        args = build_parser().parse_args(
            ["sweep", "--spec", str(spec_path), "--workers", "1"]
        )
        out = io.StringIO()
        assert run_sweep_command(args, out=out) == 0
        assert "2 runs" in out.getvalue()

    def test_grid_helper_cross_product(self):
        configs = make_grid(
            ["ResNet20-fast"], ["cifar10_like"], ["sgd", "hero"], seeds=(0, 1), profile="smoke"
        )
        assert len(configs) == 4
        assert len({c.cache_key() for c in configs}) == 4
