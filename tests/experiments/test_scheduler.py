"""Queue scheduler: parity suite + fault injection.

The scheduler ships with an equivalence proof in the spirit of the
paper's two provably-isomorphic presentations: the queue backend (1,
2, 4 workers), the PR 1 pool and the serial loop must all produce
identical records and bit-identical cache contents for any grid.  The
property tests randomize small grids over that claim; the fault
injection tests kill workers mid-lease and assert the steal/retry
machinery converges to the same answer.

Multiprocessing tests use the ``fork`` start method (picklable by
inheritance); the engine's own default stays ``spawn``.
"""

import io
import json
import os
import signal
import time
from multiprocessing import get_context

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.experiments import (
    TaskQueue,
    queue_name_for,
    run_sweep,
    worker_loop,
)
from repro.experiments.cli import build_parser, resolve_queue_root, run_worker_command
from repro.experiments.scheduler import (
    DONE,
    ERROR,
    JOURNAL_VERSION,
    LEASED,
    PENDING,
    QUARANTINED,
    _worker_main,
    worker_identity,
)
from repro.tensor import dtype_name


def pinned(configs):
    """Configs with the ambient dtype pinned, as run_sweep dispatches them.

    Tests that enqueue manually must pin the same way or their journal
    keys would not match a later ``run_sweep`` over the same grid.
    """
    return [
        config if config.dtype else config.with_overrides(dtype=dtype_name(None))
        for config in configs
    ]


def assert_same_cache_entries(dir_a, dir_b, records):
    """The trained weights for every record are bit-identical across caches."""
    for record in records:
        path_a = os.path.join(dir_a, record.key, "state.npz")
        path_b = os.path.join(dir_b, record.key, "state.npz")
        with np.load(path_a) as a, np.load(path_b) as b:
            assert set(a.files) == set(b.files)
            for name in a.files:
                assert np.array_equal(a[name], b[name]), (record.key, name)


def assert_same_records(report_a, report_b):
    assert [r.key for r in report_a.records] == [r.key for r in report_b.records]
    for a, b in zip(report_a.records, report_b.records):
        assert a.status == b.status
        assert a.train_acc == b.train_acc
        assert a.test_acc == b.test_acc


class TestQueueLifecycle:
    def test_enqueue_claim_resolve_roundtrip(self, tmp_run_cache, tiny_grid):
        configs = pinned(tiny_grid(2))
        queue = TaskQueue.create(tmp_run_cache, "q")
        enqueued, resumed = queue.enqueue(configs)
        assert (enqueued, resumed) == (2, 0)
        assert queue.keys() == [c.cache_key() for c in configs]
        assert not queue.drained()

        worker = worker_identity()
        entry = queue.claim(worker)
        assert entry["status"] == LEASED
        assert entry["key"] == configs[0].cache_key()  # manifest order
        assert entry["attempts"] == 1
        assert entry["worker"] == worker

        from repro.experiments import execute_record

        record = execute_record(configs[0], cache_dir=tmp_run_cache)
        assert queue.resolve(entry["key"], worker, record)
        stored = queue.journal.read(entry["key"])
        assert stored["status"] == DONE
        assert stored["record"]["test_acc"] == record.test_acc
        # the stored record round-trips into an equal RunRecord
        rebuilt = queue.record_for(stored)
        assert rebuilt.key == record.key and rebuilt.test_acc == record.test_acc
        assert rebuilt.config == configs[0]

    def test_enqueue_is_idempotent_and_resume_counts_done(self, tmp_run_cache, tiny_grid):
        configs = pinned(tiny_grid(2))
        queue = TaskQueue.create(tmp_run_cache, "q")
        queue.enqueue(configs)
        # pending entries are kept, not re-enqueued
        assert queue.enqueue(configs) == (0, 0)
        worker = worker_identity()
        entry = queue.claim(worker)
        from repro.experiments import execute_record

        queue.resolve(entry["key"], worker, execute_record(configs[0], cache_dir=tmp_run_cache))
        assert queue.enqueue(configs) == (0, 1)

    def test_force_resets_done_entries(self, tmp_run_cache, tiny_grid):
        configs = pinned(tiny_grid(1))
        queue = TaskQueue.create(tmp_run_cache, "q")
        queue.enqueue(configs)
        worker = worker_identity()
        entry = queue.claim(worker)
        from repro.experiments import execute_record

        queue.resolve(entry["key"], worker, execute_record(configs[0], cache_dir=tmp_run_cache))
        assert queue.enqueue(configs, force=True) == (1, 0)
        fresh = queue.journal.read(configs[0].cache_key())
        assert fresh["status"] == PENDING
        assert fresh["force"] is True
        assert fresh["attempts"] == 0

    def test_journal_version_mismatch_rejected(self, tmp_run_cache, tiny_grid):
        configs = pinned(tiny_grid(1))
        queue = TaskQueue.create(tmp_run_cache, "q")
        queue.enqueue(configs)
        key = configs[0].cache_key()
        entry = queue.journal.read(key)
        entry["version"] = JOURNAL_VERSION + 1
        queue.journal.update(key, lambda _current: entry)
        with pytest.raises(ValueError, match="version"):
            queue.enqueue(configs)

    def test_counts_and_format(self, tmp_run_cache, tiny_grid):
        configs = pinned(tiny_grid(3))
        queue = TaskQueue.create(tmp_run_cache, "q")
        queue.enqueue(configs)
        queue.claim(worker_identity())
        counts = queue.counts()
        assert counts == {
            PENDING: 2, LEASED: 1, DONE: 0, ERROR: 0, QUARANTINED: 0, "stolen": 0,
        }
        text = format_queue_text(queue)
        assert "3 task(s)" in text and "1 leased" in text


def format_queue_text(queue):
    from repro.experiments import format_queue

    return format_queue(queue)


class TestLeases:
    def test_live_lease_is_not_stolen(self, tmp_run_cache, tiny_grid):
        configs = pinned(tiny_grid(1))
        queue = TaskQueue.create(tmp_run_cache, "q", lease_timeout=3600)
        queue.enqueue(configs)
        assert queue.claim("worker-a") is not None
        assert queue.claim("worker-b") is None

    def test_expired_lease_is_stolen(self, tmp_run_cache, tiny_grid):
        configs = pinned(tiny_grid(1))
        queue = TaskQueue.create(tmp_run_cache, "q", lease_timeout=0.0)
        queue.enqueue(configs)
        first = queue.claim("worker-a")
        assert first["attempts"] == 1
        time.sleep(0.01)
        stolen = queue.claim("worker-b")
        assert stolen is not None
        assert stolen["worker"] == "worker-b"
        assert stolen["attempts"] == 2

    def test_renew_keeps_lease_alive(self, tmp_run_cache, tiny_grid):
        configs = pinned(tiny_grid(1))
        now = [1000.0]
        queue = TaskQueue.create(tmp_run_cache, "q", lease_timeout=10.0, clock=lambda: now[0])
        queue.enqueue(configs)
        key = configs[0].cache_key()
        assert queue.claim("worker-a") is not None
        now[0] += 8.0
        assert queue.renew(key, "worker-a")
        now[0] += 8.0  # 16s after claim, but only 8s after renewal
        assert queue.claim("worker-b") is None
        now[0] += 3.0
        assert queue.claim("worker-b") is not None

    def test_stale_worker_cannot_clobber_thief_result(self, tmp_run_cache, tiny_grid):
        configs = pinned(tiny_grid(1))
        queue = TaskQueue.create(tmp_run_cache, "q", lease_timeout=0.0)
        queue.enqueue(configs)
        key = configs[0].cache_key()
        queue.claim("worker-a")
        time.sleep(0.01)
        queue.claim("worker-b")  # steals
        from repro.experiments import execute_record

        record = execute_record(configs[0], cache_dir=tmp_run_cache)
        assert not queue.resolve(key, "worker-a", record)  # stale lease rejected
        assert not queue.renew(key, "worker-a")
        assert queue.resolve(key, "worker-b", record)
        assert queue.journal.read(key)["status"] == DONE

    def test_explicit_lease_timeout_updates_live_queue(self, tmp_run_cache):
        """Resuming with an explicit (shorter) lease timeout reclaims
        leases orphaned by a dead sweep instead of waiting out the
        original generous timeout."""
        queue = TaskQueue.create(tmp_run_cache, "q")  # default: generous
        assert queue.meta["lease_timeout"] > 100
        reopened = TaskQueue.create(tmp_run_cache, "q")  # adopt, don't reset
        assert reopened.meta["lease_timeout"] == queue.meta["lease_timeout"]
        shortened = TaskQueue.create(tmp_run_cache, "q", lease_timeout=0.5)
        assert shortened.meta["lease_timeout"] == 0.5
        assert queue.meta["lease_timeout"] == 0.5  # fleet-wide, via disk

    def test_shortened_timeout_frees_orphaned_leases(self, tmp_run_cache, tiny_grid):
        """The recovery drill: a lease stamped under the generous
        default becomes stealable as soon as the operator shortens the
        queue's lease timeout — expiry follows the current setting,
        not the one in force when the lease was stamped."""
        configs = pinned(tiny_grid(1))
        queue = TaskQueue.create(tmp_run_cache, "q")  # default: 900s
        queue.enqueue(configs)
        orphan = queue.claim("dead-sweep:1:0")
        assert orphan is not None
        assert queue.claim("rescuer") is None  # lease looks live
        TaskQueue.create(tmp_run_cache, "q", lease_timeout=0.01)
        time.sleep(0.05)
        stolen = queue.claim("rescuer")
        assert stolen is not None and stolen["attempts"] == 2

    def test_poison_task_quarantined_after_max_attempts(self, tmp_run_cache, tiny_grid):
        configs = pinned(tiny_grid(1))
        queue = TaskQueue.create(tmp_run_cache, "q", lease_timeout=0.0, max_attempts=2)
        queue.enqueue(configs)
        key = configs[0].cache_key()
        for attempt in (1, 2):
            entry = queue.claim(f"victim-{attempt}")
            assert entry["attempts"] == attempt
            time.sleep(0.01)
        # both leases expired; the next claimer quarantines the task
        assert queue.claim("survivor") is None
        entry = queue.journal.read(key)
        assert entry["status"] == QUARANTINED
        assert "max_attempts=2 exhausted" in entry["record"]["error"]
        assert "victim-2" in entry["record"]["error"]
        assert queue.drained()
        # quarantine is sticky across re-enqueue (no re-poisoning)...
        assert queue.enqueue(configs) == (0, 1)
        assert queue.journal.read(key)["status"] == QUARANTINED
        # ...until an operator forces a fresh attempt
        assert queue.enqueue(configs, force=True) == (1, 0)
        assert queue.journal.read(key)["status"] == PENDING


class TestParityProperty:
    """Randomized grids: the queue presentation equals the serial one."""

    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        n=st.integers(min_value=1, max_value=3),
        method=st.sampled_from(["sgd", "grad_l1"]),
        label_noise=st.sampled_from([0.0, 0.3]),
    )
    def test_queue_matches_serial(self, tmp_path_factory, tiny_grid, n, method, label_noise):
        configs = tiny_grid(n, method=method, label_noise=label_noise)
        base = tmp_path_factory.mktemp("parity")
        serial = run_sweep(configs, workers=1, cache_dir=str(base / "serial"))
        queued = run_sweep(
            configs, workers=1, cache_dir=str(base / "queue"), scheduler="queue"
        )
        assert queued.scheduler == "queue"
        assert queued.n_ok == n and serial.n_ok == n
        assert_same_records(serial, queued)
        assert_same_cache_entries(str(base / "serial"), str(base / "queue"), serial.records)

    @pytest.mark.slow
    @pytest.mark.parametrize("workers", [2, 4])
    def test_all_presentations_bit_identical(self, tmp_path, tiny_grid, workers):
        """Serial, pool and queue (2 and 4 workers) agree exactly."""
        configs = tiny_grid(4)
        serial = run_sweep(configs, workers=1, cache_dir=str(tmp_path / "serial"))
        pool = run_sweep(
            configs, workers=workers, cache_dir=str(tmp_path / "pool"), mp_context="fork"
        )
        queued = run_sweep(
            configs,
            workers=workers,
            cache_dir=str(tmp_path / "queue"),
            scheduler="queue",
            mp_context="fork",
        )
        assert serial.n_ok == pool.n_ok == queued.n_ok == 4
        assert_same_records(serial, pool)
        assert_same_records(serial, queued)
        assert_same_cache_entries(str(tmp_path / "serial"), str(tmp_path / "pool"), serial.records)
        assert_same_cache_entries(str(tmp_path / "serial"), str(tmp_path / "queue"), serial.records)


class TestResume:
    def test_resume_reruns_only_non_done(self, tmp_run_cache, tiny_grid):
        configs = tiny_grid(3)
        seen = []
        first = run_sweep(
            configs,
            workers=1,
            cache_dir=tmp_run_cache,
            scheduler="queue",
            progress=seen.append,
        )
        assert first.resumed == 0 and first.n_ok == 3
        assert sorted(r.key for r in seen) == sorted(r.key for r in first.records)
        again = run_sweep(configs, workers=1, cache_dir=tmp_run_cache, scheduler="queue")
        assert again.resumed == 3
        assert_same_records(first, again)
        # resumed records come straight from the journal: same seconds/pid
        assert [r.seconds for r in again.records] == [r.seconds for r in first.records]

    def test_partial_queue_resumes(self, tmp_run_cache, tiny_grid):
        configs = pinned(tiny_grid(3))
        name = queue_name_for(configs)
        queue = TaskQueue.create(tmp_run_cache, name)
        queue.enqueue(configs)
        # drain exactly one task, as an interrupted sweep would have
        worker_loop(queue.root, max_tasks=1)
        assert queue.counts()[DONE] == 1
        report = run_sweep(configs, workers=1, cache_dir=tmp_run_cache, scheduler="queue")
        assert report.n_ok == 3
        assert report.resumed == 1
        serial = run_sweep(
            configs, workers=1, cache_dir=tmp_run_cache + "-serial"
        )
        assert_same_records(serial, report)
        assert_same_cache_entries(tmp_run_cache, tmp_run_cache + "-serial", report.records)

    def test_queue_name_is_deterministic_per_grid(self, tiny_grid):
        grid = pinned(tiny_grid(2))
        assert queue_name_for(grid) == queue_name_for(pinned(tiny_grid(2)))
        assert queue_name_for(grid) != queue_name_for(pinned(tiny_grid(3)))


class TestFaultInjection:
    def test_dead_worker_lease_stolen_and_retried(self, tmp_run_cache, tiny_grid):
        """A lease held by a dead worker expires, is stolen, and the
        retry yields a complete, serial-identical report."""
        configs = pinned(tiny_grid(2))
        name = queue_name_for(configs)
        queue = TaskQueue.create(tmp_run_cache, name, lease_timeout=0.01)
        queue.enqueue(configs)
        dead = queue.claim("dead-host:1:00000000")  # claims, then "dies"
        time.sleep(0.05)
        report = run_sweep(configs, workers=1, cache_dir=tmp_run_cache, scheduler="queue")
        assert report.n_ok == 2 and report.n_errors == 0
        assert report.stolen == 1
        assert queue.journal.read(dead["key"])["attempts"] == 2
        serial = run_sweep(configs, workers=1, cache_dir=tmp_run_cache + "-serial")
        assert_same_records(serial, report)
        assert_same_cache_entries(tmp_run_cache, tmp_run_cache + "-serial", report.records)

    def test_crash_in_task_contained_as_error_record(self, tmp_run_cache, tiny_grid):
        good = tiny_grid(2)
        bad = good[0].with_overrides(dataset="no_such_dataset")
        report = run_sweep(
            good + [bad], workers=1, cache_dir=tmp_run_cache, scheduler="queue"
        )
        assert report.n_ok == 2 and report.n_errors == 1
        (failed,) = [r for r in report.records if not r.ok]
        assert failed.key == bad.with_overrides(dtype=dtype_name(None)).cache_key()
        assert "no_such_dataset" in failed.error
        # a deterministic failure is not retried within the sweep...
        entry = TaskQueue(report.queue).journal.read(failed.key)
        assert entry["status"] == ERROR and entry["attempts"] == 1
        # ...but a resume re-runs it (and fails it again, identically)
        again = run_sweep(
            good + [bad], workers=1, cache_dir=tmp_run_cache, scheduler="queue"
        )
        assert again.n_errors == 1
        assert again.resumed == 2
        # the re-enqueue issued a fresh entry (attempts restart at 1)
        # and the deterministic failure reproduced exactly
        entry = TaskQueue(report.queue).journal.read(failed.key)
        assert entry["status"] == ERROR and entry["attempts"] == 1
        (refailed,) = [r for r in again.records if not r.ok]
        assert "no_such_dataset" in refailed.error

    @pytest.mark.slow
    @pytest.mark.parametrize("workers", [2, 4])
    def test_sigkill_worker_sweep_resumes_bit_identical(
        self, tmp_run_cache, tiny_grid, workers
    ):
        """The acceptance drill: SIGKILL a worker mid-lease, resume the
        sweep through the queue, end bit-identical to serial."""
        configs = pinned(tiny_grid(4, epochs=3))
        name = queue_name_for(configs)
        queue = TaskQueue.create(tmp_run_cache, name, lease_timeout=0.5)
        queue.enqueue(configs)

        ctx = get_context("fork")
        victim = ctx.Process(target=_worker_main, args=((queue.root, None, None, 0.02),))
        victim.start()
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if any(e["status"] == LEASED for e in queue.snapshot().values()):
                break
            time.sleep(0.002)
        else:
            pytest.fail("worker never leased a task")
        os.kill(victim.pid, signal.SIGKILL)
        victim.join()
        assert victim.exitcode == -signal.SIGKILL

        report = run_sweep(
            configs,
            workers=workers,
            cache_dir=tmp_run_cache,
            scheduler="queue",
            mp_context="fork",
        )
        assert report.n_ok == 4 and report.n_errors == 0
        assert report.queue == queue.root
        assert queue.drained()

        serial = run_sweep(configs, workers=1, cache_dir=tmp_run_cache + "-serial")
        assert_same_records(serial, report)
        assert_same_cache_entries(tmp_run_cache, tmp_run_cache + "-serial", report.records)
        # the journal kept per-worker logs for the post-mortem
        logs = os.listdir(os.path.join(queue.root, "logs"))
        assert logs, "worker logs missing"

    def test_all_local_workers_dead_parent_finishes_drain(self, tmp_run_cache, tiny_grid):
        """run_sweep never returns a partial report: if every spawned
        worker dies, the parent drains the queue inline."""
        configs = pinned(tiny_grid(2))
        name = queue_name_for(configs)
        queue = TaskQueue.create(tmp_run_cache, name, lease_timeout=0.05)
        queue.enqueue(configs)
        # leases held by workers that will never come back
        queue.claim("ghost-a:1:0")
        queue.claim("ghost-b:2:0")
        report = run_sweep(configs, workers=1, cache_dir=tmp_run_cache, scheduler="queue")
        assert report.n_ok == 2
        assert report.stolen == 2


class TestWorkerCLI:
    def test_worker_verb_parses(self):
        args = build_parser().parse_args(
            ["worker", "--queue", "grid-abc", "--max-tasks", "3", "--no-wait"]
        )
        assert args.artifact == "worker"
        assert args.queue == "grid-abc"
        assert args.max_tasks == 3
        assert args.no_wait

    def test_worker_drains_queue(self, tmp_run_cache, tiny_grid, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", tmp_run_cache)
        configs = pinned(tiny_grid(2))
        queue = TaskQueue.create(tmp_run_cache, "q")
        queue.enqueue(configs)
        args = build_parser().parse_args(["worker", "--queue", "q"])
        out = io.StringIO()
        assert run_worker_command(args, out=out) == 0
        assert queue.drained()
        assert "executed 2 task(s)" in out.getvalue()

    def test_worker_exit_code_reflects_errors(self, tmp_run_cache, tiny_grid, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", tmp_run_cache)
        bad = [c.with_overrides(dataset="no_such_dataset") for c in pinned(tiny_grid(1))]
        queue = TaskQueue.create(tmp_run_cache, "q")
        queue.enqueue(bad)
        args = build_parser().parse_args(["worker", "--queue", "q"])
        assert run_worker_command(args) == 1

    def test_worker_lease_timeout_updates_queue(self, tmp_run_cache, tiny_grid, monkeypatch):
        """`worker --lease-timeout` is the documented recovery path: it
        must update the live queue so orphaned leases free up."""
        monkeypatch.setenv("REPRO_CACHE_DIR", tmp_run_cache)
        configs = pinned(tiny_grid(2))
        queue = TaskQueue.create(tmp_run_cache, "q")  # generous default
        queue.enqueue(configs)
        queue.claim("dead-sweep:1:0")  # orphaned lease
        args = build_parser().parse_args(
            ["worker", "--queue", "q", "--lease-timeout", "0.01"]
        )
        out = io.StringIO()
        assert run_worker_command(args, out=out) == 0
        assert queue.meta["lease_timeout"] == 0.01
        assert queue.drained()
        assert queue.counts()["stolen"] == 1

    def test_worker_unknown_queue_exits_cleanly(self, tmp_run_cache, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", tmp_run_cache)
        TaskQueue.create(tmp_run_cache, "real")
        with pytest.raises(SystemExit, match="no queue at"):
            resolve_queue_root("grid-typo")
        # ...and the failed lookup must not have minted a phantom queue
        assert sorted(os.listdir(os.path.join(tmp_run_cache, "queue"))) == ["real"]

    def test_queue_resolution(self, tmp_run_cache, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", tmp_run_cache)
        with pytest.raises(SystemExit, match="no queues"):
            resolve_queue_root(None)
        TaskQueue.create(tmp_run_cache, "only")
        assert resolve_queue_root(None).endswith(os.path.join("queue", "only"))
        TaskQueue.create(tmp_run_cache, "second")
        with pytest.raises(SystemExit, match="multiple queues"):
            resolve_queue_root(None)
        # explicit name and explicit directory both resolve
        assert resolve_queue_root("second").endswith("second")
        explicit = resolve_queue_root(os.path.join(tmp_run_cache, "queue", "only"))
        assert explicit.endswith("only")

    def test_sweep_cli_queue_scheduler(self, tmp_run_cache, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", tmp_run_cache)
        args = build_parser().parse_args(
            [
                "sweep",
                "--profile",
                "smoke",
                "--scheduler",
                "queue",
                "--workers",
                "1",
                "--models",
                "ResNet20-fast",
                "--methods",
                "sgd",
                "--seeds",
                "0,1",
                "--json",
                str(tmp_path / "report.json"),
            ]
        )
        from repro.experiments.cli import run_sweep_command

        out = io.StringIO()
        assert run_sweep_command(args, out=out) == 0
        with open(tmp_path / "report.json") as fh:
            payload = json.load(fh)
        assert payload["scheduler"] == "queue"
        assert payload["n_ok"] == 2
        assert "queue scheduler" in out.getvalue()
