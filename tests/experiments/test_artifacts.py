"""Smoke tests of every table/figure module at the smoke profile.

These validate structure, formatting and check-function plumbing; the
paper-shape orderings themselves are exercised by the benchmark suite
at the fast profile (see benchmarks/).
"""

import pytest

import repro.experiments as ex


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    return str(tmp_path_factory.mktemp("runs"))


class TestTable1:
    @pytest.mark.slow
    def test_structure_and_format(self, cache_dir):
        result = ex.run_table1(
            profile="smoke",
            cache_dir=cache_dir,
            rows=[("cifar10_like", "ResNet20-fast")],
        )
        assert len(result["rows"]) == 1
        row = result["rows"][0]
        for method in ("hero", "grad_l1", "sgd"):
            assert 0.0 <= row[method] <= 1.0
        text = ex.format_table1(result)
        assert "HERO" in text and "SGD" in text
        assert isinstance(ex.check_table1(result), list)


class TestTable2:
    @pytest.mark.slow
    def test_structure(self, cache_dir):
        result = ex.run_table2(
            profile="smoke",
            cache_dir=cache_dir,
            models=("ResNet20-fast",),
            noise_ratios=(0.4,),
        )
        rows = result["panels"]["ResNet20-fast"]
        assert rows[0]["noise_ratio"] == 0.4
        text = ex.format_table2(result)
        assert "40%" in text
        assert isinstance(ex.check_table2(result), list)


class TestTable3:
    def test_structure(self, cache_dir):
        result = ex.run_table3(profile="smoke", cache_dir=cache_dir, model="ResNet20-fast")
        methods = [row["method"] for row in result["rows"]]
        assert methods == ["hero", "first_order", "sgd"]
        for row in result["rows"]:
            assert set(row) >= {"method", "full", "q4", "q6", "q8"}
        text = ex.format_table3(result)
        assert "First-order only" in text


class TestFig1:
    def test_structure(self, cache_dir):
        result = ex.run_fig1(
            profile="smoke",
            cache_dir=cache_dir,
            panels=[("a", "cifar10_like", "ResNet20-fast")],
            bits=(4, 8),
        )
        panel = result["panels"]["a"]
        assert panel["curves"]["hero"]["bits"] == [4, 8]
        assert len(panel["curves"]["sgd"]["accuracy"]) == 2
        text = ex.format_fig1(result)
        assert "Figure 1(a)" in text
        assert isinstance(ex.check_fig1(result), list)

    def test_schemes_structure(self, cache_dir):
        result = ex.run_fig1_schemes(
            profile="smoke", cache_dir=cache_dir, model="ResNet20-fast", bits=4
        )
        assert len(result["rows"]) == 4
        schemes = {row["scheme"] for row in result["rows"]}
        assert "symmetric/per-tensor" in schemes
        text = ex.format_fig1_schemes(result)
        assert "scheme robustness" in text
        assert isinstance(ex.check_fig1_schemes(result), list)

    def test_reuses_cache(self, cache_dir):
        # models were trained by previous test; fig1 again must be fast
        import time

        start = time.time()
        ex.run_fig1(
            profile="smoke",
            cache_dir=cache_dir,
            panels=[("a", "cifar10_like", "ResNet20-fast")],
            bits=(4,),
        )
        assert time.time() - start < 30


class TestFig2:
    def test_structure(self, cache_dir):
        result = ex.run_fig2(profile="smoke", cache_dir=None, max_batches=1)
        for method in ("hero", "grad_l1", "sgd"):
            series = result["series"][method]
            values = [v for v in series["hessian_norm"] if v is not None]
            assert values and all(v >= 0 for v in values)
            gaps = [v for v in series["generalization_gap"] if v is not None]
            assert gaps
        text = ex.format_fig2(result)
        assert "||Hz||" in text
        assert isinstance(ex.check_fig2(result), list)


class TestFig3:
    def test_structure(self, cache_dir):
        result = ex.run_fig3(profile="smoke", cache_dir=cache_dir, steps=3, max_batches=1)
        for method in ("hero", "sgd"):
            entry = result["surfaces"][method]
            assert entry["surface"]["loss"].shape == (3, 3)
            assert 0.0 <= entry["flat_area"] <= 1.0
        text = ex.format_fig3(result)
        assert "flat area" in text
        assert isinstance(ex.check_fig3(result), list)


class TestAblations:
    def test_perturbation_ablation(self, cache_dir):
        result = ex.run_perturbation_ablation(profile="smoke", cache_dir=cache_dir)
        variants = [row["variant"] for row in result["rows"]]
        assert variants == ["layer_adaptive", "global"]
        assert "Ablation" in ex.format_ablation(result)

    def test_gamma_grid(self, cache_dir):
        result = ex.run_gamma_grid(profile="smoke", cache_dir=cache_dir, gammas=(0.01, 0.1))
        assert len(result["rows"]) == 2


class TestQATMotivation:
    def test_structure(self, cache_dir):
        result = ex.run_qat_motivation(
            profile="smoke", cache_dir=cache_dir, bits=(4, 8), qat_bits=4
        )
        assert set(result["curves"]) == {"hero", "sgd", "qat@4bit"}
        for curve in result["curves"].values():
            assert len(curve["accuracy"]) == 2
        text = ex.format_qat_motivation(result)
        assert "QAT motivation" in text
        assert isinstance(ex.check_qat_motivation(result), list)


class TestReporting:
    def test_format_table_percent_rendering(self):
        text = ex.format_table(["a", "b"], [["x", 0.5], ["y", 1.5]])
        assert "50.00%" in text
        assert "1.5" in text

    def test_save_json(self, tmp_path):
        import json

        path = ex.save_json({"x": [1, 2]}, str(tmp_path / "out.json"))
        with open(path) as fh:
            assert json.load(fh) == {"x": [1, 2]}
