"""Shared fixtures for the test suite."""

import numpy as np
import pytest


@pytest.fixture
def rng():
    """Fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def tmp_run_cache(tmp_path):
    """A per-test run-cache directory (string path, not yet created).

    The shared spelling of the ``str(tmp_path / "runs")`` idiom the
    experiment/io tests all need: run caches, sweep reports and queue
    journals land under it and are garbage-collected with ``tmp_path``.
    """
    return str(tmp_path / "runs")


@pytest.fixture
def tiny_grid():
    """Factory for small smoke-profile experiment grids.

    ``tiny_grid(n)`` is an ``n``-config single-epoch seed axis over the
    fast ResNet model — the standard sweep-scheduler test workload.
    Keyword arguments override any :class:`TrainConfig` field.
    """
    from repro.experiments import expand_grid, make_config

    def make(n=4, method="sgd", profile="smoke", epochs=1, **overrides):
        base = make_config(
            "ResNet20-fast", "cifar10_like", method, profile=profile, epochs=epochs, **overrides
        )
        return expand_grid(base, seed=list(range(n)))

    return make


@pytest.fixture
def tiny_image_batch(rng):
    """A small NCHW batch with integer labels (8 samples, 3x6x6)."""
    x = rng.standard_normal((8, 3, 6, 6))
    y = rng.integers(0, 4, size=8)
    return x, y


@pytest.fixture
def tiny_mlp(rng):
    """A 2-16-3 MLP with deterministic init."""
    from repro.models import MLP

    return MLP(in_features=2, hidden=(16,), num_classes=3, rng=rng)


@pytest.fixture
def tiny_convnet():
    """A minimal conv-BN-relu-pool-linear classifier."""
    import numpy as np

    from repro import nn

    r = np.random.default_rng(7)
    return nn.Sequential(
        nn.Conv2d(3, 4, 3, padding=1, rng=r),
        nn.BatchNorm2d(4),
        nn.ReLU(),
        nn.GlobalAvgPool2d(),
        nn.Linear(4, 4, rng=r),
    )
