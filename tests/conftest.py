"""Shared fixtures for the test suite."""

import numpy as np
import pytest


@pytest.fixture
def rng():
    """Fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_image_batch(rng):
    """A small NCHW batch with integer labels (8 samples, 3x6x6)."""
    x = rng.standard_normal((8, 3, 6, 6))
    y = rng.integers(0, 4, size=8)
    return x, y


@pytest.fixture
def tiny_mlp(rng):
    """A 2-16-3 MLP with deterministic init."""
    from repro.models import MLP

    return MLP(in_features=2, hidden=(16,), num_classes=3, rng=rng)


@pytest.fixture
def tiny_convnet():
    """A minimal conv-BN-relu-pool-linear classifier."""
    import numpy as np

    from repro import nn

    r = np.random.default_rng(7)
    return nn.Sequential(
        nn.Conv2d(3, 4, 3, padding=1, rng=r),
        nn.BatchNorm2d(4),
        nn.ReLU(),
        nn.GlobalAvgPool2d(),
        nn.Linear(4, 4, rng=r),
    )
