"""Dataset pipeline: sampler parity, sharding determinism, dataset cache."""

import hashlib
import json
import os
from dataclasses import replace
from multiprocessing import get_context

import numpy as np
import pytest

from repro.data import (
    dataset_cache_dir,
    dataset_cache_key,
    generate_dataset,
    generate_synthetic,
    load_or_generate,
    make_dataset,
    plan_shards,
    resolve_spec,
    warm_dataset,
)
from repro.data.pipeline import DATASET_MANIFEST, dataset_cache, split_generator_id
from repro.data.synthetic import (
    PROFILES,
    SyntheticSpec,
    _class_prototypes,
    _sample_images,
    _sample_images_loop,
)
from repro.tensor import dtype_context


def small_spec(**overrides):
    base = replace(PROFILES["cifar10_like"], train_size=600, test_size=64)
    return replace(base, **overrides) if overrides else base


class TestVectorizedParity:
    """The vectorized sampler must reproduce the seed loop bit for bit."""

    @pytest.mark.parametrize("profile", sorted(PROFILES))
    @pytest.mark.parametrize("dtype", ["float32", "float64"])
    def test_bit_identical_to_loop(self, profile, dtype):
        spec = PROFILES[profile]
        with dtype_context(dtype):
            prototypes = _class_prototypes(spec, np.random.default_rng(spec.seed))
            labels = np.random.default_rng(3).integers(0, spec.num_classes, 150)
            loop = _sample_images_loop(spec, prototypes, labels, np.random.default_rng(9))
            fast = _sample_images(spec, prototypes, labels, np.random.default_rng(9))
        assert loop.dtype == fast.dtype
        assert np.array_equal(loop, fast)

    def test_parity_with_zero_shift(self):
        spec = SyntheticSpec(name="t", num_classes=4, image_size=6, max_shift=0)
        prototypes = _class_prototypes(spec, np.random.default_rng(0))
        labels = np.random.default_rng(1).integers(0, 4, 64)
        loop = _sample_images_loop(spec, prototypes, labels, np.random.default_rng(2))
        fast = _sample_images(spec, prototypes, labels, np.random.default_rng(2))
        assert np.array_equal(loop, fast)

    def test_single_shard_matches_legacy_generator(self):
        """One-shard datasets keep the exact seed-generator stream (v1)."""
        spec = small_spec()
        legacy_train, legacy_test = generate_synthetic(spec)
        train, test = generate_dataset(spec)  # 600 < shard size -> v1
        assert np.array_equal(legacy_train.inputs, train.inputs)
        assert np.array_equal(legacy_train.targets, train.targets)
        assert np.array_equal(legacy_test.inputs, test.inputs)


class TestShardedGeneration:
    def test_plan_shards_covers_total(self):
        assert plan_shards(10, 4) == [(0, 4), (4, 8), (8, 10)]
        assert plan_shards(4, 4) == [(0, 4)]
        with pytest.raises(ValueError):
            plan_shards(10, 0)

    def test_generator_id_versioning(self):
        assert split_generator_id(100, 8192) == "v1"
        assert split_generator_id(10_000, 8192) == "v2.s8192"
        assert split_generator_id(10_000, 4096) == "v2.s4096"

    def test_worker_count_never_changes_data(self):
        spec = small_spec()
        serial_train, serial_test = generate_dataset(spec, shard_size=256, workers=1)
        pooled_train, pooled_test = generate_dataset(
            spec, shard_size=256, workers=3, mp_context="fork"
        )
        assert np.array_equal(serial_train.inputs, pooled_train.inputs)
        assert np.array_equal(serial_train.targets, pooled_train.targets)
        assert np.array_equal(serial_test.inputs, pooled_test.inputs)

    def test_sharded_labels_match_legacy(self):
        """Sharding changes the image streams, never the label split."""
        spec = small_spec()
        legacy_train, _ = generate_synthetic(spec)
        train, _ = generate_dataset(spec, shard_size=256)
        assert np.array_equal(legacy_train.targets, train.targets)

    # The golden hashes pinning the v2 stream live in
    # tests/test_golden.py, next to the journal-schema pin.

    def test_sharded_distribution_is_separable(self):
        """v2 data keeps the class structure experiments rely on."""
        spec = small_spec()
        train, _ = generate_dataset(spec, shard_size=256)
        prototypes = _class_prototypes(spec, np.random.default_rng(spec.seed))
        scores = train.inputs.reshape(len(train), -1) @ prototypes.reshape(
            spec.num_classes, -1
        ).T.astype(train.inputs.dtype)
        accuracy = (scores.argmax(axis=1) == train.targets).mean()
        assert accuracy > 0.3  # chance is 0.1


class TestCacheKeys:
    def test_key_sensitive_to_spec_dtype_and_generator(self):
        spec = small_spec()
        base = dataset_cache_key(spec)
        assert dataset_cache_key(replace(spec, seed=5)) != base
        assert dataset_cache_key(spec, dtype="float64") != base
        assert dataset_cache_key(spec, shard_size=256) != base
        assert dataset_cache_key(spec) == base  # stable

    def test_key_ignores_equivalent_shard_sizes(self):
        """Two shard sizes that both leave the spec on v1 share an entry."""
        spec = small_spec()
        assert dataset_cache_key(spec, shard_size=1024) == dataset_cache_key(
            spec, shard_size=2048
        )

    def test_cache_dir_resolution(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_DATASET_CACHE", raising=False)
        assert dataset_cache_dir(None) is None
        assert dataset_cache_dir(str(tmp_path)) == os.path.join(str(tmp_path), "datasets")
        monkeypatch.setenv("REPRO_DATASET_CACHE", "off")
        assert dataset_cache_dir(str(tmp_path)) is None
        monkeypatch.setenv("REPRO_DATASET_CACHE", str(tmp_path / "elsewhere"))
        assert dataset_cache_dir(None) == str(tmp_path / "elsewhere")


class TestDatasetCache:
    def test_miss_generates_then_hit_memory_maps(self, tmp_path):
        spec = small_spec()
        cold_train, cold_test = load_or_generate(spec, cache_dir=str(tmp_path))
        key = dataset_cache_key(spec)
        entry = os.path.join(str(tmp_path), key)
        for name in DATASET_MANIFEST:
            assert os.path.exists(os.path.join(entry, name)), name
        warm_train, warm_test = load_or_generate(spec, cache_dir=str(tmp_path))
        # the warm arrays are memory-mapped, not copied into RAM
        # (ArrayDataset's asarray turns the memmap into a zero-copy view)
        backing = warm_train.inputs
        while not isinstance(backing, np.memmap):
            assert backing.base is not None, "warm load copied the arrays"
            backing = backing.base
        assert isinstance(backing, np.memmap)
        assert np.array_equal(cold_train.inputs, warm_train.inputs)
        assert np.array_equal(cold_train.targets, warm_train.targets)
        assert np.array_equal(cold_test.inputs, warm_test.inputs)
        with open(os.path.join(entry, "meta.json")) as fh:
            meta = json.load(fh)
        assert meta["dtype"] == "float32"
        assert meta["train_generator"] == "v1"

    def test_warm_hit_performs_no_generation(self, tmp_path, monkeypatch):
        spec = small_spec()
        load_or_generate(spec, cache_dir=str(tmp_path))

        def boom(*args, **kwargs):
            raise AssertionError("cache hit must not regenerate")

        import repro.data.pipeline as pipeline

        monkeypatch.setattr(pipeline, "generate_dataset", boom)
        train, _test = pipeline.load_or_generate(spec, cache_dir=str(tmp_path))
        assert len(train) == spec.train_size

    def test_dtype_isolation(self, tmp_path):
        spec = small_spec()
        train32, _ = load_or_generate(spec, cache_dir=str(tmp_path))
        with dtype_context("float64"):
            train64, _ = load_or_generate(spec, cache_dir=str(tmp_path))
        assert train32.inputs.dtype == np.float32
        assert train64.inputs.dtype == np.float64
        assert len(os.listdir(str(tmp_path))) >= 2

    def test_warm_dataset_reports_hit(self, tmp_path):
        spec = small_spec()
        key, hit = warm_dataset(spec, str(tmp_path))
        assert not hit and key == dataset_cache_key(spec)
        key2, hit2 = warm_dataset(spec, str(tmp_path))
        assert hit2 and key2 == key

    def test_make_dataset_cache_roundtrip(self, tmp_path):
        fresh_train, _t, spec = make_dataset(
            "cifar10_like", train_size=50, test_size=20, cache_dir=str(tmp_path)
        )
        cached_train, _t2, _s2 = make_dataset(
            "cifar10_like", train_size=50, test_size=20, cache_dir=str(tmp_path)
        )
        assert np.array_equal(fresh_train.inputs, cached_train.inputs)
        # and identical to the uncached generation
        pure_train, _t3, _s3 = make_dataset("cifar10_like", train_size=50, test_size=20)
        assert np.array_equal(fresh_train.inputs, pure_train.inputs)


def _race_generate(task):
    """Process entry point for the concurrent-writer race below."""
    cache_dir, train_size = task
    spec = replace(PROFILES["cifar10_like"], train_size=train_size, test_size=32)
    train, _test = load_or_generate(spec, cache_dir=cache_dir)
    return hashlib.sha256(np.ascontiguousarray(train.inputs).tobytes()).hexdigest()


class TestConcurrentWriters:
    def test_racing_processes_agree_and_leave_one_clean_entry(self, tmp_path):
        cache_dir = str(tmp_path)
        ctx = get_context("fork")
        with ctx.Pool(4) as pool:
            digests = pool.map(_race_generate, [(cache_dir, 300)] * 4)
        assert len(set(digests)) == 1
        spec = replace(PROFILES["cifar10_like"], train_size=300, test_size=32)
        entry = os.path.join(cache_dir, dataset_cache_key(spec))
        cache = dataset_cache(cache_dir)
        assert cache.complete(dataset_cache_key(spec))
        # no leaked temp dirs
        leftovers = [n for n in os.listdir(cache_dir) if ".tmp." in n]
        assert leftovers == []
        # the published entry serves the same bits
        train, _ = load_or_generate(spec, cache_dir=cache_dir)
        digest = hashlib.sha256(np.ascontiguousarray(train.inputs).tobytes()).hexdigest()
        assert digest == digests[0]
        assert os.path.isdir(entry)


class TestResolveSpec:
    def test_resolve_spec_uses_dataclass_replace(self):
        spec = resolve_spec("cifar10_like", train_size=40)
        assert spec == replace(PROFILES["cifar10_like"], train_size=40)
        assert resolve_spec("cifar10_like") is PROFILES["cifar10_like"]

    def test_make_dataset_spec_matches_replace(self):
        _tr, _te, spec = make_dataset("cifar100_like", seed=9, train_size=30, test_size=10)
        assert spec == replace(PROFILES["cifar100_like"], seed=9, train_size=30, test_size=10)

    def test_unknown_profile_raises(self):
        with pytest.raises(KeyError):
            resolve_spec("mnist_like")
