"""Streaming shard writer + out-of-core loader: parity, resume, residency."""

import hashlib
import os
import time
from dataclasses import replace
from multiprocessing import get_context

import numpy as np
import pytest

from repro.data import (
    DataLoader,
    generate_dataset,
    load_or_generate,
    make_dataset,
    should_stream,
    stream_dataset,
)
from repro.data.pipeline import DATASET_MANIFEST, dataset_cache, dataset_cache_key
from repro.data.streaming import (
    SHARD_DONE,
    _resident_cap,
    evict,
    shard_journal,
    shard_key,
    shard_nbytes,
)
from repro.data.synthetic import PROFILES

#: The v2 golden hash from tests/test_golden.py — the streamed writer
#: must land byte-for-byte on the same stream.
GOLDEN_TRAIN_SHA = "df3ca4b85768e3205746e4d92bb1b5ddccc25825555ae6f242bd09bfc9e597da"


def small_spec(**overrides):
    base = replace(PROFILES["cifar10_like"], train_size=600, test_size=64)
    return replace(base, **overrides) if overrides else base


def entry_digest(cache_dir, spec, shard_size=256):
    train, _ = load_or_generate(spec, cache_dir=cache_dir, shard_size=shard_size)
    return hashlib.sha256(np.ascontiguousarray(train.inputs).tobytes()).hexdigest()


class TestStreamedParity:
    def test_streamed_entry_is_bit_identical_and_golden(self, tmp_path):
        spec = small_spec()
        report = stream_dataset(spec, str(tmp_path), shard_size=256)
        assert not report.hit
        assert report.n_generated == 4 and report.n_resumed == 0  # 3 train + 1 test
        entry = os.path.join(str(tmp_path), report.key)
        for name in DATASET_MANIFEST:
            assert os.path.exists(os.path.join(entry, name)), name
        # no staging bookkeeping leaks into the live entry
        assert not os.path.exists(os.path.join(entry, ".shards"))
        assert not os.path.exists(os.path.join(entry, ".staging-meta.json"))

        train, test = load_or_generate(spec, cache_dir=str(tmp_path), shard_size=256)
        eager_train, eager_test = generate_dataset(spec, shard_size=256)
        assert np.array_equal(train.inputs, eager_train.inputs)
        assert np.array_equal(train.targets, eager_train.targets)
        assert np.array_equal(test.inputs, eager_test.inputs)
        assert np.array_equal(test.targets, eager_test.targets)
        assert entry_digest(str(tmp_path), spec) == GOLDEN_TRAIN_SHA

    def test_streamed_pool_matches_serial(self, tmp_path):
        spec = small_spec()
        stream_dataset(spec, str(tmp_path / "pool"), shard_size=256, workers=3,
                       mp_context="fork")
        stream_dataset(spec, str(tmp_path / "serial"), shard_size=256, workers=1)
        assert entry_digest(str(tmp_path / "pool"), spec) == entry_digest(
            str(tmp_path / "serial"), spec
        )

    def test_second_call_is_a_hit(self, tmp_path):
        spec = small_spec()
        stream_dataset(spec, str(tmp_path), shard_size=256)
        again = stream_dataset(spec, str(tmp_path), shard_size=256)
        assert again.hit and again.n_generated == 0
        assert sum(split.cached for split in again.splits) == 4

    def test_stream_requires_cache_dir(self):
        with pytest.raises(ValueError):
            stream_dataset(small_spec(), None)
        with pytest.raises(ValueError):
            load_or_generate(small_spec(), cache_dir=None, stream=True)

    def test_auto_policy_streams_multi_shard_only(self):
        assert should_stream(small_spec(), shard_size=256)
        assert not should_stream(small_spec(train_size=100, test_size=64), shard_size=256)

    def test_load_or_generate_auto_routes_to_streaming(self, tmp_path, monkeypatch):
        import repro.data.pipeline as pipeline

        def boom(*args, **kwargs):
            raise AssertionError("multi-shard cold entry must stream, not go eager")

        monkeypatch.setattr(pipeline, "generate_dataset", boom)
        spec = small_spec()
        train, _ = load_or_generate(spec, cache_dir=str(tmp_path), shard_size=256)
        assert len(train) == spec.train_size

    def test_stream_false_forces_eager(self, tmp_path, monkeypatch):
        import repro.data.streaming as streaming

        def boom(*args, **kwargs):
            raise AssertionError("stream=False must not stream")

        monkeypatch.setattr(streaming, "stream_dataset", boom)
        spec = small_spec()
        train, _ = load_or_generate(
            spec, cache_dir=str(tmp_path), shard_size=256, stream=False
        )
        assert len(train) == spec.train_size
        assert entry_digest(str(tmp_path), spec) == GOLDEN_TRAIN_SHA

    def test_make_dataset_threads_stream(self, tmp_path):
        train, _test, spec = make_dataset(
            "cifar10_like",
            train_size=600,
            test_size=64,
            cache_dir=str(tmp_path),
            shard_size=256,
            stream=True,
            max_resident_mb=64,
        )
        assert dataset_cache(str(tmp_path)).complete(dataset_cache_key(spec, shard_size=256))
        assert np.array_equal(train.inputs, generate_dataset(spec, shard_size=256)[0].inputs)


class TestResume:
    def test_interrupt_resumes_only_missing_shards(self, tmp_path):
        spec = small_spec()
        generated = []

        def hook(split, index, state):
            if state == "generated":
                generated.append((split, index))
                if len(generated) == 2:
                    raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            stream_dataset(spec, str(tmp_path), shard_size=256, progress=hook)
        # entry not live yet, staging (with its journal) left behind
        cache = dataset_cache(str(tmp_path))
        key = dataset_cache_key(spec, shard_size=256)
        assert not cache.complete(key)
        journal = shard_journal(cache.staging_path(key))
        done = [k for k, e in journal.snapshot().items() if e["status"] == SHARD_DONE]
        assert len(done) == 2

        report = stream_dataset(spec, str(tmp_path), shard_size=256)
        assert not report.hit
        assert report.n_resumed == 2 and report.n_generated == 2
        assert entry_digest(str(tmp_path), spec) == GOLDEN_TRAIN_SHA

    def test_sigkill_resumes_only_missing_shards(self, tmp_path):
        spec = small_spec()
        cache = dataset_cache(str(tmp_path))
        key = dataset_cache_key(spec, shard_size=256)
        journal = shard_journal(cache.staging_path(key))

        ctx = get_context("fork")
        proc = ctx.Process(
            target=_slow_stream, args=(str(tmp_path),), daemon=True
        )
        proc.start()
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            done = [
                k
                for k, e in journal.snapshot().items()
                if e.get("status") == SHARD_DONE
            ]
            if done:
                break
            time.sleep(0.02)
        assert done, "worker never finished a shard before the kill window"
        proc.kill()
        proc.join()
        assert not cache.complete(key)

        report = stream_dataset(spec, str(tmp_path), shard_size=256)
        assert report.n_resumed >= 1
        assert report.n_resumed + report.n_generated == 4
        assert entry_digest(str(tmp_path), spec) == GOLDEN_TRAIN_SHA

    def test_hit_reaps_staging_orphaned_by_an_eager_rerun(self, tmp_path):
        spec = small_spec()

        def die_early(split, index, state):
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            stream_dataset(spec, str(tmp_path), shard_size=256, progress=die_early)
        cache = dataset_cache(str(tmp_path))
        key = dataset_cache_key(spec, shard_size=256)
        assert os.path.isdir(cache.staging_path(key))
        # the documented eager override completes the entry around staging
        load_or_generate(spec, cache_dir=str(tmp_path), shard_size=256, stream=False)
        report = stream_dataset(spec, str(tmp_path), shard_size=256)
        assert report.hit
        assert not os.path.isdir(cache.staging_path(key))

    def test_stale_staging_for_other_layout_is_wiped(self, tmp_path):
        spec = small_spec()
        cache = dataset_cache(str(tmp_path))
        key = dataset_cache_key(spec, shard_size=256)
        staging = cache.staging_path(key)
        os.makedirs(staging)
        with open(os.path.join(staging, ".staging-meta.json"), "w") as fh:
            fh.write('{"version": 0}')
        report = stream_dataset(spec, str(tmp_path), shard_size=256)
        assert report.n_resumed == 0 and report.n_generated == 4
        assert entry_digest(str(tmp_path), spec) == GOLDEN_TRAIN_SHA


def _slow_stream(cache_dir):
    """Fork target: stream with a per-shard stall so a kill lands mid-run."""
    spec = small_spec()
    stream_dataset(
        spec,
        cache_dir,
        shard_size=256,
        progress=lambda *a: time.sleep(0.25),
    )


class TestShardJournal:
    def test_journal_records_shard_coordinates(self, tmp_path):
        spec = small_spec()

        def hook(split, index, state):
            if (split, index) == ("train", 1):
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            stream_dataset(spec, str(tmp_path), shard_size=256, progress=hook)
        cache = dataset_cache(str(tmp_path))
        key = dataset_cache_key(spec, shard_size=256)
        entry = shard_journal(cache.staging_path(key)).read(shard_key("train", 1))
        assert entry["status"] == SHARD_DONE
        assert entry["split"] == "train" and entry["index"] == 1
        assert entry["start"] == 256 and entry["stop"] == 512

    def test_resident_cap_counts_whole_shards(self):
        spec = small_spec()
        per_shard = shard_nbytes(spec, 256)
        assert per_shard == 256 * 3 * 8 * 8 * 4
        assert _resident_cap(spec, 256, None) is None
        assert _resident_cap(spec, 256, per_shard / 2**20) == 1
        assert _resident_cap(spec, 256, 5 * per_shard / 2**20) == 5
        assert _resident_cap(spec, 256, 0.0) == 1  # floor: one shard in flight


class TestOutOfCoreLoader:
    def test_sequential_batches_match_eager_loader_bitwise(self, tmp_path):
        spec = small_spec()
        stream_dataset(spec, str(tmp_path), shard_size=256)
        mapped, _ = load_or_generate(spec, cache_dir=str(tmp_path), shard_size=256)
        eager, _ = generate_dataset(spec, shard_size=256)
        ooc = DataLoader(mapped, batch_size=50, shuffle=False, window=120)
        ref = DataLoader(eager, batch_size=50, shuffle=False)
        batches = list(zip(ref, ooc, strict=True))
        assert len(batches) == 12
        for (rx, ry), (ox, oy) in batches:
            assert np.array_equal(rx, ox)
            assert np.array_equal(ry, oy)

    def test_windowed_epoch_is_a_window_local_permutation(self):
        eager, _ = generate_dataset(small_spec(), shard_size=256)
        loader = DataLoader(eager, batch_size=32, shuffle=True, window=150, seed=3)
        order = loader.epoch_order()
        assert np.array_equal(np.sort(order), np.arange(600))
        # windows are visited contiguously: the window-id sequence has
        # exactly one run per window, so residency stays window-local
        blocks = order // 150
        runs = 1 + int(np.sum(blocks[1:] != blocks[:-1]))
        assert runs == 4
        # and it is genuinely shuffled, not sequential
        assert not np.array_equal(order, np.arange(600))

    def test_windowed_epoch_yields_every_sample_once(self):
        eager, _ = generate_dataset(small_spec(), shard_size=256)
        loader = DataLoader(eager, batch_size=32, shuffle=True, window=150, seed=3)
        targets = np.concatenate([y for _x, y in loader])
        assert np.array_equal(np.sort(targets), np.sort(np.asarray(eager.targets)))

    def test_max_resident_mb_derives_window(self):
        eager, _ = generate_dataset(small_spec(), shard_size=256)
        loader = DataLoader(eager, batch_size=32, shuffle=True, max_resident_mb=0.15)
        assert loader.window == int(0.15 * 2**20) // (3 * 8 * 8 * 4)
        floor = DataLoader(eager, batch_size=32, shuffle=True, max_resident_mb=1e-6)
        assert floor.window == 32  # never below one batch

    def test_default_loader_stream_is_unchanged(self):
        eager, _ = generate_dataset(small_spec(), shard_size=256)
        legacy = np.arange(600)
        np.random.default_rng(7).shuffle(legacy)
        loader = DataLoader(eager, batch_size=32, shuffle=True, seed=7)
        assert np.array_equal(loader.epoch_order(), legacy)

    def test_window_validation(self):
        eager, _ = generate_dataset(small_spec(), shard_size=256)
        with pytest.raises(ValueError):
            DataLoader(eager, window=0)
        with pytest.raises(ValueError):
            DataLoader(eager, max_resident_mb=0)
        with pytest.raises(ValueError):
            DataLoader(eager, max_resident_mb=-64)


class TestEvict:
    def test_evict_memmap_and_plain_array(self, tmp_path):
        path = str(tmp_path / "x.npy")
        arr = np.lib.format.open_memmap(path, mode="w+", dtype=np.float32, shape=(64, 8))
        arr[:] = 1.0
        assert evict(arr) is True
        assert np.array_equal(np.load(path), np.ones((64, 8), dtype=np.float32))
        assert evict(np.ones(4)) is False
        assert evict(None) is False
        # views reach through to the mapping
        assert evict(arr[3:5]) is True
