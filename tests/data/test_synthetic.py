"""Synthetic image dataset generator."""

import numpy as np
import pytest

from repro.data import PROFILES, generate_synthetic, make_dataset
from repro.data.synthetic import SyntheticSpec, _class_prototypes


class TestSpec:
    def test_class_counts_sum(self):
        spec = PROFILES["cifar10_like"]
        counts = spec.class_counts(103)
        assert counts.sum() == 103
        assert counts.max() - counts.min() <= 1

    def test_profiles_exist(self):
        for name in ("cifar10_like", "cifar100_like", "imagenet_like"):
            assert name in PROFILES


class TestGeneration:
    def test_shapes_and_labels(self):
        train, test, spec = make_dataset("cifar10_like", train_size=50, test_size=30)
        assert train.inputs.shape == (50, 3, spec.image_size, spec.image_size)
        assert test.inputs.shape[0] == 30
        assert set(np.unique(train.targets)) <= set(range(spec.num_classes))

    def test_deterministic(self):
        t1, _, _ = make_dataset("cifar10_like", train_size=20, test_size=10)
        t2, _, _ = make_dataset("cifar10_like", train_size=20, test_size=10)
        assert np.allclose(t1.inputs, t2.inputs)
        assert np.all(t1.targets == t2.targets)

    def test_seed_changes_data(self):
        t1, _, _ = make_dataset("cifar10_like", seed=1, train_size=20, test_size=10)
        t2, _, _ = make_dataset("cifar10_like", seed=2, train_size=20, test_size=10)
        assert not np.allclose(t1.inputs, t2.inputs)

    def test_train_test_disjoint_draws(self):
        train, test, _ = make_dataset("cifar10_like", train_size=30, test_size=30)
        # identical shapes but different noise draws
        assert not np.allclose(train.inputs[:10], test.inputs[:10])

    def test_all_classes_present(self):
        train, test, spec = make_dataset("cifar10_like", train_size=100, test_size=100)
        assert len(np.unique(train.targets)) == spec.num_classes
        assert len(np.unique(test.targets)) == spec.num_classes

    def test_unknown_profile_raises(self):
        with pytest.raises(KeyError):
            make_dataset("mnist_like")

    def test_prototypes_unit_rms(self):
        spec = PROFILES["cifar10_like"]
        protos = _class_prototypes(spec, np.random.default_rng(0))
        rms = np.sqrt((protos ** 2).mean(axis=(1, 2, 3)))
        assert np.allclose(rms, spec.prototype_scale, rtol=1e-6)

    def test_classes_statistically_separable(self):
        """Nearest-prototype classification must beat chance by a lot.

        Guards against generator regressions that would silently turn
        every experiment into noise fitting.
        """
        spec = SyntheticSpec(
            name="t", num_classes=5, image_size=8, train_size=100, test_size=50,
            noise=0.5, interference=0.3,
        )
        train, _ = generate_synthetic(spec)
        protos = _class_prototypes(spec, np.random.default_rng(spec.seed))
        flat_p = protos.reshape(spec.num_classes, -1)
        flat_x = train.inputs.reshape(len(train), -1)
        # correlation with each prototype (shift-sensitive, so imperfect)
        scores = flat_x @ flat_p.T
        predictions = scores.argmax(axis=1)
        accuracy = (predictions == train.targets).mean()
        assert accuracy > 0.4  # chance is 0.2

    def test_custom_sizes_override(self):
        train, test, spec = make_dataset("cifar100_like", train_size=40, test_size=20)
        assert len(train) == 40
        assert len(test) == 20
        assert spec.train_size == 40

    def test_grayscale_profile(self):
        train, _test, spec = make_dataset("fashion_like", train_size=30, test_size=10)
        assert spec.channels == 1
        assert train.inputs.shape == (30, 1, spec.image_size, spec.image_size)

    def test_grayscale_trains_through_models(self):
        from repro import nn, optim
        from repro.core import make_trainer
        from repro.data import DataLoader
        from repro.models import create_model

        train, _test, spec = make_dataset("fashion_like", train_size=60, test_size=20)
        model = create_model(
            "resnet8", num_classes=spec.num_classes, in_channels=1, scale=0.5, seed=0
        )
        opt = optim.SGD(model.parameters(), lr=0.1)
        trainer = make_trainer("sgd", model, nn.CrossEntropyLoss(), opt)
        history = trainer.fit(DataLoader(train, batch_size=30, seed=0), epochs=2)
        assert history["train_loss"][-1] <= history["train_loss"][0] + 0.5
