"""Toy datasets, augmentation transforms and label-noise corruption."""

import numpy as np
import pytest

from repro.data import (
    corrupt_dataset,
    corrupt_symmetric,
    gaussian_blobs,
    random_crop,
    random_horizontal_flip,
    spirals,
    standard_augment,
    train_test_split,
    two_moons,
)


class TestToyDatasets:
    def test_two_moons(self):
        ds = two_moons(n=100, seed=0)
        assert ds.inputs.shape == (100, 2)
        assert set(np.unique(ds.targets)) == {0, 1}

    def test_spirals(self):
        ds = spirals(n=99, num_classes=3, seed=0)
        assert ds.inputs.shape == (99, 2)
        assert set(np.unique(ds.targets)) == {0, 1, 2}

    def test_blobs_separable(self):
        ds = gaussian_blobs(n=300, num_classes=3, spread=3.0, noise=0.2, seed=0)
        # nearest-centroid should be nearly perfect at this spread
        centroids = np.stack([ds.inputs[ds.targets == c].mean(axis=0) for c in range(3)])
        d = ((ds.inputs[:, None, :] - centroids[None]) ** 2).sum(-1)
        assert (d.argmin(1) == ds.targets).mean() > 0.95

    def test_deterministic(self):
        a = spirals(n=60, seed=4)
        b = spirals(n=60, seed=4)
        assert np.allclose(a.inputs, b.inputs)

    def test_train_test_split(self):
        ds = two_moons(n=100, seed=0)
        train, test = train_test_split(ds, test_fraction=0.3, seed=1)
        assert len(train) == 70
        assert len(test) == 30


class TestAugmentation:
    def test_random_crop_shape_preserved(self):
        rng = np.random.default_rng(0)
        batch = rng.standard_normal((4, 3, 8, 8))
        out = random_crop(batch, rng, padding=2)
        assert out.shape == batch.shape

    def test_random_crop_zero_padding_visible(self):
        rng = np.random.default_rng(0)
        batch = np.ones((50, 1, 4, 4))
        out = random_crop(batch, rng, padding=2)
        assert (out == 0).any()  # some crops include padded zeros

    def test_flip_probability(self):
        rng = np.random.default_rng(0)
        batch = np.arange(4.0)[None, None, None, :].repeat(200, axis=0)
        out = random_horizontal_flip(batch, rng, p=0.5)
        flipped = (out[:, 0, 0, 0] == 3.0).mean()
        assert 0.35 < flipped < 0.65

    def test_flip_p0_identity(self):
        rng = np.random.default_rng(0)
        batch = np.random.default_rng(1).standard_normal((5, 3, 4, 4))
        assert np.allclose(random_horizontal_flip(batch, rng, p=0.0), batch)

    def test_standard_augment_transform(self):
        rng = np.random.default_rng(0)
        batch = rng.standard_normal((4, 3, 8, 8))
        transform = standard_augment(padding=1)
        out = transform(batch, rng)
        assert out.shape == batch.shape

    def test_augment_does_not_mutate_input(self):
        rng = np.random.default_rng(0)
        batch = rng.standard_normal((4, 3, 8, 8))
        original = batch.copy()
        standard_augment()(batch, rng)
        assert np.allclose(batch, original)


class TestLabelNoise:
    def test_ratio_respected(self):
        labels = np.arange(1000) % 10
        noisy, mask = corrupt_symmetric(labels, 0.4, 10, seed=0)
        assert mask.sum() == 400
        # labels outside the mask untouched
        assert np.all(noisy[~mask] == labels[~mask])

    def test_symmetric_allows_same_label(self):
        # uniform over all classes: ~1/C of corrupted entries keep their label
        labels = np.zeros(2000, dtype=int)
        noisy, mask = corrupt_symmetric(labels, 1.0, 10, seed=0)
        same = (noisy[mask] == 0).mean()
        assert 0.05 < same < 0.15

    def test_zero_ratio_identity(self):
        labels = np.arange(50) % 5
        noisy, mask = corrupt_symmetric(labels, 0.0, 5, seed=0)
        assert np.all(noisy == labels)
        assert not mask.any()

    def test_invalid_ratio_raises(self):
        with pytest.raises(ValueError):
            corrupt_symmetric(np.zeros(10, dtype=int), 1.5, 10)

    def test_deterministic(self):
        labels = np.arange(100) % 10
        n1, m1 = corrupt_symmetric(labels, 0.3, 10, seed=7)
        n2, m2 = corrupt_symmetric(labels, 0.3, 10, seed=7)
        assert np.all(n1 == n2)
        assert np.all(m1 == m2)

    def test_corrupt_dataset(self):
        from repro.data import ArrayDataset

        ds = ArrayDataset(np.zeros((20, 2)), np.arange(20) % 4)
        noisy_ds, mask = corrupt_dataset(ds, 0.5, 4, seed=0)
        assert len(noisy_ds) == 20
        assert mask.sum() == 10
        assert noisy_ds.inputs is ds.inputs
