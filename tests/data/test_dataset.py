"""ArrayDataset and DataLoader."""

import numpy as np
import pytest

from repro.data import ArrayDataset, DataLoader


def make_dataset(n=20):
    rng = np.random.default_rng(0)
    return ArrayDataset(rng.standard_normal((n, 3)), np.arange(n))


class TestArrayDataset:
    def test_len_getitem(self):
        ds = make_dataset(10)
        assert len(ds) == 10
        x, y = ds[3]
        assert x.shape == (3,)
        assert y == 3

    def test_fancy_indexing(self):
        ds = make_dataset(10)
        x, y = ds[np.array([1, 3, 5])]
        assert x.shape == (3, 3)
        assert list(y) == [1, 3, 5]

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((3, 2)), np.zeros(4))

    def test_subset(self):
        ds = make_dataset(10)
        sub = ds.subset([0, 2, 4])
        assert len(sub) == 3
        assert list(sub.targets) == [0, 2, 4]

    def test_with_targets_shares_inputs(self):
        ds = make_dataset(5)
        ds2 = ds.with_targets(np.zeros(5, dtype=int))
        assert ds2.inputs is ds.inputs
        assert np.all(ds2.targets == 0)


class TestDataLoader:
    def test_batch_sizes(self):
        ds = make_dataset(10)
        loader = DataLoader(ds, batch_size=4, shuffle=False)
        sizes = [len(y) for _x, y in loader]
        assert sizes == [4, 4, 2]
        assert len(loader) == 3

    def test_drop_last(self):
        ds = make_dataset(10)
        loader = DataLoader(ds, batch_size=4, shuffle=False, drop_last=True)
        sizes = [len(y) for _x, y in loader]
        assert sizes == [4, 4]
        assert len(loader) == 2

    def test_covers_all_samples(self):
        ds = make_dataset(17)
        loader = DataLoader(ds, batch_size=5, shuffle=True, seed=3)
        seen = np.concatenate([y for _x, y in loader])
        assert sorted(seen) == list(range(17))

    def test_shuffle_reproducible_and_varies_per_epoch(self):
        ds = make_dataset(16)
        loader_a = DataLoader(ds, batch_size=16, shuffle=True, seed=5)
        loader_b = DataLoader(ds, batch_size=16, shuffle=True, seed=5)
        order_a1 = next(iter(loader_a))[1]
        order_b1 = next(iter(loader_b))[1]
        assert np.all(order_a1 == order_b1)
        order_a2 = next(iter(loader_a))[1]
        assert not np.all(order_a1 == order_a2)

    def test_no_shuffle_preserves_order(self):
        ds = make_dataset(8)
        loader = DataLoader(ds, batch_size=8, shuffle=False)
        _x, y = next(iter(loader))
        assert list(y) == list(range(8))

    def test_transform_applied(self):
        ds = make_dataset(6)
        loader = DataLoader(ds, batch_size=3, shuffle=False, transform=lambda x, rng: x * 0)
        for x, _y in loader:
            assert np.all(x == 0)

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            DataLoader(make_dataset(4), batch_size=0)
