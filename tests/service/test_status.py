"""``queue-status``: schema-versioned snapshot from lock-free reads."""

import json
import os
import time
from multiprocessing import get_context

from repro.experiments import TaskQueue, worker_loop
from repro.experiments.scheduler import DONE, LEASED, PENDING
from repro.io import file_lock
from repro.service import (
    STATUS_VERSION,
    Heartbeat,
    build_status,
    format_status,
)
from repro.tensor import dtype_name


def pinned(configs):
    return [
        config if config.dtype else config.with_overrides(dtype=dtype_name(None))
        for config in configs
    ]


TOP_LEVEL_KEYS = {
    "version", "generated_at", "cache_dir", "supervisor", "workers", "queues", "totals",
}
QUEUE_KEYS = {
    "name", "root", "lease_timeout", "max_attempts", "counts", "total",
    "remaining", "throughput_per_s", "eta_seconds", "leased_to",
}


class TestSchema:
    def test_empty_cache_is_still_a_valid_document(self, tmp_run_cache):
        status = build_status(tmp_run_cache)
        assert set(status) == TOP_LEVEL_KEYS
        assert status["version"] == STATUS_VERSION
        assert status["supervisor"] is None
        assert status["workers"] == [] and status["queues"] == []
        assert status["totals"]["tasks"] == 0
        json.dumps(status)  # machine-readable end to end

    def test_live_fleet_document(self, tmp_run_cache, tiny_grid):
        configs = pinned(tiny_grid(3))
        queue = TaskQueue.create(tmp_run_cache, "q")
        queue.enqueue(configs)
        heartbeat = Heartbeat(tmp_run_cache, "w-1")
        heartbeat.beat("idle", force=True)
        worker_loop(queue.root, worker="w-1", max_tasks=1, heartbeat=heartbeat)
        queue.claim("w-2")  # a lease held right now

        status = build_status(tmp_run_cache)
        assert set(status) == TOP_LEVEL_KEYS
        (qsec,) = status["queues"]
        assert set(qsec) == QUEUE_KEYS
        assert qsec["name"] == "q" and qsec["total"] == 3
        assert qsec["counts"][DONE] == 1
        assert qsec["counts"][LEASED] == 1
        assert qsec["counts"][PENDING] == 1
        assert qsec["remaining"] == 2
        assert qsec["leased_to"] == ["w-2"]
        assert qsec["throughput_per_s"] > 0  # one completion in the window
        assert qsec["eta_seconds"] is not None
        (worker,) = status["workers"]
        assert worker["worker"] == "w-1"
        assert worker["liveness"] == "alive"
        assert worker["tasks_done"] == 1
        assert status["totals"]["tasks"] == 3
        assert status["totals"]["workers_alive"] == 1
        json.dumps(status)

        text = format_status(status)
        assert "queue q: 3 task(s)" in text
        assert "worker w-1: alive" in text

    def test_eta_from_mean_task_seconds_when_window_empty(
        self, tmp_run_cache, tiny_grid
    ):
        """A just-resumed queue (history, no fresh completions) still
        estimates; a fake clock far in the future empties the window."""
        configs = pinned(tiny_grid(2))
        queue = TaskQueue.create(tmp_run_cache, "q")
        queue.enqueue(configs)
        worker_loop(queue.root, worker="w", max_tasks=1)
        status = build_status(
            tmp_run_cache, clock=lambda: time.time() + 3600, window=300.0
        )
        (qsec,) = status["queues"]
        # lifetime-throughput fallback: done tasks exist, so some ETA
        # is always offered for the remaining task
        assert qsec["remaining"] == 1
        assert qsec["eta_seconds"] is not None and qsec["eta_seconds"] > 0


class _HoldLocks:
    """Subprocess body: hold every queue lock the writers use."""

    def __init__(self, root, key, sentinel, seconds):
        self.root, self.key, self.sentinel, self.seconds = root, key, sentinel, seconds

    def __call__(self):
        with file_lock(os.path.join(self.root, "meta.json.lock")):
            with file_lock(os.path.join(self.root, "journal", self.key + ".lock")):
                with open(self.sentinel, "w") as fh:
                    fh.write("locked")
                time.sleep(self.seconds)


class TestLockFreedom:
    def test_snapshot_readable_while_locks_are_held(self, tmp_run_cache, tiny_grid):
        """The acceptance criterion: queue-status never blocks on (or
        takes) journal locks — it must return promptly even while
        another process holds every write lock on the queue."""
        configs = pinned(tiny_grid(1))
        queue = TaskQueue.create(tmp_run_cache, "q")
        queue.enqueue(configs)
        key = configs[0].cache_key()
        sentinel = os.path.join(tmp_run_cache, "locks-held")

        ctx = get_context("fork")
        holder = ctx.Process(target=_HoldLocks(queue.root, key, sentinel, seconds=30.0))
        holder.start()
        try:
            deadline = time.monotonic() + 10
            while not os.path.exists(sentinel) and time.monotonic() < deadline:
                time.sleep(0.01)
            assert os.path.exists(sentinel), "lock holder never started"
            start = time.monotonic()
            status = build_status(tmp_run_cache)
            elapsed = time.monotonic() - start
            assert elapsed < 5.0, f"status blocked on a queue lock ({elapsed:.1f}s)"
            (qsec,) = status["queues"]
            assert qsec["total"] == 1
        finally:
            holder.terminate()
            holder.join()
