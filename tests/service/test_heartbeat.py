"""Heartbeat files: throttled atomic writes, age-based liveness."""

import json
import os

from repro.service import (
    HEARTBEAT_VERSION,
    Heartbeat,
    heartbeat_dir,
    liveness,
    read_heartbeats,
)


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now


class TestHeartbeat:
    def test_beat_writes_versioned_document(self, tmp_run_cache):
        clock = FakeClock()
        hb = Heartbeat(tmp_run_cache, "host:1:abc", clock=clock)
        assert hb.beat("idle")
        with open(hb.path) as fh:
            doc = json.load(fh)
        assert doc["version"] == HEARTBEAT_VERSION
        assert doc["worker"] == "host:1:abc"
        assert doc["state"] == "idle"
        assert doc["beat_at"] == clock.now
        assert doc["tasks_done"] == 0
        # the worker name is sanitized into the filename
        assert os.path.basename(hb.path) == "host_1_abc.json"

    def test_beats_are_throttled_unless_state_changes(self, tmp_run_cache):
        clock = FakeClock()
        hb = Heartbeat(tmp_run_cache, "w", interval=2.0, clock=clock)
        assert hb.beat("idle")
        clock.now += 0.5
        assert not hb.beat("idle")  # same state, interval not elapsed
        assert hb.beat("running", key="k1")  # state change writes through
        clock.now += 0.5
        assert not hb.beat("running", key="k1")
        assert hb.beat("running", key="k2")  # key change writes through
        clock.now += 2.5
        assert hb.beat("running", key="k2")  # interval elapsed
        clock.now += 0.1
        assert hb.beat("running", key="k2", force=True)  # forced edge

    def test_close_marks_exited(self, tmp_run_cache):
        hb = Heartbeat(tmp_run_cache, "w", clock=FakeClock())
        hb.beat("running", key="k")
        hb.close()
        (entry,) = read_heartbeats(tmp_run_cache)
        assert entry["state"] == "exited"
        assert liveness(entry, 10_000.0) == "exited"  # never ages into dead

    def test_read_heartbeats_sorted_and_tolerant(self, tmp_run_cache):
        for name in ("b", "a", "c"):
            Heartbeat(tmp_run_cache, name, clock=FakeClock()).beat("idle")
        # torn/foreign files are surfaced as `unreadable` placeholders,
        # not fatal and not vanished (lock-free readers must tolerate
        # writers mid-flight, but a file that exists proves a worker
        # existed)
        with open(os.path.join(heartbeat_dir(tmp_run_cache), "torn.json"), "w") as fh:
            fh.write('{"version":')
        with open(os.path.join(heartbeat_dir(tmp_run_cache), "alien.json"), "w") as fh:
            json.dump({"version": HEARTBEAT_VERSION + 1}, fh)
        beats = read_heartbeats(tmp_run_cache)
        assert [e["worker"] for e in beats] == ["a", "alien", "b", "c", "torn"]
        by_worker = {e["worker"]: e for e in beats}
        for name in ("alien", "torn"):
            assert by_worker[name]["state"] == "unreadable"
            assert by_worker[name]["beat_at"] is None
        for name in ("a", "b", "c"):
            assert by_worker[name]["state"] == "idle"

    def test_unreadable_heartbeats_classify_stale(self, tmp_run_cache):
        # A zero-byte file (torn write: created but never renamed over)
        # and a truncated one must classify as `stale` — evidence of a
        # worker, no proof of life — without crashing the patrol.
        os.makedirs(heartbeat_dir(tmp_run_cache), exist_ok=True)
        open(os.path.join(heartbeat_dir(tmp_run_cache), "zero.json"), "w").close()
        with open(os.path.join(heartbeat_dir(tmp_run_cache), "trunc.json"), "w") as fh:
            fh.write('{"version": 1, "worker": "trunc", "pid": 1')
        beats = read_heartbeats(tmp_run_cache)
        assert [e["worker"] for e in beats] == ["trunc", "zero"]
        for entry in beats:
            assert liveness(entry, 1000.0) == "stale"

    def test_read_heartbeats_empty_cache(self, tmp_run_cache):
        assert read_heartbeats(tmp_run_cache) == []


class TestLiveness:
    def entry(self, beat_at, interval=2.0, state="running"):
        return {"state": state, "interval": interval, "beat_at": beat_at}

    def test_age_thresholds_scale_with_writer_interval(self):
        now = 1000.0
        assert liveness(self.entry(now - 1.0), now) == "alive"
        assert liveness(self.entry(now - 5.9), now) == "alive"  # <= 3 intervals
        assert liveness(self.entry(now - 6.1), now) == "stale"
        assert liveness(self.entry(now - 19.9), now) == "stale"  # <= 10 intervals
        assert liveness(self.entry(now - 20.1), now) == "dead"
        # a slow-beating worker is judged by its own declared cadence
        assert liveness(self.entry(now - 20.1, interval=30.0), now) == "alive"
