"""Step-granular lease renewal: long tasks on short lease timeouts.

The satellite drill for the fleet service: a trainer whose *task*
outlasts the queue's lease timeout many times over must finish with
its lease intact as long as individual *steps* are shorter than the
timeout (liveness is proven between steps) — while a genuinely dead
worker's lease still expires and is stolen on schedule.
"""

import time
from types import SimpleNamespace

import pytest

from repro.core.trainer import Callback
from repro.experiments import TaskQueue
from repro.experiments.scheduler import (
    DONE,
    StepLeaseRenewal,
    run_claimed_task,
    worker_identity,
)
from repro.tensor import dtype_name


def pinned(configs):
    return [
        config if config.dtype else config.with_overrides(dtype=dtype_name(None))
        for config in configs
    ]


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now


class TestRenewalSemantics:
    """Deterministic fake-clock drills over the renewal state machine."""

    def setup_queue(self, tmp_run_cache, tiny_grid, lease_timeout=10.0):
        clock = FakeClock()
        configs = pinned(tiny_grid(1))
        queue = TaskQueue.create(
            tmp_run_cache, "q", lease_timeout=lease_timeout, clock=lambda: clock.now
        )
        queue.enqueue(configs)
        return clock, queue, [c.cache_key() for c in configs]

    def test_slow_steps_outlasting_timeout_keep_lease(self, tmp_run_cache, tiny_grid):
        """20 steps of 6s on a 10s lease: 120s of work, never stolen."""
        clock, queue, keys = self.setup_queue(tmp_run_cache, tiny_grid)
        entry = queue.claim("plodder")
        renewal = StepLeaseRenewal(queue, entry["key"], "plodder", clock=clock)
        trainer = SimpleNamespace(stop_requested=False)
        for step in range(20):
            clock.now += 6.0  # each step > fraction*timeout, < timeout
            renewal.on_step_end(trainer, step)
            # the lease stayed live through the whole crawl: a thief
            # polling between every step never finds it expired
            assert queue.claim("thief") is None
        assert not renewal.lost and not trainer.stop_requested
        assert renewal.renewals == 20  # every 6s step crossed the 5s renew mark
        assert queue.journal.read(entry["key"])["attempts"] == 1

    def test_dead_workers_lease_still_stolen(self, tmp_run_cache, tiny_grid):
        """Renewal must not blunt the steal: no beats, no mercy."""
        clock, queue, keys = self.setup_queue(tmp_run_cache, tiny_grid)
        dead = queue.claim("dead-worker")
        assert dead is not None
        clock.now += 9.0
        assert queue.claim("thief") is None  # not yet expired
        clock.now += 2.0  # 11s since claim, no renewals in between
        stolen = queue.claim("thief")
        assert stolen is not None
        assert stolen["key"] == dead["key"] and stolen["attempts"] == 2

    def test_lost_lease_requests_trainer_stop(self, tmp_run_cache, tiny_grid):
        clock, queue, keys = self.setup_queue(tmp_run_cache, tiny_grid)
        entry = queue.claim("swapped-out")
        renewal = StepLeaseRenewal(queue, entry["key"], "swapped-out", clock=clock)
        clock.now += 11.0  # stalled past the timeout without a step
        thief = queue.claim("thief")
        assert thief is not None and thief["key"] == entry["key"]
        trainer = SimpleNamespace(stop_requested=False)
        renewal.on_step_end(trainer, 0)
        assert renewal.lost
        assert trainer.stop_requested  # further steps are wasted work
        # and the state is sticky: no renewal attempts after loss
        renewal.on_step_end(trainer, 1)
        assert renewal.renewals == 0

    def test_renewal_follows_live_timeout_updates(self, tmp_run_cache, tiny_grid):
        """An operator shortening the queue's timeout re-paces renewals."""
        clock, queue, keys = self.setup_queue(tmp_run_cache, tiny_grid)
        entry = queue.claim("w")
        renewal = StepLeaseRenewal(queue, entry["key"], "w", clock=clock)
        clock.now += 6.0
        renewal.on_step_end(None, 0)
        assert renewal.renewals == 1
        TaskQueue.create(queue.cache_dir, "q", lease_timeout=2.0)
        clock.now += 6.0  # due under either timeout; renew refreshes meta
        renewal.on_step_end(None, 1)
        assert renewal.lease_timeout == 2.0
        clock.now += 1.5  # not due under 10s, due under 2s
        renewal.on_step_end(None, 2)
        assert renewal.renewals == 3

    def test_heartbeat_beats_between_steps(self, tmp_run_cache, tiny_grid):
        from repro.service import Heartbeat, read_heartbeats

        clock, queue, keys = self.setup_queue(tmp_run_cache, tiny_grid)
        entry = queue.claim("w")
        heartbeat = Heartbeat(tmp_run_cache, "w", clock=clock)
        renewal = StepLeaseRenewal(
            queue, entry["key"], "w", heartbeat=heartbeat, clock=clock
        )
        renewal.on_step_end(None, 0)
        (beat,) = read_heartbeats(tmp_run_cache)
        assert beat["state"] == "running"
        assert beat["key"] == entry["key"]
        assert beat["queue"] == "q"


class SlowStep(Callback):
    """Per-step brake: makes real smoke runs outlast a real timeout."""

    def __init__(self, seconds):
        self.seconds = seconds

    def on_step_end(self, trainer, step):
        time.sleep(self.seconds)


def slow_factory(config):
    return [SlowStep(0.1)]


@pytest.mark.slow
class TestRenewalEndToEnd:
    def test_real_run_outlasting_timeout_finishes_unstolen(
        self, tmp_run_cache, tiny_grid
    ):
        """The full integration: a genuine trainer, real wall-clock, a
        lease timeout several times shorter than the task."""
        configs = pinned(tiny_grid(1, epochs=5))
        queue = TaskQueue.create(tmp_run_cache, "q", lease_timeout=0.4)
        queue.enqueue(configs)
        worker = worker_identity()
        entry = queue.claim(worker)
        record = run_claimed_task(queue, entry, worker, callback_factory=slow_factory)
        assert record is not None and record.ok  # resolve passed: lease held
        assert record.seconds > 0.4  # the task really did outlast the timeout
        stored = queue.journal.read(entry["key"])
        assert stored["status"] == DONE
        assert stored["attempts"] == 1  # never stolen
