"""CLI surface of the fleet service: serve and queue-status verbs."""

import io
import json
import os

import pytest

from repro.experiments import TaskQueue, worker_loop
from repro.experiments.cli import (
    build_parser,
    main,
    run_queue_status_command,
    run_serve_command,
)
from repro.service import STATUS_VERSION
from repro.tensor import dtype_name


def pinned(configs):
    return [
        config if config.dtype else config.with_overrides(dtype=dtype_name(None))
        for config in configs
    ]


class TestParsing:
    def test_serve_verb_parses(self):
        args = build_parser().parse_args(
            ["serve", "--workers", "4", "--poll", "0.1", "--until-drained",
             "--max-seconds", "30", "--heartbeat-interval", "1.5"]
        )
        assert args.artifact == "serve"
        assert args.workers == 4
        assert args.poll == 0.1
        assert args.until_drained
        assert args.max_seconds == 30
        assert args.heartbeat_interval == 1.5

    def test_queue_status_verb_parses(self):
        args = build_parser().parse_args(["queue-status", "--json", "-"])
        assert args.artifact == "queue-status"
        assert args.json == "-"
        # bare --json means stdout too
        args = build_parser().parse_args(["queue-status", "--json"])
        assert args.json == "-"
        args = build_parser().parse_args(["queue-status"])
        assert args.json is None


class TestQueueStatus:
    def seed_queue(self, tmp_run_cache, tiny_grid, name="q"):
        configs = pinned(tiny_grid(2))
        queue = TaskQueue.create(tmp_run_cache, name)
        queue.enqueue(configs)
        worker_loop(queue.root, worker="w", max_tasks=1)
        return queue

    def test_human_and_json_file_output(
        self, tmp_run_cache, tiny_grid, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", tmp_run_cache)
        self.seed_queue(tmp_run_cache, tiny_grid)
        json_path = str(tmp_path / "status.json")
        args = build_parser().parse_args(["queue-status", "--json", json_path])
        out = io.StringIO()
        assert run_queue_status_command(args, out=out) == 0
        text = out.getvalue()
        assert "queue q: 2 task(s)" in text and "1 done" in text
        with open(json_path) as fh:
            doc = json.load(fh)
        assert doc["version"] == STATUS_VERSION
        assert doc["queues"][0]["counts"]["done"] == 1

    def test_json_dash_streams_to_stdout(
        self, tmp_run_cache, tiny_grid, monkeypatch, capsys
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", tmp_run_cache)
        self.seed_queue(tmp_run_cache, tiny_grid)
        assert main(["queue-status", "--json", "-"]) == 0
        stdout = capsys.readouterr().out
        # the JSON document is on stdout, parseable after the human text
        doc = json.loads(stdout[stdout.index("{"):])
        assert doc["version"] == STATUS_VERSION
        assert doc["totals"]["tasks"] == 2

    def test_queue_restriction(self, tmp_run_cache, tiny_grid, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", tmp_run_cache)
        self.seed_queue(tmp_run_cache, tiny_grid, name="first")
        TaskQueue.create(tmp_run_cache, "second")
        args = build_parser().parse_args(["queue-status", "--queue", "first"])
        out = io.StringIO()
        run_queue_status_command(args, out=out)
        text = out.getvalue()
        assert "first" in text and "second" not in text


@pytest.mark.slow
class TestServeVerb:
    def test_serve_until_drained_executes_queue(
        self, tmp_run_cache, tiny_grid, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", tmp_run_cache)
        configs = pinned(tiny_grid(2))
        queue = TaskQueue.create(tmp_run_cache, "q")
        queue.enqueue(configs)
        args = build_parser().parse_args(
            ["serve", "--workers", "2", "--poll", "0.05", "--until-drained",
             "--max-seconds", "300"]
        )
        out = io.StringIO()
        assert run_serve_command(args, out=out) == 0
        assert queue.drained()
        assert queue.counts()["done"] == 2
        text = out.getvalue()
        assert "fleet supervisor: 2 worker(s)" in text
        assert "supervisor: stopped" in text
        # the supervisor state file landed under the cache's service dir
        assert os.path.exists(os.path.join(tmp_run_cache, "service", "supervisor.json"))
