"""Fleet supervisor: restart drill, quarantine patrol, resident pool.

The in-repo version of CI's ``fleet-drill`` job: start a supervised
pool, SIGKILL a worker mid-lease, and require the sweep to complete
bit-identically to a serial run — with the poison config (a task that
always raises) retried to exhaustion and quarantined instead of eating
workers forever.  Multiprocessing uses ``fork`` for speed; the
engine's own default stays ``spawn``.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.experiments import TaskQueue, run_sweep, worker_loop
from repro.experiments.scheduler import DONE, ERROR, PENDING, QUARANTINED
from repro.service import (
    FleetSupervisor,
    build_status,
    discover_queues,
    read_supervisor_state,
)
from repro.tensor import dtype_name


def pinned(configs):
    return [
        config if config.dtype else config.with_overrides(dtype=dtype_name(None))
        for config in configs
    ]


def assert_same_records(report_a, report_b):
    assert [r.key for r in report_a.records] == [r.key for r in report_b.records]
    for a, b in zip(report_a.records, report_b.records):
        assert a.status == b.status
        assert a.train_acc == b.train_acc
        assert a.test_acc == b.test_acc


def assert_same_cache_entries(dir_a, dir_b, records):
    for record in records:
        if not record.ok:
            continue
        path_a = os.path.join(dir_a, record.key, "state.npz")
        path_b = os.path.join(dir_b, record.key, "state.npz")
        with np.load(path_a) as a, np.load(path_b) as b:
            assert set(a.files) == set(b.files)
            for name in a.files:
                assert np.array_equal(a[name], b[name]), (record.key, name)


def make_supervisor(cache_dir, **kwargs):
    kwargs.setdefault("mp_context", "fork")
    kwargs.setdefault("poll", 0.05)
    kwargs.setdefault("worker_poll", 0.02)
    return FleetSupervisor(cache_dir, **kwargs)


class TestDiscovery:
    def test_discover_queues(self, tmp_run_cache, tiny_grid):
        assert discover_queues(tmp_run_cache) == []
        TaskQueue.create(tmp_run_cache, "beta")
        TaskQueue.create(tmp_run_cache, "alpha")
        roots = discover_queues(tmp_run_cache)
        assert [os.path.basename(r) for r in roots] == ["alpha", "beta"]
        assert discover_queues(tmp_run_cache, queues=["beta"]) == [roots[1]]
        # a directory without meta.json is not a queue yet
        os.makedirs(os.path.join(tmp_run_cache, "queue", "half-born"))
        assert len(discover_queues(tmp_run_cache)) == 2


class TestPatrol:
    def test_retry_errors_until_quarantine(self, tmp_run_cache, tiny_grid):
        """The poison path: a config that always raises is retried by
        the patrol until max_attempts, then parked as quarantined with
        its last error record preserved."""
        bad = [c.with_overrides(dataset="no_such_dataset") for c in pinned(tiny_grid(1))]
        queue = TaskQueue.create(tmp_run_cache, "q", max_attempts=2)
        queue.enqueue(bad)
        key = bad[0].cache_key()

        worker_loop(queue.root, worker="w-1", wait=False)
        entry = queue.journal.read(key)
        assert entry["status"] == ERROR and entry["attempts"] == 1

        # patrol #1: attempts below the cap -> back to pending
        assert queue.retry_errors() == ([key], [])
        assert queue.journal.read(key)["status"] == PENDING

        worker_loop(queue.root, worker="w-2", wait=False)
        entry = queue.journal.read(key)
        assert entry["status"] == ERROR and entry["attempts"] == 2

        # patrol #2: cap reached -> quarantined, error record kept
        assert queue.retry_errors() == ([], [key])
        entry = queue.journal.read(key)
        assert entry["status"] == QUARANTINED
        assert "no_such_dataset" in entry["record"]["error"]
        assert queue.drained()
        # a quarantined task is terminal for further patrols too
        assert queue.retry_errors() == ([], [])

    def test_supervisor_patrol_spans_queues(self, tmp_run_cache, tiny_grid):
        bad = [c.with_overrides(dataset="no_such_dataset") for c in pinned(tiny_grid(1))]
        for name in ("qa", "qb"):
            queue = TaskQueue.create(tmp_run_cache, name, max_attempts=1)
            queue.enqueue(bad)
            worker_loop(queue.root, worker="w", wait=False)
        supervisor = make_supervisor(tmp_run_cache, workers=1, patrol=True)
        # patrol without ever starting the pool: monitor_once on an
        # unstarted supervisor still sweeps the queues
        result = supervisor.monitor_once()
        assert result["quarantined"] == [bad[0].cache_key()] * 2
        assert supervisor.quarantined_total == 2
        for name in ("qa", "qb"):
            root = os.path.join(tmp_run_cache, "queue", name)
            assert TaskQueue(root).journal.read(bad[0].cache_key())["status"] == QUARANTINED


@pytest.mark.slow
class TestFleetDrill:
    def wait_for(self, predicate, timeout=120.0, poll=0.01, message="condition"):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if predicate():
                return
            time.sleep(poll)
        pytest.fail(f"timed out waiting for {message}")

    def test_sigkill_restart_quarantine_and_parity(self, tmp_run_cache, tiny_grid):
        """The full acceptance drill: kill -9 a fleet worker mid-sweep,
        require an automatic restart, a completed sweep bit-identical
        to serial, and the always-raising config quarantined."""
        good = pinned(tiny_grid(4, epochs=2))
        poison = good[0].with_overrides(dataset="no_such_dataset")
        grid = good + [poison]
        queue = TaskQueue.create(
            tmp_run_cache, "drill", lease_timeout=0.5, max_attempts=2
        )
        queue.enqueue(grid)

        supervisor = make_supervisor(tmp_run_cache, workers=2)
        supervisor.start()
        try:
            # wait until some worker holds a lease, then murder it
            self.wait_for(
                lambda: any(
                    e["status"] == "leased" for e in queue.snapshot().values()
                ),
                message="a worker to lease a task",
            )
            victim = supervisor.slots[0]["proc"]
            os.kill(victim.pid, signal.SIGKILL)
            victim.join()
            assert victim.exitcode == -signal.SIGKILL

            # supervise to completion: restarts + patrol until drained
            def drained():
                supervisor.monitor_once()
                return supervisor.queues_drained()

            self.wait_for(drained, poll=0.05, message="the drill queue to drain")
        finally:
            supervisor.stop()

        # the murdered slot was restarted
        state = read_supervisor_state(tmp_run_cache)
        assert state["status"] == "stopped"
        assert state["restarts_total"] >= 1
        assert supervisor.slots[0]["restarts"] >= 1

        # the poison config was quarantined after exhausting attempts
        snapshot = queue.snapshot()
        assert snapshot[poison.cache_key()]["status"] == QUARANTINED
        assert "no_such_dataset" in snapshot[poison.cache_key()]["record"]["error"]

        # every good config completed despite the murder...
        for config in good:
            assert snapshot[config.cache_key()]["status"] == DONE

        # ...bit-identically to a serial run of the same grid
        serial = run_sweep(good, workers=1, cache_dir=tmp_run_cache + "-serial")
        fleet_records = [queue.record_for(snapshot[c.cache_key()]) for c in good]
        assert [r.test_acc for r in fleet_records] == [
            r.test_acc for r in serial.records
        ]
        assert_same_cache_entries(
            tmp_run_cache, tmp_run_cache + "-serial", serial.records
        )

        # the status snapshot saw it all
        status = build_status(tmp_run_cache)
        (qsec,) = status["queues"]
        assert qsec["counts"][QUARANTINED] == 1
        assert qsec["counts"][DONE] == 4

    def test_workers_zero_submits_to_resident_fleet(self, tmp_run_cache, tiny_grid):
        """`run_sweep(workers=0)` spawns nothing: the resident pool
        executes the grid while the sweep call only tails the journal —
        and a second grid reuses the same pool."""
        supervisor = make_supervisor(tmp_run_cache, workers=2)
        supervisor.start()
        try:
            first = run_sweep(
                pinned(tiny_grid(2)),
                workers=0,
                scheduler="queue",
                cache_dir=tmp_run_cache,
            )
            assert first.n_ok == 2 and first.workers == 0
            second = run_sweep(
                pinned(tiny_grid(3, method="grad_l1")),
                workers=0,
                scheduler="queue",
                cache_dir=tmp_run_cache,
            )
            assert second.n_ok == 3
            assert second.queue != first.queue  # distinct grids, one pool
        finally:
            supervisor.stop()
        serial = run_sweep(
            pinned(tiny_grid(2)), workers=1, cache_dir=tmp_run_cache + "-serial"
        )
        assert_same_records(serial, first)
        assert_same_cache_entries(
            tmp_run_cache, tmp_run_cache + "-serial", serial.records
        )

    def test_workers_zero_requires_queue_scheduler(self, tmp_run_cache, tiny_grid):
        with pytest.raises(ValueError, match="workers=0"):
            run_sweep(pinned(tiny_grid(1)), workers=0, cache_dir=tmp_run_cache)

    def test_serve_until_drained_bounded_run(self, tmp_run_cache, tiny_grid):
        """serve(until_drained=True) executes pending work, then exits
        and stops its pool — the CI drill entry point."""
        configs = pinned(tiny_grid(2))
        queue = TaskQueue.create(tmp_run_cache, "q")
        queue.enqueue(configs)
        supervisor = make_supervisor(tmp_run_cache, workers=2)
        supervisor.serve(until_drained=True, max_seconds=120)
        assert queue.drained()
        assert queue.counts()[DONE] == 2
        state = read_supervisor_state(tmp_run_cache)
        assert state["status"] == "stopped"
        assert not any(slot["proc"].is_alive() for slot in supervisor.slots)
        # supervisor.log exists for the post-mortem artifact
        assert os.path.exists(supervisor.log_path)
        with open(supervisor.log_path) as fh:
            text = fh.read()
        assert "spawned fleet-0" in text and "stopped" in text
