"""Serving harness: lease state machine, worker loop, server, SIGKILL drill.

The fault-model claims under test (see ``docs/serving.md``):

* a lapsed lease is stolen and the loser's resolve is a no-op;
* ``max_attempts`` lease expiries turn the batch ``error`` and fail its
  requests instead of hanging their clients;
* a poison batch is contained — the worker survives, the clients get
  error markers;
* SIGKILLing a worker process mid-batch loses nothing: a survivor
  re-claims after the lease lapses and every client still gets exactly
  one response, bit-identical to the offline forward.
"""

import os
import signal
import time
from multiprocessing import get_context

import numpy as np
import pytest

from repro.models import create_model
from repro.serving import (
    BatchJournal,
    InferenceServer,
    MicroBatcher,
    RequestStore,
    ServingError,
    publish_artifact,
    model_spec,
    read_stats,
    worker_loop,
)
from repro.serving.server import DONE, ERROR, LEASED, PENDING, _worker_main
from repro.tensor import Tensor, no_grad


class FakeClock:
    def __init__(self, now=100.0):
        self.now = now

    def __call__(self):
        return self.now


def publish_mlp(cache_dir, seed=3):
    model = create_model("mlp", num_classes=3, in_channels=6, scale=0.25, seed=seed)
    model.eval()
    spec = model_spec("mlp", num_classes=3, in_channels=6, scale=0.25)
    return publish_artifact(model, spec, cache_dir=cache_dir), model


class RaisingModel:
    def __call__(self, x):
        raise RuntimeError("poison input")


class TestLeaseStateMachine:
    def test_claim_stamps_worker_and_expiry(self, tmp_path):
        clock = FakeClock()
        journal = BatchJournal(str(tmp_path), lease_timeout=5.0, clock=clock)
        journal.enqueue("batch-00000000", ["r0", "r1"])
        record = journal.claim("worker-a")
        assert record["status"] == LEASED
        assert record["worker"] == "worker-a"
        assert record["attempts"] == 1
        assert record["lease_expires"] == clock.now + 5.0
        # nothing else claimable while the lease is live
        assert journal.claim("worker-b") is None

    def test_lapsed_lease_is_stolen_and_stale_resolve_is_noop(self, tmp_path):
        clock = FakeClock()
        journal = BatchJournal(str(tmp_path), lease_timeout=5.0, clock=clock)
        journal.enqueue("batch-00000000", ["r0"])
        journal.claim("worker-a")
        clock.now += 5.0  # lease lapses
        stolen = journal.claim("worker-b")
        assert stolen["worker"] == "worker-b" and stolen["attempts"] == 2
        # the original worker cannot clobber the thief's lease...
        after = journal.resolve("batch-00000000", "worker-a")
        assert after["status"] == LEASED and after["worker"] == "worker-b"
        # ...and the thief's resolve lands
        final = journal.resolve("batch-00000000", "worker-b")
        assert final["status"] == DONE and final["worker"] is None

    def test_max_attempts_marks_error_and_unhangs_clients(self, tmp_path):
        clock = FakeClock()
        journal = BatchJournal(str(tmp_path), lease_timeout=1.0, max_attempts=3, clock=clock)
        store = RequestStore(str(tmp_path), clock=clock)
        store.submit(np.zeros(2, dtype=np.float32), "r0")
        journal.enqueue("batch-00000000", ["r0"])
        for _ in range(3):
            assert journal.claim("crashy")["status"] == LEASED
            clock.now += 1.0
        assert journal.claim("crashy") is None  # backstop fired mid-scan
        record = journal.journal.read("batch-00000000")
        assert record["status"] == ERROR
        assert "lease expired" in record["error"]
        with pytest.raises(ServingError, match="lease expired"):
            store.try_response("r0")

    def test_resolve_with_error(self, tmp_path):
        journal = BatchJournal(str(tmp_path), clock=FakeClock())
        journal.enqueue("batch-00000000", ["r0"])
        journal.claim("worker-a")
        record = journal.resolve("batch-00000000", "worker-a", error="boom")
        assert record["status"] == ERROR and record["error"] == "boom"
        assert journal.drained()

    def test_enqueue_is_idempotent(self, tmp_path):
        journal = BatchJournal(str(tmp_path), clock=FakeClock())
        journal.enqueue("batch-00000000", ["r0"])
        journal.claim("worker-a")
        record = journal.enqueue("batch-00000000", ["r0", "r1"])
        assert record["status"] == LEASED  # first write won; re-enqueue is a no-op
        assert record["requests"] == ["r0"]


class TestWorkerLoop:
    def test_poison_batch_contained_worker_survives(self, tmp_path):
        clock = FakeClock()
        root = str(tmp_path)
        store = RequestStore(root, clock=clock)
        journal = BatchJournal(root, clock=clock)
        for request_id in ("r0", "r1"):
            store.submit(np.zeros(2, dtype=np.float32), request_id)
        journal.enqueue("batch-00000000", ["r0", "r1"])
        served = worker_loop(root, RaisingModel(), drain=True, clock=clock)
        assert served == 0  # the loop drained without dying
        record = journal.journal.read("batch-00000000")
        assert record["status"] == ERROR and "poison input" in record["error"]
        for request_id in ("r0", "r1"):
            with pytest.raises(ServingError, match="poison input"):
                store.try_response(request_id)

    def test_max_batches_bounds_the_loop(self, tmp_path):
        clock = FakeClock()
        root = str(tmp_path)
        store = RequestStore(root, clock=clock)
        journal = BatchJournal(root, clock=clock)
        model = create_model("mlp", num_classes=3, in_channels=2, scale=0.25, seed=0)
        model.eval()
        for index in range(3):
            store.submit(np.zeros((1, 2), dtype=np.float32), f"r{index}")
            journal.enqueue(f"batch-{index:08d}", [f"r{index}"])
        assert worker_loop(root, model, max_batches=2, clock=clock) == 2
        assert journal.counts()[PENDING] == 1


class TestInferenceServer:
    def test_end_to_end_bit_identical_with_stats(self, tmp_path):
        cache = str(tmp_path)
        manifest, model = publish_mlp(cache)
        rng = np.random.default_rng(0)
        xs = [rng.standard_normal((1, 6)).astype(np.float32) for _ in range(10)]
        with no_grad():
            references = [model(Tensor(x)).data for x in xs]
        server = InferenceServer(
            manifest.key, cache_dir=cache, workers=2, max_batch=4, max_delay=0.005
        )
        with server:
            client = server.client()
            ids = [client.submit(x) for x in xs]
            responses = [client.result(request_id, timeout=30.0) for request_id in ids]
            server.drain(timeout=30.0)
        for response, reference in zip(responses, references):
            assert response.dtype == reference.dtype
            assert np.array_equal(response, reference)
        stats = read_stats(server.root)
        assert stats.requests_total == 10
        assert stats.served_total == 10
        assert stats.queue_depth == 0
        assert stats.re_served_total == 0
        assert 3 <= stats.batches_total <= 10  # max_batch=4 over 10 requests
        assert stats.artifact == manifest.key
        # liveness: the batcher and both workers left heartbeat files
        beats = os.listdir(os.path.join(server.root, "service", "heartbeats"))
        assert len(beats) == 3

    def test_request_convenience_and_restart(self, tmp_path):
        cache = str(tmp_path)
        manifest, model = publish_mlp(cache)
        x = np.ones((1, 6), dtype=np.float32)
        with no_grad():
            reference = model(Tensor(x)).data
        with InferenceServer(
            manifest.key, cache_dir=cache, name="srv", workers=1, max_delay=0.002
        ) as server:
            assert np.array_equal(server.client().request(x, timeout=30.0), reference)
        # a second server over the same directory resumes cleanly
        with InferenceServer(
            manifest.key, cache_dir=cache, name="srv", workers=1, max_delay=0.002
        ) as server:
            assert np.array_equal(
                server.client().request(2 * x, timeout=30.0),
                _offline(model, 2 * x),
            )
        stats = read_stats(server.root)
        assert stats.served_total == 2  # the journal carried across restarts

    def test_unknown_artifact_refused(self, tmp_path):
        with pytest.raises(KeyError):
            InferenceServer("feedfacefeedface", cache_dir=str(tmp_path))


def _offline(model, x):
    with no_grad():
        return model(Tensor(x)).data


@pytest.mark.slow
class TestSigkillDrill:
    def test_sigkill_worker_mid_batch_survivor_re_serves(self, tmp_path):
        """The acceptance drill: SIGKILL a worker process holding a
        lease; after the lease lapses a survivor re-claims and every
        client gets exactly one bit-identical response."""
        cache = str(tmp_path)
        model = create_model(
            "resnet8", num_classes=4, in_channels=3, scale=1.0, seed=0, image_size=8
        )
        model.eval()
        spec = model_spec("resnet8", num_classes=4, in_channels=3, scale=1.0, image_size=8)
        manifest = publish_artifact(model, spec, cache_dir=cache)

        root = os.path.join(cache, "serving", "drill")
        clock = time.time
        store = RequestStore(root, clock=clock)
        journal = BatchJournal(root, lease_timeout=0.5, clock=clock)
        batcher = MicroBatcher(root, journal, max_batch=12, max_delay=0.001, clock=clock)
        rng = np.random.default_rng(42)
        xs = {
            store.submit(rng.standard_normal((1, 3, 8, 8)).astype(np.float32)): None
            for _ in range(12)
        }
        batcher.poll(force=True)
        (key,) = list(journal.snapshot())

        ctx = get_context("fork")
        victim = ctx.Process(
            target=_worker_main,
            args=((root, manifest.key, cache, "victim:drill", 0.5),),
        )
        victim.start()
        # Wait for the lease AND the victim's running-heartbeat — the
        # beat lands between claim and serve, so killing after it is
        # still mid-batch, but guarantees the post-mortem file exists.
        beat_dir = os.path.join(root, "service", "heartbeats")
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            leased = journal.journal.read(key)["status"] == LEASED
            if leased and os.path.isdir(beat_dir) and os.listdir(beat_dir):
                break
            time.sleep(0.0005)
        else:
            pytest.fail("victim never leased the batch")
        os.kill(victim.pid, signal.SIGKILL)
        victim.join()
        assert victim.exitcode == -signal.SIGKILL

        # the victim died mid-batch: its heartbeat file is stale, the
        # lease is still stamped with its identity
        record = journal.journal.read(key)
        assert record["status"] == LEASED and record["worker"] == "victim:drill"

        survivor_model = create_model(
            "resnet8", num_classes=4, in_channels=3, scale=1.0, seed=0, image_size=8
        )
        survivor_model.eval()
        served = worker_loop(
            root, survivor_model, worker="survivor:drill",
            lease_timeout=0.5, drain=True,
        )
        assert served == 1
        record = journal.journal.read(key)
        assert record["status"] == DONE
        assert record["attempts"] == 2  # the steal is visible in the journal

        with no_grad():
            for request_id in xs:
                x, _at = store.load(request_id)
                reference = model(Tensor(x)).data
                response = store.try_response(request_id)
                assert response is not None
                assert np.array_equal(response, reference)
        # the victim's heartbeat survives for the post-mortem
        beats = os.listdir(os.path.join(root, "service", "heartbeats"))
        assert any("victim" in name for name in beats)
