"""Smoke-run the edge-deployment example against the real server."""

import os
import subprocess
import sys

import pytest

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", ".."))
EXAMPLE = os.path.join(REPO_ROOT, "examples", "edge_deployment_pipeline.py")


@pytest.mark.slow
def test_edge_deployment_example_fast_mode(tmp_path):
    """REPRO_FAST=1 runs the whole pipeline — train, quantize, publish,
    serve — and exits 0 only if served responses are bit-identical."""
    env = dict(
        os.environ,
        REPRO_FAST="1",
        REPRO_CACHE_DIR=str(tmp_path / "cache"),
        PYTHONPATH=os.path.join(REPO_ROOT, "src"),
    )
    proc = subprocess.run(
        [sys.executable, EXAMPLE],
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "published artifact" in proc.stdout
    assert "bit-identical to offline forward: True" in proc.stdout
