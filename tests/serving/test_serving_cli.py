"""CLI serving verbs: publish-artifact, list-artifacts, serve-model."""

import io
import json
import threading
import time

import numpy as np
import pytest

from repro.experiments.cli import (
    build_parser,
    main,
    run_list_artifacts_command,
    run_serve_model_command,
)
from repro.models import create_model
from repro.serving import (
    ServingClient,
    load_artifact,
    model_spec,
    publish_artifact,
    server_root,
)
from repro.tensor import Tensor, no_grad


class TestParser:
    def test_publish_artifact_flags(self):
        args = build_parser().parse_args(
            ["publish-artifact", "--paper-model", "ResNet20-fast",
             "--weight-bits", "8", "--act-bits", "8", "--bn-fold"]
        )
        assert args.artifact == "publish-artifact"
        assert args.weight_bits == 8 and args.act_bits == 8 and args.bn_fold

    def test_serve_model_flags(self):
        args = build_parser().parse_args(
            ["serve-model", "--artifact", "abc123", "--max-batch", "4",
             "--max-delay-ms", "2.5", "--server-name", "edge"]
        )
        assert args.artifact == "serve-model"
        assert args.artifact_key == "abc123"
        assert args.max_batch == 4 and args.max_delay_ms == 2.5
        assert args.server_name == "edge"


class TestListArtifacts:
    def test_empty_store(self, tmp_run_cache, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", tmp_run_cache)
        out = io.StringIO()
        args = build_parser().parse_args(["list-artifacts"])
        assert run_list_artifacts_command(args, out=out) == 0
        assert "no artifacts" in out.getvalue()

    def test_lists_published_manifests(self, tmp_run_cache, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", tmp_run_cache)
        model = create_model("mlp", num_classes=3, in_channels=6, scale=0.25, seed=1)
        model.eval()
        manifest = publish_artifact(
            model, model_spec("mlp", num_classes=3, in_channels=6, scale=0.25)
        )
        out = io.StringIO()
        args = build_parser().parse_args(["list-artifacts"])
        assert run_list_artifacts_command(args, out=out) == 0
        listing = out.getvalue()
        assert manifest.key in listing
        assert "mlp x0.25" in listing


class TestPublishArtifact:
    def test_publish_quantized_smoke_run(self, tmp_run_cache, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", tmp_run_cache)
        json_path = str(tmp_path / "manifest.json")
        code = main(
            ["publish-artifact", "--profile", "smoke", "--bn-fold",
             "--weight-bits", "8", "--act-bits", "8", "--json", json_path]
        )
        assert code == 0
        with open(json_path) as fh:
            payload = json.load(fh)
        artifact = load_artifact(payload["key"])
        assert artifact.manifest.bn_folded is True
        assert artifact.manifest.weight_quant.bits == 8
        assert artifact.manifest.activation_quant.bits == 8
        assert artifact.manifest.source.startswith("run:")
        model = artifact.build_model()  # the manifest recipe reconstructs
        x = np.zeros((1, 3, 8, 8), dtype=np.float32)
        with no_grad():
            assert model(Tensor(x)).data.shape == (1, 10)

    def test_act_bits_requires_weight_bits(self, tmp_run_cache, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", tmp_run_cache)
        with pytest.raises(SystemExit, match="--act-bits requires"):
            main(["publish-artifact", "--profile", "smoke", "--act-bits", "8"])


class TestServeModel:
    def test_serves_requests_until_deadline(self, tmp_run_cache, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", tmp_run_cache)
        model = create_model("mlp", num_classes=3, in_channels=6, scale=0.25, seed=1)
        model.eval()
        manifest = publish_artifact(
            model, model_spec("mlp", num_classes=3, in_channels=6, scale=0.25)
        )
        x = np.ones((1, 6), dtype=np.float32)
        with no_grad():
            reference = model(Tensor(x)).data
        root = server_root("cli-serve", tmp_run_cache)
        collected = {}

        def drive():
            collected["response"] = ServingClient(root).request(x, timeout=20.0)

        driver = threading.Thread(target=drive)
        driver.start()
        out = io.StringIO()
        args = build_parser().parse_args(
            ["serve-model", "--artifact", manifest.key, "--server-name", "cli-serve",
             "--max-seconds", "1.5", "--workers", "1", "--max-delay-ms", "2"]
        )
        started = time.monotonic()
        assert run_serve_model_command(args, out=out) == 0
        assert time.monotonic() - started < 20.0
        driver.join(timeout=20.0)
        assert np.array_equal(collected["response"], reference)
        assert "served 1 request(s)" in out.getvalue()

    def test_requires_artifact_key(self, tmp_run_cache, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", tmp_run_cache)
        with pytest.raises(SystemExit, match="requires --artifact"):
            main(["serve-model"])

    def test_unknown_key_is_a_clean_error(self, tmp_run_cache, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", tmp_run_cache)
        with pytest.raises(SystemExit, match="no artifact"):
            main(["serve-model", "--artifact", "feedfacefeedface"])
