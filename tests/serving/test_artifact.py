"""Artifact store: publish/load round-trips must be bit-identical.

The serving layer's determinism contract rests on ``build_model()``
reconstructing exactly the model that was published — plain, BN-folded
and fully quantized (weights + frozen activation ranges).  These tests
pin that contract, plus content addressing (identical content is a
cache hit, different content is a different key) and the store's error
paths.
"""

import os

import numpy as np
import pytest

from repro.models import create_model
from repro.quant import fold_batchnorms, quantize_weights_and_activations
from repro.serving import (
    ARTIFACT_FILES,
    artifact_cache,
    list_artifacts,
    load_artifact,
    mixed_weight_quant,
    model_spec,
    publish_artifact,
    uniform_weight_quant,
)
from repro.tensor import Tensor, no_grad

MODEL = dict(name="resnet8", num_classes=4, in_channels=3, scale=0.5, image_size=8)


def make_model(seed=0):
    model = create_model(
        MODEL["name"],
        num_classes=MODEL["num_classes"],
        in_channels=MODEL["in_channels"],
        scale=MODEL["scale"],
        seed=seed,
        image_size=MODEL["image_size"],
    )
    model.eval()
    return model


def batch(seed=0, n=4):
    rng = np.random.default_rng(seed)
    return rng.standard_normal(
        (n, MODEL["in_channels"], MODEL["image_size"], MODEL["image_size"])
    ).astype(np.float32)


def assert_forward_bit_identical(a, b, x):
    with no_grad():
        ya = a(Tensor(x)).data
        yb = b(Tensor(x)).data
    assert ya.dtype == yb.dtype
    assert np.array_equal(ya, yb)


class TestRoundTrip:
    def test_plain_model_round_trips_bit_identical(self, tmp_path):
        model = make_model()
        manifest = publish_artifact(model, model_spec(**MODEL), cache_dir=str(tmp_path))
        rebuilt = load_artifact(manifest.key, str(tmp_path)).build_model()
        x = batch()
        assert_forward_bit_identical(model, rebuilt, x)
        assert manifest.bn_folded is False
        assert manifest.weight_quant is None
        assert manifest.activation_quant is None
        assert manifest.dtype == "float32"
        assert manifest.params == model.num_parameters()

    def test_bn_folded_model_round_trips_bit_identical(self, tmp_path):
        folded, count = fold_batchnorms(make_model())
        assert count > 0
        folded.eval()
        manifest = publish_artifact(
            folded, model_spec(**MODEL), cache_dir=str(tmp_path), bn_folded=True
        )
        rebuilt = load_artifact(manifest.key, str(tmp_path)).build_model()
        assert_forward_bit_identical(folded, rebuilt, batch())
        assert manifest.bn_folded is True

    def test_ptq_model_round_trips_bit_identical(self, tmp_path):
        folded, _count = fold_batchnorms(make_model())
        deployed = quantize_weights_and_activations(
            folded, weight_bits=8, act_bits=8, batches=[(batch(seed=7), None)]
        )
        manifest = publish_artifact(
            deployed,
            model_spec(**MODEL),
            cache_dir=str(tmp_path),
            bn_folded=True,
            weight_quant=uniform_weight_quant(8),
        )
        act = manifest.activation_quant
        assert act is not None and act.bits == 8
        assert len(act.lows) == len(act.highs) > 0
        rebuilt = load_artifact(manifest.key, str(tmp_path)).build_model()
        # The quantized deployment itself is the reference — served
        # predictions must equal the offline quantized forward exactly.
        assert_forward_bit_identical(deployed, rebuilt, batch())
        assert_forward_bit_identical(deployed, rebuilt, batch(seed=3, n=1))

    def test_publishing_does_not_mutate_the_model(self, tmp_path):
        deployed = quantize_weights_and_activations(
            make_model(), weight_bits=8, act_bits=8, batches=[(batch(seed=7), None)]
        )
        before = {k: v.copy() for k, v in deployed.state_dict().items()}
        publish_artifact(deployed, model_spec(**MODEL), cache_dir=str(tmp_path))
        after = deployed.state_dict()
        assert set(before) == set(after)
        for name in before:
            assert np.array_equal(before[name], after[name])


class TestContentAddressing:
    def test_identical_content_is_a_cache_hit(self, tmp_path):
        spec = model_spec(**MODEL)
        first = publish_artifact(make_model(), spec, cache_dir=str(tmp_path))
        again = publish_artifact(make_model(), spec, cache_dir=str(tmp_path))
        assert again.key == first.key
        assert again.created_at == first.created_at  # the stored manifest won
        assert len(list_artifacts(str(tmp_path))) == 1

    def test_different_weights_different_key(self, tmp_path):
        spec = model_spec(**MODEL)
        a = publish_artifact(make_model(seed=0), spec, cache_dir=str(tmp_path))
        b = publish_artifact(make_model(seed=1), spec, cache_dir=str(tmp_path))
        assert a.key != b.key

    def test_quant_provenance_is_part_of_the_key(self, tmp_path):
        model = make_model()
        spec = model_spec(**MODEL)
        plain = publish_artifact(model, spec, cache_dir=str(tmp_path))
        tagged = publish_artifact(
            model, spec, cache_dir=str(tmp_path), weight_quant=uniform_weight_quant(8)
        )
        assert plain.key != tagged.key

    def test_volatile_fields_do_not_change_the_key(self, tmp_path):
        spec = model_spec(**MODEL)
        a = publish_artifact(
            make_model(), spec, cache_dir=str(tmp_path), source="run:aaa", clock=lambda: 1.0
        )
        b = publish_artifact(
            make_model(), spec, cache_dir=str(tmp_path), source="run:bbb", clock=lambda: 2.0
        )
        assert a.key == b.key

    def test_entry_layout(self, tmp_path):
        manifest = publish_artifact(
            make_model(), model_spec(**MODEL), cache_dir=str(tmp_path)
        )
        entry = artifact_cache(str(tmp_path)).entry_path(manifest.key)
        for name in ARTIFACT_FILES:
            assert os.path.exists(os.path.join(entry, name))


class TestErrors:
    def test_load_missing_key_raises(self, tmp_path):
        with pytest.raises(KeyError, match="no-such-key"):
            load_artifact("no-such-key", str(tmp_path))

    def test_uncalibrated_quantizers_refuse_to_publish(self, tmp_path):
        from repro.quant.activation import insert_activation_quantizers

        model, quantizers = insert_activation_quantizers(make_model(), bits=8)
        assert quantizers  # still calibrating: no data seen, never frozen
        with pytest.raises(ValueError, match="uncalibrated"):
            publish_artifact(model, model_spec(**MODEL), cache_dir=str(tmp_path))

    def test_weight_quant_must_be_typed(self, tmp_path):
        with pytest.raises(TypeError, match="WeightQuantV1"):
            publish_artifact(
                make_model(), model_spec(**MODEL), cache_dir=str(tmp_path),
                weight_quant={"bits": 8},
            )

    def test_list_artifacts_empty_cache(self, tmp_path):
        assert list_artifacts(str(tmp_path)) == []

    def test_mismatched_activation_ranges_fail_loud(self, tmp_path):
        deployed = quantize_weights_and_activations(
            make_model(), weight_bits=8, act_bits=8, batches=[(batch(), None)]
        )
        manifest = publish_artifact(deployed, model_spec(**MODEL), cache_dir=str(tmp_path))
        artifact = load_artifact(manifest.key, str(tmp_path))
        artifact.manifest.activation_quant.lows.append(0.0)
        artifact.manifest.activation_quant.highs.append(1.0)
        with pytest.raises(ValueError, match="activation"):
            artifact.build_model()


class TestMixedPrecision:
    def test_mixed_assignment_round_trips(self, tmp_path):
        from repro import nn
        from repro.quant.sensitivity import apply_mixed_precision

        model = make_model()
        names = [
            name for name, module in model.named_modules()
            if isinstance(module, (nn.Conv2d, nn.Linear))
        ]
        assignment = {name: (8 if i % 2 == 0 else 4) for i, name in enumerate(names)}
        mixed, _report = apply_mixed_precision(model, assignment)
        mixed.eval()
        manifest = publish_artifact(
            mixed,
            model_spec(**MODEL),
            cache_dir=str(tmp_path),
            weight_quant=mixed_weight_quant(assignment),
        )
        assert manifest.weight_quant.mode == "mixed"
        assert manifest.weight_quant.assignment == {k: int(v) for k, v in assignment.items()}
        rebuilt = load_artifact(manifest.key, str(tmp_path)).build_model()
        assert_forward_bit_identical(mixed, rebuilt, batch())
