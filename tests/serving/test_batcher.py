"""Micro-batcher properties: exactly-once, size ceiling, deadline.

Hypothesis drives randomized arrival schedules through the real
``RequestStore`` + ``BatchJournal`` + ``MicroBatcher`` stack under a
manually advanced clock, and checks the three contracts the serving
layer sells:

* **exactly-once**: every submitted request lands in exactly one batch
  record — never dropped, never duplicated (including across a batcher
  restart, which replays the journal);
* **size**: no batch exceeds ``max_batch``;
* **deadline**: after any non-forced flush, no still-pending request
  has waited longer than ``max_delay`` — the oldest request's latency
  budget triggers a partial batch rather than unbounded waiting.

The last test closes the loop to the model: draining the emitted
batches through ``worker_loop`` serves outputs bit-identical to an
offline forward of the same quantized deployment.
"""

import collections
import shutil
import tempfile

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving import BatchJournal, MicroBatcher, RequestStore
from repro.serving.server import DONE, PENDING


class FakeClock:
    def __init__(self, now=100.0):
        self.now = now

    def __call__(self):
        return self.now


#: A randomized arrival schedule: positive inter-arrival gaps (seconds).
gaps = st.lists(
    st.floats(min_value=0.0, max_value=0.03, allow_nan=False), min_size=1, max_size=24
)


def run_schedule(root, gap_list, max_batch, max_delay, restart_after=None):
    """Feed the schedule through a batcher; return (journal, submitted ids).

    ``restart_after`` rebuilds the batcher from the journal midway —
    the crashed-batcher recovery path — which must not double-admit.
    """
    clock = FakeClock()
    store = RequestStore(root, clock=clock)
    journal = BatchJournal(root, clock=clock)
    batcher = MicroBatcher(root, journal, max_batch=max_batch, max_delay=max_delay, clock=clock)
    submitted = []
    for index, gap in enumerate(gap_list):
        clock.now += gap
        submitted.append(store.submit(np.zeros(2, dtype=np.float32), f"req-{index:04d}"))
        batcher.poll()
        # Deadline contract: nothing still pending is past its budget.
        assert all(clock.now - at < max_delay for at in batcher.pending.values())
        if restart_after is not None and index == restart_after:
            batcher = MicroBatcher(
                root, journal, max_batch=max_batch, max_delay=max_delay, clock=clock
            )
    # Quiesce: advance past the budget (epsilon absorbs float rounding
    # of clock.now + gap sums) so the deadline ships the tail.  A
    # restarted batcher re-admits unbatched requests with a fresh
    # admission time, so the tail may need one more budget window.
    for _ in range(2):
        clock.now += max_delay + 1e-6
        batcher.poll()
        if not batcher.pending:
            break
    assert not batcher.pending
    return journal, submitted


@given(gap_list=gaps, max_batch=st.integers(1, 6), max_delay=st.floats(0.005, 0.05))
@settings(max_examples=40, deadline=None)
def test_exactly_once_and_size_ceiling(gap_list, max_batch, max_delay):
    root = tempfile.mkdtemp(prefix="batcher-prop-")
    try:
        journal, submitted = run_schedule(root, gap_list, max_batch, max_delay)
        batched = collections.Counter()
        for record in journal.snapshot().values():
            assert record.status == PENDING
            assert 1 <= len(record.requests) <= max_batch
            batched.update(record.requests)
        assert set(batched) == set(submitted)
        assert all(count == 1 for count in batched.values())
    finally:
        shutil.rmtree(root, ignore_errors=True)


@given(
    gap_list=gaps,
    max_batch=st.integers(1, 6),
    restart_at=st.integers(0, 23),
)
@settings(max_examples=40, deadline=None)
def test_restart_replays_journal_without_double_admitting(gap_list, max_batch, restart_at):
    root = tempfile.mkdtemp(prefix="batcher-restart-")
    try:
        journal, submitted = run_schedule(
            root, gap_list, max_batch, 0.02, restart_after=min(restart_at, len(gap_list) - 1)
        )
        batched = collections.Counter()
        keys = []
        for key, record in journal.snapshot().items():
            keys.append(key)
            batched.update(record.requests)
        assert set(batched) == set(submitted)
        assert all(count == 1 for count in batched.values())
        # The restarted batcher resumed the sequence: keys stay unique
        # and dense from batch-00000000.
        assert sorted(keys) == [f"batch-{i:08d}" for i in range(len(keys))]
    finally:
        shutil.rmtree(root, ignore_errors=True)


def test_deadline_ships_a_partial_batch(tmp_path):
    """One lonely request is served after max_delay, not never."""
    clock = FakeClock()
    root = str(tmp_path)
    store = RequestStore(root, clock=clock)
    journal = BatchJournal(root, clock=clock)
    batcher = MicroBatcher(root, journal, max_batch=8, max_delay=0.01, clock=clock)
    store.submit(np.zeros(2, dtype=np.float32), "lonely")
    assert batcher.poll() == []  # admitted, but within budget — held
    clock.now += 0.0099
    assert batcher.flush() == []  # still within budget
    clock.now += 0.0002
    (key,) = batcher.flush()  # budget spent: ship it alone
    assert journal.journal.read(key)["requests"] == ["lonely"]


def test_size_flush_preempts_the_deadline(tmp_path):
    """max_batch requests flush immediately, before any budget elapses."""
    clock = FakeClock()
    root = str(tmp_path)
    store = RequestStore(root, clock=clock)
    journal = BatchJournal(root, clock=clock)
    batcher = MicroBatcher(root, journal, max_batch=4, max_delay=10.0, clock=clock)
    for index in range(9):
        store.submit(np.zeros(2, dtype=np.float32), f"req-{index}")
    keys = batcher.poll()
    assert len(keys) == 2  # two full batches; the 9th waits for its budget
    assert len(batcher.pending) == 1


def test_emit_orders_by_admission_time_then_id(tmp_path):
    clock = FakeClock()
    root = str(tmp_path)
    store = RequestStore(root, clock=clock)
    journal = BatchJournal(root, clock=clock)
    batcher = MicroBatcher(root, journal, max_batch=2, max_delay=0.01, clock=clock)
    for request_id in ("zz", "aa", "mm"):
        store.submit(np.zeros(1, dtype=np.float32), request_id)
    batcher.admit()
    clock.now += 0.02
    keys = batcher.flush()
    first = journal.journal.read(keys[0])["requests"]
    assert first == ["aa", "mm"]  # same admission tick -> id order breaks the tie


@given(gap_list=gaps)
@settings(max_examples=15, deadline=None)
def test_served_outputs_bit_identical_to_offline_quantized_forward(gap_list):
    """End of the pipeline: drain the emitted batches through a real
    worker and compare every response to the offline PTQ forward."""
    from repro.models import create_model
    from repro.quant import quantize_weights_and_activations
    from repro.serving import worker_loop
    from repro.tensor import Tensor, no_grad

    rng = np.random.default_rng(1234)
    model = create_model("mlp", num_classes=3, in_channels=6, scale=0.25, seed=5)
    model.eval()
    deployed = quantize_weights_and_activations(
        model, weight_bits=8, act_bits=8,
        batches=[(rng.standard_normal((8, 6)).astype(np.float32), None)],
    )
    root = tempfile.mkdtemp(prefix="batcher-serve-")
    try:
        clock = FakeClock()
        store = RequestStore(root, clock=clock)
        journal = BatchJournal(root, clock=clock)
        batcher = MicroBatcher(root, journal, max_batch=4, max_delay=0.01, clock=clock)
        xs = {}
        for index, gap in enumerate(gap_list):
            clock.now += gap
            x = rng.standard_normal((1, 6)).astype(np.float32)
            request_id = store.submit(x, f"req-{index:04d}")
            xs[request_id] = x
            batcher.poll()
        clock.now += 0.01
        batcher.poll()
        served = worker_loop(root, deployed, drain=True, clock=clock)
        assert served == len(journal.snapshot())
        assert all(r.status == DONE for r in journal.snapshot().values())
        with no_grad():
            for request_id, x in xs.items():
                reference = deployed(Tensor(x)).data
                assert np.array_equal(store.try_response(request_id), reference)
    finally:
        shutil.rmtree(root, ignore_errors=True)
