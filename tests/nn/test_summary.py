"""Model summary utility."""

import numpy as np

from repro import nn
from repro.models import create_model
from repro.nn.summary import collect_summary, summary
from repro.tensor import Tensor, no_grad


class TestCollectSummary:
    def test_rows_in_execution_order(self):
        model = nn.Sequential(
            nn.Linear(4, 8, rng=np.random.default_rng(0)),
            nn.ReLU(),
            nn.Linear(8, 2, rng=np.random.default_rng(0)),
        )
        rows = collect_summary(model, (4,))
        assert [r["type"] for r in rows] == ["Linear", "ReLU", "Linear"]
        assert rows[0]["output_shape"] == (2, 8)
        assert rows[2]["output_shape"] == (2, 2)

    def test_param_counts(self):
        model = nn.Sequential(nn.Linear(4, 8, rng=np.random.default_rng(0)))
        rows = collect_summary(model, (4,))
        assert rows[0]["params"] == 4 * 8 + 8

    def test_forward_restored_after_summary(self, rng):
        model = nn.Sequential(nn.Linear(4, 2, rng=np.random.default_rng(0)))
        collect_summary(model, (4,))
        # a later forward must not keep appending rows
        x = Tensor(rng.standard_normal((3, 4)))
        with no_grad():
            out = model(x)
        assert out.shape == (3, 2)

    def test_training_mode_restored(self):
        model = nn.Sequential(nn.Linear(4, 2), nn.Dropout(0.5))
        model.train()
        collect_summary(model, (4,))
        assert model.training

    def test_works_on_conv_models(self):
        model = create_model("mobilenetv2", num_classes=10, scale=0.5, seed=0)
        rows = collect_summary(model, (3, 8, 8))
        assert any(r["type"] == "Conv2d" for r in rows)
        # final row is the classifier
        assert rows[-1]["output_shape"] == (2, 10)


class TestRendering:
    def test_summary_mentions_total(self):
        model = create_model("resnet8", num_classes=10, scale=0.5, seed=0)
        text = summary(model, (3, 8, 8))
        assert f"{model.num_parameters():,}" in text
        assert "Conv2d" in text
        assert "layer" in text
