"""Pooling layers."""

import numpy as np

from repro import nn
from repro.tensor import Tensor, check_gradient


class TestMaxPool:
    def test_value(self, rng):
        x = rng.standard_normal((2, 3, 4, 4))
        out = nn.max_pool2d(Tensor(x), 2).data
        ref = x.reshape(2, 3, 2, 2, 2, 2).max(axis=(3, 5))
        assert np.allclose(out, ref)

    def test_stride_not_equal_kernel(self, rng):
        x = rng.standard_normal((1, 1, 5, 5))
        out = nn.max_pool2d(Tensor(x), 3, stride=1).data
        assert out.shape == (1, 1, 3, 3)
        assert np.isclose(out[0, 0, 0, 0], x[0, 0, :3, :3].max())

    def test_padding_uses_neg_inf(self, rng):
        x = -np.abs(rng.standard_normal((1, 1, 2, 2))) - 1.0
        out = nn.max_pool2d(Tensor(x), 2, stride=2, padding=1).data
        # padded corners contain only one real value; -inf must not win
        assert np.isclose(out[0, 0, 0, 0], x[0, 0, 0, 0])

    def test_gradient(self, rng):
        x = rng.standard_normal((2, 2, 4, 4))
        check_gradient(lambda xx: (nn.max_pool2d(xx, 2) ** 2).sum(), [x], eps=1e-5)


class TestAvgPool:
    def test_value(self, rng):
        x = rng.standard_normal((2, 3, 4, 4))
        out = nn.avg_pool2d(Tensor(x), 2).data
        ref = x.reshape(2, 3, 2, 2, 2, 2).mean(axis=(3, 5))
        assert np.allclose(out, ref)

    def test_gradient(self, rng):
        x = rng.standard_normal((2, 2, 4, 4))
        check_gradient(lambda xx: (nn.avg_pool2d(xx, 2) ** 2).sum(), [x], eps=1e-5)


class TestGlobalAvgPool:
    def test_value_and_shape(self, rng):
        x = rng.standard_normal((2, 5, 3, 4))
        out = nn.global_avg_pool2d(Tensor(x))
        assert out.shape == (2, 5)
        assert np.allclose(out.data, x.mean(axis=(2, 3)))

    def test_module_form(self, rng):
        x = Tensor(rng.standard_normal((2, 5, 3, 3)))
        assert np.allclose(nn.GlobalAvgPool2d()(x).data, x.data.mean(axis=(2, 3)))
