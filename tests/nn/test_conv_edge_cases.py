"""Additional convolution/pooling edge cases."""

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor, check_gradient


class TestConvVariants:
    def test_asymmetric_kernel(self, rng):
        x = rng.standard_normal((1, 2, 6, 6))
        w = rng.standard_normal((3, 2, 1, 3))
        out = nn.conv2d(Tensor(x), Tensor(w), padding=(0, 1))
        assert out.shape == (1, 3, 6, 6)
        check_gradient(
            lambda ww: (nn.conv2d(Tensor(x), ww, padding=(0, 1)) ** 2).sum(), [w], eps=1e-5
        )

    def test_asymmetric_stride(self, rng):
        x = rng.standard_normal((1, 1, 8, 8))
        w = rng.standard_normal((1, 1, 3, 3))
        out = nn.conv2d(Tensor(x), Tensor(w), stride=(1, 2), padding=1)
        assert out.shape == (1, 1, 8, 4)

    def test_dilation_gradcheck(self, rng):
        x = rng.standard_normal((1, 1, 7, 7))
        w = rng.standard_normal((1, 1, 3, 3))
        check_gradient(
            lambda xx, ww: (nn.conv2d(xx, ww, dilation=2) ** 2).sum(), [x, w], index=0,
            eps=1e-5,
        )
        check_gradient(
            lambda xx, ww: (nn.conv2d(xx, ww, dilation=2) ** 2).sum(), [x, w], index=1,
            eps=1e-5,
        )

    def test_batch_of_one(self, rng):
        layer = nn.Conv2d(3, 4, 3, padding=1, rng=rng)
        out = layer(Tensor(rng.standard_normal((1, 3, 5, 5))))
        assert out.shape == (1, 4, 5, 5)

    def test_kernel_equals_input_size(self, rng):
        x = rng.standard_normal((2, 2, 4, 4))
        w = rng.standard_normal((5, 2, 4, 4))
        out = nn.conv2d(Tensor(x), Tensor(w))
        assert out.shape == (2, 5, 1, 1)
        ref = np.einsum("nchw,ochw->no", x, w)
        assert np.allclose(out.data.reshape(2, 5), ref)

    def test_stride_larger_than_kernel(self, rng):
        x = rng.standard_normal((1, 1, 9, 9))
        w = rng.standard_normal((1, 1, 2, 2))
        out = nn.conv2d(Tensor(x), Tensor(w), stride=3)
        assert out.shape == (1, 1, 3, 3)

    def test_pair_argument_validation(self):
        from repro.nn.conv import _pair

        assert _pair(3) == (3, 3)
        assert _pair((1, 2)) == (1, 2)
        with pytest.raises(ValueError):
            _pair((1, 2, 3))

    def test_index_cache_reused(self, rng):
        from repro.nn.conv import _INDEX_CACHE, im2col_indices

        x_shape = (2, 3, 9, 9)
        before = len(_INDEX_CACHE)
        im2col_indices(x_shape, (3, 3), (1, 1), (1, 1))
        mid = len(_INDEX_CACHE)
        im2col_indices(x_shape, (3, 3), (1, 1), (1, 1))
        assert len(_INDEX_CACHE) == mid
        assert mid >= before


class TestPoolingEdgeCases:
    def test_pool_window_equals_input(self, rng):
        x = rng.standard_normal((2, 3, 4, 4))
        out = nn.max_pool2d(Tensor(x), 4)
        assert out.shape == (2, 3, 1, 1)
        assert np.allclose(out.data[..., 0, 0], x.max(axis=(2, 3)))

    def test_overlapping_windows_grad(self, rng):
        x = rng.standard_normal((1, 1, 5, 5))
        check_gradient(lambda xx: (nn.max_pool2d(xx, 3, stride=1) ** 2).sum(), [x], eps=1e-5)

    def test_avg_pool_with_padding_counts_zeros(self, rng):
        x = np.ones((1, 1, 2, 2))
        out = nn.avg_pool2d(Tensor(x), 2, stride=2, padding=1).data
        # corner windows contain 1 real pixel + 3 zero pads -> mean 0.25
        assert np.isclose(out[0, 0, 0, 0], 0.25)

    def test_global_pool_matches_avg_pool_full_window(self, rng):
        x = rng.standard_normal((2, 3, 4, 4))
        a = nn.global_avg_pool2d(Tensor(x)).data
        b = nn.avg_pool2d(Tensor(x), 4).data.reshape(2, 3)
        assert np.allclose(a, b)
