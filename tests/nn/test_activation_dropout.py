"""Activation modules and dropout."""

import numpy as np

from repro import nn
from repro.tensor import Tensor


class TestActivations:
    def test_relu(self, rng):
        x = rng.standard_normal((3, 3))
        assert np.allclose(nn.ReLU()(Tensor(x)).data, np.maximum(x, 0))

    def test_relu6(self, rng):
        x = rng.standard_normal((3, 3)) * 10
        assert np.allclose(nn.ReLU6()(Tensor(x)).data, np.clip(x, 0, 6))

    def test_tanh_sigmoid(self, rng):
        x = rng.standard_normal((3, 3))
        assert np.allclose(nn.Tanh()(Tensor(x)).data, np.tanh(x))
        assert np.allclose(nn.Sigmoid()(Tensor(x)).data, 1 / (1 + np.exp(-x)))

    def test_leaky_relu(self, rng):
        x = rng.standard_normal((4, 4))
        out = nn.LeakyReLU(0.1)(Tensor(x)).data
        assert np.allclose(out, np.where(x > 0, x, 0.1 * x))


class TestDropout:
    def test_eval_is_identity(self, rng):
        drop = nn.Dropout(0.5, rng=rng)
        drop.eval()
        x = rng.standard_normal((10, 10))
        assert np.allclose(drop(Tensor(x)).data, x)

    def test_p_zero_is_identity(self, rng):
        drop = nn.Dropout(0.0, rng=rng)
        x = rng.standard_normal((10, 10))
        assert np.allclose(drop(Tensor(x)).data, x)

    def test_training_zeroes_and_scales(self):
        drop = nn.Dropout(0.5, rng=np.random.default_rng(0))
        x = np.ones((100, 100))
        out = drop(Tensor(x)).data
        zero_fraction = (out == 0).mean()
        assert 0.4 < zero_fraction < 0.6
        surviving = out[out != 0]
        assert np.allclose(surviving, 2.0)  # inverted scaling by 1/(1-p)

    def test_mean_approximately_preserved(self):
        drop = nn.Dropout(0.3, rng=np.random.default_rng(1))
        x = np.ones((200, 200))
        out = drop(Tensor(x)).data
        assert abs(out.mean() - 1.0) < 0.02

    def test_invalid_p_raises(self):
        import pytest

        with pytest.raises(ValueError):
            nn.Dropout(1.0)
        with pytest.raises(ValueError):
            nn.Dropout(-0.1)
