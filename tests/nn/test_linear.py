"""Linear and Flatten layers."""

import numpy as np

from repro import nn
from repro.tensor import Tensor, check_gradient


class TestLinear:
    def test_forward_value(self, rng):
        layer = nn.Linear(4, 3, rng=rng)
        x = rng.standard_normal((5, 4))
        out = layer(Tensor(x))
        ref = x @ layer.weight.data.T + layer.bias.data
        assert np.allclose(out.data, ref)

    def test_no_bias(self, rng):
        layer = nn.Linear(4, 3, bias=False, rng=rng)
        assert layer.bias is None
        x = rng.standard_normal((2, 4))
        assert np.allclose(layer(Tensor(x)).data, x @ layer.weight.data.T)

    def test_gradients(self, rng):
        x = rng.standard_normal((4, 3))
        w = rng.standard_normal((2, 3))
        b = rng.standard_normal(2)
        check_gradient(lambda xx, ww, bb: (nn.linear(xx, ww, bb) ** 2).sum(), [x, w, b], index=0)
        check_gradient(lambda xx, ww, bb: (nn.linear(xx, ww, bb) ** 2).sum(), [x, w, b], index=1)
        check_gradient(lambda xx, ww, bb: (nn.linear(xx, ww, bb) ** 2).sum(), [x, w, b], index=2)

    def test_init_scale_reasonable(self, rng):
        layer = nn.Linear(100, 50, rng=rng)
        std = layer.weight.data.std()
        # Kaiming-uniform bound sqrt(6/100) -> std ~ bound/sqrt(3)
        assert 0.05 < std < 0.25

    def test_batched_3d_input(self, rng):
        layer = nn.Linear(4, 3, rng=rng)
        x = rng.standard_normal((2, 5, 4))
        out = layer(Tensor(x))
        assert out.shape == (2, 5, 3)


class TestFlatten:
    def test_flatten(self, rng):
        x = Tensor(rng.standard_normal((2, 3, 4, 5)))
        assert nn.Flatten()(x).shape == (2, 60)
