"""BatchNorm: normalization math, running stats, eval mode, gradients."""

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor, check_gradient


class TestBatchNorm2d:
    def test_training_output_normalized(self, rng):
        bn = nn.BatchNorm2d(3)
        x = rng.standard_normal((8, 3, 4, 4)) * 3 + 2
        out = bn(Tensor(x)).data
        assert np.allclose(out.mean(axis=(0, 2, 3)), 0, atol=1e-6)
        assert np.allclose(out.std(axis=(0, 2, 3)), 1, atol=1e-3)

    def test_affine_params_applied(self, rng):
        bn = nn.BatchNorm2d(3)
        bn.weight.data = np.array([2.0, 3.0, 4.0])
        bn.bias.data = np.array([1.0, -1.0, 0.5])
        x = rng.standard_normal((8, 3, 4, 4))
        out = bn(Tensor(x)).data
        assert np.allclose(out.mean(axis=(0, 2, 3)), [1.0, -1.0, 0.5], atol=1e-6)

    def test_running_stats_updated(self, rng):
        bn = nn.BatchNorm2d(2, momentum=0.5)
        x = rng.standard_normal((16, 2, 3, 3)) * 2 + 5
        bn(Tensor(x))
        assert np.allclose(bn.running_mean, 0.5 * x.mean(axis=(0, 2, 3)), atol=1e-6)
        count = 16 * 9
        unbiased = x.var(axis=(0, 2, 3)) * count / (count - 1)
        assert np.allclose(bn.running_var, 0.5 * 1.0 + 0.5 * unbiased, atol=1e-6)
        assert bn.num_batches_tracked == 1

    def test_eval_uses_running_stats(self, rng):
        bn = nn.BatchNorm2d(2)
        bn.set_buffer("running_mean", np.array([1.0, -1.0]))
        bn.set_buffer("running_var", np.array([4.0, 9.0]))
        bn.eval()
        x = rng.standard_normal((4, 2, 2, 2))
        out = bn(Tensor(x)).data
        ref = (x - np.array([1.0, -1.0])[None, :, None, None]) / np.sqrt(
            np.array([4.0, 9.0])[None, :, None, None] + bn.eps
        )
        assert np.allclose(out, ref)

    def test_eval_does_not_update_stats(self, rng):
        bn = nn.BatchNorm2d(2)
        bn.eval()
        before = bn.running_mean.copy()
        bn(Tensor(rng.standard_normal((4, 2, 2, 2)) + 7))
        assert np.allclose(bn.running_mean, before)

    def test_gradient_through_training_bn(self, rng):
        bn = nn.BatchNorm2d(2)
        x = rng.standard_normal((4, 2, 3, 3))

        def f(xx):
            bn.set_buffer("running_mean", np.zeros(2))
            bn.set_buffer("running_var", np.ones(2))
            return (bn(xx) ** 3).sum()

        check_gradient(f, [x], eps=1e-5)

    def test_gradient_wrt_affine(self, rng):
        x = Tensor(rng.standard_normal((4, 2, 3, 3)))
        bn = nn.BatchNorm2d(2)
        loss = (bn(x) ** 2).sum()
        loss.backward()
        assert bn.weight.grad is not None
        assert bn.bias.grad is not None

    def test_rejects_wrong_ndim(self, rng):
        bn = nn.BatchNorm2d(2)
        with pytest.raises(ValueError):
            bn(Tensor(rng.standard_normal((4, 2))))


class TestBatchNorm1d:
    def test_2d_input(self, rng):
        bn = nn.BatchNorm1d(5)
        x = rng.standard_normal((16, 5)) * 2 + 1
        out = bn(Tensor(x)).data
        assert np.allclose(out.mean(axis=0), 0, atol=1e-6)

    def test_3d_input(self, rng):
        bn = nn.BatchNorm1d(5)
        x = rng.standard_normal((8, 5, 7))
        out = bn(Tensor(x)).data
        assert out.shape == x.shape
        assert np.allclose(out.mean(axis=(0, 2)), 0, atol=1e-6)

    def test_rejects_4d(self, rng):
        with pytest.raises(ValueError):
            nn.BatchNorm1d(3)(Tensor(rng.standard_normal((2, 3, 4, 4))))

    def test_no_affine(self, rng):
        bn = nn.BatchNorm1d(4, affine=False)
        assert len(list(bn.parameters())) == 0
        out = bn(Tensor(rng.standard_normal((8, 4))))
        assert out.shape == (8, 4)
