"""im2col index memoization: zero recomputation at steady state, bounded growth."""

import numpy as np
import pytest

from repro import nn
from repro.nn.conv import (
    _INDEX_CACHE_MAX,
    im2col_cache_clear,
    im2col_cache_info,
    im2col_indices,
)
from repro.tensor import Tensor


@pytest.fixture(autouse=True)
def fresh_cache():
    im2col_cache_clear()
    yield
    im2col_cache_clear()


class TestZeroRecomputation:
    def test_repeated_shape_never_recomputes(self):
        for _ in range(5):
            im2col_indices((2, 3, 8, 8), (3, 3), (1, 1), (1, 1))
        info = im2col_cache_info()
        assert info["misses"] == 1
        assert info["hits"] == 4

    def test_training_steps_hit_after_warmup(self):
        conv = nn.Conv2d(3, 4, 3, padding=1, rng=np.random.default_rng(0))
        x = np.random.default_rng(1).standard_normal((2, 3, 8, 8)).astype(np.float32)
        conv(Tensor(x)).sum().backward()
        warm = im2col_cache_info()["misses"]
        for _ in range(4):
            conv(Tensor(x)).sum().backward()
        info = im2col_cache_info()
        assert info["misses"] == warm  # zero recomputation after step one
        assert info["hits"] >= 4

    def test_identical_result_object_on_hit(self):
        first = im2col_indices((1, 2, 6, 6), (2, 2), (2, 2), (1, 1))
        second = im2col_indices((1, 2, 6, 6), (2, 2), (2, 2), (1, 1))
        assert second is first  # memoized, not rebuilt


class TestBoundedLRU:
    def test_eviction_beyond_cap(self):
        for n in range(_INDEX_CACHE_MAX + 8):
            im2col_indices((1, 1, 8 + n, 8), (3, 3), (1, 1), (1, 1))
        info = im2col_cache_info()
        assert info["size"] <= _INDEX_CACHE_MAX
        assert info["evictions"] == 8

    def test_lru_order_keeps_recently_used(self):
        keys = [((1, 1, 8 + n, 8), (3, 3), (1, 1), (1, 1)) for n in range(_INDEX_CACHE_MAX)]
        for key in keys:
            im2col_indices(*key)
        # Touch the oldest entry, then overflow by one: the second-oldest
        # should be evicted, not the refreshed one.
        refreshed = im2col_indices(*keys[0])
        im2col_indices((1, 1, 200, 8), (3, 3), (1, 1), (1, 1))
        assert im2col_indices(*keys[0]) is refreshed  # still cached (hit)
        info = im2col_cache_info()
        assert info["evictions"] == 1

    def test_clear_resets(self):
        im2col_indices((1, 1, 8, 8), (3, 3), (1, 1), (1, 1))
        im2col_cache_clear()
        info = im2col_cache_info()
        assert info == {"hits": 0, "misses": 0, "evictions": 0, "size": 0,
                        "maxsize": _INDEX_CACHE_MAX}
