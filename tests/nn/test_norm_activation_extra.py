"""LayerNorm/GroupNorm and the smooth activations (GELU/SiLU/Softplus/ELU)."""

import numpy as np
import pytest
from scipy.special import erf

from repro import nn
from repro.tensor import Tensor, check_gradient, check_hvp


class TestLayerNorm:
    def test_normalizes_last_dim(self, rng):
        ln = nn.LayerNorm(8)
        x = rng.standard_normal((4, 8)) * 3 + 1
        out = ln(Tensor(x)).data
        assert np.allclose(out.mean(axis=-1), 0, atol=1e-6)
        assert np.allclose(out.std(axis=-1), 1, atol=1e-3)

    def test_multi_dim_normalized_shape(self, rng):
        ln = nn.LayerNorm((3, 4))
        x = rng.standard_normal((5, 3, 4))
        out = ln(Tensor(x)).data
        assert np.allclose(out.reshape(5, -1).mean(axis=1), 0, atol=1e-6)

    def test_affine(self, rng):
        ln = nn.LayerNorm(4)
        ln.weight.data = np.array([2.0, 2.0, 2.0, 2.0])
        ln.bias.data = np.array([1.0, 1.0, 1.0, 1.0])
        x = rng.standard_normal((3, 4))
        out = ln(Tensor(x)).data
        assert np.allclose(out.mean(axis=-1), 1.0, atol=1e-6)

    def test_shape_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            nn.LayerNorm(5)(Tensor(rng.standard_normal((2, 4))))

    def test_gradcheck(self, rng):
        ln = nn.LayerNorm(4)
        x = rng.standard_normal((3, 4))
        check_gradient(lambda xx: (ln(xx) ** 3).sum(), [x], eps=1e-5)

    def test_second_order(self, rng):
        ln = nn.LayerNorm(4, affine=False)
        x = rng.standard_normal((2, 4))
        check_hvp(
            lambda xx: (ln(xx) ** 3).sum(), [x], rng.standard_normal((2, 4)),
            eps=1e-4, atol=1e-3, rtol=1e-2,
        )


class TestGroupNorm:
    def test_normalizes_within_groups(self, rng):
        gn = nn.GroupNorm(2, 4)
        x = rng.standard_normal((3, 4, 5, 5)) * 2 + 3
        out = gn(Tensor(x)).data
        grouped = out.reshape(3, 2, 2, 5, 5)
        assert np.allclose(grouped.mean(axis=(2, 3, 4)), 0, atol=1e-6)

    def test_group_of_one_is_instance_norm(self, rng):
        gn = nn.GroupNorm(4, 4)
        x = rng.standard_normal((2, 4, 3, 3))
        out = gn(Tensor(x)).data
        assert np.allclose(out.mean(axis=(2, 3)), 0, atol=1e-6)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            nn.GroupNorm(3, 4)
        gn = nn.GroupNorm(2, 4)
        with pytest.raises(ValueError):
            gn(Tensor(rng.standard_normal((2, 4))))
        with pytest.raises(ValueError):
            gn(Tensor(rng.standard_normal((2, 6, 3, 3))))

    def test_gradcheck(self, rng):
        gn = nn.GroupNorm(2, 4)
        x = rng.standard_normal((2, 4, 3, 3))
        check_gradient(lambda xx: (gn(xx) ** 3).sum(), [x], eps=1e-5)

    def test_batch_independent(self, rng):
        """Unlike BatchNorm, each sample's output is independent."""
        gn = nn.GroupNorm(2, 4)
        x = rng.standard_normal((4, 4, 3, 3))
        full = gn(Tensor(x)).data
        single = gn(Tensor(x[:1])).data
        assert np.allclose(full[:1], single, atol=1e-12)


class TestSmoothActivations:
    def test_gelu_matches_exact_gaussian_form(self, rng):
        x = rng.standard_normal((50,)) * 2
        out = nn.GELU()(Tensor(x)).data
        exact = x * 0.5 * (1 + erf(x / np.sqrt(2)))
        assert np.allclose(out, exact, atol=5e-3)  # tanh approximation

    def test_silu(self, rng):
        x = rng.standard_normal(20)
        out = nn.SiLU()(Tensor(x)).data
        assert np.allclose(out, x / (1 + np.exp(-x)))

    def test_softplus_value_and_stability(self):
        x = np.array([-500.0, -1.0, 0.0, 1.0, 500.0])
        out = nn.Softplus()(Tensor(x)).data
        assert np.all(np.isfinite(out))
        assert np.allclose(out[1:4], np.log1p(np.exp(x[1:4])))
        assert np.isclose(out[-1], 500.0)
        assert np.isclose(out[0], 0.0, atol=1e-12)

    def test_softplus_beta(self, rng):
        x = rng.standard_normal(10)
        out = nn.Softplus(beta=2.0)(Tensor(x)).data
        assert np.allclose(out, np.log1p(np.exp(2 * x)) / 2, atol=1e-12)

    def test_softplus_validation(self):
        with pytest.raises(ValueError):
            nn.Softplus(beta=0.0)

    def test_elu(self, rng):
        x = rng.standard_normal(30) * 2
        out = nn.ELU(alpha=1.5)(Tensor(x)).data
        expected = np.where(x > 0, x, 1.5 * (np.exp(x) - 1))
        assert np.allclose(out, expected)

    @pytest.mark.parametrize("module", [nn.GELU(), nn.SiLU(), nn.Softplus()])
    def test_gradcheck(self, rng, module):
        x = rng.standard_normal((4, 4))
        check_gradient(lambda xx: (module(xx) ** 2).sum(), [x], eps=1e-5)

    @pytest.mark.parametrize("module", [nn.GELU(), nn.SiLU()])
    def test_second_order(self, rng, module):
        """Smooth activations have dense, checkable Hessians."""
        x = rng.standard_normal((3, 3))
        check_hvp(
            lambda xx: (module(xx) ** 2).sum(), [x], rng.standard_normal((3, 3)),
            eps=1e-4, atol=1e-3, rtol=1e-2,
        )

    def test_elu_gradcheck_away_from_zero(self, rng):
        x = rng.standard_normal(12)
        x[np.abs(x) < 0.05] = 0.3
        check_gradient(lambda xx: (nn.ELU()(xx) ** 2).sum(), [x], eps=1e-6)
