"""Conv2d: values vs scipy, gradients, grouping, shape arithmetic."""

import numpy as np
import pytest
from scipy.signal import correlate

from repro import nn
from repro.tensor import Tensor, check_gradient, check_hvp


def reference_conv(x, w, b=None, stride=1, padding=0):
    """Direct scipy cross-correlation reference (groups=1)."""
    n, c, h, wd = x.shape
    oc = w.shape[0]
    xp = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    outs = []
    for i in range(n):
        maps = []
        for o in range(oc):
            acc = sum(correlate(xp[i, ch], w[o, ch], mode="valid") for ch in range(c))
            maps.append(acc[::stride, ::stride])
        outs.append(np.stack(maps))
    out = np.stack(outs)
    if b is not None:
        out = out + b[None, :, None, None]
    return out


class TestForward:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1), (2, 0)])
    def test_matches_scipy(self, rng, stride, padding):
        x = rng.standard_normal((2, 3, 7, 7))
        w = rng.standard_normal((4, 3, 3, 3))
        b = rng.standard_normal(4)
        ours = nn.conv2d(Tensor(x), Tensor(w), Tensor(b), stride=stride, padding=padding)
        ref = reference_conv(x, w, b, stride=stride, padding=padding)
        assert ours.shape == ref.shape
        # float32 engine vs scipy's float64 reference: tolerance sized
        # to single-precision accumulation over the receptive field.
        assert np.allclose(ours.data, ref, rtol=1e-4, atol=1e-5)

    def test_1x1_conv_is_channel_mix(self, rng):
        x = rng.standard_normal((2, 3, 4, 4))
        w = rng.standard_normal((5, 3, 1, 1))
        out = nn.conv2d(Tensor(x), Tensor(w)).data
        ref = np.einsum("nchw,oc->nohw", x, w[:, :, 0, 0])
        assert np.allclose(out, ref)

    def test_depthwise_matches_per_channel(self, rng):
        x = rng.standard_normal((2, 4, 6, 6))
        w = rng.standard_normal((4, 1, 3, 3))
        out = nn.conv2d(Tensor(x), Tensor(w), padding=1, groups=4).data
        for c in range(4):
            ref = reference_conv(x[:, c : c + 1], w[c : c + 1], padding=1)
            assert np.allclose(out[:, c : c + 1], ref)

    def test_grouped_matches_split_convs(self, rng):
        x = rng.standard_normal((2, 4, 5, 5))
        w = rng.standard_normal((6, 2, 3, 3))
        out = nn.conv2d(Tensor(x), Tensor(w), padding=1, groups=2).data
        ref0 = reference_conv(x[:, :2], w[:3], padding=1)
        ref1 = reference_conv(x[:, 2:], w[3:], padding=1)
        assert np.allclose(out, np.concatenate([ref0, ref1], axis=1))

    def test_dilation(self, rng):
        # dilation=2 equals convolving with a zero-interleaved kernel
        x = rng.standard_normal((1, 1, 7, 7))
        w = rng.standard_normal((1, 1, 3, 3))
        out = nn.conv2d(Tensor(x), Tensor(w), dilation=2).data
        w_dil = np.zeros((1, 1, 5, 5))
        w_dil[0, 0, ::2, ::2] = w[0, 0]
        ref = reference_conv(x, w_dil)
        assert np.allclose(out, ref)

    def test_output_size_formula(self):
        assert nn.conv_output_size(8, 3, 1, 1) == 8
        assert nn.conv_output_size(8, 3, 2, 1) == 4
        assert nn.conv_output_size(7, 3, 2, 0) == 3

    def test_bad_channels_raise(self, rng):
        x = Tensor(rng.standard_normal((1, 3, 5, 5)))
        w = Tensor(rng.standard_normal((4, 2, 3, 3)))
        with pytest.raises(ValueError):
            nn.conv2d(x, w)

    def test_kernel_too_large_raises(self, rng):
        x = Tensor(rng.standard_normal((1, 1, 3, 3)))
        w = Tensor(rng.standard_normal((1, 1, 5, 5)))
        with pytest.raises(ValueError):
            nn.conv2d(x, w)


class TestGradients:
    def test_input_weight_bias_grads(self, rng):
        x = rng.standard_normal((2, 2, 5, 5))
        w = rng.standard_normal((3, 2, 3, 3))
        b = rng.standard_normal(3)

        def f(xx, ww, bb):
            return (nn.conv2d(xx, ww, bb, stride=2, padding=1) ** 2).sum()

        check_gradient(f, [x, w, b], index=0, eps=1e-5)
        check_gradient(f, [x, w, b], index=1, eps=1e-5)
        check_gradient(f, [x, w, b], index=2, eps=1e-5)

    def test_grouped_grads(self, rng):
        x = rng.standard_normal((2, 4, 4, 4))
        w = rng.standard_normal((4, 2, 3, 3))

        def f(xx, ww):
            return (nn.conv2d(xx, ww, padding=1, groups=2) ** 2).sum()

        check_gradient(f, [x, w], index=0, eps=1e-5)
        check_gradient(f, [x, w], index=1, eps=1e-5)

    def test_second_order_through_conv(self, rng):
        x = rng.standard_normal((1, 2, 4, 4))
        w = rng.standard_normal((2, 2, 3, 3))
        v = rng.standard_normal(w.shape)
        check_hvp(
            lambda ww: (nn.conv2d(Tensor(x), ww, padding=1).tanh() ** 2).sum(),
            [w],
            v,
            eps=1e-4,
            atol=1e-3,
            rtol=1e-2,
        )


class TestConvModule:
    def test_layer_shapes(self, rng):
        layer = nn.Conv2d(3, 8, 3, stride=2, padding=1, rng=rng)
        out = layer(Tensor(rng.standard_normal((2, 3, 8, 8))))
        assert out.shape == (2, 8, 4, 4)

    def test_no_bias(self, rng):
        layer = nn.Conv2d(3, 8, 3, bias=False, rng=rng)
        assert layer.bias is None
        assert len(list(layer.parameters())) == 1

    def test_invalid_groups_raise(self):
        with pytest.raises(ValueError):
            nn.Conv2d(3, 4, 3, groups=2)

    def test_deterministic_init(self):
        l1 = nn.Conv2d(3, 4, 3, rng=np.random.default_rng(5))
        l2 = nn.Conv2d(3, 4, 3, rng=np.random.default_rng(5))
        assert np.allclose(l1.weight.data, l2.weight.data)
