"""Module system: registration, traversal, state dicts, modes."""

import numpy as np
import pytest

from repro import nn
from repro.nn.module import Parameter


def build_net(seed=0):
    rng = np.random.default_rng(seed)
    return nn.Sequential(
        nn.Linear(4, 8, rng=rng),
        nn.ReLU(),
        nn.Linear(8, 2, rng=rng),
    )


class TestRegistration:
    def test_parameters_discovered(self):
        net = build_net()
        names = [n for n, _ in net.named_parameters()]
        assert names == ["0.weight", "0.bias", "2.weight", "2.bias"]

    def test_num_parameters(self):
        net = build_net()
        assert net.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2

    def test_reassignment_replaces_registration(self):
        net = build_net()
        net.extra = Parameter(np.zeros(3))
        assert "extra" in dict(net.named_parameters())
        net.extra = None
        assert "extra" not in dict(net.named_parameters())

    def test_buffers_discovered(self):
        bn = nn.BatchNorm2d(4)
        names = {n for n, _ in bn.named_buffers()}
        assert names == {"running_mean", "running_var", "num_batches_tracked"}

    def test_named_modules(self):
        net = build_net()
        kinds = [type(m).__name__ for _n, m in net.named_modules()]
        assert kinds == ["Sequential", "Linear", "ReLU", "Linear"]


class TestModes:
    def test_train_eval_propagate(self):
        net = nn.Sequential(nn.Linear(2, 2), nn.Dropout(0.5))
        net.eval()
        assert all(not m.training for m in net.modules())
        net.train()
        assert all(m.training for m in net.modules())

    def test_zero_grad(self):
        net = build_net()
        for p in net.parameters():
            p.grad = p  # dummy
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())


class TestStateDict:
    def test_roundtrip(self):
        net1 = build_net(seed=1)
        net2 = build_net(seed=2)
        state = net1.state_dict()
        net2.load_state_dict(state)
        for (n1, p1), (n2, p2) in zip(net1.named_parameters(), net2.named_parameters()):
            assert n1 == n2
            assert np.allclose(p1.data, p2.data)

    def test_state_dict_copies(self):
        net = build_net()
        state = net.state_dict()
        state["0.weight"][:] = 0
        assert not np.allclose(dict(net.named_parameters())["0.weight"].data, 0)

    def test_buffer_roundtrip(self):
        bn1 = nn.BatchNorm2d(3)
        bn1.set_buffer("running_mean", np.array([1.0, 2.0, 3.0]))
        bn2 = nn.BatchNorm2d(3)
        bn2.load_state_dict(bn1.state_dict())
        assert np.allclose(bn2.running_mean, [1.0, 2.0, 3.0])

    def test_shape_mismatch_raises(self):
        net = build_net()
        state = net.state_dict()
        state["0.weight"] = np.zeros((3, 3))
        with pytest.raises(ValueError):
            net.load_state_dict(state)

    def test_unknown_key_raises(self):
        net = build_net()
        with pytest.raises(KeyError):
            net.load_state_dict({"nonexistent.weight": np.zeros(2)})


class TestSequential:
    def test_forward_chains(self, rng):
        net = build_net()
        x = rng.standard_normal((5, 4))
        from repro.tensor import Tensor

        out = net(Tensor(x))
        assert out.shape == (5, 2)

    def test_len_iter_getitem(self):
        net = build_net()
        assert len(net) == 3
        assert isinstance(net[0], nn.Linear)
        assert len(list(net)) == 3

    def test_identity(self, rng):
        from repro.tensor import Tensor

        x = Tensor(rng.standard_normal((2, 2)))
        assert np.allclose(nn.Identity()(x).data, x.data)
