"""Initializer statistics and fan computation."""

import numpy as np
import pytest

from repro.nn import init
from repro.nn.module import Parameter


class TestFans:
    def test_linear_fans(self):
        assert init._fan_in_out((10, 20)) == (20, 10)

    def test_conv_fans(self):
        # (out_c=8, in_c=4, 3, 3): fan_in = 4*9, fan_out = 8*9
        assert init._fan_in_out((8, 4, 3, 3)) == (36, 72)

    def test_1d_fans(self):
        assert init._fan_in_out((7,)) == (7, 7)

    def test_bad_shape_raises(self):
        with pytest.raises(ValueError):
            init._fan_in_out((2, 3, 4))


class TestDistributions:
    def test_kaiming_normal_std(self):
        rng = np.random.default_rng(0)
        p = Parameter(np.empty((256, 128)))
        init.kaiming_normal_(p, rng)
        expected = np.sqrt(2.0 / 128)
        assert np.isclose(p.data.std(), expected, rtol=0.1)

    def test_kaiming_uniform_bound(self):
        rng = np.random.default_rng(0)
        p = Parameter(np.empty((64, 64)))
        init.kaiming_uniform_(p, rng)
        bound = np.sqrt(2.0) * np.sqrt(3.0 / 64)
        assert np.abs(p.data).max() <= bound

    def test_xavier_normal_std(self):
        rng = np.random.default_rng(0)
        p = Parameter(np.empty((200, 100)))
        init.xavier_normal_(p, rng)
        expected = np.sqrt(2.0 / 300)
        assert np.isclose(p.data.std(), expected, rtol=0.1)

    def test_xavier_uniform_bound(self):
        rng = np.random.default_rng(0)
        p = Parameter(np.empty((50, 50)))
        init.xavier_uniform_(p, rng)
        bound = np.sqrt(6.0 / 100)
        assert np.abs(p.data).max() <= bound

    def test_constants(self):
        p = Parameter(np.empty((3, 3)))
        init.zeros_(p)
        assert np.all(p.data == 0)
        init.ones_(p)
        assert np.all(p.data == 1)
        init.constant_(p, 2.5)
        assert np.all(p.data == 2.5)

    def test_deterministic_given_rng(self):
        p1 = Parameter(np.empty((10, 10)))
        p2 = Parameter(np.empty((10, 10)))
        init.kaiming_normal_(p1, np.random.default_rng(3))
        init.kaiming_normal_(p2, np.random.default_rng(3))
        assert np.allclose(p1.data, p2.data)
