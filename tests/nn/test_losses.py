"""Loss functions: values vs manual reference, gradients, smoothing."""

import numpy as np
import pytest
from scipy.special import log_softmax as scipy_log_softmax

from repro import nn
from repro.tensor import Tensor, check_gradient, check_hvp


class TestCrossEntropy:
    def test_matches_reference(self, rng):
        logits = rng.standard_normal((6, 4)) * 2
        y = rng.integers(0, 4, 6)
        loss = nn.cross_entropy(Tensor(logits), y)
        logp = scipy_log_softmax(logits, axis=1)
        ref = -logp[np.arange(6), y].mean()
        assert np.isclose(loss.data, ref)

    def test_reductions(self, rng):
        logits = rng.standard_normal((5, 3))
        y = rng.integers(0, 3, 5)
        mean = nn.cross_entropy(Tensor(logits), y, reduction="mean").data
        total = nn.cross_entropy(Tensor(logits), y, reduction="sum").data
        none = nn.cross_entropy(Tensor(logits), y, reduction="none").data
        assert np.isclose(total, mean * 5)
        assert none.shape == (5,)
        assert np.isclose(none.mean(), mean)

    def test_label_smoothing_value(self, rng):
        logits = rng.standard_normal((4, 3))
        y = rng.integers(0, 3, 4)
        s = 0.2
        loss = nn.cross_entropy(Tensor(logits), y, label_smoothing=s).data
        logp = scipy_log_softmax(logits, axis=1)
        nll = -logp[np.arange(4), y]
        uniform = -logp.mean(axis=1)
        assert np.isclose(loss, ((1 - s) * nll + s * uniform).mean())

    def test_perfect_prediction_low_loss(self):
        logits = np.full((3, 4), -20.0)
        y = np.array([0, 1, 2])
        logits[np.arange(3), y] = 20.0
        loss = nn.cross_entropy(Tensor(logits), y).data
        assert loss < 1e-8

    def test_uniform_prediction_log_c(self):
        logits = np.zeros((5, 8))
        y = np.zeros(5, dtype=int)
        loss = nn.cross_entropy(Tensor(logits), y).data
        assert np.isclose(loss, np.log(8))

    def test_gradient(self, rng):
        logits = rng.standard_normal((5, 4))
        y = rng.integers(0, 4, 5)
        check_gradient(lambda lg: nn.cross_entropy(lg, y), [logits])
        check_gradient(lambda lg: nn.cross_entropy(lg, y, label_smoothing=0.3), [logits])

    def test_gradient_is_softmax_minus_onehot(self, rng):
        logits = Tensor(rng.standard_normal((4, 3)), requires_grad=True)
        y = np.array([0, 2, 1, 0])
        nn.cross_entropy(logits, y, reduction="sum").backward()
        from scipy.special import softmax

        one_hot = np.eye(3)[y]
        assert np.allclose(logits.grad.data, softmax(logits.data, axis=1) - one_hot)

    def test_second_order(self, rng):
        logits = rng.standard_normal((4, 3))
        y = rng.integers(0, 3, 4)
        check_hvp(lambda lg: nn.cross_entropy(lg, y), [logits], rng.standard_normal((4, 3)))

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError):
            nn.cross_entropy(Tensor(rng.standard_normal((2, 3, 4))), np.zeros(2, dtype=int))
        with pytest.raises(ValueError):
            nn.cross_entropy(Tensor(rng.standard_normal((2, 3))), np.zeros(5, dtype=int))

    def test_invalid_reduction(self, rng):
        with pytest.raises(ValueError):
            nn.cross_entropy(
                Tensor(rng.standard_normal((2, 3))), np.zeros(2, dtype=int), reduction="bad"
            )

    def test_extreme_logits_stable(self):
        logits = np.array([[1000.0, -1000.0], [-1000.0, 1000.0]])
        y = np.array([0, 1])
        loss = nn.cross_entropy(Tensor(logits), y).data
        assert np.isfinite(loss)
        assert loss < 1e-8


class TestMSE:
    def test_value(self, rng):
        pred = rng.standard_normal((4, 3))
        target = rng.standard_normal((4, 3))
        assert np.isclose(
            nn.mse_loss(Tensor(pred), target).data, ((pred - target) ** 2).mean()
        )

    def test_gradient(self, rng):
        pred = rng.standard_normal((4, 3))
        target = rng.standard_normal((4, 3))
        check_gradient(lambda p: nn.mse_loss(p, target), [pred])

    def test_module_wrappers(self, rng):
        logits = Tensor(rng.standard_normal((3, 4)))
        y = rng.integers(0, 4, 3)
        assert np.isclose(
            nn.CrossEntropyLoss()(logits, y).data, nn.cross_entropy(logits, y).data
        )
        target = rng.standard_normal((3, 4))
        assert np.isclose(
            nn.MSELoss()(logits, target).data, nn.mse_loss(logits, target).data
        )
