"""Checkpoint save/load."""

import numpy as np
import pytest

from repro.core.metrics import History
from repro.io import load_checkpoint, save_checkpoint
from repro.models import create_model
from repro.optim import SGD
from repro.tensor import Tensor, no_grad


def fresh_model(seed):
    return create_model("vgg6_bn", num_classes=3, scale=0.5, seed=seed)


class TestCheckpoint:
    def test_roundtrip_weights(self, tmp_path, rng):
        model = fresh_model(0)
        path = str(tmp_path / "model.npz")
        save_checkpoint(path, model)
        other = fresh_model(1)
        load_checkpoint(path, other)
        x = rng.standard_normal((2, 3, 8, 8))
        model.eval()
        other.eval()
        with no_grad():
            assert np.allclose(model(Tensor(x)).data, other(Tensor(x)).data)

    def test_buffers_roundtrip(self, tmp_path, rng):
        model = fresh_model(0)
        model.train()
        with no_grad():
            model(Tensor(rng.standard_normal((4, 3, 8, 8))))
        path = str(tmp_path / "m.npz")
        save_checkpoint(path, model)
        other = fresh_model(1)
        load_checkpoint(path, other)
        for (n1, b1), (_n2, b2) in zip(model.named_buffers(), other.named_buffers()):
            assert np.allclose(b1, b2), n1

    def test_metadata_and_history(self, tmp_path):
        model = fresh_model(0)
        history = History()
        history.log(train_loss=1.0, test_acc=0.5)
        opt = SGD(model.parameters(), lr=0.1, momentum=0.9)
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(path, model, metadata={"method": "hero", "gamma": 0.05},
                        optimizer=opt, history=history)
        sidecar = load_checkpoint(path, fresh_model(1))
        assert sidecar["metadata"]["method"] == "hero"
        assert sidecar["optimizer"]["lr"] == 0.1
        assert sidecar["history"]["test_acc"] == [0.5]

    def test_load_without_sidecar(self, tmp_path):
        model = fresh_model(0)
        path = str(tmp_path / "bare.npz")
        save_checkpoint(path, model)
        import os

        os.remove(path + ".json")
        sidecar = load_checkpoint(path, fresh_model(1))
        assert sidecar == {"metadata": {}}

    def test_architecture_mismatch_raises(self, tmp_path):
        model = fresh_model(0)
        path = str(tmp_path / "m.npz")
        save_checkpoint(path, model)
        wrong = create_model("vgg6_bn", num_classes=7, scale=0.5, seed=0)
        with pytest.raises(ValueError):
            load_checkpoint(path, wrong)

    def test_extension_optional(self, tmp_path):
        model = fresh_model(0)
        path = str(tmp_path / "m.npz")
        save_checkpoint(path, model)
        load_checkpoint(str(tmp_path / "m"), fresh_model(1))
