"""Checkpoint save/load and the shared DirectoryCache/JsonJournal primitives."""

import os
from multiprocessing import get_context

import numpy as np
import pytest

from repro.core.metrics import History
from repro.io import DirectoryCache, JsonJournal, load_checkpoint, save_checkpoint
from repro.models import create_model
from repro.optim import SGD
from repro.tensor import Tensor, no_grad


def fresh_model(seed):
    return create_model("vgg6_bn", num_classes=3, scale=0.5, seed=seed)


class TestCheckpoint:
    def test_roundtrip_weights(self, tmp_path, rng):
        model = fresh_model(0)
        path = str(tmp_path / "model.npz")
        save_checkpoint(path, model)
        other = fresh_model(1)
        load_checkpoint(path, other)
        x = rng.standard_normal((2, 3, 8, 8))
        model.eval()
        other.eval()
        with no_grad():
            assert np.allclose(model(Tensor(x)).data, other(Tensor(x)).data)

    def test_buffers_roundtrip(self, tmp_path, rng):
        model = fresh_model(0)
        model.train()
        with no_grad():
            model(Tensor(rng.standard_normal((4, 3, 8, 8))))
        path = str(tmp_path / "m.npz")
        save_checkpoint(path, model)
        other = fresh_model(1)
        load_checkpoint(path, other)
        for (n1, b1), (_n2, b2) in zip(model.named_buffers(), other.named_buffers()):
            assert np.allclose(b1, b2), n1

    def test_metadata_and_history(self, tmp_path):
        model = fresh_model(0)
        history = History()
        history.log(train_loss=1.0, test_acc=0.5)
        opt = SGD(model.parameters(), lr=0.1, momentum=0.9)
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(path, model, metadata={"method": "hero", "gamma": 0.05},
                        optimizer=opt, history=history)
        sidecar = load_checkpoint(path, fresh_model(1))
        assert sidecar["metadata"]["method"] == "hero"
        assert sidecar["optimizer"]["lr"] == 0.1
        assert sidecar["history"]["test_acc"] == [0.5]

    def test_load_without_sidecar(self, tmp_path):
        model = fresh_model(0)
        path = str(tmp_path / "bare.npz")
        save_checkpoint(path, model)
        import os

        os.remove(path + ".json")
        sidecar = load_checkpoint(path, fresh_model(1))
        assert sidecar == {"metadata": {}}

    def test_architecture_mismatch_raises(self, tmp_path):
        model = fresh_model(0)
        path = str(tmp_path / "m.npz")
        save_checkpoint(path, model)
        wrong = create_model("vgg6_bn", num_classes=7, scale=0.5, seed=0)
        with pytest.raises(ValueError):
            load_checkpoint(path, wrong)

    def test_extension_optional(self, tmp_path):
        model = fresh_model(0)
        path = str(tmp_path / "m.npz")
        save_checkpoint(path, model)
        load_checkpoint(str(tmp_path / "m"), fresh_model(1))


def _write_payload(tmp, payload="payload"):
    with open(os.path.join(tmp, "data.txt"), "w") as fh:
        fh.write(payload)


def _read_payload(path):
    with open(os.path.join(path, "data.txt")) as fh:
        return fh.read()


def _publish_n(task):
    """Process entry point: publish the same key repeatedly."""
    root, payload, repeats = task
    cache = DirectoryCache(root, ("data.txt",))
    for _ in range(repeats):
        cache.publish("key", lambda tmp: _write_payload(tmp, payload))
        got = cache.fetch("key", _read_payload)
        # Entries are atomic: a fetch always sees a complete payload
        # from SOME writer, never a torn or missing file.
        assert got in ("red", "blue")
    return True


def _journal_bump(task):
    """Process entry point: increment a counter record repeatedly."""
    root, repeats = task
    journal = JsonJournal(root)
    for _ in range(repeats):
        journal.update("counter", lambda cur: {"n": (cur["n"] if cur else 0) + 1})
    return True


class TestJsonJournal:
    def test_read_missing_is_none(self, tmp_path):
        journal = JsonJournal(str(tmp_path))
        assert journal.read("nope") is None
        assert journal.keys() == []
        assert journal.snapshot() == {}

    def test_update_creates_and_mutates(self, tmp_path):
        journal = JsonJournal(str(tmp_path))
        created = journal.update("k", lambda cur: {"state": "pending", "seen": cur})
        assert created == {"state": "pending", "seen": None}
        mutated = journal.update("k", lambda cur: dict(cur, state="leased"))
        assert mutated["state"] == "leased"
        assert journal.read("k") == mutated
        assert journal.keys() == ["k"]

    def test_mutate_exception_aborts_transition(self, tmp_path):
        journal = JsonJournal(str(tmp_path))
        journal.update("k", lambda cur: {"state": "pending"})

        def explode(cur):
            raise RuntimeError("claim lost")

        with pytest.raises(RuntimeError):
            journal.update("k", explode)
        assert journal.read("k") == {"state": "pending"}

    def test_returning_current_skips_write(self, tmp_path):
        journal = JsonJournal(str(tmp_path))
        journal.update("k", lambda cur: {"state": "pending"})
        before = os.stat(journal.path("k")).st_mtime_ns
        journal.update("k", lambda cur: cur)  # no-op transition
        assert os.stat(journal.path("k")).st_mtime_ns == before

    def test_concurrent_updates_serialize(self, tmp_path):
        """The journal's locked read-modify-write never loses an update."""
        ctx = get_context("fork")
        repeats = 25
        tasks = [(str(tmp_path), repeats)] * 4
        with ctx.Pool(4) as pool:
            assert all(pool.map(_journal_bump, tasks))
        assert JsonJournal(str(tmp_path)).read("counter")["n"] == 4 * repeats


class TestDirectoryCache:
    def test_publish_then_fetch(self, tmp_path):
        cache = DirectoryCache(str(tmp_path), ("data.txt",))
        assert cache.fetch("key", _read_payload) is None
        assert not cache.complete("key")
        cache.publish("key", _write_payload)
        assert cache.complete("key")
        assert cache.fetch("key", _read_payload) == "payload"

    def test_incomplete_entry_is_a_miss(self, tmp_path):
        cache = DirectoryCache(str(tmp_path), ("data.txt", "meta.json"))
        (tmp_path / "key").mkdir()
        (tmp_path / "key" / "data.txt").write_text("torn")
        assert not cache.complete("key")
        assert cache.fetch("key", _read_payload) is None

    def test_publish_replaces_stale_entry(self, tmp_path):
        cache = DirectoryCache(str(tmp_path), ("data.txt",))
        cache.publish("key", lambda tmp: _write_payload(tmp, "old"))
        cache.publish("key", lambda tmp: _write_payload(tmp, "new"))
        assert cache.fetch("key", _read_payload) == "new"

    def test_failed_build_leaves_no_debris(self, tmp_path):
        cache = DirectoryCache(str(tmp_path), ("data.txt",))

        def broken(tmp):
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            cache.publish("key", broken)
        assert not cache.complete("key")
        assert [n for n in os.listdir(tmp_path) if ".tmp." in n] == []

    def test_build_missing_manifest_rejected(self, tmp_path):
        cache = DirectoryCache(str(tmp_path), ("data.txt", "missing.txt"))
        with pytest.raises(ValueError):
            cache.publish("key", _write_payload)
        assert not cache.complete("key")

    def test_staging_path_is_stable(self, tmp_path):
        cache = DirectoryCache(str(tmp_path), ("data.txt",))
        assert cache.staging_path("key") == cache.staging_path("key")
        assert cache.staging_path("key") == str(tmp_path / "key.staging")

    def test_commit_staging_promotes_incremental_build(self, tmp_path):
        cache = DirectoryCache(str(tmp_path), ("data.txt",))
        staging = cache.staging_path("key")
        os.makedirs(staging)
        with open(os.path.join(staging, "data.txt"), "w") as fh:
            fh.write("payload")
        path = cache.commit_staging("key")
        assert path == cache.entry_path("key")
        assert cache.complete("key")
        assert cache.fetch("key", _read_payload) == "payload"
        assert not os.path.exists(staging)

    def test_commit_staging_rejects_missing_manifest(self, tmp_path):
        cache = DirectoryCache(str(tmp_path), ("data.txt", "meta.json"))
        staging = cache.staging_path("key")
        os.makedirs(staging)
        with open(os.path.join(staging, "data.txt"), "w") as fh:
            fh.write("payload")
        with pytest.raises(ValueError):
            cache.commit_staging("key")
        assert os.path.exists(staging)  # staged work survives for a resume
        assert not cache.complete("key")

    def test_commit_staging_replaces_previous_entry(self, tmp_path):
        cache = DirectoryCache(str(tmp_path), ("data.txt",))
        cache.publish("key", lambda tmp: _write_payload(tmp, "old"))
        staging = cache.staging_path("key")
        os.makedirs(staging)
        with open(os.path.join(staging, "data.txt"), "w") as fh:
            fh.write("new")
        cache.commit_staging("key")
        assert cache.fetch("key", _read_payload) == "new"

    def test_discard_staging_is_idempotent(self, tmp_path):
        cache = DirectoryCache(str(tmp_path), ("data.txt",))
        cache.discard_staging("key")  # nothing staged: no-op
        os.makedirs(cache.staging_path("key"))
        cache.discard_staging("key")
        assert not os.path.exists(cache.staging_path("key"))

    def test_concurrent_publishers_stay_atomic(self, tmp_path):
        ctx = get_context("fork")
        tasks = [(str(tmp_path), color, 10) for color in ("red", "blue") * 2]
        with ctx.Pool(4) as pool:
            assert all(pool.map(_publish_n, tasks))
        cache = DirectoryCache(str(tmp_path), ("data.txt",))
        assert cache.fetch("key", _read_payload) in ("red", "blue")
        assert [n for n in os.listdir(tmp_path) if ".tmp." in n] == []
