"""Shared training loop.

All four methods in the paper (SGD, GRAD-L1, first-order-only/SAM,
HERO) are :class:`Trainer` subclasses that differ only in
:meth:`Trainer.training_step` — the code that turns a mini-batch into
parameter gradients.  The outer loop (epochs, cosine LR schedule,
metric logging, callbacks) is identical across methods, mirroring the
paper's "same training procedure" protocol.
"""

import numpy as np

from ..tensor import Tensor, arena_pause, no_grad
from .metrics import AverageMeter, History, correct_count


class Callback:
    """Hook interface for the training loop."""

    def on_train_begin(self, trainer):
        pass

    def on_epoch_end(self, trainer, epoch, logs):
        """``logs`` is the dict for this epoch; mutate it to add metrics."""

    def on_step_end(self, trainer, step):
        """Called after every optimizer step (``step`` counts from 0).

        The only hook inside the batch loop, so it is where anything
        that must outlive a *single long epoch* plugs in — the sweep
        fleet's lease-renewal heartbeat
        (:class:`repro.experiments.scheduler.StepLeaseRenewal`) renews
        here so a ``full``-profile run survives a lease timeout shorter
        than one epoch.  Implementations must be cheap (they run once
        per batch) and must not mutate model or optimizer state.
        """

    def on_train_end(self, trainer):
        pass


class Trainer:
    """Base trainer: epochs of mini-batch updates plus evaluation.

    Parameters
    ----------
    model:
        A :class:`repro.nn.Module` classifier.
    loss_fn:
        Callable ``(logits, targets) -> scalar Tensor``.
    optimizer:
        A :class:`repro.optim.Optimizer` over ``model.parameters()``.
    scheduler:
        Optional LR scheduler stepped once per epoch.
    callbacks:
        Iterable of :class:`Callback`.
    grad_clip:
        Optional global-l2-norm gradient clip applied to whatever
        gradient the method produced (HERO's Eq. 17 gradient can spike
        early in training when the Hessian penalty is large).
    """

    method_name = "base"

    def __init__(self, model, loss_fn, optimizer, scheduler=None, callbacks=(), grad_clip=None):
        if grad_clip is not None and grad_clip <= 0:
            raise ValueError(f"grad_clip must be positive, got {grad_clip}")
        self.model = model
        self.loss_fn = loss_fn
        self.optimizer = optimizer
        self.scheduler = scheduler
        self.callbacks = list(callbacks)
        self.grad_clip = grad_clip
        self.params = [p for p in model.parameters()]
        self.history = History()
        self.stop_requested = False
        self.global_step = 0  #: optimizer steps taken across all epochs

    # ------------------------------------------------------------------
    def training_step(self, x, y):
        """Compute gradients for one batch; return ``(loss, logits)``.

        Subclasses must leave the final gradient in each parameter's
        ``.grad``; the loop then calls ``optimizer.step()``.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    def fit(self, train_loader, epochs, test_loader=None, verbose=False):
        """Train for ``epochs`` epochs; returns the :class:`History`."""
        for callback in self.callbacks:
            callback.on_train_begin(self)
        for epoch in range(epochs):
            if self.stop_requested:
                break
            logs = self.run_epoch(train_loader, epoch)
            if test_loader is not None:
                test_loss, test_acc = self.evaluate(test_loader)
                logs["test_loss"] = test_loss
                logs["test_acc"] = test_acc
            if self.scheduler is not None:
                self.scheduler.step()
            for callback in self.callbacks:
                callback.on_epoch_end(self, epoch, logs)
            self.history.log(**logs)
            if verbose:
                summary = ", ".join(
                    f"{k}={v:.4f}" for k, v in logs.items() if isinstance(v, float)
                )
                print(f"[{self.method_name}] epoch {epoch + 1}/{epochs}: {summary}")
        for callback in self.callbacks:
            callback.on_train_end(self)
        return self.history

    def run_epoch(self, train_loader, epoch):
        """One pass over the training loader; returns the epoch's logs.

        Metric accumulation happens in :class:`AverageMeter`'s Python
        floats (i.e. float64) regardless of the engine precision
        policy, so logged losses/accuracies do not drift when training
        runs in float32.
        """
        self.model.train()
        loss_meter = AverageMeter()
        acc_meter = AverageMeter()
        for x, y in train_loader:
            loss_value, logits = self.training_step(x, y)
            if self.grad_clip is not None:
                from ..optim import clip_grad_norm_

                clip_grad_norm_(self.params, self.grad_clip)
            self.optimizer.step()
            for callback in self.callbacks:
                callback.on_step_end(self, self.global_step)
            self.global_step += 1
            batch = len(y)
            loss_meter.update(loss_value, batch)
            acc_meter.update(correct_count(logits, y) / batch, batch)
            if self.stop_requested:
                # A step callback may abandon the run mid-epoch (e.g. a
                # fleet worker whose lease was stolen — its result will
                # be discarded, so finishing the epoch is pure waste).
                break
        return {
            "epoch": epoch,
            "lr": self.optimizer.lr,
            "train_loss": loss_meter.average,
            "train_acc": acc_meter.average,
        }

    def evaluate(self, loader):
        """Mean loss and accuracy over ``loader`` in eval mode.

        Runs under :func:`repro.tensor.arena_pause`: evaluation shapes
        (odd final batches, eval-mode norm paths) must neither consume
        the training step's arena slots nor grow the slot list.
        """
        self.model.eval()
        loss_meter = AverageMeter()
        acc_meter = AverageMeter()
        with arena_pause(), no_grad():
            for x, y in loader:
                logits = self.model(Tensor(x))
                loss = self.loss_fn(logits, y)
                batch = len(y)
                loss_meter.update(float(loss.data), batch)
                acc_meter.update(correct_count(logits, y) / batch, batch)
        self.model.train()
        return loss_meter.average, acc_meter.average

    # ------------------------------------------------------------------
    # Gradient plumbing shared by subclasses
    # ------------------------------------------------------------------
    def _forward_loss(self, x, y):
        logits = self.model(Tensor(x))
        return self.loss_fn(logits, y), logits

    def _collect_grads(self, detach=True):
        """Grab per-parameter gradients (optionally as raw numpy copies)."""
        grads = []
        for param in self.params:
            if param.grad is None:
                grads.append(
                    np.zeros_like(param.data) if detach else Tensor(np.zeros_like(param.data))
                )
            else:
                grads.append(param.grad.data.copy() if detach else param.grad)
        return grads

    def _clear_grads(self):
        for param in self.params:
            param.grad = None

    def _set_grads(self, arrays):
        for param, grad in zip(self.params, arrays):
            param.grad = Tensor(np.asarray(grad))
