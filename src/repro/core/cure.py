"""CURE — curvature regularization in *input* space ([18], Sec. 2.3).

HERO adapts CURE's finite-difference Hessian penalty from input space
to weight space.  Implementing CURE itself closes the loop: the same
Eq. 14-style machinery, but perturbing the *input* along its gradient
direction:

    L_total = L(x) + gamma * || dL/dx (x + h z) - dL/dx (x) ||,
    z = dL/dx / ||dL/dx||     (per sample)

which improves robustness to input (adversarial) perturbation rather
than weight perturbation.  Included as a related-work baseline: the
tests and the adversarial example compare what each flavour of
curvature regularization buys.
"""

import numpy as np

from ..tensor import Tensor, arena_step, default_dtype
from .trainer import Trainer

_EPS = 1e-12


class CURETrainer(Trainer):
    """Input-curvature-regularized training.

    Parameters
    ----------
    h:
        Input perturbation step (CURE's h; scaled per sample to the
        input-gradient direction).
    gamma:
        Regularization strength.
    penalty:
        ``"norm"`` or ``"sq_norm"`` of the input-gradient difference.
    """

    method_name = "cure"

    def __init__(
        self,
        model,
        loss_fn,
        optimizer,
        scheduler=None,
        callbacks=(),
        h=1.0,
        gamma=0.1,
        penalty="norm",
        grad_clip=None,
    ):
        super().__init__(model, loss_fn, optimizer, scheduler, callbacks, grad_clip=grad_clip)
        if h <= 0:
            raise ValueError(f"input perturbation h must be positive, got {h}")
        if gamma < 0:
            raise ValueError(f"gamma must be non-negative, got {gamma}")
        if penalty not in ("norm", "sq_norm"):
            raise ValueError(f"penalty must be 'norm' or 'sq_norm', got {penalty!r}")
        self.h = float(h)
        self.gamma = float(gamma)
        self.penalty = penalty

    def training_step(self, x, y):
        arena_step()
        x = np.asarray(x, dtype=default_dtype())
        self._clear_grads()

        # (1) clean pass; input gradient defines the probe direction z
        x_leaf = Tensor(x, requires_grad=True)
        logits = self.model(x_leaf)
        loss = self.loss_fn(logits, y)
        loss.backward()
        clean_param_grads = self._collect_grads(detach=True)
        input_grad = (
            np.zeros_like(x) if x_leaf.grad is None else x_leaf.grad.data
        )
        flat = input_grad.reshape(len(x), -1)
        norms = np.linalg.norm(flat, axis=1, keepdims=True)
        z = (flat / np.maximum(norms, _EPS)).reshape(x.shape)

        # (2) perturbed pass, gradient w.r.t. the perturbed input kept
        #     differentiable so the penalty reaches the weights
        self._clear_grads()
        x_perturbed = Tensor(x + self.h * z, requires_grad=True)
        perturbed_loss = self.loss_fn(self.model(x_perturbed), y)
        perturbed_loss.backward(create_graph=True)
        perturbed_input_grad = x_perturbed.grad
        self._clear_grads()

        # (3) penalty on the input-gradient difference
        reg_grads = [np.zeros_like(p.data) for p in self.params]
        if perturbed_input_grad is not None and self.gamma > 0:
            diff = perturbed_input_grad - Tensor(input_grad)
            if self.penalty == "norm":
                penalty = diff.norm(eps=_EPS)
            else:
                penalty = (diff * diff).sum()
            if penalty._ctx is not None or penalty.requires_grad:
                penalty.backward()
                reg_grads = [
                    np.zeros_like(p.data) if p.grad is None else p.grad.data
                    for p in self.params
                ]

        # (4) total gradient: clean first-order term + gamma * penalty grad
        combined = [
            gc + self.gamma * gr for gc, gr in zip(clean_param_grads, reg_grads)
        ]
        self._set_grads(combined)
        return float(loss.data), logits
