"""HERO — Hessian-Enhanced Robust Optimization (Algorithm 1).

Per batch:

1.  ``g_i = dL/dW_i`` at the current weights (first backward pass);
2.  perturbation ``h z_i`` with ``z_i`` from Eq. 15 (layer-adaptive,
    along the gradient direction, scaled to the layer's weight norm);
3.  perturbed gradient ``dL/dW*`` at ``W* = W + h z`` with
    ``create_graph=True`` so it stays differentiable;
4.  Hessian penalty ``G = sum_i || dL/dW_i* - g_i ||`` (finite
    difference of gradients ~ ``h * H z``, Eq. 14) and its gradient
    w.r.t. the *perturbed* weights via double backprop — the paper's
    Eq. 16 approximation that treats ``z`` as constant;
5.  HERO gradient (Eq. 17):
    ``dW_i = dL/dW_i* + gamma * dG/dW_i*`` (the ``alpha W`` weight
    decay lives in the optimizer, shared by all methods).

``penalty="norm"`` follows Algorithm 1 line 10 literally
(``||.||_2``); ``penalty="sq_norm"`` matches the ``sum lambda_i^2``
formulation of Eq. 13 — both are exposed and compared in the ablation
bench.

``regularizer`` selects how ``H z`` is obtained:

* ``"finite_diff"`` (the paper's choice): the gradient difference of
  Eq. 14, costing one extra backprop;
* ``"exact_hvp"``: the exact Hessian-vector product via double
  backprop, whose gradient then requires a third-order pass — an
  ablation the engine supports because backward rules are themselves
  differentiable.  The two differ exactly by the paper's Eq. 16
  approximation: on a quadratic loss the exact penalty gradient
  vanishes (H is constant) while the finite-difference rule does not,
  so this arm isolates the approximation's effect.
"""

import numpy as np

from ..tensor import Tensor, arena_step
from .perturbation import PERTURBATIONS, apply_offsets
from .trainer import Trainer

_PENALTY_EPS = 1e-12


class HEROTrainer(Trainer):
    """The paper's method.

    Parameters
    ----------
    h:
        Perturbation step size (paper: 0.5 for CIFAR-10, 1.0 otherwise).
    gamma:
        Hessian regularization strength (paper grid:
        {0.01, 0.05, 0.1, 0.5, 1.0, 5.0}).
    penalty:
        ``"norm"`` (Algorithm 1) or ``"sq_norm"`` (Eq. 13 form).
    perturbation:
        ``"layer_adaptive"`` (Eq. 15) or ``"global"`` (ablation).
    regularizer:
        ``"finite_diff"`` (Eq. 14, the paper) or ``"exact_hvp"``
        (third-order ablation; see module docstring).
    """

    method_name = "hero"

    def __init__(
        self,
        model,
        loss_fn,
        optimizer,
        scheduler=None,
        callbacks=(),
        h=0.5,
        gamma=0.1,
        penalty="norm",
        perturbation="layer_adaptive",
        regularizer="finite_diff",
        grad_clip=None,
    ):
        super().__init__(model, loss_fn, optimizer, scheduler, callbacks, grad_clip=grad_clip)
        if h <= 0:
            raise ValueError(f"perturbation step h must be positive, got {h}")
        if gamma < 0:
            raise ValueError(f"gamma must be non-negative, got {gamma}")
        if penalty not in ("norm", "sq_norm"):
            raise ValueError(f"penalty must be 'norm' or 'sq_norm', got {penalty!r}")
        if perturbation not in PERTURBATIONS:
            raise ValueError(
                f"perturbation must be one of {sorted(PERTURBATIONS)}, got {perturbation!r}"
            )
        if regularizer not in ("finite_diff", "exact_hvp"):
            raise ValueError(
                f"regularizer must be 'finite_diff' or 'exact_hvp', got {regularizer!r}"
            )
        self.h = float(h)
        self.gamma = float(gamma)
        self.penalty = penalty
        self.perturbation = perturbation
        self.regularizer = regularizer

    def training_step(self, x, y):
        arena_step()
        if self.regularizer == "exact_hvp":
            return self._training_step_exact(x, y)
        return self._training_step_finite_diff(x, y)

    def _training_step_finite_diff(self, x, y):
        # (1) clean gradient g_i
        self._clear_grads()
        loss, logits = self._forward_loss(x, y)
        loss.backward()
        clean_grads = self._collect_grads(detach=True)

        # (2) Eq. 15 perturbation, applied in place
        offsets = PERTURBATIONS[self.perturbation](self.params, clean_grads, self.h)
        apply_offsets(self.params, offsets, sign=+1.0)

        try:
            # (3) perturbed gradient, kept differentiable
            self._clear_grads()
            perturbed_loss, _ = self._forward_loss(x, y)
            perturbed_loss.backward(create_graph=True)
            perturbed_grads = self._collect_grads(detach=False)
            self._clear_grads()

            # (4) Hessian penalty and its gradient at W*
            regularizer = self._hessian_penalty(perturbed_grads, clean_grads)
            if regularizer is not None and self.gamma > 0:
                regularizer.backward()
            reg_grads = [
                np.zeros_like(p.data) if p.grad is None else p.grad.data
                for p in self.params
            ]

            # (5) Eq. 17 combined gradient
            combined = [
                self._grad_data(gp) + self.gamma * gr
                for gp, gr in zip(perturbed_grads, reg_grads)
            ]
        finally:
            # Restore the unperturbed weights before the optimizer step.
            apply_offsets(self.params, offsets, sign=-1.0)

        self._set_grads(combined)
        return float(loss.data), logits

    def _training_step_exact(self, x, y):
        """Exact-HVP ablation: regularize ``penalty(H z)`` directly.

        ``H z`` is formed by double backprop (so no ``h``-scaled finite
        difference enters the penalty) and its gradient by a third
        backward pass; the first-order term is still the perturbed
        gradient, as in Eq. 17.
        """
        # (1) clean gradient, kept differentiable for the HVP
        self._clear_grads()
        loss, logits = self._forward_loss(x, y)
        loss.backward(create_graph=True)
        graph_grads = self._collect_grads(detach=False)
        clean_grads = [self._grad_data(g).copy() for g in graph_grads]
        self._clear_grads()

        # (2) Eq. 15 direction z (constants w.r.t. differentiation)
        z_dirs = PERTURBATIONS[self.perturbation](self.params, clean_grads, 1.0)

        # (3) Hz via double backprop: d(g . z)/dW, graph retained
        inner = None
        for grad, z in zip(graph_grads, z_dirs):
            if not isinstance(grad, Tensor) or grad._ctx is None:
                continue
            term = (grad * Tensor(z)).sum()
            inner = term if inner is None else inner + term
        reg_grads = [np.zeros_like(p.data) for p in self.params]
        if inner is not None and self.gamma > 0:
            inner.backward(create_graph=True)
            hz = self._collect_grads(detach=False)
            self._clear_grads()
            # (4) penalty(Hz) and its gradient (third-order pass)
            penalty = None
            for hv in hz:
                if not isinstance(hv, Tensor) or (hv._ctx is None and not hv.requires_grad):
                    continue
                term = hv.norm(eps=_PENALTY_EPS) if self.penalty == "norm" else (hv * hv).sum()
                penalty = term if penalty is None else penalty + term
            if penalty is not None and (penalty._ctx is not None or penalty.requires_grad):
                penalty.backward()
                reg_grads = [
                    np.zeros_like(p.data) if p.grad is None else p.grad.data
                    for p in self.params
                ]
        self._clear_grads()

        # (5) first-order term at the perturbed point + combined update
        offsets = [self.h * z for z in z_dirs]
        apply_offsets(self.params, offsets, sign=+1.0)
        try:
            perturbed_loss, _ = self._forward_loss(x, y)
            perturbed_loss.backward()
            perturbed = self._collect_grads(detach=True)
        finally:
            apply_offsets(self.params, offsets, sign=-1.0)

        combined = [gp + self.gamma * gr for gp, gr in zip(perturbed, reg_grads)]
        self._set_grads(combined)
        return float(loss.data), logits

    def _hessian_penalty(self, perturbed_grads, clean_grads):
        """``G = sum_i penalty(dL/dW_i* - g_i)`` as a graph scalar."""
        total = None
        for grad_p, grad_c in zip(perturbed_grads, clean_grads):
            if not isinstance(grad_p, Tensor) or grad_p._ctx is None and not grad_p.requires_grad:
                # Parameter untouched by the loss; nothing to regularize.
                continue
            diff = grad_p - Tensor(grad_c)
            if self.penalty == "norm":
                term = diff.norm(eps=_PENALTY_EPS)
            else:
                term = (diff * diff).sum()
            total = term if total is None else total + term
        return total

    @staticmethod
    def _grad_data(grad):
        return grad.data if isinstance(grad, Tensor) else np.asarray(grad)
