"""Training callbacks: Hessian-norm tracking (Fig. 2) and checkpoints."""

import copy

from ..hessian.norm import hz_norm
from .trainer import Callback


class HessianNormCallback(Callback):
    """Log the paper's ``||Hz||`` metric each epoch (Fig. 2a).

    Parameters
    ----------
    loader:
        Loader over the *training* set (the paper averages the metric
        over the entire training set).
    h:
        Probe step — the experiment's perturbation step size.
    max_batches:
        Cap the number of batches per measurement (speed knob).
    every:
        Measure every ``every`` epochs (still always measures the last
        epoch seen).
    """

    def __init__(self, loader, loss_fn, h=0.5, max_batches=None, every=1):
        self.loader = loader
        self.loss_fn = loss_fn
        self.h = h
        self.max_batches = max_batches
        self.every = max(1, every)

    def on_epoch_end(self, trainer, epoch, logs):
        if epoch % self.every:
            return
        logs["hessian_norm"] = hz_norm(
            trainer.model,
            self.loss_fn,
            self.loader,
            h=self.h,
            max_batches=self.max_batches,
        )


class GeneralizationGapCallback(Callback):
    """Log ``train_acc - test_acc`` when both are present (Fig. 2b)."""

    def on_epoch_end(self, trainer, epoch, logs):
        if "train_acc" in logs and "test_acc" in logs:
            logs["generalization_gap"] = logs["train_acc"] - logs["test_acc"]


class CheckpointCallback(Callback):
    """Keep the state dict of the best epoch by a monitored metric."""

    def __init__(self, monitor="test_acc", mode="max"):
        if mode not in ("max", "min"):
            raise ValueError(f"mode must be 'max' or 'min', got {mode!r}")
        self.monitor = monitor
        self.mode = mode
        self.best_value = None
        self.best_state = None
        self.best_epoch = None

    def on_epoch_end(self, trainer, epoch, logs):
        value = logs.get(self.monitor)
        if value is None:
            return
        better = (
            self.best_value is None
            or (self.mode == "max" and value > self.best_value)
            or (self.mode == "min" and value < self.best_value)
        )
        if better:
            self.best_value = value
            self.best_epoch = epoch
            self.best_state = copy.deepcopy(trainer.model.state_dict())


class LambdaCallback(Callback):
    """Wrap a plain function as an epoch-end callback."""

    def __init__(self, on_epoch_end):
        self._fn = on_epoch_end

    def on_epoch_end(self, trainer, epoch, logs):
        self._fn(trainer, epoch, logs)
