"""Early stopping callback."""

from .trainer import Callback


class EarlyStopping(Callback):
    """Stop training when a monitored metric stops improving.

    The training loop has no built-in abort channel, so this callback
    sets ``trainer.stop_requested``; :meth:`should_stop` is also
    available for custom loops.  When used with :class:`Trainer.fit`,
    remaining epochs are skipped (the loop checks the flag).
    """

    def __init__(self, monitor="test_acc", mode="max", patience=5, min_delta=0.0):
        if mode not in ("max", "min"):
            raise ValueError(f"mode must be 'max' or 'min', got {mode!r}")
        if patience < 1:
            raise ValueError(f"patience must be >= 1, got {patience}")
        self.monitor = monitor
        self.mode = mode
        self.patience = patience
        self.min_delta = min_delta
        self.best = None
        self.stale_epochs = 0
        self.stopped_epoch = None

    def _improved(self, value):
        if self.best is None:
            return True
        if self.mode == "max":
            return value > self.best + self.min_delta
        return value < self.best - self.min_delta

    def on_epoch_end(self, trainer, epoch, logs):
        """Track the monitored metric; request a stop when stale."""
        value = logs.get(self.monitor)
        if value is None:
            return
        if self._improved(value):
            self.best = value
            self.stale_epochs = 0
        else:
            self.stale_epochs += 1
            if self.stale_epochs >= self.patience:
                self.stopped_epoch = epoch
                trainer.stop_requested = True

    def should_stop(self):
        """Whether the stop condition has fired."""
        return self.stopped_epoch is not None
