"""Layer-adaptive weight perturbations (Eq. 15 of the paper).

HERO probes curvature along the gradient direction, with the
perturbation's l2 norm scaled *per layer* to the layer's weight norm:

    z_i = ||W_i||_2 * g_i / ||g_i||_2

so that layers with large weights receive proportionally large probes
("adapting perturbation strength across different layers based on
their weight distribution", Sec. 4.1).  The actual weight offset is
``h * z_i`` with the scalar step ``h`` from the experiment config
(0.5 on CIFAR-10, 1.0 elsewhere in the paper).

A global (non-adaptive) variant is included for the ablation bench.
"""

import numpy as np

_EPS = 1e-12


def layer_adaptive_perturbation(params, grads, h):
    """Compute ``h * z_i`` per parameter tensor.

    Parameters
    ----------
    params:
        Sequence of Parameters (their current weights set the scale).
    grads:
        Matching sequence of numpy gradient arrays.
    h:
        Scalar perturbation step.

    Returns a list of numpy arrays (zero where the gradient vanishes).
    """
    if len(params) != len(grads):
        raise ValueError("params and grads length mismatch")
    deltas = []
    for param, grad in zip(params, grads):
        grad_norm = float(np.linalg.norm(grad))
        if grad_norm < _EPS:
            deltas.append(np.zeros_like(param.data))
            continue
        weight_norm = float(np.linalg.norm(param.data))
        deltas.append((h * weight_norm / grad_norm) * grad)
    return deltas


def global_perturbation(params, grads, h):
    """Non-adaptive ablation: one global scale for all layers.

    ``z = ||W||_2 * g / ||g||_2`` with norms taken over the *whole*
    parameter vector — what Eq. 15 would be without the per-layer
    adaptation the paper argues for in Sec. 4.1.
    """
    if len(params) != len(grads):
        raise ValueError("params and grads length mismatch")
    total_grad_sq = sum(float(np.sum(g * g)) for g in grads)
    grad_norm = np.sqrt(total_grad_sq)
    if grad_norm < _EPS:
        return [np.zeros_like(p.data) for p in params]
    weight_norm = np.sqrt(sum(float(np.sum(p.data * p.data)) for p in params))
    scale = h * weight_norm / grad_norm
    return [scale * g for g in grads]


def apply_offsets(params, offsets, sign=1.0):
    """Add ``sign * offsets`` to parameter data, writing in place.

    Writing into the existing buffers (rather than rebinding
    ``param.data``) is bit-identical — ``w + (-o) == w - o`` exactly in
    IEEE — and keeps any views other subsystems hold over the parameter
    (the fused optimizers' flat-arena views) in sync for free.
    """
    if sign == 1.0:
        for param, offset in zip(params, offsets):
            np.add(param.data, offset, out=param.data)
    elif sign == -1.0:
        for param, offset in zip(params, offsets):
            np.subtract(param.data, offset, out=param.data)
    else:
        for param, offset in zip(params, offsets):
            np.add(param.data, sign * offset, out=param.data)


PERTURBATIONS = {
    "layer_adaptive": layer_adaptive_perturbation,
    "global": global_perturbation,
}
