"""``repro.core`` — HERO and the baselines it is compared against.

The paper's four training methods share one :class:`Trainer` loop:

========================  =====================================
``"sgd"``                 :class:`ERMTrainer` (plain SGD)
``"grad_l1"``             :class:`GradL1Trainer` (Alizadeh [1])
``"first_order"``         :class:`SAMTrainer` (Table 3 ablation)
``"hero"``                :class:`HEROTrainer` (Algorithm 1)
========================  =====================================

Use :func:`make_trainer` to build any of them from a method name.
"""

from .trainer import Trainer, Callback
from .erm import ERMTrainer
from .sam import SAMTrainer
from .gradl1 import GradL1Trainer
from .hero import HEROTrainer
from .cure import CURETrainer
from .qat import QATTrainer
from .metrics import accuracy, correct_count, AverageMeter, History
from .early_stopping import EarlyStopping
from .callbacks import (
    HessianNormCallback,
    GeneralizationGapCallback,
    CheckpointCallback,
    LambdaCallback,
)
from .perturbation import (
    layer_adaptive_perturbation,
    global_perturbation,
    apply_offsets,
    PERTURBATIONS,
)

_TRAINERS = {
    "sgd": ERMTrainer,
    "grad_l1": GradL1Trainer,
    "first_order": SAMTrainer,
    "hero": HEROTrainer,
    "cure": CURETrainer,
    "qat": QATTrainer,
}


def available_methods():
    """Sorted list of trainer method names."""
    return sorted(_TRAINERS)


def make_trainer(method, model, loss_fn, optimizer, scheduler=None, callbacks=(), **kwargs):
    """Build the trainer for ``method`` with method-specific ``kwargs``.

    ``hero`` accepts ``h``, ``gamma``, ``penalty``, ``perturbation``;
    ``first_order`` accepts ``h``, ``perturbation``; ``grad_l1``
    accepts ``lambda_l1``; ``sgd`` accepts none.
    """
    if method not in _TRAINERS:
        raise KeyError(f"unknown method {method!r}; available: {available_methods()}")
    cls = _TRAINERS[method]
    return cls(model, loss_fn, optimizer, scheduler=scheduler, callbacks=callbacks, **kwargs)


__all__ = [
    "Trainer",
    "Callback",
    "ERMTrainer",
    "SAMTrainer",
    "GradL1Trainer",
    "HEROTrainer",
    "CURETrainer",
    "QATTrainer",
    "accuracy",
    "correct_count",
    "AverageMeter",
    "History",
    "HessianNormCallback",
    "GeneralizationGapCallback",
    "CheckpointCallback",
    "LambdaCallback",
    "EarlyStopping",
    "layer_adaptive_perturbation",
    "global_perturbation",
    "apply_offsets",
    "PERTURBATIONS",
    "available_methods",
    "make_trainer",
]
