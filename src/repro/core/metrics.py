"""Training metrics: accuracy and running averages."""

import numpy as np


def accuracy(logits, targets):
    """Fraction of argmax predictions matching integer targets."""
    logits = np.asarray(logits if not hasattr(logits, "data") else logits.data)
    targets = np.asarray(targets)
    predictions = logits.argmax(axis=1)
    return float((predictions == targets).mean())


def correct_count(logits, targets):
    """Number of argmax predictions matching integer targets."""
    logits = np.asarray(logits if not hasattr(logits, "data") else logits.data)
    targets = np.asarray(targets)
    return int((logits.argmax(axis=1) == targets).sum())


class AverageMeter:
    """Weighted running average (weights = batch sizes)."""

    def __init__(self):
        self.total = 0.0
        self.weight = 0.0

    def update(self, value, weight=1.0):
        """Fold ``value`` (weighted) into the running average."""
        self.total += float(value) * weight
        self.weight += weight

    @property
    def average(self):
        """Current weighted mean (0 when nothing was recorded)."""
        return self.total / self.weight if self.weight else 0.0

    def reset(self):
        """Clear the accumulator."""
        self.total = 0.0
        self.weight = 0.0


class History:
    """Per-epoch training log with column access.

    ``history.log(train_loss=..., test_acc=...)`` appends one epoch;
    ``history["test_acc"]`` returns the column as a list; missing
    epochs are padded with ``None`` so ragged callbacks are safe.
    """

    def __init__(self):
        self._rows = []

    def log(self, **values):
        """Append one epoch's metrics."""
        self._rows.append(dict(values))

    def __len__(self):
        return len(self._rows)

    def __getitem__(self, key):
        return [row.get(key) for row in self._rows]

    def last(self, key, default=None):
        """Most recent recorded value of ``key``."""
        for row in reversed(self._rows):
            if key in row:
                return row[key]
        return default

    def columns(self):
        """All metric names seen so far, in first-seen order."""
        keys = []
        for row in self._rows:
            for key in row:
                if key not in keys:
                    keys.append(key)
        return keys

    def to_dict(self):
        """Column-major dict of the full history."""
        return {key: self[key] for key in self.columns()}
