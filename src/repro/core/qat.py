"""Quantization-aware training (QAT) — the paper's motivating contrast.

Sec. 2.2: straight-through-estimator finetuning "regains the
quantization performance via retraining on a specific quantization
precision, yet fail[s] to perform well when the precision is changed on
the fly".  This trainer implements that scheme so the claim can be
measured: weights are fake-quantized to a *target precision* on every
forward pass (straight-through gradients flow to full-precision master
weights), producing a model excellent at its target precision and
brittle elsewhere — the opposite robustness profile from HERO's.
"""

from ..quant.quantizer import QuantScheme, quantize_array
from ..tensor import arena_step
from .trainer import Trainer


class QATTrainer(Trainer):
    """Straight-through-estimator QAT at a fixed weight precision.

    Per batch: quantize every conv/linear weight to ``bits`` in place,
    run forward/backward (the quantization error is constant w.r.t.
    the graph, so gradients are exactly the straight-through ones),
    then restore the full-precision master weights and apply the
    update to them.
    """

    method_name = "qat"

    def __init__(
        self,
        model,
        loss_fn,
        optimizer,
        scheduler=None,
        callbacks=(),
        bits=4,
        symmetric=True,
        grad_clip=None,
    ):
        super().__init__(model, loss_fn, optimizer, scheduler, callbacks, grad_clip=grad_clip)
        self.scheme = QuantScheme(bits=bits, symmetric=symmetric)
        self._targets = self._find_quantized_params(model)

    @staticmethod
    def _find_quantized_params(model):
        from ..nn import Conv2d, Linear

        targets = []
        for _name, module in model.named_modules():
            if isinstance(module, (Conv2d, Linear)):
                targets.append(module.weight)
        if not targets:
            raise ValueError("model has no Conv2d/Linear weights to fake-quantize")
        return targets

    def training_step(self, x, y):
        arena_step()
        masters = [w.data.copy() for w in self._targets]
        try:
            for weight in self._targets:
                weight.data, _info = quantize_array(weight.data, self.scheme)
            self._clear_grads()
            loss, logits = self._forward_loss(x, y)
            loss.backward()
        finally:
            # Straight-through: gradients computed at the quantized
            # point are applied to the full-precision master weights.
            for weight, master in zip(self._targets, masters):
                weight.data = master
        return float(loss.data), logits
