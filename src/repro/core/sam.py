"""First-order-only trainer (the SAM-style arm of Table 3).

Implements the update the paper ablates against HERO:

    dW_i = dL/dW_i evaluated at W* = W + h z   (+ alpha W in the optimizer)

i.e. HERO's Eq. 17 with ``gamma = 0``: the perturbed-gradient
replacement borrowed from sharpness-aware minimization [7], without the
Hessian penalty.  Shares the Eq. 15 perturbation with HERO.
"""

from ..tensor import arena_step
from .perturbation import PERTURBATIONS, apply_offsets
from .trainer import Trainer


class SAMTrainer(Trainer):
    """Sharpness-aware first-order trainer ("First-order only" in Table 3)."""

    method_name = "first_order"

    def __init__(
        self,
        model,
        loss_fn,
        optimizer,
        scheduler=None,
        callbacks=(),
        h=0.5,
        perturbation="layer_adaptive",
        grad_clip=None,
    ):
        super().__init__(model, loss_fn, optimizer, scheduler, callbacks, grad_clip=grad_clip)
        if h <= 0:
            raise ValueError(f"perturbation step h must be positive, got {h}")
        if perturbation not in PERTURBATIONS:
            raise ValueError(
                f"perturbation must be one of {sorted(PERTURBATIONS)}, got {perturbation!r}"
            )
        self.h = float(h)
        self.perturbation = perturbation

    def training_step(self, x, y):
        arena_step()
        self._clear_grads()
        loss, logits = self._forward_loss(x, y)
        loss.backward()
        clean_grads = self._collect_grads(detach=True)

        offsets = PERTURBATIONS[self.perturbation](self.params, clean_grads, self.h)
        apply_offsets(self.params, offsets, sign=+1.0)
        try:
            self._clear_grads()
            perturbed_loss, _ = self._forward_loss(x, y)
            perturbed_loss.backward()
            perturbed = self._collect_grads(detach=True)
        finally:
            apply_offsets(self.params, offsets, sign=-1.0)

        self._set_grads(perturbed)
        return float(loss.data), logits
