"""Plain empirical-risk-minimization (SGD) trainer — the paper's baseline."""

from ..tensor import arena_step
from .trainer import Trainer


class ERMTrainer(Trainer):
    """Standard SGD training: one forward/backward per batch.

    Weight decay (the ``alpha * W`` term of Eq. 17) is applied by the
    optimizer, identically for every method.
    """

    method_name = "sgd"

    def training_step(self, x, y):
        arena_step()
        self._clear_grads()
        loss, logits = self._forward_loss(x, y)
        loss.backward()
        return float(loss.data), logits
