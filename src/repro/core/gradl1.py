"""GRAD-L1 baseline (Alizadeh et al. [1]).

Regularizes the l1 norm of the loss gradient:

    L_total(W) = L(W) + lambda * sum_i || dL/dW_i ||_1

The gradient of the penalty, ``lambda * H sign(g)``, is obtained by
double backpropagation — the same machinery HERO uses, but carrying
only first-order information about the *quantization* loss (the paper's
Sec. 3.2 shows why that is weaker than HERO's Hessian term: even with
``|g| -> 0`` the perturbation bound collapses when ``lambda_max(H)`` is
large).
"""

import numpy as np

from ..tensor import Tensor, arena_step
from .trainer import Trainer


class GradL1Trainer(Trainer):
    """Gradient-l1-regularized training."""

    method_name = "grad_l1"

    def __init__(
        self,
        model,
        loss_fn,
        optimizer,
        scheduler=None,
        callbacks=(),
        lambda_l1=0.01,
        grad_clip=None,
    ):
        super().__init__(model, loss_fn, optimizer, scheduler, callbacks, grad_clip=grad_clip)
        if lambda_l1 < 0:
            raise ValueError(f"lambda_l1 must be non-negative, got {lambda_l1}")
        self.lambda_l1 = float(lambda_l1)

    def training_step(self, x, y):
        arena_step()
        self._clear_grads()
        loss, logits = self._forward_loss(x, y)
        loss.backward(create_graph=True)
        grads = self._collect_grads(detach=False)
        self._clear_grads()

        penalty = None
        for grad in grads:
            if not isinstance(grad, Tensor) or (grad._ctx is None and not grad.requires_grad):
                continue
            term = grad.abs().sum()
            penalty = term if penalty is None else penalty + term
        if penalty is not None and self.lambda_l1 > 0:
            penalty.backward()
        combined = []
        for param, grad in zip(self.params, grads):
            base = grad.data if isinstance(grad, Tensor) else np.asarray(grad)
            extra = np.zeros_like(base) if param.grad is None else param.grad.data
            combined.append(base + self.lambda_l1 * extra)
        self._set_grads(combined)
        return float(loss.data), logits
