"""Checkpoint save/load for models and training state.

Weights are stored as a flat ``.npz`` archive (the same format the
experiment runner's cache uses) plus a JSON sidecar carrying arbitrary
metadata — enough to resume training or ship a trained model without
pickling code objects.
"""

import json
import os

import numpy as np


def save_checkpoint(path, model, metadata=None, optimizer=None, history=None):
    """Write ``model`` (and optional training state) to ``path``.

    ``path`` is the ``.npz`` file; metadata/optimizer lr/history go to
    ``path + '.json'``.  Returns the npz path.
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    state = model.state_dict()
    np.savez(path, **state)
    sidecar = {"metadata": metadata or {}}
    if optimizer is not None:
        sidecar["optimizer"] = _optimizer_sidecar(optimizer)
    if history is not None:
        sidecar["history"] = history.to_dict()
    with open(_sidecar_path(path), "w") as fh:
        json.dump(sidecar, fh, indent=2, default=_jsonify)
    return path


def load_checkpoint(path, model):
    """Load weights from ``path`` into ``model``; returns the sidecar dict.

    The model must already have the right architecture (shape mismatch
    raises, same as ``load_state_dict``).
    """
    archive_path = path if path.endswith(".npz") else path + ".npz"
    with np.load(archive_path) as archive:
        state = {name: archive[name] for name in archive.files}
    model.load_state_dict(state)
    sidecar_path = _sidecar_path(archive_path)
    if os.path.exists(sidecar_path):
        with open(sidecar_path) as fh:
            return json.load(fh)
    return {"metadata": {}}


def _sidecar_path(path):
    return path + ".json"


def _optimizer_sidecar(optimizer):
    """JSON-safe subset of optimizer state (hyperparameters only)."""
    state = optimizer.state_dict()
    return {
        key: value
        for key, value in state.items()
        if isinstance(value, (int, float, bool, str, tuple, list))
        and key not in ("velocity", "exp_avg", "exp_avg_sq")
    }


def _jsonify(value):
    if hasattr(value, "tolist"):
        return value.tolist()
    return str(value)
