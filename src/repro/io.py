"""Checkpoint save/load for models and training state.

Weights are stored as a flat ``.npz`` archive (the same format the
experiment runner's cache uses) plus a JSON sidecar carrying arbitrary
metadata — enough to resume training or ship a trained model without
pickling code objects.

This module also hosts the concurrency primitives every on-disk cache
in the project builds on: :func:`file_lock` (an inter-process advisory
lock), :func:`atomic_write_json` (write-to-temp-then-rename so readers
never observe a half-written file), :class:`DirectoryCache` — a
content-addressed directory store with atomic publication and per-key
locks that backs both the experiment run cache
(``.cache/runs/<key>/``) and the dataset cache
(``.cache/runs/datasets/<key>/``) — and :class:`JsonJournal`, a
directory of per-key JSON records with locked read-modify-write
transitions that backs the sweep scheduler's durable task queue
(``.cache/runs/queue/<name>/journal/``).
"""

import contextlib
import json
import os
import shutil
import tempfile
import time

import numpy as np

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None


class LockTimeout(TimeoutError):
    """Raised when :func:`file_lock` cannot acquire within its timeout."""


@contextlib.contextmanager
def file_lock(path, timeout=600.0, poll=0.05):
    """Hold an exclusive inter-process lock on ``path``.

    On POSIX the lock is a blocking ``flock`` on ``path`` (created on
    demand and left in place — flock locks die with the holder, so a
    crashed process never wedges the cache).  Where ``fcntl`` is
    unavailable it falls back to an ``O_EXCL`` spin lock with the given
    ``timeout``/``poll`` budget.
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    if fcntl is not None:
        fd = os.open(path, os.O_RDWR | os.O_CREAT, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            yield
        finally:
            fcntl.flock(fd, fcntl.LOCK_UN)
            os.close(fd)
    else:  # pragma: no cover - exercised only on non-POSIX hosts
        deadline = time.monotonic() + timeout
        while True:
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_RDWR)
                break
            except FileExistsError:
                if time.monotonic() >= deadline:
                    raise LockTimeout(f"could not lock {path!r} within {timeout}s")
                time.sleep(poll)
        try:
            yield
        finally:
            os.close(fd)
            with contextlib.suppress(OSError):
                os.remove(path)


def atomic_write_json(path, payload, **dump_kwargs):
    """Write ``payload`` as JSON to ``path`` atomically.

    The bytes land in a same-directory temp file that is fsynced and
    then renamed over ``path``, so concurrent readers see either the
    old complete file or the new complete file — never a torn write.
    """
    directory = os.path.dirname(os.path.abspath(path)) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(prefix=os.path.basename(path) + ".tmp.", dir=directory)
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(payload, fh, **dump_kwargs)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.remove(tmp)
        raise
    return path


def read_json(path, default=None):
    """Best-effort lock-free read of a JSON file.

    Returns ``default`` when the file is missing *or* unparseable —
    the contract every status/heartbeat reader in the project wants:
    files written through :func:`atomic_write_json` are never torn,
    but a reader must still survive a file that predates the writer's
    schema, was truncated by a dying filesystem, or simply is not
    there yet.  Observability must never take a lock or raise.
    """
    try:
        with open(path) as fh:
            return json.load(fh)
    except (FileNotFoundError, json.JSONDecodeError, OSError):
        return default


class DirectoryCache:
    """Content-addressed directory cache with atomic publication.

    An entry is a directory ``<root>/<key>/`` holding exactly the files
    named in ``manifest``.  Entries are staged in a same-filesystem temp
    directory and renamed into place while holding a per-key
    inter-process lock, so concurrent readers only ever observe a
    missing entry or a fully formed one — never a torn write.  When two
    processes race to publish the same key the last writer wins
    atomically; cache keys are expected to be content hashes, so either
    copy is correct.

    The run cache (``repro.experiments.runner``) and the dataset cache
    (``repro.data.pipeline``) are both instances of this class.

    Besides the one-shot :meth:`publish` (stage in a fresh temp dir,
    rename), an entry can be built **incrementally** in a *stable*
    staging directory (:meth:`staging_path`) that survives crashes:
    the streaming dataset writer (:mod:`repro.data.streaming`)
    pre-allocates memmaps there, resumes interrupted work across
    process lifetimes, and finally :meth:`commit_staging` renames the
    staged directory into place under the same per-key lock
    :meth:`publish` uses.  Readers are oblivious to which path built
    an entry.
    """

    def __init__(self, root, manifest):
        self.root = os.path.abspath(root)
        self.manifest = tuple(manifest)

    def entry_path(self, key):
        """Directory an entry for ``key`` occupies (whether or not it exists)."""
        return os.path.join(self.root, key)

    def lock_path(self, key):
        return self.entry_path(key) + ".lock"

    def staging_path(self, key):
        """Stable staging directory for incremental builds of ``key``.

        Unlike :meth:`publish`'s throwaway temp dir, this path is a
        pure function of the key, so a builder killed mid-write finds
        its partial work again on the next attempt.  Callers own the
        directory's lifecycle (create, validate staleness, resume or
        wipe) and serialize among themselves — the streaming writer
        holds :func:`file_lock` on ``staging_path(key) + ".lock"`` for
        the whole build.
        """
        return self.entry_path(key) + ".staging"

    def commit_staging(self, key):
        """Atomically promote the staged directory to the live entry.

        Validates the staged manifest, then renames the staging
        directory over the entry under the per-key lock (replacing any
        previous entry wholesale) — the same last-writer-wins
        discipline as :meth:`publish`.  Returns the entry path.
        """
        staging = self.staging_path(key)
        missing = [n for n in self.manifest if not os.path.exists(os.path.join(staging, n))]
        if missing:
            raise ValueError(
                f"staged build for {key!r} is missing manifest files: {missing}"
            )
        path = self.entry_path(key)
        with file_lock(self.lock_path(key)):
            if os.path.isdir(path):
                shutil.rmtree(path)
            os.rename(staging, path)
        return path

    def discard_staging(self, key):
        """Remove any staged build of ``key`` (idempotent)."""
        shutil.rmtree(self.staging_path(key), ignore_errors=True)

    def complete(self, key):
        """True when every manifest file of ``key`` exists (no lock taken)."""
        path = self.entry_path(key)
        return all(os.path.exists(os.path.join(path, name)) for name in self.manifest)

    def fetch(self, key, loader):
        """Load ``key`` via ``loader(entry_path)`` under the key lock.

        Returns the loader's result, or ``None`` when the entry is
        absent or incomplete.  The lock is held across the completeness
        check *and* the load, so a concurrent publisher can never swap
        the entry mid-read.
        """
        with file_lock(self.lock_path(key)):
            if self.complete(key):
                return loader(self.entry_path(key))
        return None

    def publish(self, key, build):
        """Create or replace the entry for ``key`` atomically.

        ``build(tmp_dir)`` stages the manifest files into ``tmp_dir``
        (outside the lock, so slow serialization never blocks readers
        of other keys); the staged directory is then renamed over the
        entry under the per-key lock.  Returns the entry path.
        """
        os.makedirs(self.root, exist_ok=True)
        path = self.entry_path(key)
        tmp = tempfile.mkdtemp(prefix=key + ".tmp.", dir=self.root)
        try:
            build(tmp)
            missing = [n for n in self.manifest if not os.path.exists(os.path.join(tmp, n))]
            if missing:
                raise ValueError(f"cache build for {key!r} left manifest files missing: {missing}")
            with file_lock(self.lock_path(key)):
                if os.path.isdir(path):
                    # A previous (possibly partial, possibly stale-forced)
                    # entry exists; replace it wholesale.
                    shutil.rmtree(path)
                os.rename(tmp, path)
        except BaseException:
            shutil.rmtree(tmp, ignore_errors=True)
            raise
        return path


class JsonJournal:
    """Directory of per-key JSON records with locked state transitions.

    Each key owns one file ``<root>/<key>.json`` written via
    :func:`atomic_write_json`, plus a sibling ``.lock`` file taken for
    read-modify-write transitions.  The two access patterns:

    * :meth:`read` / :meth:`snapshot` are **lock-free**: atomic writes
      guarantee a reader sees *some* complete version of the record,
      never a torn one — cheap enough to poll from a tailing process.
    * :meth:`update` is a **transaction**: the per-key lock is held
      across read → mutate → write, so two processes racing to claim
      the same record serialize and the loser sees the winner's write.

    This is the persistence layer under the sweep scheduler's task
    queue (:mod:`repro.experiments.scheduler`): one record per task,
    mutated through ``pending → leased → done/error``.
    """

    def __init__(self, root):
        self.root = os.path.abspath(root)

    def path(self, key):
        return os.path.join(self.root, key + ".json")

    def lock_path(self, key):
        return os.path.join(self.root, key + ".lock")

    def keys(self):
        """All record keys present on disk (sorted; no lock taken)."""
        if not os.path.isdir(self.root):
            return []
        return sorted(
            name[: -len(".json")]
            for name in os.listdir(self.root)
            if name.endswith(".json")
        )

    def read(self, key):
        """Current record for ``key``, or ``None`` (lock-free snapshot)."""
        try:
            with open(self.path(key)) as fh:
                return json.load(fh)
        except FileNotFoundError:
            return None

    def snapshot(self):
        """``{key: record}`` for every record on disk (lock-free)."""
        return {key: value for key in self.keys() if (value := self.read(key)) is not None}

    def update(self, key, mutate):
        """Transition ``key`` under its lock; returns the new record.

        ``mutate(current)`` receives the current record (or ``None``)
        and returns the record to write; returning the current object
        unchanged skips the write.  An exception raised by ``mutate``
        aborts the transition (nothing is written) and propagates —
        the scheduler uses this to lose a claim race cleanly.
        """
        os.makedirs(self.root, exist_ok=True)
        with file_lock(self.lock_path(key)):
            current = self.read(key)
            record = mutate(current)
            if record is not current:
                atomic_write_json(self.path(key), record)
        return record


def save_checkpoint(path, model, metadata=None, optimizer=None, history=None):
    """Write ``model`` (and optional training state) to ``path``.

    ``path`` is the ``.npz`` file; metadata/optimizer lr/history go to
    ``path + '.json'``.  Returns the npz path.
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    state = model.state_dict()
    np.savez(path, **state)
    sidecar = {"metadata": metadata or {}}
    if optimizer is not None:
        sidecar["optimizer"] = _optimizer_sidecar(optimizer)
    if history is not None:
        sidecar["history"] = history.to_dict()
    atomic_write_json(_sidecar_path(path), sidecar, indent=2, default=_jsonify)
    return path


def load_checkpoint(path, model):
    """Load weights from ``path`` into ``model``; returns the sidecar dict.

    The model must already have the right architecture (shape mismatch
    raises, same as ``load_state_dict``).
    """
    archive_path = path if path.endswith(".npz") else path + ".npz"
    with np.load(archive_path) as archive:
        state = {name: archive[name] for name in archive.files}
    model.load_state_dict(state)
    sidecar_path = _sidecar_path(archive_path)
    if os.path.exists(sidecar_path):
        with open(sidecar_path) as fh:
            return json.load(fh)
    return {"metadata": {}}


def _sidecar_path(path):
    return path + ".json"


def _optimizer_sidecar(optimizer):
    """JSON-safe subset of optimizer state (hyperparameters only)."""
    state = optimizer.state_dict()
    return {
        key: value
        for key, value in state.items()
        if isinstance(value, (int, float, bool, str, tuple, list))
        and key not in ("velocity", "exp_avg", "exp_avg_sq")
    }


def _jsonify(value):
    if hasattr(value, "tolist"):
        return value.tolist()
    return str(value)
