"""Async micro-batched inference server over the filesystem substrate.

The serving harness reuses the repo's coordination primitives instead
of inventing a network protocol: clients, the batcher and any number of
workers (threads, processes, or processes on other machines sharing the
filesystem) rendezvous in one server directory:

    <cache>/serving/<name>/
        meta.json            server settings (artifact key, budgets)
        requests/<id>.npz    admitted inputs (atomic rename publication)
        responses/<id>.npy   outputs (atomic, last-writer-wins)
        responses/<id>.error.json   terminal failure markers
        batches/<key>.json   the batch journal (lease state machine)
        service/heartbeats/  worker + batcher liveness (repro.service)
        stats.json           serving.server_stats snapshot

**Admission and batching.** Clients drop request files; the single
batcher polls the directory, admits new requests, and flushes a batch
when it holds ``max_batch`` requests *or* the oldest admitted request
has waited ``max_delay`` — whichever comes first.  A flushed batch is
one journal record naming its request ids.

**Dispatch and fault model.** Workers claim batches through the same
lease discipline as the sweep scheduler: claim moves ``pending`` →
``leased`` with an expiry; a SIGKILLed worker's lease lapses and a
survivor re-claims and re-serves the batch.  Responses are written via
atomic rename, and model outputs are deterministic, so duplicated
serves converge on identical bytes — every client gets exactly one
correct response.  A batch whose lease expires ``max_attempts`` times
is marked ``error`` and its requests get error markers instead of
hanging their clients.

**Determinism contract.** A worker runs one forward *per request*
inside its claimed batch (BLAS kernels are not bit-stable across batch
shapes — concatenating requests would make a response depend on which
requests happened to share its batch).  The micro-batch amortizes the
per-batch costs: journal claim/resolve transactions, lease renewals,
heartbeats and scheduling wakeups.  Served outputs are bit-identical
to an offline forward of the published artifact.
"""

import os
import socket
import threading
import time
import uuid

import numpy as np

from ..io import JsonJournal, atomic_write_json, read_json
from ..messages import BatchRecordV1, ServerStatsV1, parse
from ..service import Heartbeat
from ..tensor import Tensor, no_grad
from .artifact import default_cache_dir, load_artifact

#: Journal states (mirrors the sweep scheduler's lease machine).
PENDING = "pending"
LEASED = "leased"
DONE = "done"
ERROR = "error"

DEFAULT_MAX_BATCH = 8
DEFAULT_MAX_DELAY = 0.01
DEFAULT_LEASE_TIMEOUT = 5.0
DEFAULT_MAX_ATTEMPTS = 5


class ServingError(RuntimeError):
    """A request terminally failed (poison batch or worker exception)."""


def server_root(name, cache_dir=None):
    """Directory one named server's state lives under."""
    root = cache_dir if cache_dir is not None else default_cache_dir()
    return os.path.join(os.path.abspath(root), "serving", name)


def worker_identity(prefix="serve"):
    """Globally unique worker id (host, pid, nonce — like the scheduler's)."""
    return f"{prefix}:{socket.gethostname()}:{os.getpid()}:{uuid.uuid4().hex[:6]}"


# ----------------------------------------------------------------------
# Requests and responses
# ----------------------------------------------------------------------
class RequestStore:
    """Admitted inputs and served outputs, all atomic-rename published.

    A request file appears atomically (temp + rename), so the batcher
    never reads a torn ``.npz``; a response file likewise, so a client
    polling for it either sees nothing or the complete array.  Re-served
    batches rewrite responses with identical bytes (deterministic
    forward), making last-writer-wins correct.
    """

    def __init__(self, root, clock=time.time):
        self.root = root
        self.requests_dir = os.path.join(root, "requests")
        self.responses_dir = os.path.join(root, "responses")
        self.clock = clock

    def submit(self, x, request_id=None):
        """Publish one input array; returns the request id."""
        os.makedirs(self.requests_dir, exist_ok=True)
        request_id = request_id or uuid.uuid4().hex[:12]
        tmp = os.path.join(self.requests_dir, f".tmp.{request_id}.npz")
        np.savez(tmp, x=np.asarray(x), submitted_at=np.float64(self.clock()))
        os.replace(tmp, os.path.join(self.requests_dir, request_id + ".npz"))
        return request_id

    def scan(self):
        """Sorted ids of every complete request file on disk."""
        if not os.path.isdir(self.requests_dir):
            return []
        return sorted(
            name[: -len(".npz")]
            for name in os.listdir(self.requests_dir)
            if name.endswith(".npz") and not name.startswith(".tmp.")
        )

    def load(self, request_id):
        """``(input_array, submitted_at)`` for one request."""
        path = os.path.join(self.requests_dir, request_id + ".npz")
        with np.load(path) as archive:
            return archive["x"], float(archive["submitted_at"])

    def respond(self, request_id, y):
        """Publish one output array atomically (last writer wins)."""
        os.makedirs(self.responses_dir, exist_ok=True)
        tmp = os.path.join(self.responses_dir, f".tmp.{request_id}.npy")
        np.save(tmp, np.asarray(y))
        os.replace(tmp, os.path.join(self.responses_dir, request_id + ".npy"))

    def fail(self, request_id, message):
        """Mark a request terminally failed so its client stops waiting."""
        os.makedirs(self.responses_dir, exist_ok=True)
        atomic_write_json(
            os.path.join(self.responses_dir, request_id + ".error.json"),
            {"request": request_id, "error": str(message)},
        )

    def try_response(self, request_id):
        """The response array if served, ``None`` if pending; raises on failure."""
        marker = read_json(os.path.join(self.responses_dir, request_id + ".error.json"))
        if marker is not None:
            raise ServingError(f"request {request_id!r} failed: {marker.get('error')}")
        path = os.path.join(self.responses_dir, request_id + ".npy")
        try:
            return np.load(path)
        except FileNotFoundError:
            return None

    def wait(self, request_id, timeout=30.0, poll=0.001):
        """Block until the response lands; raises ``TimeoutError`` past budget."""
        deadline = time.monotonic() + timeout
        while True:
            response = self.try_response(request_id)
            if response is not None:
                return response
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"request {request_id!r} not served within {timeout}s"
                )
            time.sleep(poll)


class ServingClient:
    """Submit inputs to a server directory and collect responses."""

    def __init__(self, root, clock=time.time):
        self.store = RequestStore(root, clock=clock)

    def submit(self, x):
        return self.store.submit(x)

    def result(self, request_id, timeout=30.0, poll=0.001):
        return self.store.wait(request_id, timeout=timeout, poll=poll)

    def request(self, x, timeout=30.0):
        """Submit and wait — the one-call convenience path."""
        return self.result(self.submit(x), timeout=timeout)


# ----------------------------------------------------------------------
# Batch journal: the lease state machine
# ----------------------------------------------------------------------
class _ClaimLost(Exception):
    """Another worker won the locked re-check; nothing was written."""


class BatchJournal:
    """Durable batch records claimed under the scheduler's lease discipline.

    ``pending`` → ``leased`` (claim stamps worker + expiry) → ``done``.
    A lapsed lease makes the record claimable again (``attempts`` grows);
    ``resolve`` only lands while the caller still holds the lease, so a
    stolen batch's original worker cannot clobber the thief's result.
    ``max_attempts`` expiries turn the record ``error`` — the poison
    backstop.
    """

    def __init__(
        self,
        root,
        lease_timeout=DEFAULT_LEASE_TIMEOUT,
        max_attempts=DEFAULT_MAX_ATTEMPTS,
        clock=time.time,
    ):
        self.journal = JsonJournal(os.path.join(root, "batches"))
        self.lease_timeout = lease_timeout
        self.max_attempts = max_attempts
        self.clock = clock

    def enqueue(self, key, request_ids, created_at=None):
        """Append one pending batch record (idempotent per key)."""
        created = float(self.clock() if created_at is None else created_at)
        record = BatchRecordV1(
            key=key,
            status=PENDING,
            requests=list(request_ids),
            attempts=0,
            worker=None,
            leased_at=None,
            lease_expires=None,
            created_at=created,
            finished_at=None,
            error=None,
        ).to_dict()
        return self.journal.update(key, lambda current: current or record)

    def _claimable(self, record, now):
        if record is None:
            return False
        if record["status"] == PENDING:
            return True
        return (
            record["status"] == LEASED
            and record["lease_expires"] is not None
            and record["lease_expires"] <= now
        )

    def claim(self, worker):
        """Claim the oldest claimable batch for ``worker`` (or ``None``).

        Lock-free scan first, locked re-check second — losing the race
        for one key moves on to the next, exactly like ``TaskQueue``.
        A record at its attempts ceiling is marked ``error`` instead of
        claimed, and the scan continues.
        """
        now = self.clock()
        for key in self.journal.keys():
            peek = self.journal.read(key)
            if not self._claimable(peek, now):
                continue

            def mutate(current):
                moment = self.clock()
                if not self._claimable(current, moment):
                    raise _ClaimLost()
                if current["attempts"] >= self.max_attempts:
                    return dict(
                        current,
                        status=ERROR,
                        worker=None,
                        leased_at=None,
                        lease_expires=None,
                        finished_at=moment,
                        error=f"lease expired {current['attempts']} times",
                    )
                return dict(
                    current,
                    status=LEASED,
                    attempts=current["attempts"] + 1,
                    worker=worker,
                    leased_at=moment,
                    lease_expires=moment + self.lease_timeout,
                )

            try:
                record = self.journal.update(key, mutate)
            except _ClaimLost:
                continue
            if record["status"] == ERROR:
                # Poison backstop fired — unhang the clients, keep scanning.
                store = RequestStore(os.path.dirname(self.journal.root))
                for request_id in record["requests"]:
                    store.fail(request_id, record["error"])
                continue
            return record
        return None

    def resolve(self, key, worker, error=None):
        """Finish a claimed batch; no-op if the lease was lost meanwhile."""

        def mutate(current):
            if current is None or current["status"] != LEASED or current["worker"] != worker:
                return current
            return dict(
                current,
                status=ERROR if error is not None else DONE,
                worker=None,
                leased_at=None,
                lease_expires=None,
                finished_at=self.clock(),
                error=None if error is None else str(error),
            )

        return self.journal.update(key, mutate)

    def snapshot(self):
        """Validated ``{key: record}`` of the whole journal (lock-free)."""
        return {
            key: parse("serving.batch_record", record)
            for key, record in self.journal.snapshot().items()
        }

    def counts(self):
        counts = {PENDING: 0, LEASED: 0, DONE: 0, ERROR: 0}
        for record in self.journal.snapshot().values():
            counts[record["status"]] += 1
        return counts

    def drained(self):
        """True when no batch is pending or leased."""
        counts = self.counts()
        return counts[PENDING] == 0 and counts[LEASED] == 0


# ----------------------------------------------------------------------
# The latency-budget micro-batcher
# ----------------------------------------------------------------------
class MicroBatcher:
    """Single admission point turning request files into batch records.

    Flush rule — whichever fires first:

    * **size**: ``max_batch`` requests are pending;
    * **deadline**: the oldest pending request was admitted
      ``max_delay`` seconds ago (its latency budget is spent waiting
      for companions; ship it with whatever arrived).

    Restart safety: already-batched request ids are replayed from the
    journal on construction, so a restarted batcher never double-admits,
    and the batch sequence resumes past the highest existing key.
    """

    def __init__(
        self,
        root,
        journal,
        max_batch=DEFAULT_MAX_BATCH,
        max_delay=DEFAULT_MAX_DELAY,
        clock=time.time,
    ):
        self.store = RequestStore(root, clock=clock)
        self.journal = journal
        self.max_batch = int(max_batch)
        self.max_delay = float(max_delay)
        self.clock = clock
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.pending = {}  # request id -> admitted_at (batcher clock)
        self.admitted = set()
        self.admitted_total = 0
        self.batches_total = 0
        self._seq = 0
        for key, record in self.journal.journal.snapshot().items():
            self.admitted.update(record["requests"])
            self._seq = max(self._seq, _batch_index(key) + 1)
        self.admitted_total = len(self.admitted)

    def admit(self, now=None):
        """Pull new request files into the pending set; returns how many."""
        now = self.clock() if now is None else now
        fresh = 0
        for request_id in self.store.scan():
            if request_id in self.admitted or request_id in self.pending:
                continue
            self.pending[request_id] = now
            fresh += 1
        self.admitted_total += fresh
        return fresh

    def flush(self, now=None, force=False):
        """Emit every due batch; returns the new batch keys."""
        now = self.clock() if now is None else now
        keys = []
        while len(self.pending) >= self.max_batch:
            keys.append(self._emit(now))
        if self.pending and (force or self._oldest_age(now) >= self.max_delay):
            keys.append(self._emit(now))
        return keys

    def poll(self, force=False):
        """One admission + flush pass (the batcher thread's heartbeat)."""
        now = self.clock()
        self.admit(now)
        return self.flush(now, force=force)

    def _oldest_age(self, now):
        return now - min(self.pending.values())

    def _emit(self, now):
        ordered = sorted(self.pending.items(), key=lambda kv: (kv[1], kv[0]))
        take = [request_id for request_id, _at in ordered[: self.max_batch]]
        for request_id in take:
            del self.pending[request_id]
            self.admitted.add(request_id)
        key = f"batch-{self._seq:08d}"
        self._seq += 1
        self.batches_total += 1
        self.journal.enqueue(key, take, created_at=now)
        return key


def _batch_index(key):
    try:
        return int(key.rsplit("-", 1)[1])
    except (IndexError, ValueError):
        return -1


# ----------------------------------------------------------------------
# Workers
# ----------------------------------------------------------------------
def serve_batch(model, store, record):
    """Serve one claimed batch: per-request forwards, then publish.

    Forward passes run per request (see the module docstring's
    determinism contract); responses land only after every forward in
    the batch succeeded, so a poison input fails the whole batch before
    any of its responses publish.
    """
    outputs = []
    with no_grad():
        for request_id in record["requests"]:
            x, _submitted_at = store.load(request_id)
            outputs.append((request_id, model(Tensor(x)).data))
    for request_id, y in outputs:
        store.respond(request_id, y)
    return len(outputs)


def worker_loop(
    root,
    model,
    *,
    worker=None,
    lease_timeout=DEFAULT_LEASE_TIMEOUT,
    max_attempts=DEFAULT_MAX_ATTEMPTS,
    poll=0.002,
    drain=False,
    max_batches=None,
    stop=None,
    heartbeat=None,
    clock=time.time,
):
    """Claim-and-serve until stopped (or drained); returns batches served.

    ``drain=True`` exits once the journal holds no pending or leased
    batch; ``stop`` is an optional zero-arg callable polled every idle
    pass (the thread workers' shutdown signal).  Worker exceptions mark
    the batch ``error`` and fail its requests rather than killing the
    loop — one poison batch must not take a worker out of the fleet.
    """
    worker = worker or worker_identity()
    journal = BatchJournal(
        root, lease_timeout=lease_timeout, max_attempts=max_attempts, clock=clock
    )
    store = RequestStore(root, clock=clock)
    served = 0
    while not (stop is not None and stop()):
        record = journal.claim(worker)
        if record is None:
            if drain and journal.drained():
                break
            if heartbeat is not None:
                heartbeat.beat("idle", queue=root)
            time.sleep(poll)
            continue
        if heartbeat is not None:
            heartbeat.beat("running", queue=root, key=record["key"], force=True)
        try:
            serve_batch(model, store, record)
        except Exception as exc:  # noqa: BLE001 - poison batch containment
            journal.resolve(record["key"], worker, error=exc)
            for request_id in record["requests"]:
                store.fail(request_id, exc)
            continue
        journal.resolve(record["key"], worker)
        served += 1
        if heartbeat is not None:
            heartbeat.tasks_done += 1
            heartbeat.beat("idle", queue=root, force=True)
        if max_batches is not None and served >= max_batches:
            break
    if heartbeat is not None:
        heartbeat.close()
    return served


def _worker_main(task):
    """Picklable process-worker entry (fork/spawn targets import this).

    ``task``: ``(root, artifact_key, cache_dir, worker, lease_timeout)``.
    The process builds its own model from the artifact store and serves
    until terminated — liveness is its heartbeat file, death is a
    lapsed lease some survivor steals.
    """
    root, artifact_key, cache_dir, worker, lease_timeout = task
    model = load_artifact(artifact_key, cache_dir).build_model()
    heartbeat = Heartbeat(root, worker, interval=0.2)
    return worker_loop(
        root,
        model,
        worker=worker,
        lease_timeout=lease_timeout,
        heartbeat=heartbeat,
    )


# ----------------------------------------------------------------------
# The server orchestrator
# ----------------------------------------------------------------------
class InferenceServer:
    """One named serving instance: batcher thread + worker threads.

    The in-process harness used by the CLI, the benchmark and the
    example: ``start()`` spawns the batcher and ``workers`` threads
    (each with its own model instance rebuilt from the artifact), and
    ``stop()`` winds them down after draining is optional — killed
    processes are the *other* entry point (``_worker_main``), which
    shares every on-disk structure with this class.
    """

    def __init__(
        self,
        artifact_key,
        *,
        cache_dir=None,
        name=None,
        workers=2,
        max_batch=DEFAULT_MAX_BATCH,
        max_delay=DEFAULT_MAX_DELAY,
        lease_timeout=DEFAULT_LEASE_TIMEOUT,
        max_attempts=DEFAULT_MAX_ATTEMPTS,
        stats_interval=0.25,
        clock=time.time,
    ):
        self.artifact_key = artifact_key
        self.cache_dir = cache_dir
        self.name = name or f"srv-{artifact_key[:8]}"
        self.root = server_root(self.name, cache_dir)
        self.workers = int(workers)
        self.max_batch = int(max_batch)
        self.max_delay = float(max_delay)
        self.lease_timeout = float(lease_timeout)
        self.max_attempts = int(max_attempts)
        self.stats_interval = float(stats_interval)
        self.clock = clock
        self.journal = BatchJournal(
            self.root,
            lease_timeout=self.lease_timeout,
            max_attempts=self.max_attempts,
            clock=clock,
        )
        self.batcher = MicroBatcher(
            self.root,
            self.journal,
            max_batch=self.max_batch,
            max_delay=self.max_delay,
            clock=clock,
        )
        self.artifact = load_artifact(artifact_key, cache_dir)
        self.started_at = None
        self._stop = threading.Event()
        self._threads = []
        os.makedirs(self.root, exist_ok=True)
        atomic_write_json(
            os.path.join(self.root, "meta.json"),
            {
                "artifact": artifact_key,
                "max_batch": self.max_batch,
                "max_delay_ms": self.max_delay * 1000.0,
                "lease_timeout": self.lease_timeout,
                "max_attempts": self.max_attempts,
                "workers": self.workers,
            },
        )

    # -- lifecycle ------------------------------------------------------
    def start(self):
        """Spawn the batcher thread and the worker threads."""
        if self._threads:
            raise RuntimeError("server already started")
        self.started_at = self.clock()
        self._stop.clear()
        batcher = threading.Thread(target=self._batcher_loop, name=f"{self.name}-batcher")
        batcher.daemon = True
        self._threads.append(batcher)
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker_thread,
                args=(f"{self.name}-w{index}",),
                name=f"{self.name}-w{index}",
            )
            thread.daemon = True
            self._threads.append(thread)
        for thread in self._threads:
            thread.start()
        return self

    def stop(self):
        """Signal every thread and join them; writes the final stats."""
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=30.0)
        self._threads = []
        self.write_stats()

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc_info):
        self.stop()

    def client(self):
        return ServingClient(self.root, clock=self.clock)

    def drain(self, timeout=30.0, poll=0.002):
        """Block until every admitted request has been batched and served."""
        deadline = time.monotonic() + timeout
        while True:
            if not self.batcher.pending and self.journal.drained():
                return
            if time.monotonic() >= deadline:
                raise TimeoutError(f"server {self.name!r} did not drain in {timeout}s")
            time.sleep(poll)

    # -- internals ------------------------------------------------------
    def _batcher_loop(self):
        heartbeat = Heartbeat(self.root, f"{self.name}-batcher", interval=0.5, clock=self.clock)
        wrote_stats = self.clock()
        while not self._stop.is_set():
            self.batcher.poll()
            heartbeat.beat("running", queue=self.root)
            now = self.clock()
            if now - wrote_stats >= self.stats_interval:
                self.write_stats()
                wrote_stats = now
            time.sleep(min(0.001, self.max_delay / 4 or 0.001))
        # Ship whatever is still pending so drains finish deterministically.
        self.batcher.poll(force=True)
        heartbeat.close()

    def _worker_thread(self, worker_name):
        model = self.artifact.build_model()
        heartbeat = Heartbeat(self.root, worker_name, interval=0.5, clock=self.clock)
        worker_loop(
            self.root,
            model,
            worker=worker_name,
            lease_timeout=self.lease_timeout,
            max_attempts=self.max_attempts,
            stop=self._stop.is_set,
            heartbeat=heartbeat,
            clock=self.clock,
        )

    def write_stats(self):
        """Atomically rewrite ``stats.json`` from the journal snapshot."""
        snapshot = self.journal.journal.snapshot()
        served = sum(
            len(record["requests"])
            for record in snapshot.values()
            if record["status"] == DONE
        )
        re_served = sum(
            max(0, record["attempts"] - 1)
            for record in snapshot.values()
            if record["status"] == DONE
        )
        now = self.clock()
        stats = ServerStatsV1(
            server=self.name,
            artifact=self.artifact_key,
            pid=os.getpid(),
            host=socket.gethostname(),
            started_at=float(self.started_at if self.started_at is not None else now),
            updated_at=float(now),
            workers=self.workers,
            max_batch=self.max_batch,
            max_delay_ms=self.max_delay * 1000.0,
            requests_total=self.batcher.admitted_total,
            batches_total=len(snapshot),
            served_total=served,
            re_served_total=re_served,
            queue_depth=len(self.batcher.pending),
        )
        atomic_write_json(os.path.join(self.root, "stats.json"), stats.to_dict())
        return stats


def read_stats(root):
    """The server's last stats snapshot (validated), or ``None``."""
    payload = read_json(os.path.join(root, "stats.json"))
    if payload is None:
        return None
    return parse("serving.server_stats", payload)
