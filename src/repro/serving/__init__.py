"""Quantized inference serving: durable model artifacts + a micro-batched server.

Two layers (see ``docs/serving.md``):

* :mod:`repro.serving.artifact` — content-addressed model artifacts
  (weights + BN-fold state + quant scheme + precision policy + frozen
  activation ranges) in a :class:`~repro.io.DirectoryCache`, rebuilt
  bit-identically by ``ServingArtifact.build_model()``;
* :mod:`repro.serving.server` — the filesystem-coordinated serving
  harness: admission queue, latency-budget micro-batcher, lease-based
  multi-worker dispatch (SIGKILL-safe re-serving), heartbeat liveness
  and a validated ``stats.json`` snapshot.
"""

from .artifact import (
    ARTIFACT_FILES,
    ServingArtifact,
    artifact_cache,
    list_artifacts,
    load_artifact,
    mixed_weight_quant,
    model_spec,
    publish_artifact,
    uniform_weight_quant,
)
from .server import (
    BatchJournal,
    InferenceServer,
    MicroBatcher,
    RequestStore,
    ServingClient,
    ServingError,
    read_stats,
    serve_batch,
    server_root,
    worker_identity,
    worker_loop,
)

__all__ = [
    "ARTIFACT_FILES",
    "BatchJournal",
    "InferenceServer",
    "MicroBatcher",
    "RequestStore",
    "ServingArtifact",
    "ServingClient",
    "ServingError",
    "artifact_cache",
    "list_artifacts",
    "load_artifact",
    "mixed_weight_quant",
    "model_spec",
    "publish_artifact",
    "read_stats",
    "serve_batch",
    "server_root",
    "uniform_weight_quant",
    "worker_identity",
    "worker_loop",
]
