"""Content-addressed model artifacts: publish, list, reload, rebuild.

An **artifact** is a deployable model snapshot — weights plus every
post-training transform baked into them (BN folding, uniform or mixed
weight PTQ, frozen activation-quantizer ranges) — stored as a
:class:`~repro.io.DirectoryCache` entry exactly like datasets and runs:

    <cache>/artifacts/<key>/weights.npz      flat state dict
    <cache>/artifacts/<key>/manifest.json    serving.artifact_manifest

The key is a content hash over architecture + transform metadata +
weight bytes, so re-publishing identical content is a cache hit and two
racing publishers are both correct.  The manifest doubles as the
loader's recipe: rebuild the architecture with ``create_model``, fold
BatchNorm if the artifact was folded (folding a fresh model yields the
same module structure, so the folded state dict loads), restore the
weights, then re-wrap activation quantizers and restore their frozen
calibration ranges verbatim.  ``build_model()`` output is bit-identical
to the model that was published — the serving layer's determinism
contract rests on it.
"""

import copy
import hashlib
import json
import os
import time
from dataclasses import dataclass

import numpy as np

from ..io import DirectoryCache, read_json
from ..messages import (
    ActivationQuantV1,
    ArtifactManifestV1,
    ArtifactModelV1,
    WeightQuantV1,
    parse,
)
from ..models import create_model
from ..quant.activation import _QuantizedOutput, insert_activation_quantizers
from ..quant.folding import fold_batchnorms

#: Files every complete artifact entry must contain.
ARTIFACT_FILES = ("weights.npz", "manifest.json")


def default_cache_dir():
    """The artifact store's parent cache (shared with runs/datasets)."""
    from ..experiments.runner import default_cache_dir as runs_default

    return runs_default()


def artifact_cache(cache_dir=None):
    """The content-addressed artifact store under ``<cache>/artifacts``."""
    root = cache_dir if cache_dir is not None else default_cache_dir()
    return DirectoryCache(os.path.join(root, "artifacts"), ARTIFACT_FILES)


def model_spec(name, num_classes, in_channels=3, scale=1.0, image_size=None):
    """The ``create_model`` arguments an artifact needs to rebuild."""
    return ArtifactModelV1(
        name=name,
        num_classes=int(num_classes),
        in_channels=int(in_channels),
        scale=float(scale),
        image_size=None if image_size is None else int(image_size),
    )


def uniform_weight_quant(bits, symmetric=True, per_channel=False):
    """Provenance section for uniform weight PTQ."""
    return WeightQuantV1(
        mode="uniform",
        bits=int(bits),
        symmetric=bool(symmetric),
        per_channel=bool(per_channel),
        assignment=None,
    )


def mixed_weight_quant(assignment, symmetric=True, per_channel=False):
    """Provenance section for a per-layer mixed-precision assignment."""
    return WeightQuantV1(
        mode="mixed",
        bits=None,
        symmetric=bool(symmetric),
        per_channel=bool(per_channel),
        assignment={str(k): int(v) for k, v in dict(assignment).items()},
    )


@dataclass
class ServingArtifact:
    """A loaded artifact: the manifest plus the raw state dict."""

    manifest: ArtifactManifestV1
    state: dict

    @property
    def key(self):
        return self.manifest.key

    def build_model(self):
        """Rebuild the published model, bit-identical, in eval mode."""
        spec = self.manifest.model
        model = create_model(
            spec.name,
            num_classes=spec.num_classes,
            in_channels=spec.in_channels,
            scale=spec.scale,
            seed=0,
            image_size=spec.image_size,
        )
        if self.manifest.bn_folded:
            model, _count = fold_batchnorms(model)
        model.load_state_dict(self.state)
        act = self.manifest.activation_quant
        if act is not None:
            model, quantizers = insert_activation_quantizers(
                model, bits=act.bits, symmetric=act.symmetric
            )
            if len(quantizers) != len(act.lows):
                raise ValueError(
                    f"artifact {self.key!r}: {len(act.lows)} stored activation "
                    f"ranges but the rebuilt model has {len(quantizers)} quantizers"
                )
            for fq, low, high in zip(quantizers, act.lows, act.highs):
                fq.observer.low = float(low)
                fq.observer.high = float(high)
                fq.freeze()
        model.eval()
        return model


def publish_artifact(
    model,
    spec,
    *,
    cache_dir=None,
    source=None,
    weight_quant=None,
    bn_folded=False,
    clock=time.time,
):
    """Publish ``model`` as a content-addressed artifact; return its manifest.

    ``model`` may be a plain module, a ``fold_batchnorms`` output, a
    weight-quantized clone, or a ``quantize_weights_and_activations``
    deployment (activation wrappers are detected, their frozen ranges
    captured into the manifest, and the unwrapped state dict stored).
    ``spec`` is the :func:`model_spec` describing how to rebuild the
    architecture; pass ``bn_folded=True`` when the model went through
    ``fold_batchnorms`` and ``weight_quant`` for PTQ provenance.
    Publishing identical content twice returns the existing manifest.
    """
    base, activation = _strip_activation_quantizers(model)
    state = base.state_dict()
    weights_sha = _weights_digest(state)
    if not isinstance(spec, ArtifactModelV1):
        spec = model_spec(**dict(spec))
    if weight_quant is not None and not isinstance(weight_quant, WeightQuantV1):
        raise TypeError(
            "weight_quant must be a WeightQuantV1 "
            "(see uniform_weight_quant / mixed_weight_quant)"
        )
    key = _content_key(spec, bool(bn_folded), weight_quant, activation, weights_sha)
    cache = artifact_cache(cache_dir)
    existing = cache.fetch(key, _load_entry)
    if existing is not None:
        return existing[0]
    manifest = ArtifactManifestV1(
        key=key,
        created_at=float(clock()),
        source=source,
        model=spec,
        dtype=_state_dtype(state),
        bn_folded=bool(bn_folded),
        weight_quant=weight_quant,
        activation_quant=activation,
        params=int(base.num_parameters()),
        weights_sha256=weights_sha,
    )

    def build(tmp):
        np.savez(os.path.join(tmp, "weights.npz"), **state)
        with open(os.path.join(tmp, "manifest.json"), "w") as fh:
            json.dump(manifest.to_dict(), fh, indent=2)

    cache.publish(key, build)
    return manifest


def load_artifact(key, cache_dir=None):
    """Load an artifact by key; raises ``KeyError`` when absent."""
    loaded = artifact_cache(cache_dir).fetch(key, _load_entry)
    if loaded is None:
        raise KeyError(f"no artifact {key!r} in {artifact_cache(cache_dir).root}")
    manifest, state = loaded
    return ServingArtifact(manifest=manifest, state=state)


def list_artifacts(cache_dir=None):
    """Manifests of every complete artifact, sorted by key (lock-free)."""
    cache = artifact_cache(cache_dir)
    manifests = []
    if not os.path.isdir(cache.root):
        return manifests
    for name in sorted(os.listdir(cache.root)):
        if name.endswith((".lock", ".staging")) or ".tmp." in name:
            continue
        if not cache.complete(name):
            continue
        payload = read_json(os.path.join(cache.entry_path(name), "manifest.json"))
        if payload is None:
            continue
        manifests.append(parse("serving.artifact_manifest", payload))
    return manifests


# ----------------------------------------------------------------------
# Capture internals
# ----------------------------------------------------------------------
def _strip_activation_quantizers(model):
    """Deep-copy ``model`` without its ``_QuantizedOutput`` wrappers.

    Returns ``(base_model, ActivationQuantV1 | None)``.  The unwrap
    walk mirrors ``insert_activation_quantizers``'s wrap walk over
    ``_modules`` exactly, so the captured range order matches the order
    a rebuilt model's fresh quantizers are created in.
    """
    clone = copy.deepcopy(model)
    quantizers = []
    _unwrap_in_place(clone, quantizers)
    if not quantizers:
        return clone, None
    bits = quantizers[0].scheme.bits
    symmetric = quantizers[0].scheme.symmetric
    for fq in quantizers:
        if fq.calibrating or not fq.observer.calibrated:
            raise ValueError(
                "cannot publish a model with uncalibrated activation "
                "quantizers — run calibrate()/freeze() first"
            )
        if fq.scheme.bits != bits or fq.scheme.symmetric != symmetric:
            raise ValueError(
                "cannot publish mixed activation-quantizer schemes: "
                f"{fq.scheme.bits}b/sym={fq.scheme.symmetric} vs "
                f"{bits}b/sym={symmetric}"
            )
    activation = ActivationQuantV1(
        bits=int(bits),
        symmetric=bool(symmetric),
        lows=[float(fq.observer.low) for fq in quantizers],
        highs=[float(fq.observer.high) for fq in quantizers],
    )
    return clone, activation


def _unwrap_in_place(module, quantizers):
    for name, child in list(module._modules.items()):
        if isinstance(child, _QuantizedOutput):
            quantizers.append(child.fq)
            setattr(module, name, child.layer)
        else:
            _unwrap_in_place(child, quantizers)


def _weights_digest(state):
    """sha256 over names, dtypes, shapes and raw bytes of the state dict."""
    digest = hashlib.sha256()
    for name in sorted(state):
        array = np.ascontiguousarray(state[name])
        digest.update(name.encode())
        digest.update(str(array.dtype).encode())
        digest.update(repr(array.shape).encode())
        digest.update(array.tobytes())
    return digest.hexdigest()


def _content_key(spec, bn_folded, weight_quant, activation, weights_sha):
    """16-hex content key (volatile fields — created_at, source — excluded)."""
    payload = {
        "model": spec.to_dict(),
        "bn_folded": bn_folded,
        "weight_quant": None if weight_quant is None else weight_quant.to_dict(),
        "activation_quant": None if activation is None else activation.to_dict(),
        "weights_sha256": weights_sha,
    }
    raw = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(raw).hexdigest()[:16]


def _state_dtype(state):
    """The (single) floating dtype of the stored weights."""
    dtypes = sorted(
        {str(a.dtype) for a in state.values() if np.issubdtype(a.dtype, np.floating)}
    )
    if len(dtypes) == 1:
        return dtypes[0]
    from ..tensor import default_dtype

    return str(np.dtype(default_dtype())) if not dtypes else dtypes[0]


def _load_entry(path):
    payload = read_json(os.path.join(path, "manifest.json"))
    manifest = parse("serving.artifact_manifest", payload)
    with np.load(os.path.join(path, "weights.npz")) as archive:
        state = {name: archive[name] for name in archive.files}
    return manifest, state
