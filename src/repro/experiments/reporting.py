"""Run records and plain-text rendering of reproduction tables/series.

This module owns the :class:`RunRecord` every execution backend (the
serial loop, the multiprocessing pool, the queued scheduler's workers)
produces for one training run, plus its JSON round-trip — the queue
journal persists records through :func:`record_to_dict` /
:func:`record_from_dict`, so the schema lives next to the dataclass.

The environment has no plotting stack, so figures are reported as
aligned numeric series (and, for Fig. 3, ASCII contours) — enough to
read off the orderings and gaps the paper's evaluation claims.
"""

import json
import os
import sys
from dataclasses import dataclass

from .config import TrainConfig


@dataclass
class RunRecord:
    """Outcome of one sweep run (lightweight — no model weights)."""

    key: str
    config: object
    status: str  # "ok" | "error"
    from_cache: bool = False
    seconds: float = 0.0
    train_acc: float = None
    test_acc: float = None
    error: str = None
    pid: int = 0

    @property
    def ok(self):
        return self.status == "ok"


def record_to_dict(record, include_config=True):
    """JSON-safe form of a :class:`RunRecord` (inverse of :func:`record_from_dict`).

    ``include_config=False`` drops the config dict — what the queue
    journal does, since the task entry already carries the config.
    """
    payload = {
        "key": record.key,
        "status": record.status,
        "from_cache": record.from_cache,
        "seconds": record.seconds,
        "train_acc": record.train_acc,
        "test_acc": record.test_acc,
        "error": record.error,
        "pid": record.pid,
    }
    if include_config:
        payload["config"] = record.config.to_dict()
    return payload


def record_from_dict(payload, config=None):
    """Rebuild a :class:`RunRecord`; ``config`` overrides the embedded dict."""
    if config is None:
        config = TrainConfig.from_dict(payload["config"])
    return RunRecord(
        key=payload["key"],
        config=config,
        status=payload["status"],
        from_cache=payload.get("from_cache", False),
        seconds=payload.get("seconds", 0.0),
        train_acc=payload.get("train_acc"),
        test_acc=payload.get("test_acc"),
        error=payload.get("error"),
        pid=payload.get("pid", 0),
    )


def format_table(headers, rows, title=None):
    """Render an aligned text table.

    ``rows`` entries may be strings or floats (formatted as percent
    when in [0, 1], else 4 significant digits).
    """
    rendered = [[_cell(value) for value in row] for row in rows]
    widths = [
        max(len(str(headers[col])), *(len(row[col]) for row in rendered)) if rendered else len(str(headers[col]))
        for col in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value):
    if isinstance(value, float):
        if abs(value) <= 1.0:
            return f"{100.0 * value:.2f}%"
        return f"{value:.4g}"
    return str(value)


def format_series(name, xs, ys, x_label="x", y_label="y"):
    """Render one figure series as two aligned rows."""
    x_cells = [f"{x:>8}" for x in xs]
    y_cells = [
        f"{100 * y:7.2f}%" if isinstance(y, float) and abs(y) <= 1 else f"{y:8.4g}"
        for y in ys
    ]
    return "\n".join(
        [
            f"{name}",
            f"  {x_label:>12}: " + " ".join(x_cells),
            f"  {y_label:>12}: " + " ".join(y_cells),
        ]
    )


def save_json(payload, path):
    """Persist a result payload (dicts/lists/numbers) as JSON.

    ``path="-"`` writes to stdout instead — the machine-readable verbs
    (``queue-status --json -``) pipe straight into ``jq`` and friends.
    """
    if path == "-":
        json.dump(payload, sys.stdout, indent=2, default=_jsonify)
        sys.stdout.write("\n")
        return path
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, default=_jsonify)
    return path


def _jsonify(value):
    if hasattr(value, "tolist"):
        return value.tolist()
    if hasattr(value, "__dict__"):
        return value.__dict__
    return str(value)
