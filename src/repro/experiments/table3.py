"""Table 3 — ablation: HERO vs first-order-only vs SGD under PTQ.

Paper: MobileNetV2 on CIFAR-10, post-training weight quantization at
4/6/8 bits plus full precision.  Claims: (a) HERO beats the SAM-style
first-order-only rule at full precision (~1% in the paper), and
(b) HERO's accuracy *drop* from full precision to 4 bits is smaller —
the Hessian term is necessary, not just the perturbed gradient.
"""

from ..quant import QuantScheme, evaluate_quantized
from .config import make_config
from .reporting import format_table
from .runner import accuracy_eval_fn, load_experiment_data, run_training
from .sweep import warm_for

METHODS = ("hero", "first_order", "sgd")
BITS = (4, 6, 8)


def table3_configs(profile="fast", seed=0, model="MobileNetV2"):
    """The ablation's three training arms as a sweep spec."""
    return [
        make_config(model, "cifar10_like", method, profile=profile, seed=seed)
        for method in METHODS
    ]


def run_table3(
    profile="fast", cache_dir=None, seed=0, model="MobileNetV2", workers=None, **runner_kwargs
):
    """Train the three arms and sweep PTQ at the paper's precisions."""
    warm_for(
        table3_configs(profile=profile, seed=seed, model=model),
        runner_kwargs,
        workers=workers,
        cache_dir=cache_dir,
    )
    rows = []
    for method in METHODS:
        config = make_config(model, "cifar10_like", method, profile=profile, seed=seed)
        kwargs = dict(runner_kwargs)
        if cache_dir is not None:
            kwargs["cache_dir"] = cache_dir
        result = run_training(config, **kwargs)
        _train, test, _spec = load_experiment_data(config)
        eval_fn = accuracy_eval_fn(test)
        entry = {"method": method, "full": result.test_acc}
        for bits in BITS:
            scheme = QuantScheme(bits=bits)
            entry[f"q{bits}"], _report = evaluate_quantized(result.model, scheme, eval_fn)
        rows.append(entry)
    return {"rows": rows, "bits": list(BITS), "profile": profile}


def check_table3(result):
    """Paper-shape assertions for the ablation."""
    by_method = {row["method"]: row for row in result["rows"]}
    violations = []
    if by_method["hero"]["full"] <= by_method["sgd"]["full"]:
        violations.append("HERO full-precision accuracy does not beat SGD")
    if by_method["hero"]["q4"] <= by_method["sgd"]["q4"]:
        violations.append("HERO 4-bit accuracy does not beat SGD")
    hero_drop = by_method["hero"]["full"] - by_method["hero"]["q4"]
    first_drop = by_method["first_order"]["full"] - by_method["first_order"]["q4"]
    sgd_drop = by_method["sgd"]["full"] - by_method["sgd"]["q4"]
    if hero_drop > sgd_drop:
        violations.append(
            f"HERO 4-bit drop ({hero_drop:.3f}) exceeds SGD's ({sgd_drop:.3f})"
        )
    if hero_drop > first_drop + 0.05:
        violations.append(
            f"HERO 4-bit drop ({hero_drop:.3f}) well above first-order-only ({first_drop:.3f})"
        )
    return violations


def format_table3(result):
    """Render in the paper's layout."""
    headers = ["Quantization (bit)"] + [str(b) for b in result["bits"]] + ["Full"]
    label = {"hero": "HERO", "first_order": "First-order only", "sgd": "SGD"}
    body = []
    for row in result["rows"]:
        body.append(
            [label[row["method"]]]
            + [row[f"q{bits}"] for bits in result["bits"]]
            + [row["full"]]
        )
    return format_table(headers, body, title="Table 3: gradient-rule ablation under PTQ")
