"""Table 2 — test accuracy under symmetric label noise.

Paper: ResNet20 and MobileNetV2 on CIFAR-10 with 20-80% of training
labels resampled uniformly; HERO retains the best clean-test accuracy
at every ratio and degrades most gracefully at 80%.

The fast profile uses the ``-fast`` model variants (a 6n+2=8 ResNet and
a narrower MobileNetV2) so the 24-run grid stays within a CPU bench
budget; the architecture families match the paper's.
"""

from .config import make_config
from .reporting import format_table
from .runner import run_training
from .sweep import warm_for

METHODS = ("hero", "grad_l1", "sgd")
NOISE_RATIOS = (0.2, 0.4, 0.6, 0.8)
MODELS = ("ResNet20-fast", "MobileNetV2-fast")


def table2_configs(profile="fast", seed=0, models=MODELS, noise_ratios=NOISE_RATIOS):
    """The noisy-label grid as a sweep spec."""
    return [
        make_config(
            model, "cifar10_like", method, profile=profile, seed=seed, label_noise=ratio
        )
        for model in models
        for ratio in noise_ratios
        for method in METHODS
    ]


def run_table2(
    profile="fast",
    cache_dir=None,
    seed=0,
    models=MODELS,
    noise_ratios=NOISE_RATIOS,
    workers=None,
    **runner_kwargs,
):
    """Train each (model, noise ratio, method) cell on noisy labels."""
    warm_for(
        table2_configs(profile=profile, seed=seed, models=models, noise_ratios=noise_ratios),
        runner_kwargs,
        workers=workers,
        cache_dir=cache_dir,
    )
    panels = {}
    for model in models:
        rows = []
        for ratio in noise_ratios:
            entry = {"noise_ratio": ratio}
            for method in METHODS:
                config = make_config(
                    model,
                    "cifar10_like",
                    method,
                    profile=profile,
                    seed=seed,
                    label_noise=ratio,
                )
                kwargs = dict(runner_kwargs)
                if cache_dir is not None:
                    kwargs["cache_dir"] = cache_dir
                result = run_training(config, **kwargs)
                entry[method] = result.test_acc
            rows.append(entry)
        panels[model] = rows
    return {"panels": panels, "profile": profile}


def check_table2(result):
    """Paper-shape assertions: HERO best at every noise ratio."""
    violations = []
    for model, rows in result["panels"].items():
        for row in rows:
            best = max(METHODS, key=lambda m: row[m])
            if best != "hero":
                violations.append(
                    f"{model} @ {int(100 * row['noise_ratio'])}% noise: best is "
                    f"{best} ({row[best]:.3f}) not hero ({row['hero']:.3f})"
                )
    return violations


def format_table2(result):
    """Render both panels in the paper's layout."""
    blocks = []
    for model, rows in result["panels"].items():
        headers = ["Noise ratio"] + [f"{int(100 * r['noise_ratio'])}%" for r in rows]
        body = []
        for method, label in (("hero", "HERO"), ("grad_l1", "GRAD L1"), ("sgd", "SGD")):
            body.append([label] + [row[method] for row in rows])
        blocks.append(
            format_table(headers, body, title=f"Table 2 ({model}): accuracy under noisy labels")
        )
    return "\n\n".join(blocks)
