"""Figure 1 — post-training quantization accuracy vs precision.

Paper: seven panels, (a)-(c) ResNet20/MobileNetV2/VGG19BN on CIFAR-10,
(d)-(f) the same on CIFAR-100, (g) ResNet18 on ImageNet; three curves
per panel (HERO, GRAD-L1, SGD) over weight precisions.  Claims: HERO's
curve dominates at every precision, with the gap widening at low bits;
GRAD-L1 sits between HERO and SGD at low precision.

Reuses the cached Table 1 training runs (identical configs).
"""

from ..quant import precision_sweep
from .config import make_config
from .reporting import format_series
from .runner import accuracy_eval_fn, load_experiment_data, run_training
from .sweep import warm_for

METHODS = ("hero", "grad_l1", "sgd")
PANELS = (
    ("a", "cifar10_like", "ResNet20"),
    ("b", "cifar10_like", "MobileNetV2"),
    ("c", "cifar10_like", "VGG19BN"),
    ("d", "cifar100_like", "ResNet20"),
    ("e", "cifar100_like", "MobileNetV2"),
    ("f", "cifar100_like", "VGG19BN"),
    ("g", "imagenet_like", "ResNet18"),
)
DEFAULT_BITS = (3, 4, 5, 6, 7, 8)


def fig1_configs(profile="fast", seed=0, panels=PANELS):
    """The seven-panel training grid as a sweep spec.

    Identical to Table 1's configs for the shared panels, so a warm
    cache from either artifact serves both.
    """
    return [
        make_config(model, dataset, method, profile=profile, seed=seed)
        for _panel_id, dataset, model in panels
        for method in METHODS
    ]


def run_fig1(
    profile="fast",
    cache_dir=None,
    seed=0,
    panels=PANELS,
    bits=DEFAULT_BITS,
    symmetric=True,
    per_channel=False,
    workers=None,
    **runner_kwargs,
):
    """Sweep PTQ precision for every panel and method."""
    warm_for(
        fig1_configs(profile=profile, seed=seed, panels=panels),
        runner_kwargs,
        workers=workers,
        cache_dir=cache_dir,
    )
    results = {}
    for panel_id, dataset, model in panels:
        curves = {}
        for method in METHODS:
            config = make_config(model, dataset, method, profile=profile, seed=seed)
            kwargs = dict(runner_kwargs)
            if cache_dir is not None:
                kwargs["cache_dir"] = cache_dir
            run = run_training(config, **kwargs)
            _train, test, _spec = load_experiment_data(config)
            curves[method] = precision_sweep(
                run.model,
                accuracy_eval_fn(test),
                bits_list=bits,
                symmetric=symmetric,
                per_channel=per_channel,
            )
        results[panel_id] = {"dataset": dataset, "model": model, "curves": curves}
    return {"panels": results, "bits": list(bits), "profile": profile}


SCHEMES = {
    "symmetric/per-tensor": {"symmetric": True, "per_channel": False},
    "asymmetric/per-tensor": {"symmetric": False, "per_channel": False},
    "symmetric/per-channel": {"symmetric": True, "per_channel": True},
    "asymmetric/per-channel": {"symmetric": False, "per_channel": True},
}


def run_fig1_schemes(
    profile="fast",
    cache_dir=None,
    seed=0,
    dataset="cifar10_like",
    model="ResNet20",
    bits=4,
    workers=None,
    **runner_kwargs,
):
    """The paper's "beats GRAD-L1 under all quantization schemes" claim.

    Fixes one panel and precision and varies the quantizer: symmetric/
    asymmetric x per-tensor/per-channel.  Reuses cached training runs.
    """
    from ..quant import QuantScheme, evaluate_quantized

    warm_for(
        [
            make_config(model, dataset, method, profile=profile, seed=seed)
            for method in METHODS
        ],
        runner_kwargs,
        workers=workers,
        cache_dir=cache_dir,
    )
    rows = []
    for scheme_name, kwargs_scheme in SCHEMES.items():
        entry = {"scheme": scheme_name}
        for method in METHODS:
            config = make_config(model, dataset, method, profile=profile, seed=seed)
            kwargs = dict(runner_kwargs)
            if cache_dir is not None:
                kwargs["cache_dir"] = cache_dir
            run = run_training(config, **kwargs)
            _train, test, _spec = load_experiment_data(config)
            scheme = QuantScheme(bits=bits, **kwargs_scheme)
            entry[method], _report = evaluate_quantized(
                run.model, scheme, accuracy_eval_fn(test)
            )
        rows.append(entry)
    return {"rows": rows, "bits": bits, "model": model, "dataset": dataset}


def check_fig1_schemes(result):
    """HERO should beat GRAD-L1 under every scheme (paper Sec. 5.3)."""
    violations = []
    for row in result["rows"]:
        if row["hero"] < row["grad_l1"]:
            violations.append(
                f"{row['scheme']}: hero {row['hero']:.3f} < grad_l1 {row['grad_l1']:.3f}"
            )
    return violations


def format_fig1_schemes(result):
    """Render the scheme comparison table."""
    from .reporting import format_table

    headers = ["Scheme"] + list(METHODS)
    body = [[row["scheme"]] + [row[m] for m in METHODS] for row in result["rows"]]
    return format_table(
        headers,
        body,
        title=(
            f"Fig. 1 scheme robustness: {result['model']}/{result['dataset']} "
            f"at {result['bits']} bits"
        ),
    )


def check_fig1(result, low_bits=4):
    """Paper-shape assertions: HERO dominates at and below ``low_bits``."""
    violations = []
    for panel_id, panel in result["panels"].items():
        curves = panel["curves"]
        for i, bit in enumerate(result["bits"]):
            if bit > low_bits:
                continue
            hero = curves["hero"]["accuracy"][i]
            for other in ("grad_l1", "sgd"):
                if hero < curves[other]["accuracy"][i]:
                    violations.append(
                        f"panel {panel_id} ({panel['model']}/{panel['dataset']}) "
                        f"at {bit} bits: hero {hero:.3f} < {other} "
                        f"{curves[other]['accuracy'][i]:.3f}"
                    )
    return violations


def format_fig1(result):
    """Render every panel as aligned accuracy-vs-bits series."""
    blocks = []
    for panel_id, panel in result["panels"].items():
        lines = [f"Figure 1({panel_id}): {panel['model']} on {panel['dataset']}"]
        for method in METHODS:
            curve = panel["curves"][method]
            xs = result["bits"] + ["full"]
            ys = curve["accuracy"] + [curve["full_precision"]]
            lines.append(format_series(f"  {method}", xs, ys, "bits", "accuracy"))
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)
