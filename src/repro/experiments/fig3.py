"""Figure 3 — loss contours around converged weights (HERO vs SGD).

Paper: 2-D loss surfaces along two random filter-normalized directions
(Li et al. [15] tool), plotted at the same scale for a ResNet20 trained
with HERO and with SGD on CIFAR-10.  Claim: HERO's surface is smoother,
with a visibly larger region inside the +0.1-loss contour.

We report the surfaces, the *flat-area fraction* at the paper's +0.1
tolerance (the quantitative version of "larger inner contour"), and an
ASCII rendering for terminal inspection.
"""

from ..data import DataLoader
from ..landscape import (
    ascii_contour,
    flat_area_fraction,
    loss_surface,
    make_plot_directions,
    max_loss_increase,
)
from ..nn import CrossEntropyLoss
from .config import make_config
from .runner import load_experiment_data, run_training
from .sweep import warm_for

METHODS = ("hero", "sgd")


def fig3_configs(profile="fast", seed=0, model="ResNet20-fast", dataset="cifar10_like"):
    """The two training arms (HERO vs SGD) as a sweep spec."""
    return [
        make_config(model, dataset, method, profile=profile, seed=seed)
        for method in METHODS
    ]


def run_fig3(
    profile="fast",
    cache_dir=None,
    seed=0,
    model="ResNet20-fast",
    dataset="cifar10_like",
    radius=0.5,
    steps=13,
    tolerance=0.1,
    max_batches=2,
    direction_seed=7,
    workers=None,
    **runner_kwargs,
):
    """Evaluate the 2-D loss surface around each method's optimum.

    Both surfaces use the same random seed for the plot directions and
    the same grid radius — the paper's "plotted under the same scale".
    """
    warm_for(
        fig3_configs(profile=profile, seed=seed, model=model, dataset=dataset),
        runner_kwargs,
        workers=workers,
        cache_dir=cache_dir,
    )
    surfaces = {}
    for method in METHODS:
        config = make_config(model, dataset, method, profile=profile, seed=seed)
        kwargs = dict(runner_kwargs)
        if cache_dir is not None:
            kwargs["cache_dir"] = cache_dir
        result = run_training(config, **kwargs)
        train, _test, _spec = load_experiment_data(config)
        loader = DataLoader(train, batch_size=config.batch_size, shuffle=False, seed=0)
        batches = []
        for index, batch in enumerate(loader):
            if index >= max_batches:
                break
            batches.append(batch)
        params = list(result.model.parameters())
        d1, d2 = make_plot_directions(params, seed=direction_seed)
        surface = loss_surface(
            result.model,
            CrossEntropyLoss(),
            batches,
            d1,
            d2,
            radius=radius,
            steps=(steps, steps),
        )
        surfaces[method] = {
            "surface": surface,
            "flat_area": flat_area_fraction(surface, tolerance=tolerance),
            "max_increase": max_loss_increase(surface),
            "center_loss": surface["center_loss"],
        }
    return {
        "surfaces": surfaces,
        "radius": radius,
        "tolerance": tolerance,
        "profile": profile,
    }


def check_fig3(result):
    """Paper-shape assertion: HERO's flat region is at least SGD's."""
    hero = result["surfaces"]["hero"]
    sgd = result["surfaces"]["sgd"]
    violations = []
    if hero["flat_area"] < sgd["flat_area"]:
        violations.append(
            f"hero flat-area {hero['flat_area']:.3f} < sgd {sgd['flat_area']:.3f}"
        )
    return violations


def format_fig3(result):
    """Render both contours plus the flat-area comparison."""
    lines = [
        "Figure 3: loss contour around converged weights "
        f"(radius {result['radius']}, tolerance +{result['tolerance']})"
    ]
    for method in METHODS:
        data = result["surfaces"][method]
        lines.append(
            f"\n({method}) center loss {data['center_loss']:.4f}, "
            f"flat area {100 * data['flat_area']:.1f}%, "
            f"max increase {data['max_increase']:.3f}"
        )
        lines.append(ascii_contour(data["surface"]))
    return "\n".join(lines)
