"""Aggregate benchmark artifacts into a single markdown report.

Reads the ``.txt`` renderings that the benchmark suite writes to
``benchmarks/results/`` and stitches them into one document — the
"measured" half of EXPERIMENTS.md.
"""

import os

#: Order and titles of the report sections.
SECTIONS = (
    ("table1", "Table 1 — test accuracy"),
    ("table2", "Table 2 — noisy-label training"),
    ("table3", "Table 3 — gradient-rule ablation under PTQ"),
    ("fig1", "Figure 1 — PTQ accuracy vs precision"),
    ("fig1_schemes", "Figure 1 (schemes) — 4-bit accuracy across quantizers"),
    ("fig2", "Figure 2 — ||Hz|| and generalization gap"),
    ("fig3", "Figure 3 — loss contours"),
    ("theory_theorem3", "Theorem 3 — perturbation bounds"),
    ("qat_motivation", "Sec. 2.2 — QAT vs on-the-fly precision change"),
    ("ablation_design", "Ablations — design choices"),
    ("ablation_grids", "Ablations — h and gamma grids"),
)


def collect_results_markdown(results_dir, title="Measured results"):
    """Render every present artifact as a fenced block under its title."""
    lines = [f"# {title}", ""]
    missing = []
    for stem, section_title in SECTIONS:
        path = os.path.join(results_dir, f"{stem}.txt")
        if not os.path.exists(path):
            missing.append(stem)
            continue
        with open(path) as fh:
            content = fh.read().rstrip()
        lines.append(f"## {section_title}")
        lines.append("")
        lines.append("```")
        lines.append(content)
        lines.append("```")
        lines.append("")
    if missing:
        lines.append(f"_Artifacts not present in this run: {', '.join(missing)}_")
    return "\n".join(lines)


def write_results_markdown(results_dir, output_path, title="Measured results"):
    """Write the aggregated report; returns the output path."""
    content = collect_results_markdown(results_dir, title=title)
    with open(output_path, "w") as fh:
        fh.write(content + "\n")
    return output_path
