"""Multi-seed replication: mean +- std for any experiment cell.

The paper reports single numbers; at this reproduction's small scale
seed variance is non-negligible, so the harness offers seed-replicated
versions of any config — used by the full profile and available to
users who want error bars.
"""

import numpy as np

from .runner import run_training
from .sweep import warm_for


def run_with_seeds(config, seeds=(0, 1, 2), cache_dir=None, workers=None, **runner_kwargs):
    """Run ``config`` under each seed; returns per-seed results + stats.

    The seed is injected with ``config.with_overrides(seed=s)`` so data
    splits, init and shuffling all move together, like the paper's
    independent runs.  ``workers > 1`` trains the seeds in parallel.
    """
    warm_for(
        [config.with_overrides(seed=seed) for seed in seeds],
        runner_kwargs,
        workers=workers,
        cache_dir=cache_dir,
    )
    results = []
    for seed in seeds:
        kwargs = dict(runner_kwargs)
        if cache_dir is not None:
            kwargs["cache_dir"] = cache_dir
        results.append(run_training(config.with_overrides(seed=seed), **kwargs))
    test_accs = np.array([r.test_acc for r in results])
    train_accs = np.array([r.train_acc for r in results])
    return {
        "config": config,
        "seeds": list(seeds),
        "results": results,
        "test_acc_mean": float(test_accs.mean()),
        "test_acc_std": float(test_accs.std(ddof=1)) if len(seeds) > 1 else 0.0,
        "train_acc_mean": float(train_accs.mean()),
        "train_acc_std": float(train_accs.std(ddof=1)) if len(seeds) > 1 else 0.0,
    }


def compare_methods_with_seeds(
    make_config_fn,
    methods=("hero", "sgd"),
    seeds=(0, 1, 2),
    cache_dir=None,
    workers=None,
    **runner_kwargs,
):
    """Seed-replicated method comparison.

    ``make_config_fn(method)`` builds the config for each method; the
    return value maps method name to the :func:`run_with_seeds` stats,
    plus a ``"significant"`` flag per non-reference method: whether its
    mean beats the last method's mean by more than the pooled std
    (a coarse effect-size screen, not a formal test).

    The whole methods × seeds grid is warmed in one parallel sweep, so
    ``workers`` parallelism spans methods as well as seeds.
    """
    warm_for(
        [
            make_config_fn(method).with_overrides(seed=seed)
            for method in methods
            for seed in seeds
        ],
        runner_kwargs,
        workers=workers,
        cache_dir=cache_dir,
    )
    stats = {
        method: run_with_seeds(
            make_config_fn(method), seeds=seeds, cache_dir=cache_dir, **runner_kwargs
        )
        for method in methods
    }
    reference = methods[-1]
    for method in methods[:-1]:
        gap = stats[method]["test_acc_mean"] - stats[reference]["test_acc_mean"]
        pooled = np.sqrt(
            0.5 * (stats[method]["test_acc_std"] ** 2 + stats[reference]["test_acc_std"] ** 2)
        )
        stats[method]["gap_vs_reference"] = float(gap)
        stats[method]["significant"] = bool(gap > pooled)
    return stats
