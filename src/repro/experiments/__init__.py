"""``repro.experiments`` — harness regenerating every table and figure.

Each module corresponds to one artifact of the paper's evaluation
section and exposes ``run_*`` (compute), ``check_*`` (paper-shape
assertions) and ``format_*`` (text rendering):

===========  ===========================================================
``table1``   test accuracy across models/datasets/methods
``table2``   accuracy under 20-80% symmetric label noise
``table3``   HERO vs first-order-only vs SGD under PTQ (ablation)
``fig1``     PTQ accuracy vs precision, 7 panels
``fig2``     ``||Hz||`` and generalization gap across training
``fig3``     loss contours around converged weights
``ablations``design-choice ablations (perturbation/penalty/h/gamma)
===========  ===========================================================
"""

from .config import (
    TrainConfig,
    make_config,
    make_grid,
    expand_grid,
    METHOD_HYPERS,
    PAPER_MODELS,
    PROFILES,
)
from .runner import (
    RunResult,
    run_training,
    evaluate_accuracy,
    accuracy_eval_fn,
    execute_record,
    load_experiment_data,
    build_model,
    build_trainer,
    default_cache_dir,
    DEFAULT_CACHE_DIR,
)
from .sweep import (
    RunRecord,
    SweepReport,
    SCHEDULERS,
    run_sweep,
    warm_cache,
    warm_for,
    resolve_workers,
    format_sweep,
)
from .scheduler import (
    TaskQueue,
    worker_loop,
    worker_identity,
    queue_name_for,
    format_queue,
)
from .reporting import format_table, format_series, save_json
from .table1 import run_table1, check_table1, format_table1, table1_configs
from .table2 import run_table2, check_table2, format_table2, table2_configs
from .table3 import run_table3, check_table3, format_table3, table3_configs
from .fig1 import (
    run_fig1,
    check_fig1,
    format_fig1,
    fig1_configs,
    run_fig1_schemes,
    check_fig1_schemes,
    format_fig1_schemes,
)
from .fig2 import run_fig2, check_fig2, format_fig2, fig2_configs, fig2_callbacks
from .fig3 import run_fig3, check_fig3, format_fig3, fig3_configs
from .qat_motivation import (
    run_qat_motivation,
    check_qat_motivation,
    format_qat_motivation,
    qat_motivation_configs,
)
from .replication import run_with_seeds, compare_methods_with_seeds
from .summary_report import collect_results_markdown, write_results_markdown
from .ablations import (
    run_perturbation_ablation,
    run_penalty_ablation,
    run_h_sensitivity,
    run_gamma_grid,
    run_regularizer_ablation,
    format_ablation,
    ablation_configs,
)

__all__ = [
    "TrainConfig",
    "make_config",
    "make_grid",
    "expand_grid",
    "METHOD_HYPERS",
    "PAPER_MODELS",
    "PROFILES",
    "RunResult",
    "run_training",
    "evaluate_accuracy",
    "accuracy_eval_fn",
    "load_experiment_data",
    "build_model",
    "build_trainer",
    "default_cache_dir",
    "DEFAULT_CACHE_DIR",
    "RunRecord",
    "SweepReport",
    "SCHEDULERS",
    "run_sweep",
    "warm_cache",
    "warm_for",
    "resolve_workers",
    "format_sweep",
    "execute_record",
    "TaskQueue",
    "worker_loop",
    "worker_identity",
    "queue_name_for",
    "format_queue",
    "format_table",
    "format_series",
    "save_json",
    "run_table1",
    "check_table1",
    "format_table1",
    "table1_configs",
    "run_table2",
    "check_table2",
    "format_table2",
    "table2_configs",
    "run_table3",
    "check_table3",
    "format_table3",
    "table3_configs",
    "run_fig1",
    "check_fig1",
    "format_fig1",
    "fig1_configs",
    "run_fig1_schemes",
    "check_fig1_schemes",
    "format_fig1_schemes",
    "run_fig2",
    "check_fig2",
    "format_fig2",
    "fig2_configs",
    "fig2_callbacks",
    "run_fig3",
    "check_fig3",
    "format_fig3",
    "fig3_configs",
    "run_perturbation_ablation",
    "run_penalty_ablation",
    "run_h_sensitivity",
    "run_gamma_grid",
    "run_regularizer_ablation",
    "format_ablation",
    "ablation_configs",
    "run_qat_motivation",
    "check_qat_motivation",
    "format_qat_motivation",
    "qat_motivation_configs",
    "run_with_seeds",
    "compare_methods_with_seeds",
    "collect_results_markdown",
    "write_results_markdown",
]
