"""``repro.experiments`` — harness regenerating every table and figure.

Each module corresponds to one artifact of the paper's evaluation
section and exposes ``run_*`` (compute), ``check_*`` (paper-shape
assertions) and ``format_*`` (text rendering):

===========  ===========================================================
``table1``   test accuracy across models/datasets/methods
``table2``   accuracy under 20-80% symmetric label noise
``table3``   HERO vs first-order-only vs SGD under PTQ (ablation)
``fig1``     PTQ accuracy vs precision, 7 panels
``fig2``     ``||Hz||`` and generalization gap across training
``fig3``     loss contours around converged weights
``ablations``design-choice ablations (perturbation/penalty/h/gamma)
===========  ===========================================================
"""

from .config import TrainConfig, make_config, METHOD_HYPERS, PAPER_MODELS, PROFILES
from .runner import (
    RunResult,
    run_training,
    evaluate_accuracy,
    accuracy_eval_fn,
    load_experiment_data,
    build_model,
    build_trainer,
    DEFAULT_CACHE_DIR,
)
from .reporting import format_table, format_series, save_json
from .table1 import run_table1, check_table1, format_table1
from .table2 import run_table2, check_table2, format_table2
from .table3 import run_table3, check_table3, format_table3
from .fig1 import (
    run_fig1,
    check_fig1,
    format_fig1,
    run_fig1_schemes,
    check_fig1_schemes,
    format_fig1_schemes,
)
from .fig2 import run_fig2, check_fig2, format_fig2
from .fig3 import run_fig3, check_fig3, format_fig3
from .qat_motivation import (
    run_qat_motivation,
    check_qat_motivation,
    format_qat_motivation,
)
from .replication import run_with_seeds, compare_methods_with_seeds
from .summary_report import collect_results_markdown, write_results_markdown
from .ablations import (
    run_perturbation_ablation,
    run_penalty_ablation,
    run_h_sensitivity,
    run_gamma_grid,
    run_regularizer_ablation,
    format_ablation,
)

__all__ = [
    "TrainConfig",
    "make_config",
    "METHOD_HYPERS",
    "PAPER_MODELS",
    "PROFILES",
    "RunResult",
    "run_training",
    "evaluate_accuracy",
    "accuracy_eval_fn",
    "load_experiment_data",
    "build_model",
    "build_trainer",
    "DEFAULT_CACHE_DIR",
    "format_table",
    "format_series",
    "save_json",
    "run_table1",
    "check_table1",
    "format_table1",
    "run_table2",
    "check_table2",
    "format_table2",
    "run_table3",
    "check_table3",
    "format_table3",
    "run_fig1",
    "check_fig1",
    "format_fig1",
    "run_fig1_schemes",
    "check_fig1_schemes",
    "format_fig1_schemes",
    "run_fig2",
    "check_fig2",
    "format_fig2",
    "run_fig3",
    "check_fig3",
    "format_fig3",
    "run_perturbation_ablation",
    "run_penalty_ablation",
    "run_h_sensitivity",
    "run_gamma_grid",
    "run_regularizer_ablation",
    "format_ablation",
    "run_qat_motivation",
    "check_qat_motivation",
    "format_qat_motivation",
    "run_with_seeds",
    "compare_methods_with_seeds",
    "collect_results_markdown",
    "write_results_markdown",
]
