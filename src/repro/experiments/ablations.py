"""Design-choice ablations beyond the paper's Table 3.

DESIGN.md calls out the implementation decisions HERO leaves open;
each gets an experiment here:

* ``perturbation``: layer-adaptive Eq. 15 scaling vs a single global
  scale (Sec. 4.1 argues per-layer adaptation is needed);
* ``penalty``: ``||.||_2`` (Algorithm 1) vs ``||.||^2`` (Eq. 13);
* ``h_sensitivity``: the probe step around its tuned value;
* ``gamma_grid``: the paper's Hessian-strength grid search.
"""

from ..quant import QuantScheme, evaluate_quantized
from .config import expand_grid, make_config
from .reporting import format_table
from .runner import accuracy_eval_fn, load_experiment_data, run_training
from .sweep import warm_for

DEFAULT_MODEL = "ResNet20-fast"
DEFAULT_DATASET = "cifar10_like"

H_FACTORS = (0.5, 1.0, 2.0)
GAMMAS = (0.01, 0.05, 0.2)


def ablation_configs(profile="fast", seed=0, factors=H_FACTORS, gammas=GAMMAS):
    """Every cacheable ablation variant as one combined sweep spec.

    Covers the perturbation, penalty, h-sensitivity and gamma-grid
    studies (the regularizer ablation trains outside the cache); the
    sweep engine deduplicates the shared baseline config.
    """
    base = make_config(DEFAULT_MODEL, DEFAULT_DATASET, "hero", profile=profile, seed=seed)
    return (
        expand_grid(base, perturbation=["layer_adaptive", "global"])
        + expand_grid(base, penalty=["norm", "sq_norm"])
        + expand_grid(base, h=[base.h * factor for factor in factors])
        + expand_grid(base, gamma=list(gammas))
    )


def _run_variant(config, cache_dir, runner_kwargs, low_bits=4):
    kwargs = dict(runner_kwargs)
    if cache_dir is not None:
        kwargs["cache_dir"] = cache_dir
    result = run_training(config, **kwargs)
    _train, test, _spec = load_experiment_data(config)
    eval_fn = accuracy_eval_fn(test)
    q_low, _ = evaluate_quantized(result.model, QuantScheme(bits=low_bits), eval_fn)
    return {
        "test_acc": result.test_acc,
        "train_acc": result.train_acc,
        f"q{low_bits}_acc": q_low,
    }


def _warm(configs, workers, cache_dir, runner_kwargs):
    """Parallel warm pass for one ablation's grid (no-op when serial)."""
    warm_for(configs, runner_kwargs, workers=workers, cache_dir=cache_dir)


def run_perturbation_ablation(profile="fast", cache_dir=None, seed=0, workers=None, **runner_kwargs):
    """Eq. 15 layer-adaptive scaling vs one global scale."""
    base = make_config(DEFAULT_MODEL, DEFAULT_DATASET, "hero", profile=profile, seed=seed)
    configs = expand_grid(base, perturbation=["layer_adaptive", "global"])
    _warm(configs, workers, cache_dir, runner_kwargs)
    rows = [
        {"variant": config.perturbation, **_run_variant(config, cache_dir, runner_kwargs)}
        for config in configs
    ]
    return {"name": "perturbation", "rows": rows}


def run_penalty_ablation(profile="fast", cache_dir=None, seed=0, workers=None, **runner_kwargs):
    """Algorithm-1 norm penalty vs Eq. 13 squared-norm penalty."""
    base = make_config(DEFAULT_MODEL, DEFAULT_DATASET, "hero", profile=profile, seed=seed)
    configs = expand_grid(base, penalty=["norm", "sq_norm"])
    _warm(configs, workers, cache_dir, runner_kwargs)
    rows = [
        {"variant": config.penalty, **_run_variant(config, cache_dir, runner_kwargs)}
        for config in configs
    ]
    return {"name": "penalty", "rows": rows}


def run_h_sensitivity(
    profile="fast", cache_dir=None, seed=0, factors=H_FACTORS, workers=None, **runner_kwargs
):
    """Probe-step sensitivity around the tuned ``h``."""
    base = make_config(DEFAULT_MODEL, DEFAULT_DATASET, "hero", profile=profile, seed=seed)
    configs = expand_grid(base, h=[base.h * factor for factor in factors])
    _warm(configs, workers, cache_dir, runner_kwargs)
    rows = [
        {"variant": f"h={config.h:g}", **_run_variant(config, cache_dir, runner_kwargs)}
        for config in configs
    ]
    return {"name": "h_sensitivity", "rows": rows}


def run_regularizer_ablation(profile="fast", cache_dir=None, seed=0, **runner_kwargs):
    """Eq. 14 finite-difference proxy vs exact-HVP penalty (3rd order)."""
    rows = []
    for regularizer in ("finite_diff", "exact_hvp"):
        config = make_config(
            DEFAULT_MODEL, DEFAULT_DATASET, "hero", profile=profile, seed=seed,
        )
        # TrainConfig has no regularizer field (it is an implementation
        # ablation, not a paper hyperparameter) — run without cache.
        from .runner import build_model, build_trainer, load_experiment_data
        from ..data import DataLoader
        from ..quant import QuantScheme, evaluate_quantized
        from .runner import accuracy_eval_fn, evaluate_accuracy

        train, test, spec = load_experiment_data(config)
        model = build_model(config, spec)
        trainer = build_trainer(config, model)
        trainer.regularizer = regularizer
        loader = DataLoader(train, batch_size=config.batch_size, seed=config.seed + 1)
        trainer.fit(loader, config.epochs)
        eval_fn = accuracy_eval_fn(test)
        q4, _ = evaluate_quantized(model, QuantScheme(bits=4), eval_fn)
        rows.append(
            {
                "variant": regularizer,
                "test_acc": evaluate_accuracy(model, test),
                "train_acc": evaluate_accuracy(model, train),
                "q4_acc": q4,
            }
        )
    return {"name": "regularizer", "rows": rows}


def run_gamma_grid(
    profile="fast", cache_dir=None, seed=0, gammas=GAMMAS, workers=None, **runner_kwargs
):
    """The paper's gamma grid search (scaled to this substrate)."""
    base = make_config(DEFAULT_MODEL, DEFAULT_DATASET, "hero", profile=profile, seed=seed)
    configs = expand_grid(base, gamma=list(gammas))
    _warm(configs, workers, cache_dir, runner_kwargs)
    rows = [
        {"variant": f"gamma={config.gamma:g}", **_run_variant(config, cache_dir, runner_kwargs)}
        for config in configs
    ]
    return {"name": "gamma_grid", "rows": rows}


def format_ablation(result):
    """Render one ablation block."""
    keys = [k for k in result["rows"][0] if k != "variant"]
    headers = ["Variant"] + keys
    body = [[row["variant"]] + [row[k] for k in keys] for row in result["rows"]]
    return format_table(headers, body, title=f"Ablation: {result['name']}")
