"""Design-choice ablations beyond the paper's Table 3.

DESIGN.md calls out the implementation decisions HERO leaves open;
each gets an experiment here:

* ``perturbation``: layer-adaptive Eq. 15 scaling vs a single global
  scale (Sec. 4.1 argues per-layer adaptation is needed);
* ``penalty``: ``||.||_2`` (Algorithm 1) vs ``||.||^2`` (Eq. 13);
* ``h_sensitivity``: the probe step around its tuned value;
* ``gamma_grid``: the paper's Hessian-strength grid search.
"""

from ..quant import QuantScheme, evaluate_quantized
from .config import make_config
from .reporting import format_table
from .runner import accuracy_eval_fn, load_experiment_data, run_training

DEFAULT_MODEL = "ResNet20-fast"
DEFAULT_DATASET = "cifar10_like"


def _run_variant(config, cache_dir, runner_kwargs, low_bits=4):
    kwargs = dict(runner_kwargs)
    if cache_dir is not None:
        kwargs["cache_dir"] = cache_dir
    result = run_training(config, **kwargs)
    _train, test, _spec = load_experiment_data(config)
    eval_fn = accuracy_eval_fn(test)
    q_low, _ = evaluate_quantized(result.model, QuantScheme(bits=low_bits), eval_fn)
    return {
        "test_acc": result.test_acc,
        "train_acc": result.train_acc,
        f"q{low_bits}_acc": q_low,
    }


def run_perturbation_ablation(profile="fast", cache_dir=None, seed=0, **runner_kwargs):
    """Eq. 15 layer-adaptive scaling vs one global scale."""
    rows = []
    for perturbation in ("layer_adaptive", "global"):
        config = make_config(
            DEFAULT_MODEL, DEFAULT_DATASET, "hero", profile=profile, seed=seed,
            perturbation=perturbation,
        )
        rows.append({"variant": perturbation, **_run_variant(config, cache_dir, runner_kwargs)})
    return {"name": "perturbation", "rows": rows}


def run_penalty_ablation(profile="fast", cache_dir=None, seed=0, **runner_kwargs):
    """Algorithm-1 norm penalty vs Eq. 13 squared-norm penalty."""
    rows = []
    for penalty in ("norm", "sq_norm"):
        config = make_config(
            DEFAULT_MODEL, DEFAULT_DATASET, "hero", profile=profile, seed=seed,
            penalty=penalty,
        )
        rows.append({"variant": penalty, **_run_variant(config, cache_dir, runner_kwargs)})
    return {"name": "penalty", "rows": rows}


def run_h_sensitivity(profile="fast", cache_dir=None, seed=0, factors=(0.5, 1.0, 2.0), **runner_kwargs):
    """Probe-step sensitivity around the tuned ``h``."""
    base = make_config(DEFAULT_MODEL, DEFAULT_DATASET, "hero", profile=profile, seed=seed)
    rows = []
    for factor in factors:
        config = base.with_overrides(h=base.h * factor)
        rows.append(
            {"variant": f"h={config.h:g}", **_run_variant(config, cache_dir, runner_kwargs)}
        )
    return {"name": "h_sensitivity", "rows": rows}


def run_regularizer_ablation(profile="fast", cache_dir=None, seed=0, **runner_kwargs):
    """Eq. 14 finite-difference proxy vs exact-HVP penalty (3rd order)."""
    rows = []
    for regularizer in ("finite_diff", "exact_hvp"):
        config = make_config(
            DEFAULT_MODEL, DEFAULT_DATASET, "hero", profile=profile, seed=seed,
        )
        # TrainConfig has no regularizer field (it is an implementation
        # ablation, not a paper hyperparameter) — run without cache.
        from .runner import build_model, build_trainer, load_experiment_data
        from ..data import DataLoader
        from ..quant import QuantScheme, evaluate_quantized
        from .runner import accuracy_eval_fn, evaluate_accuracy

        train, test, spec = load_experiment_data(config)
        model = build_model(config, spec)
        trainer = build_trainer(config, model)
        trainer.regularizer = regularizer
        loader = DataLoader(train, batch_size=config.batch_size, seed=config.seed + 1)
        trainer.fit(loader, config.epochs)
        eval_fn = accuracy_eval_fn(test)
        q4, _ = evaluate_quantized(model, QuantScheme(bits=4), eval_fn)
        rows.append(
            {
                "variant": regularizer,
                "test_acc": evaluate_accuracy(model, test),
                "train_acc": evaluate_accuracy(model, train),
                "q4_acc": q4,
            }
        )
    return {"name": "regularizer", "rows": rows}


def run_gamma_grid(profile="fast", cache_dir=None, seed=0, gammas=(0.01, 0.05, 0.2), **runner_kwargs):
    """The paper's gamma grid search (scaled to this substrate)."""
    base = make_config(DEFAULT_MODEL, DEFAULT_DATASET, "hero", profile=profile, seed=seed)
    rows = []
    for gamma in gammas:
        config = base.with_overrides(gamma=gamma)
        rows.append(
            {"variant": f"gamma={gamma:g}", **_run_variant(config, cache_dir, runner_kwargs)}
        )
    return {"name": "gamma_grid", "rows": rows}


def format_ablation(result):
    """Render one ablation block."""
    keys = [k for k in result["rows"][0] if k != "variant"]
    headers = ["Variant"] + keys
    body = [[row["variant"]] + [row[k] for k in keys] for row in result["rows"]]
    return format_table(headers, body, title=f"Ablation: {result['name']}")
