"""The paper's motivating claim about QAT vs robust training (Sec. 2.2).

"Quantization-aware training regains the quantization performance via
retraining on a specific quantization precision, yet they fail to
perform well when the precision is changed on the fly."

This experiment trains (a) QAT at a fixed target precision, (b) HERO
and (c) plain SGD, then deploys each at *every* precision.  The
expected shape: the QAT curve peaks at its target precision but decays
away from it (and at full precision!), while HERO stays uniformly
strong — the property that motivates the whole paper.
"""

from ..data import DataLoader
from ..quant import precision_sweep
from .config import make_config
from .reporting import format_series
from .runner import (
    accuracy_eval_fn,
    build_model,
    build_trainer,
    load_experiment_data,
    run_training,
)
from .sweep import warm_for


def qat_motivation_configs(profile="fast", seed=0, model="ResNet20-fast", dataset="cifar10_like"):
    """The cacheable arms (HERO, SGD) as a sweep spec; QAT trains inline."""
    return [
        make_config(model, dataset, method, profile=profile, seed=seed)
        for method in ("hero", "sgd")
    ]


def run_qat_motivation(
    profile="fast",
    cache_dir=None,
    seed=0,
    model="ResNet20-fast",
    dataset="cifar10_like",
    qat_bits=4,
    bits=(3, 4, 5, 6, 8),
    workers=None,
    **runner_kwargs,
):
    """Deploy QAT@{qat_bits}, HERO and SGD models at every precision."""
    warm_for(
        qat_motivation_configs(profile=profile, seed=seed, model=model, dataset=dataset),
        runner_kwargs,
        workers=workers,
        cache_dir=cache_dir,
    )
    curves = {}
    # HERO and SGD come from the shared cached runs.
    for method in ("hero", "sgd"):
        config = make_config(model, dataset, method, profile=profile, seed=seed)
        kwargs = dict(runner_kwargs)
        if cache_dir is not None:
            kwargs["cache_dir"] = cache_dir
        result = run_training(config, **kwargs)
        _train, test, _spec = load_experiment_data(config)
        curves[method] = precision_sweep(
            result.model, accuracy_eval_fn(test), bits_list=bits
        )

    # QAT has no TrainConfig method entry (its bits hyperparameter is
    # specific to this experiment), so it trains directly.
    config = make_config(model, dataset, "sgd", profile=profile, seed=seed)
    train, test, spec = load_experiment_data(config)
    qat_model = build_model(config, spec)
    base_trainer = build_trainer(config, qat_model)
    from ..core import QATTrainer

    trainer = QATTrainer(
        qat_model,
        base_trainer.loss_fn,
        base_trainer.optimizer,
        scheduler=base_trainer.scheduler,
        bits=qat_bits,
    )
    loader = DataLoader(train, batch_size=config.batch_size, shuffle=True, seed=config.seed + 1)
    trainer.fit(loader, config.epochs)
    curves[f"qat@{qat_bits}bit"] = precision_sweep(
        qat_model, accuracy_eval_fn(test), bits_list=bits
    )

    return {
        "curves": curves,
        "bits": list(bits),
        "qat_bits": qat_bits,
        "model": model,
        "dataset": dataset,
        "profile": profile,
    }


def check_qat_motivation(result):
    """Shape checks for the Sec. 2.2 claim."""
    violations = []
    qat_key = f"qat@{result['qat_bits']}bit"
    qat = result["curves"][qat_key]
    hero = result["curves"]["hero"]
    target_index = result["bits"].index(result["qat_bits"])
    # QAT at its own precision should be at least near its full-precision self.
    if qat["accuracy"][target_index] < qat["full_precision"] - 0.05:
        violations.append(
            f"QAT not strong at its target precision: "
            f"{qat['accuracy'][target_index]:.3f} vs full {qat['full_precision']:.3f}"
        )
    # HERO should beat QAT somewhere *away* from the QAT target.
    off_target = [
        hero["accuracy"][i] - qat["accuracy"][i]
        for i, b in enumerate(result["bits"])
        if b != result["qat_bits"]
    ]
    if max(off_target) <= 0:
        violations.append("HERO never beats QAT off-target (unexpected)")
    return violations


def format_qat_motivation(result):
    """Render the deployment curves."""
    lines = [
        f"QAT motivation (Sec. 2.2): {result['model']}/{result['dataset']}, "
        f"QAT trained at {result['qat_bits']} bits"
    ]
    for name, curve in result["curves"].items():
        xs = result["bits"] + ["full"]
        ys = curve["accuracy"] + [curve["full_precision"]]
        lines.append(format_series(f"  {name}", xs, ys, "bits", "accuracy"))
    lines.append(
        "\nExpected shape: QAT peaks at its target precision; HERO stays"
        "\nuniformly strong across the sweep (the paper's motivation)."
    )
    return "\n".join(lines)
