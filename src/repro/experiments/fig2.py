"""Figure 2 — Hessian norm and generalization gap across training.

Paper: (a) the ``||Hz||`` metric (z per Eq. 15, averaged over the
training set) per epoch for HERO / GRAD-L1 / SGD; (b) the
generalization gap (train acc - test acc) in the final epochs.
Claims: the Hessian norm grows as models overfit, HERO keeps it lowest
at convergence, and correspondingly shows the smallest gap.
"""

import json
import os
from functools import partial

from ..core.callbacks import GeneralizationGapCallback, HessianNormCallback
from ..data import DataLoader
from ..nn import CrossEntropyLoss
from .config import make_config
from .reporting import format_series
from .runner import _cache_complete, default_cache_dir, load_experiment_data, run_training
from .sweep import run_sweep, warm_for

METHODS = ("hero", "grad_l1", "sgd")


def fig2_callbacks(config, max_batches=2):
    """Per-config training callbacks measuring ``||Hz||`` and the gap.

    Module-level (and used with :func:`functools.partial`) so the sweep
    engine can ship it to worker processes and build the callbacks
    inside each worker.
    """
    train, _test, _spec = load_experiment_data(config)
    probe_loader = DataLoader(train, batch_size=config.batch_size, shuffle=True, seed=99)
    return [
        HessianNormCallback(
            probe_loader, CrossEntropyLoss(), h=config.h, max_batches=max_batches
        ),
        GeneralizationGapCallback(),
    ]


def _cached_without_hessian(config, cache_dir):
    """True if the run is cached but lacks the ``||Hz||`` column.

    Happens when another experiment (same config, no callbacks) trained
    the entry first; such hits need a force-retrain with the callbacks
    attached.
    """
    root = cache_dir if cache_dir is not None else default_cache_dir()
    path = os.path.join(root, config.cache_key())
    if not _cache_complete(path):
        return False
    try:
        with open(os.path.join(path, "history.json")) as fh:
            columns = json.load(fh)
    except (OSError, ValueError):
        return True
    return not any(value is not None for value in columns.get("hessian_norm", []))


def fig2_configs(profile="fast", seed=0, model="ResNet20-fast", dataset="cifar10_like"):
    """The figure's three training arms as a sweep spec."""
    return [
        make_config(model, dataset, method, profile=profile, seed=seed)
        for method in METHODS
    ]


def run_fig2(
    profile="fast",
    cache_dir=None,
    seed=0,
    model="ResNet20-fast",
    dataset="cifar10_like",
    max_batches=2,
    gap_window=10,
    workers=None,
    **runner_kwargs,
):
    """Train the three methods with per-epoch ``||Hz||`` tracking.

    Note: unlike the other experiments this one *always* retrains when
    its metrics are missing from cache, because the measurement happens
    inside training callbacks.  A parallel warm pass attaches the same
    callbacks inside each worker, so fresh cache entries already carry
    the measured columns.
    """
    configs = fig2_configs(profile=profile, seed=seed, model=model, dataset=dataset)
    factory = partial(fig2_callbacks, max_batches=max_batches)
    warmed = warm_for(
        configs, runner_kwargs, workers=workers, cache_dir=cache_dir, callback_factory=factory
    )
    if warmed is not None:
        # Warm hits cached by *other* experiments never ran the
        # callbacks; force-retrain exactly those, still in parallel, so
        # the assembly loop below stays pure cache reads.
        stale = [c for c in configs if _cached_without_hessian(c, cache_dir)]
        if stale:
            run_sweep(
                stale,
                workers=workers,
                cache_dir=cache_dir if cache_dir is not None else default_cache_dir(),
                force=True,
                callback_factory=factory,
            )
    series = {}
    for method in METHODS:
        config = make_config(model, dataset, method, profile=profile, seed=seed)
        callbacks = fig2_callbacks(config, max_batches=max_batches)
        kwargs = dict(runner_kwargs)
        if cache_dir is not None:
            kwargs["cache_dir"] = cache_dir
        result = run_training(config, callbacks=callbacks, **kwargs)
        history = result.history
        if result.from_cache and not any(history["hessian_norm"]):
            # Cached run from another experiment without the callback:
            # retrain with measurement enabled.
            result = run_training(config, callbacks=callbacks, force=True, **kwargs)
            history = result.history
        series[method] = {
            "epoch": history["epoch"],
            "hessian_norm": history["hessian_norm"],
            "generalization_gap": history["generalization_gap"],
            "final_test_acc": result.test_acc,
        }
    return {"series": series, "gap_window": gap_window, "profile": profile}


def check_fig2(result):
    """Paper-shape assertions: HERO ends with the lowest ||Hz|| and gap."""
    violations = []
    finals = {}
    gaps = {}
    window = result["gap_window"]
    for method, data in result["series"].items():
        values = [v for v in data["hessian_norm"] if v is not None]
        gap_values = [v for v in data["generalization_gap"] if v is not None]
        if not values or not gap_values:
            violations.append(f"{method}: missing hessian/gap series")
            continue
        finals[method] = values[-1]
        tail = gap_values[-window:]
        gaps[method] = sum(tail) / len(tail)
    if finals and min(finals, key=finals.get) != "hero":
        violations.append(f"final ||Hz|| lowest for {min(finals, key=finals.get)}, not hero: {finals}")
    if gaps and min(gaps, key=gaps.get) != "hero":
        violations.append(f"final gap lowest for {min(gaps, key=gaps.get)}, not hero: {gaps}")
    return violations


def format_fig2(result):
    """Render the two panels as aligned series."""
    lines = ["Figure 2(a): ||Hz|| across training"]
    for method, data in result["series"].items():
        epochs = [e for e, v in zip(data["epoch"], data["hessian_norm"]) if v is not None]
        values = [v for v in data["hessian_norm"] if v is not None]
        lines.append(format_series(f"  {method}", epochs, values, "epoch", "||Hz||"))
    lines.append("")
    lines.append(f"Figure 2(b): generalization gap (last {result['gap_window']} epochs)")
    for method, data in result["series"].items():
        pairs = [
            (e, v)
            for e, v in zip(data["epoch"], data["generalization_gap"])
            if v is not None
        ][-result["gap_window"]:]
        lines.append(
            format_series(
                f"  {method}",
                [p[0] for p in pairs],
                [p[1] for p in pairs],
                "epoch",
                "gap",
            )
        )
    return "\n".join(lines)
