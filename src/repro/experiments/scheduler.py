"""Queued, resumable sweep scheduling with work-stealing workers.

The multiprocessing pool (:func:`repro.experiments.sweep.run_sweep`'s
default backend) dispatches a fixed grid up front: a straggler run
idles every other worker, a crashed sweep forfeits its bookkeeping,
and only processes forked by the parent can participate.  This module
replaces that dispatch with a **durable task queue** shared through
the run-cache directory:

* **Journal** — one :class:`repro.io.JsonJournal` record per config
  signature under ``<cache>/queue/<name>/journal/``, transitioned
  ``pending → leased → done/error`` via locked read-modify-write.
  The journal *is* the sweep state: any process that can see the
  cache directory can enqueue, work, tail or resume.
* **Leases** — a claim stamps the record with a worker identity and
  an expiry.  A worker that dies mid-task simply stops renewing its
  claim; once the lease expires any other worker **steals** the task
  and re-runs it (results are deterministic per config, so a re-run
  is bit-identical).  A task whose lease expires
  :data:`DEFAULT_MAX_ATTEMPTS` times is marked ``error`` instead of
  looping forever — the poison-task backstop.
* **Work-stealing workers** — :func:`worker_loop` is a claim → train
  → record loop any number of processes can run concurrently, on any
  machine sharing the cache directory (``python -m repro.experiments
  worker``).  Workers drain the queue and exit; adding workers
  mid-sweep just makes it drain faster.
* **Resume** — re-enqueueing the same grid keeps ``done`` records
  (their metrics are served straight from the journal) and re-runs
  everything else.  An interrupted sweep picks up where it left off
  with zero duplicated training.

Crash-in-task semantics are unchanged from the pool backend: an
exception inside a run is contained as an ``error`` record by
:func:`repro.experiments.runner.execute_record` and is **not**
retried within the sweep (a deterministic failure would fail again);
only lease expiry — evidence the *worker* died, not the task —
triggers a steal.  See ``docs/scheduler.md`` for the journal-state
diagram and the multi-machine recipe.
"""

import dataclasses
import hashlib
import json
import os
import socket
import time
import uuid

from ..core.trainer import Callback
from ..io import JsonJournal, atomic_write_json, file_lock
from ..messages import JournalEntryV2, MessageError
from ..messages import parse as parse_message
from .config import TrainConfig
from .reporting import RunRecord, record_from_dict, record_to_dict
from .runner import execute_record

#: Journal entry schema version, bumped on any incompatible change.
#: Single-sourced from :class:`repro.messages.JournalEntryV2` — the
#: schema itself lives in ``repro.messages`` and is pinned by the
#: golden vectors under ``tests/messages/vectors/`` plus the hash in
#: ``tests/test_golden.py``.  Version 2 added the terminal
#: ``quarantined`` state (the poison backstop, previously a synthetic
#: ``error``) — a v1 worker would treat a quarantined entry as
#: claimable garbage, hence the bump.
JOURNAL_VERSION = JournalEntryV2.VERSION

#: Every key of a journal entry, in canonical order — the version
#: envelope plus the message type's fields (the golden test asserts
#: this tuple and the serialized shape never drift silently).
ENTRY_FIELDS = ("version",) + tuple(
    field.name for field in dataclasses.fields(JournalEntryV2)
)

#: Task lifecycle states.  ``quarantined`` is terminal like ``done``
#: and ``error`` but *sticky*: a plain re-enqueue re-runs errors,
#: while a quarantined task stays parked until forced — it has already
#: eaten ``max_attempts`` workers (or kept erroring under the fleet
#: supervisor's retry patrol) and must not poison the pool again.
PENDING, LEASED, DONE, ERROR = "pending", "leased", "done", "error"
QUARANTINED = "quarantined"
TERMINAL = (DONE, ERROR, QUARANTINED)

#: Seconds a claim stays valid before other workers may steal the task.
#: Generous by default — a steal re-runs the whole task, so false
#: steals (a slow-but-alive worker) waste more than late steals cost.
DEFAULT_LEASE_TIMEOUT = 900.0

#: Claims (first run + steals) before a task is marked ``error``.
DEFAULT_MAX_ATTEMPTS = 3

#: Subdirectory of the run cache holding every queue.
QUEUE_SUBDIR = "queue"


def queue_name_for(configs):
    """Deterministic queue name for a grid: hash of its ordered run keys.

    The same grid always maps to the same queue, which is what makes
    ``run_sweep(scheduler="queue")`` resumable without the caller
    naming anything; distinct grids land in distinct queues.
    """
    keys = "\n".join(config.cache_key() for config in configs)
    return "grid-" + hashlib.sha256(keys.encode()).hexdigest()[:12]


def queue_root(cache_dir, name):
    """Directory queue ``name`` occupies under the run cache."""
    return os.path.join(os.path.abspath(cache_dir), QUEUE_SUBDIR, name)


def worker_identity():
    """A globally unique worker id: ``host:pid:nonce``.

    The nonce guards against pid reuse — a recycled pid on the same
    host must not look like the original lease holder.
    """
    return f"{socket.gethostname()}:{os.getpid()}:{uuid.uuid4().hex[:8]}"


def new_entry(config, force=False, now=0.0):
    """A fresh ``pending`` journal entry for ``config``.

    Pure function of its arguments (the clock is passed in), so the
    golden schema test can pin the exact serialized form.  Built
    through :class:`repro.messages.JournalEntryV2`, so an invalid
    entry cannot even be constructed.
    """
    return JournalEntryV2(
        key=config.cache_key(),
        config=config.to_dict(),
        force=bool(force),
        status=PENDING,
        attempts=0,
        worker=None,
        leased_at=None,
        lease_expires=None,
        enqueued_at=now,
        started_at=None,
        finished_at=None,
        record=None,
    ).to_dict()


def parse_entry(payload, key=None):
    """Validate a raw journal payload at the read boundary.

    Returns the canonical dict form of the (possibly upgraded) entry:
    a v1 entry comes back as v2 via its ``upgrade()`` hook, a valid v2
    entry round-trips unchanged, and anything else — unknown fields,
    missing fields, a version this build cannot read — raises the
    typed :class:`repro.messages.MessageError` subclass with the task
    key attached, instead of surfacing as a ``KeyError`` deep in a
    worker (or being silently skipped, as pre-messages compaction
    did).
    """
    try:
        return parse_message("queue.journal_entry", payload).to_dict()
    except MessageError as exc:
        where = f"journal entry {key!r}" if key is not None else "journal entry"
        raise type(exc)(f"{where}: {exc}") from exc


def _canonical_entry(entry):
    """Serialize-at-write validation: canonical v2 form or a typed error."""
    return JournalEntryV2.from_dict(entry).to_dict()


class _ClaimLost(Exception):
    """Internal: another worker transitioned the entry first."""


class TaskQueue:
    """A durable sweep queue: journal + manifest under one directory.

    The journal holds one entry per config signature; ``manifest.json``
    records the order of first appearance (reports present records in
    grid order, not completion order) and the queue-wide settings
    (lease timeout, max attempts).  Everything is plain JSON under the
    run cache, so ``TaskQueue(root)`` on any machine mounting the same
    directory sees the same queue.
    """

    def __init__(self, root, clock=time.time):
        self.root = os.path.abspath(root)
        self.journal = JsonJournal(os.path.join(self.root, "journal"))
        self.clock = clock

    # -- creation / metadata -------------------------------------------
    @classmethod
    def create(
        cls,
        cache_dir,
        name,
        lease_timeout=None,
        max_attempts=None,
        clock=time.time,
    ):
        """Open-or-create the queue ``name`` under ``cache_dir``.

        Creation is idempotent and race-safe: the first creator writes
        ``meta.json`` (defaults filled in); later creators adopt the
        existing settings so every worker agrees on lease semantics —
        *unless* they pass ``lease_timeout``/``max_attempts``
        explicitly, which updates the live queue.  That asymmetry is
        deliberate: resuming an interrupted sweep with a shorter
        ``--lease-timeout`` is how an operator reclaims leases
        orphaned by a dead sweep without waiting out the original
        (deliberately generous) timeout.  Workers re-read the settings
        on every claim, so an update takes effect fleet-wide.
        """
        queue = cls(queue_root(cache_dir, name), clock=clock)
        meta_path = os.path.join(queue.root, "meta.json")
        with file_lock(meta_path + ".lock"):
            try:
                with open(meta_path) as fh:
                    meta = json.load(fh)
            except FileNotFoundError:
                meta = {
                    "version": JOURNAL_VERSION,
                    "name": name,
                    "lease_timeout": DEFAULT_LEASE_TIMEOUT,
                    "max_attempts": DEFAULT_MAX_ATTEMPTS,
                    "created_at": queue.clock(),
                }
            updated = dict(meta)
            if lease_timeout is not None:
                updated["lease_timeout"] = float(lease_timeout)
            if max_attempts is not None:
                updated["max_attempts"] = int(max_attempts)
            if updated != meta or not os.path.exists(meta_path):
                atomic_write_json(meta_path, updated, indent=2)
        return queue

    @property
    def meta(self):
        with open(os.path.join(self.root, "meta.json")) as fh:
            return json.load(fh)

    @property
    def cache_dir(self):
        """The run-cache directory this queue lives under.

        Derived from the queue's location rather than stored, so a
        shared filesystem mounted at different paths on different
        machines still resolves correctly on each of them.
        """
        return os.path.dirname(os.path.dirname(self.root))

    def _manifest_path(self):
        return os.path.join(self.root, "manifest.json")

    def keys(self):
        """Task keys in order of first enqueue."""
        try:
            with open(self._manifest_path()) as fh:
                return json.load(fh)["keys"]
        except FileNotFoundError:
            return []

    # -- enqueue / resume ----------------------------------------------
    def enqueue(self, configs, force=False):
        """Add ``configs`` to the queue; returns ``(enqueued, resumed)``.

        Per config signature:

        * no entry, or a terminal ``error`` entry → fresh ``pending``
          (resuming re-runs exactly the non-``done`` work);
        * ``pending``/``leased`` → untouched (an expired lease is the
          claim path's business, not enqueue's);
        * ``done`` → untouched and counted in ``resumed`` — its stored
          record is served without re-running anything;
        * ``quarantined`` → untouched and counted in ``resumed``: the
          poison backstop already parked it with a terminal record, and
          re-running it would just feed it more workers.  Only
          ``force=True`` un-quarantines;
        * ``force=True`` → everything resets to ``pending`` with the
          force flag set, so workers retrain past the run cache.

        Existing entries pass through the :func:`parse_entry` read
        boundary first: an old-version entry is upgraded in place (and
        persisted as v2, counted under its natural outcome rather than
        vanished), while an entry this build cannot read raises a
        typed :class:`repro.messages.VersionError` naming the key.
        """
        now = self.clock()
        enqueued = resumed = 0
        ordered = []
        for config in configs:
            key = config.cache_key()
            ordered.append(key)
            fresh = new_entry(config, force=force, now=now)
            state = {}

            def mutate(current, key=key, fresh=fresh, state=state):
                entry = None if current is None else parse_entry(current, key=key)
                if entry is None or force or entry["status"] == ERROR:
                    state["outcome"] = "enqueued"
                    return fresh
                state["outcome"] = (
                    "resumed" if entry["status"] in (DONE, QUARANTINED) else "kept"
                )
                # A kept entry that parsing *changed* (a v1 entry that
                # was upgraded) must be persisted; an unchanged entry
                # returns the original object so JsonJournal skips the
                # rewrite entirely.
                return current if entry == current else entry

            self.journal.update(key, mutate)
            if state["outcome"] == "enqueued":
                enqueued += 1
            elif state["outcome"] == "resumed":
                resumed += 1
        self._extend_manifest(ordered)
        return enqueued, resumed

    def _extend_manifest(self, keys):
        path = self._manifest_path()
        with file_lock(path + ".lock"):
            existing = self.keys()
            seen = set(existing)
            merged = list(existing)
            for key in keys:
                if key not in seen:
                    seen.add(key)
                    merged.append(key)
            if merged != existing:
                atomic_write_json(path, {"version": JOURNAL_VERSION, "keys": merged})

    # -- claiming ------------------------------------------------------
    def _claimable(self, entry, now, lease_timeout):
        """Runnable right now, under the queue's *current* lease timeout.

        Expiry is computed from ``leased_at`` + the timeout in force at
        claim-check time, not from the stamped ``lease_expires``: that
        is what lets an operator resume a dead sweep with a shorter
        ``--lease-timeout`` and have leases orphaned under the old,
        generous timeout become stealable immediately.
        """
        if entry is None or entry["status"] in TERMINAL:
            return False
        if entry["status"] == PENDING:
            return True
        leased_at = entry.get("leased_at")
        return leased_at is not None and leased_at + lease_timeout <= now

    def claim(self, worker):
        """Lease the first runnable task; returns its entry or ``None``.

        Scans the manifest in order, checking each entry with a
        lock-free read and only taking the per-key lock for an entry
        that looks runnable — under the lock the state is re-checked,
        so two workers racing for the same task serialize and the
        loser moves on to the next one.  Stealing an expired lease
        whose attempts are exhausted marks the task ``quarantined``
        (with a synthetic record naming the last worker that died on
        it) rather than claiming it — the poison backstop.
        """
        meta = self.meta
        lease_timeout = meta["lease_timeout"]
        max_attempts = meta["max_attempts"]
        for key in self.keys():
            now = self.clock()
            peeked = self.journal.read(key)
            peeked = None if peeked is None else parse_entry(peeked, key=key)
            if not self._claimable(peeked, now, lease_timeout):
                continue

            def mutate(current, key=key, now=now):
                entry = None if current is None else parse_entry(current, key=key)
                if not self._claimable(entry, now, lease_timeout):
                    raise _ClaimLost(key)
                if entry["attempts"] >= max_attempts:
                    lost = dict(entry)
                    lost["status"] = QUARANTINED
                    lost["worker"] = None
                    lost["leased_at"] = None
                    lost["lease_expires"] = None
                    lost["finished_at"] = now
                    lost["record"] = record_to_dict(
                        RunRecord(
                            key=entry["key"],
                            config=None,
                            status="error",
                            error=(
                                f"lease expired {entry['attempts']} time(s) "
                                f"(last worker {entry['worker']!r}); "
                                f"max_attempts={max_attempts} exhausted"
                            ),
                        ),
                        include_config=False,
                    )
                    return _canonical_entry(lost)
                leased = dict(entry)
                leased["status"] = LEASED
                leased["attempts"] = entry["attempts"] + 1
                leased["worker"] = worker
                leased["leased_at"] = now
                leased["lease_expires"] = now + lease_timeout
                leased["started_at"] = now
                return _canonical_entry(leased)

            try:
                entry = self.journal.update(key, mutate)
            except _ClaimLost:
                continue
            if entry["status"] == LEASED and entry["worker"] == worker:
                return entry
        return None

    def renew(self, key, worker):
        """Extend a live lease; returns False if the lease was lost.

        A long-running worker calls this between epochs (or any other
        natural heartbeat) so a generous lease timeout isn't needed to
        cover the whole task — only the gap between heartbeats.
        """
        meta = self.meta

        def mutate(current):
            entry = None if current is None else parse_entry(current, key=key)
            if entry is None or entry["status"] != LEASED or entry["worker"] != worker:
                raise _ClaimLost(key)
            renewed = dict(entry)
            renewed["leased_at"] = self.clock()
            renewed["lease_expires"] = renewed["leased_at"] + meta["lease_timeout"]
            return _canonical_entry(renewed)

        try:
            self.journal.update(key, mutate)
        except _ClaimLost:
            return False
        return True

    # -- completion ----------------------------------------------------
    def resolve(self, key, worker, record):
        """Write a task's outcome; returns False if the lease was stolen.

        The transition only lands if ``worker`` still holds the lease —
        a worker that stalled past its lease (its task was stolen and
        possibly re-completed) must not clobber the thief's record.
        """

        def mutate(current):
            entry = None if current is None else parse_entry(current, key=key)
            if entry is None or entry["status"] != LEASED or entry["worker"] != worker:
                raise _ClaimLost(key)
            finished = dict(entry)
            finished["status"] = DONE if record.ok else ERROR
            finished["worker"] = None
            finished["leased_at"] = None
            finished["lease_expires"] = None
            finished["finished_at"] = self.clock()
            finished["record"] = record_to_dict(record, include_config=False)
            return _canonical_entry(finished)

        try:
            self.journal.update(key, mutate)
        except _ClaimLost:
            return False
        return True

    # -- supervision ---------------------------------------------------
    def retry_errors(self):
        """Re-run or quarantine terminal ``error`` tasks; the fleet patrol.

        A resident fleet (:mod:`repro.service`) outlives any single
        sweep, so a task that erred under transient conditions — disk
        full, OOM, a dataset cache mid-eviction — deserves another
        attempt once the environment may have healed.  Each ``error``
        entry whose attempts are below the queue's ``max_attempts`` is
        reset to ``pending`` (attempts preserved, so retries are
        bounded); one that has exhausted its attempts is moved to
        ``quarantined``, keeping its last error record.  Returns
        ``(retried_keys, quarantined_keys)``.

        Never called by plain ``run_sweep`` — without a supervisor a
        deterministic failure is still contained once and not retried.
        """
        max_attempts = self.meta["max_attempts"]
        retried, quarantined = [], []
        for key, entry in self.snapshot().items():
            if entry["status"] != ERROR:
                continue

            def mutate(current, key=key):
                entry = None if current is None else parse_entry(current, key=key)
                if entry is None or entry["status"] != ERROR:
                    raise _ClaimLost(key)  # someone else moved it first
                moved = dict(entry)
                if entry["attempts"] >= max_attempts:
                    moved["status"] = QUARANTINED
                else:
                    moved["status"] = PENDING
                    moved["worker"] = None
                    moved["leased_at"] = None
                    moved["lease_expires"] = None
                    moved["finished_at"] = None
                    moved["record"] = None
                return _canonical_entry(moved)

            try:
                moved = self.journal.update(key, mutate)
            except _ClaimLost:
                continue
            (quarantined if moved["status"] == QUARANTINED else retried).append(key)
        return retried, quarantined

    # -- observation ---------------------------------------------------
    def snapshot(self):
        """``{key: entry}`` for every journal entry (lock-free)."""
        return self.journal.snapshot()

    def counts(self, snapshot=None):
        """``{state: n}`` over the journal (plus ``"stolen"`` re-claims)."""
        snapshot = self.snapshot() if snapshot is None else snapshot
        counts = {PENDING: 0, LEASED: 0, DONE: 0, ERROR: 0, QUARANTINED: 0, "stolen": 0}
        for entry in snapshot.values():
            counts[entry["status"]] += 1
            counts["stolen"] += max(0, entry["attempts"] - 1)
        return counts

    def drained(self, snapshot=None):
        """True when every task is terminal (done/error/quarantined)."""
        snapshot = self.snapshot() if snapshot is None else snapshot
        keys = self.keys()
        return bool(keys) and all(
            key in snapshot and snapshot[key]["status"] in TERMINAL for key in keys
        )

    def record_for(self, entry):
        """Rebuild the :class:`RunRecord` a terminal ``entry`` stores."""
        entry = parse_entry(entry, key=entry.get("key"))
        config = TrainConfig.from_dict(entry["config"])
        return record_from_dict(entry["record"], config=config)


def format_queue(queue, snapshot=None):
    """One-line human summary of a queue's state."""
    counts = queue.counts(snapshot)
    total = sum(counts[state] for state in (PENDING, LEASED, DONE, ERROR, QUARANTINED))
    return (
        f"queue {os.path.basename(queue.root)}: {total} task(s) — "
        f"{counts[DONE]} done, {counts[ERROR]} error, "
        f"{counts[QUARANTINED]} quarantined, {counts[LEASED]} leased, "
        f"{counts[PENDING]} pending, {counts['stolen']} stolen"
    )


# ----------------------------------------------------------------------
# Step-granular lease renewal
# ----------------------------------------------------------------------
#: Fraction of the lease timeout that may elapse before the next
#: renewal is attempted.  Half the timeout means a renewal can fail
#: once (slow filesystem, contended lock) and the worker still gets a
#: second chance before the lease becomes stealable.
RENEW_FRACTION = 0.5


class StepLeaseRenewal(Callback):
    """Renew a task's lease from inside the trainer's step loop.

    Attached by :func:`worker_loop` to every run it executes: the
    trainer invokes :meth:`on_step_end` after each optimizer step, and
    whenever more than ``fraction`` of the lease timeout has elapsed
    since the last renewal the callback extends the lease (and beats
    the worker's heartbeat).  This is what lets a queue run a *short*
    lease timeout — fast steals when a worker truly dies — without
    stealing from a ``full``-profile run whose single task outlives
    the timeout many times over: liveness is proven per step, not per
    task.

    If a renewal comes back refused the lease was stolen (the worker
    stalled past the timeout for longer than a step — swapping, paused
    in a debugger, a filesystem brown-out).  The callback then requests
    a stop: the thief is already re-running the task, this worker's
    result would be discarded by :meth:`TaskQueue.resolve` anyway, and
    every further step is wasted work.

    The between-steps check is two clock reads when no renewal is due,
    so even smoke-profile runs (hundreds of steps/second) pay nothing
    measurable.
    """

    def __init__(self, queue, key, worker, fraction=RENEW_FRACTION, heartbeat=None,
                 clock=time.time):
        self.queue = queue
        self.key = key
        self.worker = worker
        self.fraction = fraction
        self.heartbeat = heartbeat
        self.clock = clock
        self.lease_timeout = queue.meta["lease_timeout"]
        self.renewed_at = clock()
        self.renewals = 0
        self.lost = False

    def due(self):
        return self.clock() - self.renewed_at >= self.fraction * self.lease_timeout

    def on_step_end(self, trainer, step):
        if self.heartbeat is not None:
            self.heartbeat.beat("running", queue=self.queue.root, key=self.key)
        if self.lost or not self.due():
            return
        if self.queue.renew(self.key, self.worker):
            self.renewed_at = self.clock()
            # Refresh the timeout: an operator may have shortened it on
            # the live queue (the documented recovery path), and renewal
            # cadence must follow the setting actually in force.
            self.lease_timeout = self.queue.meta["lease_timeout"]
            self.renewals += 1
        else:
            self.lost = True
            if trainer is not None:
                trainer.stop_requested = True


# ----------------------------------------------------------------------
# Worker loop
# ----------------------------------------------------------------------
def _worker_log(queue, worker):
    """Append-only per-worker log file inside the queue directory.

    The logs ride the shared filesystem next to the journal, so a
    multi-machine sweep's post-mortem (who leased what, what was
    stolen) is one directory listing away; CI uploads them as the
    fault-injection artifact.
    """
    log_dir = os.path.join(queue.root, "logs")
    os.makedirs(log_dir, exist_ok=True)
    safe = "".join(c if c.isalnum() or c in "._-" else "_" for c in worker)
    path = os.path.join(log_dir, safe + ".log")
    fh = open(path, "a", buffering=1)

    def log(message):
        fh.write(f"{time.strftime('%H:%M:%S')} [{worker}] {message}\n")

    return fh, log


def run_claimed_task(queue, entry, worker, callback_factory=None, heartbeat=None, log=None):
    """Execute one claimed ``entry`` and resolve it; returns the record.

    The single task-execution step shared by :func:`worker_loop` and
    the fleet's multi-queue workers (:mod:`repro.service.supervisor`):
    attach a :class:`StepLeaseRenewal` so the lease is kept alive from
    inside the trainer's step loop, run through ``execute_record``
    (crash contained), and resolve under lease ownership — a stale
    worker's result is discarded, never double-written.
    """
    key = entry["key"]
    config = TrainConfig.from_dict(entry["config"])
    renewal = StepLeaseRenewal(queue, key, worker, heartbeat=heartbeat)
    record = execute_record(
        config,
        cache_dir=queue.cache_dir,
        force=entry["force"],
        callback_factory=callback_factory,
        extra_callbacks=(renewal,),
    )
    resolved = queue.resolve(key, worker, record)
    if log is not None:
        renewed = f" ({renewal.renewals} renewal(s))" if renewal.renewals else ""
        if resolved:
            log(f"{record.status} {key} in {record.seconds:.2f}s{renewed}")
        else:
            log(f"lease lost on {key}; discarding result{renewed}")
    return record if resolved else None


def worker_loop(
    root,
    worker=None,
    callback_factory=None,
    poll=0.5,
    wait=True,
    max_tasks=None,
    on_record=None,
    heartbeat=None,
):
    """Drain tasks from the queue at ``root``; returns tasks executed.

    The work-stealing loop: claim the first runnable task (pending, or
    leased with an expired lease), execute it against the shared run
    cache, record the outcome, repeat.  With ``wait=True`` (the
    default) the worker naps ``poll`` seconds whenever nothing is
    runnable and exits once the queue is drained — so a fleet of
    workers started at different times, on different machines, all
    finish together.  ``wait=False`` exits at the first idle scan
    (batch-queue style).  ``max_tasks`` caps this worker's share.

    Every run executes with a :class:`StepLeaseRenewal` attached, so
    the lease is renewed between optimizer steps rather than only
    between tasks — a task longer than the lease timeout is safe as
    long as individual steps are shorter than it.  Each run still
    re-resolves its lease before being recorded: a worker that stalled
    past its lease timeout discards its result (the task was stolen;
    the thief's deterministic re-run produced the same thing) instead
    of double-writing.  ``heartbeat`` (a
    :class:`repro.service.heartbeat.Heartbeat`, optional) is beaten on
    every claim/finish/idle transition and between steps, which is
    what ``queue-status`` derives per-worker liveness from.
    """
    queue = TaskQueue(root)
    worker = worker or worker_identity()
    fh, log = _worker_log(queue, worker)
    executed = 0
    log(f"worker start (root={queue.root})")
    try:
        while True:
            entry = queue.claim(worker)
            if entry is None:
                if queue.drained():
                    log("queue drained; exiting")
                    break
                if not wait:
                    log("nothing runnable; exiting (wait=False)")
                    break
                if heartbeat is not None:
                    heartbeat.beat("idle", queue=queue.root)
                time.sleep(poll)
                continue
            key = entry["key"]
            stolen = " (stolen)" if entry["attempts"] > 1 else ""
            log(f"claimed {key} attempt={entry['attempts']}{stolen}")
            if heartbeat is not None:
                heartbeat.beat("running", queue=queue.root, key=key, force=True)
            record = run_claimed_task(
                queue, entry, worker,
                callback_factory=callback_factory, heartbeat=heartbeat, log=log,
            )
            if record is not None and on_record is not None:
                on_record(record)
            executed += 1
            if heartbeat is not None:
                heartbeat.tasks_done += 1
                heartbeat.beat("idle", queue=queue.root, force=True)
            if max_tasks is not None and executed >= max_tasks:
                log(f"max_tasks={max_tasks} reached; exiting")
                break
    finally:
        fh.close()
    return executed


def _worker_main(task):
    """Process entry point for locally spawned workers (picklable)."""
    root, worker, callback_factory, poll = task
    return worker_loop(root, worker=worker, callback_factory=callback_factory, poll=poll)
