"""Parallel experiment sweep engine.

Every table and figure in the reproduction is a grid of independent
:class:`~repro.experiments.config.TrainConfig` runs, already memoized
under the run cache.  This module executes such grids across a
``multiprocessing`` worker pool:

* **Lock-safe caching** — workers share the on-disk run cache; the
  runner's write-to-temp-then-rename stores plus per-key inter-process
  locks mean concurrent workers never corrupt or duplicate an entry.
* **Bit-identical results** — runs are seeded entirely from their
  config (data split, init, shuffling), so a parallel sweep produces
  exactly the same run keys, weights and metrics as a serial one.
* **Structured reporting** — each run yields a :class:`RunRecord`
  (status, wall-clock, cache hit, metrics) aggregated into a
  :class:`SweepReport`; a worker crash is contained as an ``error``
  record instead of taking down the sweep.

Workers default to serial execution so unit tests and small grids stay
deterministic and fork-free; opt in with ``workers=N`` or the
``REPRO_WORKERS`` environment variable.  The ``python -m
repro.experiments sweep`` CLI verb exposes the engine directly.
"""

import os
import time
from dataclasses import dataclass, field
from multiprocessing import get_context

from ..tensor import dtype_name
from .reporting import format_table
from .runner import _DEFAULT_CACHE, default_cache_dir, run_training

#: Environment variable naming the default worker count.
WORKERS_ENV = "REPRO_WORKERS"


def resolve_workers(workers=None):
    """Resolve a worker count: explicit arg > ``REPRO_WORKERS`` > 1."""
    if workers is None:
        env = os.environ.get(WORKERS_ENV)
        if not env:
            return 1
        try:
            workers = int(env)
        except ValueError:
            raise ValueError(
                f"{WORKERS_ENV} must be an integer, got {env!r}"
            ) from None
    return max(1, int(workers))


@dataclass
class RunRecord:
    """Outcome of one sweep run (lightweight — no model weights)."""

    key: str
    config: object
    status: str  # "ok" | "error"
    from_cache: bool = False
    seconds: float = 0.0
    train_acc: float = None
    test_acc: float = None
    error: str = None
    pid: int = 0

    @property
    def ok(self):
        return self.status == "ok"


@dataclass
class SweepReport:
    """Aggregate result of :func:`run_sweep`."""

    records: list = field(default_factory=list)
    workers: int = 1
    wall_seconds: float = 0.0
    cache_dir: str = None
    deduped: int = 0  #: configs dropped because their run key repeated

    @property
    def n_ok(self):
        return sum(1 for r in self.records if r.ok)

    @property
    def n_errors(self):
        return sum(1 for r in self.records if not r.ok)

    @property
    def cache_hits(self):
        return sum(1 for r in self.records if r.ok and r.from_cache)

    @property
    def cache_hit_rate(self):
        return self.cache_hits / len(self.records) if self.records else 0.0

    def to_dict(self):
        """JSON-safe summary (what ``--json`` dumps)."""
        return {
            "workers": self.workers,
            "wall_seconds": self.wall_seconds,
            "cache_dir": self.cache_dir,
            "deduped": self.deduped,
            "n_ok": self.n_ok,
            "n_errors": self.n_errors,
            "cache_hits": self.cache_hits,
            "runs": [
                {
                    "key": r.key,
                    "config": r.config.to_dict(),
                    "status": r.status,
                    "from_cache": r.from_cache,
                    "seconds": r.seconds,
                    "train_acc": r.train_acc,
                    "test_acc": r.test_acc,
                    "error": r.error,
                }
                for r in self.records
            ],
        }


def _execute_task(task):
    """Worker entry point: run one config, contain any crash.

    Must stay a module-level function so it pickles under the ``spawn``
    start method.  ``task`` is ``(config, cache_dir, force,
    callback_factory)``; the factory (if any) is called *inside* the
    worker so unpicklable callback state never crosses the process
    boundary.
    """
    config, cache_dir, force, callback_factory = task
    start = time.perf_counter()
    try:
        callbacks = callback_factory(config) if callback_factory is not None else ()
        result = run_training(
            config, callbacks=callbacks, cache_dir=cache_dir, force=force
        )
        return RunRecord(
            key=config.cache_key(),
            config=config,
            status="ok",
            from_cache=result.from_cache,
            seconds=time.perf_counter() - start,
            train_acc=result.train_acc,
            test_acc=result.test_acc,
            pid=os.getpid(),
        )
    except Exception as exc:
        return RunRecord(
            key=config.cache_key(),
            config=config,
            status="error",
            seconds=time.perf_counter() - start,
            error=f"{type(exc).__name__}: {exc}",
            pid=os.getpid(),
        )


def run_sweep(
    configs,
    workers=None,
    cache_dir=_DEFAULT_CACHE,
    force=False,
    callback_factory=None,
    mp_context="spawn",
    progress=None,
):
    """Execute every config in ``configs``; returns a :class:`SweepReport`.

    Configs whose run key repeats are deduplicated (the cache would
    serve the duplicate anyway).  With ``workers > 1`` the unique
    configs are distributed over a ``multiprocessing`` pool; results
    land in the shared run cache and the per-run metrics come back as
    :class:`RunRecord` entries, in the order of first appearance.

    ``callback_factory`` (optional, picklable, called as
    ``factory(config)`` inside each worker) builds per-run training
    callbacks — e.g. Fig. 2's Hessian-norm probe.  ``progress`` is an
    optional callable receiving each finished :class:`RunRecord`.
    """
    # Pin each config's engine dtype to the parent's resolved policy
    # before dispatch: workers re-resolve ``dtype=None`` against *their*
    # environment, which may disagree with a parent that changed the
    # policy programmatically — and then cache keys would diverge.
    configs = [
        config if config.dtype else config.with_overrides(dtype=dtype_name(None))
        for config in configs
    ]
    workers = resolve_workers(workers)
    if cache_dir is _DEFAULT_CACHE:
        cache_dir = default_cache_dir()
    if workers > 1 and not cache_dir:
        raise ValueError(
            "parallel sweeps need a cache_dir: workers return metrics only "
            "and the trained weights are published through the run cache"
        )

    unique, seen = [], set()
    for config in configs:
        key = config.cache_key()
        if key not in seen:
            seen.add(key)
            unique.append(config)
    tasks = [(config, cache_dir, force, callback_factory) for config in unique]

    start = time.perf_counter()
    records = []
    if workers <= 1 or len(tasks) <= 1:
        for task in tasks:
            record = _execute_task(task)
            records.append(record)
            if progress is not None:
                progress(record)
    else:
        ctx = get_context(mp_context)
        with ctx.Pool(processes=min(workers, len(tasks))) as pool:
            for record in pool.imap(_execute_task, tasks):
                records.append(record)
                if progress is not None:
                    progress(record)
    return SweepReport(
        records=records,
        workers=workers,
        wall_seconds=time.perf_counter() - start,
        cache_dir=cache_dir if cache_dir else None,
        deduped=len(configs) - len(unique),
    )


def warm_cache(configs, workers=None, cache_dir=None, force=False, callback_factory=None):
    """Pre-populate the run cache in parallel; no-op when serial.

    The table/figure drivers call this before assembling their results:
    with ``workers > 1`` every grid cell trains concurrently and the
    driver's subsequent ``run_training`` calls become cache hits; with
    the default serial worker count the drivers behave exactly as
    before (train lazily, in order), keeping tier-1 runs deterministic.
    Returns the :class:`SweepReport`, or ``None`` on the serial path.
    """
    workers = resolve_workers(workers)
    if workers <= 1:
        return None
    return run_sweep(
        configs,
        workers=workers,
        cache_dir=cache_dir if cache_dir is not None else default_cache_dir(),
        force=force,
        callback_factory=callback_factory,
    )


def warm_for(configs, runner_kwargs, workers=None, cache_dir=None, callback_factory=None):
    """Warm the cache on behalf of a table/figure driver.

    Wraps :func:`warm_cache` with the contract every driver needs:
    when a parallel warm pass ran, the driver's ``force`` flag is
    cleared in ``runner_kwargs`` (mutated in place) so its subsequent
    ``run_training`` calls read the freshly written cache instead of
    force-retraining serially.  Returns the :class:`SweepReport`, or
    ``None`` on the serial no-op path.
    """
    report = warm_cache(
        configs,
        workers=workers,
        cache_dir=cache_dir,
        force=runner_kwargs.get("force", False),
        callback_factory=callback_factory,
    )
    if report is not None:
        runner_kwargs["force"] = False
    return report


def format_sweep(report, limit=None):
    """Render a sweep report as a text table plus a summary line."""
    headers = ["Key", "Model", "Dataset", "Method", "Seed", "Status", "Time", "Test acc"]
    rows = []
    for record in report.records[: limit if limit else len(report.records)]:
        config = record.config
        status = "hit" if record.ok and record.from_cache else record.status
        rows.append(
            [
                record.key,
                config.model,
                config.dataset,
                config.method,
                str(config.seed),
                status,
                f"{record.seconds:.1f}s",
                record.test_acc if record.test_acc is not None else "-",
            ]
        )
    table = format_table(headers, rows, title="Sweep runs")
    summary = (
        f"{len(report.records)} runs on {report.workers} worker(s) in "
        f"{report.wall_seconds:.1f}s — {report.cache_hits} cache hit(s), "
        f"{report.n_errors} error(s)"
        + (f", {report.deduped} duplicate config(s) collapsed" if report.deduped else "")
    )
    lines = [table]
    for record in report.records:
        if not record.ok:
            lines.append(f"  error [{record.key}]: {record.error}")
    lines.append("")
    lines.append(summary)
    return "\n".join(lines)
