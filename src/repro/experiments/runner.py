"""Deterministic experiment runner with on-disk memoization.

``run_training(config)`` trains a model exactly as the config says and
returns a :class:`RunResult`; results are cached under
``.cache/runs/<key>`` so that e.g. the Fig. 1 bench reuses the models
trained for Table 1 instead of retraining them.
"""

import json
import os
import time
from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from .. import nn, optim
from ..core import make_trainer
from ..core.metrics import History
from ..data import DataLoader, corrupt_dataset, make_dataset, standard_augment
from ..data.pipeline import dataset_cache_dir
from ..io import DirectoryCache
from ..models import create_model
from ..tensor import Tensor, dtype_context, no_grad
from .config import TrainConfig
from .reporting import RunRecord


def default_cache_dir():
    """Resolve the run-cache directory.

    ``REPRO_CACHE_DIR`` wins when set; otherwise the cache lives in
    ``.cache/runs`` under the repository root.  Always returns a
    normalized absolute path so forked/spawned workers and the parent
    agree on the location regardless of their working directory.
    """
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return os.path.abspath(os.path.expanduser(env))
    root = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", "..", ".."))
    return os.path.join(root, ".cache", "runs")


#: Import-time snapshot kept for backwards compatibility; prefer
#: :func:`default_cache_dir`, which re-reads the environment.
DEFAULT_CACHE_DIR = default_cache_dir()

#: Sentinel distinguishing "use the default cache" from "no cache" (None).
_DEFAULT_CACHE = object()


@dataclass
class RunResult:
    """Everything a table/figure needs from one training run."""

    config: TrainConfig
    model: object
    history: History
    train_acc: float
    test_acc: float
    from_cache: bool = False
    extras: dict = field(default_factory=dict)

    @property
    def generalization_gap(self):
        """``train_acc - test_acc`` (Fig. 2b's quantity)."""
        return self.train_acc - self.test_acc


#: Size of the in-process synthetic-dataset memo (entries are a few MB
#: each; a sweep worker typically cycles through 1-3 dataset profiles).
_DATASET_CACHE_SIZE = 8


@lru_cache(maxsize=_DATASET_CACHE_SIZE)
def _cached_make_dataset(profile, train_size, test_size, dtype, dataset_cache):
    """Bounded per-process memo over synthetic dataset generation.

    Keyed by ``(profile, sizes, engine dtype, dataset-cache dir)`` —
    the dtype is part of the key because dataset arrays are produced in
    the engine dtype, so a float64 run must not reuse a float32
    worker's arrays (generation runs under ``dtype_context(dtype)`` so
    key and arrays always agree).  ``dataset_cache`` (a directory or
    ``None``) routes generation through the on-disk dataset cache: a
    warm entry is memory-mapped, so concurrent sweep workers share one
    copy of the arrays instead of regenerating them.  Generation is
    deterministic per key, and callers treat the returned datasets as
    read-only (label noise copies targets, augmentation copies
    batches), so sharing one instance across runs is safe.
    """
    with dtype_context(dtype):
        return make_dataset(
            profile, train_size=train_size, test_size=test_size, cache_dir=dataset_cache
        )


def clear_dataset_cache():
    """Drop the in-process synthetic-dataset memo (mainly for tests)."""
    _cached_make_dataset.cache_clear()


def load_experiment_data(config, dataset_cache=None):
    """Datasets for a config: ``(train, test, spec)``, label noise applied.

    Repeated calls for the same ``(dataset, sizes, dtype)`` — e.g. the
    many grid cells a sweep worker processes — reuse one memoized
    generation instead of regenerating identical arrays.  The data is
    produced in the config's resolved dtype (not the ambient policy),
    so a driver evaluating a ``dtype='float64'`` run from a float32
    process sees exactly the arrays the run trained on.  The
    label-noise corruption stays outside the memo (it depends on the
    run seed) and shares the memoized input arrays.

    ``dataset_cache`` optionally names the on-disk dataset cache to
    load/publish the generated arrays through.  ``None`` (what the
    table/figure drivers pass) resolves exactly as the training path
    does for the default run cache — ``REPRO_DATASET_CACHE``, else the
    ``datasets/`` subdirectory of the default run-cache dir — so a
    driver's analysis phase shares one memo entry (and one on-disk
    entry) with the training runs instead of regenerating.
    """
    if dataset_cache is None:
        dataset_cache = dataset_cache_dir(default_cache_dir())
    train, test, spec = _cached_make_dataset(
        config.dataset,
        config.train_size,
        config.test_size,
        config.resolved_dtype(),
        dataset_cache,
    )
    if config.label_noise > 0:
        train, _mask = corrupt_dataset(
            train, config.label_noise, spec.num_classes, seed=config.seed + 17
        )
    return train, test, spec


def build_model(config, spec):
    """Instantiate the config's model for the dataset's shape."""
    return create_model(
        config.model,
        num_classes=spec.num_classes,
        in_channels=spec.channels,
        scale=config.model_scale,
        seed=config.seed,
        image_size=spec.image_size,
    )


def build_trainer(config, model, callbacks=()):
    """Optimizer + scheduler + method trainer per the config."""
    loss_fn = nn.CrossEntropyLoss()
    optimizer = optim.SGD(
        model.parameters(),
        lr=config.lr,
        momentum=config.momentum,
        weight_decay=config.weight_decay,
    )
    scheduler = optim.CosineAnnealingLR(optimizer, t_max=config.epochs)
    method_kwargs = {}
    if config.grad_clip is not None:
        method_kwargs["grad_clip"] = config.grad_clip
    if config.method == "hero":
        method_kwargs.update(
            h=config.h,
            gamma=config.gamma,
            penalty=config.penalty,
            perturbation=config.perturbation,
        )
    elif config.method == "first_order":
        method_kwargs.update(h=config.h, perturbation=config.perturbation)
    elif config.method == "grad_l1":
        method_kwargs.update(lambda_l1=config.lambda_l1)
    return make_trainer(
        config.method,
        model,
        loss_fn,
        optimizer,
        scheduler=scheduler,
        callbacks=callbacks,
        **method_kwargs,
    )


def evaluate_accuracy(model, dataset, batch_size=160):
    """Top-1 accuracy of ``model`` on ``dataset`` (eval mode)."""
    model.eval()
    correct = 0
    with no_grad():
        for start in range(0, len(dataset), batch_size):
            idx = np.arange(start, min(start + batch_size, len(dataset)))
            x, y = dataset[idx]
            logits = model(Tensor(x)).data
            correct += int((logits.argmax(axis=1) == y).sum())
    model.train()
    return correct / len(dataset)


def accuracy_eval_fn(dataset, batch_size=160):
    """Closure evaluating models on ``dataset`` (for PTQ sweeps)."""
    return lambda model: evaluate_accuracy(model, dataset, batch_size=batch_size)


def run_training(config, callbacks=(), cache_dir=_DEFAULT_CACHE, force=False, verbose=False):
    """Train (or load from cache) the run described by ``config``.

    The whole run — dataset generation, model init, training, eval —
    executes under the config's engine dtype
    (:meth:`TrainConfig.resolved_dtype`), so a single process can mix
    float32 and float64 runs and each lands in its own cache entry.

    Caching stores the final state dict, history and metrics; a cached
    run restores the exact trained weights, so downstream analysis
    (quantization sweeps, landscapes) is identical to a fresh run.
    Runs that attach callbacks producing per-epoch extras are cached
    too — the callback-computed columns live inside the history.

    The cache is safe under concurrent access: entries are written to a
    temp directory and atomically renamed into place while holding a
    per-key inter-process lock, so parallel sweep workers never observe
    (or produce) a torn ``.cache/runs/<key>`` entry.
    """
    with dtype_context(config.resolved_dtype()):
        return _run_training(
            config, callbacks=callbacks, cache_dir=cache_dir, force=force, verbose=verbose
        )


def _run_training(config, callbacks, cache_dir, force, verbose):
    if cache_dir is _DEFAULT_CACHE:
        cache_dir = default_cache_dir()
    train, test, spec = load_experiment_data(config, dataset_cache=dataset_cache_dir(cache_dir))
    model = build_model(config, spec)

    cache = DirectoryCache(cache_dir, _CACHE_FILES) if cache_dir else None
    if cache is not None and not force:
        cached = cache.fetch(config.cache_key(), _cache_load)
        if cached is not None:
            state, history, metrics = cached
            model.load_state_dict(state)
            return RunResult(
                config=config,
                model=model,
                history=history,
                train_acc=metrics["train_acc"],
                test_acc=metrics["test_acc"],
                from_cache=True,
            )

    trainer = build_trainer(config, model, callbacks=callbacks)
    transform = standard_augment() if config.augment else None
    train_loader = DataLoader(
        train,
        batch_size=config.batch_size,
        shuffle=True,
        transform=transform,
        seed=config.seed + 1,
    )
    test_loader = DataLoader(test, batch_size=160, shuffle=False, seed=config.seed + 2)
    history = trainer.fit(train_loader, config.epochs, test_loader=test_loader, verbose=verbose)

    train_acc = evaluate_accuracy(model, train)
    test_acc = evaluate_accuracy(model, test)
    result = RunResult(
        config=config,
        model=model,
        history=history,
        train_acc=train_acc,
        test_acc=test_acc,
    )
    if cache is not None:
        _cache_store(cache, config.cache_key(), model, history, train_acc, test_acc)
    return result


def execute_record(
    config, cache_dir=_DEFAULT_CACHE, force=False, callback_factory=None, extra_callbacks=()
):
    """Run one config and contain any crash as a :class:`RunRecord`.

    The single execution step shared by every sweep backend — the
    serial loop, the multiprocessing pool and the queued scheduler's
    work-stealing workers all drive the same code, which is what makes
    their results interchangeable.  ``callback_factory`` (if any) is
    called here, *inside* the executing process, so unpicklable
    callback state never crosses a process boundary.
    ``extra_callbacks`` are appended to the factory's callbacks —
    harness-owned hooks (the queue worker's lease-renewal heartbeat)
    that must ride every run regardless of what the experiment itself
    attaches.  They observe training only; the run's cache key and
    results are unaffected.  An exception anywhere in the run comes
    back as an ``error`` record instead of propagating.
    """
    start = time.perf_counter()
    try:
        callbacks = tuple(callback_factory(config)) if callback_factory is not None else ()
        callbacks += tuple(extra_callbacks)
        result = run_training(
            config, callbacks=callbacks, cache_dir=cache_dir, force=force
        )
        return RunRecord(
            key=config.cache_key(),
            config=config,
            status="ok",
            from_cache=result.from_cache,
            seconds=time.perf_counter() - start,
            train_acc=result.train_acc,
            test_acc=result.test_acc,
            pid=os.getpid(),
        )
    except Exception as exc:
        return RunRecord(
            key=config.cache_key(),
            config=config,
            status="error",
            seconds=time.perf_counter() - start,
            error=f"{type(exc).__name__}: {exc}",
            pid=os.getpid(),
        )


# ----------------------------------------------------------------------
# Cache plumbing (a DirectoryCache over the run-cache directory)
# ----------------------------------------------------------------------
#: Files that make up one complete cache entry.
_CACHE_FILES = ("state.npz", "history.json", "metrics.json")


def _cache_complete(path):
    return all(os.path.exists(os.path.join(path, name)) for name in _CACHE_FILES)


def _cache_store(cache, key, model, history, train_acc, test_acc):
    """Publish one run-cache entry atomically via :class:`DirectoryCache`.

    When two workers race to store the same key the last writer wins
    atomically — results are deterministic per config, so either copy
    is correct.
    """

    def build(tmp):
        np.savez(os.path.join(tmp, "state.npz"), **model.state_dict())
        with open(os.path.join(tmp, "history.json"), "w") as fh:
            json.dump(history.to_dict(), fh)
        with open(os.path.join(tmp, "metrics.json"), "w") as fh:
            json.dump({"train_acc": train_acc, "test_acc": test_acc}, fh)

    cache.publish(key, build)


def _cache_load(path):
    with np.load(os.path.join(path, "state.npz")) as archive:
        state = {name: archive[name] for name in archive.files}
    with open(os.path.join(path, "history.json")) as fh:
        columns = json.load(fh)
    history = History()
    if columns:
        length = max(len(col) for col in columns.values())
        for i in range(length):
            row = {
                key: col[i]
                for key, col in columns.items()
                if i < len(col) and col[i] is not None
            }
            history.log(**row)
    with open(os.path.join(path, "metrics.json")) as fh:
        metrics = json.load(fh)
    return state, history, metrics
