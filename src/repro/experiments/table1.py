"""Table 1 — test accuracy across models, datasets and methods.

Paper: HERO vs GRAD-L1 vs SGD on {ResNet20, MobileNetV2, VGG19BN} x
{CIFAR-10, CIFAR-100}, plus ResNet18 on ImageNet.  Here: the same
grid over the synthetic stand-ins (see DESIGN.md for the mapping).
The claim under test: HERO achieves the highest test accuracy in every
row, while GRAD-L1 is not consistently better than SGD.
"""

from .config import make_config
from .reporting import format_table
from .runner import run_training
from .sweep import warm_for

METHODS = ("hero", "grad_l1", "sgd")

ROWS = (
    ("cifar10_like", "ResNet20"),
    ("cifar10_like", "MobileNetV2"),
    ("cifar10_like", "VGG19BN"),
    ("cifar100_like", "ResNet20"),
    ("cifar100_like", "MobileNetV2"),
    ("cifar100_like", "VGG19BN"),
    ("imagenet_like", "ResNet18"),
)


def table1_configs(profile="fast", seed=0, rows=ROWS):
    """The table's grid as a sweep spec (one config per cell)."""
    return [
        make_config(model, dataset, method, profile=profile, seed=seed)
        for dataset, model in rows
        for method in METHODS
    ]


def run_table1(profile="fast", cache_dir=None, seed=0, rows=ROWS, workers=None, **runner_kwargs):
    """Train every (dataset, model, method) cell; return the table data.

    With ``workers > 1`` (or ``REPRO_WORKERS`` set) the grid trains in
    parallel through the sweep engine first; the assembly loop below
    then reads every cell from cache.

    Returns ``{"rows": [...], "profile": profile}`` where each row is a
    dict with the dataset, model and one test accuracy per method.
    """
    warm_for(
        table1_configs(profile=profile, seed=seed, rows=rows),
        runner_kwargs,
        workers=workers,
        cache_dir=cache_dir,
    )
    table_rows = []
    for dataset, model in rows:
        entry = {"dataset": dataset, "model": model}
        for method in METHODS:
            config = make_config(model, dataset, method, profile=profile, seed=seed)
            kwargs = dict(runner_kwargs)
            if cache_dir is not None:
                kwargs["cache_dir"] = cache_dir
            result = run_training(config, **kwargs)
            entry[method] = result.test_acc
            entry[f"{method}_train"] = result.train_acc
        table_rows.append(entry)
    return {"rows": table_rows, "profile": profile}


def check_table1(result):
    """Paper-shape assertions: HERO is the best method in each row.

    Returns a list of human-readable violations (empty = fully
    consistent with the paper's ordering).
    """
    violations = []
    for row in result["rows"]:
        best = max(METHODS, key=lambda m: row[m])
        if best != "hero":
            violations.append(
                f"{row['dataset']}/{row['model']}: best is {best} "
                f"({row[best]:.3f}) not hero ({row['hero']:.3f})"
            )
    return violations


def format_table1(result):
    """Render in the paper's layout."""
    headers = ["Dataset", "Model", "HERO", "GRAD L1", "SGD"]
    rows = [
        [row["dataset"], row["model"], row["hero"], row["grad_l1"], row["sgd"]]
        for row in result["rows"]
    ]
    return format_table(headers, rows, title="Table 1: Test accuracy (reproduction)")
