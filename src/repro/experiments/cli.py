"""Command-line interface for the experiment harness.

Usage::

    python -m repro.experiments table1 --profile fast
    python -m repro.experiments fig1 --profile smoke --json out/fig1.json
    python -m repro.experiments all --profile fast --output-dir results/

Each artifact prints its rendered table/figure and the paper-shape
check result; ``--json`` additionally dumps the raw numbers.
"""

import argparse
import sys

from . import (
    check_fig1,
    check_fig2,
    check_fig3,
    check_table1,
    check_table2,
    check_table3,
    format_ablation,
    format_fig1,
    format_fig2,
    format_fig3,
    format_table1,
    format_table2,
    format_table3,
    run_fig1,
    run_fig2,
    run_fig3,
    run_gamma_grid,
    run_h_sensitivity,
    run_penalty_ablation,
    run_perturbation_ablation,
    run_qat_motivation,
    check_qat_motivation,
    format_qat_motivation,
    run_regularizer_ablation,
    run_table1,
    run_table2,
    run_table3,
    save_json,
)


def _ablations(profile, cache_dir, **kwargs):
    results = [
        run_perturbation_ablation(profile=profile, cache_dir=cache_dir),
        run_penalty_ablation(profile=profile, cache_dir=cache_dir),
        run_h_sensitivity(profile=profile, cache_dir=cache_dir),
        run_gamma_grid(profile=profile, cache_dir=cache_dir),
        run_regularizer_ablation(profile=profile, cache_dir=cache_dir),
    ]
    return {"ablations": results}


def _format_ablations(result):
    return "\n\n".join(format_ablation(r) for r in result["ablations"])


ARTIFACTS = {
    "table1": (run_table1, format_table1, check_table1),
    "table2": (run_table2, format_table2, check_table2),
    "table3": (run_table3, format_table3, check_table3),
    "fig1": (run_fig1, format_fig1, check_fig1),
    "fig2": (run_fig2, format_fig2, check_fig2),
    "fig3": (run_fig3, format_fig3, check_fig3),
    "ablations": (_ablations, _format_ablations, None),
    "qat": (run_qat_motivation, format_qat_motivation, check_qat_motivation),
}


def build_parser():
    """Construct the argparse CLI."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the HERO paper's tables and figures.",
    )
    parser.add_argument(
        "artifact",
        choices=sorted(ARTIFACTS) + ["all"],
        help="which paper artifact to regenerate",
    )
    parser.add_argument(
        "--profile",
        default="fast",
        choices=("smoke", "fast", "full"),
        help="execution scale (default: fast)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="experiment seed (default: 0)"
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="retrain instead of reusing cached runs",
    )
    parser.add_argument("--json", help="also dump raw results to this JSON path")
    return parser


def run_artifact(name, profile, seed=0, force=False, json_path=None, out=sys.stdout):
    """Run one artifact; returns the number of paper-shape violations."""
    run_fn, format_fn, check_fn = ARTIFACTS[name]
    kwargs = {"profile": profile}
    if name != "ablations":
        kwargs["seed"] = seed
        kwargs["force"] = force
    result = run_fn(**kwargs)
    print(format_fn(result), file=out)
    violations = check_fn(result) if check_fn else []
    if violations:
        print("\nDeviations vs the paper's claims:", file=out)
        for violation in violations:
            print(f"  - {violation}", file=out)
    elif check_fn:
        print("\nPaper-shape checks passed.", file=out)
    if json_path:
        save_json(result, json_path)
        print(f"\nraw results -> {json_path}", file=out)
    return len(violations)


def main(argv=None):
    """CLI entry point; returns a shell exit code."""
    args = build_parser().parse_args(argv)
    names = sorted(ARTIFACTS) if args.artifact == "all" else [args.artifact]
    total_violations = 0
    for name in names:
        if len(names) > 1:
            print(f"\n{'=' * 72}\n{name}\n{'=' * 72}")
        json_path = args.json if len(names) == 1 else None
        total_violations += run_artifact(
            name,
            args.profile,
            seed=args.seed,
            force=args.no_cache,
            json_path=json_path,
        )
    return 0 if total_violations == 0 else 1


if __name__ == "__main__":
    sys.exit(main())
