"""Command-line interface for the experiment harness.

Usage::

    python -m repro.experiments table1 --profile fast --workers 4
    python -m repro.experiments fig1 --profile smoke --json out/fig1.json
    python -m repro.experiments all --profile fast
    python -m repro.experiments sweep --profile smoke --workers 4
    python -m repro.experiments sweep --spec grid.json --json report.json
    python -m repro.experiments sweep --scheduler queue --workers 4
    python -m repro.experiments sweep --scheduler queue --workers 0   # submit to a fleet
    python -m repro.experiments worker --queue grid-1a2b3c4d5e6f
    python -m repro.experiments serve --workers 4
    python -m repro.experiments queue-status --json -
    python -m repro.experiments datagen --datasets cifar10_like --train-size 50000
    python -m repro.experiments datagen --train-size 1000000 --max-resident-mb 256
    python -m repro.experiments publish-artifact --paper-model ResNet20-fast \\
        --weight-bits 8 --act-bits 8
    python -m repro.experiments list-artifacts --json -
    python -m repro.experiments serve-model --artifact 1a2b3c4d5e6f7a8b --workers 2

Each artifact prints its rendered table/figure and the paper-shape
check result; ``--json`` additionally dumps the raw numbers.  The
``sweep`` verb executes an experiment grid directly through the
parallel sweep engine and reports per-run status, wall-clock and cache
hits; ``--scheduler queue`` routes it through the durable, resumable
work-stealing queue instead of the fixed pool.  The ``worker`` verb
joins such a queue from any process — any machine sharing the cache
directory — and drains tasks until the queue is empty (see
``docs/scheduler.md``).  The ``serve`` verb runs the long-lived fleet
supervisor (:mod:`repro.service`): a resident pool of multi-queue
workers that survives across sweeps, restarts workers that die and
quarantines poison configs; ``sweep --scheduler queue --workers 0``
submits a grid to such a fleet without spawning any processes of its
own.  ``queue-status`` prints (or with ``--json`` dumps) the fleet's
versioned health snapshot — built entirely from lock-free reads, safe
to run while workers are live (see ``docs/fleet.md``).  The serving
verbs (see ``docs/serving.md``) turn trained runs into durable
deployables: ``publish-artifact`` trains (or reuses) one configuration,
optionally folds BN and applies weight/activation PTQ, and publishes
the result into the content-addressed artifact store;
``list-artifacts`` enumerates it; ``serve-model`` runs the
micro-batched inference server over a published artifact.  The ``datagen`` verb pre-warms the on-disk
dataset cache that sweep workers memory-map — multi-shard datasets
stream straight into the staged entry (resumable after an interrupt,
~one shard resident per writer; see ``docs/data-pipeline.md`` and
``docs/memory-model.md``) and the per-shard generated/cached mix is
reported for each split.
"""

import argparse
import json
import os
import sys
import time

from . import (
    check_fig1,
    check_fig2,
    check_fig3,
    check_table1,
    check_table2,
    check_table3,
    format_ablation,
    format_fig1,
    format_fig2,
    format_fig3,
    format_table1,
    format_table2,
    format_table3,
    run_fig1,
    run_fig2,
    run_fig3,
    run_gamma_grid,
    run_h_sensitivity,
    run_penalty_ablation,
    run_perturbation_ablation,
    run_qat_motivation,
    check_qat_motivation,
    format_qat_motivation,
    run_regularizer_ablation,
    run_table1,
    run_table2,
    run_table3,
    save_json,
)
from ..data.pipeline import dataset_cache_dir, resolve_spec, warm_dataset
from ..tensor import set_default_dtype
from .ablations import ablation_configs
from .config import TrainConfig, make_grid
from .runner import default_cache_dir
from .sweep import (
    SCHEDULERS,
    WORKERS_ENV,
    format_sweep,
    resolve_workers,
    run_sweep,
    warm_cache,
)


def _ablations(profile, cache_dir=None, workers=None, **kwargs):
    # One combined warm pass so parallelism spans all four cached
    # ablation grids at once (the regularizer study trains inline).
    warm_cache(ablation_configs(profile=profile), workers=workers, cache_dir=cache_dir)
    results = [
        run_perturbation_ablation(profile=profile, cache_dir=cache_dir),
        run_penalty_ablation(profile=profile, cache_dir=cache_dir),
        run_h_sensitivity(profile=profile, cache_dir=cache_dir),
        run_gamma_grid(profile=profile, cache_dir=cache_dir),
        run_regularizer_ablation(profile=profile, cache_dir=cache_dir),
    ]
    return {"ablations": results}


def _format_ablations(result):
    return "\n\n".join(format_ablation(r) for r in result["ablations"])


ARTIFACTS = {
    "table1": (run_table1, format_table1, check_table1),
    "table2": (run_table2, format_table2, check_table2),
    "table3": (run_table3, format_table3, check_table3),
    "fig1": (run_fig1, format_fig1, check_fig1),
    "fig2": (run_fig2, format_fig2, check_fig2),
    "fig3": (run_fig3, format_fig3, check_fig3),
    "ablations": (_ablations, _format_ablations, None),
    "qat": (run_qat_motivation, format_qat_motivation, check_qat_motivation),
}

#: Default grid for the bare ``sweep`` verb: the fast table-2 models
#: crossed with the paper's three methods (6 runs).
SWEEP_DEFAULT_MODELS = "ResNet20-fast,MobileNetV2-fast"
SWEEP_DEFAULT_DATASETS = "cifar10_like"
SWEEP_DEFAULT_METHODS = "hero,grad_l1,sgd"


def build_parser():
    """Construct the argparse CLI."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the HERO paper's tables and figures.",
    )
    parser.add_argument(
        "artifact",
        choices=sorted(ARTIFACTS)
        + [
            "all",
            "sweep",
            "worker",
            "serve",
            "queue-status",
            "datagen",
            "publish-artifact",
            "list-artifacts",
            "serve-model",
        ],
        help="which paper artifact to regenerate, 'sweep' to run a grid "
        "directly, 'worker' to join a sweep queue as a work-stealing "
        "worker, 'serve' to run the long-lived fleet supervisor, "
        "'queue-status' to print the fleet health snapshot, "
        "'datagen' to pre-warm the dataset cache, 'publish-artifact' / "
        "'list-artifacts' to manage the model-artifact store, or "
        "'serve-model' to run the micro-batched inference server",
    )
    parser.add_argument(
        "--profile",
        default="fast",
        choices=("smoke", "fast", "full"),
        help="execution scale (default: fast)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="experiment seed (default: 0)"
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="retrain instead of reusing cached runs",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help=f"worker processes (default: ${WORKERS_ENV} or serial; "
        "the sweep verb defaults to a small pool)",
    )
    parser.add_argument(
        "--dtype",
        default=None,
        choices=("float32", "float64"),
        help="engine precision for every run in this invocation "
        "(default: the REPRO_DTYPE policy, float32)",
    )
    parser.add_argument(
        "--json",
        nargs="?",
        const="-",
        default=None,
        help="also dump raw results to this JSON path ('-' or no value: stdout)",
    )
    sweep_group = parser.add_argument_group("sweep grid (sweep verb only)")
    sweep_group.add_argument(
        "--models",
        default=SWEEP_DEFAULT_MODELS,
        help=f"comma-separated paper model names (default: {SWEEP_DEFAULT_MODELS})",
    )
    sweep_group.add_argument(
        "--datasets",
        default=SWEEP_DEFAULT_DATASETS,
        help=f"comma-separated datasets (default: {SWEEP_DEFAULT_DATASETS})",
    )
    sweep_group.add_argument(
        "--methods",
        default=SWEEP_DEFAULT_METHODS,
        help=f"comma-separated training methods (default: {SWEEP_DEFAULT_METHODS})",
    )
    sweep_group.add_argument(
        "--seeds",
        default=None,
        help="comma-separated seeds (default: --seed)",
    )
    sweep_group.add_argument(
        "--spec",
        default=None,
        help="JSON file with a list of TrainConfig dicts; overrides the grid flags",
    )
    sweep_group.add_argument(
        "--scheduler",
        default="pool",
        choices=SCHEDULERS,
        help="execution backend: the fixed multiprocessing pool, or the "
        "durable resumable work-stealing queue (default: pool)",
    )
    queue_group = parser.add_argument_group("queue scheduler (sweep/worker verbs)")
    queue_group.add_argument(
        "--queue",
        default=None,
        help="queue name (or directory) to use; sweep derives one from the "
        "grid by default, worker picks the only live queue when unambiguous, "
        "serve/queue-status restrict the fleet view to this queue",
    )
    queue_group.add_argument(
        "--lease-timeout",
        type=float,
        default=None,
        help="seconds before a dead worker's leased task may be stolen "
        "(set at queue creation; default: scheduler default)",
    )
    queue_group.add_argument(
        "--max-tasks",
        type=int,
        default=None,
        help="worker verb: exit after executing this many tasks",
    )
    queue_group.add_argument(
        "--no-wait",
        action="store_true",
        help="worker verb: exit at the first idle scan instead of waiting "
        "for the queue to drain",
    )
    fleet_group = parser.add_argument_group("fleet service (serve/queue-status verbs)")
    fleet_group.add_argument(
        "--poll",
        type=float,
        default=None,
        help="serve: seconds between supervision passes (default: 0.25)",
    )
    fleet_group.add_argument(
        "--heartbeat-interval",
        type=float,
        default=None,
        help="serve: seconds between worker heartbeat writes (default: 2)",
    )
    fleet_group.add_argument(
        "--until-drained",
        action="store_true",
        help="serve: exit once every queue is terminal instead of waiting "
        "for new sweeps (the CI drill mode)",
    )
    fleet_group.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        help="serve: hard wall-clock bound on the supervisor",
    )
    serving_group = parser.add_argument_group(
        "model serving (publish-artifact/list-artifacts/serve-model verbs)"
    )
    serving_group.add_argument(
        "--paper-model",
        default="ResNet20-fast",
        help="publish-artifact: paper model name to train/reuse "
        "(default: ResNet20-fast)",
    )
    serving_group.add_argument(
        "--dataset",
        default="cifar10_like",
        help="publish-artifact: dataset profile (default: cifar10_like)",
    )
    serving_group.add_argument(
        "--method",
        default="hero",
        help="publish-artifact: training method (default: hero)",
    )
    serving_group.add_argument(
        "--weight-bits",
        type=int,
        default=None,
        help="publish-artifact: uniform weight PTQ bit width (default: none)",
    )
    serving_group.add_argument(
        "--act-bits",
        type=int,
        default=None,
        help="publish-artifact: calibrated activation PTQ bit width "
        "(requires --weight-bits; default: none)",
    )
    serving_group.add_argument(
        "--bn-fold",
        action="store_true",
        help="publish-artifact: fold BatchNorm into convolutions first",
    )
    serving_group.add_argument(
        "--artifact",
        dest="artifact_key",
        default=None,
        help="serve-model: artifact key to serve (see list-artifacts)",
    )
    serving_group.add_argument(
        "--server-name",
        default=None,
        help="serve-model: server directory name (default: srv-<key prefix>)",
    )
    serving_group.add_argument(
        "--max-batch",
        type=int,
        default=8,
        help="serve-model: micro-batch size ceiling (default: 8)",
    )
    serving_group.add_argument(
        "--max-delay-ms",
        type=float,
        default=10.0,
        help="serve-model: latency budget before a partial batch flushes "
        "(default: 10ms)",
    )
    datagen_group = parser.add_argument_group("dataset generation (datagen/sweep verbs)")
    datagen_group.add_argument(
        "--train-size", type=int, default=None, help="override each profile's train size"
    )
    datagen_group.add_argument(
        "--test-size", type=int, default=None, help="override each profile's test size"
    )
    datagen_group.add_argument(
        "--shard-size",
        type=int,
        default=None,
        help="samples per generation shard (default: repro.data.pipeline default)",
    )
    datagen_group.add_argument(
        "--stream",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="stream shards straight into the staged cache entry "
        "(resumable, ~one shard resident per writer); --no-stream forces "
        "the eager in-RAM writer (default: stream any multi-shard dataset)",
    )
    datagen_group.add_argument(
        "--max-resident-mb",
        type=float,
        default=None,
        help="cap the streamed writer's in-flight shard memory (MB) by "
        "clamping how many workers may hold a shard at once",
    )
    return parser


def _csv(value):
    return [item.strip() for item in value.split(",") if item.strip()]


def sweep_configs_from_args(args):
    """Build the sweep's config list from ``--spec`` or the grid flags."""
    if args.spec:
        with open(args.spec) as fh:
            payload = json.load(fh)
        return [TrainConfig.from_dict(entry) for entry in payload]
    seeds = [int(s) for s in _csv(args.seeds)] if args.seeds else [args.seed]
    return make_grid(
        _csv(args.models),
        _csv(args.datasets),
        _csv(args.methods),
        seeds=seeds,
        profile=args.profile,
    )


def run_sweep_command(args, out=sys.stdout):
    """The ``sweep`` verb: execute a grid, print the report.

    Returns the number of failed runs (shell-exit-code shaped).
    """
    configs = sweep_configs_from_args(args)
    if args.workers is not None:
        workers = args.workers
    elif os.environ.get(WORKERS_ENV):
        workers = resolve_workers(None)
    else:
        workers = min(4, max(2, os.cpu_count() or 2))
    report = run_sweep(
        configs,
        workers=workers,
        force=args.no_cache,
        scheduler=args.scheduler,
        queue_name=args.queue,
        lease_timeout=args.lease_timeout,
        stream=args.stream,
        max_resident_mb=args.max_resident_mb,
    )
    print(format_sweep(report), file=out)
    if args.json:
        save_json(report.to_dict(), args.json)
        print(f"\nraw report -> {args.json}", file=out)
    return report.n_errors


def resolve_queue_root(name, cache_dir=None):
    """Resolve a ``--queue`` value (name, directory, or None) to a root.

    ``None`` is accepted only when exactly one queue exists under the
    cache — the common "I started one sweep, join it" case; anything
    ambiguous raises with the candidate names so the operator can pick.
    """
    from .scheduler import QUEUE_SUBDIR, queue_root

    cache_dir = cache_dir or default_cache_dir()
    if name:
        root = os.path.abspath(name) if os.path.isdir(name) else queue_root(cache_dir, name)
        if not os.path.exists(os.path.join(root, "meta.json")):
            raise SystemExit(f"no queue at {root}; start one with 'sweep --scheduler queue'")
        return root
    queues_dir = os.path.join(cache_dir, QUEUE_SUBDIR)
    candidates = sorted(
        entry
        for entry in (os.listdir(queues_dir) if os.path.isdir(queues_dir) else [])
        if os.path.exists(os.path.join(queues_dir, entry, "meta.json"))
    )
    if len(candidates) == 1:
        return os.path.join(queues_dir, candidates[0])
    if not candidates:
        raise SystemExit(f"no queues under {queues_dir}; start one with "
                         "'sweep --scheduler queue' or pass --queue")
    raise SystemExit(
        "multiple queues exist; pass --queue one of: " + ", ".join(candidates)
    )


def run_worker_command(args, out=sys.stdout):
    """The ``worker`` verb: drain tasks from a queue until it is empty.

    Any number of these can run concurrently — same machine or any
    other machine mounting the cache directory.  Returns 0 when the
    queue drained with no errors, 1 otherwise.
    """
    from .scheduler import TaskQueue, format_queue, worker_identity, worker_loop

    root = resolve_queue_root(args.queue)
    queue = TaskQueue(root)
    if args.lease_timeout is not None:
        # The documented recovery path: joining with an explicit (usually
        # shorter) lease timeout updates the live queue, so leases
        # orphaned by a dead sweep become stealable immediately.
        queue = TaskQueue.create(
            queue.cache_dir, os.path.basename(root), lease_timeout=args.lease_timeout
        )
    worker = worker_identity()
    print(f"worker {worker} joining {root}", file=out)
    executed = worker_loop(
        root,
        worker=worker,
        max_tasks=args.max_tasks,
        wait=not args.no_wait,
    )
    counts = queue.counts()
    print(f"worker {worker} executed {executed} task(s)", file=out)
    print(format_queue(queue), file=out)
    return 1 if counts["error"] else 0


def _fleet_queue_names(args):
    """``--queue`` as a fleet restriction (name or directory) or ``None``."""
    if not args.queue:
        return None
    return [os.path.basename(os.path.normpath(args.queue))]


def run_serve_command(args, out=sys.stdout):
    """The ``serve`` verb: run the long-lived fleet supervisor.

    Starts ``--workers`` resident multi-queue workers over every queue
    under the run cache (``--queue`` to restrict) and supervises them
    until interrupted: dead workers are restarted, erroring tasks are
    retried then quarantined, and the supervisor/heartbeat state files
    feed ``queue-status``.  ``--until-drained`` turns it into a
    bounded drill that exits once every queue is terminal.
    """
    from ..service import FleetSupervisor, build_status, format_status

    cache_dir = default_cache_dir()
    kwargs = {}
    if args.poll is not None:
        kwargs["poll"] = args.poll
    if args.heartbeat_interval is not None:
        kwargs["heartbeat_interval"] = args.heartbeat_interval
    supervisor = FleetSupervisor(
        cache_dir,
        workers=args.workers if args.workers is not None else 2,
        queues=_fleet_queue_names(args),
        **kwargs,
    )
    print(
        f"fleet supervisor: {supervisor.workers} worker(s) over {cache_dir}",
        file=out,
    )
    try:
        supervisor.serve(
            until_drained=args.until_drained, max_seconds=args.max_seconds
        )
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        pass
    print(format_status(build_status(cache_dir, queues=supervisor.queues)), file=out)
    return 0


def run_queue_status_command(args, out=sys.stdout):
    """The ``queue-status`` verb: print the fleet health snapshot.

    Assembled entirely from lock-free reads (journal snapshots,
    heartbeat files, the supervisor state file), so it is always safe
    to run against a live fleet.  ``--json [PATH]`` additionally dumps
    the versioned machine-readable document (``-``/no value: stdout).
    """
    from ..service import build_status, format_status

    status = build_status(default_cache_dir(), queues=_fleet_queue_names(args))
    print(format_status(status), file=out)
    if args.json:
        save_json(status, args.json)
        if args.json != "-":
            print(f"raw snapshot -> {args.json}", file=out)
    return 0


def _quant_summary(manifest):
    """One-line PTQ description of an artifact manifest."""
    parts = []
    if manifest.bn_folded:
        parts.append("bn-folded")
    wq = manifest.weight_quant
    if wq is not None:
        if wq.mode == "uniform":
            parts.append(f"w{wq.bits}")
        else:
            bits = sorted(set(wq.assignment.values()))
            parts.append("w-mixed[" + ",".join(str(b) for b in bits) + "]")
    if manifest.activation_quant is not None:
        parts.append(f"a{manifest.activation_quant.bits}")
    return "+".join(parts) if parts else "float"


def run_publish_artifact_command(args, out=sys.stdout):
    """The ``publish-artifact`` verb: train (or reuse) a run, publish it.

    Builds the configuration from the serving flags, trains it through
    the cached runner (a warm cache makes this instant), optionally
    folds BatchNorm and applies uniform weight PTQ — with calibrated
    activation PTQ when ``--act-bits`` is also given — then publishes
    the result into the content-addressed artifact store and prints the
    key ``serve-model`` needs.
    """
    from ..data import DataLoader
    from ..quant import QuantScheme, fold_batchnorms, quantize_model
    from ..quant import quantize_weights_and_activations
    from ..serving import model_spec, publish_artifact, uniform_weight_quant
    from .config import make_config
    from .runner import load_experiment_data, run_training

    if args.act_bits is not None and args.weight_bits is None:
        raise SystemExit("--act-bits requires --weight-bits")
    config = make_config(
        args.paper_model, args.dataset, args.method, profile=args.profile, seed=args.seed
    )
    print(
        f"training {args.paper_model} / {args.dataset} / {args.method} "
        f"({args.profile} profile)...",
        file=out,
    )
    result = run_training(config, force=args.no_cache)
    train, _test, spec = load_experiment_data(config)
    model = result.model
    if args.bn_fold:
        model, folded = fold_batchnorms(model)
        model.eval()
        print(f"folded {folded} conv+BN pair(s)", file=out)
    weight_quant = None
    if args.weight_bits is not None and args.act_bits is not None:
        loader = DataLoader(train, batch_size=config.batch_size, shuffle=False, seed=0)
        calibration = [next(iter(loader))]
        model = quantize_weights_and_activations(
            model, weight_bits=args.weight_bits, act_bits=args.act_bits,
            batches=calibration,
        )
        weight_quant = uniform_weight_quant(args.weight_bits)
    elif args.weight_bits is not None:
        model, _report = quantize_model(model, QuantScheme(bits=args.weight_bits))
        weight_quant = uniform_weight_quant(args.weight_bits)
    manifest = publish_artifact(
        model,
        model_spec(
            config.model,
            spec.num_classes,
            spec.channels,
            config.model_scale,
            spec.image_size,
        ),
        source=f"run:{config.cache_key()}",
        weight_quant=weight_quant,
        bn_folded=args.bn_fold,
    )
    print(
        f"published {manifest.key}: {manifest.model.name} "
        f"x{manifest.model.scale:g} ({_quant_summary(manifest)}, "
        f"{manifest.params} params, {manifest.dtype})",
        file=out,
    )
    print(f"serve it:  python -m repro.experiments serve-model "
          f"--artifact {manifest.key}", file=out)
    if args.json:
        save_json(manifest.to_dict(), args.json)
        print(f"manifest -> {args.json}", file=out)
    return 0


def run_list_artifacts_command(args, out=sys.stdout):
    """The ``list-artifacts`` verb: enumerate the artifact store."""
    from ..serving import artifact_cache, list_artifacts

    manifests = list_artifacts()
    if not manifests:
        print(
            f"no artifacts under {artifact_cache().root}; publish one with "
            "'publish-artifact'",
            file=out,
        )
        return 0
    print(f"{'key':16s}  {'model':20s}  {'quant':16s}  {'params':>9s}  dtype", file=out)
    for manifest in manifests:
        model = f"{manifest.model.name} x{manifest.model.scale:g}"
        print(
            f"{manifest.key:16s}  {model:20s}  {_quant_summary(manifest):16s}  "
            f"{manifest.params:9d}  {manifest.dtype}",
            file=out,
        )
    if args.json:
        save_json([manifest.to_dict() for manifest in manifests], args.json)
        if args.json != "-":
            print(f"manifests -> {args.json}", file=out)
    return 0


def run_serve_model_command(args, out=sys.stdout):
    """The ``serve-model`` verb: run the micro-batched inference server.

    Starts the batcher plus ``--workers`` model workers over a server
    directory any client (or machine sharing the cache) can drop
    requests into; serves until interrupted or ``--max-seconds``
    elapses, then prints the final stats snapshot.
    """
    from ..serving import InferenceServer

    if not args.artifact_key:
        raise SystemExit("serve-model requires --artifact KEY (see list-artifacts)")
    try:
        server = InferenceServer(
            args.artifact_key,
            name=args.server_name,
            workers=args.workers if args.workers is not None else 2,
            max_batch=args.max_batch,
            max_delay=args.max_delay_ms / 1000.0,
            lease_timeout=args.lease_timeout
            if args.lease_timeout is not None
            else 5.0,
        )
    except KeyError as exc:
        raise SystemExit(str(exc)) from exc
    print(
        f"serving {args.artifact_key} at {server.root} "
        f"(workers={server.workers}, max_batch={server.max_batch}, "
        f"max_delay={server.max_delay * 1000:g}ms)",
        file=out,
    )
    deadline = (
        time.monotonic() + args.max_seconds if args.max_seconds is not None else None
    )
    with server:
        try:
            while deadline is None or time.monotonic() < deadline:
                time.sleep(0.05)
        except KeyboardInterrupt:  # pragma: no cover - interactive stop
            pass
    stats = server.write_stats()
    print(
        f"served {stats.served_total} request(s) in {stats.batches_total} "
        f"batch(es); re-served {stats.re_served_total}",
        file=out,
    )
    if args.json:
        save_json(stats.to_dict(), args.json)
    return 0


def _datagen_eager_splits(spec, shard_size, hit):
    """Shard accounting for the eager writer (all-or-nothing per entry)."""
    from ..data import plan_shards

    splits = []
    for name, total in (("train", spec.train_size), ("test", spec.test_size)):
        shards = len(plan_shards(total, shard_size))
        splits.append(
            {
                "split": name,
                "shards": shards,
                "generated": [] if hit else list(range(shards)),
                "resumed": [],
                "cached": shards if hit else 0,
            }
        )
    return splits


def run_datagen_command(args, out=sys.stdout):
    """The ``datagen`` verb: pre-warm the on-disk dataset cache.

    Generates every ``--datasets`` profile at the requested sizes into
    the dataset cache the sweep workers will memory-map — streamed
    shard-by-shard for multi-shard datasets (``--stream``/``--no-stream``
    to override, ``--max-resident-mb`` to bound writer memory), eager
    otherwise.  Each dataset is reported at **shard granularity**:
    shards generated this run vs shards served from the cache (a
    resumed interrupt shows up as a mix).  Returns 0 on success (a warm
    entry counts as success); returns 1 when the dataset cache is
    disabled, since there is nothing to warm.
    """
    from ..data import should_stream, stream_dataset

    cache_dir = dataset_cache_dir(default_cache_dir())
    if not cache_dir:
        print(
            "dataset cache is disabled (REPRO_DATASET_CACHE=off); "
            "nothing to warm",
            file=out,
        )
        return 1
    workers = args.workers if args.workers is not None else resolve_workers(None)
    results = []
    for profile in _csv(args.datasets):
        spec = resolve_spec(profile, train_size=args.train_size, test_size=args.test_size)
        streamed = args.stream if args.stream is not None else should_stream(spec, args.shard_size)
        start = time.perf_counter()
        if streamed:
            report = stream_dataset(
                spec,
                cache_dir,
                workers=workers,
                shard_size=args.shard_size,
                max_resident_mb=args.max_resident_mb,
            )
            key, hit = report.key, report.hit
            resumed_only = not hit and report.n_generated == 0
            splits = report.to_dict()["splits"]
        else:
            key, hit = warm_dataset(
                spec, cache_dir, workers=workers, shard_size=args.shard_size, stream=False
            )
            resumed_only = False
            splits = _datagen_eager_splits(spec, args.shard_size, hit)
        seconds = time.perf_counter() - start
        results.append(
            {
                "profile": profile,
                "key": key,
                "hit": hit,
                "seconds": seconds,
                "streamed": streamed,
                "splits": splits,
            }
        )
        if hit:
            status = "cached"
        elif resumed_only:
            # every shard was journaled done; this run only committed
            status = f"resumed in {seconds:.2f}s"
        else:
            status = f"generated in {seconds:.2f}s"
        print(
            f"{profile}: {spec.train_size}+{spec.test_size} samples -> "
            f"{key} ({status})",
            file=out,
        )
        for split in splits:
            shards = split["shards"]
            parts = []
            if split["generated"]:
                parts.append(f"{len(split['generated'])} generated")
            if split["cached"]:
                parts.append(f"{split['cached']} cached")
            print(
                f"  {split['split']}: {shards} shard(s) — " + ", ".join(parts),
                file=out,
            )
    print(f"dataset cache: {cache_dir}", file=out)
    if args.json:
        save_json({"cache_dir": cache_dir, "datasets": results}, args.json)
        print(f"raw report -> {args.json}", file=out)
    return 0


def run_artifact(
    name, profile, seed=0, force=False, json_path=None, workers=None, out=sys.stdout
):
    """Run one artifact; returns the number of paper-shape violations."""
    run_fn, format_fn, check_fn = ARTIFACTS[name]
    kwargs = {"profile": profile, "workers": workers}
    if name != "ablations":
        kwargs["seed"] = seed
        kwargs["force"] = force
    result = run_fn(**kwargs)
    print(format_fn(result), file=out)
    violations = check_fn(result) if check_fn else []
    if violations:
        print("\nDeviations vs the paper's claims:", file=out)
        for violation in violations:
            print(f"  - {violation}", file=out)
    elif check_fn:
        print("\nPaper-shape checks passed.", file=out)
    if json_path:
        save_json(result, json_path)
        print(f"\nraw results -> {json_path}", file=out)
    return len(violations)


def main(argv=None):
    """CLI entry point; returns a shell exit code."""
    args = build_parser().parse_args(argv)
    if args.dtype:
        set_default_dtype(args.dtype)
    if args.artifact == "sweep":
        return 1 if run_sweep_command(args) else 0
    if args.artifact == "worker":
        return run_worker_command(args)
    if args.artifact == "serve":
        return run_serve_command(args)
    if args.artifact == "queue-status":
        return run_queue_status_command(args)
    if args.artifact == "datagen":
        return run_datagen_command(args)
    if args.artifact == "publish-artifact":
        return run_publish_artifact_command(args)
    if args.artifact == "list-artifacts":
        return run_list_artifacts_command(args)
    if args.artifact == "serve-model":
        return run_serve_model_command(args)
    names = sorted(ARTIFACTS) if args.artifact == "all" else [args.artifact]
    total_violations = 0
    for name in names:
        if len(names) > 1:
            print(f"\n{'=' * 72}\n{name}\n{'=' * 72}")
        json_path = args.json if len(names) == 1 else None
        total_violations += run_artifact(
            name,
            args.profile,
            seed=args.seed,
            force=args.no_cache,
            json_path=json_path,
            workers=args.workers,
        )
    return 0 if total_violations == 0 else 1


if __name__ == "__main__":
    sys.exit(main())
