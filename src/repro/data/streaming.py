"""Streaming shard writer: datasets flow to disk without a second RAM copy.

The eager pipeline (:mod:`repro.data.pipeline`) materializes a whole
dataset in RAM and then serializes it into the dataset cache — fine at
paper scale, memory-bound at the ROADMAP's million-sample scale.  This
module is the out-of-core path:

* **Pre-allocated memmaps** — the staged cache entry's ``.npy`` files
  are created up front (sparse, full final size) inside the
  :class:`~repro.io.DirectoryCache` staging directory, and generation
  workers write their **disjoint shard slices** directly into them.
  The dataset is never whole in any process's memory.
* **A per-shard completion journal** — one :class:`~repro.io.JsonJournal`
  record per shard (``pending → writing → done``) lives next to the
  staged arrays.  An interrupted ``datagen`` (Ctrl-C, SIGKILL, machine
  loss) resumes by regenerating **only the shards not journaled
  ``done``; shard streams are pure functions of ``(spec, split,
  shard)``, so a resumed entry is bit-identical to an uninterrupted
  one.
* **Atomic commit** — once every shard is ``done`` the bookkeeping is
  stripped and the staging directory is renamed over the live entry
  under the cache's per-key lock.  Readers only ever see a missing
  entry or a complete one.
* **Bounded residency** — after each shard the writer flushes and
  drops its mapped pages (:func:`evict`), so peak RSS stays near one
  shard per concurrent writer regardless of dataset size;
  ``max_resident_mb`` additionally caps how many writers may hold a
  shard in flight at once.

The written bytes are **bit-identical to the eager path** (same
per-shard generator streams, same arithmetic, pinned by the generator
golden hashes), so streamed and in-RAM entries share cache keys
interchangeably.  See ``docs/memory-model.md`` for the full memory
model, including the read side (the out-of-core
:class:`~repro.data.dataset.DataLoader` mode).
"""

import contextlib
import json
import mmap
import os
import shutil
import time
from dataclasses import asdict, dataclass, field
from multiprocessing import get_context

import numpy as np
from numpy.lib.format import open_memmap

from ..io import JsonJournal, atomic_write_json, file_lock
from ..messages import MessageError, ShardRecordV1
from ..messages import parse as parse_message
from ..tensor import default_dtype, dtype_context, dtype_name
from .pipeline import (
    TEST_SPLIT,
    TRAIN_SPLIT,
    _prototype_table,
    _resolve_shard_size,
    _sample_images_fast,
    _shard_rng,
    dataset_cache,
    dataset_cache_key,
    plan_shards,
    resolve_workers,
    split_generator_id,
)
from .synthetic import _class_prototypes, _generate_split

#: Shard journal states (the durable-task vocabulary shared with the
#: sweep scheduler's queue journal — see ``docs/memory-model.md``).
SHARD_PENDING, SHARD_WRITING, SHARD_DONE = "pending", "writing", "done"

#: Journal directory and staging descriptor inside a staged entry.
#: Dot-named so they can never collide with manifest files.
SHARD_JOURNAL_DIR = ".shards"
STAGING_META = ".staging-meta.json"

#: Version of the staging layout; a mismatch wipes the staging dir.
STAGING_VERSION = 1

#: ``(file prefix, per-split RNG offset)`` for the two splits.
SPLITS = (("train", TRAIN_SPLIT), ("test", TEST_SPLIT))


def shard_nbytes(spec, shard_size=None):
    """Bytes one full input shard occupies in the engine dtype."""
    shard_size = _resolve_shard_size(shard_size)
    features = spec.channels * spec.image_size * spec.image_size
    return shard_size * features * default_dtype().itemsize


def evict(array):
    """Flush and drop the resident pages behind a memmap-backed array.

    Walks ``array``'s base chain to the underlying :class:`numpy.memmap`
    (if any), ``msync``\\ s dirty pages to disk and advises the kernel
    the mapping is no longer needed (``MADV_DONTNEED``), so the pages
    stop counting against this process's RSS.  The data stays valid —
    a later access simply rereads from the page cache or disk.  Returns
    True when a mapping was evicted, False for plain in-RAM arrays.
    """
    base = array
    while base is not None and not isinstance(base, np.memmap):
        base = getattr(base, "base", None)
    if base is None:
        return False
    base.flush()
    mapping = getattr(base, "_mmap", None)
    if mapping is not None and hasattr(mapping, "madvise"):
        with contextlib.suppress(OSError, ValueError):
            mapping.madvise(mmap.MADV_DONTNEED)
    return True


def shard_key(split, index):
    """Journal key of one shard (``train-00003``)."""
    return f"{split}-{index:05d}"


def shard_journal(staging):
    """The per-shard :class:`~repro.io.JsonJournal` of a staged entry."""
    return JsonJournal(os.path.join(staging, SHARD_JOURNAL_DIR))


@dataclass
class SplitShards:
    """Per-split shard accounting of one :func:`stream_dataset` call."""

    split: str
    shards: int  #: total shards in the split's layout
    generated: list = field(default_factory=list)  #: indices written this call
    resumed: list = field(default_factory=list)  #: indices already journaled done

    @property
    def cached(self):
        """Shards served without generation (resumed or whole-entry hit)."""
        return self.shards - len(self.generated)


@dataclass
class StreamReport:
    """What :func:`stream_dataset` did, at shard granularity."""

    key: str
    path: str
    shard_size: int
    hit: bool = False  #: entry was already complete; nothing was staged
    splits: list = field(default_factory=list)
    seconds: float = 0.0
    workers: int = 1

    @property
    def total_shards(self):
        return sum(split.shards for split in self.splits)

    @property
    def n_generated(self):
        return sum(len(split.generated) for split in self.splits)

    @property
    def n_resumed(self):
        return sum(len(split.resumed) for split in self.splits)

    def to_dict(self):
        """JSON-safe summary (what the ``datagen`` CLI dumps)."""
        return {
            "key": self.key,
            "path": self.path,
            "shard_size": self.shard_size,
            "hit": self.hit,
            "seconds": self.seconds,
            "workers": self.workers,
            "splits": [
                {
                    "split": split.split,
                    "shards": split.shards,
                    "generated": list(split.generated),
                    "resumed": list(split.resumed),
                    "cached": split.cached,
                }
                for split in self.splits
            ],
        }


# ----------------------------------------------------------------------
# Staging layout
# ----------------------------------------------------------------------
def _staging_descriptor(spec, shard_size):
    """The descriptor a resumable staging dir must match exactly."""
    return {
        "version": STAGING_VERSION,
        "spec": asdict(spec),
        "dtype": dtype_name(None),
        "shard_size": shard_size,
        "generators": {
            name: split_generator_id(total, shard_size)
            for name, total in (("train", spec.train_size), ("test", spec.test_size))
        },
    }


def _read_staging_descriptor(staging):
    try:
        with open(os.path.join(staging, STAGING_META)) as fh:
            return json.load(fh)
    except (FileNotFoundError, json.JSONDecodeError):
        return None


def _split_totals(spec):
    return {"train": spec.train_size, "test": spec.test_size}


def _allocate_staging(cache, key, spec, shard_size):
    """Create (or validate and reuse) the staged memmap layout for ``key``.

    The descriptor is written *after* the arrays are allocated, so its
    presence certifies a complete layout: a process killed mid-allocation
    leaves no descriptor and the next attempt wipes and restarts.  A
    descriptor for a different spec/dtype/shard layout also wipes — the
    staging dir can never be resumed into the wrong entry.
    """
    staging = cache.staging_path(key)
    descriptor = _staging_descriptor(spec, shard_size)
    if _read_staging_descriptor(staging) == descriptor:
        return staging, True
    cache.discard_staging(key)
    os.makedirs(staging)
    size = spec.image_size
    for name, total in _split_totals(spec).items():
        inputs = open_memmap(
            os.path.join(staging, f"{name}_inputs.npy"),
            mode="w+",
            dtype=default_dtype(),
            shape=(total, spec.channels, size, size),
        )
        del inputs  # header written, file sized; pages stay untouched
        targets = open_memmap(
            os.path.join(staging, f"{name}_targets.npy"),
            mode="w+",
            dtype=np.int64,
            shape=(total,),
        )
        del targets
    atomic_write_json(os.path.join(staging, STAGING_META), descriptor)
    return staging, False


def _open_inputs(staging, split, mode="r+"):
    return open_memmap(os.path.join(staging, f"{split}_inputs.npy"), mode=mode)


def _open_targets(staging, split, mode="r+"):
    return open_memmap(os.path.join(staging, f"{split}_targets.npy"), mode=mode)


def _journal_transition(journal, key, status, *, split, index, start=None, stop=None):
    """Write one shard's state as a validated :class:`ShardRecordV1`.

    Every transition rewrites the full record (the previous state
    contributes nothing a caller doesn't re-supply), so an invalid
    shard record can never be journaled.
    """
    record = ShardRecordV1(
        shard=key,
        status=status,
        updated_at=time.time(),
        pid=os.getpid(),
        split=split,
        index=index,
        start=start,
        stop=stop,
    )
    return journal.update(key, lambda current: record.to_dict())


def _parse_shard_state(journal, staging):
    """The shard journal's snapshot, validated at the read boundary.

    A record the message layer rejects — foreign fields, a missing
    status, bytes from some future layout — aborts the resume with a
    typed error naming the shard, instead of silently regenerating (or
    worse, silently *skipping*) work.
    """
    state = {}
    for key, payload in journal.snapshot().items():
        try:
            state[key] = parse_message("data.shard_record", payload).to_dict()
        except MessageError as exc:
            raise type(exc)(f"shard record {key!r} in {staging}: {exc}") from exc
    return state


def _write_shard(staging, spec, split, offset, index, start, stop, table):
    """Draw one v2 shard straight into its memmap slice, then evict it.

    The journal transition to ``writing`` happens before the first
    byte lands and ``done`` only after the slice is flushed, so a kill
    at any instant leaves the journal conservative: a shard is either
    provably complete or it will be regenerated.
    """
    journal = shard_journal(staging)
    key = shard_key(split, index)
    _journal_transition(journal, key, SHARD_WRITING, split=split, index=index,
                        start=start, stop=stop)
    inputs = _open_inputs(staging, split)
    labels = np.asarray(_open_targets(staging, split, mode="r")[start:stop])
    rng = _shard_rng(spec, offset, index)
    _sample_images_fast(spec, table, labels, rng, out=np.asarray(inputs[start:stop]))
    evict(inputs)
    _journal_transition(journal, key, SHARD_DONE, split=split, index=index,
                        start=start, stop=stop)


def _stream_shard_task(task):
    """Pool entry point: stream one shard in a worker process.

    Module-level so it pickles under ``spawn``.  Only the spec and the
    shard coordinates cross the process boundary — labels are read back
    from the staged targets memmap, and the sampled images never leave
    the worker except through the shared file.
    """
    staging, spec, split, offset, index, start, stop, dtype = task
    with dtype_context(dtype):
        prototypes = _class_prototypes(spec, np.random.default_rng(spec.seed))
        table = _prototype_table(spec, prototypes)
        _write_shard(staging, spec, split, offset, index, start, stop, table)
    return split, index


def _write_v1_split(staging, spec, split, offset):
    """Write a single-shard split with the legacy (v1) generator stream."""
    prototypes = _class_prototypes(spec, np.random.default_rng(spec.seed))
    split_rng = np.random.default_rng(spec.seed + offset)
    images, labels = _generate_split(
        spec, prototypes, _split_totals(spec)[split], split_rng
    )
    inputs = _open_inputs(staging, split)
    targets = _open_targets(staging, split)
    inputs[:] = images
    targets[:] = labels
    evict(inputs)
    evict(targets)


def _resident_cap(spec, shard_size, max_resident_mb):
    """How many shards may be in flight inside ``max_resident_mb``."""
    if max_resident_mb is None:
        return None
    budget = int(max_resident_mb * 2**20)
    return max(1, budget // max(1, shard_nbytes(spec, shard_size)))


# ----------------------------------------------------------------------
# The streaming writer
# ----------------------------------------------------------------------
def stream_dataset(
    spec,
    cache_dir,
    workers=None,
    shard_size=None,
    max_resident_mb=None,
    mp_context="spawn",
    progress=None,
):
    """Generate ``spec``'s cache entry by streaming shards to disk.

    Resumable and bit-identical to the eager path: shards already
    journaled ``done`` in the staging directory are skipped, the rest
    are drawn from their per-shard streams directly into the staged
    memmaps (``workers``-parallel, capped so at most
    ``max_resident_mb`` worth of shards is in flight), and the entry is
    committed atomically once the journal is fully ``done``.  Returns a
    :class:`StreamReport`; ``progress`` (optional) is called as
    ``progress(split, index, state)`` after each shard with ``state``
    in ``("generated", "resumed")``.

    Concurrent streamers of the same key serialize on a staging lock;
    the loser wakes up to a complete entry and reports a hit.  A
    crashed streamer's ``flock`` dies with it, so the staging area is
    never wedged.
    """
    if not cache_dir:
        raise ValueError(
            "stream_dataset writes through the dataset cache; cache_dir is required"
        )
    workers = resolve_workers(workers)
    shard_size = _resolve_shard_size(shard_size)
    cache = dataset_cache(cache_dir)
    key = dataset_cache_key(spec, dtype=None, shard_size=shard_size)
    start_time = time.perf_counter()

    def hit_report():
        splits = [
            SplitShards(split=name, shards=len(plan_shards(total, shard_size)))
            for name, total in _split_totals(spec).items()
        ]
        return StreamReport(
            key=key,
            path=cache.entry_path(key),
            shard_size=shard_size,
            hit=True,
            splits=splits,
            seconds=time.perf_counter() - start_time,
            workers=workers,
        )

    if cache.complete(key):
        # The entry may have been completed by another writer (e.g. an
        # eager --no-stream rerun after an interrupted stream) while a
        # dataset-sized staging dir still lingers; reap it under the
        # staging lock so it can't race a live streamer.
        if os.path.isdir(cache.staging_path(key)):
            with file_lock(cache.staging_path(key) + ".lock"):
                if cache.complete(key):
                    cache.discard_staging(key)
        return hit_report()

    os.makedirs(cache.root, exist_ok=True)
    with file_lock(cache.staging_path(key) + ".lock"):
        if cache.complete(key):  # a concurrent streamer committed while we waited
            cache.discard_staging(key)
            return hit_report()
        staging, _resumed_layout = _allocate_staging(cache, key, spec, shard_size)
        journal = shard_journal(staging)
        state = _parse_shard_state(journal, staging)

        splits, tasks = [], []
        for name, offset in SPLITS:
            total = _split_totals(spec)[name]
            shards = plan_shards(total, shard_size)
            split_report = SplitShards(split=name, shards=len(shards))
            splits.append(split_report)
            done = {
                entry["index"]
                for entry in state.values()
                if entry["split"] == name and entry["status"] == SHARD_DONE
            }
            if len(shards) <= 1:
                if 0 in done:
                    split_report.resumed.append(0)
                else:
                    tasks.append((name, offset, 0, None, None))
                continue
            # v2 split: the label shuffle is deterministic and cheap, so
            # (re)write the targets whenever any shard still needs work —
            # workers read their label slices back from this memmap.
            missing = [i for i in range(len(shards)) if i not in done]
            split_report.resumed.extend(sorted(done))
            if missing:
                from .pipeline import _split_labels_for  # lazy: see pipeline

                targets = _open_targets(staging, name)
                targets[:] = _split_labels_for(spec, offset)
                evict(targets)
            for index in missing:
                lo, hi = shards[index]
                tasks.append((name, offset, index, lo, hi))

        for split_report in splits:
            for index in split_report.resumed:
                if progress is not None:
                    progress(split_report.split, index, "resumed")

        v1_tasks = [t for t in tasks if t[3] is None]
        v2_tasks = [t for t in tasks if t[3] is not None]
        by_split = {split_report.split: split_report for split_report in splits}

        for name, offset, index, _lo, _hi in v1_tasks:
            jkey = shard_key(name, index)
            _journal_transition(journal, jkey, SHARD_WRITING, split=name, index=index)
            _write_v1_split(staging, spec, name, offset)
            _journal_transition(journal, jkey, SHARD_DONE, split=name, index=index)
            by_split[name].generated.append(index)
            if progress is not None:
                progress(name, index, "generated")

        if v2_tasks:
            cap = _resident_cap(spec, shard_size, max_resident_mb)
            pool_size = min(workers, len(v2_tasks))
            if cap is not None:
                pool_size = min(pool_size, cap)
            dtype = dtype_name(None)
            if pool_size > 1:
                payloads = [
                    (staging, spec, name, offset, index, lo, hi, dtype)
                    for name, offset, index, lo, hi in v2_tasks
                ]
                ctx = get_context(mp_context)
                with ctx.Pool(processes=pool_size) as pool:
                    for name, index in pool.imap_unordered(_stream_shard_task, payloads):
                        by_split[name].generated.append(index)
                        if progress is not None:
                            progress(name, index, "generated")
            else:
                prototypes = _class_prototypes(spec, np.random.default_rng(spec.seed))
                table = _prototype_table(spec, prototypes)
                for name, offset, index, lo, hi in v2_tasks:
                    _write_shard(staging, spec, name, offset, index, lo, hi, table)
                    by_split[name].generated.append(index)
                    if progress is not None:
                        progress(name, index, "generated")

        for split_report in splits:
            split_report.generated.sort()
        _commit_staged(cache, key, staging, spec, shard_size, splits)

    return StreamReport(
        key=key,
        path=cache.entry_path(key),
        shard_size=shard_size,
        splits=splits,
        seconds=time.perf_counter() - start_time,
        workers=workers,
    )


def _commit_staged(cache, key, staging, spec, shard_size, splits):
    """Verify the journal, strip bookkeeping, publish the entry.

    The commit sequence is crash-ordered: the journal and descriptor
    are removed only immediately before the rename, so a kill anywhere
    earlier leaves a staging dir the next attempt resumes (or, past
    the descriptor removal, wipes and rebuilds) — never a half-live
    entry.
    """
    journal = shard_journal(staging)
    state = _parse_shard_state(journal, staging)
    missing = [
        shard_key(split.split, index)
        for split in splits
        for index in range(split.shards)
        if state.get(shard_key(split.split, index), {}).get("status") != SHARD_DONE
    ]
    if missing:
        raise RuntimeError(
            f"streamed entry {key!r} cannot commit; shards not done: {missing}"
        )
    meta = {
        "spec": asdict(spec),
        "dtype": dtype_name(None),
        "shard_size": shard_size,
        "train_generator": split_generator_id(spec.train_size, shard_size),
        "test_generator": split_generator_id(spec.test_size, shard_size),
        "streamed": True,
    }
    with open(os.path.join(staging, "meta.json"), "w") as fh:
        json.dump(meta, fh, indent=2)
    shutil.rmtree(os.path.join(staging, SHARD_JOURNAL_DIR), ignore_errors=True)
    os.remove(os.path.join(staging, STAGING_META))
    cache.commit_staging(key)
