"""Toy 2-D classification datasets for quickstart examples and tests."""

import numpy as np

from .dataset import ArrayDataset


def two_moons(n=256, noise=0.1, seed=0):
    """Two interleaved half-circles — the classic nonlinear benchmark."""
    rng = np.random.default_rng(seed)
    n_per = n // 2
    theta = rng.uniform(0, np.pi, size=n_per)
    upper = np.stack([np.cos(theta), np.sin(theta)], axis=1)
    lower = np.stack([1.0 - np.cos(theta), 0.5 - np.sin(theta)], axis=1)
    x = np.concatenate([upper, lower]) + noise * rng.standard_normal((2 * n_per, 2))
    y = np.concatenate([np.zeros(n_per, dtype=np.int64), np.ones(n_per, dtype=np.int64)])
    order = rng.permutation(len(x))
    return ArrayDataset(x[order], y[order])


def spirals(n=256, num_classes=3, noise=0.15, turns=1.25, seed=0):
    """``num_classes`` interleaved spirals radiating from the origin."""
    rng = np.random.default_rng(seed)
    n_per = n // num_classes
    xs, ys = [], []
    for c in range(num_classes):
        radius = np.linspace(0.1, 1.0, n_per)
        angle = (
            2 * np.pi * turns * radius
            + 2 * np.pi * c / num_classes
            + noise * rng.standard_normal(n_per)
        )
        xs.append(np.stack([radius * np.cos(angle), radius * np.sin(angle)], axis=1))
        ys.append(np.full(n_per, c, dtype=np.int64))
    x = np.concatenate(xs)
    y = np.concatenate(ys)
    order = rng.permutation(len(x))
    return ArrayDataset(x[order], y[order])


def gaussian_blobs(n=300, num_classes=3, spread=1.5, noise=0.35, seed=0):
    """Gaussian clusters on a circle — linearly separable baseline."""
    rng = np.random.default_rng(seed)
    n_per = n // num_classes
    centers = spread * np.stack(
        [
            np.cos(2 * np.pi * np.arange(num_classes) / num_classes),
            np.sin(2 * np.pi * np.arange(num_classes) / num_classes),
        ],
        axis=1,
    )
    xs, ys = [], []
    for c in range(num_classes):
        xs.append(centers[c] + noise * rng.standard_normal((n_per, 2)))
        ys.append(np.full(n_per, c, dtype=np.int64))
    x = np.concatenate(xs)
    y = np.concatenate(ys)
    order = rng.permutation(len(x))
    return ArrayDataset(x[order], y[order])


def train_test_split(dataset, test_fraction=0.3, seed=0):
    """Random split of an :class:`ArrayDataset` into train/test parts."""
    rng = np.random.default_rng(seed)
    n = len(dataset)
    order = rng.permutation(n)
    n_test = int(round(n * test_fraction))
    return dataset.subset(order[n_test:]), dataset.subset(order[:n_test])
