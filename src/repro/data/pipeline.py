"""Sharded, vectorized dataset generation over an on-disk dataset cache.

This module is the scale path for synthetic data.  Three layers, each
usable on its own:

1. **Vectorized sampling** — :func:`repro.data.synthetic._sample_images`
   draws a whole split in batched numpy ops, bit-identical to the seed
   per-image loop (same RNG stream, same float64 arithmetic, same cast).
2. **Sharded generation** — :func:`generate_dataset` splits large
   datasets into fixed-size shards, each drawn from its own
   ``np.random.SeedSequence``-spawned stream, and optionally fans the
   shards out over a ``multiprocessing`` pool.  Shard layout is a pure
   function of the spec and ``shard_size`` — **worker count never
   changes the data**, so parallel generation is bit-identical to
   serial sharded generation.
3. **On-disk dataset cache** — :func:`load_or_generate` memoizes whole
   generated datasets under a content-addressed directory cache
   (:class:`repro.io.DirectoryCache`: atomic temp-dir + rename, per-key
   inter-process locks).  A warm entry is **memory-mapped**, so many
   sweep workers share one copy of the arrays instead of each
   regenerating them.
4. **Streaming writer** — datasets larger than one shard are, by
   default, streamed shard-by-shard straight into the staged cache
   entry (:mod:`repro.data.streaming`): pre-allocated memmaps, a
   per-shard completion journal (interrupted generation resumes only
   missing shards), peak RSS near one shard per writer, bit-identical
   bytes to the eager path.  See ``docs/memory-model.md``.

Generator versions
------------------
Datasets that fit in a single shard (``total <= shard_size``, the case
for every paper experiment) keep the **legacy single-stream generator**
(``v1``) — bit-identical to the seed code, so nothing downstream moves.
Larger datasets use the **sharded streams** (``v2.s<shard_size>``).
The per-split generator id is hashed into the cache key, so v1 and v2
entries (or different shard layouts) can never be confused.

Examples
--------
Generate a million-sample dataset across 8 processes, cached on disk::

    from repro.data import PROFILES, load_or_generate
    from dataclasses import replace

    spec = replace(PROFILES["cifar10_like"], train_size=1_000_000)
    train, test = load_or_generate(spec, cache_dir=".cache/runs/datasets",
                                   workers=8)   # second call: mmap, no work

Let the environment drive it (the same knobs the sweep engine uses)::

    REPRO_WORKERS=8 REPRO_DTYPE=float32 REPRO_CACHE_DIR=/tmp/repro \\
        python -m repro.experiments datagen --train-size 1000000

Pre-warm the cache the sweep workers will memory-map::

    python -m repro.experiments datagen --datasets cifar10_like,cifar100_like

Environment variables: ``REPRO_WORKERS`` (default generation
parallelism), ``REPRO_DTYPE`` (engine dtype — part of the cache key),
``REPRO_CACHE_DIR`` (run-cache root; the dataset cache lives in its
``datasets/`` subdirectory), ``REPRO_DATASET_CACHE`` (override the
dataset-cache location, or ``off`` to disable disk caching).
"""

import hashlib
import json
import os
import re
from dataclasses import asdict, replace
from multiprocessing import get_context

import numpy as np

from ..io import DirectoryCache
from ..tensor import default_dtype, dtype_context, dtype_name
from .dataset import ArrayDataset
from .synthetic import (
    PROFILES,
    _class_prototypes,
    _generate_split,
    _sample_params,
    _split_labels,
)

#: Samples per shard.  Fixed by default so the sharded stream is a pure
#: function of the spec: every paper-scale dataset (<= 8192 samples)
#: stays on the legacy v1 stream, anything larger shards deterministically.
DEFAULT_SHARD_SIZE = 8192

#: Version tag of the sharded generator's stream (v1 is the seed loop's).
GENERATOR_VERSION = 2

#: Environment variable overriding the dataset-cache location
#: (a path, or ``0``/``off``/``none`` to disable disk caching).
DATASET_CACHE_ENV = "REPRO_DATASET_CACHE"

#: Environment variable naming the default generation parallelism
#: (shared with the sweep engine).
WORKERS_ENV = "REPRO_WORKERS"

#: Per-split seed offsets — match the legacy generator's
#: ``default_rng(seed + 1)`` / ``default_rng(seed + 2)`` split streams.
TRAIN_SPLIT, TEST_SPLIT = 1, 2

#: Files making up one complete dataset-cache entry.
DATASET_MANIFEST = (
    "train_inputs.npy",
    "train_targets.npy",
    "test_inputs.npy",
    "test_targets.npy",
    "meta.json",
)


def resolve_workers(workers=None):
    """Resolve a worker count: explicit arg > ``REPRO_WORKERS`` > serial (1).

    The single implementation behind both dataset generation and the
    sweep engine (:mod:`repro.experiments.sweep` re-exports it), so the
    two layers can never disagree about what ``REPRO_WORKERS`` means.
    """
    if workers is None:
        env = os.environ.get(WORKERS_ENV)
        if not env:
            return 1
        try:
            workers = int(env)
        except ValueError:
            raise ValueError(f"{WORKERS_ENV} must be an integer, got {env!r}") from None
    return max(1, int(workers))


def resolve_spec(profile, seed=None, train_size=None, test_size=None):
    """The :class:`SyntheticSpec` a profile + overrides resolves to."""
    if profile not in PROFILES:
        raise KeyError(f"unknown dataset profile {profile!r}; have {sorted(PROFILES)}")
    spec = PROFILES[profile]
    overrides = {
        key: value
        for key, value in (
            ("seed", seed),
            ("train_size", train_size),
            ("test_size", test_size),
        )
        if value is not None
    }
    return replace(spec, **overrides) if overrides else spec


def dataset_cache_dir(run_cache_dir=None):
    """Resolve the dataset-cache directory (or ``None`` for no caching).

    ``REPRO_DATASET_CACHE`` wins when set (a path, or ``off``/``0`` to
    disable).  Otherwise the dataset cache lives in the ``datasets/``
    subdirectory of the given run-cache directory, so one
    ``REPRO_CACHE_DIR`` knob relocates both caches together.  With no
    run cache and no env var there is no disk cache.
    """
    env = os.environ.get(DATASET_CACHE_ENV)
    if env:
        if env.strip().lower() in ("0", "off", "none", "disabled"):
            return None
        return os.path.abspath(os.path.expanduser(env))
    if run_cache_dir:
        return os.path.join(os.path.abspath(run_cache_dir), "datasets")
    return None


# ----------------------------------------------------------------------
# Sharded generation
# ----------------------------------------------------------------------
def _resolve_shard_size(shard_size):
    shard_size = DEFAULT_SHARD_SIZE if shard_size is None else int(shard_size)
    if shard_size <= 0:
        raise ValueError(f"shard_size must be positive, got {shard_size}")
    return shard_size


def plan_shards(total, shard_size=None):
    """Contiguous ``(start, stop)`` shard bounds covering ``total`` samples."""
    shard_size = _resolve_shard_size(shard_size)
    return [(start, min(start + shard_size, total)) for start in range(0, total, shard_size)]


def split_generator_id(total, shard_size=None):
    """Generator version tag for one split: ``"v1"`` or ``"v2.s<size>"``."""
    shard_size = _resolve_shard_size(shard_size)
    if total <= shard_size:
        return "v1"
    return f"v{GENERATOR_VERSION}.s{shard_size}"


def should_stream(spec, shard_size=None):
    """Whether the auto policy streams ``spec`` to disk during generation.

    Streaming pays off exactly when a dataset is big enough to shard:
    a multi-shard dataset is written shard-by-shard into the staged
    cache entry (resumable, ~one shard resident) instead of being
    materialized in RAM first.  Single-shard datasets — every paper
    experiment — keep the eager path.  Explicit ``stream=True/False``
    on the generation entry points overrides this policy.
    """
    shard_size = _resolve_shard_size(shard_size)
    return max(spec.train_size, spec.test_size) > shard_size


def _split_labels_for(spec, split_offset):
    """The deterministic label array of one sharded (v2) split."""
    total = spec.train_size if split_offset == TRAIN_SPLIT else spec.test_size
    return _split_labels(spec, total, np.random.default_rng(spec.seed + split_offset))


#: Samples per in-shard processing block.  Sized so one block's working
#: set (output, gathered prototypes, noise) stays cache-resident.  The
#: sampled values are block-size invariant (``standard_normal(out=...)``
#: consumes the stream per value), so this is purely a speed knob.
_BLOCK = 2048


def _shard_rng(spec, split_offset, shard_index):
    """The spawned generator stream owned by one shard of one split.

    ``SeedSequence(spec.seed, spawn_key=(split, shard))`` gives every
    shard a statistically independent stream that depends only on the
    spec seed and the shard's coordinates — never on worker count or
    execution order.  The sharded generator rides ``SFC64`` (the
    fastest numpy bit generator at bulk normal draws); this choice is
    part of the v2 stream definition.
    """
    seq = np.random.SeedSequence(spec.seed, spawn_key=(split_offset, shard_index))
    return np.random.Generator(np.random.SFC64(seq))


def _prototype_table(spec, prototypes):
    """Rolled-prototype lookup table in the engine dtype.

    Row ``(c * k + dy) * k + dx`` holds class ``c``'s prototype
    circularly shifted by ``(dy - max_shift, dx - max_shift)`` and
    flattened — there are only ``num_classes * (2 * max_shift + 1)²``
    distinct (class, shift) combinations, so the whole table is a few
    hundred KB and every per-sample "mix + roll" becomes one gather.
    """
    k = 2 * spec.max_shift + 1
    features = spec.channels * spec.image_size * spec.image_size
    table = np.empty((spec.num_classes * k * k, features), dtype=default_dtype())
    for c in range(spec.num_classes):
        for dy in range(k):
            for dx in range(k):
                rolled = np.roll(
                    prototypes[c],
                    (dy - spec.max_shift, dx - spec.max_shift),
                    axis=(1, 2),
                )
                table[(c * k + dy) * k + dx] = rolled.ravel()
    return table


def _sample_images_fast(spec, table, labels, rng, out=None):
    """Engine-dtype-native sampler behind the sharded (v2) generator.

    Consumes the same parameter draws as the legacy sampler
    (:func:`repro.data.synthetic._sample_params`), then materializes
    each sample as ``noise + amps * table[label, shift] + mix *
    table[other, shift]`` in cache-resident blocks: the noise is drawn
    straight into the output buffer, and the two prototype gathers
    collapse into one ``np.take`` plus an einsum contraction.  All
    arithmetic runs in the engine dtype — this is what buys the bulk of
    the datagen speedup, and it is why v2 carries its own generator
    version instead of claiming stream parity with the seed loop.
    """
    count = len(labels)
    size = spec.image_size
    k = 2 * spec.max_shift + 1
    features = spec.channels * size * size
    dtype = default_dtype()
    if out is None:
        out = np.empty((count, spec.channels, size, size), dtype=dtype)
    flat = out.reshape(count, features)

    other, amps, mix, shifts_y, shifts_x = _sample_params(spec, labels, rng)
    shift_index = (shifts_y + spec.max_shift) * k + (shifts_x + spec.max_shift)
    pair_index = np.empty((count, 2), dtype=np.intp)
    pair_index[:, 0] = labels * (k * k) + shift_index
    pair_index[:, 1] = other * (k * k) + shift_index
    coef = np.empty((count, 2), dtype=dtype)
    coef[:, 0] = amps
    coef[:, 1] = mix
    sigma = dtype.type(spec.noise)

    gathered = np.empty((2 * _BLOCK, features), dtype=dtype)
    mixture = np.empty((_BLOCK, features), dtype=dtype)
    for start in range(0, count, _BLOCK):
        stop = min(start + _BLOCK, count)
        m = stop - start
        block = flat[start:stop]
        rng.standard_normal(out=block, dtype=dtype)
        block *= sigma
        # mode="clip" skips np.take's slow bounds-checking path; the
        # indices are in range by construction (class < num_classes,
        # shift index < k*k), so clipping can never actually trigger.
        np.take(
            table,
            pair_index[start:stop].ravel(),
            axis=0,
            out=gathered[: 2 * m],
            mode="clip",
        )
        np.einsum(
            "nkf,nk->nf",
            gathered[: 2 * m].reshape(m, 2, features),
            coef[start:stop],
            out=mixture[:m],
        )
        block += mixture[:m]
    return out


def _shard_task(task):
    """Pool entry point: draw one shard's images in a worker process.

    Module-level so it pickles under ``spawn``.  The prototype table is
    recomputed from the spec seed inside the worker (milliseconds) so
    only the spec and the shard's label slice cross the process
    boundary.
    """
    spec, labels, split_offset, shard_index, dtype = task
    with dtype_context(dtype):
        prototypes = _class_prototypes(spec, np.random.default_rng(spec.seed))
        table = _prototype_table(spec, prototypes)
        rng = _shard_rng(spec, split_offset, shard_index)
        images = _sample_images_fast(spec, table, labels, rng)
    return split_offset, shard_index, images


def generate_dataset(spec, workers=None, shard_size=None, mp_context="spawn"):
    """Generate ``(train_dataset, test_dataset)``, sharded when large.

    Splits small enough for one shard use the legacy single-stream
    generator (bit-identical to :func:`repro.data.synthetic.generate_synthetic`);
    larger splits are drawn shard-by-shard from per-shard spawned
    streams, optionally across a ``workers``-process pool.  The output
    depends only on ``(spec, shard_size)`` and the engine dtype —
    never on ``workers``.
    """
    workers = resolve_workers(workers)
    shard_size = _resolve_shard_size(shard_size)
    prototypes = _class_prototypes(spec, np.random.default_rng(spec.seed))
    size = spec.image_size

    splits = {}  # split_offset -> (images, labels)
    tasks = []  # (split_offset, shard_index, start, stop)
    for split_offset, total in ((TRAIN_SPLIT, spec.train_size), (TEST_SPLIT, spec.test_size)):
        shards = plan_shards(total, shard_size)
        if len(shards) <= 1:
            split_rng = np.random.default_rng(spec.seed + split_offset)
            images, labels = _generate_split(spec, prototypes, total, split_rng)
            splits[split_offset] = (images, labels)
            continue
        labels = _split_labels_for(spec, split_offset)
        images = np.empty((total, spec.channels, size, size), dtype=default_dtype())
        splits[split_offset] = (images, labels)
        for index, (start, stop) in enumerate(shards):
            tasks.append((split_offset, index, start, stop))

    if tasks:
        dtype = dtype_name(None)
        if workers > 1 and len(tasks) > 1:
            payloads = [
                (spec, splits[off][1][start:stop], off, index, dtype)
                for off, index, start, stop in tasks
            ]
            ctx = get_context(mp_context)
            with ctx.Pool(processes=min(workers, len(tasks))) as pool:
                for off, index, images in pool.imap_unordered(_shard_task, payloads):
                    start = index * shard_size
                    splits[off][0][start : start + len(images)] = images
        else:
            table = _prototype_table(spec, prototypes)
            for off, index, start, stop in tasks:
                rng = _shard_rng(spec, off, index)
                _sample_images_fast(
                    spec,
                    table,
                    splits[off][1][start:stop],
                    rng,
                    out=splits[off][0][start:stop],
                )

    train = ArrayDataset(*splits[TRAIN_SPLIT])
    test = ArrayDataset(*splits[TEST_SPLIT])
    return train, test


# ----------------------------------------------------------------------
# On-disk dataset cache
# ----------------------------------------------------------------------
def dataset_cache_key(spec, dtype=None, shard_size=None):
    """Content address of one generated dataset.

    Hashes the full spec, the engine dtype the arrays are materialized
    in, and each split's generator id (so a legacy-stream entry and a
    sharded entry of the same spec never collide).  The key is prefixed
    with a human-readable ``name-trainxtest-dtype`` slug for cache
    spelunking.
    """
    dtype = dtype_name(dtype)
    payload = {
        "spec": asdict(spec),
        "dtype": dtype,
        "train_generator": split_generator_id(spec.train_size, shard_size),
        "test_generator": split_generator_id(spec.test_size, shard_size),
    }
    digest = hashlib.sha256(json.dumps(payload, sort_keys=True).encode()).hexdigest()[:12]
    slug = re.sub(r"[^A-Za-z0-9_.-]+", "-", spec.name)
    return f"{slug}-{spec.train_size}x{spec.test_size}-{dtype}-{digest}"


def dataset_cache(cache_dir):
    """The :class:`~repro.io.DirectoryCache` over ``cache_dir``."""
    return DirectoryCache(cache_dir, DATASET_MANIFEST)


def _load_entry(path):
    """Memory-map one cache entry back into ``(train, test)`` datasets."""

    def load(name):
        return np.load(os.path.join(path, name), mmap_mode="r")

    train = ArrayDataset(load("train_inputs.npy"), load("train_targets.npy"))
    test = ArrayDataset(load("test_inputs.npy"), load("test_targets.npy"))
    return train, test


def load_or_generate(
    spec,
    cache_dir=None,
    workers=None,
    shard_size=None,
    mp_context="spawn",
    stream=None,
    max_resident_mb=None,
):
    """Datasets for ``spec`` under the ambient engine dtype, cached on disk.

    With a ``cache_dir``, a warm entry is returned as memory-mapped
    arrays (zero generation work — the acceptance path for repeated
    sweeps); a cold one is generated, published atomically, and
    returned.  Without a ``cache_dir`` this is pure in-RAM generation,
    exactly as the seed code behaved.

    ``stream`` picks the cold-entry writer: ``True`` streams shards
    directly into the staged cache entry (resumable, ~one shard
    resident per writer — :mod:`repro.data.streaming`), ``False``
    forces the eager in-RAM path, and ``None`` (default) streams
    exactly when the dataset is larger than one shard
    (:func:`should_stream`).  Both writers produce bit-identical
    entries.  ``max_resident_mb`` bounds the streamed writer's
    in-flight shard memory.  A streamed cold entry is returned
    memory-mapped, like a warm hit.
    """
    if not cache_dir:
        if stream:
            raise ValueError(
                "streamed generation writes through the dataset cache; "
                "pass cache_dir or drop stream=True"
            )
        return generate_dataset(spec, workers=workers, shard_size=shard_size, mp_context=mp_context)
    cache = dataset_cache(cache_dir)
    key = dataset_cache_key(spec, dtype=None, shard_size=shard_size)
    entry = cache.fetch(key, _load_entry)
    if entry is not None:
        return entry
    use_stream = stream if stream is not None else should_stream(spec, shard_size)
    if use_stream:
        from .streaming import stream_dataset

        stream_dataset(
            spec,
            cache_dir,
            workers=workers,
            shard_size=shard_size,
            max_resident_mb=max_resident_mb,
            mp_context=mp_context,
        )
        entry = cache.fetch(key, _load_entry)
        if entry is not None:
            return entry
        # Defensive: the committed entry vanished between commit and
        # fetch (only an external wipe can do this) — fall through and
        # regenerate eagerly rather than fail the caller.
    train, test = generate_dataset(
        spec, workers=workers, shard_size=shard_size, mp_context=mp_context
    )

    def build(tmp):
        np.save(os.path.join(tmp, "train_inputs.npy"), train.inputs)
        np.save(os.path.join(tmp, "train_targets.npy"), train.targets)
        np.save(os.path.join(tmp, "test_inputs.npy"), test.inputs)
        np.save(os.path.join(tmp, "test_targets.npy"), test.targets)
        meta = {
            "spec": asdict(spec),
            "dtype": dtype_name(None),
            "shard_size": _resolve_shard_size(shard_size),
            "train_generator": split_generator_id(spec.train_size, shard_size),
            "test_generator": split_generator_id(spec.test_size, shard_size),
        }
        with open(os.path.join(tmp, "meta.json"), "w") as fh:
            json.dump(meta, fh, indent=2)

    cache.publish(key, build)
    return train, test


def warm_dataset(
    spec,
    cache_dir,
    workers=None,
    shard_size=None,
    mp_context="spawn",
    stream=None,
    max_resident_mb=None,
):
    """Ensure the cache entry for ``spec`` exists; returns ``(key, hit)``.

    ``hit`` is True when the entry was already complete (no generation
    performed).  The sweep engine calls this for every unique dataset
    signature in a grid *before* dispatching training workers, so the
    workers memory-map shared arrays instead of regenerating them.
    ``stream``/``max_resident_mb`` select and bound the streamed shard
    writer exactly as in :func:`load_or_generate` (default: stream any
    dataset larger than one shard), so warming a million-sample grid
    never materializes a dataset in RAM; for per-shard accounting of a
    warm pass use :func:`repro.data.streaming.stream_dataset` directly.
    """
    if not cache_dir:
        raise ValueError("warm_dataset needs a cache_dir to warm")
    key = dataset_cache_key(spec, dtype=None, shard_size=shard_size)
    if dataset_cache(cache_dir).complete(key):
        return key, True
    load_or_generate(
        spec,
        cache_dir=cache_dir,
        workers=workers,
        shard_size=shard_size,
        mp_context=mp_context,
        stream=stream,
        max_resident_mb=max_resident_mb,
    )
    return key, False
