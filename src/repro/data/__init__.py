"""``repro.data`` — datasets, loaders, augmentation and label noise."""

from .dataset import ArrayDataset, DataLoader
from .synthetic import (
    SyntheticSpec,
    PROFILES,
    generate_synthetic,
    make_dataset,
)
from .pipeline import (
    DEFAULT_SHARD_SIZE,
    dataset_cache_dir,
    dataset_cache_key,
    generate_dataset,
    load_or_generate,
    plan_shards,
    resolve_spec,
    should_stream,
    warm_dataset,
)
from .streaming import StreamReport, evict, stream_dataset
from .toy import two_moons, spirals, gaussian_blobs, train_test_split
from .augment import random_crop, random_horizontal_flip, standard_augment
from .noisy_labels import corrupt_symmetric, corrupt_dataset

__all__ = [
    "DEFAULT_SHARD_SIZE",
    "dataset_cache_dir",
    "dataset_cache_key",
    "generate_dataset",
    "load_or_generate",
    "plan_shards",
    "resolve_spec",
    "should_stream",
    "warm_dataset",
    "StreamReport",
    "evict",
    "stream_dataset",
    "ArrayDataset",
    "DataLoader",
    "SyntheticSpec",
    "PROFILES",
    "generate_synthetic",
    "make_dataset",
    "two_moons",
    "spirals",
    "gaussian_blobs",
    "train_test_split",
    "random_crop",
    "random_horizontal_flip",
    "standard_augment",
    "corrupt_symmetric",
    "corrupt_dataset",
]
