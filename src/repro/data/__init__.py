"""``repro.data`` — datasets, loaders, augmentation and label noise."""

from .dataset import ArrayDataset, DataLoader
from .synthetic import (
    SyntheticSpec,
    PROFILES,
    generate_synthetic,
    make_dataset,
)
from .toy import two_moons, spirals, gaussian_blobs, train_test_split
from .augment import random_crop, random_horizontal_flip, standard_augment
from .noisy_labels import corrupt_symmetric, corrupt_dataset

__all__ = [
    "ArrayDataset",
    "DataLoader",
    "SyntheticSpec",
    "PROFILES",
    "generate_synthetic",
    "make_dataset",
    "two_moons",
    "spirals",
    "gaussian_blobs",
    "train_test_split",
    "random_crop",
    "random_horizontal_flip",
    "standard_augment",
    "corrupt_symmetric",
    "corrupt_dataset",
]
