"""Synthetic image classification datasets — the CIFAR/ImageNet stand-in.

The paper trains on CIFAR-10, CIFAR-100 and ImageNet, none of which are
available offline.  This module generates a deterministic,
class-conditional image distribution with the properties the paper's
phenomena depend on:

* a held-out test split drawn from the same distribution (so a
  generalization gap exists and can be widened by overfitting);
* non-trivial class structure — each class is a mixture of smooth
  spatial prototypes plus localized blobs, and every sample receives a
  random spatial shift, inter-class interference and pixel noise, so a
  model must learn shift-tolerant spatial features (what convolutions
  provide) and can overfit the noise;
* enough samples relative to model capacity that training method
  (SGD vs HERO vs GRAD-L1) changes the solution's flatness.

Three profiles mirror the paper's datasets: ``cifar10_like`` (10
classes), ``cifar100_like`` (20 classes, fewer samples per class —
harder, like CIFAR-100 relative to CIFAR-10) and ``imagenet_like``
(more classes, larger images — the scalability check).
"""

from dataclasses import dataclass

import numpy as np

from ..tensor import default_dtype
from .dataset import ArrayDataset


@dataclass(frozen=True)
class SyntheticSpec:
    """Full description of a synthetic image distribution."""

    name: str
    num_classes: int
    image_size: int
    channels: int = 3
    train_size: int = 512
    test_size: int = 256
    num_components: int = 3  # cosine components per prototype
    num_blobs: int = 2  # localized blobs per class
    prototype_scale: float = 1.0
    interference: float = 0.35  # weight of the wrong-class prototype mixed in
    noise: float = 0.55  # i.i.d. pixel noise std
    max_shift: int = 2  # random circular shift, pixels
    amplitude_jitter: float = 0.25  # multiplicative prototype jitter
    seed: int = 2022

    def class_counts(self, total):
        """Near-uniform per-class sample counts summing to ``total``."""
        base = total // self.num_classes
        counts = np.full(self.num_classes, base, dtype=np.int64)
        counts[: total - base * self.num_classes] += 1
        return counts


# Difficulty calibrated (see EXPERIMENTS.md) so that the paper's SGD
# baseline lands in the overfitting regime at CPU scale: train accuracy
# ~1.0 with a 0.3-0.5 generalization gap and a visible low-bit PTQ drop
# — the conditions under which HERO's mechanisms are observable.
PROFILES = {
    "cifar10_like": SyntheticSpec(
        name="cifar10_like",
        num_classes=10,
        image_size=8,
        train_size=256,
        test_size=320,
        noise=1.0,
        interference=0.6,
        amplitude_jitter=0.4,
    ),
    "cifar100_like": SyntheticSpec(
        name="cifar100_like",
        num_classes=20,
        image_size=8,
        train_size=320,
        test_size=400,
        noise=1.0,
        interference=0.7,
        amplitude_jitter=0.4,
    ),
    "imagenet_like": SyntheticSpec(
        name="imagenet_like",
        num_classes=25,
        image_size=12,
        train_size=400,
        test_size=375,
        noise=0.9,
        interference=0.6,
        amplitude_jitter=0.4,
    ),
    # Grayscale profile (Fashion-MNIST-like shape): exercises the
    # in_channels=1 path through the model zoo and harness.
    "fashion_like": SyntheticSpec(
        name="fashion_like",
        num_classes=10,
        image_size=10,
        channels=1,
        train_size=300,
        test_size=300,
        noise=0.9,
        interference=0.5,
        amplitude_jitter=0.35,
    ),
}


def _class_prototypes(spec, rng):
    """Build one smooth prototype image per class.

    Prototypes combine low-frequency cosine gratings (global structure)
    with Gaussian blobs at class-specific positions (local structure),
    then are normalized to unit RMS so classes are equally "loud".
    """
    size = spec.image_size
    ys, xs = np.meshgrid(np.arange(size), np.arange(size), indexing="ij")
    prototypes = np.zeros((spec.num_classes, spec.channels, size, size))
    for c in range(spec.num_classes):
        proto = np.zeros((spec.channels, size, size))
        for _ in range(spec.num_components):
            fy, fx = rng.uniform(0.5, 2.0, size=2) / size
            phase = rng.uniform(0, 2 * np.pi)
            channel_weights = rng.normal(size=spec.channels)
            grating = np.cos(2 * np.pi * (fy * ys + fx * xs) + phase)
            proto += channel_weights[:, None, None] * grating[None]
        for _ in range(spec.num_blobs):
            cy, cx = rng.uniform(0, size, size=2)
            sigma = rng.uniform(0.08, 0.2) * size
            blob = np.exp(-(((ys - cy) ** 2 + (xs - cx) ** 2) / (2 * sigma**2)))
            channel_weights = rng.normal(size=spec.channels) * 2.0
            proto += channel_weights[:, None, None] * blob[None]
        rms = np.sqrt(np.mean(proto**2))
        prototypes[c] = spec.prototype_scale * proto / max(rms, 1e-12)
    return prototypes


def _sample_params(spec, labels, rng):
    """Draw the per-sample randomness shared by both sampler variants.

    Every stochastic choice (interference class, amplitude, mix weight,
    shifts) is drawn here in batched calls, so the loop and vectorized
    samplers consume *exactly* the same generator stream.
    """
    count = len(labels)
    other = rng.integers(0, spec.num_classes, size=count)
    # Make sure interference comes from a *different* class.
    clash = other == labels
    other[clash] = (other[clash] + 1) % spec.num_classes
    amps = 1.0 + spec.amplitude_jitter * rng.standard_normal(count)
    mix = spec.interference * rng.random(count)
    shifts_y = rng.integers(-spec.max_shift, spec.max_shift + 1, size=count)
    shifts_x = rng.integers(-spec.max_shift, spec.max_shift + 1, size=count)
    return other, amps, mix, shifts_y, shifts_x


def _sample_images_loop(spec, prototypes, labels, rng):
    """Reference sampler: one image per loop iteration (the seed code).

    Kept as the executable specification of the generator's stream —
    the parity tests assert :func:`_sample_images` reproduces it bit
    for bit, and ``bench_datagen`` uses it as the speedup baseline.
    """
    count = len(labels)
    size = spec.image_size
    images = np.empty((count, spec.channels, size, size), dtype=default_dtype())
    other, amps, mix, shifts_y, shifts_x = _sample_params(spec, labels, rng)
    for i in range(count):
        img = amps[i] * prototypes[labels[i]] + mix[i] * prototypes[other[i]]
        if shifts_y[i] or shifts_x[i]:
            img = np.roll(img, (shifts_y[i], shifts_x[i]), axis=(1, 2))
        images[i] = img
    images += spec.noise * rng.standard_normal(images.shape)
    return images


def _sample_images(spec, prototypes, labels, rng):
    """Draw one image per label: jittered prototype + interference + noise.

    Vectorized over the whole batch — prototype mixing is two fancy
    indexes plus broadcast multiplies, and the per-image circular shift
    is a single batched gather (roll via modular index arithmetic, no
    per-image ``np.roll``).  Bit-identical to :func:`_sample_images_loop`:
    the RNG draws, the float64 mixture arithmetic and the final cast to
    the engine dtype all happen in the same order.
    """
    count = len(labels)
    size = spec.image_size
    other, amps, mix, shifts_y, shifts_x = _sample_params(spec, labels, rng)
    # Mixture in float64 (prototypes' dtype), exactly as the loop's
    # per-image `amps[i] * proto + mix[i] * proto`.
    mixed = (
        amps[:, None, None, None] * prototypes[labels]
        + mix[:, None, None, None] * prototypes[other]
    )
    # Batched circular shift: np.roll(img, s)[r] == img[(r - s) % size],
    # expressed as one advanced-indexing gather over the batch.
    grid = np.arange(size)
    rows = (grid[None, :] - shifts_y[:, None]) % size
    cols = (grid[None, :] - shifts_x[:, None]) % size
    shifted = mixed[
        np.arange(count)[:, None, None, None],
        np.arange(spec.channels)[None, :, None, None],
        rows[:, None, :, None],
        cols[:, None, None, :],
    ]
    # Cast to the engine dtype on store (the loop casts per image; one
    # batched cast produces the same values), then add pixel noise drawn
    # in the identical single rng call.
    images = shifted.astype(default_dtype())
    images += spec.noise * rng.standard_normal(images.shape)
    return images


def _split_labels(spec, total, split_rng):
    """Near-uniform class labels for one split, shuffled by ``split_rng``."""
    counts = spec.class_counts(total)
    labels = np.repeat(np.arange(spec.num_classes), counts)
    split_rng.shuffle(labels)
    return labels


def _generate_split(spec, prototypes, total, split_rng):
    """One split of the legacy single-stream generator: ``(images, labels)``.

    The label shuffle and the sample draws share ``split_rng`` — this
    is the exact seed-generator stream (generator version 1), which the
    sharded pipeline reuses for datasets small enough to fit one shard.
    """
    labels = _split_labels(spec, total, split_rng)
    images = _sample_images(spec, prototypes, labels, split_rng)
    return images, labels


def generate_synthetic(spec):
    """Generate ``(train_dataset, test_dataset)`` for a spec.

    Train and test are sampled i.i.d. from the same class-conditional
    distribution; the prototypes (the "true signal") are shared, the
    noise draws are independent.
    """
    rng = np.random.default_rng(spec.seed)
    prototypes = _class_prototypes(spec, rng)

    def _split(total, split_rng):
        images, labels = _generate_split(spec, prototypes, total, split_rng)
        return ArrayDataset(images, labels)

    train_rng = np.random.default_rng(spec.seed + 1)
    test_rng = np.random.default_rng(spec.seed + 2)
    return _split(spec.train_size, train_rng), _split(spec.test_size, test_rng)


def make_dataset(
    profile,
    seed=None,
    train_size=None,
    test_size=None,
    cache_dir=None,
    workers=None,
    shard_size=None,
    stream=None,
    max_resident_mb=None,
):
    """Instantiate a named profile, optionally overriding its scale.

    Returns ``(train_dataset, test_dataset, spec)``.

    ``cache_dir`` (optional) names an on-disk dataset cache directory:
    a repeat call for the same spec + engine dtype memory-maps the
    stored arrays instead of regenerating them.  ``workers`` and
    ``shard_size`` tune the sharded generation path for large datasets
    (see :mod:`repro.data.pipeline`); they never change the generated
    values — shard layout is a pure function of the spec and
    ``shard_size``, and the default small-dataset stream is identical
    to the seed generator.  ``stream`` selects the streaming shard
    writer for cold cache entries (default: automatic for multi-shard
    datasets — resumable and never whole-in-RAM; see
    :mod:`repro.data.streaming`) and ``max_resident_mb`` bounds its
    in-flight shard memory; neither changes the generated bytes.
    """
    from .pipeline import load_or_generate, resolve_spec

    spec = resolve_spec(profile, seed=seed, train_size=train_size, test_size=test_size)
    train, test = load_or_generate(
        spec,
        cache_dir=cache_dir,
        workers=workers,
        shard_size=shard_size,
        stream=stream,
        max_resident_mb=max_resident_mb,
    )
    return train, test, spec
