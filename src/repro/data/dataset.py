"""Dataset and DataLoader abstractions.

Minimal but faithful to the familiar contract: a ``Dataset`` is an
indexable collection of ``(x, y)`` pairs backed by numpy arrays, and a
``DataLoader`` yields shuffled mini-batches, reproducibly.
"""

import numpy as np

from ..tensor import default_dtype


class ArrayDataset:
    """In-memory dataset over parallel numpy arrays.

    Inputs are stored in the engine dtype of the precision policy so
    every batch a loader yields feeds the model without a per-step
    cast.
    """

    def __init__(self, inputs, targets):
        inputs = np.asarray(inputs, dtype=default_dtype())
        targets = np.asarray(targets)
        if len(inputs) != len(targets):
            raise ValueError(
                f"inputs ({len(inputs)}) and targets ({len(targets)}) differ in length"
            )
        self.inputs = inputs
        self.targets = targets

    def __len__(self):
        return len(self.inputs)

    def __getitem__(self, index):
        return self.inputs[index], self.targets[index]

    def subset(self, indices):
        """Return a new dataset restricted to ``indices``."""
        indices = np.asarray(indices)
        return ArrayDataset(self.inputs[indices], self.targets[indices])

    def with_targets(self, targets):
        """Return a copy sharing inputs but with replaced targets."""
        return ArrayDataset(self.inputs, targets)


class DataLoader:
    """Iterate mini-batches of an :class:`ArrayDataset`.

    Parameters
    ----------
    dataset:
        The dataset to iterate.
    batch_size:
        Mini-batch size; the final short batch is kept unless
        ``drop_last``.
    shuffle:
        Reshuffle at the start of every epoch.
    transform:
        Optional callable ``(x_batch, rng) -> x_batch`` applied to each
        input batch (data augmentation).
    seed:
        Seeds both shuffling and the transform's rng stream.
    window / max_resident_mb:
        **Out-of-core mode** for memory-mapped datasets bigger than
        RAM.  A global shuffle touches every page of the backing file
        each epoch; with a ``window`` (samples) the epoch instead
        visits contiguous windows in random order and shuffles *within*
        each window, so the resident working set stays near one window
        (~one cache shard when ``window`` equals the generation shard
        size) while every sample is still seen exactly once per epoch.
        ``max_resident_mb`` derives the window from a byte budget
        instead.  With ``shuffle=False`` iteration is already
        sequential — the out-of-core loader is then bit-identical to
        the eager one, which is the tested parity contract.  At the end
        of each epoch the mapped pages are dropped
        (:func:`repro.data.streaming.evict`), returning the memory to
        the OS.  Default (``None``): the classic global shuffle,
        byte-for-byte the legacy RNG stream.
    """

    def __init__(
        self,
        dataset,
        batch_size=32,
        shuffle=True,
        transform=None,
        drop_last=False,
        seed=0,
        window=None,
        max_resident_mb=None,
    ):
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.transform = transform
        self.drop_last = drop_last
        self._rng = np.random.default_rng(seed)
        self.window = self._resolve_window(window, max_resident_mb)

    def _resolve_window(self, window, max_resident_mb):
        """Samples per resident window, or ``None`` for the eager loader."""
        if window is not None:
            window = int(window)
            if window <= 0:
                raise ValueError(f"window must be positive, got {window}")
            return window
        if max_resident_mb is None:
            return None
        if max_resident_mb <= 0:
            raise ValueError(f"max_resident_mb must be positive, got {max_resident_mb}")
        inputs = getattr(self.dataset, "inputs", None)
        if inputs is None:
            raise ValueError(
                "max_resident_mb needs a dataset exposing `.inputs` to size "
                "the window; pass window= explicitly instead"
            )
        sample_bytes = max(
            1, int(np.prod(inputs.shape[1:], dtype=np.int64)) * inputs.dtype.itemsize
        )
        budget = int(max_resident_mb * 2**20)
        return max(self.batch_size, budget // sample_bytes)

    def __len__(self):
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def epoch_order(self, n=None):
        """The sample order the next epoch visits (consumes the rng).

        Eager mode: one global shuffle (the legacy stream, unchanged).
        Out-of-core mode: windows of ``self.window`` consecutive
        samples are visited in shuffled order, each internally
        shuffled — a permutation of ``range(n)`` whose working set is
        window-local.
        """
        n = len(self.dataset) if n is None else n
        if not self.shuffle:
            return np.arange(n)
        if self.window is None or self.window >= n:
            order = np.arange(n)
            self._rng.shuffle(order)
            return order
        starts = np.arange(0, n, self.window)
        self._rng.shuffle(starts)
        pieces = []
        for start in starts:
            piece = np.arange(start, min(start + self.window, n))
            self._rng.shuffle(piece)
            pieces.append(piece)
        return np.concatenate(pieces)

    def __iter__(self):
        n = len(self.dataset)
        order = self.epoch_order(n)
        try:
            for start in range(0, n, self.batch_size):
                index = order[start : start + self.batch_size]
                if self.drop_last and len(index) < self.batch_size:
                    return
                x, y = self.dataset[index]
                if self.transform is not None:
                    x = self.transform(x, self._rng)
                yield x, y
        finally:
            if self.window is not None:
                from .streaming import evict

                evict(getattr(self.dataset, "inputs", None))
