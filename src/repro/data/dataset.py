"""Dataset and DataLoader abstractions.

Minimal but faithful to the familiar contract: a ``Dataset`` is an
indexable collection of ``(x, y)`` pairs backed by numpy arrays, and a
``DataLoader`` yields shuffled mini-batches, reproducibly.
"""

import numpy as np

from ..tensor import default_dtype


class ArrayDataset:
    """In-memory dataset over parallel numpy arrays.

    Inputs are stored in the engine dtype of the precision policy so
    every batch a loader yields feeds the model without a per-step
    cast.
    """

    def __init__(self, inputs, targets):
        inputs = np.asarray(inputs, dtype=default_dtype())
        targets = np.asarray(targets)
        if len(inputs) != len(targets):
            raise ValueError(
                f"inputs ({len(inputs)}) and targets ({len(targets)}) differ in length"
            )
        self.inputs = inputs
        self.targets = targets

    def __len__(self):
        return len(self.inputs)

    def __getitem__(self, index):
        return self.inputs[index], self.targets[index]

    def subset(self, indices):
        """Return a new dataset restricted to ``indices``."""
        indices = np.asarray(indices)
        return ArrayDataset(self.inputs[indices], self.targets[indices])

    def with_targets(self, targets):
        """Return a copy sharing inputs but with replaced targets."""
        return ArrayDataset(self.inputs, targets)


class DataLoader:
    """Iterate mini-batches of an :class:`ArrayDataset`.

    Parameters
    ----------
    dataset:
        The dataset to iterate.
    batch_size:
        Mini-batch size; the final short batch is kept unless
        ``drop_last``.
    shuffle:
        Reshuffle at the start of every epoch.
    transform:
        Optional callable ``(x_batch, rng) -> x_batch`` applied to each
        input batch (data augmentation).
    seed:
        Seeds both shuffling and the transform's rng stream.
    """

    def __init__(
        self,
        dataset,
        batch_size=32,
        shuffle=True,
        transform=None,
        drop_last=False,
        seed=0,
    ):
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.transform = transform
        self.drop_last = drop_last
        self._rng = np.random.default_rng(seed)

    def __len__(self):
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self):
        n = len(self.dataset)
        order = np.arange(n)
        if self.shuffle:
            self._rng.shuffle(order)
        for start in range(0, n, self.batch_size):
            index = order[start : start + self.batch_size]
            if self.drop_last and len(index) < self.batch_size:
                return
            x, y = self.dataset[index]
            if self.transform is not None:
                x = self.transform(x, self._rng)
            yield x, y
