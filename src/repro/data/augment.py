"""Data augmentation — the paper's CIFAR recipe.

The paper applies "basic data augmentations, such as random crop,
padding, and random horizontal flip on the training set".  These
transforms operate on NCHW numpy batches and take the loader's rng so
an epoch's augmentation stream is reproducible.
"""

import numpy as np


def random_crop(batch, rng, padding=1):
    """Zero-pad by ``padding`` then crop back at a random offset per image."""
    n, c, h, w = batch.shape
    padded = np.pad(
        batch, ((0, 0), (0, 0), (padding, padding), (padding, padding)), mode="constant"
    )
    out = np.empty_like(batch)
    offsets_y = rng.integers(0, 2 * padding + 1, size=n)
    offsets_x = rng.integers(0, 2 * padding + 1, size=n)
    for i in range(n):
        oy, ox = offsets_y[i], offsets_x[i]
        out[i] = padded[i, :, oy : oy + h, ox : ox + w]
    return out

def random_horizontal_flip(batch, rng, p=0.5):
    """Mirror each image left-right with probability ``p``."""
    flip = rng.random(len(batch)) < p
    out = batch.copy()
    out[flip] = out[flip, :, :, ::-1]
    return out


def standard_augment(padding=1, flip_p=0.5):
    """The paper's training-set augmentation as a loader transform."""

    def transform(batch, rng):
        batch = random_crop(batch, rng, padding=padding)
        return random_horizontal_flip(batch, rng, p=flip_p)

    return transform
