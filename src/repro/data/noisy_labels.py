"""Symmetric label noise — the paper's Table 2 protocol (after [16]).

"We uniformly sample a certain proportion (from 20% to 80%, namely
noise ratio) of the training data and replace their labels with a
uniform random sample from all the possible classes."
"""

import numpy as np


def corrupt_symmetric(labels, noise_ratio, num_classes, seed=0):
    """Return ``(noisy_labels, corrupted_mask)``.

    A ``noise_ratio`` fraction of entries is selected uniformly and
    each selected label is replaced by a uniform draw over **all**
    classes (so a corrupted label may coincide with the original —
    exactly the symmetric protocol the paper follows).
    """
    if not 0.0 <= noise_ratio <= 1.0:
        raise ValueError(f"noise_ratio must be in [0, 1], got {noise_ratio}")
    labels = np.asarray(labels, dtype=np.int64)
    rng = np.random.default_rng(seed)
    n = len(labels)
    n_corrupt = int(round(noise_ratio * n))
    chosen = rng.choice(n, size=n_corrupt, replace=False)
    noisy = labels.copy()
    noisy[chosen] = rng.integers(0, num_classes, size=n_corrupt)
    mask = np.zeros(n, dtype=bool)
    mask[chosen] = True
    return noisy, mask


def corrupt_dataset(dataset, noise_ratio, num_classes, seed=0):
    """Return a copy of ``dataset`` with symmetric label noise applied."""
    noisy, mask = corrupt_symmetric(dataset.targets, noise_ratio, num_classes, seed=seed)
    return dataset.with_targets(noisy), mask
