"""``repro.models`` — the architectures evaluated in the HERO paper.

ResNet20 / ResNet18 (He et al.), MobileNetV2 (Sandler et al.) and
VGG-BN (Simonyan & Zisserman) families, plus an MLP for toy tasks,
all width-scalable for CPU-budget experiments.
"""

from .resnet import (
    CifarResNet,
    ImageNetStyleResNet,
    BasicBlock,
    resnet8,
    resnet8_gn,
    resnet18,
    resnet20,
)
from .mobilenetv2 import MobileNetV2, InvertedResidual, ConvBNReLU6, mobilenet_v2
from .vgg import VGG, vgg6_bn, vgg8_bn, CONFIGS
from .mlp import MLP
from .registry import available_models, create_model, register_model

__all__ = [
    "CifarResNet",
    "ImageNetStyleResNet",
    "BasicBlock",
    "resnet8",
    "resnet8_gn",
    "resnet18",
    "resnet20",
    "MobileNetV2",
    "InvertedResidual",
    "ConvBNReLU6",
    "mobilenet_v2",
    "VGG",
    "vgg6_bn",
    "vgg8_bn",
    "CONFIGS",
    "MLP",
    "available_models",
    "create_model",
    "register_model",
]
