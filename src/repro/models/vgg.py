"""VGG with batch normalization (Simonyan & Zisserman [21]).

The paper uses VGG19BN as its large, quantization-sensitive model.
Configurations are the classic channel lists with 'M' for max-pooling;
global average pooling in the head makes the network input-size
agnostic so the same code runs on 8-32 px synthetic images.
"""

import numpy as np

from .. import nn

CONFIGS = {
    # Scaled-down profiles for CPU experiments (pattern preserved:
    # doubling channels, pool between stages).
    "vgg6": (16, "M", 32, "M", 64, 64, "M"),
    "vgg8": (16, 16, "M", 32, 32, "M", 64, 64, "M"),
    # Reference-shaped profiles (full channel plan; expensive on CPU).
    "vgg11": (64, "M", 128, "M", 256, 256, "M", 512, 512, "M", 512, 512, "M"),
    "vgg19": (
        64, 64, "M",
        128, 128, "M",
        256, 256, 256, 256, "M",
        512, 512, 512, 512, "M",
        512, 512, 512, 512, "M",
    ),
}


class VGG(nn.Module):
    """VGG-BN feature extractor + GAP + linear classifier."""

    def __init__(self, config="vgg8", num_classes=10, in_channels=3, width_mult=1.0, rng=None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        if isinstance(config, str):
            if config not in CONFIGS:
                raise KeyError(f"unknown VGG config {config!r}; have {sorted(CONFIGS)}")
            plan = CONFIGS[config]
        else:
            plan = tuple(config)
        self.config = config
        layers = []
        channels = in_channels
        last_conv_channels = None
        for item in plan:
            if item == "M":
                layers.append(nn.MaxPool2d(2, 2))
                continue
            out_channels = max(4, int(round(item * width_mult)))
            layers.append(
                nn.Conv2d(channels, out_channels, 3, padding=1, bias=False, rng=rng)
            )
            layers.append(nn.BatchNorm2d(out_channels))
            layers.append(nn.ReLU())
            channels = out_channels
            last_conv_channels = out_channels
        if last_conv_channels is None:
            raise ValueError("VGG config contains no convolution layers")
        self.features = nn.Sequential(*layers)
        self.pool = nn.GlobalAvgPool2d()
        self.classifier = nn.Linear(last_conv_channels, num_classes, rng=rng)

    def forward(self, x):
        return self.classifier(self.pool(self.features(x)))


def vgg8_bn(num_classes=10, in_channels=3, width_mult=1.0, rng=None):
    """Scaled VGG-BN used as the paper's 'VGG19BN' stand-in."""
    return VGG("vgg8", num_classes, in_channels, width_mult, rng)


def vgg6_bn(num_classes=10, in_channels=3, width_mult=1.0, rng=None):
    """Smallest VGG-BN profile (fast tests)."""
    return VGG("vgg6", num_classes, in_channels, width_mult, rng)
