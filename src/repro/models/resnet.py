"""CIFAR-style residual networks (He et al. [9]).

The paper evaluates ResNet20 (CIFAR) and ResNet18 (ImageNet).  Both are
provided here, parameterized by ``base_width`` so experiments can run
at CPU-friendly scale while exercising the same architecture family:
3x3 conv stem, stacked basic blocks over three (CIFAR) or four
(ImageNet-style) stages, global average pooling, linear classifier.
"""

import numpy as np

from .. import nn


def _make_norm(norm, channels):
    """Normalization factory: ``"batch"`` (paper) or ``"group"``.

    GroupNorm (4 channels per group, capped by the channel count) is
    offered for very small batch regimes where BatchNorm statistics are
    unreliable; it also removes the running-statistics side effects of
    HERO's double forward pass.
    """
    if norm == "batch":
        return nn.BatchNorm2d(channels)
    if norm == "group":
        groups = max(1, channels // 4)
        while channels % groups:
            groups -= 1
        return nn.GroupNorm(groups, channels)
    raise ValueError(f"norm must be 'batch' or 'group', got {norm!r}")


class BasicBlock(nn.Module):
    """Two 3x3 conv-norm pairs with an additive shortcut."""

    expansion = 1

    def __init__(self, in_channels, out_channels, stride=1, rng=None, norm="batch"):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.conv1 = nn.Conv2d(
            in_channels, out_channels, 3, stride=stride, padding=1, bias=False, rng=rng
        )
        self.bn1 = _make_norm(norm, out_channels)
        self.conv2 = nn.Conv2d(
            out_channels, out_channels, 3, stride=1, padding=1, bias=False, rng=rng
        )
        self.bn2 = _make_norm(norm, out_channels)
        if stride != 1 or in_channels != out_channels:
            self.shortcut = nn.Sequential(
                nn.Conv2d(
                    in_channels, out_channels, 1, stride=stride, bias=False, rng=rng
                ),
                _make_norm(norm, out_channels),
            )
        else:
            self.shortcut = nn.Identity()

    def forward(self, x):
        out = self.bn1(self.conv1(x)).relu()
        out = self.bn2(self.conv2(out))
        out = out + self.shortcut(x)
        return out.relu()


class CifarResNet(nn.Module):
    """ResNet for small images: stem + 3 stages + GAP + linear.

    ``depth`` must be ``6n + 2`` (20, 32, 44, ... or 8 for a fast
    variant); ``base_width`` is the stem channel count (16 in the
    paper's ResNet20; smaller for CPU-scale runs).
    """

    def __init__(
        self, depth=20, num_classes=10, in_channels=3, base_width=16, rng=None, norm="batch"
    ):
        super().__init__()
        if (depth - 2) % 6 != 0:
            raise ValueError(f"CifarResNet depth must be 6n+2, got {depth}")
        blocks_per_stage = (depth - 2) // 6
        rng = rng if rng is not None else np.random.default_rng()
        w = base_width
        self.depth = depth
        self.conv1 = nn.Conv2d(in_channels, w, 3, stride=1, padding=1, bias=False, rng=rng)
        self.bn1 = _make_norm(norm, w)
        self.stage1 = self._make_stage(w, w, blocks_per_stage, 1, rng, norm)
        self.stage2 = self._make_stage(w, 2 * w, blocks_per_stage, 2, rng, norm)
        self.stage3 = self._make_stage(2 * w, 4 * w, blocks_per_stage, 2, rng, norm)
        self.pool = nn.GlobalAvgPool2d()
        self.fc = nn.Linear(4 * w, num_classes, rng=rng)

    @staticmethod
    def _make_stage(in_channels, out_channels, blocks, stride, rng, norm="batch"):
        layers = [BasicBlock(in_channels, out_channels, stride, rng=rng, norm=norm)]
        for _ in range(blocks - 1):
            layers.append(BasicBlock(out_channels, out_channels, 1, rng=rng, norm=norm))
        return nn.Sequential(*layers)

    def forward(self, x):
        out = self.bn1(self.conv1(x)).relu()
        out = self.stage1(out)
        out = self.stage2(out)
        out = self.stage3(out)
        return self.fc(self.pool(out))


class ImageNetStyleResNet(nn.Module):
    """ResNet18-style network: 4 stages with channel doubling.

    Scaled for this reproduction's "imagenet-like" synthetic dataset —
    the stem uses a 3x3 convolution (inputs are small), but the stage
    structure matches ResNet18's [2, 2, 2, 2] basic-block layout.
    """

    def __init__(
        self,
        layers=(2, 2, 2, 2),
        num_classes=100,
        in_channels=3,
        base_width=16,
        rng=None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        w = base_width
        self.conv1 = nn.Conv2d(in_channels, w, 3, stride=1, padding=1, bias=False, rng=rng)
        self.bn1 = nn.BatchNorm2d(w)
        self.stage1 = CifarResNet._make_stage(w, w, layers[0], 1, rng)
        self.stage2 = CifarResNet._make_stage(w, 2 * w, layers[1], 2, rng)
        self.stage3 = CifarResNet._make_stage(2 * w, 4 * w, layers[2], 2, rng)
        self.stage4 = CifarResNet._make_stage(4 * w, 8 * w, layers[3], 2, rng)
        self.pool = nn.GlobalAvgPool2d()
        self.fc = nn.Linear(8 * w, num_classes, rng=rng)

    def forward(self, x):
        out = self.bn1(self.conv1(x)).relu()
        out = self.stage1(out)
        out = self.stage2(out)
        out = self.stage3(out)
        out = self.stage4(out)
        return self.fc(self.pool(out))


def resnet20(num_classes=10, in_channels=3, base_width=16, rng=None):
    """The paper's CIFAR ResNet20."""
    return CifarResNet(20, num_classes, in_channels, base_width, rng)


def resnet8(num_classes=10, in_channels=3, base_width=8, rng=None):
    """A 6n+2 = 8 layer variant for fast CPU experiments."""
    return CifarResNet(8, num_classes, in_channels, base_width, rng)


def resnet8_gn(num_classes=10, in_channels=3, base_width=8, rng=None):
    """GroupNorm variant of :func:`resnet8` (batch-size-robust)."""
    return CifarResNet(8, num_classes, in_channels, base_width, rng, norm="group")


def resnet18(num_classes=100, in_channels=3, base_width=16, rng=None):
    """ResNet18-style model (the paper's ImageNet scalability check)."""
    return ImageNetStyleResNet((2, 2, 2, 2), num_classes, in_channels, base_width, rng)
