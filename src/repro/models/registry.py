"""Model registry: name -> factory, used by the experiment harness.

Factories accept ``num_classes``, ``in_channels``, a scale knob and an
``rng``; experiment configs refer to models by these names so the
mapping from the paper's tables to code stays declarative.
"""

import numpy as np

from .mlp import MLP
from .mobilenetv2 import mobilenet_v2
from .resnet import resnet8, resnet8_gn, resnet18, resnet20
from .vgg import vgg6_bn, vgg8_bn


def _mlp_factory(num_classes=2, in_channels=2, scale=1.0, rng=None, image_size=None):
    in_features = in_channels if image_size is None else in_channels * image_size * image_size
    hidden = (int(64 * scale), int(64 * scale))
    return MLP(in_features, hidden=hidden, num_classes=num_classes, rng=rng)


_REGISTRY = {
    "resnet20": lambda num_classes=10, in_channels=3, scale=1.0, rng=None, image_size=None: resnet20(
        num_classes, in_channels, base_width=max(4, int(16 * scale)), rng=rng
    ),
    "resnet8": lambda num_classes=10, in_channels=3, scale=1.0, rng=None, image_size=None: resnet8(
        num_classes, in_channels, base_width=max(4, int(8 * scale)), rng=rng
    ),
    "resnet8_gn": lambda num_classes=10, in_channels=3, scale=1.0, rng=None, image_size=None: resnet8_gn(
        num_classes, in_channels, base_width=max(4, int(8 * scale)), rng=rng
    ),
    "resnet18": lambda num_classes=100, in_channels=3, scale=1.0, rng=None, image_size=None: resnet18(
        num_classes, in_channels, base_width=max(4, int(16 * scale)), rng=rng
    ),
    "mobilenetv2": lambda num_classes=10, in_channels=3, scale=1.0, rng=None, image_size=None: mobilenet_v2(
        num_classes, in_channels, width_mult=scale, rng=rng
    ),
    "vgg8_bn": lambda num_classes=10, in_channels=3, scale=1.0, rng=None, image_size=None: vgg8_bn(
        num_classes, in_channels, width_mult=scale, rng=rng
    ),
    "vgg6_bn": lambda num_classes=10, in_channels=3, scale=1.0, rng=None, image_size=None: vgg6_bn(
        num_classes, in_channels, width_mult=scale, rng=rng
    ),
    "mlp": _mlp_factory,
}


def available_models():
    """Sorted list of registered model names."""
    return sorted(_REGISTRY)


def create_model(name, num_classes, in_channels=3, scale=1.0, seed=None, image_size=None):
    """Instantiate a registered model deterministically.

    Parameters
    ----------
    name:
        Registry key (see :func:`available_models`).
    num_classes, in_channels:
        Task shape.
    scale:
        Width multiplier — 1.0 is the scaled-reference profile used in
        experiments, smaller values for faster tests.
    seed:
        Initialization seed (``None`` for nondeterministic init).
    image_size:
        Needed only by models without global pooling (the MLP).
    """
    if name not in _REGISTRY:
        raise KeyError(f"unknown model {name!r}; available: {available_models()}")
    rng = np.random.default_rng(seed)
    return _REGISTRY[name](
        num_classes=num_classes,
        in_channels=in_channels,
        scale=scale,
        rng=rng,
        image_size=image_size,
    )


def register_model(name, factory):
    """Add a custom factory (used by downstream code and tests)."""
    if name in _REGISTRY:
        raise KeyError(f"model {name!r} already registered")
    _REGISTRY[name] = factory
