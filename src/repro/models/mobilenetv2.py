"""MobileNetV2 (Sandler et al. [20]): inverted residuals, depthwise convs.

The paper highlights MobileNetV2 as the compact model where HERO's
gains are largest (Tables 1-3, Fig. 1).  This implementation keeps the
defining structure — 1x1 expansion, 3x3 depthwise convolution, 1x1
linear projection, residual when shapes allow, ReLU6 activations — with
a width/strides configuration sized for small synthetic images.
"""

import numpy as np

from .. import nn


def _make_divisible(value, divisor=4):
    """Round channel counts to a multiple of ``divisor`` (min: divisor)."""
    return max(divisor, int(round(value / divisor)) * divisor)


class ConvBNReLU6(nn.Module):
    """conv -> BN -> ReLU6, the MobileNet building brick."""

    def __init__(self, in_channels, out_channels, kernel_size=3, stride=1, groups=1, rng=None):
        super().__init__()
        padding = (kernel_size - 1) // 2
        self.conv = nn.Conv2d(
            in_channels,
            out_channels,
            kernel_size,
            stride=stride,
            padding=padding,
            groups=groups,
            bias=False,
            rng=rng,
        )
        self.bn = nn.BatchNorm2d(out_channels)

    def forward(self, x):
        return self.bn(self.conv(x)).clip(0.0, 6.0)


class InvertedResidual(nn.Module):
    """MobileNetV2 block: expand (1x1) -> depthwise (3x3) -> project (1x1)."""

    def __init__(self, in_channels, out_channels, stride, expand_ratio, rng=None):
        super().__init__()
        if stride not in (1, 2):
            raise ValueError(f"stride must be 1 or 2, got {stride}")
        hidden = int(round(in_channels * expand_ratio))
        self.use_residual = stride == 1 and in_channels == out_channels
        layers = []
        if expand_ratio != 1:
            layers.append(ConvBNReLU6(in_channels, hidden, kernel_size=1, rng=rng))
        layers.append(
            ConvBNReLU6(hidden, hidden, kernel_size=3, stride=stride, groups=hidden, rng=rng)
        )
        self.features = nn.Sequential(*layers)
        # Linear bottleneck: no activation after projection.
        self.project = nn.Conv2d(hidden, out_channels, 1, bias=False, rng=rng)
        self.project_bn = nn.BatchNorm2d(out_channels)

    def forward(self, x):
        out = self.project_bn(self.project(self.features(x)))
        if self.use_residual:
            out = out + x
        return out


# (expand_ratio, out_channels, num_blocks, first_stride) per stage.
# The reference network uses 7 stages on 32x32+; this scaled profile
# keeps the stage pattern (t=1 first, t=6 after; two downsamples) at
# CPU-friendly width for 8-16 px synthetic images.
SMALL_SETTINGS = (
    (1, 8, 1, 1),
    (6, 12, 2, 2),
    (6, 16, 2, 2),
    (6, 24, 1, 1),
)

REFERENCE_SETTINGS = (
    (1, 16, 1, 1),
    (6, 24, 2, 1),
    (6, 32, 3, 2),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
)


class MobileNetV2(nn.Module):
    """MobileNetV2 backbone + linear classifier.

    Parameters
    ----------
    num_classes, in_channels:
        Task shape.
    width_mult:
        Multiplies every channel count (rounded to a multiple of 4).
    settings:
        Stage table ``(expand_ratio, channels, blocks, stride)``;
        defaults to the CPU-scaled profile.
    """

    def __init__(
        self,
        num_classes=10,
        in_channels=3,
        width_mult=1.0,
        settings=SMALL_SETTINGS,
        rng=None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        stem_channels = _make_divisible(8 * width_mult)
        self.stem = ConvBNReLU6(in_channels, stem_channels, kernel_size=3, stride=1, rng=rng)
        blocks = []
        channels = stem_channels
        for expand_ratio, out_base, num_blocks, first_stride in settings:
            out_channels = _make_divisible(out_base * width_mult)
            for block_index in range(num_blocks):
                stride = first_stride if block_index == 0 else 1
                blocks.append(
                    InvertedResidual(channels, out_channels, stride, expand_ratio, rng=rng)
                )
                channels = out_channels
        self.blocks = nn.Sequential(*blocks)
        head_channels = _make_divisible(channels * 4)
        self.head = ConvBNReLU6(channels, head_channels, kernel_size=1, rng=rng)
        self.pool = nn.GlobalAvgPool2d()
        self.classifier = nn.Linear(head_channels, num_classes, rng=rng)

    def forward(self, x):
        out = self.stem(x)
        out = self.blocks(out)
        out = self.head(out)
        return self.classifier(self.pool(out))


def mobilenet_v2(num_classes=10, in_channels=3, width_mult=1.0, rng=None):
    """CPU-scaled MobileNetV2 (see ``SMALL_SETTINGS``)."""
    return MobileNetV2(num_classes, in_channels, width_mult, SMALL_SETTINGS, rng)
