"""Multi-layer perceptron — used by quickstart examples and unit tests."""

import numpy as np

from .. import nn


class MLP(nn.Module):
    """Fully-connected classifier with configurable hidden widths.

    Parameters
    ----------
    in_features:
        Input dimensionality (images are flattened by the caller or by
        passing 4-D input, which this module flattens itself).
    hidden:
        Iterable of hidden-layer widths.
    num_classes:
        Output dimensionality.
    activation:
        ``"relu"`` or ``"tanh"``.
    """

    def __init__(self, in_features, hidden=(64, 64), num_classes=2, activation="relu", rng=None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        acts = {"relu": nn.ReLU, "tanh": nn.Tanh}
        if activation not in acts:
            raise KeyError(f"unknown activation {activation!r}")
        layers = []
        width = in_features
        for h in hidden:
            layers.append(nn.Linear(width, h, rng=rng))
            layers.append(acts[activation]())
            width = h
        layers.append(nn.Linear(width, num_classes, rng=rng))
        self.net = nn.Sequential(*layers)
        self.in_features = in_features

    def forward(self, x):
        if x.ndim > 2:
            x = x.reshape(x.shape[0], -1)
        return self.net(x)
