"""The fleet supervisor: a resident worker pool across sweeps.

``run_sweep(scheduler="queue")`` spawns workers, drains one grid and
exits.  :class:`FleetSupervisor` inverts that lifecycle: the *workers*
are the long-lived thing, and sweeps come and go around them.  Each
fleet worker scans every queue under the run cache round-robin —
claiming one task per queue per pass, so a late-enqueued sweep is
served without waiting for an earlier grid to finish — and a
supervisor process watches the pool:

* **Restart** — a worker that dies (SIGKILL, OOM, segfault) is
  detected by its process handle and respawned under a fresh identity;
  its orphaned lease expires and is stolen like any other.  Restarts
  are counted per slot and capped.
* **Quarantine patrol** — terminal ``error`` tasks are retried
  (transient conditions heal under a resident fleet) until the queue's
  ``max_attempts`` is exhausted, then parked in the sticky
  ``quarantined`` state so a poison config stops eating workers.
  This patrol runs *only* under a supervisor; a plain queued sweep
  still contains a deterministic failure exactly once.
* **Observability** — the supervisor maintains
  ``<cache>/service/supervisor.json`` (atomic writes, lock-free
  reads), each worker maintains a heartbeat file, and
  ``queue-status`` assembles the fleet-wide snapshot from those plus
  journal snapshots without taking a single lock.

Everything coordinates through the filesystem, like the queues
themselves: point supervisors on several machines at one shared cache
directory and their pools cooperate through the same journals.  See
``docs/fleet.md``.
"""

import os
import signal
import socket
import sys
import time
import uuid
from multiprocessing import get_context

from ..experiments.scheduler import (
    QUEUE_SUBDIR,
    TaskQueue,
    _worker_log,
    run_claimed_task,
)
from ..io import atomic_write_json, read_json
from ..messages import MessageError, SupervisorStateV1, SupervisorWorkerV1
from ..messages import parse as parse_message
from .heartbeat import DEFAULT_INTERVAL, Heartbeat, service_dir

#: Supervisor state-file schema version.  Single-sourced from
#: :class:`repro.messages.SupervisorStateV1`.
SUPERVISOR_VERSION = SupervisorStateV1.VERSION

#: Restarts per worker slot before the supervisor gives up on it.  A
#: crash loop this deep is an environment problem (bad install, full
#: disk) that fresh processes will not fix; the slot is left down and
#: the state file says so.
DEFAULT_MAX_RESTARTS = 100


def discover_queues(cache_dir, queues=None):
    """Roots of every live queue under ``cache_dir`` (sorted).

    A queue is live once its ``meta.json`` exists.  ``queues``
    optionally restricts to an iterable of queue names — the knob for
    pointing a fleet at a subset of the cache's queues.
    """
    queues_dir = os.path.join(os.path.abspath(cache_dir), QUEUE_SUBDIR)
    if not os.path.isdir(queues_dir):
        return []
    wanted = set(queues) if queues is not None else None
    roots = []
    for name in sorted(os.listdir(queues_dir)):
        if wanted is not None and name not in wanted:
            continue
        root = os.path.join(queues_dir, name)
        if os.path.exists(os.path.join(root, "meta.json")):
            roots.append(root)
    return roots


def fleet_worker_loop(
    cache_dir,
    worker,
    queues=None,
    poll=0.5,
    heartbeat_interval=DEFAULT_INTERVAL,
    callback_factory=None,
    stop_when_drained=False,
    max_seconds=None,
):
    """A resident multi-queue worker; returns tasks executed.

    Unlike :func:`repro.experiments.scheduler.worker_loop` (one queue,
    exit on drain), this loop serves *every* queue under the cache
    round-robin — one claim per queue per pass — and by default never
    exits: a drained cache just means napping ``poll`` seconds until
    the next sweep enqueues work.  ``stop_when_drained`` restores
    drain-and-exit semantics (used by bounded drills);
    ``max_seconds`` is a hard wall-clock safety for both modes.

    SIGTERM (the supervisor's stop signal) triggers a clean exit with
    a final ``exited`` heartbeat; SIGKILL leaves the heartbeat file to
    age into ``dead`` — exactly the signal ``queue-status`` reports.
    """
    heartbeat = Heartbeat(cache_dir, worker, interval=heartbeat_interval)
    heartbeat.beat("idle", force=True)

    def terminate(_signum, _frame):
        heartbeat.close()
        sys.exit(0)

    signal.signal(signal.SIGTERM, terminate)
    started = time.monotonic()
    executed = 0
    logs = {}

    def queue_log(root):
        if root not in logs:
            logs[root] = _worker_log(TaskQueue(root), worker)
        return logs[root][1]

    try:
        while True:
            if max_seconds is not None and time.monotonic() - started >= max_seconds:
                break
            roots = discover_queues(cache_dir, queues)
            claimed_any = False
            all_drained = bool(roots)
            for root in roots:
                queue = TaskQueue(root)
                try:
                    entry = queue.claim(worker)
                except FileNotFoundError:
                    continue  # queue deleted between discovery and claim
                if entry is None:
                    all_drained = all_drained and queue.drained()
                    continue
                claimed_any, all_drained = True, False
                log = queue_log(root)
                stolen = " (stolen)" if entry["attempts"] > 1 else ""
                log(f"claimed {entry['key']} attempt={entry['attempts']}{stolen}")
                heartbeat.beat("running", queue=root, key=entry["key"], force=True)
                run_claimed_task(
                    queue, entry, worker,
                    callback_factory=callback_factory, heartbeat=heartbeat, log=log,
                )
                executed += 1
                heartbeat.tasks_done += 1
                heartbeat.beat("idle", queue=root, force=True)
            if claimed_any:
                continue
            if stop_when_drained and all_drained:
                break
            heartbeat.beat("idle")
            time.sleep(poll)
    except KeyboardInterrupt:
        # Ctrl-C in a foreground `serve` reaches the whole process
        # group; exit as cleanly as the SIGTERM path (the supervisor
        # is tearing the pool down anyway).
        pass
    finally:
        for fh, _log in logs.values():
            fh.close()
        heartbeat.close()
    return executed


def _fleet_worker_main(task):
    """Process entry point for supervised fleet workers (picklable)."""
    (cache_dir, worker, queues, poll, heartbeat_interval, callback_factory,
     stop_when_drained, max_seconds) = task
    return fleet_worker_loop(
        cache_dir,
        worker,
        queues=queues,
        poll=poll,
        heartbeat_interval=heartbeat_interval,
        callback_factory=callback_factory,
        stop_when_drained=stop_when_drained,
        max_seconds=max_seconds,
    )


def read_supervisor_state(cache_dir):
    """The supervisor's last published state, or ``None`` (lock-free).

    The state file is advisory observability, not coordination state,
    so a file this build cannot parse (torn write, foreign version)
    degrades to ``None`` — the same as no supervisor — rather than
    failing the whole status snapshot.
    """
    raw = read_json(os.path.join(service_dir(cache_dir), "supervisor.json"))
    try:
        return parse_message("service.supervisor_state", raw).to_dict()
    except MessageError:
        return None


class FleetSupervisor:
    """Keep ``workers`` fleet workers alive over the queues of a cache dir.

    The supervisor is deliberately boring: spawn, watch, respawn,
    patrol, publish state.  All sweep semantics (leases, stealing,
    parity) live in the queue layer; all the supervisor adds is that
    worker processes stop being precious.

    Parameters mirror the ``serve`` CLI verb.  ``mp_context`` defaults
    to ``spawn`` like the sweep engine (fork is available for tests);
    ``patrol=False`` disables the error-retry/quarantine pass;
    ``queues`` restricts the fleet to named queues.
    """

    def __init__(
        self,
        cache_dir,
        workers=2,
        poll=0.25,
        worker_poll=0.25,
        heartbeat_interval=DEFAULT_INTERVAL,
        queues=None,
        mp_context="spawn",
        max_restarts=DEFAULT_MAX_RESTARTS,
        callback_factory=None,
        patrol=True,
        clock=time.time,
    ):
        self.cache_dir = os.path.abspath(cache_dir)
        self.workers = max(1, int(workers))
        self.poll = poll
        self.worker_poll = worker_poll
        self.heartbeat_interval = heartbeat_interval
        self.queues = list(queues) if queues is not None else None
        self.ctx = get_context(mp_context)
        self.max_restarts = max_restarts
        self.callback_factory = callback_factory
        self.patrol_enabled = patrol
        self.clock = clock
        self.slots = []
        self.started_at = None
        self.quarantined_total = 0
        self.retried_total = 0
        self._log_fh = None

    # -- bookkeeping ---------------------------------------------------
    @property
    def state_path(self):
        return os.path.join(service_dir(self.cache_dir), "supervisor.json")

    @property
    def log_path(self):
        return os.path.join(service_dir(self.cache_dir), "supervisor.log")

    def log(self, message):
        if self._log_fh is None:
            os.makedirs(service_dir(self.cache_dir), exist_ok=True)
            self._log_fh = open(self.log_path, "a", buffering=1)
        self._log_fh.write(f"{time.strftime('%H:%M:%S')} [supervisor] {message}\n")

    def write_state(self, status="running"):
        """Publish the supervisor's view atomically (lock-free reads)."""
        atomic_write_json(
            self.state_path,
            SupervisorStateV1(
                pid=os.getpid(),
                host=socket.gethostname(),
                status=status,
                started_at=self.started_at,
                updated_at=self.clock(),
                poll=self.poll,
                queues=self.queues,
                retried_total=self.retried_total,
                quarantined_total=self.quarantined_total,
                restarts_total=sum(slot["restarts"] for slot in self.slots),
                workers=[
                    SupervisorWorkerV1(
                        slot=slot["name"],
                        worker=slot["worker"],
                        pid=slot["proc"].pid if slot["proc"] is not None else None,
                        alive=slot["proc"] is not None and slot["proc"].is_alive(),
                        restarts=slot["restarts"],
                        spawned_at=slot["spawned_at"],
                    )
                    for slot in self.slots
                ],
            ).to_dict(),
        )

    # -- lifecycle -----------------------------------------------------
    def _spawn(self, slot):
        """(Re)start one slot's worker under a fresh identity.

        The identity embeds the slot name, the restart generation and
        a nonce, so a respawn can never be mistaken for the lease
        holder it replaces (pid reuse included) and every generation
        gets its own heartbeat file and per-queue log.
        """
        slot["worker"] = (
            f"{slot['name']}-r{slot['restarts']}-{uuid.uuid4().hex[:8]}"
            f"@{socket.gethostname()}"
        )
        proc = self.ctx.Process(
            target=_fleet_worker_main,
            args=(
                (
                    self.cache_dir,
                    slot["worker"],
                    self.queues,
                    self.worker_poll,
                    self.heartbeat_interval,
                    self.callback_factory,
                    False,
                    None,
                ),
            ),
            daemon=False,
        )
        proc.start()
        slot["proc"] = proc
        slot["spawned_at"] = self.clock()
        self.log(f"spawned {slot['name']} as {slot['worker']} (pid {proc.pid})")

    def start(self):
        """Spawn the pool and publish the first state snapshot."""
        if self.slots:
            raise RuntimeError("supervisor already started")
        self.started_at = self.clock()
        for index in range(self.workers):
            slot = {
                "name": f"fleet-{index}",
                "worker": None,
                "proc": None,
                "restarts": 0,
                "spawned_at": None,
            }
            self.slots.append(slot)
            self._spawn(slot)
        self.write_state()
        return self

    def monitor_once(self):
        """One supervision pass: restart dead workers, patrol, publish.

        Returns ``{"restarted": [...], "retried": [...],
        "quarantined": [...]}`` for callers (tests, benchmarks) that
        want to observe what the pass did.
        """
        restarted = []
        for slot in self.slots:
            proc = slot["proc"]
            if proc is None or proc.is_alive():
                continue
            exitcode = proc.exitcode
            proc.join()
            if slot["restarts"] >= self.max_restarts:
                self.log(
                    f"{slot['name']} died (exit {exitcode}) after "
                    f"{slot['restarts']} restart(s); giving up on this slot"
                )
                slot["proc"] = None
                continue
            slot["restarts"] += 1
            self.log(
                f"{slot['name']} ({slot['worker']}) died with exit {exitcode}; "
                f"restarting (restart #{slot['restarts']})"
            )
            self._spawn(slot)
            restarted.append(slot["name"])
        retried, quarantined = self.patrol() if self.patrol_enabled else ([], [])
        self.write_state()
        return {"restarted": restarted, "retried": retried, "quarantined": quarantined}

    def patrol(self):
        """Retry or quarantine ``error`` tasks across every served queue."""
        retried_all, quarantined_all = [], []
        for root in discover_queues(self.cache_dir, self.queues):
            retried, quarantined = TaskQueue(root).retry_errors()
            for key in retried:
                self.log(f"retrying error task {key} in {os.path.basename(root)}")
            for key in quarantined:
                self.log(f"quarantined poison task {key} in {os.path.basename(root)}")
            retried_all += retried
            quarantined_all += quarantined
        self.retried_total += len(retried_all)
        self.quarantined_total += len(quarantined_all)
        return retried_all, quarantined_all

    def queues_drained(self):
        """True when every served queue is terminal (vacuously if none)."""
        return all(TaskQueue(root).drained() for root in discover_queues(self.cache_dir, self.queues))

    def serve(self, until_drained=False, max_seconds=None):
        """Supervise until stopped; the resident-service main loop.

        ``until_drained=True`` turns the service into a bounded drill:
        it exits (and stops the pool) once every queue is terminal —
        the mode CI's fleet drill and the benchmarks use.
        ``max_seconds`` bounds either mode.  The pool is always
        stopped on the way out, including on KeyboardInterrupt.
        """
        if not self.slots:
            self.start()
        started = time.monotonic()
        try:
            while True:
                self.monitor_once()
                if until_drained and self.queues_drained():
                    self.log("all queues drained; stopping")
                    break
                if max_seconds is not None and time.monotonic() - started >= max_seconds:
                    self.log(f"max_seconds={max_seconds} reached; stopping")
                    break
                time.sleep(self.poll)
        finally:
            self.stop()

    def stop(self):
        """Terminate the pool (SIGTERM, then SIGKILL) and publish ``stopped``."""
        for slot in self.slots:
            proc = slot["proc"]
            if proc is None:
                continue
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=10)
                if proc.is_alive():  # pragma: no cover - wedged worker
                    proc.kill()
                    proc.join()
            else:
                proc.join()
        self.write_state(status="stopped")
        self.log("stopped")
        if self._log_fh is not None:
            self._log_fh.close()
            self._log_fh = None
