"""``repro.service`` — the long-lived sweep fleet.

PR 4's queue scheduler made sweeps durable; this package makes the
*workers* durable.  A :class:`FleetSupervisor` keeps a pool of
multi-queue workers resident across sweeps: it restarts workers that
die, retries-then-quarantines tasks that keep erroring, and publishes
a machine-readable health snapshot (``queue-status``) assembled
entirely from lock-free reads — heartbeat files, journal snapshots and
the supervisor's own state file, all written atomically so observers
never block a worker.

Layering: ``service`` sits *above* ``experiments`` (it drives
``TaskQueue``/``execute_record``); nothing below imports it except the
deliberately thin heartbeat hook ``worker_loop`` takes as a parameter.
See ``docs/fleet.md`` for the lifecycle and the snapshot schema.
"""

from .heartbeat import (
    HEARTBEAT_VERSION,
    Heartbeat,
    heartbeat_dir,
    liveness,
    read_heartbeats,
    service_dir,
)
from .status import STATUS_VERSION, build_status, format_status
from .supervisor import (
    SUPERVISOR_VERSION,
    FleetSupervisor,
    discover_queues,
    fleet_worker_loop,
    read_supervisor_state,
)

__all__ = [
    "HEARTBEAT_VERSION",
    "Heartbeat",
    "heartbeat_dir",
    "liveness",
    "read_heartbeats",
    "service_dir",
    "STATUS_VERSION",
    "build_status",
    "format_status",
    "SUPERVISOR_VERSION",
    "FleetSupervisor",
    "discover_queues",
    "fleet_worker_loop",
    "read_supervisor_state",
]
