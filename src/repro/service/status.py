"""``queue-status``: the fleet's health snapshot, from lock-free reads.

:func:`build_status` assembles one versioned JSON document describing
everything observable about a run cache's fleet — the supervisor's
last published state, every worker heartbeat (classified by age),
every queue's journal counts, throughput and ETA — without taking a
single lock.  All inputs are written atomically by their owners
(journal entries, heartbeat files, ``supervisor.json``), so the
snapshot is a consistent *per-file* view that can be taken while
workers run at full speed; it never blocks them and they never block
it.  The document's shape is pinned by ``STATUS_VERSION`` and the
schema tests, so dashboards and CI can parse it without tracking this
codebase commit-by-commit.
"""

import os
import time

from ..experiments.scheduler import (
    DONE,
    ERROR,
    LEASED,
    PENDING,
    QUARANTINED,
    TaskQueue,
)
from ..messages import StatusSnapshotV1
from .heartbeat import liveness, read_heartbeats
from .supervisor import discover_queues, read_supervisor_state

#: ``queue-status`` snapshot schema version.  Bump on any change to
#: the document's shape; consumers should check it before parsing.
#: Single-sourced from :class:`repro.messages.StatusSnapshotV1`, whose
#: golden vectors pin the exact emitted bytes.
STATUS_VERSION = StatusSnapshotV1.VERSION

#: Trailing window (seconds) over which queue throughput is measured.
THROUGHPUT_WINDOW = 300.0

#: A supervisor whose state file has not moved in this many of its own
#: poll intervals is reported ``dead`` (it publishes every pass).
SUPERVISOR_DEAD_INTERVALS = 20.0


def _queue_status(root, now, window):
    """One queue's section of the snapshot (lock-free)."""
    queue = TaskQueue(root)
    try:
        meta = queue.meta
    except FileNotFoundError:  # deleted between discovery and read
        return None
    snapshot = queue.snapshot()
    counts = queue.counts(snapshot)
    remaining = counts[PENDING] + counts[LEASED]

    recent_done = 0
    seconds, finished = [], []
    for entry in snapshot.values():
        if entry["status"] != DONE:
            continue
        if entry["finished_at"] is not None:
            finished.append(entry["finished_at"])
            if now - entry["finished_at"] <= window:
                recent_done += 1
        record = entry.get("record") or {}
        if record.get("seconds") is not None:
            seconds.append(record["seconds"])

    # Throughput over the trailing window; when the window is empty but
    # the queue has history, fall back to lifetime throughput so a
    # just-resumed queue still gets an ETA.
    throughput = recent_done / window if recent_done else 0.0
    if not throughput and finished:
        span = max(finished) - min(e["enqueued_at"] for e in snapshot.values())
        if span > 0:
            throughput = len(finished) / span
    if throughput:
        eta = remaining / throughput
    elif seconds and remaining:
        # No completions yet this session: serial bound from the mean
        # task duration (pessimistic — ignores fleet parallelism).
        eta = remaining * sum(seconds) / len(seconds)
    else:
        eta = None

    return {
        "name": os.path.basename(root),
        "root": root,
        "lease_timeout": meta["lease_timeout"],
        "max_attempts": meta["max_attempts"],
        "counts": counts,
        "total": sum(counts[s] for s in (PENDING, LEASED, DONE, ERROR, QUARANTINED)),
        "remaining": remaining,
        "throughput_per_s": round(throughput, 6),
        "eta_seconds": round(eta, 3) if eta is not None else None,
        "leased_to": sorted(
            e["worker"] for e in snapshot.values()
            if e["status"] == LEASED and e["worker"]
        ),
    }


def _supervisor_status(cache_dir, now):
    state = read_supervisor_state(cache_dir)
    if state is None:
        return None
    age = now - state.get("updated_at", 0.0)
    if state.get("status") == "stopped":
        live = "stopped"
    elif age <= SUPERVISOR_DEAD_INTERVALS * max(state.get("poll") or 0.25, 0.25):
        live = "alive"
    else:
        live = "dead"
    return dict(state, liveness=live, age_seconds=round(age, 3))


def build_status(cache_dir, queues=None, clock=time.time, window=THROUGHPUT_WINDOW):
    """The versioned fleet snapshot for ``cache_dir`` (lock-free).

    The document (schema v1)::

        {"version": 1, "generated_at": ..., "cache_dir": ...,
         "supervisor": {... supervisor.json + "liveness", "age_seconds"} | null,
         "workers": [{... heartbeat + "liveness", "age_seconds"}],
         "queues": [{"name", "root", "lease_timeout", "max_attempts",
                     "counts": {state: n, "stolen": n}, "total",
                     "remaining", "throughput_per_s", "eta_seconds",
                     "leased_to": [worker, ...]}],
         "totals": {state: n, "stolen": n, "tasks": n, "queues": n,
                    "workers_alive": n}}

    ``queues`` restricts to named queues; ``clock``/``window`` are
    injectable for tests and benchmarks.
    """
    now = clock()
    cache_dir = os.path.abspath(cache_dir)
    queue_sections = []
    for root in discover_queues(cache_dir, queues):
        section = _queue_status(root, now, window)
        if section is not None:
            queue_sections.append(section)

    workers = [
        dict(
            entry,
            liveness=liveness(entry, now),
            # An unreadable placeholder has no beat to age (see
            # heartbeat.read_heartbeats); its age is unknowable.
            age_seconds=(
                round(now - entry["beat_at"], 3)
                if entry.get("beat_at") is not None
                else None
            ),
        )
        for entry in read_heartbeats(cache_dir)
    ]

    totals = {PENDING: 0, LEASED: 0, DONE: 0, ERROR: 0, QUARANTINED: 0, "stolen": 0}
    for section in queue_sections:
        for state in totals:
            totals[state] += section["counts"][state]
    totals["tasks"] = sum(section["total"] for section in queue_sections)
    totals["queues"] = len(queue_sections)
    totals["workers_alive"] = sum(1 for w in workers if w["liveness"] == "alive")

    document = {
        "version": STATUS_VERSION,
        "generated_at": now,
        "cache_dir": cache_dir,
        "supervisor": _supervisor_status(cache_dir, now),
        "workers": workers,
        "queues": queue_sections,
        "totals": totals,
    }
    # Serialize-at-write validation: the snapshot is this build's
    # outward contract (dashboards parse it), so an ill-formed document
    # fails here, in the producer, not in a consumer.  The round-trip
    # is byte-identity — the golden vectors pin that.
    return StatusSnapshotV1.from_dict(document).to_dict()


def format_status(status):
    """Human rendering of a :func:`build_status` document."""
    lines = [f"fleet status for {status['cache_dir']}"]
    sup = status["supervisor"]
    if sup is None:
        lines.append("supervisor: none")
    else:
        alive = sum(1 for w in sup["workers"] if w["alive"])
        lines.append(
            f"supervisor: {sup['liveness']} (pid {sup['pid']} on {sup['host']}, "
            f"{alive}/{len(sup['workers'])} workers up, "
            f"{sup.get('restarts_total', 0)} restart(s), "
            f"{sup['quarantined_total']} quarantined)"
        )
    for worker in status["workers"]:
        task = f" on {worker['key']}" if worker.get("key") else ""
        beat = (
            f"beat {worker['age_seconds']:.1f}s ago"
            if worker["age_seconds"] is not None
            else "beat unreadable"
        )
        lines.append(
            f"  worker {worker['worker']}: {worker['liveness']} "
            f"({worker['state']}{task}, {worker['tasks_done']} task(s) done, "
            f"{beat})"
        )
    if not status["queues"]:
        lines.append("queues: none")
    for section in status["queues"]:
        counts = section["counts"]
        eta = (
            f", eta {section['eta_seconds']:.0f}s"
            if section["eta_seconds"] is not None and section["remaining"]
            else ""
        )
        lines.append(
            f"  queue {section['name']}: {section['total']} task(s) — "
            f"{counts[DONE]} done, {counts[ERROR]} error, "
            f"{counts[QUARANTINED]} quarantined, {counts[LEASED]} leased, "
            f"{counts[PENDING]} pending, {counts['stolen']} stolen"
            f"{eta}"
        )
    totals = status["totals"]
    lines.append(
        f"totals: {totals['tasks']} task(s) across {totals['queues']} queue(s), "
        f"{totals['workers_alive']} worker(s) alive"
    )
    return "\n".join(lines)
