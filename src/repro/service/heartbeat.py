"""Worker heartbeats: tiny atomic JSON files proving liveness.

Every fleet (and queue) worker owns one file under
``<cache>/service/heartbeats/<worker>.json``, rewritten atomically at
a bounded cadence — on claim/finish transitions, and between trainer
steps via :class:`repro.experiments.scheduler.StepLeaseRenewal`.  The
file *is* the worker's externally visible state: ``queue-status``
derives per-worker liveness purely from heartbeat ages, so a SIGKILLed
worker needs no shutdown path at all — its file simply stops moving
and ages into ``stale`` then ``dead``.

Writes go through :func:`repro.io.atomic_write_json` and reads through
:func:`repro.io.read_json`, so observers never see a torn file and
never take a lock (a heartbeat that blocked on observation would be
measuring the observer, not the worker).
"""

import os
import socket
import time

from ..io import atomic_write_json, read_json
from ..messages import HeartbeatV1, MessageError
from ..messages import parse as parse_message

#: Heartbeat file schema version (independent of the journal schema —
#: heartbeats are advisory observability, not coordination state).
#: Single-sourced from :class:`repro.messages.HeartbeatV1`.
HEARTBEAT_VERSION = HeartbeatV1.VERSION

#: Default seconds between heartbeat rewrites.  Between-step beats are
#: throttled to this, so even a smoke run at hundreds of steps/second
#: costs one small atomic write per interval.
DEFAULT_INTERVAL = 2.0

#: Liveness classification thresholds, in heartbeat intervals.  A
#: worker is ``alive`` within 3 intervals (one write may always be in
#: flight, plus filesystem latency), ``stale`` within 10 (probably
#: wedged, possibly a long uninstrumented section), ``dead`` beyond.
ALIVE_INTERVALS = 3.0
STALE_INTERVALS = 10.0


def service_dir(cache_dir):
    """Directory holding all fleet-service state under a run cache."""
    return os.path.join(os.path.abspath(cache_dir), "service")


def heartbeat_dir(cache_dir):
    return os.path.join(service_dir(cache_dir), "heartbeats")


def _safe_name(worker):
    return "".join(c if c.isalnum() or c in "._-" else "_" for c in worker)


class Heartbeat:
    """One worker's heartbeat file, rewritten at a bounded cadence.

    ``beat(state, ...)`` is cheap to call arbitrarily often: it writes
    only when ``interval`` has elapsed, the state/key changed, or the
    caller forces it (claim/finish edges, where freshness matters more
    than write amortization).
    """

    def __init__(self, cache_dir, worker, interval=DEFAULT_INTERVAL, clock=time.time):
        self.worker = worker
        self.interval = interval
        self.clock = clock
        self.path = os.path.join(heartbeat_dir(cache_dir), _safe_name(worker) + ".json")
        self.started_at = clock()
        self.tasks_done = 0
        self._wrote_at = None
        self._state = None
        self._key = None

    def beat(self, state, queue=None, key=None, force=False):
        """Record ``state`` (``idle``/``running``/``exited``) if due."""
        now = self.clock()
        due = self._wrote_at is None or now - self._wrote_at >= self.interval
        changed = state != self._state or key != self._key
        if not (due or changed or force):
            return False
        atomic_write_json(
            self.path,
            HeartbeatV1(
                worker=self.worker,
                pid=os.getpid(),
                host=socket.gethostname(),
                state=state,
                queue=os.path.basename(queue) if queue else None,
                key=key,
                tasks_done=self.tasks_done,
                interval=self.interval,
                started_at=self.started_at,
                beat_at=now,
            ).to_dict(),
        )
        self._wrote_at = now
        self._state = state
        self._key = key
        return True

    def close(self):
        """Final ``exited`` beat — a clean shutdown, not a death."""
        self.beat("exited", force=True)


def _unreadable_entry(worker):
    """Placeholder for a heartbeat file that exists but cannot be parsed.

    A zero-byte or truncated file (a torn write, a worker killed
    mid-``rename``) or bytes the message layer rejects must not crash
    the supervisor patrol — and must not *vanish* from ``queue-status``
    either, because a file that exists proves a worker existed.  The
    placeholder carries the synthetic ``unreadable`` state and no
    ``beat_at``, which :func:`liveness` classifies as ``stale``.
    """
    return {
        "version": HEARTBEAT_VERSION,
        "worker": worker,
        "pid": None,
        "host": None,
        "state": "unreadable",
        "queue": None,
        "key": None,
        "tasks_done": 0,
        "interval": None,
        "started_at": None,
        "beat_at": None,
    }


def read_heartbeats(cache_dir):
    """Every heartbeat on disk, sorted by worker name (lock-free).

    Each file passes through the message layer; one that cannot be
    parsed — empty, truncated, or a version this build does not speak —
    is surfaced as an ``unreadable`` placeholder rather than silently
    skipped or allowed to raise into the observer.
    """
    directory = heartbeat_dir(cache_dir)
    if not os.path.isdir(directory):
        return []
    beats = []
    for name in sorted(os.listdir(directory)):
        if not name.endswith(".json"):
            continue
        raw = read_json(os.path.join(directory, name))
        try:
            beats.append(parse_message("service.heartbeat", raw).to_dict())
        except MessageError:
            beats.append(_unreadable_entry(name[: -len(".json")]))
    return beats


def liveness(entry, now):
    """Classify a heartbeat: ``alive`` / ``stale`` / ``dead`` / ``exited``.

    Ages are measured against the *writer's* declared interval, so a
    deliberately slow-beating worker is not misread as stale by an
    observer configured differently.  An ``unreadable`` placeholder
    (see :func:`read_heartbeats`) has no beat to age, so it is
    ``stale`` by definition: evidence of a worker, no proof of life.
    """
    if entry.get("state") == "exited":
        return "exited"
    if entry.get("state") == "unreadable" or entry.get("beat_at") is None:
        return "stale"
    interval = entry.get("interval") or DEFAULT_INTERVAL
    age = now - entry.get("beat_at", 0.0)
    if age <= ALIVE_INTERVALS * interval:
        return "alive"
    if age <= STALE_INTERVALS * interval:
        return "stale"
    return "dead"
