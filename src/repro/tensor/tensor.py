"""The :class:`Tensor` — a numpy-backed array with reverse-mode autograd.

The design follows the PyTorch model closely:

* tensors created by operations keep a pointer (``_ctx``) to the
  :class:`~repro.tensor.function.Function` that produced them;
* ``backward()`` runs a reverse topological traversal accumulating
  vector-Jacobian products;
* ``backward(create_graph=True)`` builds the backward pass itself as a
  differentiable graph, enabling Hessian-vector products and the
  double-backpropagation HERO requires.

First-order ``backward()`` (``create_graph=False``) takes a raw fast
path: each op's ``backward_raw`` rule runs on plain numpy arrays — no
Tensor wrapping, no graph bookkeeping — and gradient accumulation is
performed in place (``np.add(..., out=)``) into arrays the traversal
itself allocated.  The raw path executes the same floating-point
operations in the same order as the graph path, so gradients are
bit-identical between the two (pinned by the parity tests).
"""

import numpy as np

from ._gradmode import no_grad, enable_grad
from . import function
from .function import as_array
from .policy import resolve_dtype


class Tensor:
    """A multi-dimensional array supporting reverse-mode differentiation.

    Parameters
    ----------
    data:
        Anything convertible to a ``numpy.ndarray``.  Stored in the
        engine dtype set by the precision policy
        (:mod:`repro.tensor.policy`; float32 unless overridden) — pass
        ``dtype`` to pin a tensor to another precision, e.g. float64
        for verification-grade numerics.
    requires_grad:
        When ``True`` the tensor is a graph leaf that accumulates into
        ``.grad`` during ``backward()``.
    dtype:
        Optional explicit dtype; ``None`` follows the policy.
    """

    __slots__ = ("data", "requires_grad", "grad", "_ctx", "_grad_owned")

    def __init__(self, data, requires_grad=False, dtype=None):
        self.data = as_array(data, dtype=dtype)
        self.requires_grad = bool(requires_grad)
        self.grad = None
        self._ctx = None
        # True when `.grad`'s buffer was allocated by the autograd
        # accumulator itself (safe to np.add(..., out=) into); False for
        # externally assigned gradients, which are never mutated.
        self._grad_owned = False

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def as_tensor(value):
        """Return ``value`` if it is a Tensor, else wrap it (no grad)."""
        if isinstance(value, Tensor):
            return value
        return Tensor(value)

    @staticmethod
    def zeros(*shape, requires_grad=False, dtype=None):
        dtype = resolve_dtype(dtype)
        return Tensor(np.zeros(shape, dtype=dtype), requires_grad=requires_grad, dtype=dtype)

    @staticmethod
    def ones(*shape, requires_grad=False, dtype=None):
        dtype = resolve_dtype(dtype)
        return Tensor(np.ones(shape, dtype=dtype), requires_grad=requires_grad, dtype=dtype)

    @staticmethod
    def full(shape, fill_value, requires_grad=False, dtype=None):
        dtype = resolve_dtype(dtype)
        return Tensor(
            np.full(shape, fill_value, dtype=dtype), requires_grad=requires_grad, dtype=dtype
        )

    @staticmethod
    def eye(n, requires_grad=False, dtype=None):
        dtype = resolve_dtype(dtype)
        return Tensor(np.eye(n, dtype=dtype), requires_grad=requires_grad, dtype=dtype)

    @staticmethod
    def randn(*shape, rng=None, requires_grad=False, dtype=None):
        rng = rng if rng is not None else np.random.default_rng()
        # Draw in float64 then cast: the sample stream is identical for
        # every engine dtype, so float32/float64 runs stay comparable.
        dtype = resolve_dtype(dtype)
        data = rng.standard_normal(shape).astype(dtype, copy=False)
        return Tensor(data, requires_grad=requires_grad, dtype=dtype)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self):
        return self.data.shape

    @property
    def ndim(self):
        return self.data.ndim

    @property
    def size(self):
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self):
        return self.transpose()

    def __len__(self):
        return len(self.data)

    def __repr__(self):
        grad_note = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array_repr(self.data)}{grad_note})"

    def numpy(self):
        """Return the underlying numpy array (shared, not copied)."""
        return self.data

    def item(self):
        """Return the scalar value of a one-element tensor."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else self._raise_item()

    def _raise_item(self):
        raise ValueError(f"item() called on tensor with {self.data.size} elements")

    # ------------------------------------------------------------------
    # Graph manipulation
    # ------------------------------------------------------------------
    def detach(self):
        """Return a new tensor sharing data but cut from the graph."""
        out = Tensor(self.data, requires_grad=False, dtype=self.data.dtype)
        return out

    def clone(self):
        """Return a differentiable copy of this tensor."""
        return ops_shape.Reshape.apply(self, shape=self.shape)

    def copy_data(self):
        """Return a detached tensor with a *copied* numpy buffer."""
        return Tensor(self.data.copy(), requires_grad=False, dtype=self.data.dtype)

    def zero_grad(self):
        self.grad = None
        self._grad_owned = False

    # ------------------------------------------------------------------
    # Backward
    # ------------------------------------------------------------------
    def backward(self, grad=None, create_graph=False):
        """Accumulate gradients of this tensor w.r.t. graph leaves.

        Parameters
        ----------
        grad:
            Upstream gradient.  Defaults to ``1`` for scalar tensors.
        create_graph:
            When ``True`` the backward computation is itself recorded,
            so the resulting ``.grad`` tensors are differentiable (used
            for Hessian-vector products and HERO's Eq. 16/17).  When
            ``False`` the raw fast path runs instead (bit-identical
            gradients, no graph, in-place accumulation).
        """
        if not self.requires_grad and self._ctx is None:
            raise RuntimeError("backward() on a tensor that does not require grad")
        if not create_graph:
            self._backward_raw(grad)
            return
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar backward()")
            grad = Tensor(np.ones_like(self.data), dtype=self.data.dtype)
        else:
            grad = Tensor.as_tensor(grad)

        topo = self._topological_order()
        grads = {id(self): grad}

        with enable_grad():
            for node in topo:
                node_grad = grads.pop(id(node), None)
                if node_grad is None:
                    continue
                if node.requires_grad and node._ctx is None:
                    # Leaf: accumulate into .grad.  Graph-valued grads
                    # never reuse an existing buffer — HVPs and HERO's
                    # double backprop need the full history.
                    if node.grad is None:
                        node.grad = node_grad
                    else:
                        node.grad = node.grad + node_grad
                    node._grad_owned = False
                    continue
                ctx = node._ctx
                if ctx is None:
                    continue
                input_grads = ctx.backward(node_grad)
                if not isinstance(input_grads, tuple):
                    input_grads = (input_grads,)
                if len(input_grads) != len(ctx.inputs):
                    raise RuntimeError(
                        f"{type(ctx).__name__}.backward returned "
                        f"{len(input_grads)} grads for {len(ctx.inputs)} inputs"
                    )
                for parent, parent_grad in zip(ctx.inputs, input_grads):
                    if parent_grad is None:
                        continue
                    if not (parent.requires_grad or parent._ctx is not None):
                        continue
                    existing = grads.get(id(parent))
                    grads[id(parent)] = (
                        parent_grad if existing is None else existing + parent_grad
                    )

    def _backward_raw(self, grad):
        """First-order backward on raw numpy arrays (no graph, no Tensors).

        Runs each op's ``backward_raw`` rule and accumulates with
        in-place ``np.add(..., out=)`` wherever the destination buffer
        is one this traversal allocated itself.  Ops may hand back the
        *same* array for several parents (e.g. ``Add`` without
        broadcasting) or a view of the upstream gradient, so in-place
        accumulation is gated on ownership: only arrays created by the
        ``existing + new`` allocation below are ever mutated.  The
        float ops and their order match the graph path exactly, so the
        results are bit-identical.
        """
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar backward()")
            seed = np.ones_like(self.data)
        elif isinstance(grad, Tensor):
            seed = grad.data
        else:
            seed = as_array(grad)

        topo = self._topological_order()
        grads = {id(self): seed}
        # node-id -> accumulation buffer allocated *for that node*.  An
        # array may be mutated in place only while it is the buffer of
        # the node being accumulated: ops can hand the same array to
        # several parents (``Add`` without broadcasting) or pass the
        # upstream gradient through (``Pow(p=1)``), so an identity
        # check against anything broader would corrupt aliases.
        owner = {}

        with no_grad():
            for node in topo:
                node_grad = grads.pop(id(node), None)
                if node_grad is None:
                    continue
                if type(node_grad) is not np.ndarray:
                    # Ufuncs on 0-d operands return numpy scalars; the
                    # raw rules below assume ndarray methods.
                    node_grad = np.asarray(node_grad)
                if node.requires_grad and node._ctx is None:
                    # Leaf: accumulate into .grad, in place when the
                    # existing buffer is accumulator-owned (satellite
                    # fix: no `grad + g` allocation per accumulation).
                    existing = node.grad
                    if existing is None:
                        leaf = Tensor.__new__(Tensor)
                        leaf.data = node_grad
                        leaf.requires_grad = False
                        leaf.grad = None
                        leaf._ctx = None
                        leaf._grad_owned = False
                        node.grad = leaf
                        node._grad_owned = owner.get(id(node)) is node_grad
                    else:
                        data = existing.data
                        if (
                            node._grad_owned
                            and data.dtype == node_grad.dtype
                            and data.shape == node_grad.shape
                        ):
                            np.add(data, node_grad, out=data)
                        else:
                            leaf = Tensor.__new__(Tensor)
                            leaf.data = np.asarray(data + node_grad)
                            leaf.requires_grad = False
                            leaf.grad = None
                            leaf._ctx = None
                            leaf._grad_owned = False
                            node.grad = leaf
                            node._grad_owned = True
                    continue
                ctx = node._ctx
                if ctx is None:
                    continue
                input_grads = ctx.backward_raw(node_grad)
                if len(input_grads) != len(ctx.inputs):
                    raise RuntimeError(
                        f"{type(ctx).__name__}.backward returned "
                        f"{len(input_grads)} grads for {len(ctx.inputs)} inputs"
                    )
                for parent, parent_grad in zip(ctx.inputs, input_grads):
                    if parent_grad is None:
                        continue
                    if not (parent.requires_grad or parent._ctx is not None):
                        continue
                    pid = id(parent)
                    existing = grads.get(pid)
                    if existing is None:
                        grads[pid] = parent_grad
                    elif (
                        owner.get(pid) is existing
                        and existing.dtype == parent_grad.dtype
                        and existing.shape == parent_grad.shape
                    ):
                        np.add(existing, parent_grad, out=existing)
                    else:
                        # asarray: ufuncs on 0-d operands hand back
                        # numpy scalars, which cannot be an `out=`
                        # target on the next accumulation.
                        total = np.asarray(existing + parent_grad)
                        grads[pid] = total
                        owner[pid] = total

    def _topological_order(self):
        """Return graph nodes in reverse-dependency order (self first)."""
        order = []
        visited = set()
        # Iterative DFS to avoid recursion limits on deep graphs
        # (double backprop through a CNN easily exceeds 1000 frames).
        stack = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            if node._ctx is not None:
                for parent in node._ctx.inputs:
                    if id(parent) not in visited:
                        stack.append((parent, False))
        order.reverse()
        return order

    # ------------------------------------------------------------------
    # Operator overloads (implementations live in the ops_* modules,
    # statically bound at module bottom — a per-call `from . import`
    # here costs a measurable slice of every training step).
    # ------------------------------------------------------------------
    def __add__(self, other):
        return ops_basic.Add.apply(self, other)

    __radd__ = __add__

    def __neg__(self):
        return ops_basic.Neg.apply(self)

    def __sub__(self, other):
        return self + (-Tensor.as_tensor(other))

    def __rsub__(self, other):
        return Tensor.as_tensor(other) + (-self)

    def __mul__(self, other):
        return ops_basic.Mul.apply(self, other)

    __rmul__ = __mul__

    def __truediv__(self, other):
        other = Tensor.as_tensor(other)
        return self * other.pow(-1.0)

    def __rtruediv__(self, other):
        return Tensor.as_tensor(other) * self.pow(-1.0)

    def __matmul__(self, other):
        return ops_basic.MatMul.apply(self, other)

    def __pow__(self, exponent):
        return self.pow(exponent)

    def pow(self, exponent):
        return ops_basic.Pow.apply(self, exponent=float(exponent))

    # Comparisons produce detached boolean masks — useful for `where`.
    def __gt__(self, other):
        return self.data > _raw(other)

    def __lt__(self, other):
        return self.data < _raw(other)

    def __ge__(self, other):
        return self.data >= _raw(other)

    def __le__(self, other):
        return self.data <= _raw(other)

    # ------------------------------------------------------------------
    # Elementwise math
    # ------------------------------------------------------------------
    def exp(self):
        return ops_elementwise.Exp.apply(self)

    def log(self):
        return ops_elementwise.Log.apply(self)

    def sqrt(self):
        return self.pow(0.5)

    def abs(self):
        return ops_elementwise.Abs.apply(self)

    def tanh(self):
        return ops_elementwise.Tanh.apply(self)

    def sigmoid(self):
        return ops_elementwise.Sigmoid.apply(self)

    def relu(self):
        return ops_elementwise.Relu.apply(self)

    def clip(self, low, high):
        return ops_elementwise.Clip.apply(self, low=low, high=high)

    def maximum(self, other):
        return ops_elementwise.Maximum.apply(self, other)

    def minimum(self, other):
        return ops_elementwise.Minimum.apply(self, other)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims=False):
        return ops_reduce.Sum.apply(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims=False):
        return functional.mean(self, axis=axis, keepdims=keepdims)

    def var(self, axis=None, keepdims=False):
        return functional.var(self, axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims=False):
        return ops_reduce.Max.apply(self, axis=axis, keepdims=keepdims)

    def min(self, axis=None, keepdims=False):
        return -((-self).max(axis=axis, keepdims=keepdims))

    def norm(self, eps=0.0):
        """Frobenius / l2 norm of the full tensor as a scalar tensor."""
        sq = (self * self).sum()
        if eps:
            sq = sq + eps
        return sq.sqrt()

    # ------------------------------------------------------------------
    # Shape ops
    # ------------------------------------------------------------------
    def reshape(self, *shape):
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return ops_shape.Reshape.apply(self, shape=shape)

    def flatten(self, start_dim=0):
        lead = self.shape[:start_dim]
        return self.reshape(*lead, -1)

    def transpose(self, axes=None):
        return ops_shape.Transpose.apply(self, axes=axes)

    def swapaxes(self, a, b):
        axes = list(range(self.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(tuple(axes))

    def expand_to(self, shape):
        return ops_shape.Expand.apply(self, shape=tuple(shape))

    def pad(self, pad_width, value=0.0):
        return ops_shape.Pad.apply(self, pad_width=tuple(map(tuple, pad_width)), value=value)

    def __getitem__(self, key):
        return ops_shape.Slice.apply(self, key=key)

    def take_flat(self, flat_indices):
        """Differentiable gather from the flattened tensor.

        ``out[i...] = self.ravel()[flat_indices[i...]]`` — the backbone of
        im2col convolution, pooling window extraction and label lookup.
        """
        return ops_shape.TakeFlat.apply(self, indices=np.asarray(flat_indices))


def _raw(value):
    return value.data if isinstance(value, Tensor) else value


# Give Function.apply a direct reference to Tensor (breaking the
# module cycle without per-call imports), then bind the op modules.
# These imports sit at the bottom on purpose: the ops modules import
# Tensor from here, which works because the class is defined by now.
function._Tensor = Tensor

from . import ops_basic  # noqa: E402
from . import ops_elementwise  # noqa: E402
from . import ops_reduce  # noqa: E402
from . import ops_shape  # noqa: E402
from . import functional  # noqa: E402
