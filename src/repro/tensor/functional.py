"""Composite differentiable functions built from the primitive ops.

Everything here is expressed in terms of primitives whose backward
rules are graph-valued, so all composites support double backprop.
"""

import numpy as np

from .tensor import Tensor
from .ops_shape import concat  # re-exported  # noqa: F401
from .ops_elementwise import where  # re-exported  # noqa: F401


def _axis_count(shape, axis):
    """Number of elements reduced when summing ``shape`` over ``axis``."""
    if axis is None:
        return int(np.prod(shape)) if shape else 1
    if isinstance(axis, int):
        axis = (axis,)
    count = 1
    for a in axis:
        count *= shape[a % len(shape)]
    return count


def mean(x, axis=None, keepdims=False):
    """Arithmetic mean over ``axis``."""
    count = _axis_count(x.shape, axis)
    return x.sum(axis=axis, keepdims=keepdims) * (1.0 / count)


def var(x, axis=None, keepdims=False, ddof=0):
    """Variance over ``axis`` (biased by default, like numpy)."""
    count = _axis_count(x.shape, axis)
    mu = mean(x, axis=axis, keepdims=True)
    centered = x - mu
    total = (centered * centered).sum(axis=axis, keepdims=keepdims)
    return total * (1.0 / (count - ddof))


def std(x, axis=None, keepdims=False, eps=0.0):
    """Standard deviation over ``axis`` (add ``eps`` before the root)."""
    return (var(x, axis=axis, keepdims=keepdims) + eps).sqrt()


def logsumexp(x, axis, keepdims=False):
    """Numerically stable ``log(sum(exp(x)))`` over ``axis``.

    The max shift is detached — it is locally constant, so detaching
    keeps the gradient (and Hessian) exact while avoiding the
    non-smooth ``max`` in the graph.
    """
    shift = Tensor(x.data.max(axis=axis, keepdims=True))
    shifted = x - shift
    out = shifted.exp().sum(axis=axis, keepdims=True).log() + shift
    if not keepdims:
        out = out.reshape(_squeezed_shape(out.shape, axis))
    return out


def _squeezed_shape(shape, axis):
    if isinstance(axis, int):
        axis = (axis,)
    axis = tuple(a % len(shape) for a in axis)
    return tuple(s for i, s in enumerate(shape) if i not in axis)


def softmax(x, axis=-1):
    """Softmax along ``axis``."""
    return log_softmax(x, axis=axis).exp()


def log_softmax(x, axis=-1):
    """Log-softmax along ``axis`` (stable)."""
    return x - logsumexp(x, axis=axis, keepdims=True)


def dot(a, b):
    """Scalar product of two same-shaped tensors."""
    return (a * b).sum()


def stack(tensors, axis=0):
    """Differentiable stack: insert a new axis and concatenate."""
    expanded = []
    for t in tensors:
        shape = list(t.shape)
        shape.insert(axis if axis >= 0 else axis + t.ndim + 1, 1)
        expanded.append(t.reshape(*shape))
    return concat(expanded, axis=axis)


def flatten_params(tensors):
    """Concatenate a sequence of tensors into one flat vector (differentiable)."""
    return concat([t.reshape(-1) for t in tensors], axis=0)
