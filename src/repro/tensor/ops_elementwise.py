"""Elementwise transcendental and piecewise-linear primitives.

Piecewise-linear ops (relu, abs, clip, maximum/minimum, where) use
*constant* masks captured at forward time.  Their second derivative is
zero almost everywhere, so treating the mask as constant during double
backprop is mathematically correct away from the kink — the standard
convention shared with PyTorch.

Each op's ``backward_raw`` mirrors its graph rule numpy-call for
numpy-call (bit-identical first-order gradients); mask products
replicate the graph route's ``Tensor(mask)`` policy-dtype cast via
``as_array`` so dtypes promote identically on both paths.
"""

import numpy as np

from .arena import binary_out as _binary_out, unary_out as _unary_out
from .function import Function, as_array, unbroadcast, unbroadcast_raw
from .ops_basic import _mul_into
from .tensor import Tensor


class Exp(Function):
    """Elementwise natural exponential."""

    def forward(self, a):
        return np.exp(a, out=_unary_out(a))

    def backward(self, grad_out):
        (a,) = self.inputs
        # Recompute exp(a) differentiably rather than caching the output
        # tensor: keeps the graph free of reference cycles.
        return (grad_out * a.exp(),)

    def backward_raw(self, grad_out):
        (a,) = self.inputs
        t = np.exp(a.data, out=_unary_out(a.data))
        return (_mul_into(grad_out, t),)


class Log(Function):
    """Elementwise natural logarithm."""

    def forward(self, a):
        return np.log(a, out=_unary_out(a))

    def backward(self, grad_out):
        (a,) = self.inputs
        return (grad_out * a.pow(-1.0),)

    def backward_raw(self, grad_out):
        (a,) = self.inputs
        # Graph route is `a.pow(-1.0)` whose forward is `a ** -1.0`.
        t = np.asarray(a.data ** -1.0)
        return (_mul_into(grad_out, t),)


class Tanh(Function):
    """Elementwise hyperbolic tangent."""

    def forward(self, a):
        return np.tanh(a, out=_unary_out(a))

    def backward(self, grad_out):
        (a,) = self.inputs
        t = a.tanh()
        return (grad_out * (1.0 - t * t),)

    def backward_raw(self, grad_out):
        (a,) = self.inputs
        t = np.tanh(a.data, out=_unary_out(a.data))
        np.multiply(t, t, out=t)
        # `1.0 - u` in the graph route is `as_tensor(1.0) + (-u)`;
        # IEEE subtraction equals addition of the negation exactly,
        # and the policy-dtype 1.0 promotes identically via as_array.
        one = as_array(1.0)
        t = np.subtract(one, t, out=t) if one.dtype == t.dtype else np.asarray(one - t)
        return (_mul_into(grad_out, t),)


class Sigmoid(Function):
    """Elementwise logistic sigmoid (numerically stable)."""

    def forward(self, a):
        # Numerically stable logistic.
        out = _unary_out(a)
        if out is None:
            out = np.empty_like(a)
        pos = a >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-a[pos]))
        ea = np.exp(a[~pos])
        out[~pos] = ea / (1.0 + ea)
        return out

    def backward(self, grad_out):
        (a,) = self.inputs
        s = a.sigmoid()
        return (grad_out * (s * (1.0 - s)),)

    def backward_raw(self, grad_out):
        (a,) = self.inputs
        s = Sigmoid.forward(self, a.data)
        one = as_array(1.0)
        if one.dtype == s.dtype:
            m = np.subtract(one, s, out=_unary_out(s))
        else:
            m = np.asarray(one - s)
        np.multiply(s, m, out=m)
        return (_mul_into(grad_out, m),)


class Relu(Function):
    """Elementwise rectifier; mask captured at forward time."""

    def forward(self, a):
        self.mask = (a > 0).astype(a.dtype)
        return np.multiply(a, self.mask, out=_unary_out(a))

    def backward(self, grad_out):
        return (grad_out * Tensor(self.mask),)

    def backward_raw(self, grad_out):
        return (_mask_mul_raw(grad_out, self.mask),)


class Abs(Function):
    """Elementwise absolute value; sign captured as constant."""

    def forward(self, a):
        self.sign = np.sign(a)
        return np.abs(a, out=_unary_out(a))

    def backward(self, grad_out):
        return (grad_out * Tensor(self.sign),)

    def backward_raw(self, grad_out):
        return (_mask_mul_raw(grad_out, self.sign),)


class Clip(Function):
    """Clamp to ``[low, high]``; gradient passes only inside the range."""

    def forward(self, a, low, high):
        self.mask = ((a >= low) & (a <= high)).astype(a.dtype)
        return np.clip(a, low, high, out=_unary_out(a))

    def backward(self, grad_out):
        return (grad_out * Tensor(self.mask),)

    def backward_raw(self, grad_out):
        return (_mask_mul_raw(grad_out, self.mask),)


class Maximum(Function):
    """Elementwise max; ties send half the gradient to each operand."""

    def forward(self, a, b):
        self.a_shape = a.shape
        self.b_shape = b.shape
        mask_a = (a > b).astype(a.dtype)
        ties = (a == b).astype(a.dtype) * 0.5
        self.mask_a = mask_a + ties
        self.mask_b = 1.0 - self.mask_a
        return np.maximum(a, b, out=_binary_out(a, b))

    def backward(self, grad_out):
        return (
            unbroadcast(grad_out * Tensor(self.mask_a), self.a_shape),
            unbroadcast(grad_out * Tensor(self.mask_b), self.b_shape),
        )

    def backward_raw(self, grad_out):
        return (
            unbroadcast_raw(_mask_mul_raw(grad_out, self.mask_a), self.a_shape),
            unbroadcast_raw(_mask_mul_raw(grad_out, self.mask_b), self.b_shape),
        )


class Minimum(Function):
    """Elementwise min; ties send half the gradient to each operand."""

    def forward(self, a, b):
        self.a_shape = a.shape
        self.b_shape = b.shape
        mask_a = (a < b).astype(a.dtype)
        ties = (a == b).astype(a.dtype) * 0.5
        self.mask_a = mask_a + ties
        self.mask_b = 1.0 - self.mask_a
        return np.minimum(a, b, out=_binary_out(a, b))

    def backward(self, grad_out):
        return (
            unbroadcast(grad_out * Tensor(self.mask_a), self.a_shape),
            unbroadcast(grad_out * Tensor(self.mask_b), self.b_shape),
        )

    def backward_raw(self, grad_out):
        return (
            unbroadcast_raw(_mask_mul_raw(grad_out, self.mask_a), self.a_shape),
            unbroadcast_raw(_mask_mul_raw(grad_out, self.mask_b), self.b_shape),
        )


class Where(Function):
    """``where(cond, a, b)`` with a constant boolean condition."""

    def forward(self, a, b, cond):
        self.cond = np.asarray(cond, dtype=bool)
        self.a_shape = a.shape
        self.b_shape = b.shape
        return np.where(self.cond, a, b)

    def backward(self, grad_out):
        mask = self.cond.astype(grad_out.dtype)
        return (
            unbroadcast(grad_out * Tensor(mask), self.a_shape),
            unbroadcast(grad_out * Tensor(1.0 - mask), self.b_shape),
        )

    def backward_raw(self, grad_out):
        mask = self.cond.astype(grad_out.dtype)
        return (
            unbroadcast_raw(_mask_mul_raw(grad_out, mask), self.a_shape),
            unbroadcast_raw(_mask_mul_raw(grad_out, 1.0 - mask), self.b_shape),
        )


def where(cond, a, b):
    """Differentiable select: ``a`` where ``cond`` holds, else ``b``."""
    return Where.apply(a, b, cond=np.asarray(cond))


def _mask_mul_raw(grad_out, mask):
    """``grad_out * mask`` exactly as the graph route computes it.

    The graph rule wraps the mask in ``Tensor(mask)``, which casts it
    to the policy dtype — replicated here with ``as_array`` so the
    product's dtype (and, for non-0/1 masks like ``Max``'s tie split,
    its bits) match the graph path.
    """
    m = as_array(mask)
    return np.multiply(grad_out, m, out=_binary_out(grad_out, m))
