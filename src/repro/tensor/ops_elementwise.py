"""Elementwise transcendental and piecewise-linear primitives.

Piecewise-linear ops (relu, abs, clip, maximum/minimum, where) use
*constant* masks captured at forward time.  Their second derivative is
zero almost everywhere, so treating the mask as constant during double
backprop is mathematically correct away from the kink — the standard
convention shared with PyTorch.
"""

import numpy as np

from .function import Function, unbroadcast
from .tensor import Tensor


class Exp(Function):
    """Elementwise natural exponential."""

    def forward(self, a):
        return np.exp(a)

    def backward(self, grad_out):
        (a,) = self.inputs
        # Recompute exp(a) differentiably rather than caching the output
        # tensor: keeps the graph free of reference cycles.
        return (grad_out * a.exp(),)


class Log(Function):
    """Elementwise natural logarithm."""

    def forward(self, a):
        return np.log(a)

    def backward(self, grad_out):
        (a,) = self.inputs
        return (grad_out * a.pow(-1.0),)


class Tanh(Function):
    """Elementwise hyperbolic tangent."""

    def forward(self, a):
        return np.tanh(a)

    def backward(self, grad_out):
        (a,) = self.inputs
        t = a.tanh()
        return (grad_out * (1.0 - t * t),)


class Sigmoid(Function):
    """Elementwise logistic sigmoid (numerically stable)."""

    def forward(self, a):
        # Numerically stable logistic.
        out = np.empty_like(a)
        pos = a >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-a[pos]))
        ea = np.exp(a[~pos])
        out[~pos] = ea / (1.0 + ea)
        return out

    def backward(self, grad_out):
        (a,) = self.inputs
        s = a.sigmoid()
        return (grad_out * (s * (1.0 - s)),)


class Relu(Function):
    """Elementwise rectifier; mask captured at forward time."""

    def forward(self, a):
        self.mask = (a > 0).astype(a.dtype)
        return a * self.mask

    def backward(self, grad_out):
        return (grad_out * Tensor(self.mask),)


class Abs(Function):
    """Elementwise absolute value; sign captured as constant."""

    def forward(self, a):
        self.sign = np.sign(a)
        return np.abs(a)

    def backward(self, grad_out):
        return (grad_out * Tensor(self.sign),)


class Clip(Function):
    """Clamp to ``[low, high]``; gradient passes only inside the range."""

    def forward(self, a, low, high):
        self.mask = ((a >= low) & (a <= high)).astype(a.dtype)
        return np.clip(a, low, high)

    def backward(self, grad_out):
        return (grad_out * Tensor(self.mask),)


class Maximum(Function):
    """Elementwise max; ties send half the gradient to each operand."""

    def forward(self, a, b):
        self.a_shape = a.shape
        self.b_shape = b.shape
        mask_a = (a > b).astype(a.dtype)
        ties = (a == b).astype(a.dtype) * 0.5
        self.mask_a = mask_a + ties
        self.mask_b = 1.0 - self.mask_a
        return np.maximum(a, b)

    def backward(self, grad_out):
        return (
            unbroadcast(grad_out * Tensor(self.mask_a), self.a_shape),
            unbroadcast(grad_out * Tensor(self.mask_b), self.b_shape),
        )


class Minimum(Function):
    """Elementwise min; ties send half the gradient to each operand."""

    def forward(self, a, b):
        self.a_shape = a.shape
        self.b_shape = b.shape
        mask_a = (a < b).astype(a.dtype)
        ties = (a == b).astype(a.dtype) * 0.5
        self.mask_a = mask_a + ties
        self.mask_b = 1.0 - self.mask_a
        return np.minimum(a, b)

    def backward(self, grad_out):
        return (
            unbroadcast(grad_out * Tensor(self.mask_a), self.a_shape),
            unbroadcast(grad_out * Tensor(self.mask_b), self.b_shape),
        )


class Where(Function):
    """``where(cond, a, b)`` with a constant boolean condition."""

    def forward(self, a, b, cond):
        self.cond = np.asarray(cond, dtype=bool)
        self.a_shape = a.shape
        self.b_shape = b.shape
        return np.where(self.cond, a, b)

    def backward(self, grad_out):
        mask = self.cond.astype(grad_out.dtype)
        return (
            unbroadcast(grad_out * Tensor(mask), self.a_shape),
            unbroadcast(grad_out * Tensor(1.0 - mask), self.b_shape),
        )


def where(cond, a, b):
    """Differentiable select: ``a`` where ``cond`` holds, else ``b``."""
    return Where.apply(a, b, cond=np.asarray(cond))
