"""Base class for differentiable operations.

Every primitive op in the engine is a :class:`Function`.  A ``Function``
instance records its input tensors when applied, and its ``backward``
method expresses the vector-Jacobian product **in terms of Tensor
operations**.  Because the backward pass is itself built from
differentiable ops, calling ``Tensor.backward(create_graph=True)``
produces gradients that carry their own graph — which is exactly what
HERO's Hessian regularizer (Eq. 16 of the paper) and the GRAD-L1
baseline need (gradients of gradient norms).

Ops may additionally implement ``backward_raw``, a raw-numpy mirror of
``backward`` used by ``Tensor.backward(create_graph=False)``: it
receives and returns plain ``numpy.ndarray`` gradients, skipping graph
construction entirely.  A ``backward_raw`` MUST perform bit-identically
the same floating-point operations as the Tensor-valued rule — the
fast path is an implementation detail, never a numerics change (pinned
by ``tests/tensor/test_raw_backward.py``).
"""

import numpy as np

from . import _gradmode
from .policy import default_dtype, resolve_dtype

# Injected by ``tensor.py`` at import time; avoids a circular import
# without paying a per-call ``from .tensor import Tensor``.
_Tensor = None


class Function:
    """A differentiable operation node in the autograd graph.

    Subclasses implement:

    ``forward(self, *arrays, **kwargs)``
        Receives raw ``numpy.ndarray`` inputs, returns a ``numpy.ndarray``.
        May stash anything needed for the backward pass on ``self``.

    ``backward(self, grad_out)``
        Receives the upstream gradient as a ``Tensor`` and must return a
        tuple with one entry per tensor input: either a ``Tensor``
        gradient or ``None`` for non-differentiable inputs.  The rule
        must be written with ``Tensor`` operations so that higher-order
        differentiation works.

    ``backward_raw(self, grad_out)`` (optional)
        Raw-array mirror of ``backward`` for the first-order fast path;
        must reproduce ``backward``'s float ops bit-for-bit.  The base
        implementation routes through ``backward`` and unwraps.
    """

    def __init__(self):
        self.inputs = ()
        self.requires_grad = False

    @classmethod
    def apply(cls, *tensors, **kwargs):
        """Run the op on ``tensors`` and wire up the graph if needed."""
        T = _Tensor
        if not all(type(t) is T or isinstance(t, T) for t in tensors):
            tensors = tuple(T.as_tensor(t) for t in tensors)
        ctx = cls()
        out_data = ctx.forward(*(t.data for t in tensors), **kwargs)
        if type(out_data) is not np.ndarray:
            # Ufuncs on 0-d arrays return numpy scalars; keep the
            # Tensor.data invariant (always an ndarray).
            out_data = np.asarray(out_data)
        first_dtype = tensors[0].data.dtype
        if out_data.dtype != first_dtype and np.issubdtype(out_data.dtype, np.floating):
            # Keep op outputs in the promoted dtype of their inputs so
            # the engine dtype is stable across the graph (a forward
            # that allocated in the wrong precision is corrected here,
            # and explicit-float64 graphs stay float64 under a float32
            # policy).
            out_data = out_data.astype(np.result_type(*(t.data for t in tensors)), copy=False)
        needs_graph = _gradmode._MODE.enabled and any(t.requires_grad for t in tensors)
        out = T.__new__(T)
        out.data = out_data
        out.requires_grad = needs_graph
        out.grad = None
        out._grad_owned = False
        if needs_graph:
            ctx.inputs = tensors
            ctx.requires_grad = True
            out._ctx = ctx
        else:
            out._ctx = None
        return out

    def forward(self, *arrays, **kwargs):
        raise NotImplementedError

    def backward(self, grad_out):
        raise NotImplementedError

    def backward_raw(self, grad_out):
        """Raw-array VJP fallback: route through ``backward`` and unwrap.

        ``grad_out`` is a ``numpy.ndarray``; the return value is a tuple
        of arrays/None per input.  Called with grad mode disabled, so
        the Tensor ops inside ``backward`` do not record a graph.
        """
        grads = self.backward(_Tensor(grad_out, dtype=grad_out.dtype))
        if not isinstance(grads, tuple):
            grads = (grads,)
        return tuple(None if g is None else g.data for g in grads)

    def __repr__(self):
        return f"<{type(self).__name__}>"


def unbroadcast(grad, shape):
    """Reduce ``grad`` (a Tensor) back to ``shape`` after broadcasting.

    NumPy broadcasting prepends singleton dimensions and stretches size-1
    axes; the adjoint of broadcasting is summation over those axes.  This
    helper is built from differentiable ``sum``/``reshape`` ops so it can
    appear inside backward rules.
    """
    if tuple(grad.shape) == tuple(shape):
        return grad
    # Sum away prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were stretched from size 1.
    stretched = tuple(
        axis for axis, size in enumerate(shape) if size == 1 and grad.shape[axis] != 1
    )
    if stretched:
        grad = grad.sum(axis=stretched, keepdims=True)
    if tuple(grad.shape) != tuple(shape):
        grad = grad.reshape(shape)
    return grad


def unbroadcast_raw(grad, shape):
    """Raw-array mirror of :func:`unbroadcast` (same np calls, same bits).

    The summations are issued exactly as the Tensor route would
    (``Sum.forward`` calls ``a.sum(axis=<sorted tuple>, keepdims=...)``),
    so first-order gradients are bit-identical between the two paths.
    """
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)), keepdims=False)
    stretched = tuple(
        axis for axis, size in enumerate(shape) if size == 1 and grad.shape[axis] != 1
    )
    if stretched:
        grad = grad.sum(axis=stretched, keepdims=True)
    if grad.shape != shape:
        grad = grad.reshape(shape)
    return grad


def as_array(value, dtype=None):
    """Coerce ``value`` to a numpy array of the engine dtype.

    ``dtype=None`` resolves to the process precision policy
    (:mod:`repro.tensor.policy`); pass an explicit dtype to pin an array
    to a precision regardless of the policy.
    """
    dtype = default_dtype() if dtype is None else resolve_dtype(dtype)
    arr = np.asarray(value)
    if arr.dtype != dtype:
        arr = arr.astype(dtype)
    return arr
