"""Base class for differentiable operations.

Every primitive op in the engine is a :class:`Function`.  A ``Function``
instance records its input tensors when applied, and its ``backward``
method expresses the vector-Jacobian product **in terms of Tensor
operations**.  Because the backward pass is itself built from
differentiable ops, calling ``Tensor.backward(create_graph=True)``
produces gradients that carry their own graph — which is exactly what
HERO's Hessian regularizer (Eq. 16 of the paper) and the GRAD-L1
baseline need (gradients of gradient norms).
"""

import numpy as np

from ._gradmode import is_grad_enabled
from .policy import default_dtype, resolve_dtype


class Function:
    """A differentiable operation node in the autograd graph.

    Subclasses implement:

    ``forward(self, *arrays, **kwargs)``
        Receives raw ``numpy.ndarray`` inputs, returns a ``numpy.ndarray``.
        May stash anything needed for the backward pass on ``self``.

    ``backward(self, grad_out)``
        Receives the upstream gradient as a ``Tensor`` and must return a
        tuple with one entry per tensor input: either a ``Tensor``
        gradient or ``None`` for non-differentiable inputs.  The rule
        must be written with ``Tensor`` operations so that higher-order
        differentiation works.
    """

    def __init__(self):
        self.inputs = ()
        self.requires_grad = False

    @classmethod
    def apply(cls, *tensors, **kwargs):
        """Run the op on ``tensors`` and wire up the graph if needed."""
        from .tensor import Tensor

        tensors = tuple(Tensor.as_tensor(t) for t in tensors)
        ctx = cls()
        out_data = ctx.forward(*(t.data for t in tensors), **kwargs)
        if out_data.dtype != tensors[0].data.dtype and np.issubdtype(
            out_data.dtype, np.floating
        ):
            # Keep op outputs in the promoted dtype of their inputs so
            # the engine dtype is stable across the graph (a forward
            # that allocated in the wrong precision is corrected here,
            # and explicit-float64 graphs stay float64 under a float32
            # policy).
            out_data = out_data.astype(np.result_type(*(t.data for t in tensors)), copy=False)
        needs_graph = is_grad_enabled() and any(t.requires_grad for t in tensors)
        out = Tensor(out_data, requires_grad=needs_graph, dtype=out_data.dtype)
        if needs_graph:
            ctx.inputs = tensors
            ctx.requires_grad = True
            out._ctx = ctx
        return out

    def forward(self, *arrays, **kwargs):
        raise NotImplementedError

    def backward(self, grad_out):
        raise NotImplementedError

    def __repr__(self):
        return f"<{type(self).__name__}>"


def unbroadcast(grad, shape):
    """Reduce ``grad`` (a Tensor) back to ``shape`` after broadcasting.

    NumPy broadcasting prepends singleton dimensions and stretches size-1
    axes; the adjoint of broadcasting is summation over those axes.  This
    helper is built from differentiable ``sum``/``reshape`` ops so it can
    appear inside backward rules.
    """
    if tuple(grad.shape) == tuple(shape):
        return grad
    # Sum away prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were stretched from size 1.
    stretched = tuple(
        axis for axis, size in enumerate(shape) if size == 1 and grad.shape[axis] != 1
    )
    if stretched:
        grad = grad.sum(axis=stretched, keepdims=True)
    if tuple(grad.shape) != tuple(shape):
        grad = grad.reshape(shape)
    return grad


def as_array(value, dtype=None):
    """Coerce ``value`` to a numpy array of the engine dtype.

    ``dtype=None`` resolves to the process precision policy
    (:mod:`repro.tensor.policy`); pass an explicit dtype to pin an array
    to a precision regardless of the policy.
    """
    dtype = default_dtype() if dtype is None else resolve_dtype(dtype)
    arr = np.asarray(value)
    if arr.dtype != dtype:
        arr = arr.astype(dtype)
    return arr
