"""``repro.tensor`` — a numpy-backed autograd engine with double backprop.

This package is the foundational substrate of the HERO reproduction:
the paper's update rule (Eq. 16-17) differentiates through a gradient,
which requires ``backward(create_graph=True)`` support.  Backward rules
are themselves expressed as Tensor ops, so derivatives of any order are
available (and are validated against finite differences in the tests).

Public API
----------
``Tensor``
    The array type; construction helpers ``zeros/ones/full/eye/randn``.
``no_grad`` / ``enable_grad`` / ``is_grad_enabled``
    Grad-mode control.
``default_dtype`` / ``set_default_dtype`` / ``dtype_context``
    The precision policy: the engine allocates in float32 by default
    (``REPRO_DTYPE`` overrides), float64 on explicit request
    (``VERIFY_DTYPE`` for verification-grade numerics).
``arena`` / ``arena_pause`` / ``arena_step`` / ``current_arena``
    Opt-in step-scoped buffer reuse (off by default, bit-identical
    when on; see ``docs/engine-performance.md``).
``functional``-style helpers re-exported at package level:
``mean, var, std, logsumexp, softmax, log_softmax, where, concat,
stack, dot, flatten_params``.
"""

from ._gradmode import no_grad, enable_grad, is_grad_enabled, set_grad_enabled
from .arena import (
    BufferArena,
    arena,
    arena_active,
    arena_pause,
    arena_step,
    arena_take,
    current_arena,
)
from .policy import (
    DTYPE_ENV,
    VERIFY_DTYPE,
    default_dtype,
    dtype_context,
    dtype_from_env,
    dtype_name,
    resolve_dtype,
    set_default_dtype,
)
from .tensor import Tensor
from .function import Function
from .functional import (
    mean,
    var,
    std,
    logsumexp,
    softmax,
    log_softmax,
    where,
    concat,
    stack,
    dot,
    flatten_params,
)
from .grad_check import (
    check_gradient,
    check_hvp,
    numerical_gradient,
    analytic_gradient,
    numerical_hvp,
    analytic_hvp,
)

__all__ = [
    "Tensor",
    "Function",
    "BufferArena",
    "arena",
    "arena_active",
    "arena_pause",
    "arena_step",
    "arena_take",
    "current_arena",
    "DTYPE_ENV",
    "VERIFY_DTYPE",
    "default_dtype",
    "dtype_context",
    "dtype_from_env",
    "dtype_name",
    "resolve_dtype",
    "set_default_dtype",
    "no_grad",
    "enable_grad",
    "is_grad_enabled",
    "set_grad_enabled",
    "mean",
    "var",
    "std",
    "logsumexp",
    "softmax",
    "log_softmax",
    "where",
    "concat",
    "stack",
    "dot",
    "flatten_params",
    "check_gradient",
    "check_hvp",
    "numerical_gradient",
    "analytic_gradient",
    "numerical_hvp",
    "analytic_hvp",
]
