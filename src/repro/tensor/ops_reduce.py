"""Reduction primitives: sum and max (min/mean/var build on these)."""

import numpy as np

from .arena import arena_take as _arena_take, binary_out as _binary_out
from .function import Function, as_array
from .tensor import Tensor


def _normalize_axis(axis, ndim):
    """Return a sorted tuple of non-negative axes (or None for all)."""
    if axis is None:
        return None
    if isinstance(axis, int):
        axis = (axis,)
    return tuple(sorted(a % ndim for a in axis))


def _keepdims_shape(shape, axes):
    """Shape of the reduction result with reduced axes kept as size 1."""
    if axes is None:
        return (1,) * len(shape)
    return tuple(1 if i in axes else s for i, s in enumerate(shape))


def _reduced_shape(shape, axes, keepdims):
    """Result shape of summing ``shape`` over ``axes``."""
    if axes is None:
        return (1,) * len(shape) if keepdims else ()
    if keepdims:
        return tuple(1 if i in axes else s for i, s in enumerate(shape))
    return tuple(s for i, s in enumerate(shape) if i not in axes)


class Sum(Function):
    """Sum over ``axis`` (int, tuple, or None for a full reduction)."""

    def forward(self, a, axis=None, keepdims=False):
        self.in_shape = a.shape
        self.axes = _normalize_axis(axis, a.ndim)
        self.keepdims = keepdims
        out = _arena_take(_reduced_shape(a.shape, self.axes, keepdims), a.dtype)
        return a.sum(axis=self.axes, keepdims=keepdims, out=out)

    def backward(self, grad_out):
        mid_shape = _keepdims_shape(self.in_shape, self.axes)
        grad = grad_out if self.keepdims else grad_out.reshape(mid_shape)
        return (grad.expand_to(self.in_shape),)

    def backward_raw(self, grad_out):
        mid_shape = _keepdims_shape(self.in_shape, self.axes)
        grad = grad_out if self.keepdims else grad_out.reshape(mid_shape)
        # The graph route materializes the broadcast (`Expand` copies);
        # the values of a read-only broadcast view are identical, and
        # the raw accumulator never mutates arrays it did not allocate.
        return (np.broadcast_to(grad, self.in_shape),)


class Max(Function):
    """Max over ``axis``; gradient is split evenly across tied maxima.

    The tie-splitting mask is captured as a constant, which is the
    correct subgradient convention and keeps double backprop exact
    almost everywhere.
    """

    def forward(self, a, axis=None, keepdims=False):
        self.in_shape = a.shape
        self.axes = _normalize_axis(axis, a.ndim)
        self.keepdims = keepdims
        out = a.max(axis=self.axes, keepdims=True)
        mask = (a == out).astype(a.dtype)
        counts = mask.sum(axis=self.axes, keepdims=True)
        self.mask = mask / counts
        if not keepdims:
            if self.axes is None:
                out = out.reshape(())
            else:
                out = np.squeeze(out, axis=self.axes)
        return out

    def backward(self, grad_out):
        mid_shape = _keepdims_shape(self.in_shape, self.axes)
        grad = grad_out if self.keepdims else grad_out.reshape(mid_shape)
        return (grad.expand_to(self.in_shape) * Tensor(self.mask),)

    def backward_raw(self, grad_out):
        mid_shape = _keepdims_shape(self.in_shape, self.axes)
        grad = grad_out if self.keepdims else grad_out.reshape(mid_shape)
        expanded = np.broadcast_to(grad, self.in_shape)
        # Tensor(mask) in the graph rule casts to the policy dtype; the
        # tie-split mask holds non-dyadic values (1/3, ...), so the
        # cast is replicated for bit parity.
        m = as_array(self.mask)
        return (np.multiply(expanded, m, out=_binary_out(expanded, m)),)
