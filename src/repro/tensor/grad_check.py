"""Numerical verification of first- and second-order gradients.

These utilities back the engine's test suite: every primitive op, every
layer and the full HERO update rule are validated against central
finite differences.

Verification-grade numerics need double precision — a central
difference with ``eps=1e-6`` is pure noise in float32 — so every
entry point here runs the engine under
``dtype_context(VERIFY_DTYPE)`` (float64) regardless of the ambient
precision policy.
"""

import numpy as np

from .policy import VERIFY_DTYPE, dtype_context
from .tensor import Tensor


def numerical_gradient(fn, arrays, index=0, eps=1e-6):
    """Central finite-difference gradient of scalar ``fn`` w.r.t. one input.

    Parameters
    ----------
    fn:
        Callable taking ``len(arrays)`` Tensors and returning a scalar
        Tensor.
    arrays:
        Sequence of numpy arrays, the evaluation point.
    index:
        Which input to differentiate.
    """
    with dtype_context(VERIFY_DTYPE):
        arrays = [np.asarray(a, dtype=VERIFY_DTYPE).copy() for a in arrays]
        target = arrays[index]
        grad = np.zeros_like(target)
        flat = target.reshape(-1)
        grad_flat = grad.reshape(-1)
        for i in range(flat.size):
            original = flat[i]
            flat[i] = original + eps
            up = float(fn(*[Tensor(a) for a in arrays]).data)
            flat[i] = original - eps
            down = float(fn(*[Tensor(a) for a in arrays]).data)
            flat[i] = original
            grad_flat[i] = (up - down) / (2.0 * eps)
        return grad


def analytic_gradient(fn, arrays, index=0):
    """Autograd gradient of scalar ``fn`` w.r.t. input ``index``."""
    with dtype_context(VERIFY_DTYPE):
        tensors = [
            Tensor(np.asarray(a, dtype=VERIFY_DTYPE), requires_grad=True) for a in arrays
        ]
        out = fn(*tensors)
        out.backward()
        grad = tensors[index].grad
        if grad is None:
            return np.zeros_like(tensors[index].data)
        return grad.data


def check_gradient(fn, arrays, index=0, eps=1e-6, atol=1e-5, rtol=1e-4):
    """Assert that autograd and numerical gradients of ``fn`` agree.

    Returns the pair ``(analytic, numerical)`` for further inspection.
    """
    num = numerical_gradient(fn, arrays, index=index, eps=eps)
    ana = analytic_gradient(fn, arrays, index=index)
    if not np.allclose(ana, num, atol=atol, rtol=rtol):
        worst = np.max(np.abs(ana - num))
        raise AssertionError(
            f"gradient mismatch for input {index}: max abs err {worst:.3e}\n"
            f"analytic:\n{ana}\nnumerical:\n{num}"
        )
    return ana, num


def numerical_hvp(fn, arrays, vector, index=0, eps=1e-5):
    """Finite-difference Hessian-vector product of scalar ``fn``.

    ``H v ~= (grad(x + eps*v) - grad(x - eps*v)) / (2 eps)`` using the
    *analytic* gradient at the shifted points, which keeps the estimate
    second-order accurate.
    """
    arrays = [np.asarray(a, dtype=VERIFY_DTYPE).copy() for a in arrays]
    vector = np.asarray(vector, dtype=VERIFY_DTYPE)
    shifted_up = [a.copy() for a in arrays]
    shifted_up[index] = shifted_up[index] + eps * vector
    shifted_down = [a.copy() for a in arrays]
    shifted_down[index] = shifted_down[index] - eps * vector
    g_up = analytic_gradient(fn, shifted_up, index=index)
    g_down = analytic_gradient(fn, shifted_down, index=index)
    return (g_up - g_down) / (2.0 * eps)


def analytic_hvp(fn, arrays, vector, index=0):
    """Exact Hessian-vector product via double backprop.

    Computes ``d/dx (grad(x) . v)`` with ``create_graph=True`` on the
    first backward pass — the same machinery HERO's training step uses.
    """
    with dtype_context(VERIFY_DTYPE):
        tensors = [
            Tensor(np.asarray(a, dtype=VERIFY_DTYPE), requires_grad=True) for a in arrays
        ]
        out = fn(*tensors)
        out.backward(create_graph=True)
        grad = tensors[index].grad
        tensors[index].grad = None
        v = Tensor(np.asarray(vector, dtype=VERIFY_DTYPE))
        inner = (grad * v).sum()
        if inner._ctx is None and not inner.requires_grad:
            # The gradient is constant (linear function): Hessian is zero.
            return np.zeros_like(tensors[index].data)
        inner.backward()
        hvp = tensors[index].grad
        if hvp is None:
            return np.zeros_like(tensors[index].data)
        return hvp.data


def check_hvp(fn, arrays, vector, index=0, eps=1e-5, atol=1e-4, rtol=1e-3):
    """Assert exact and finite-difference HVPs of ``fn`` agree."""
    ana = analytic_hvp(fn, arrays, vector, index=index)
    num = numerical_hvp(fn, arrays, vector, index=index, eps=eps)
    if not np.allclose(ana, num, atol=atol, rtol=rtol):
        worst = np.max(np.abs(ana - num))
        raise AssertionError(
            f"HVP mismatch for input {index}: max abs err {worst:.3e}\n"
            f"analytic:\n{ana}\nnumerical:\n{num}"
        )
    return ana, num
