"""Shape-manipulation primitives.

Alongside the usual reshape/transpose/pad/slice/concat, this module
provides the ``TakeFlat``/``ScatterAddFlat`` adjoint pair: a gather from
the flattened tensor and its transpose, a scatter-add.  They are exact
adjoints of each other, so each one's backward rule is the other —
giving the engine support for arbitrary-order differentiation through
im2col convolution, pooling window extraction and label lookup.

``backward_raw`` rules return views where the graph route would copy
(``Pad``/``Concat`` adjoints slice; ``Reshape``/``Transpose`` re-view):
values are identical, and the raw accumulator never mutates arrays it
did not allocate, so aliasing is safe.
"""

import numpy as np

from .arena import arena_take as _arena_take, zeros_buf as _zeros_buf
from .function import Function


class Reshape(Function):
    """View the data under a new shape (adjoint reshapes back)."""

    def forward(self, a, shape):
        self.in_shape = a.shape
        return a.reshape(shape)

    def backward(self, grad_out):
        return (grad_out.reshape(self.in_shape),)

    def backward_raw(self, grad_out):
        return (grad_out.reshape(self.in_shape),)


class Transpose(Function):
    """Permute axes (numpy semantics; ``axes=None`` reverses them)."""

    def forward(self, a, axes=None):
        if axes is None:
            axes = tuple(reversed(range(a.ndim)))
        self.axes = tuple(axes)
        return np.transpose(a, self.axes)

    def backward(self, grad_out):
        inverse = np.argsort(self.axes)
        return (grad_out.transpose(tuple(int(i) for i in inverse)),)

    def backward_raw(self, grad_out):
        inverse = np.argsort(self.axes)
        return (np.transpose(grad_out, tuple(int(i) for i in inverse)),)


class Expand(Function):
    """Broadcast to ``shape`` (materialized); adjoint sums the axes back."""

    def forward(self, a, shape):
        self.in_shape = a.shape
        buf = _arena_take(tuple(shape), a.dtype)
        if buf is not None:
            np.copyto(buf, a)
            return buf
        return np.broadcast_to(a, shape).copy()

    def backward(self, grad_out):
        from .function import unbroadcast

        return (unbroadcast(grad_out, self.in_shape),)

    def backward_raw(self, grad_out):
        from .function import unbroadcast_raw

        return (unbroadcast_raw(grad_out, self.in_shape),)


class Pad(Function):
    """Constant-pad with ``pad_width`` in numpy format; adjoint slices."""

    def forward(self, a, pad_width, value=0.0):
        self.key = tuple(
            slice(lo, lo + size) for (lo, _hi), size in zip(pad_width, a.shape)
        )
        return np.pad(a, pad_width, mode="constant", constant_values=value)

    def backward(self, grad_out):
        return (grad_out[self.key],)

    def backward_raw(self, grad_out):
        return (grad_out[self.key],)


class Slice(Function):
    """Basic indexing ``a[key]``; adjoint scatters into a zero tensor."""

    def forward(self, a, key):
        self.key = key
        self.in_shape = a.shape
        return a[key].copy()

    def backward(self, grad_out):
        return (Unslice.apply(grad_out, key=self.key, in_shape=self.in_shape),)

    def backward_raw(self, grad_out):
        out = _zeros_buf(self.in_shape, grad_out.dtype)
        out[self.key] = grad_out
        return (out,)


class Unslice(Function):
    """Adjoint of :class:`Slice`: place ``g`` into zeros at ``key``."""

    def forward(self, g, key, in_shape):
        self.key = key
        out = _zeros_buf(in_shape, g.dtype)
        out[key] = g
        return out

    def backward(self, grad_out):
        return (grad_out[self.key],)

    def backward_raw(self, grad_out):
        return (grad_out[self.key],)


class Concat(Function):
    """Concatenate tensors along ``axis``; adjoint slices the pieces."""

    def forward(self, *arrays, axis=0):
        self.axis = axis
        self.sizes = [arr.shape[axis] for arr in arrays]
        return np.concatenate(arrays, axis=axis)

    def backward(self, grad_out):
        grads = []
        start = 0
        for size in self.sizes:
            key = [slice(None)] * grad_out.ndim
            key[self.axis] = slice(start, start + size)
            grads.append(grad_out[tuple(key)])
            start += size
        return tuple(grads)

    def backward_raw(self, grad_out):
        grads = []
        start = 0
        for size in self.sizes:
            key = [slice(None)] * grad_out.ndim
            key[self.axis] = slice(start, start + size)
            grads.append(grad_out[tuple(key)])
            start += size
        return tuple(grads)


class TakeFlat(Function):
    """Gather from the flattened input: ``out = a.ravel()[indices]``.

    ``indices`` may have any shape; the output takes that shape.  The
    adjoint is :class:`ScatterAddFlat` (duplicate indices accumulate).
    """

    def forward(self, a, indices):
        self.indices = indices
        self.in_shape = a.shape
        flat = a.reshape(-1)
        buf = _arena_take(indices.shape, a.dtype)
        if buf is not None:
            return np.take(flat, indices, out=buf)
        return flat[indices]

    def backward(self, grad_out):
        return (
            ScatterAddFlat.apply(grad_out, indices=self.indices, in_shape=self.in_shape),
        )

    def backward_raw(self, grad_out):
        return (
            _scatter_add_flat_raw(grad_out, self.indices, self.in_shape),
        )


class ScatterAddFlat(Function):
    """Adjoint of :class:`TakeFlat`: scatter-add ``g`` into zeros."""

    def forward(self, g, indices, in_shape):
        self.indices = indices
        return _scatter_add_flat_raw(g, indices, in_shape)

    def backward(self, grad_out):
        return (grad_out.take_flat(self.indices),)

    def backward_raw(self, grad_out):
        flat = grad_out.reshape(-1)
        buf = _arena_take(self.indices.shape, grad_out.dtype)
        if buf is not None:
            return (np.take(flat, self.indices, out=buf),)
        return (flat[self.indices],)


def _scatter_add_flat_raw(g, indices, in_shape):
    """Zero-init scatter-add shared by the forward and the raw adjoint."""
    out = _zeros_buf((int(np.prod(in_shape)),), dtype=g.dtype)
    np.add.at(out, indices.reshape(-1), g.reshape(-1))
    return out.reshape(in_shape)


def concat(tensors, axis=0):
    """Differentiable concatenation of a sequence of tensors."""
    return Concat.apply(*tensors, axis=axis)
