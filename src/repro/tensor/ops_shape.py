"""Shape-manipulation primitives.

Alongside the usual reshape/transpose/pad/slice/concat, this module
provides the ``TakeFlat``/``ScatterAddFlat`` adjoint pair: a gather from
the flattened tensor and its transpose, a scatter-add.  They are exact
adjoints of each other, so each one's backward rule is the other —
giving the engine support for arbitrary-order differentiation through
im2col convolution, pooling window extraction and label lookup.
"""

import numpy as np

from .function import Function


class Reshape(Function):
    """View the data under a new shape (adjoint reshapes back)."""

    def forward(self, a, shape):
        self.in_shape = a.shape
        return a.reshape(shape)

    def backward(self, grad_out):
        return (grad_out.reshape(self.in_shape),)


class Transpose(Function):
    """Permute axes (numpy semantics; ``axes=None`` reverses them)."""

    def forward(self, a, axes=None):
        if axes is None:
            axes = tuple(reversed(range(a.ndim)))
        self.axes = tuple(axes)
        return np.transpose(a, self.axes)

    def backward(self, grad_out):
        inverse = np.argsort(self.axes)
        return (grad_out.transpose(tuple(int(i) for i in inverse)),)


class Expand(Function):
    """Broadcast to ``shape`` (materialized); adjoint sums the axes back."""

    def forward(self, a, shape):
        self.in_shape = a.shape
        return np.broadcast_to(a, shape).copy()

    def backward(self, grad_out):
        from .function import unbroadcast

        return (unbroadcast(grad_out, self.in_shape),)


class Pad(Function):
    """Constant-pad with ``pad_width`` in numpy format; adjoint slices."""

    def forward(self, a, pad_width, value=0.0):
        self.key = tuple(
            slice(lo, lo + size) for (lo, _hi), size in zip(pad_width, a.shape)
        )
        return np.pad(a, pad_width, mode="constant", constant_values=value)

    def backward(self, grad_out):
        return (grad_out[self.key],)


class Slice(Function):
    """Basic indexing ``a[key]``; adjoint scatters into a zero tensor."""

    def forward(self, a, key):
        self.key = key
        self.in_shape = a.shape
        return a[key].copy()

    def backward(self, grad_out):
        return (Unslice.apply(grad_out, key=self.key, in_shape=self.in_shape),)


class Unslice(Function):
    """Adjoint of :class:`Slice`: place ``g`` into zeros at ``key``."""

    def forward(self, g, key, in_shape):
        self.key = key
        out = np.zeros(in_shape, dtype=g.dtype)
        out[key] = g
        return out

    def backward(self, grad_out):
        return (grad_out[self.key],)


class Concat(Function):
    """Concatenate tensors along ``axis``; adjoint slices the pieces."""

    def forward(self, *arrays, axis=0):
        self.axis = axis
        self.sizes = [arr.shape[axis] for arr in arrays]
        return np.concatenate(arrays, axis=axis)

    def backward(self, grad_out):
        grads = []
        start = 0
        for size in self.sizes:
            key = [slice(None)] * grad_out.ndim
            key[self.axis] = slice(start, start + size)
            grads.append(grad_out[tuple(key)])
            start += size
        return tuple(grads)


class TakeFlat(Function):
    """Gather from the flattened input: ``out = a.ravel()[indices]``.

    ``indices`` may have any shape; the output takes that shape.  The
    adjoint is :class:`ScatterAddFlat` (duplicate indices accumulate).
    """

    def forward(self, a, indices):
        self.indices = indices
        self.in_shape = a.shape
        return a.reshape(-1)[indices]

    def backward(self, grad_out):
        return (
            ScatterAddFlat.apply(grad_out, indices=self.indices, in_shape=self.in_shape),
        )


class ScatterAddFlat(Function):
    """Adjoint of :class:`TakeFlat`: scatter-add ``g`` into zeros."""

    def forward(self, g, indices, in_shape):
        self.indices = indices
        out = np.zeros(int(np.prod(in_shape)), dtype=g.dtype)
        np.add.at(out, indices.reshape(-1), g.reshape(-1))
        return out.reshape(in_shape)

    def backward(self, grad_out):
        return (grad_out.take_flat(self.indices),)


def concat(tensors, axis=0):
    """Differentiable concatenation of a sequence of tensors."""
    return Concat.apply(*tensors, axis=axis)
