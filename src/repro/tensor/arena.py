"""Step-scoped buffer arena — opt-in output-array reuse across steps.

Training steps execute the *same* op sequence every batch: the k-th op
of step N+1 needs an output array of exactly the shape and dtype the
k-th op of step N already allocated.  The arena exploits that: while a
:func:`arena` context is active, participating ops draw their output
buffers from a slot list indexed by a per-step cursor instead of
calling ``np.empty`` — :func:`arena_step` (called by every trainer at
the top of ``training_step``) rewinds the cursor, so step N+1 writes
into step N's arrays.

Memory model / safety invariants (see ``docs/engine-performance.md``):

* **Off by default.**  No behavior changes unless user code enters
  ``with arena(): ...``.
* **Bit-identical when on.**  Buffers are only handed to numpy ``out=``
  arguments (``np.add(..., out=)``, ``np.matmul(..., out=)``,
  ``np.take(..., out=)``), which compute exactly the same values as a
  fresh allocation.
* **A slot buffer is private to its step.**  The cursor is monotonic
  between rewinds, so no two ``take`` calls in one step return the same
  array; a buffer is only rewritten on the *next* step, by which time
  the previous step's graph (and anything derived from it without a
  copy) must be dead.  Code that retains arrays across steps —
  optimizer state, BatchNorm running stats, collected gradients —
  must copy, which every in-tree consumer already does.
* **Mismatch falls back to allocation.**  If the op sequence changes
  (different batch shape, eval pass, first step), a shape/dtype
  mismatch replaces the slot; ``evaluate``-style code paths run under
  :func:`arena_pause` so they neither consume nor grow slots.
* **Bounded.**  Slot memory is capped (``max_bytes``); beyond the cap
  ``take`` degrades to plain allocation, so a pathological op stream
  cannot OOM the process.
"""

from contextlib import contextmanager

import numpy as np

#: Default cap on total slot memory per arena (256 MiB).
DEFAULT_MAX_BYTES = 256 * 1024 * 1024

_ACTIVE = None


class BufferArena:
    """Slot list of reusable output arrays, rewound once per step."""

    __slots__ = ("_slots", "_cursor", "max_bytes", "nbytes", "hits", "misses", "steps")

    def __init__(self, max_bytes=DEFAULT_MAX_BYTES):
        self._slots = []
        self._cursor = 0
        self.max_bytes = int(max_bytes)
        self.nbytes = 0
        self.hits = 0
        self.misses = 0
        self.steps = 0

    def begin_step(self):
        """Rewind the cursor: subsequent takes reuse this arena's slots."""
        self._cursor = 0
        self.steps += 1

    def take(self, shape, dtype):
        """Return a reusable ``np.empty(shape, dtype)``-equivalent array.

        The caller owns the buffer until the next :meth:`begin_step`
        and must fully overwrite it (it is handed to ``out=`` of a
        numpy op, never read).
        """
        slots = self._slots
        index = self._cursor
        if index < len(slots):
            buf = slots[index]
            if buf.shape == shape and buf.dtype == dtype:
                self._cursor = index + 1
                self.hits += 1
                return buf
            new = np.empty(shape, dtype=dtype)
            self.nbytes += new.nbytes - buf.nbytes
            slots[index] = new
            self._cursor = index + 1
            self.misses += 1
            return new
        new = np.empty(shape, dtype=dtype)
        if self.nbytes + new.nbytes > self.max_bytes:
            # Over the cap: degrade to plain allocation, don't grow.
            self.misses += 1
            return new
        slots.append(new)
        self.nbytes += new.nbytes
        self._cursor = index + 1
        self.misses += 1
        return new

    @property
    def slot_count(self):
        return len(self._slots)

    def __repr__(self):
        return (
            f"BufferArena(slots={len(self._slots)}, nbytes={self.nbytes}, "
            f"hits={self.hits}, misses={self.misses}, steps={self.steps})"
        )


def unary_out(x):
    """Arena buffer matching ``x``'s geometry, or ``None`` to allocate.

    Designed to feed a ufunc's ``out=`` argument directly — ufuncs
    treat ``out=None`` as "allocate normally", so call sites stay
    one-liners: ``np.exp(a, out=unary_out(a))``.
    """
    active = _ACTIVE
    if active is None:
        return None
    return active.take(x.shape, x.dtype)


def binary_out(x, y):
    """Arena buffer for elementwise ``ufunc(x, y)``, or ``None``.

    Only offered when both operands share a dtype, so the buffer dtype
    is certainly the result dtype (a mismatched ``out=`` would either
    error or silently downcast under ufunc casting rules).
    """
    active = _ACTIVE
    if active is None or x.dtype != y.dtype:
        return None
    if x.shape == y.shape:
        return active.take(x.shape, x.dtype)
    return active.take(np.broadcast_shapes(x.shape, y.shape), x.dtype)


def matmul_out(x, y):
    """Arena buffer shaped like ``np.matmul(x, y)``, or ``None``."""
    active = _ACTIVE
    if active is None or x.dtype != y.dtype or x.ndim < 2 or y.ndim < 2:
        return None
    shape = np.broadcast_shapes(x.shape[:-2], y.shape[:-2]) + (x.shape[-2], y.shape[-1])
    return active.take(shape, x.dtype)


def zeros_buf(shape, dtype):
    """Zero-filled array: an arena slot when active, ``np.zeros`` otherwise."""
    active = _ACTIVE
    if active is None:
        return np.zeros(shape, dtype=dtype)
    if not isinstance(shape, tuple):
        shape = (shape,) if isinstance(shape, int) else tuple(shape)
    buf = active.take(shape, dtype)
    buf.fill(0)
    return buf


def current_arena():
    """The active arena, or ``None`` outside an :func:`arena` context."""
    return _ACTIVE


def arena_active():
    """``True`` while an arena context is active (and not paused)."""
    return _ACTIVE is not None


def arena_step():
    """Mark a step boundary; no-op when no arena is active.

    Every trainer calls this at the top of ``training_step`` so the
    arena's cursor rewinds exactly once per optimization step.
    """
    active = _ACTIVE
    if active is not None:
        active.begin_step()


def arena_take(shape, dtype):
    """Arena buffer for an op output, or ``None`` to allocate normally."""
    active = _ACTIVE
    if active is None:
        return None
    return active.take(shape, dtype)


@contextmanager
def arena(max_bytes=DEFAULT_MAX_BYTES):
    """Activate a fresh :class:`BufferArena` for the enclosed block.

    ::

        with arena() as buffers:
            trainer.fit(train_loader, epochs=10)
        print(buffers)   # hit/miss/slot statistics

    Nesting replaces the outer arena for the inner block (each context
    owns its own slots); the outer arena is restored on exit.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = BufferArena(max_bytes=max_bytes)
    try:
        yield _ACTIVE
    finally:
        _ACTIVE = previous


@contextmanager
def arena_pause():
    """Temporarily deactivate the arena (e.g. for evaluation loops).

    Paused code neither consumes the step's slots nor grows the slot
    list with shapes that will never recur in training steps.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = None
    try:
        yield
    finally:
        _ACTIVE = previous
