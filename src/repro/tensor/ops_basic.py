"""Arithmetic primitives: add, neg, mul, pow and (batched) matmul.

All backward rules are written with Tensor operations so that the
backward pass is itself differentiable (double backprop).
"""

import numpy as np

from .function import Function, unbroadcast


class Add(Function):
    """Elementwise ``a + b`` with numpy broadcasting."""

    def forward(self, a, b):
        self.a_shape = a.shape
        self.b_shape = b.shape
        return a + b

    def backward(self, grad_out):
        return (
            unbroadcast(grad_out, self.a_shape),
            unbroadcast(grad_out, self.b_shape),
        )


class Neg(Function):
    """Elementwise negation."""

    def forward(self, a):
        return -a

    def backward(self, grad_out):
        return (-grad_out,)


class Mul(Function):
    """Elementwise ``a * b`` with numpy broadcasting."""

    def forward(self, a, b):
        self.a_shape = a.shape
        self.b_shape = b.shape
        return a * b

    def backward(self, grad_out):
        a, b = self.inputs
        return (
            unbroadcast(grad_out * b, self.a_shape),
            unbroadcast(grad_out * a, self.b_shape),
        )


class Pow(Function):
    """Elementwise ``a ** exponent`` for a constant scalar exponent.

    The gradient ``p * a**(p-1)`` is undefined at 0 for ``p < 1``; the
    engine leaves that to the caller (e.g. ``Tensor.norm`` offers an
    ``eps`` for a smooth square root at zero).
    """

    def forward(self, a, exponent):
        self.exponent = exponent
        return a ** exponent

    def backward(self, grad_out):
        (a,) = self.inputs
        p = self.exponent
        if p == 1.0:
            return (grad_out,)
        if p == 2.0:
            return (grad_out * (a * 2.0),)
        return (grad_out * (a.pow(p - 1.0) * p),)


class MatMul(Function):
    """Matrix product with numpy ``matmul`` semantics (>= 2-D inputs).

    Batched stacks broadcast over leading dimensions; the backward rule
    contracts the broadcast batch axes back with :func:`unbroadcast`.
    Grouped convolution relies on the 3-D batched case.
    """

    def forward(self, a, b):
        if a.ndim < 2 or b.ndim < 2:
            raise ValueError(
                f"MatMul requires >=2-D operands, got {a.ndim}-D @ {b.ndim}-D"
            )
        self.a_shape = a.shape
        self.b_shape = b.shape
        return np.matmul(a, b)

    def backward(self, grad_out):
        a, b = self.inputs
        grad_a = grad_out @ b.swapaxes(-1, -2)
        grad_b = a.swapaxes(-1, -2) @ grad_out
        return (
            unbroadcast(grad_a, self.a_shape),
            unbroadcast(grad_b, self.b_shape),
        )
