"""Arithmetic primitives: add, neg, mul, pow and (batched) matmul.

All ``backward`` rules are written with Tensor operations so that the
backward pass is itself differentiable (double backprop).  Each op also
carries a ``backward_raw`` mirror used by first-order ``backward()``:
the same numpy calls in the same order, on raw arrays — bit-identical
results without graph bookkeeping.  Forwards draw output buffers from
the step arena when one is active (:mod:`repro.tensor.arena`); ufuncs
treat ``out=None`` as a plain allocation, so the inactive path is
unchanged.
"""

import numpy as np

from .arena import binary_out as _binary_out, matmul_out as _matmul_out, unary_out as _unary_out
from .function import Function, as_array, unbroadcast, unbroadcast_raw


class Add(Function):
    """Elementwise ``a + b`` with numpy broadcasting."""

    def forward(self, a, b):
        self.a_shape = a.shape
        self.b_shape = b.shape
        return np.add(a, b, out=_binary_out(a, b))

    def backward(self, grad_out):
        return (
            unbroadcast(grad_out, self.a_shape),
            unbroadcast(grad_out, self.b_shape),
        )

    def backward_raw(self, grad_out):
        return (
            unbroadcast_raw(grad_out, self.a_shape),
            unbroadcast_raw(grad_out, self.b_shape),
        )


class Neg(Function):
    """Elementwise negation."""

    def forward(self, a):
        return np.negative(a, out=_unary_out(a))

    def backward(self, grad_out):
        return (-grad_out,)

    def backward_raw(self, grad_out):
        return (np.negative(grad_out, out=_unary_out(grad_out)),)


class Mul(Function):
    """Elementwise ``a * b`` with numpy broadcasting."""

    def forward(self, a, b):
        self.a_shape = a.shape
        self.b_shape = b.shape
        return np.multiply(a, b, out=_binary_out(a, b))

    def backward(self, grad_out):
        a, b = self.inputs
        return (
            unbroadcast(grad_out * b, self.a_shape),
            unbroadcast(grad_out * a, self.b_shape),
        )

    def backward_raw(self, grad_out):
        a, b = self.inputs
        ad, bd = a.data, b.data
        grad_a = np.multiply(grad_out, bd, out=_binary_out(grad_out, bd))
        grad_b = np.multiply(grad_out, ad, out=_binary_out(grad_out, ad))
        return (
            unbroadcast_raw(grad_a, self.a_shape),
            unbroadcast_raw(grad_b, self.b_shape),
        )


class Pow(Function):
    """Elementwise ``a ** exponent`` for a constant scalar exponent.

    The gradient ``p * a**(p-1)`` is undefined at 0 for ``p < 1``; the
    engine leaves that to the caller (e.g. ``Tensor.norm`` offers an
    ``eps`` for a smooth square root at zero).
    """

    def forward(self, a, exponent):
        self.exponent = exponent
        return a ** exponent

    def backward(self, grad_out):
        (a,) = self.inputs
        p = self.exponent
        if p == 1.0:
            return (grad_out,)
        if p == 2.0:
            return (grad_out * (a * 2.0),)
        return (grad_out * (a.pow(p - 1.0) * p),)

    def backward_raw(self, grad_out):
        (a,) = self.inputs
        ad = a.data
        p = self.exponent
        if p == 1.0:
            return (grad_out,)
        if p == 2.0:
            return (_mul_into(grad_out, _scale(ad, 2.0)),)
        t = np.asarray(ad ** (p - 1.0))
        # Mirror the graph route exactly: the scalar factor p is cast
        # to the policy dtype there (Tensor(p)), which matters for
        # non-representable exponents under a float32 policy.
        s = as_array(p)
        t = np.multiply(t, s, out=t) if s.dtype == t.dtype else np.multiply(t, s)
        return (_mul_into(grad_out, np.asarray(t)),)


class MatMul(Function):
    """Matrix product with numpy ``matmul`` semantics (>= 2-D inputs).

    Batched stacks broadcast over leading dimensions; the backward rule
    contracts the broadcast batch axes back with :func:`unbroadcast`.
    Grouped convolution relies on the 3-D batched case.
    """

    def forward(self, a, b):
        if a.ndim < 2 or b.ndim < 2:
            raise ValueError(
                f"MatMul requires >=2-D operands, got {a.ndim}-D @ {b.ndim}-D"
            )
        self.a_shape = a.shape
        self.b_shape = b.shape
        return np.matmul(a, b, out=_matmul_out(a, b))

    def backward(self, grad_out):
        a, b = self.inputs
        grad_a = grad_out @ b.swapaxes(-1, -2)
        grad_b = a.swapaxes(-1, -2) @ grad_out
        return (
            unbroadcast(grad_a, self.a_shape),
            unbroadcast(grad_b, self.b_shape),
        )

    def backward_raw(self, grad_out):
        a, b = self.inputs
        bt = b.data.swapaxes(-1, -2)
        at = a.data.swapaxes(-1, -2)
        grad_a = np.matmul(grad_out, bt, out=_matmul_out(grad_out, bt))
        grad_b = np.matmul(at, grad_out, out=_matmul_out(at, grad_out))
        return (
            unbroadcast_raw(grad_a, self.a_shape),
            unbroadcast_raw(grad_b, self.b_shape),
        )


def _scale(x, c):
    """``x * c`` with ``c`` cast to the policy dtype, as the graph
    route's ``Tensor(c)`` wrapping does.  Arena-buffered only when the
    result dtype is certain (scalar dtype == array dtype)."""
    s = as_array(c)
    if s.dtype == x.dtype:
        return np.multiply(x, s, out=_unary_out(x))
    return np.asarray(np.multiply(x, s))


def _mul_into(grad_out, t):
    """``grad_out * t`` writing into ``t`` when dtypes permit.

    ``t`` is always a scratch array private to the caller; writing the
    product into it saves an allocation.  A dtype mismatch (e.g. a
    float64 upstream gradient against a float32 recomputation) must
    allocate: a narrower ``out=`` would silently downcast.
    """
    if grad_out.dtype == t.dtype and grad_out.shape == t.shape and t.flags.writeable:
        return np.multiply(grad_out, t, out=t)
    return np.multiply(grad_out, t)
