"""The engine precision policy — one process-level default dtype.

Every allocation in the engine (tensor constructors, parameter init,
optimizer state, dataset arrays, quantizer grids) flows through this
module instead of hardcoding ``np.float64``.  The default is
**float32**: at this reproduction's scale the engine is memory-bandwidth
bound, and single precision roughly halves the bytes every
forward/backward pass moves.  Double precision remains a first-class
citizen — verification-grade numerics (finite-difference grad checks,
exact-HVP ablations, Lanczos/power-iteration eigensolves) explicitly
request :data:`VERIFY_DTYPE`.

Resolution order for the process default:

1. ``set_default_dtype()`` / ``dtype_context()`` calls at runtime;
2. the ``REPRO_DTYPE`` environment variable at import time
   (``float32``/``float64``, aliases ``f32``/``f64``/``single``/
   ``double``);
3. the built-in default, float32.

``dtype_context`` is re-entrant and exception-safe; sweep workers
inherit the policy through the environment (and
:func:`repro.experiments.sweep.run_sweep` pins each config's dtype
before dispatch so parent and workers agree on cache keys).

Examples
--------
Scoped and process-wide overrides from Python::

    from repro.tensor import dtype_context, set_default_dtype

    with dtype_context("float64"):      # verification-grade numerics
        check_gradient(fn, arrays)

    set_default_dtype("float64")        # everything from here on

From the shell — the same knob every entry point honors (dataset
arrays, run-cache keys and dataset-cache keys all follow it)::

    REPRO_DTYPE=float64 python -m repro.experiments table1
    REPRO_DTYPE=f32 REPRO_WORKERS=4 REPRO_CACHE_DIR=/tmp/repro \\
        python -m repro.experiments sweep --profile smoke
"""

import os
from contextlib import contextmanager

import numpy as np

#: Environment variable naming the process-level engine dtype.
DTYPE_ENV = "REPRO_DTYPE"

#: Precision used by verification-grade numerics regardless of the
#: engine policy (grad checks, exact HVP, eigensolves).
VERIFY_DTYPE = np.dtype(np.float64)

#: Accepted spellings for each supported engine dtype.
_DTYPE_ALIASES = {
    "float32": np.float32,
    "f32": np.float32,
    "single": np.float32,
    "float64": np.float64,
    "f64": np.float64,
    "double": np.float64,
}


def resolve_dtype(dtype):
    """Normalize ``dtype`` (name, numpy dtype or ``None``) to a dtype.

    ``None`` resolves to the current engine default.  Anything that is
    not a supported floating dtype raises ``ValueError`` — the engine
    only computes in float32 or float64.
    """
    if dtype is None:
        return default_dtype()
    if isinstance(dtype, str):
        try:
            return np.dtype(_DTYPE_ALIASES[dtype.strip().lower()])
        except KeyError:
            raise ValueError(
                f"unsupported engine dtype {dtype!r}; "
                f"use one of {sorted(_DTYPE_ALIASES)}"
            ) from None
    resolved = np.dtype(dtype)
    if resolved not in (np.dtype(np.float32), np.dtype(np.float64)):
        raise ValueError(
            f"unsupported engine dtype {resolved}; engine computes in float32/float64"
        )
    return resolved


def dtype_from_env(environ=None):
    """Engine dtype named by ``REPRO_DTYPE`` (float32 when unset)."""
    environ = os.environ if environ is None else environ
    name = environ.get(DTYPE_ENV)
    return resolve_dtype(name) if name else np.dtype(np.float32)


_default_dtype = dtype_from_env()


def default_dtype():
    """The current process-level engine dtype."""
    return _default_dtype


def dtype_name(dtype=None):
    """Canonical string name (``"float32"``/``"float64"``) of a dtype."""
    return resolve_dtype(dtype).name


def set_default_dtype(dtype):
    """Set the process-level engine dtype; returns the previous one."""
    global _default_dtype
    previous = _default_dtype
    _default_dtype = resolve_dtype(dtype)
    return previous


@contextmanager
def dtype_context(dtype):
    """Temporarily run the engine under ``dtype``.

    ::

        with dtype_context("float64"):
            check_gradient(fn, arrays)   # verification-grade numerics
    """
    previous = set_default_dtype(dtype)
    try:
        yield default_dtype()
    finally:
        set_default_dtype(previous)
