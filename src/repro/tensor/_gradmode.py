"""Gradient-mode switch for the autograd engine (thread-local).

The engine builds a computation graph only while grad mode is enabled
(the default).  ``no_grad`` disables graph construction, which is used
both by user code (evaluation loops, optimizer updates) and internally
by ``Tensor.backward`` when ``create_graph=False``.

The mode is **per thread**: concurrent inference threads (the serving
layer's workers) each toggle their own flag, so interleaved
``no_grad`` blocks cannot restore another thread's stale "previous"
value and strand the whole process in no-grad mode.  Every new thread
starts with grad enabled.
"""

import threading
from contextlib import contextmanager


class _GradMode(threading.local):
    def __init__(self):
        self.enabled = True


_MODE = _GradMode()


def is_grad_enabled():
    """Return ``True`` when operations record the autograd graph."""
    return _MODE.enabled


def set_grad_enabled(mode):
    """Set this thread's grad mode to ``mode``; return the previous mode."""
    previous = _MODE.enabled
    _MODE.enabled = bool(mode)
    return previous


@contextmanager
def no_grad():
    """Context manager that disables graph construction.

    Example
    -------
    >>> from repro.tensor import Tensor, no_grad
    >>> x = Tensor([1.0], requires_grad=True)
    >>> with no_grad():
    ...     y = x * 2.0
    >>> y.requires_grad
    False
    """
    previous = set_grad_enabled(False)
    try:
        yield
    finally:
        set_grad_enabled(previous)


@contextmanager
def enable_grad():
    """Context manager that re-enables graph construction inside ``no_grad``."""
    previous = set_grad_enabled(True)
    try:
        yield
    finally:
        set_grad_enabled(previous)
