"""Global gradient-mode switch for the autograd engine.

The engine builds a computation graph only while grad mode is enabled
(the default).  ``no_grad`` disables graph construction, which is used
both by user code (evaluation loops, optimizer updates) and internally
by ``Tensor.backward`` when ``create_graph=False``.
"""

from contextlib import contextmanager

_GRAD_ENABLED = True


def is_grad_enabled():
    """Return ``True`` when operations record the autograd graph."""
    return _GRAD_ENABLED


def set_grad_enabled(mode):
    """Set grad mode to ``mode`` and return the previous mode."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = bool(mode)
    return previous


@contextmanager
def no_grad():
    """Context manager that disables graph construction.

    Example
    -------
    >>> from repro.tensor import Tensor, no_grad
    >>> x = Tensor([1.0], requires_grad=True)
    >>> with no_grad():
    ...     y = x * 2.0
    >>> y.requires_grad
    False
    """
    previous = set_grad_enabled(False)
    try:
        yield
    finally:
        set_grad_enabled(previous)


@contextmanager
def enable_grad():
    """Context manager that re-enables graph construction inside ``no_grad``."""
    previous = set_grad_enabled(True)
    try:
        yield
    finally:
        set_grad_enabled(previous)
