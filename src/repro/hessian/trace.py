"""Hutchinson stochastic trace estimator for the Hessian.

``tr(H) = E_z [z^T H z]`` with Rademacher or Gaussian probes; the same
identity underlies the paper's Eq. 13 (``sum_i lambda_i^2 =
E_z ||H z||^2``), so this module also provides the squared-eigenvalue
sum estimator used to validate HERO's regularizer target.
"""

import numpy as np


def _flat_dot(a_list, b_list):
    return sum(float(np.sum(np.asarray(a) * np.asarray(b))) for a, b in zip(a_list, b_list))


def hutchinson_trace(hvp_fn, shapes, samples=8, seed=0, distribution="rademacher"):
    """Estimate ``tr(H)``.

    Returns ``(estimate, per_sample_values)`` so callers can compute
    confidence intervals.
    """
    rng = np.random.default_rng(seed)
    values = []
    for _ in range(samples):
        probe = _draw(rng, shapes, distribution)
        hv = hvp_fn(probe)
        values.append(_flat_dot(probe, hv))
    return float(np.mean(values)), values


def eigenvalue_square_sum(hvp_fn, shapes, samples=8, seed=0, distribution="gaussian"):
    """Estimate ``sum_i lambda_i^2 = E_z ||H z||^2`` (Eq. 13).

    Gaussian probes give the unbiased estimator the paper states;
    Rademacher probes work too (same second moment).
    """
    rng = np.random.default_rng(seed)
    values = []
    for _ in range(samples):
        probe = _draw(rng, shapes, distribution)
        hv = hvp_fn(probe)
        values.append(_flat_dot(hv, hv))
    return float(np.mean(values)), values


def _draw(rng, shapes, distribution):
    if distribution == "rademacher":
        return [rng.integers(0, 2, size=shape) * 2.0 - 1.0 for shape in shapes]
    if distribution == "gaussian":
        return [rng.standard_normal(shape) for shape in shapes]
    raise ValueError(f"unknown probe distribution {distribution!r}")
