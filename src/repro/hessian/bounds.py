"""Theorem 3's perturbation lower bounds, computed and empirically checked.

The paper's central theoretical object: the minimal norm a weight
perturbation needs to raise the loss by ``c``,

    ||g||_2 / v * (sqrt(1 + 2 v c / ||g||_2^2) - 1)  <=  ||delta*||_2   (Eq. 6)
    |g|_1 / (n v) * (sqrt(1 + 2 n v c / |g|_1^2) - 1) <= ||delta*||_inf (Eq. 7)

with ``g`` the gradient, ``v = lambda_max(H)`` and ``n = ||W||_0``.
Larger bounds mean more perturbation headroom — HERO's goal.

:func:`theorem3_bounds` evaluates both bounds for a model on a batch;
:func:`empirical_loss_increase` probes the actual loss change under
random perturbations of a given norm so the bound can be validated
(and is, in the tests, on quadratics where everything is exact).
"""

import numpy as np

from ..tensor import Tensor, no_grad
from .eigen import power_iteration
from .hvp import batch_gradients, hvp_finite_diff, model_params, restore_buffers, snapshot_buffers


def _flat(vectors):
    return np.concatenate([np.asarray(v).reshape(-1) for v in vectors])


def bound_l2(grad_norm, v, c):
    """Eq. 6 right-hand side; ``inf`` when the Hessian is flat (v <= 0)."""
    if c <= 0:
        raise ValueError(f"loss-increase tolerance c must be positive, got {c}")
    if v <= 0:
        # Quadratic term vanishes: delta* >= c / ||g||.
        return np.inf if grad_norm == 0 else c / grad_norm
    if grad_norm == 0:
        return np.sqrt(2.0 * c / v)
    ratio = 2.0 * v * c / grad_norm ** 2
    return grad_norm / v * (np.sqrt(1.0 + ratio) - 1.0)


def bound_linf(grad_l1, v, c, n):
    """Eq. 7 right-hand side (``n`` = number of nonzero weights)."""
    if c <= 0:
        raise ValueError(f"loss-increase tolerance c must be positive, got {c}")
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if v <= 0:
        return np.inf if grad_l1 == 0 else c / grad_l1
    if grad_l1 == 0:
        return np.sqrt(2.0 * c / (n * v))
    ratio = 2.0 * n * v * c / grad_l1 ** 2
    return grad_l1 / (n * v) * (np.sqrt(1.0 + ratio) - 1.0)


def gradl1_limit_linf(v, c, n):
    """Eq. 12: the l-inf bound's limit when ``|g| -> 0``.

    Shows why GRAD-L1 alone is insufficient — the limit still shrinks
    as ``v`` grows, which only Hessian regularization controls.
    """
    if v <= 0:
        return np.inf
    return np.sqrt(2.0 * c / (n * v))


def theorem3_bounds(model, loss_fn, x, y, c=0.1, power_iters=15, seed=0):
    """Evaluate Eq. 6/7 for ``model`` on a batch.

    Returns a dict with the ingredients (``grad_norm``, ``grad_l1``,
    ``lambda_max``, ``n``) and the two bounds.  ``lambda_max`` comes
    from power iteration over finite-difference HVPs.
    """
    params = model_params(model)
    _loss, grads = batch_gradients(model, loss_fn, x, y)
    flat_grad = _flat(grads)
    shapes = [p.shape for p in params]
    v, _vec, _hist = power_iteration(
        lambda vec: hvp_finite_diff(model, loss_fn, x, y, vec),
        shapes,
        iters=power_iters,
        seed=seed,
    )
    v = max(float(v), 0.0)  # Theorem 3 assumes v >= 0
    n = int(sum((p.data != 0).sum() for p in params))
    grad_norm = float(np.linalg.norm(flat_grad))
    grad_l1 = float(np.abs(flat_grad).sum())
    return {
        "grad_norm": grad_norm,
        "grad_l1": grad_l1,
        "lambda_max": v,
        "n": n,
        "c": c,
        "l2_bound": bound_l2(grad_norm, v, c),
        "linf_bound": bound_linf(grad_l1, v, c, n),
        "gradl1_limit": gradl1_limit_linf(v, c, n),
    }


def empirical_loss_increase(model, loss_fn, x, y, radius, norm="l2", samples=8, seed=0):
    """Max observed loss increase under random perturbations of ``radius``.

    ``norm="l2"`` draws directions uniformly on the l2 sphere of that
    radius; ``norm="linf"`` uses sign vectors scaled to ``radius``.
    Used to check Theorem 3: for ``radius`` below the bound, the
    increase should stay below ``c`` (up to higher-order terms).
    """
    if norm not in ("l2", "linf"):
        raise ValueError(f"norm must be 'l2' or 'linf', got {norm!r}")
    params = model_params(model)
    rng = np.random.default_rng(seed)
    buffers = snapshot_buffers(model)
    originals = [p.data.copy() for p in params]

    def batch_loss():
        model.eval()
        with no_grad():
            value = float(loss_fn(model(Tensor(x)), y).data)
        model.train()
        return value

    base = batch_loss()
    worst = -np.inf
    try:
        for _ in range(samples):
            if norm == "l2":
                direction = [rng.standard_normal(p.shape) for p in params]
                scale = radius / np.linalg.norm(_flat(direction))
                offsets = [scale * d for d in direction]
            else:
                offsets = [radius * np.sign(rng.standard_normal(p.shape)) for p in params]
            for p, o in zip(params, offsets):
                p.data = p.data + o
            worst = max(worst, batch_loss() - base)
            for p, orig in zip(params, originals):
                p.data = orig.copy()
    finally:
        for p, orig in zip(params, originals):
            p.data = orig
        restore_buffers(model, buffers)
    return worst
