"""Dense Hessian assembly for small models.

For models with up to a few thousand parameters the full Hessian is
tractable: one exact HVP per basis vector.  Used to validate the
iterative estimators (power iteration, Lanczos, Hutchinson) against
``numpy.linalg.eigh`` ground truth, and to inspect curvature spectra
of toy models directly.
"""

import numpy as np

from .hvp import HVPOperator, model_params


def parameter_count(model):
    """Total scalar parameter count."""
    return int(sum(p.size for p in model_params(model)))


def full_hessian(model, loss_fn, x, y, max_params=4000):
    """Assemble the dense Hessian of the batch loss.

    Refuses to run on models with more than ``max_params`` parameters
    (quadratic memory, one double backprop per column — the forward
    graph is built once and shared by all ``n`` columns via
    :class:`~repro.hessian.hvp.HVPOperator`).
    Returns an ``(n, n)`` symmetric matrix in flat parameter order.
    """
    params = model_params(model)
    n = parameter_count(model)
    if n > max_params:
        raise ValueError(
            f"model has {n} parameters; dense Hessian capped at {max_params}"
        )
    shapes = [p.shape for p in params]
    sizes = [p.size for p in params]
    operator = HVPOperator(model, loss_fn, x, y)
    hessian = np.empty((n, n))
    for column in range(n):
        flat = np.zeros(n)
        flat[column] = 1.0
        vectors = []
        offset = 0
        for shape, size in zip(shapes, sizes):
            vectors.append(flat[offset : offset + size].reshape(shape))
            offset += size
        hv = operator.matvec(vectors)
        hessian[:, column] = np.concatenate([v.reshape(-1) for v in hv])
    return hessian


def hessian_spectrum(model, loss_fn, x, y, max_params=4000):
    """Eigenvalues (ascending) of the dense Hessian."""
    hessian = full_hessian(model, loss_fn, x, y, max_params=max_params)
    # Symmetrize against numerical asymmetry before eigh.
    return np.linalg.eigvalsh(0.5 * (hessian + hessian.T))
