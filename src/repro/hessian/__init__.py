"""``repro.hessian`` — curvature measurement tools.

Hessian-vector products (exact and finite-difference), dominant
eigenvalues (power iteration / Lanczos), Hutchinson trace and Eq. 13's
``sum lambda_i^2`` estimator, and the paper's ``||Hz||`` metric.
"""

from .hvp import (
    HVPOperator,
    batch_gradients,
    hvp_exact,
    hvp_finite_diff,
    model_params,
    restore_buffers,
    snapshot_buffers,
)
from .eigen import power_iteration, lanczos_eigenvalues
from .trace import hutchinson_trace, eigenvalue_square_sum
from .norm import hz_norm, hz_norm_on_batch
from .dense import full_hessian, hessian_spectrum, parameter_count
from .bounds import (
    bound_l2,
    bound_linf,
    gradl1_limit_linf,
    theorem3_bounds,
    empirical_loss_increase,
)

__all__ = [
    "full_hessian",
    "hessian_spectrum",
    "parameter_count",
    "bound_l2",
    "bound_linf",
    "gradl1_limit_linf",
    "theorem3_bounds",
    "empirical_loss_increase",
    "HVPOperator",
    "batch_gradients",
    "hvp_exact",
    "hvp_finite_diff",
    "model_params",
    "snapshot_buffers",
    "restore_buffers",
    "power_iteration",
    "lanczos_eigenvalues",
    "hutchinson_trace",
    "eigenvalue_square_sum",
    "hz_norm",
    "hz_norm_on_batch",
]
