"""The paper's ``||Hz||`` Hessian-norm metric (Fig. 2a).

Following Sec. 5.4: ``z`` is the Eq. 15 perturbation (gradient
direction, layer-adaptively scaled), and ``||Hz||`` is estimated with
the same finite difference the training objective uses:

    H z ~ ( dL/dW(W + h z) - dL/dW(W) ) / h .

Averaged over training batches, this is the curve plotted against
training epochs for HERO / GRAD-L1 / SGD.
"""

import numpy as np

from ..core.perturbation import PERTURBATIONS
from .hvp import batch_gradients, model_params, restore_buffers, snapshot_buffers


def hz_norm_on_batch(model, loss_fn, x, y, h=0.5, perturbation="layer_adaptive"):
    """``||H z||_2`` (flattened over all layers) on a single batch."""
    params = model_params(model)
    buffers = snapshot_buffers(model)
    try:
        _, clean = batch_gradients(model, loss_fn, x, y)
        offsets = PERTURBATIONS[perturbation](params, clean, h)
        for p, dz in zip(params, offsets):
            p.data = p.data + dz
        _, shifted = batch_gradients(model, loss_fn, x, y)
        for p, dz in zip(params, offsets):
            p.data = p.data - dz
    finally:
        restore_buffers(model, buffers)
    total = sum(float(np.sum((gs - gc) ** 2)) for gs, gc in zip(shifted, clean))
    return np.sqrt(total) / h


def hz_norm(model, loss_fn, loader, h=0.5, perturbation="layer_adaptive", max_batches=None):
    """Mean ``||Hz||`` over (up to ``max_batches`` of) a data loader."""
    values = []
    for index, (x, y) in enumerate(loader):
        if max_batches is not None and index >= max_batches:
            break
        values.append(hz_norm_on_batch(model, loss_fn, x, y, h=h, perturbation=perturbation))
    if not values:
        raise ValueError("loader produced no batches")
    return float(np.mean(values))
