"""Top Hessian eigenvalues: power iteration and Lanczos.

Theorem 3 of the paper bounds the admissible weight perturbation by
``v = lambda_max(H)``; these estimators measure ``v`` for trained
models so the theory can be checked directly (and are used by the
Fig. 2 bench alongside the cheaper ``||Hz||`` proxy).
"""

import numpy as np
from scipy.sparse.linalg import LinearOperator, eigsh

from ..tensor import VERIFY_DTYPE


def _flatten(vectors):
    return np.concatenate([np.asarray(v).reshape(-1) for v in vectors])


def _unflatten(flat, shapes):
    out = []
    offset = 0
    for shape in shapes:
        size = int(np.prod(shape)) if shape else 1
        out.append(flat[offset : offset + size].reshape(shape))
        offset += size
    return out


def power_iteration(hvp_fn, shapes, iters=20, tol=1e-4, seed=0):
    """Dominant eigenvalue/eigenvector of the Hessian by power iteration.

    Parameters
    ----------
    hvp_fn:
        Callable mapping a list of numpy arrays (parameter-shaped) to
        ``H v`` in the same structure.
    shapes:
        Parameter shapes.
    iters, tol:
        Stop after ``iters`` rounds or when the Rayleigh quotient moves
        by less than ``tol`` (relative).

    Returns ``(eigenvalue, eigenvector_list, history)``; the history of
    Rayleigh quotients is handy for convergence diagnostics.  Note the
    dominant eigenvalue is the largest in *magnitude*.
    """
    rng = np.random.default_rng(seed)
    vec = [rng.standard_normal(shape) for shape in shapes]
    norm = np.linalg.norm(_flatten(vec))
    vec = [v / norm for v in vec]
    eigenvalue = 0.0
    history = []
    for _ in range(iters):
        hv = hvp_fn(vec)
        flat_hv = _flatten(hv)
        new_eig = float(np.dot(_flatten(vec), flat_hv))
        history.append(new_eig)
        norm = np.linalg.norm(flat_hv)
        if norm < 1e-12:
            return 0.0, vec, history
        vec = _unflatten(flat_hv / norm, shapes)
        if abs(new_eig - eigenvalue) <= tol * max(1.0, abs(new_eig)):
            eigenvalue = new_eig
            break
        eigenvalue = new_eig
    return eigenvalue, vec, history


def lanczos_eigenvalues(hvp_fn, shapes, k=3, which="LA", seed=0, maxiter=None):
    """Top-``k`` Hessian eigenvalues via scipy's Lanczos (``eigsh``).

    ``which="LA"`` returns the largest algebraic eigenvalues (the
    quantity in Theorem 3); ``"LM"`` the largest in magnitude.
    """
    total = int(sum(np.prod(s) if s else 1 for s in shapes))
    rng = np.random.default_rng(seed)

    def matvec(flat):
        # Eigensolves are verification-grade numerics: the Krylov basis
        # stays float64 even when the engine policy is float32 (the HVP
        # itself runs in the model's dtype).
        hv = hvp_fn(_unflatten(np.asarray(flat, dtype=VERIFY_DTYPE), shapes))
        return _flatten(hv).astype(VERIFY_DTYPE, copy=False)

    operator = LinearOperator((total, total), matvec=matvec, dtype=VERIFY_DTYPE)
    v0 = rng.standard_normal(total)
    values = eigsh(
        operator,
        k=min(k, total - 1),
        which=which,
        v0=v0,
        maxiter=maxiter,
        return_eigenvectors=False,
        tol=1e-3,
    )
    return np.sort(values)[::-1]
