"""Hessian-vector products for the loss of a model.

Two implementations are provided and cross-checked in the tests:

* :func:`hvp_exact` — double backpropagation (``create_graph=True``),
  mathematically exact;
* :func:`hvp_finite_diff` — central difference of gradients, the
  approximation HERO's training objective itself is built on (Eq. 14).

Both operate per-parameter-tensor, on a fixed batch, with BatchNorm
buffers snapshotted and restored so measurement has no side effects.
"""

import numpy as np

from ..tensor import Tensor


def model_params(model):
    """List the model's trainable parameters (fixed order)."""
    return list(model.parameters())


def snapshot_buffers(model):
    """Copy all registered buffers (e.g. BN running stats)."""
    return {name: buf.copy() for name, buf in model.named_buffers()}


def restore_buffers(model, snapshot):
    """Restore buffers saved by :func:`snapshot_buffers`."""
    for name, value in snapshot.items():
        owner = model
        parts = name.split(".")
        for part in parts[:-1]:
            owner = owner._modules[part]
        owner.set_buffer(parts[-1], value)


def batch_gradients(model, loss_fn, x, y, create_graph=False):
    """Gradients of the batch loss w.r.t. all parameters.

    Returns ``(loss_value, grads)`` where grads are numpy copies when
    ``create_graph`` is false, and graph tensors otherwise.  Parameter
    ``.grad`` slots are left clean.
    """
    params = model_params(model)
    for p in params:
        p.grad = None
    loss = loss_fn(model(Tensor(x)), y)
    loss.backward(create_graph=create_graph)
    grads = []
    for p in params:
        if p.grad is None:
            grads.append(
                Tensor(np.zeros_like(p.data)) if create_graph else np.zeros_like(p.data)
            )
        else:
            grads.append(p.grad if create_graph else p.grad.data.copy())
        p.grad = None
    return float(loss.data), grads


def hvp_exact(model, loss_fn, x, y, vectors):
    """Exact ``H v`` via double backprop.

    ``vectors`` is a list of numpy arrays matching the parameter
    shapes; the result has the same structure.
    """
    params = model_params(model)
    if len(vectors) != len(params):
        raise ValueError("vectors must match the number of parameters")
    buffers = snapshot_buffers(model)
    try:
        _, grads = batch_gradients(model, loss_fn, x, y, create_graph=True)
        inner = None
        for grad, vec in zip(grads, vectors):
            term = (grad * Tensor(np.asarray(vec))).sum()
            inner = term if inner is None else inner + term
        inner.backward()
        result = []
        for p in params:
            result.append(np.zeros_like(p.data) if p.grad is None else p.grad.data.copy())
            p.grad = None
    finally:
        restore_buffers(model, buffers)
    return result


def hvp_finite_diff(model, loss_fn, x, y, vectors, eps=1e-3):
    """Central-difference ``H v ~ (g(W + eps v) - g(W - eps v)) / 2 eps``.

    ``eps`` is scaled by the vector norm so the probe stays well inside
    the quadratic regime regardless of ``v``'s magnitude.
    """
    params = model_params(model)
    if len(vectors) != len(params):
        raise ValueError("vectors must match the number of parameters")
    norm = np.sqrt(sum(float(np.sum(np.asarray(v) ** 2)) for v in vectors))
    if norm == 0:
        return [np.zeros_like(p.data) for p in params]
    step = eps / norm
    buffers = snapshot_buffers(model)
    try:
        for p, v in zip(params, vectors):
            p.data = p.data + step * np.asarray(v)
        _, grads_up = batch_gradients(model, loss_fn, x, y)
        for p, v in zip(params, vectors):
            p.data = p.data - 2.0 * step * np.asarray(v)
        _, grads_down = batch_gradients(model, loss_fn, x, y)
        for p, v in zip(params, vectors):
            p.data = p.data + step * np.asarray(v)
    finally:
        restore_buffers(model, buffers)
    return [(gu - gd) / (2.0 * step) for gu, gd in zip(grads_up, grads_down)]
