"""Hessian-vector products for the loss of a model.

Two implementations are provided and cross-checked in the tests:

* :func:`hvp_exact` — double backpropagation (``create_graph=True``),
  mathematically exact;
* :func:`hvp_finite_diff` — central difference of gradients, the
  approximation HERO's training objective itself is built on (Eq. 14).

Both operate per-parameter-tensor, on a fixed batch, with BatchNorm
buffers snapshotted and restored so measurement has no side effects.
"""

import numpy as np

from ..tensor import Tensor


def model_params(model):
    """List the model's trainable parameters (fixed order)."""
    return list(model.parameters())


def snapshot_buffers(model):
    """Copy all registered buffers (e.g. BN running stats)."""
    return {name: buf.copy() for name, buf in model.named_buffers()}


def restore_buffers(model, snapshot):
    """Restore buffers saved by :func:`snapshot_buffers`."""
    for name, value in snapshot.items():
        owner = model
        parts = name.split(".")
        for part in parts[:-1]:
            owner = owner._modules[part]
        owner.set_buffer(parts[-1], value)


def batch_gradients(model, loss_fn, x, y, create_graph=False):
    """Gradients of the batch loss w.r.t. all parameters.

    Returns ``(loss_value, grads)`` where grads are numpy copies when
    ``create_graph`` is false, and graph tensors otherwise.  Parameter
    ``.grad`` slots are left clean.
    """
    params = model_params(model)
    for p in params:
        p.grad = None
    loss = loss_fn(model(Tensor(x)), y)
    loss.backward(create_graph=create_graph)
    grads = []
    for p in params:
        if p.grad is None:
            grads.append(
                Tensor(np.zeros_like(p.data)) if create_graph else np.zeros_like(p.data)
            )
        else:
            grads.append(p.grad if create_graph else p.grad.data.copy())
        p.grad = None
    return float(loss.data), grads


class HVPOperator:
    """Exact Hessian-vector products that share one forward graph.

    Construction runs the forward pass and the first (differentiable)
    backward pass once; every :meth:`matvec` afterwards costs only the
    double-backprop sweep through the retained gradient graph.  Probing
    ``k`` directions therefore does ``1`` forward + ``1 + k`` backward
    passes instead of ``k`` of each — the dominant saving for dense
    Hessian assembly and Lanczos/Hutchinson style estimators.

    The graph holds the forward activations captured at construction
    time, so results correspond to the weights as they were then; BN
    buffers are snapshotted around the forward and restored immediately,
    leaving the model untouched.  Do not mutate parameter data between
    matvecs.  Inside an active :func:`repro.tensor.arena` context the
    operator must not span an ``arena_step()`` boundary (the retained
    activations would be recycled).
    """

    def __init__(self, model, loss_fn, x, y):
        self.params = model_params(model)
        buffers = snapshot_buffers(model)
        try:
            self.loss, self._grads = batch_gradients(
                model, loss_fn, x, y, create_graph=True
            )
        finally:
            restore_buffers(model, buffers)

    def matvec(self, vectors):
        """Exact ``H v`` for one probe (list of per-parameter arrays)."""
        params = self.params
        if len(vectors) != len(params):
            raise ValueError("vectors must match the number of parameters")
        for p in params:
            p.grad = None
        inner = None
        for grad, vec in zip(self._grads, vectors):
            term = (grad * Tensor(np.asarray(vec))).sum()
            inner = term if inner is None else inner + term
        inner.backward()
        result = []
        for p in params:
            result.append(np.zeros_like(p.data) if p.grad is None else p.grad.data.copy())
            p.grad = None
        return result

    def matvec_many(self, probes):
        """``[H v for v in probes]`` against the shared graph."""
        return [self.matvec(vectors) for vectors in probes]


def hvp_exact(model, loss_fn, x, y, vectors):
    """Exact ``H v`` via double backprop.

    ``vectors`` is a list of numpy arrays matching the parameter
    shapes; the result has the same structure.  For several probes at
    the same weights/batch, build an :class:`HVPOperator` once instead —
    identical results, one shared forward graph.
    """
    return HVPOperator(model, loss_fn, x, y).matvec(vectors)


def hvp_finite_diff(model, loss_fn, x, y, vectors, eps=1e-3):
    """Central-difference ``H v ~ (g(W + eps v) - g(W - eps v)) / 2 eps``.

    ``eps`` is scaled by the vector norm so the probe stays well inside
    the quadratic regime regardless of ``v``'s magnitude.
    """
    params = model_params(model)
    if len(vectors) != len(params):
        raise ValueError("vectors must match the number of parameters")
    norm = np.sqrt(sum(float(np.sum(np.asarray(v) ** 2)) for v in vectors))
    if norm == 0:
        return [np.zeros_like(p.data) for p in params]
    step = eps / norm
    buffers = snapshot_buffers(model)
    try:
        for p, v in zip(params, vectors):
            p.data = p.data + step * np.asarray(v)
        _, grads_up = batch_gradients(model, loss_fn, x, y)
        for p, v in zip(params, vectors):
            p.data = p.data - 2.0 * step * np.asarray(v)
        _, grads_down = batch_gradients(model, loss_fn, x, y)
        for p, v in zip(params, vectors):
            p.data = p.data + step * np.asarray(v)
    finally:
        restore_buffers(model, buffers)
    return [(gu - gd) / (2.0 * step) for gu, gd in zip(grads_up, grads_down)]
