"""Dropout with inverted scaling."""

import numpy as np

from ..tensor import Tensor
from .module import Module


class Dropout(Module):
    """Zero each activation with probability ``p`` during training.

    Uses inverted dropout (survivors scaled by ``1/(1-p)``) so that
    evaluation is the identity.  An explicit ``rng`` can be supplied for
    reproducible masks.
    """

    def __init__(self, p=0.5, rng=None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self.rng = rng if rng is not None else np.random.default_rng()

    def forward(self, x):
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self.rng.random(x.shape) < keep).astype(x.dtype) / np.asarray(keep, dtype=x.dtype)
        return x * Tensor(mask, dtype=x.dtype)

    def __repr__(self):
        return f"Dropout(p={self.p})"
