"""Activation layers."""

from .module import Module


class ReLU(Module):
    """Rectified linear unit."""

    def forward(self, x):
        return x.relu()


class ReLU6(Module):
    """ReLU capped at 6 — MobileNetV2's activation."""

    def forward(self, x):
        return x.clip(0.0, 6.0)


class Tanh(Module):
    """Hyperbolic tangent."""

    def forward(self, x):
        return x.tanh()


class Sigmoid(Module):
    """Logistic sigmoid."""

    def forward(self, x):
        return x.sigmoid()


class LeakyReLU(Module):
    """Leaky ReLU: ``max(x, slope * x)``."""

    def __init__(self, negative_slope=0.01):
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x):
        return x.maximum(x * self.negative_slope)

    def __repr__(self):
        return f"LeakyReLU(negative_slope={self.negative_slope})"
